(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation.

     fig2   syscall profile across the application suite
     fig3   Linux syscall similarity across ISAs
     table1 porting effort (WALI / WASIX / WASI)
     table2 intrinsic syscall overhead (WALI layer vs direct kernel call)
     table3 cost of async-signal safepoint polling schemes
     fig7   runtime breakdown (app / WALI layer / kernel)
     fig8   virtualization comparison: memory + execution time sweeps

   `bench/main.exe all` runs everything (the default). Wall-clock numbers
   use the host monotonic clock as min-of-N with a MAD noise band
   (lib/perf); shapes, not absolute values, are the reproduction target
   (see EXPERIMENTS.md). `--json=FILE` additionally writes every
   scenario's numbers as a `wali-bench v1` document. *)

let now = Monotonic_clock.now

let ms_of_ns ns = Int64.to_float ns /. 1e6

let header title = Printf.printf "\n=== %s ===\n%!" title

(* ---- structured results (wali-bench v1) ---- *)

(* Every fig/table scenario also records its numbers here; deterministic
   quantities as counters, host timings as wall metrics carrying their
   sample count and noise band. *)
let scenarios : (string * (string * Perf.Model.metric) list) list ref = ref []

let emit name metrics = scenarios := (name, metrics) :: !scenarios

let c_int v = Perf.Model.counter (float_of_int v)

let write_json file =
  let model = Perf.Model.make ~suite:"wali-bench" !scenarios in
  Perf.Model.save file model;
  Printf.printf "\nwrote %d scenarios to %s\n"
    (List.length model.Perf.Model.b_scenarios)
    file

(* ---- wall-clock sampling ---- *)

(* Min-of-N with a MAD noise band instead of a single noisy shot: the
   minimum of [n] timed batches estimates the uncontended cost, the MAD
   is the band (Perf.Stats). One warmup batch replaces the old 10%
   pre-roll. *)
let time_per_call ?(iters = 20000) ?(n = 5) (f : unit -> unit) : Perf.Stats.t =
  Perf.Stats.measure ~n (fun () ->
      let t0 = now () in
      for _ = 1 to iters do
        f ()
      done;
      Int64.to_float (Int64.sub (now ()) t0) /. float_of_int iters)

(* Whole-run timing in ms, same estimator. *)
let time_ms ?(warmup = 1) ?(n = 3) (f : unit -> unit) : Perf.Stats.t =
  Perf.Stats.measure ~warmup ~n (fun () ->
      let t0 = now () in
      f ();
      ms_of_ns (Int64.sub (now ()) t0))

(* ------------------------------------------------------------------ *)
(* Fig 2: syscall profile                                               *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header "Fig 2: log-normalized Linux syscall profile across benchmarks";
  let traces =
    List.map
      (fun (a : Apps.Suite.app) ->
        let trace = Wali.Strace.create () in
        let _ = Apps.Suite.run ~trace a in
        (a.Apps.Suite.a_name, trace))
      Apps.Suite.all
  in
  let totals : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, t) ->
      List.iter
        (fun (name, n) ->
          Hashtbl.replace totals name
            (n + Option.value (Hashtbl.find_opt totals name) ~default:0))
        (Wali.Strace.profile t))
    traces;
  let order =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let level n =
    if n = 0 then '.'
    else
      Char.chr
        (Char.code '0' + min 9 (int_of_float (log10 (float_of_int n) *. 3.0)))
  in
  let top = List.filteri (fun i _ -> i < 28) order in
  Printf.printf "columns (by aggregate frequency): %s ...\n"
    (String.concat " " (List.map fst (List.filteri (fun i _ -> i < 10) top)));
  Printf.printf "%-10s " "ALL";
  List.iter (fun (_, n) -> print_char (level n)) top;
  print_newline ();
  List.iter
    (fun (app, t) ->
      Printf.printf "%-10s " app;
      let prof = Wali.Strace.profile t in
      List.iter
        (fun (name, _) ->
          print_char (level (Option.value (List.assoc_opt name prof) ~default:0)))
        top;
      Printf.printf "  (%d unique, %d calls)\n"
        (Wali.Strace.unique_syscalls t)
        (Wali.Strace.total_calls t))
    traces;
  let union : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, t) ->
      List.iter (fun (n, _) -> Hashtbl.replace union n ()) (Wali.Strace.profile t))
    traces;
  Printf.printf
    "union of suite: %d unique syscalls (paper: many apps <100; union ~140-150)\n"
    (Hashtbl.length union);
  emit "fig2"
    (("union_unique", c_int (Hashtbl.length union))
    :: List.concat_map
         (fun (app, t) ->
           [
             (app ^ ".unique", c_int (Wali.Strace.unique_syscalls t));
             (app ^ ".calls", c_int (Wali.Strace.total_calls t));
           ])
         traces)

(* ------------------------------------------------------------------ *)
(* Fig 3: ISA similarity                                                *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "Fig 3: Linux syscall similarity across ISAs";
  let open Tables.Linux_tables in
  List.iter
    (fun isa ->
      Printf.printf "%-8s: %d syscalls modelled\n" (isa_name isa) (count isa))
    isas;
  Printf.printf "\n%-18s" "common syscalls";
  List.iter (fun b -> Printf.printf "%10s" (isa_name b)) isas;
  print_newline ();
  List.iter
    (fun a ->
      Printf.printf "%-18s" (isa_name a);
      List.iter (fun b -> Printf.printf "%10d" (common a b)) isas;
      print_newline ())
    isas;
  Printf.printf
    "\naarch64/riscv64 near-identical and largely a subset of x86-64 (paper §2)\n";
  Printf.printf "WALI name-bound union: %d virtual syscalls\n"
    (List.length (union_names ()));
  emit "fig3"
    (("wali_union", c_int (List.length (union_names ())))
    :: List.map (fun isa -> (isa_name isa, c_int (count isa))) isas)

(* ------------------------------------------------------------------ *)
(* Table 1: porting effort                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: porting effort of Wasm APIs";
  Printf.printf "%-12s %-12s %6s %6s %6s   %s\n" "app" "(paper)" "WALI"
    "WASIX" "WASI" "missing feature (WASI)";
  let rows = Apps.Suite.porting_table () in
  List.iter
    (fun (r : Apps.Suite.porting_row) ->
      let a = r.Apps.Suite.pr_app in
      let mark = function None -> "  ok" | Some _ -> "   x" in
      Printf.printf "%-12s %-12s %6s %6s %6s   %s\n" a.Apps.Suite.a_name
        a.Apps.Suite.a_paper_name
        (mark r.Apps.Suite.pr_wali)
        (mark r.Apps.Suite.pr_wasix)
        (mark r.Apps.Suite.pr_wasi)
        (Option.value r.Apps.Suite.pr_wasi ~default:"-"))
    rows;
  let ports f = List.length (List.filter (fun r -> f r = None) rows) in
  emit "table1"
    [
      ("apps", c_int (List.length rows));
      ("wali_ports", c_int (ports (fun r -> r.Apps.Suite.pr_wali)));
      ("wasix_ports", c_int (ports (fun r -> r.Apps.Suite.pr_wasix)));
      ("wasi_ports", c_int (ports (fun r -> r.Apps.Suite.pr_wasi)));
    ]

(* ------------------------------------------------------------------ *)
(* Table 2: intrinsic syscall overhead                                  *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2: WALI syscall overhead vs direct kernel calls";
  Printf.printf "%-16s %12s %8s %6s %6s\n" "syscall" "overhead" "noise" "LOC"
    "state";
  let t2_metrics = ref [] in
  Fiber.run (fun () ->
      let kernel = Kernel.Task.boot () in
      let eng = Wali.Engine.create kernel in
      let task = Kernel.Task.make_init kernel ~comm:"bench" in
      Wali.Engine.setup_stdio eng task;
      let mem = Wasm.Rt.Memory.create ~min_pages:64 ~max_pages:512 in
      let _, machine =
        Virt.Native_run.make_proc eng task mem ~heap_base:(1 lsl 20)
      in
      let ctx = Kernel.Syscalls.make_ctx kernel task eng.Wali.Engine.futexes in
      (match
         Kernel.Syscalls.openat ctx ~dirfd:Kernel.Syscalls.at_fdcwd
           ~path:"/tmp/bench.dat"
           ~flags:Kernel.Ktypes.(o_creat lor o_rdwr)
           ~mode:0o600
       with
      | Ok _ -> ()
      | Error _ -> failwith "bench file");
      Wasm.Rt.Memory.write_string mem ~addr:4096 (String.make 256 'x');
      Wasm.Rt.Memory.write_string mem ~addr:8192 "/tmp/bench.dat\000";
      let kbuf = Bytes.create 256 in
      let i64 v = Wasm.Values.I64 (Int64.of_int v) in
      let wali name args =
        ignore (Wali.Interface.dispatch eng name machine args)
      in
      let meta n =
        Option.value (Wali.Spec.find n) ~default:(List.hd Wali.Spec.implemented)
      in
      let report name (w : Perf.Stats.t) (d : Perf.Stats.t) =
        let m = meta name in
        let overhead = max 0.0 (w.Perf.Stats.s_min -. d.Perf.Stats.s_min) in
        let band = w.Perf.Stats.s_mad +. d.Perf.Stats.s_mad in
        t2_metrics :=
          (name, Perf.Model.wall_v ~n:w.Perf.Stats.s_n ~mad:band overhead)
          :: !t2_metrics;
        Printf.printf "%-16s %9.0f ns %7.0f %6d %6s\n" name overhead band
          m.Wali.Spec.loc
          (if m.Wali.Spec.stateful then "Y" else "N")
      in
      let cases =
        [
          ( "write",
            (fun () -> wali "write" [| i64 3; i64 4096; i64 64 |]),
            fun () ->
              ignore (Kernel.Syscalls.write ctx ~fd:3 ~buf:kbuf ~off:0 ~len:64)
          );
          ( "pread64",
            (fun () -> wali "pread64" [| i64 3; i64 4096; i64 64; i64 0 |]),
            fun () ->
              ignore
                (Kernel.Syscalls.pread64 ctx ~fd:3 ~buf:kbuf ~off:0 ~len:64
                   ~pos:0) );
          ( "stat",
            (fun () -> wali "stat" [| i64 8192; i64 16384 |]),
            fun () ->
              ignore
                (Kernel.Syscalls.stat_path ctx ~dirfd:Kernel.Syscalls.at_fdcwd
                   ~path:"/tmp/bench.dat" ~follow:true) );
          ( "fstat",
            (fun () -> wali "fstat" [| i64 3; i64 16384 |]),
            fun () -> ignore (Kernel.Syscalls.fstat ctx ~fd:3) );
          ( "lseek",
            (fun () -> wali "lseek" [| i64 3; i64 0; i64 0 |]),
            fun () ->
              ignore (Kernel.Syscalls.lseek ctx ~fd:3 ~offset:0 ~whence:0) );
          ( "getpid",
            (fun () -> wali "getpid" [||]),
            fun () -> ignore (Kernel.Syscalls.getpid ctx) );
          ( "getuid",
            (fun () -> wali "getuid" [||]),
            fun () -> ignore (Kernel.Syscalls.getuid ctx) );
          ( "clock_gettime",
            (fun () -> wali "clock_gettime" [| i64 1; i64 16384 |]),
            fun () -> ignore (Kernel.Syscalls.clock_gettime ctx ~clock:1) );
          ( "rt_sigprocmask",
            (fun () -> wali "rt_sigprocmask" [| i64 0; i64 0; i64 0; i64 8 |]),
            fun () ->
              ignore (Kernel.Syscalls.rt_sigprocmask ctx ~how:0 ~set:None) );
          ( "fcntl",
            (fun () -> wali "fcntl" [| i64 3; i64 3; i64 0 |]),
            fun () -> ignore (Kernel.Syscalls.fcntl ctx ~fd:3 ~cmd:3 ~arg:0) );
          ( "rt_sigaction",
            (fun () -> wali "rt_sigaction" [| i64 10; i64 0; i64 16384; i64 16 |]),
            fun () ->
              ignore (Kernel.Syscalls.rt_sigaction ctx ~signo:10 ~action:None)
          );
          ( "access",
            (fun () -> wali "access" [| i64 8192; i64 0 |]),
            fun () ->
              ignore
                (Kernel.Syscalls.faccessat ctx ~dirfd:Kernel.Syscalls.at_fdcwd
                   ~path:"/tmp/bench.dat" ~amode:0) );
        ]
      in
      List.iter
        (fun (name, w, d) -> report name (time_per_call w) (time_per_call d))
        cases;
      (* mmap/munmap pair: stateful path through the region allocator *)
      let iters = 2000 in
      let st =
        Perf.Stats.measure ~n:3 (fun () ->
            let t0 = now () in
            for _ = 1 to iters do
              wali "mmap" [| i64 0; i64 8192; i64 3; i64 0x22; i64 (-1); i64 0 |];
              wali "munmap" [| i64 (1 lsl 20); i64 8192 |]
            done;
            Int64.to_float (Int64.sub (now ()) t0) /. float_of_int iters /. 2.0)
      in
      t2_metrics := ("mmap", Perf.Model.wall st) :: !t2_metrics;
      let m = meta "mmap" in
      Printf.printf "%-16s %9.0f ns %7.0f %6d %6s   (mmap+munmap pair / 2)\n"
        "mmap" st.Perf.Stats.s_min st.Perf.Stats.s_mad m.Wali.Spec.loc
        (if m.Wali.Spec.stateful then "Y" else "N"));
  (* clone / thread spawn: the engine-dominated outlier (paper: ~500us
     in WAMR due to execution-environment replication). Measured as the
     host-time delta between a 200-spawn run and an empty run. *)
  let spawn_src n =
    Printf.sprintf
      {|
        int worker(int a) { return 0; }
        int main() {
          for (int i = 0; i < %d; i = i + 1) { thread_spawn(fnptr(worker), i); }
          for (int i = 0; i < %d; i = i + 1) { sched_yield(); }
          return 0;
        }
      |}
      n (2 * n)
  in
  let run_ns n =
    let binary = Minic.to_wasm_binary (spawn_src n) in
    Perf.Stats.measure ~n:3 (fun () ->
        let t0 = now () in
        let _ =
          Wali.Interface.run_program ~binary ~argv:[ "clone" ] ~env:[] ()
        in
        Int64.to_float (Int64.sub (now ()) t0))
  in
  let base = run_ns 0 and loaded = run_ns 200 in
  let per =
    max 0.0 ((loaded.Perf.Stats.s_min -. base.Perf.Stats.s_min) /. 200.0)
  in
  let band = (loaded.Perf.Stats.s_mad +. base.Perf.Stats.s_mad) /. 200.0 in
  t2_metrics :=
    ( "clone_thread",
      Perf.Model.wall_v ~n:loaded.Perf.Stats.s_n ~mad:band per )
    :: !t2_metrics;
  Printf.printf
    "%-16s %9.0f ns %7.0f %6s %6s   (instance replication; the paper's outlier)\n"
    "clone(thread)" per band "100+" "Y";
  emit "table2" !t2_metrics

(* ------------------------------------------------------------------ *)
(* Table 3: safepoint polling schemes                                   *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3: async-signal polling overhead by safepoint scheme (% slowdown)";
  let workloads =
    [
      ("bash(minish)", "minish", [ "minish"; "-c"; "loop 60000" ]);
      ( "lua(calc)", "calc",
        [ "calc"; "-e";
          "i = 0; s = 0; while i < 2000 do s = s + i*i; i = i + 1 end; print s"
        ] );
      ("sqlite(minidb)", "minidb", [ "minidb"; "bench"; "120" ]);
      ("paho(zpack)", "zpack", [ "zpack"; "12" ]);
    ]
  in
  Printf.printf "%-16s %10s %10s %10s\n" "app" "Loop" "Func" "All";
  let t3_metrics = ref [] in
  List.iter
    (fun (label, app_name, argv) ->
      match Apps.Suite.find app_name with
      | None -> ()
      | Some a ->
          (* min-of-N per scheme: polling overhead is a difference of two
             small numbers, so the noisy single-shot (or even a median)
             flips signs run to run; minima subtract stably *)
          let sample scheme =
            time_ms (fun () ->
                ignore (Apps.Suite.run ~argv ~poll_scheme:scheme a))
          in
          let base = sample Wasm.Code.Poll_none in
          let bmin = base.Perf.Stats.s_min in
          let pct (s : Perf.Stats.t) =
            (s.Perf.Stats.s_min -. bmin) /. bmin *. 100.0
          in
          let band (s : Perf.Stats.t) =
            (s.Perf.Stats.s_mad +. base.Perf.Stats.s_mad) /. bmin *. 100.0
          in
          let l = sample Wasm.Code.Poll_loops in
          let fn = sample Wasm.Code.Poll_funcs in
          let al = sample Wasm.Code.Poll_every in
          List.iter
            (fun (scheme, s) ->
              t3_metrics :=
                ( Printf.sprintf "%s.%s_pct" app_name scheme,
                  Perf.Model.wall_v ~unit_:"pct" ~n:s.Perf.Stats.s_n
                    ~mad:(band s) (pct s) )
                :: !t3_metrics)
            [ ("loop", l); ("func", fn); ("all", al) ];
          Printf.printf "%-16s %9.1f%% %9.1f%% %9.1f%%\n" label (pct l)
            (pct fn) (pct al))
    workloads;
  emit "table3" !t3_metrics;
  print_endline
    "(expected shape: Loop/Func low; All an order of magnitude worse — paper Table 3)"

(* ------------------------------------------------------------------ *)
(* Fig 7: runtime breakdown                                             *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Fig 7: runtime breakdown across the system stack (% of run)";
  (* calibrate the WALI marshalling layer cost with a null-ish syscall *)
  let layer_ns = ref 800.0 in
  Fiber.run (fun () ->
      let kernel = Kernel.Task.boot () in
      let eng = Wali.Engine.create kernel in
      let task = Kernel.Task.make_init kernel ~comm:"cal" in
      Wali.Engine.setup_stdio eng task;
      let mem = Wasm.Rt.Memory.create ~min_pages:16 ~max_pages:64 in
      let _, machine = Virt.Native_run.make_proc eng task mem ~heap_base:(1 lsl 20) in
      let ctx = Kernel.Syscalls.make_ctx kernel task eng.Wali.Engine.futexes in
      let w =
        time_per_call (fun () ->
            ignore (Wali.Interface.dispatch eng "getpid" machine [||]))
      in
      let d = time_per_call (fun () -> ignore (Kernel.Syscalls.getpid ctx)) in
      layer_ns := max 50.0 (w.Perf.Stats.s_min -. d.Perf.Stats.s_min));
  Printf.printf "(WALI layer cost calibrated at %.0f ns/call)\n" !layer_ns;
  Printf.printf "%-12s %8s %8s %8s  %s\n" "app" "app%" "wali%" "kernel%" "(syscalls)";
  let f7_metrics = ref [ ("layer_ns", Perf.Model.wall_v ~n:1 ~mad:0.0 !layer_ns) ] in
  List.iter
    (fun name ->
      match Apps.Suite.find name with
      | None -> ()
      | Some a ->
          (* syscall count is deterministic: one traced run fixes it, then
             timing runs use a fresh trace each so nothing accumulates *)
          let calls =
            let trace = Wali.Strace.create () in
            let _ = Apps.Suite.run ~trace a in
            float_of_int (Wali.Strace.total_calls trace)
          in
          let s =
            time_ms (fun () ->
                let trace = Wali.Strace.create () in
                ignore (Apps.Suite.run ~trace a))
          in
          let total = s.Perf.Stats.s_min *. 1e6 in
          let wali_t = calls *. !layer_ns in
          let kernel_t = min (calls *. 2000.0) (total -. wali_t) in
          let app_t = max 0.0 (total -. wali_t -. kernel_t) in
          let wali_pct = wali_t /. total *. 100. in
          let rel_band =
            if s.Perf.Stats.s_min > 0.0 then
              s.Perf.Stats.s_mad /. s.Perf.Stats.s_min
            else 0.0
          in
          f7_metrics :=
            (name ^ ".calls", Perf.Model.counter calls)
            :: ( name ^ ".wali_pct",
                 Perf.Model.wall_v ~unit_:"pct" ~n:s.Perf.Stats.s_n
                   ~mad:(wali_pct *. rel_band) wali_pct )
            :: !f7_metrics;
          Printf.printf "%-12s %7.1f%% %7.1f%% %7.1f%%  (%.0f)\n" name
            (app_t /. total *. 100.)
            wali_pct
            (max 0.0 kernel_t /. total *. 100.)
            calls)
    [ "zpack"; "calc"; "minidb"; "minish"; "kvd" ];
  emit "fig7" !f7_metrics;
  print_endline
    "(paper: typically <1% of execution in the WALI interface; memcached ~2.4%)"

(* ------------------------------------------------------------------ *)
(* Fig 8: virtualization comparison                                     *)
(* ------------------------------------------------------------------ *)

let fig8_workload name n : Virt.workload =
  match name with
  | "lua" ->
      {
        Virt.w_name = "lua";
        w_source = Apps.App_calc.source;
        w_argv =
          [ "calc"; "-e";
            Printf.sprintf
              "i = 0; s = 0; while i < %d do s = s + i*i; i = i + 1 end; print s"
              n ];
      }
  | "bash" ->
      {
        Virt.w_name = "bash";
        w_source = Apps.App_minish.source;
        w_argv = [ "minish"; "-c"; Printf.sprintf "loop %d" n ];
      }
  | "sqlite" ->
      {
        Virt.w_name = "sqlite";
        w_source = Apps.App_minidb.source;
        w_argv = [ "minidb"; "bench"; string_of_int n ];
      }
  | _ -> invalid_arg "fig8_workload"

let fig8a () =
  header "Fig 8a: peak memory by virtualization method (MB)";
  Printf.printf "%-8s %10s %10s %10s %10s\n" "app" "native" "docker" "qemu" "wali";
  let f8a_metrics = ref [] in
  List.iter
    (fun (name, n) ->
      let p = Virt.prepare (fig8_workload name n) in
      let mb m = float_of_int m.Virt.m_peak_mem /. 1e6 in
      let r = List.map (fun m -> Virt.run p m) Virt.all_methods in
      List.iter2
        (fun meth res ->
          f8a_metrics :=
            ( Printf.sprintf "%s.%s_peak_mem" name (Virt.method_name meth),
              Perf.Model.counter ~unit_:"bytes"
                (float_of_int res.Virt.m_peak_mem) )
            :: !f8a_metrics)
        Virt.all_methods r;
      match r with
      | [ nat; doc; qemu; wali ] ->
          Printf.printf "%-8s %9.1fM %9.1fM %9.1fM %9.1fM\n" name (mb nat)
            (mb doc) (mb qemu) (mb wali)
      | _ -> ())
    [ ("lua", 2000); ("bash", 20000); ("sqlite", 150) ];
  emit "fig8a" !f8a_metrics;
  print_endline "(expected shape: docker pays a large base; wali stays lean)"

let fig8bcd () =
  header "Fig 8b-d: execution time incl. startup (ms) over workload sizes";
  let f8_metrics = ref [] in
  List.iter
    (fun (name, sizes) ->
      Printf.printf "\n[%s]\n%-10s %12s %12s %12s %12s\n" name "size" "native"
        "docker" "qemu" "wali";
      let crossed = ref false in
      List.iter
        (fun n ->
          let p = Virt.prepare (fig8_workload name n) in
          (* min-of-2 per cell: the sweep is long, so keep the sample
             count low, but a single shot still flips the crossover *)
          let t m =
            let s =
              Perf.Stats.measure ~warmup:0 ~n:2 (fun () ->
                  ms_of_ns (Virt.run p m).Virt.m_total_ns)
            in
            f8_metrics :=
              ( Printf.sprintf "%s.%d.%s_ms" name n (Virt.method_name m),
                Perf.Model.wall ~unit_:"ms" s )
              :: !f8_metrics;
            s.Perf.Stats.s_min
          in
          let nat = t Virt.M_native and doc = t Virt.M_docker in
          let qemu = t Virt.M_qemu and wali = t Virt.M_wali in
          if wali < doc then crossed := true;
          Printf.printf "%-10d %10.2fms %10.2fms %10.2fms %10.2fms\n" n nat doc
            qemu wali)
        sizes;
      if !crossed then
        Printf.printf
          "-> crossover observed: wali beats docker on short runs (startup dominates)\n")
    [
      ("lua", [ 200; 2000; 10000; 40000 ]);
      ("bash", [ 2000; 20000; 100000; 400000 ]);
      ("sqlite", [ 20; 80; 200; 400 ]);
    ];
  emit "fig8" !f8_metrics;
  print_endline
    "\n(expected shape: docker = native slope + large startup intercept;\n\
    \ qemu = steepest slope, tiny intercept; wali = small intercept,\n\
    \ slope between docker and qemu)"

(* ------------------------------------------------------------------ *)
(* Static analyzer throughput                                           *)
(* ------------------------------------------------------------------ *)

let analysis_bench () =
  header "Analyzer: static syscall-reachability throughput (waliscan core)";
  (* decode once: the benchmark is the analysis (compile + call graph +
     reachability + policy), not the binary parser *)
  let modules =
    List.map
      (fun (a : Apps.Suite.app) ->
        let m = Wasm.Binary.decode (Apps.Suite.binary_of a) in
        let nf =
          Wasm.Ast.num_imported_funcs m + Array.length m.Wasm.Ast.funcs
        in
        (a.Apps.Suite.a_name, m, nf))
      Apps.Suite.all
  in
  List.iter (fun (_, m, _) -> ignore (Analysis.Reach.analyze m)) modules;
  Printf.printf "%-10s %6s %8s %10s %8s\n" "app" "funcs" "allowed"
    "ms/analyze" "warnings";
  let an_metrics = ref [] in
  let total_ns = ref 0.0 and total_funcs = ref 0 in
  List.iter
    (fun (name, m, nf) ->
      let st = time_per_call ~iters:20 ~n:3 (fun () -> ignore (Analysis.Reach.analyze m)) in
      let ns = st.Perf.Stats.s_min in
      total_ns := !total_ns +. ns;
      total_funcs := !total_funcs + nf;
      let s = Analysis.Reach.analyze m in
      an_metrics :=
        (name ^ ".funcs", c_int nf)
        :: (name ^ ".allowed", c_int (List.length (Analysis.Reach.allowlist s)))
        :: (name ^ ".analyze_ns", Perf.Model.wall st)
        :: !an_metrics;
      Printf.printf "%-10s %6d %8d %9.3fms %8d\n" name nf
        (List.length (Analysis.Reach.allowlist s))
        (ns /. 1e6)
        (List.length (Analysis.Lint.lint s)))
    modules;
  emit "analysis" !an_metrics;
  let secs = !total_ns /. 1e9 in
  Printf.printf
    "suite: %d modules, %d functions in %.1fms -> %.0f modules/sec, %.0f functions/sec\n"
    (List.length modules) !total_funcs (!total_ns /. 1e6)
    (float_of_int (List.length modules) /. secs)
    (float_of_int !total_funcs /. secs)

(* ------------------------------------------------------------------ *)
(* Record/replay: recording overhead and replay speedup                  *)
(* ------------------------------------------------------------------ *)

let replay_bench () =
  header "Replay: recording overhead vs live, replay speedup (lib/replay)";
  let boot_for (a : Apps.Suite.app) =
    let kernel = Kernel.Task.boot () in
    a.Apps.Suite.a_setup kernel;
    if a.Apps.Suite.a_stdin <> "" then begin
      Kernel.Task.console_feed kernel a.Apps.Suite.a_stdin;
      Kernel.Pipe.drop_writer kernel.Kernel.Task.console_in
    end;
    kernel
  in
  Printf.printf "%-10s %8s %9s %9s %9s %8s %9s %9s\n" "app" "calls" "live"
    "record" "replay" "overhead" "speedup" "bytes";
  let rp_metrics = ref [] in
  let tl = ref 0.0 and tc = ref 0.0 and tp = ref 0.0 in
  List.iter
    (fun (a : Apps.Suite.app) ->
      let binary = Apps.Suite.binary_of a in
      let live =
        time_ms (fun () ->
            let kernel = boot_for a in
            ignore
              (Wali.Interface.run_program ~kernel ~binary
                 ~argv:a.Apps.Suite.a_argv ~env:[] ()))
      in
      (* one recording pins the trace (deterministic); the timing samples
         then record afresh each pass *)
      let run =
        let kernel = boot_for a in
        Replay.Recorder.record ~app:a.Apps.Suite.a_name ~kernel ~binary
          ~argv:a.Apps.Suite.a_argv ~env:[] ()
      in
      let record =
        time_ms (fun () ->
            let kernel = boot_for a in
            ignore
              (Replay.Recorder.record ~app:a.Apps.Suite.a_name ~kernel ~binary
                 ~argv:a.Apps.Suite.a_argv ~env:[] ()))
      in
      let trace =
        Replay.Trace.decode
          (Replay.Trace.encode (Replay.Reduce.reduce run.Replay.Recorder.r_trace))
      in
      let replay =
        time_ms (fun () ->
            let o =
              Replay.Replayer.replay ~setup:a.Apps.Suite.a_setup ~trace ~binary
                ()
            in
            if not (Replay.Replayer.converged o) then
              Printf.printf "!! %s diverged on replay\n" a.Apps.Suite.a_name)
      in
      let calls =
        Array.fold_left
          (fun n ev ->
            match ev with Replay.Trace.E_syscall _ -> n + 1 | _ -> n)
          0 trace.Replay.Trace.tr_events
      in
      let live_ms = live.Perf.Stats.s_min
      and record_ms = record.Perf.Stats.s_min
      and replay_ms = replay.Perf.Stats.s_min in
      tl := !tl +. live_ms;
      tc := !tc +. record_ms;
      tp := !tp +. replay_ms;
      let n = a.Apps.Suite.a_name in
      rp_metrics :=
        (n ^ ".calls", c_int calls)
        :: (n ^ ".bytes", c_int (Replay.Reduce.byte_size trace))
        :: (n ^ ".live_ms", Perf.Model.wall ~unit_:"ms" live)
        :: (n ^ ".record_ms", Perf.Model.wall ~unit_:"ms" record)
        :: (n ^ ".replay_ms", Perf.Model.wall ~unit_:"ms" replay)
        :: !rp_metrics;
      Printf.printf "%-10s %8d %8.2fm %8.2fm %8.2fm %+7.1f%% %8.2fx %9d\n"
        a.Apps.Suite.a_name calls live_ms record_ms replay_ms
        ((record_ms -. live_ms) /. live_ms *. 100.0)
        (live_ms /. replay_ms)
        (Replay.Reduce.byte_size trace))
    Apps.Suite.all;
  emit "replay" !rp_metrics;
  Printf.printf
    "suite: live %.1fms, record %.1fms (%+.1f%% overhead), replay %.1fms \
     (%.2fx vs live)\n"
    !tl !tc
    ((!tc -. !tl) /. !tl *. 100.0)
    !tp (!tl /. !tp);
  print_endline
    "(record pays the write-set capture; replay skips the kernel for \
     data-class calls)"

(* ------------------------------------------------------------------ *)
(* Observability: metrics-on overhead vs plain runs                      *)
(* ------------------------------------------------------------------ *)

(** Host-time cost of running the suite with the metrics pillar on
    (per-syscall histograms + kernel counters + run counters), versus
    plain runs. The budget is <= 5% aggregate overhead; tracing and
    profiling are opt-in and excluded from the budget. [smoke] runs a
    single pass per app (the CI configuration). *)
let observe_bench ?(smoke = false) () =
  header "Observe: metrics-on overhead vs plain runs (lib/observe)";
  (* smoke = one warmup + one sample per configuration (the CI shape);
     the full run uses the min-of-3 estimator *)
  let sample f = time_ms ~n:(if smoke then 1 else 3) f in
  Printf.printf "%-10s %9s %9s %9s  %8s\n" "app" "plain" "metrics" "all-on"
    "overhead";
  let ob_metrics = ref [] in
  let tp = ref 0.0 and tm = ref 0.0 in
  List.iter
    (fun (a : Apps.Suite.app) ->
      let plain = sample (fun () -> ignore (Apps.Suite.run a)) in
      let metrics =
        sample (fun () ->
            ignore
              (Apps.Suite.run
                 ~observe:(Observe.Sink.create Observe.Sink.metrics_only)
                 a))
      in
      let all_on =
        sample (fun () ->
            ignore
              (Apps.Suite.run
                 ~observe:(Observe.Sink.create Observe.Sink.all_on)
                 a))
      in
      let plain_ms = plain.Perf.Stats.s_min
      and metrics_ms = metrics.Perf.Stats.s_min in
      tp := !tp +. plain_ms;
      tm := !tm +. metrics_ms;
      let n = a.Apps.Suite.a_name in
      ob_metrics :=
        (n ^ ".plain_ms", Perf.Model.wall ~unit_:"ms" plain)
        :: (n ^ ".metrics_ms", Perf.Model.wall ~unit_:"ms" metrics)
        :: (n ^ ".all_on_ms", Perf.Model.wall ~unit_:"ms" all_on)
        :: !ob_metrics;
      Printf.printf "%-10s %8.2fm %8.2fm %8.2fm  %+7.1f%%\n"
        a.Apps.Suite.a_name plain_ms metrics_ms all_on.Perf.Stats.s_min
        ((metrics_ms -. plain_ms) /. plain_ms *. 100.0))
    Apps.Suite.all;
  emit "observe" !ob_metrics;
  let pct = (!tm -. !tp) /. !tp *. 100.0 in
  Printf.printf "suite: plain %.1fms, metrics %.1fms (%+.1f%% overhead, budget 5%%)\n"
    !tp !tm pct;
  print_endline
    (if pct <= 5.0 then "observe overhead within budget"
     else "observe overhead OVER budget")

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: bench/main.exe [--json=FILE] \
     [all|fig2|fig3|table1|table2|table3|fig7|fig8|fig8a|analysis|replay|observe \
     [smoke]]"

let () =
  let json_out = ref None in
  let args =
    List.filter
      (fun a ->
        if String.length a > 7 && String.sub a 0 7 = "--json=" then begin
          json_out := Some (String.sub a 7 (String.length a - 7));
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  let which = match args with w :: _ -> w | [] -> "all" in
  let ok = ref true in
  (match which with
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "fig7" -> fig7 ()
  | "fig8a" -> fig8a ()
  | "fig8" ->
      fig8a ();
      fig8bcd ()
  | "analysis" -> analysis_bench ()
  | "replay" -> replay_bench ()
  | "observe" -> observe_bench ~smoke:(List.mem "smoke" args) ()
  | "all" ->
      fig2 ();
      fig3 ();
      table1 ();
      table2 ();
      table3 ();
      fig7 ();
      fig8a ();
      fig8bcd ();
      analysis_bench ();
      replay_bench ();
      observe_bench ()
  | _ ->
      ok := false;
      usage ());
  match !json_out with
  | Some f when !ok -> write_json f
  | _ -> ()
