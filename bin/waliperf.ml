(* waliperf — the performance observatory CLI (`dune build @perf`).

     dune exec bin/waliperf.exe -- run -o BENCH_perf.json
     dune exec bin/waliperf.exe -- compare baseline.json current.json
     dune exec bin/waliperf.exe -- diff base.folded cur.folded
     dune exec bin/waliperf.exe -- baseline update
     dune exec bin/waliperf.exe -- gate --quiet      # the CI gate (@perf)

   `run` executes every bundled app with metrics + profiling on and
   emits the deterministic counters (instructions retired, syscall
   crossings, virtual-clock ns) as a `wali-bench v1` JSON document.
   `gate` compares such a run against the committed baselines under
   bench/baselines/ at zero tolerance — any counter drift is a real
   behavior change — and names the responsible frames and syscalls by
   diffing the run's folded-stack profile against the baseline profile.
   `baseline update` is the deliberate way to accept a new truth. *)

open Cmdliner

let default_dir = "bench/baselines"
let det_file dir = Filename.concat dir "deterministic.json"
let folded_file dir app = Filename.concat dir (app ^ ".folded")

let write_file f s =
  Out_channel.with_open_bin f (fun oc -> Out_channel.output_string oc s)

let read_file f =
  match In_channel.with_open_bin f In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let load_model what file =
  match Perf.Model.load file with
  | Ok m -> m
  | Error e ->
      Printf.eprintf "waliperf: %s %s: %s\n" what file e;
      exit 1

(* ---- run ---- *)

let run_cmd no_fuse walls out =
  let model, _profiles =
    Perf.Scenario.run_suite ~fuse:(not no_fuse) ~walls ()
  in
  let json = Perf.Model.to_json model in
  (match Observe.Check.check_bench json with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "waliperf: emitted invalid wali-bench JSON: %s\n" e;
      exit 1);
  match out with
  | Some f ->
      write_file f json;
      Printf.printf "waliperf: wrote %d scenarios to %s\n"
        (List.length model.Perf.Model.b_scenarios)
        f
  | None -> print_string json

(* ---- compare ---- *)

let compare_cmd floor_pct all base_file cur_file =
  let base = load_model "baseline" base_file in
  let cur = load_model "current" cur_file in
  let rows = Perf.Baseline.compare_runs ~floor_pct ~base ~cur () in
  print_string (Perf.Baseline.render ~all rows);
  let bad =
    Perf.Baseline.regressions rows @ Perf.Baseline.counter_drift rows
  in
  if bad = [] then begin
    Printf.printf "no regressions (%d metrics compared)\n" (List.length rows);
    exit 0
  end
  else begin
    Printf.printf "%d metric(s) regressed or drifted\n"
      (List.length (List.sort_uniq compare bad));
    exit 1
  end

(* ---- diff ---- *)

let diff_cmd top base_file cur_file =
  let slurp f =
    match read_file f with
    | Some s -> s
    | None ->
        Printf.eprintf "waliperf: cannot read %s\n" f;
        exit 1
  in
  match Perf.Diffprof.diff ~base:(slurp base_file) ~cur:(slurp cur_file) with
  | Error e ->
      Printf.eprintf "waliperf: %s\n" e;
      exit 1
  | Ok d ->
      print_string (Perf.Diffprof.render ~top d);
      exit (if d.Perf.Diffprof.d_entries = [] then 0 else 1)

(* ---- baseline update ---- *)

let baseline_cmd dir =
  let model, profiles = Perf.Scenario.run_suite () in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Perf.Model.save (det_file dir) model;
  List.iter (fun (app, folded) -> write_file (folded_file dir app) folded) profiles;
  Printf.printf
    "waliperf: baseline updated: %s (%d scenarios) + %d folded profiles in %s\n"
    (det_file dir)
    (List.length model.Perf.Model.b_scenarios)
    (List.length profiles) dir

(* ---- gate ---- *)

(* Flamegraph-diff every drifted app against its baseline profile; the
   responsible frames and syscall leaves name the behavior change. *)
let gate_diffs dir (drift : Perf.Baseline.row list)
    (profiles : (string * string) list) : string =
  let apps =
    List.filter_map
      (fun (r : Perf.Baseline.row) ->
        let sc = r.Perf.Baseline.r_scenario in
        if String.length sc > 4 && String.sub sc 0 4 = "app/" then
          Some (String.sub sc 4 (String.length sc - 4))
        else None)
      drift
    |> List.sort_uniq compare
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun app ->
      match (read_file (folded_file dir app), List.assoc_opt app profiles) with
      | Some base, Some cur -> (
          match Perf.Diffprof.diff ~base ~cur with
          | Ok d ->
              Printf.bprintf b "--- %s ---\n%s" app (Perf.Diffprof.render d)
          | Error e -> Printf.bprintf b "--- %s ---\ndiff failed: %s\n" app e)
      | None, _ ->
          Printf.bprintf b "--- %s ---\nno baseline profile %s\n" app
            (folded_file dir app)
      | _, None -> Printf.bprintf b "--- %s ---\nno current profile\n" app)
    apps;
  Buffer.contents b

let gate_cmd dir out report quiet =
  let model, profiles = Perf.Scenario.run_suite () in
  let json = Perf.Model.to_json model in
  (match out with Some f -> write_file f json | None -> ());
  let base =
    match Perf.Model.load (det_file dir) with
    | Ok m -> m
    | Error e ->
        Printf.eprintf
          "waliperf: no usable baseline (%s: %s)\n\
           run `waliperf baseline update` and commit %s\n"
          (det_file dir) e dir;
        exit 1
  in
  let rows = Perf.Baseline.compare_runs ~base ~cur:model () in
  let drift = Perf.Baseline.counter_drift rows in
  if drift = [] then begin
    let msg =
      Printf.sprintf
        "waliperf: %d deterministic metrics across %d scenarios match the baseline\n"
        (List.length rows)
        (List.length model.Perf.Model.b_scenarios)
    in
    (match report with Some f -> write_file f ("no drift\n" ^ msg) | None -> ());
    if quiet then print_string msg
    else print_string (Perf.Baseline.render ~all:true rows ^ msg);
    exit 0
  end
  else begin
    let diffs = gate_diffs dir drift profiles in
    let body =
      Perf.Baseline.render rows
      ^ Printf.sprintf
          "waliperf: %d deterministic counter(s) drifted from the baseline\n\
           (a deliberate change? run `waliperf baseline update` and commit)\n"
          (List.length drift)
      ^ diffs
    in
    (match report with Some f -> write_file f body | None -> ());
    prerr_string body;
    exit 1
  end

(* ---- cmdliner plumbing ---- *)

let dir_t =
  Arg.(value & opt string default_dir
       & info [ "dir" ] ~docv:"DIR" ~doc:"Baseline directory.")

let out_t =
  Arg.(value & opt (some string) None
       & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the wali-bench JSON to $(docv).")

let report_t =
  Arg.(value & opt (some string) None
       & info [ "report" ] ~docv:"FILE"
           ~doc:"Write the comparison + flamegraph-diff report to $(docv).")

let quiet_t =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-metric lines.")

let floor_t =
  Arg.(value & opt float 5.0
       & info [ "floor" ] ~docv:"PCT"
           ~doc:"Relative tolerance floor for wall metrics, percent.")

let all_t =
  Arg.(value & flag & info [ "all" ] ~doc:"Include unchanged rows.")

let top_t =
  Arg.(value & opt int 10
       & info [ "top" ] ~docv:"N" ~doc:"Show the top $(docv) changed rows.")

let pos_file n docv = Arg.(required & pos n (some string) None & info [] ~docv)

let no_fuse_t =
  Arg.(value & flag
       & info [ "no-fuse" ]
           ~doc:"Disable the macro-op fusion pass (plain single-op dispatch).")

let walls_t =
  Arg.(value & flag
       & info [ "walls" ]
           ~doc:
             "Also measure host wall-clock per app (min-of-5 with MAD band). \
              Non-deterministic: never part of the gate or baselines.")

let run_c =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the deterministic scenario suite and emit wali-bench v1 JSON")
    Term.(const run_cmd $ no_fuse_t $ walls_t $ out_t)

let compare_c =
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two wali-bench runs: counters at zero tolerance, wall \
          metrics against their noise bands")
    Term.(const compare_cmd $ floor_t $ all_t
          $ pos_file 0 "BASELINE.json" $ pos_file 1 "CURRENT.json")

let diff_c =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Differential profile: diff two folded-stack dumps and attribute \
          the delta to frames and syscall leaves")
    Term.(const diff_cmd $ top_t $ pos_file 0 "BASE.folded" $ pos_file 1 "CUR.folded")

let baseline_update_c =
  Cmd.v
    (Cmd.info "update"
       ~doc:"Re-measure and overwrite the committed baselines")
    Term.(const baseline_cmd $ dir_t)

let baseline_c =
  Cmd.group (Cmd.info "baseline" ~doc:"Manage the committed baseline store")
    [ baseline_update_c ]

let gate_c =
  Cmd.v
    (Cmd.info "gate"
       ~doc:
         "Run the deterministic scenarios against the committed baseline; \
          fail on any counter drift, naming the responsible frames via the \
          flamegraph diff")
    Term.(const gate_cmd $ dir_t $ out_t $ report_t $ quiet_t)

let cmd =
  Cmd.group
    (Cmd.info "waliperf"
       ~doc:
         "Machine-readable benchmarks, baselines, regression gates and \
          differential profiles")
    [ run_c; compare_c; diff_c; baseline_c; gate_c ]

let () = exit (Cmd.eval cmd)
