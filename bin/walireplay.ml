(* walireplay — record, replay, inspect and reduce WALI syscall traces.

     dune exec bin/walireplay.exe -- record --app calc -o calc.trace
     dune exec bin/walireplay.exe -- replay calc.trace
     dune exec bin/walireplay.exe -- report calc.trace
     dune exec bin/walireplay.exe -- reduce big.trace -o small.trace --prefix 100
     dune exec bin/walireplay.exe -- gate --quiet     # the CI gate (@replay)

   Recording runs a bundled app (or a raw .wasm binary) exactly like the
   test suite does — same setup, same scripted stdin — and captures every
   event that crosses the thin interface. Replaying re-runs the module
   with the kernel swapped out for the log and reports the first
   divergence, if any. *)

open Cmdliner

type target = {
  t_name : string;
  t_binary : string;
  t_setup : Kernel.Task.kernel -> unit;
  t_stdin : string;
  t_argv : string list;
}

let target_of_app (a : Apps.Suite.app) =
  {
    t_name = a.Apps.Suite.a_name;
    t_binary = Apps.Suite.binary_of a;
    t_setup = a.Apps.Suite.a_setup;
    t_stdin = a.Apps.Suite.a_stdin;
    t_argv = a.Apps.Suite.a_argv;
  }

let target_of_file f =
  let binary =
    try In_channel.with_open_bin f In_channel.input_all
    with Sys_error e ->
      Printf.eprintf "walireplay: %s\n" e;
      exit 1
  in
  {
    t_name = Filename.basename f;
    t_binary = binary;
    t_setup = (fun _ -> ());
    t_stdin = "";
    t_argv = [ Filename.basename f ];
  }

let find_app name =
  match Apps.Suite.find name with
  | Some a -> a
  | None ->
      Printf.eprintf "walireplay: unknown app %s; available: %s\n" name
        (String.concat ", "
           (List.map (fun a -> a.Apps.Suite.a_name) Apps.Suite.all));
      exit 2

(* Record one target the way Suite.run drives it: boot, app setup,
   scripted stdin (EOF via dropped writer), then the recorded run. *)
let record_target ?(fuse = true) (t : target) : Replay.Recorder.run =
  let kernel = Kernel.Task.boot () in
  t.t_setup kernel;
  if t.t_stdin <> "" then begin
    Kernel.Task.console_feed kernel t.t_stdin;
    Kernel.Pipe.drop_writer kernel.Kernel.Task.console_in
  end;
  Replay.Recorder.record ~app:t.t_name ~fuse ~kernel ~binary:t.t_binary
    ~argv:t.t_argv ~env:[] ()

let load_trace file =
  match Replay.Trace.load file with
  | tr -> tr
  | exception Replay.Trace.Corrupt msg ->
      Printf.eprintf "walireplay: %s: corrupt trace: %s\n" file msg;
      exit 1
  | exception Replay.Trace.Bad_version v ->
      Printf.eprintf
        "walireplay: %s: trace format version %d, this build reads version %d\n"
        file v Replay.Trace.version;
      exit 1
  | exception Sys_error e ->
      Printf.eprintf "walireplay: %s\n" e;
      exit 1

(* ---- record ---- *)

let record_cmd file app out =
  let t =
    match (app, file) with
    | Some name, None -> target_of_app (find_app name)
    | None, Some f -> target_of_file f
    | _ ->
        prerr_endline "walireplay record: need exactly one of FILE.wasm or --app NAME";
        exit 2
  in
  let r = record_target t in
  let reduced = Replay.Reduce.reduce r.Replay.Recorder.r_trace in
  Replay.Trace.save out reduced;
  Printf.printf "%s: recorded %d events (%d bytes%s) to %s, exit status %d\n"
    t.t_name
    (Array.length reduced.Replay.Trace.tr_events)
    (Replay.Reduce.byte_size reduced)
    (let raw = Replay.Reduce.byte_size r.Replay.Recorder.r_trace in
     if raw > Replay.Reduce.byte_size reduced then
       Printf.sprintf ", %d raw" raw
     else "")
    out
    (r.Replay.Recorder.r_status lsr 8);
  exit 0

(* ---- replay ---- *)

let replay_cmd file app wasm no_digest trace_out metrics_out profile_out =
  let trace = load_trace file in
  let t =
    match (app, wasm) with
    | Some name, None -> target_of_app (find_app name)
    | None, Some f -> target_of_file f
    | None, None ->
        let recorded = trace.Replay.Trace.tr_header.Replay.Trace.h_app in
        if recorded = "" then begin
          prerr_endline
            "walireplay replay: trace has no app name; pass --app or --wasm";
          exit 2
        end
        else target_of_app (find_app recorded)
    | Some _, Some _ ->
        prerr_endline "walireplay replay: --app and --wasm are exclusive";
        exit 2
  in
  (* A replayed run regenerates observability artifacts from the log:
     same per-syscall outcomes, same virtual-clock timeline. *)
  let observe =
    if trace_out = None && metrics_out = None && profile_out = None then None
    else
      Some
        (Observe.Sink.create
           {
             Observe.Sink.c_metrics = metrics_out <> None;
             c_trace = trace_out <> None;
             c_profile = profile_out <> None;
           })
  in
  let o =
    Replay.Replayer.replay ~setup:t.t_setup ~check_digest:(not no_digest)
      ?observe ~trace ~binary:t.t_binary ()
  in
  (match observe with
  | None -> ()
  | Some ob ->
      let write_file f s =
        Out_channel.with_open_bin f (fun oc -> Out_channel.output_string oc s)
      in
      (match trace_out with
      | Some f -> write_file f (Observe.Sink.trace_json ob)
      | None -> ());
      (match metrics_out with
      | Some "-" -> print_string (Observe.Sink.metrics_json ob)
      | Some f -> write_file f (Observe.Sink.metrics_json ob)
      | None -> ());
      (match profile_out with
      | Some f -> write_file f (Observe.Sink.profile_folded ob)
      | None -> ()));
  (match o.Replay.Replayer.rp_divergence with
  | None ->
      Printf.printf "%s: replay converged: %d/%d records, exit status %d\n"
        t.t_name o.Replay.Replayer.rp_consumed o.Replay.Replayer.rp_total
        (o.Replay.Replayer.rp_status lsr 8);
      exit 0
  | Some d ->
      Printf.eprintf "%s: %s\n" t.t_name (Replay.Replayer.pp_divergence d);
      exit 1)

(* ---- report ---- *)

let report_cmd file =
  Replay.Report.print (load_trace file);
  exit 0

(* ---- reduce ---- *)

let reduce_cmd file out prefix =
  let trace = load_trace file in
  let before = Replay.Reduce.byte_size trace in
  let reduced = Replay.Reduce.reduce trace in
  let reduced =
    match prefix with
    | None -> reduced
    | Some n -> Replay.Reduce.truncate reduced ~n
  in
  Replay.Trace.save out reduced;
  Printf.printf "%s: %d bytes -> %d bytes (%d events%s)\n" out before
    (Replay.Reduce.byte_size reduced)
    (Array.length reduced.Replay.Trace.tr_events)
    (match prefix with
    | Some n -> Printf.sprintf ", truncated to first %d" n
    | None -> "");
  exit 0

(* ---- gate: record + codec round-trip + replay every bundled app ---- *)

(* The gate is also the fusion differential harness: every app records
   twice, once with macro-op fusion and once without, and the two encoded
   traces must be byte-identical. Fusion may only change how fast ops
   dispatch, never which events cross the WALI boundary — any divergence
   (syscall order, arguments, results, signal coordinates, exit status)
   shows up as an encoding mismatch and fails the gate. *)
let gate_cmd quiet =
  let ok = ref true in
  List.iter
    (fun a ->
      let t = target_of_app a in
      let r = record_target ~fuse:true t in
      let reduced = Replay.Reduce.reduce r.Replay.Recorder.r_trace in
      let fused_bytes = Replay.Trace.encode reduced in
      let r_nf = record_target ~fuse:false t in
      let nf_bytes =
        Replay.Trace.encode (Replay.Reduce.reduce r_nf.Replay.Recorder.r_trace)
      in
      if fused_bytes <> nf_bytes then begin
        ok := false;
        Printf.eprintf
          "walireplay: %s: FUSION DIVERGENCE: fused and unfused runs \
           recorded different traces (%d vs %d bytes)\n"
          t.t_name
          (String.length fused_bytes)
          (String.length nf_bytes)
      end;
      (* exercise the codec on every trace: what replays is the
         decode of the encode *)
      let trace = Replay.Trace.decode fused_bytes in
      let o =
        Replay.Replayer.replay ~setup:t.t_setup ~trace ~binary:t.t_binary ()
      in
      match o.Replay.Replayer.rp_divergence with
      | None ->
          if not quiet then
            Printf.printf
              "%-10s %6d records %8d bytes  status %-3d replay ok  fused=unfused\n"
              t.t_name
              (Array.length trace.Replay.Trace.tr_events)
              (Replay.Reduce.byte_size trace)
              (r.Replay.Recorder.r_status lsr 8)
      | Some d ->
          ok := false;
          Printf.eprintf "walireplay: %s: DIVERGENCE\n%s\n" t.t_name
            (Replay.Replayer.pp_divergence d))
    Apps.Suite.all;
  if !ok && quiet then
    Printf.printf
      "walireplay: %d apps recorded fused and unfused with byte-identical \
       traces and replayed with zero divergences\n"
      (List.length Apps.Suite.all);
  exit (if !ok then 0 else 1)

(* ---- cmdliner wiring ---- *)

let file_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE")
let wasm_pos = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE.wasm")

let app_t =
  Arg.(value & opt (some string) None
       & info [ "app" ] ~doc:"A bundled suite application.")

let out_t =
  Arg.(required & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")

let wasm_t =
  Arg.(value & opt (some string) None
       & info [ "wasm" ] ~docv:"FILE.wasm" ~doc:"Replay against this binary.")

let no_digest_t =
  Arg.(value & flag
       & info [ "no-digest-check" ]
           ~doc:"Replay even if the binary's digest differs from the one \
                 recorded in the trace header.")

let prefix_t =
  Arg.(value & opt (some int) None
       & info [ "prefix" ] ~docv:"N"
           ~doc:"Keep only the first N events (divergence bisection).")

let quiet_t =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-app lines.")

let record_c =
  Cmd.v
    (Cmd.info "record" ~doc:"Record a run into a trace file")
    Term.(const record_cmd $ wasm_pos $ app_t $ out_t)

let trace_out_t =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Regenerate a Chrome trace-event JSON timeline from the \
                 replayed run into $(docv).")

let metrics_t =
  Arg.(value & opt ~vopt:(Some "-") (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Regenerate the metrics JSON dump from the replayed run \
                 into $(docv) (stdout when omitted or -).")

let profile_out_t =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE"
           ~doc:"Regenerate a folded-stack profile from the replayed \
                 run into $(docv).")

let replay_c =
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a trace and report the first divergence")
    Term.(const replay_cmd $ file_pos $ app_t $ wasm_t $ no_digest_t
          $ trace_out_t $ metrics_t $ profile_out_t)

let report_c =
  Cmd.v
    (Cmd.info "report" ~doc:"Summarize a trace (per-syscall calls/errors/bytes)")
    Term.(const report_cmd $ file_pos)

let reduce_c =
  Cmd.v
    (Cmd.info "reduce" ~doc:"Shrink a trace (zero-run compression, --prefix)")
    Term.(const reduce_cmd $ file_pos $ out_t $ prefix_t)

let gate_c =
  Cmd.v
    (Cmd.info "gate"
       ~doc:"Record and replay every bundled app; fail on any divergence")
    Term.(const gate_cmd $ quiet_t)

let cmd =
  Cmd.group
    (Cmd.info "walireplay"
       ~doc:"Deterministic record/replay at the WALI boundary")
    [ record_c; replay_c; report_c; reduce_c; gate_c ]

let () = exit (Cmd.eval cmd)
