(* walirun — the `iwasm`-style CLI: run a .wasm WALI binary (or a bundled
   suite app) on the engine over a freshly booted simulated kernel.

     dune exec bin/walirun.exe -- --app minish -- -c "echo hi"
     dune exec bin/walirun.exe -- program.wasm arg1 arg2
     WALI_VERBOSE-style tracing: --trace; policies: --deny read,write;
     statically derived allowlist: --derive-policy (see bin/waliscan.ml) *)

open Cmdliner

let run_cmd file app trace deny derive poll no_fuse record replay trace_out
    metrics_out profile_out top args =
  let fuse = not no_fuse in
  (* with --app, every positional is an application argument *)
  let file, args =
    match app with
    | Some _ -> (None, (match file with Some f -> f :: args | None -> args))
    | None -> (file, args)
  in
  let binary =
    match (file, app) with
    | Some f, _ -> In_channel.with_open_bin f In_channel.input_all
    | None, Some name -> (
        match Apps.Suite.find name with
        | Some a -> Apps.Suite.binary_of a
        | None ->
            Printf.eprintf "unknown app %s; available: %s\n" name
              (String.concat ", "
                 (List.map (fun a -> a.Apps.Suite.a_name) Apps.Suite.all));
            exit 2)
    | None, None ->
        prerr_endline "need a .wasm file or --app NAME";
        exit 2
  in
  let tracer = Wali.Strace.create ~verbose:trace () in
  (* One sink serves all three observability flags. It shares the
     strace tracer's metrics registry, so per-syscall aggregation
     happens exactly once (see Interface.traced_dispatch). *)
  let observe =
    if trace_out = None && metrics_out = None && profile_out = None && not top
    then None
    else
      Some
        (Observe.Sink.create
           ~metrics:(Wali.Strace.metrics tracer)
           {
             Observe.Sink.c_metrics = metrics_out <> None || top;
             c_trace = trace_out <> None;
             c_profile = profile_out <> None;
           })
  in
  let write_file f s =
    Out_channel.with_open_bin f (fun oc -> Out_channel.output_string oc s)
  in
  let dump_observe () =
    match observe with
    | None -> ()
    | Some o ->
        (match trace_out with
        | Some f -> write_file f (Observe.Sink.trace_json o)
        | None -> ());
        (match metrics_out with
        | Some "-" -> print_string (Observe.Sink.metrics_json o)
        | Some f -> write_file f (Observe.Sink.metrics_json o)
        | None -> ());
        (match profile_out with
        | Some f -> write_file f (Observe.Sink.profile_folded o)
        | None -> ());
        if top then prerr_string (Observe.Sink.report o)
  in
  let policy =
    if not derive then Wali.Seccomp.allow_all ()
    else
      match Analysis.Reach.analyze_binary binary with
      | summary ->
          if trace then
            Printf.eprintf "derived allowlist (%d): %s\n"
              (List.length (Analysis.Reach.allowlist summary))
              (String.concat " " (Analysis.Reach.allowlist summary));
          Analysis.Reach.policy summary
      | exception e ->
          Printf.eprintf "walirun: --derive-policy analysis failed: %s\n"
            (Printexc.to_string e);
          exit 2
  in
  (* --deny rules land on top of the derived/open policy; rules prepend,
     so the most recently added (the deny) wins. *)
  List.iter (fun name -> Wali.Seccomp.deny policy name ()) deny;
  let poll_scheme =
    match poll with
    | "none" -> Wasm.Code.Poll_none
    | "funcs" -> Wasm.Code.Poll_funcs
    | "every" -> Wasm.Code.Poll_every
    | _ -> Wasm.Code.Poll_loops
  in
  let argv0 =
    match (file, app) with
    | Some f, _ -> Filename.basename f
    | _, Some a -> a
    | _ -> "wasm"
  in
  (* app setup, shared by the live, record, and replay paths: VFS/process
     state plus the app's scripted stdin (EOF via the dropped writer),
     the same way the test suite drives these programs *)
  let setup kernel =
    match app with
    | Some name -> (
        match Apps.Suite.find name with
        | Some a ->
            a.Apps.Suite.a_setup kernel;
            if a.Apps.Suite.a_stdin <> "" then begin
              Kernel.Task.console_feed kernel a.Apps.Suite.a_stdin;
              Kernel.Pipe.drop_writer kernel.Kernel.Task.console_in
            end
        | None -> ())
    | None -> ()
  in
  (* with --app and no explicit arguments, use the app's scripted argv
     (the same one the test suite and walireplay drive it with) *)
  let argv =
    match (args, app) with
    | [], Some name -> (
        match Apps.Suite.find name with
        | Some a -> a.Apps.Suite.a_argv
        | None -> [ argv0 ])
    | _ -> argv0 :: args
  in
  let env = [ "HOME=/home/user"; "TERM=vt100" ] in
  let print_profile () =
    if trace then begin
      Printf.eprintf "--- syscall profile ---\n";
      List.iter
        (fun (n, c) -> Printf.eprintf "%6d %s\n" c n)
        (Wali.Strace.profile tracer)
    end
  in
  match (record, replay) with
  | Some _, Some _ ->
      prerr_endline "walirun: --record and --replay are exclusive";
      exit 2
  | None, Some trace_file ->
      (* swap the simulated kernel out for the log *)
      let tr =
        match Replay.Trace.load trace_file with
        | tr -> tr
        | exception Replay.Trace.Corrupt msg ->
            Printf.eprintf "walirun: %s: corrupt trace: %s\n" trace_file msg;
            exit 1
        | exception Replay.Trace.Bad_version v ->
            Printf.eprintf "walirun: %s: unsupported trace version %d\n"
              trace_file v;
            exit 1
      in
      let o =
        Replay.Replayer.replay ~setup ~fuse ~trace:tr ~binary ?observe ()
      in
      dump_observe ();
      (match o.Replay.Replayer.rp_divergence with
      | None ->
          Printf.printf "replay converged: %d/%d records, exit status %d\n"
            o.Replay.Replayer.rp_consumed o.Replay.Replayer.rp_total
            (o.Replay.Replayer.rp_status lsr 8);
          exit (o.Replay.Replayer.rp_status lsr 8)
      | Some d ->
          prerr_endline (Replay.Replayer.pp_divergence d);
          exit 1)
  | Some trace_file, None ->
      let kernel = Kernel.Task.boot () in
      setup kernel;
      let r =
        Replay.Recorder.record
          ~app:(Option.value app ~default:"")
          ~poll_scheme ~fuse ~strace:tracer ~policy ~kernel ~binary ~argv ~env
          ?observe ()
      in
      let reduced = Replay.Reduce.reduce r.Replay.Recorder.r_trace in
      Replay.Trace.save trace_file reduced;
      print_string r.Replay.Recorder.r_output;
      Printf.eprintf "recorded %d events (%d bytes) to %s\n"
        (Array.length reduced.Replay.Trace.tr_events)
        (Replay.Reduce.byte_size reduced)
        trace_file;
      dump_observe ();
      print_profile ();
      exit (r.Replay.Recorder.r_status lsr 8)
  | None, None ->
      let kernel = Kernel.Task.boot () in
      setup kernel;
      let status, out, result =
        Wali.Interface.run_program ~kernel ~trace:tracer ~policy ~poll_scheme
          ~fuse ?observe ~binary ~argv ~env ()
      in
      print_string out;
      (match result with
      | Some (Wasm.Interp.R_trap msg) -> Printf.eprintf "trap: %s\n" msg
      | _ -> ());
      dump_observe ();
      print_profile ();
      exit (status lsr 8)

let file_t =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE.wasm")

let args_t = Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS")

let app_t =
  Arg.(value & opt (some string) None & info [ "app" ] ~doc:"Run a bundled suite application.")

let trace_t =
  Arg.(value & flag & info [ "trace"; "t" ] ~doc:"Print each syscall (WALI_VERBOSE).")

let deny_t =
  Arg.(value & opt (list string) [] & info [ "deny" ] ~doc:"Deny these syscalls (seccomp-like policy).")

let derive_t =
  Arg.(value & flag
       & info [ "derive-policy" ]
           ~doc:"Run under the minimal allowlist derived by static \
                 syscall-reachability analysis (default-deny).")

let poll_t =
  Arg.(value & opt string "loops" & info [ "poll" ] ~doc:"Safepoint scheme: none|loops|funcs|every.")

let no_fuse_t =
  Arg.(value & flag
       & info [ "no-fuse" ]
           ~doc:"Disable the macro-op fusion pass: dispatch one flattened \
                 op at a time. Observable behavior is identical either \
                 way; this exists for performance comparison and \
                 differential testing.")

let record_t =
  Arg.(value & opt (some string) None
       & info [ "record" ] ~docv:"FILE"
           ~doc:"Run live and record every syscall, signal delivery and \
                 exit into $(docv) for later deterministic replay.")

let replay_t =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay the run recorded in $(docv) with the kernel \
                 swapped out for the log; fails on the first divergence.")

let trace_out_t =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON timeline of the run \
                 (syscall spans, scheduler quanta, signals, process \
                 lifecycle) to $(docv); load it in Perfetto or \
                 chrome://tracing.")

let metrics_t =
  Arg.(value & opt ~vopt:(Some "-") (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Dump run metrics as JSON (per-syscall latency \
                 histograms with percentiles, kernel and engine \
                 counters) to $(docv), or stdout when $(docv) is \
                 omitted or -.")

let profile_out_t =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE"
           ~doc:"Write a folded-stack CPU profile of the run to \
                 $(docv); feed it to flamegraph.pl or speedscope.")

let top_t =
  Arg.(value & flag
       & info [ "top" ]
           ~doc:"Print a walitop-style summary after the run: run \
                 totals, syscalls sorted by time, kernel counters.")

let cmd =
  Cmd.v
    (Cmd.info "walirun" ~doc:"Run WebAssembly binaries over the WALI kernel interface")
    Term.(const run_cmd $ file_t $ app_t $ trace_t $ deny_t $ derive_t
          $ poll_t $ no_fuse_t $ record_t $ replay_t $ trace_out_t $ metrics_t
          $ profile_out_t $ top_t $ args_t)

let () = exit (Cmd.eval cmd)
