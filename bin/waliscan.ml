(* waliscan — static syscall-reachability analyzer for WALI modules.

   Prints, per module: the import classification, the per-export
   reachability sets, the derived minimal seccomp allowlist, and lint
   diagnostics. With --verify it also runs the module under the derived
   policy and diffs the dynamic strace profile against the static set —
   any escape or denial is an analyzer soundness bug and fails the run.

     dune exec bin/waliscan.exe -- program.wasm
     dune exec bin/waliscan.exe -- --app minish --verify
     dune exec bin/waliscan.exe -- --all --verify --quiet   # the CI gate
     dune exec bin/waliscan.exe -- --policy program.wasm    # allowlist only *)

open Cmdliner

type target = {
  t_name : string;
  t_binary : string;
  t_setup : Kernel.Task.kernel -> unit;
  t_stdin : string;
  t_argv : string list;
}

let target_of_app (a : Apps.Suite.app) =
  {
    t_name = a.Apps.Suite.a_name;
    t_binary = Apps.Suite.binary_of a;
    t_setup = a.Apps.Suite.a_setup;
    t_stdin = a.Apps.Suite.a_stdin;
    t_argv = a.Apps.Suite.a_argv;
  }

let target_of_file f =
  let binary =
    try In_channel.with_open_bin f In_channel.input_all
    with Sys_error e ->
      Printf.eprintf "waliscan: %s\n" e;
      exit 1
  in
  {
    t_name = Filename.basename f;
    t_binary = binary;
    t_setup = (fun _ -> ());
    t_stdin = "";
    t_argv = [ Filename.basename f ];
  }

(* Analyze one target; returns false on analyzer error or failed verify. *)
let scan ~quiet ~policy_only ~verify (t : target) : bool =
  match Analysis.Reach.analyze_binary ~name:t.t_name t.t_binary with
  | exception e ->
      Printf.eprintf "waliscan: %s: analysis failed: %s\n" t.t_name
        (Printexc.to_string e);
      false
  | summary ->
      let lints = Analysis.Lint.lint summary in
      if policy_only then print_string (Analysis.Report.policy_lines summary)
      else if not quiet then Analysis.Report.print ~lints summary;
      if not verify then true
      else begin
        let r =
          Analysis.Crosscheck.run ~setup:t.t_setup ~stdin:t.t_stdin
            ~argv:t.t_argv ~summary ~binary:t.t_binary ()
        in
        if Analysis.Crosscheck.ok r then begin
          (* keep --policy output pipeable: verdict details stay off stdout *)
          if (not quiet) && not policy_only then
            Printf.printf
              "  verify ok: %d dynamic ⊆ %d static syscalls, 0 denials\n"
              (List.length r.Analysis.Crosscheck.cc_dynamic)
              (List.length r.Analysis.Crosscheck.cc_static);
          true
        end
        else begin
          Printf.eprintf
            "waliscan: %s: SOUNDNESS BUG: static set is not a superset of \
             the dynamic profile\n"
            t.t_name;
          List.iter
            (Printf.eprintf "  escaped syscall (traced, not in static set): %s\n")
            r.Analysis.Crosscheck.cc_escaped;
          List.iter
            (fun (n, c) ->
              Printf.eprintf "  denied under derived policy: %s (%d)\n" n c)
            r.Analysis.Crosscheck.cc_denied;
          false
        end
      end

let scan_cmd files app all_apps policy_only verify quiet =
  let targets =
    List.map target_of_file files
    @ (match app with
      | None -> []
      | Some name -> (
          match Apps.Suite.find name with
          | Some a -> [ target_of_app a ]
          | None ->
              Printf.eprintf "unknown app %s; available: %s\n" name
                (String.concat ", "
                   (List.map (fun a -> a.Apps.Suite.a_name) Apps.Suite.all));
              exit 2))
    @ (if all_apps then List.map target_of_app Apps.Suite.all else [])
  in
  if targets = [] then begin
    prerr_endline "waliscan: need FILE.wasm, --app NAME or --all";
    exit 2
  end;
  let ok =
    List.fold_left
      (fun acc t -> scan ~quiet ~policy_only ~verify t && acc)
      true targets
  in
  if quiet && ok && verify then
    Printf.printf "waliscan: %d module%s verified: static ⊇ dynamic, 0 denials\n"
      (List.length targets)
      (if List.length targets = 1 then "" else "s");
  exit (if ok then 0 else 1)

let files_t = Arg.(value & pos_all string [] & info [] ~docv:"FILE.wasm")

let app_t =
  Arg.(value & opt (some string) None
       & info [ "app" ] ~doc:"Analyze a bundled suite application.")

let all_t =
  Arg.(value & flag
       & info [ "all" ] ~doc:"Analyze every bundled suite application.")

let policy_t =
  Arg.(value & flag
       & info [ "policy" ]
           ~doc:"Print only the derived allowlist, one syscall per line.")

let verify_t =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Run each module under its derived policy and fail if the \
                 dynamic syscall profile escapes the static set.")

let quiet_t =
  Arg.(value & flag
       & info [ "quiet"; "q" ] ~doc:"Suppress per-module reports.")

let cmd =
  Cmd.v
    (Cmd.info "waliscan"
       ~doc:"Derive minimal seccomp policies from Wasm modules, statically")
    Term.(const scan_cmd $ files_t $ app_t $ all_t $ policy_t $ verify_t $ quiet_t)

let () = exit (Cmd.eval cmd)
