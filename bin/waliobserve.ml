(* waliobserve — the observability gate (`dune build @observe`).

     dune exec bin/waliobserve.exe -- gate --quiet

   Runs every bundled app with all three observability pillars on and
   validates the artifacts:

     - the Chrome trace-event JSON parses, every B/E span pair is
       correctly nested per (pid, tid) lane and timestamps are
       monotonic per lane (Observe.Check.check_trace);
     - the metrics JSON parses and carries the schema header, run
       block, per-syscall percentiles and kernel counters
       (Observe.Check.check_metrics);
     - the folded-stack profile is non-empty and its total weight
       equals the sink's profiled time exactly;
     - for the forking app (minish) the trace carries at least two
       real process lanes beside the synthetic scheduler lane. *)

open Cmdliner

let check_app quiet (a : Apps.Suite.app) : bool =
  let sink = Observe.Sink.create Observe.Sink.all_on in
  let status, _out = Apps.Suite.run ~observe:sink a in
  let name = a.Apps.Suite.a_name in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "waliobserve: %s: %s\n" name msg;
        false)
      fmt
  in
  match Observe.Check.check_trace (Observe.Sink.trace_json sink) with
  | Error e -> fail "trace: %s" e
  | Ok ts -> (
      let real_pids =
        List.filter (fun p -> p <> Observe.Sink.sched_pid)
          ts.Observe.Check.ts_pids
      in
      if ts.Observe.Check.ts_events = 0 then fail "trace is empty"
      else if name = "minish" && List.length real_pids < 2 then
        fail "expected >= 2 process lanes, got %d" (List.length real_pids)
      else
        match Observe.Check.check_metrics (Observe.Sink.metrics_json sink) with
        | Error e -> fail "metrics: %s" e
        | Ok () -> (
            let folded = Observe.Sink.profile_folded sink in
            match Observe.Check.check_folded folded with
            | Error e -> fail "profile: %s" e
            | Ok total ->
                if Int64.compare total 0L <= 0 then fail "profile is empty"
                else if not (Int64.equal total (Observe.Sink.profile_total sink))
                then
                  fail "profile total %Ld <> profiled time %Ld" total
                    (Observe.Sink.profile_total sink)
                else begin
                  if not quiet then
                    Printf.printf
                      "%-10s status %-3d %6d trace events  %2d lanes  \
                       %8Ld ns profiled\n"
                      name (status lsr 8) ts.Observe.Check.ts_events
                      (List.length real_pids) total;
                  true
                end))

let gate_cmd quiet =
  let ok =
    List.fold_left (fun acc a -> check_app quiet a && acc) true Apps.Suite.all
  in
  if ok && quiet then
    Printf.printf
      "waliobserve: %d apps traced, metered and profiled with valid artifacts\n"
      (List.length Apps.Suite.all);
  exit (if ok then 0 else 1)

let quiet_t =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-app lines.")

let gate_c =
  Cmd.v
    (Cmd.info "gate"
       ~doc:
         "Run every bundled app with tracing, metrics and profiling on; \
          fail on any malformed artifact")
    Term.(const gate_cmd $ quiet_t)

let cmd =
  Cmd.group
    (Cmd.info "waliobserve"
       ~doc:"Validate observability artifacts over the bundled app suite")
    [ gate_c ]

let () = exit (Cmd.eval cmd)
