(** Differential profiler: diff two folded-stack dumps (the
    {!Observe.Profile} output format) into a flamegraph-diff report.

    Weights are deterministic profile nanoseconds (instructions retired
    plus virtual time below the WALI boundary), so a non-zero delta is a
    real behavior change, and the frames and syscall leaves carrying the
    delta name the responsible code. *)

type entry = {
  e_stack : string; (* semicolon-joined frames, leaf last *)
  e_base : int64;
  e_cur : int64;
}

let delta e = Int64.sub e.e_cur e.e_base

type t = {
  d_base_total : int64;
  d_cur_total : int64;
  d_entries : entry list; (* |delta| descending, then stack *)
}

let total_delta t = Int64.sub t.d_cur_total t.d_base_total

(** Parse a folded dump into [(stack, weight)] pairs. Duplicate stacks
    (legal in the format) accumulate. *)
let parse_folded (s : string) : ((string * int64) list, string) result =
  let tbl : (string, int64 ref) Hashtbl.t = Hashtbl.create 64 in
  let rec go = function
    | [] ->
        Ok
          (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> compare a b))
    | "" :: rest -> go rest
    | line :: rest -> (
        match String.rindex_opt line ' ' with
        | None -> Error (Printf.sprintf "malformed folded line: %s" line)
        | Some i -> (
            let stack = String.sub line 0 i in
            let w = String.sub line (i + 1) (String.length line - i - 1) in
            match Int64.of_string_opt w with
            | None -> Error (Printf.sprintf "malformed weight: %s" line)
            | Some w ->
                (match Hashtbl.find_opt tbl stack with
                | Some r -> r := Int64.add !r w
                | None -> Hashtbl.replace tbl stack (ref w));
                go rest))
  in
  go (String.split_on_char '\n' s)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let cmp_abs_delta a b =
  let c = Int64.compare (Int64.abs (delta b)) (Int64.abs (delta a)) in
  if c <> 0 then c else compare a.e_stack b.e_stack

(** Diff two folded dumps. Stacks present on only one side diff against
    weight 0 on the other. *)
let diff ~(base : string) ~(cur : string) : (t, string) result =
  let* base_l = parse_folded base in
  let* cur_l = parse_folded cur in
  let tbl : (string, int64 * int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (k, w) -> Hashtbl.replace tbl k (w, 0L)) base_l;
  List.iter
    (fun (k, w) ->
      match Hashtbl.find_opt tbl k with
      | Some (bw, _) -> Hashtbl.replace tbl k (bw, w)
      | None -> Hashtbl.replace tbl k (0L, w))
    cur_l;
  let entries =
    Hashtbl.fold
      (fun k (bw, cw) acc ->
        if Int64.equal bw cw then acc
        else { e_stack = k; e_base = bw; e_cur = cw } :: acc)
      tbl []
    |> List.sort cmp_abs_delta
  in
  let sum l = List.fold_left (fun a (_, w) -> Int64.add a w) 0L l in
  Ok { d_base_total = sum base_l; d_cur_total = sum cur_l; d_entries = entries }

(* Net delta attributed per frame: each changed stack charges its delta
   to every distinct frame on it (once, even under recursion). The frame
   carrying the largest |delta| names the responsible code. *)
let by_frame (t : t) ~(pick : string list -> string list) :
    (string * int64) list =
  let tbl : (string, int64 ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let frames =
        pick (String.split_on_char ';' e.e_stack) |> List.sort_uniq compare
      in
      List.iter
        (fun f ->
          match Hashtbl.find_opt tbl f with
          | Some r -> r := Int64.add !r (delta e)
          | None -> Hashtbl.replace tbl f (ref (delta e)))
        frames)
    t.d_entries;
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.filter (fun (_, d) -> not (Int64.equal d 0L))
  |> List.sort (fun (an, a) (bn, b) ->
         let c = Int64.compare (Int64.abs b) (Int64.abs a) in
         if c <> 0 then c else compare an bn)

(** Delta per frame, any stack position. *)
let frames (t : t) : (string * int64) list = by_frame t ~pick:(fun fs -> fs)

(** Delta per leaf frame — for WALI profiles the leaf of a boundary
    crossing is the syscall name, so this attributes drift to syscalls. *)
let leaves (t : t) : (string * int64) list =
  by_frame t ~pick:(fun fs ->
      match List.rev fs with [] -> [] | leaf :: _ -> [ leaf ])

(** Human flamegraph-diff report: totals, the top changed stacks, and the
    responsible frames and leaves. *)
let render ?(top = 10) (t : t) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "profile delta: %+Ld ns (baseline %Ld ns -> current %Ld ns), %d stacks changed\n"
    (total_delta t) t.d_base_total t.d_cur_total
    (List.length t.d_entries);
  if t.d_entries = [] then Buffer.add_string b "profiles are identical\n"
  else begin
    Printf.bprintf b "top changed stacks:\n";
    List.iteri
      (fun i e ->
        if i < top then
          Printf.bprintf b "  %+10Ld ns  %s  (%Ld -> %Ld)\n" (delta e)
            e.e_stack e.e_base e.e_cur)
      t.d_entries;
    Printf.bprintf b "responsible frames:\n";
    List.iteri
      (fun i (f, d) ->
        if i < top then Printf.bprintf b "  %+10Ld ns  %s\n" d f)
      (frames t);
    Printf.bprintf b "responsible leaves (syscalls):\n";
    List.iteri
      (fun i (f, d) ->
        if i < top then Printf.bprintf b "  %+10Ld ns  %s\n" d f)
      (leaves t)
  end;
  Buffer.contents b
