(** Baseline comparison: classify every metric of the current run against
    the committed baseline.

    Deterministic counters get 0% tolerance — any drift, in either
    direction, is a real behavior change and fails the gate until the
    baseline is deliberately updated. Wall metrics tolerate the larger of
    a relative floor and the combined MAD noise bands of the two runs,
    and only [Regressed] (slower beyond the band) counts against a
    comparison. All units we emit are lower-is-better (ns, ms, counts of
    work, bytes of trace), so "improved" means "smaller". *)

type verdict =
  | Unchanged (* exactly equal *)
  | Within_noise (* wall metric inside its tolerance band *)
  | Improved (* smaller, beyond tolerance *)
  | Regressed (* larger, beyond tolerance *)
  | Added (* in current, not in baseline *)
  | Removed (* in baseline, gone from current *)

let verdict_name = function
  | Unchanged -> "unchanged"
  | Within_noise -> "within-noise"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Added -> "added"
  | Removed -> "removed"

type row = {
  r_scenario : string;
  r_metric : string;
  r_kind : Model.kind;
  r_unit : string;
  r_base : float;
  r_cur : float;
  r_delta_pct : float; (* (cur - base) / base * 100; 0 when base = 0 *)
  r_tol_pct : float; (* the tolerance the verdict used *)
  r_verdict : verdict;
}

(** Tolerance for a wall metric, in percent: the larger of [floor_pct]
    and [k] times the combined relative noise of both measurements. *)
let wall_tolerance ?(floor_pct = 5.0) ?(k = 3.0)
    ~(base : Model.metric) ~(cur : Model.metric) () : float =
  let rel m =
    if m.Model.m_value <= 0.0 then 0.0 else m.Model.m_mad /. m.Model.m_value
  in
  Stdlib.max floor_pct (k *. (rel base +. rel cur) *. 100.0)

let classify ?floor_pct ?k ~scenario ~name ~(base : Model.metric)
    ~(cur : Model.metric) () : row =
  let delta_pct =
    if base.Model.m_value = 0.0 then
      if cur.Model.m_value = 0.0 then 0.0 else 100.0
    else
      (cur.Model.m_value -. base.Model.m_value) /. base.Model.m_value *. 100.0
  in
  let tol, verdict =
    match cur.Model.m_kind with
    | Model.Counter ->
        ( 0.0,
          if cur.Model.m_value = base.Model.m_value then Unchanged
          else if cur.Model.m_value < base.Model.m_value then Improved
          else Regressed )
    | Model.Wall ->
        let tol = wall_tolerance ?floor_pct ?k ~base ~cur () in
        ( tol,
          if cur.Model.m_value = base.Model.m_value then Unchanged
          else if abs_float delta_pct <= tol then Within_noise
          else if delta_pct < 0.0 then Improved
          else Regressed )
  in
  {
    r_scenario = scenario;
    r_metric = name;
    r_kind = cur.Model.m_kind;
    r_unit = cur.Model.m_unit;
    r_base = base.Model.m_value;
    r_cur = cur.Model.m_value;
    r_delta_pct = delta_pct;
    r_tol_pct = tol;
    r_verdict = verdict;
  }

let missing ~scenario ~name ~(m : Model.metric) ~(verdict : verdict) : row =
  {
    r_scenario = scenario;
    r_metric = name;
    r_kind = m.Model.m_kind;
    r_unit = m.Model.m_unit;
    r_base = (if verdict = Added then 0.0 else m.Model.m_value);
    r_cur = (if verdict = Added then m.Model.m_value else 0.0);
    r_delta_pct = 0.0;
    r_tol_pct = 0.0;
    r_verdict = verdict;
  }

(** Compare two runs scenario by scenario, metric by metric. Rows come
    out in the canonical scenario/metric order — deterministic. *)
let compare_runs ?floor_pct ?k ~(base : Model.t) ~(cur : Model.t) () :
    row list =
  let rows = ref [] in
  let emit r = rows := r :: !rows in
  List.iter
    (fun (sc, cur_metrics) ->
      match Model.find_scenario base sc with
      | None ->
          List.iter
            (fun (n, m) -> emit (missing ~scenario:sc ~name:n ~m ~verdict:Added))
            cur_metrics
      | Some base_metrics ->
          List.iter
            (fun (n, cur_m) ->
              match List.assoc_opt n base_metrics with
              | None -> emit (missing ~scenario:sc ~name:n ~m:cur_m ~verdict:Added)
              | Some base_m ->
                  emit
                    (classify ?floor_pct ?k ~scenario:sc ~name:n ~base:base_m
                       ~cur:cur_m ()))
            cur_metrics;
          List.iter
            (fun (n, m) ->
              if List.assoc_opt n cur_metrics = None then
                emit (missing ~scenario:sc ~name:n ~m ~verdict:Removed))
            base_metrics)
    cur.Model.b_scenarios;
  List.iter
    (fun (sc, base_metrics) ->
      if Model.find_scenario cur sc = None then
        List.iter
          (fun (n, m) -> emit (missing ~scenario:sc ~name:n ~m ~verdict:Removed))
          base_metrics)
    base.Model.b_scenarios;
  List.rev !rows

let regressions rows = List.filter (fun r -> r.r_verdict = Regressed) rows

(** Counter rows that moved at all — the gate's failure condition. A
    counter that "improved" without a baseline update is just as much an
    unexplained behavior change as one that regressed. *)
let counter_drift rows =
  List.filter
    (fun r ->
      r.r_kind = Model.Counter
      && (match r.r_verdict with
         | Unchanged | Within_noise -> false
         | Improved | Regressed | Added | Removed -> true))
    rows

(** Render rows as an aligned table; [all] includes unchanged rows. *)
let render ?(all = false) (rows : row list) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "%-28s %-16s %14s %14s %8s %6s  %s\n" "scenario" "metric"
    "baseline" "current" "delta" "tol" "verdict";
  List.iter
    (fun r ->
      if all || r.r_verdict <> Unchanged then
        Printf.bprintf b "%-28s %-16s %14s %14s %+7.1f%% %5.1f%%  %s\n"
          r.r_scenario r.r_metric
          (Model.pp_num r.r_base ^ " " ^ r.r_unit)
          (Model.pp_num r.r_cur ^ " " ^ r.r_unit)
          r.r_delta_pct r.r_tol_pct
          (verdict_name r.r_verdict))
    rows;
  Buffer.contents b
