(** The [wali-bench v1] benchmark-result model.

    A run is a map of scenarios (["app/calc"], ["table2/write"], …), each
    carrying a map of metrics. Every metric declares its nature:

    - [Counter] — a deterministic quantity (instructions retired, syscall
      crossings, virtual-clock ns). Exact by construction; two identical
      builds must emit the identical value, so baselines gate these at
      zero tolerance.
    - [Wall] — a host wall-clock measurement, reported as min-of-N with a
      MAD noise band (see {!Stats}); comparisons tolerate the band.

    Emission is canonical — scenarios and metrics sorted by name, fixed
    number formats — so a run of pure counters serializes byte-identically
    every time. Parsing reuses {!Observe.Json}; structural validity is
    {!Observe.Check.check_bench}'s job. *)

type kind = Counter | Wall

type metric = {
  m_kind : kind;
  m_value : float; (* counter: exact integral; wall: min-of-N *)
  m_unit : string; (* "count" | "ns" | "ms" | "bytes" | "pct" *)
  m_n : int; (* samples behind the value; 1 for counters *)
  m_mad : float; (* noise band; 0 for counters *)
}

type t = {
  b_suite : string;
  b_scenarios : (string * (string * metric) list) list; (* both sorted *)
}

let schema_version = 1

let counter ?(unit_ = "count") (v : float) : metric =
  { m_kind = Counter; m_value = v; m_unit = unit_; m_n = 1; m_mad = 0.0 }

let counter_i ?unit_ (v : int64) : metric = counter ?unit_ (Int64.to_float v)

let wall_v ?(unit_ = "ns") ~n ~mad (v : float) : metric =
  { m_kind = Wall; m_value = v; m_unit = unit_; m_n = n; m_mad = mad }

let wall ?unit_ (s : Stats.t) : metric =
  wall_v ?unit_ ~n:s.Stats.s_n ~mad:s.Stats.s_mad s.Stats.s_min

let by_fst l = List.sort (fun (a, _) (b, _) -> compare a b) l

(** Build a run with canonical ordering applied. *)
let make ~suite (scenarios : (string * (string * metric) list) list) : t =
  { b_suite = suite; b_scenarios = by_fst (List.map (fun (n, ms) -> (n, by_fst ms)) scenarios) }

let find_scenario t name = List.assoc_opt name t.b_scenarios
let find_metric t ~scenario ~metric =
  Option.bind (find_scenario t scenario) (List.assoc_opt metric)

(* ---- emission ---- *)

(* Canonical number format: integral values (every counter we emit, and
   most ns values) print with no fraction; the rest keep a fixed three
   decimals. Both re-parse to the same float, so emit-parse-emit is the
   identity. *)
let pp_num (v : float) : string =
  if Float.is_integer v && abs_float v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let kind_name = function Counter -> "counter" | Wall -> "wall"

let to_json (t : t) : string =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"schema\":\"wali-bench\",\"version\":%d,\"suite\":%s,"
    schema_version
    (Observe.Json.quote t.b_suite);
  Buffer.add_string b "\"scenarios\":{";
  List.iteri
    (fun i (sc, metrics) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%s:{\"metrics\":{" (Observe.Json.quote sc);
      List.iteri
        (fun j (name, m) ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%s:{\"kind\":\"%s\",\"value\":%s,\"unit\":%s"
            (Observe.Json.quote name) (kind_name m.m_kind) (pp_num m.m_value)
            (Observe.Json.quote m.m_unit);
          (match m.m_kind with
          | Counter -> ()
          | Wall -> Printf.bprintf b ",\"n\":%d,\"mad\":%s" m.m_n (pp_num m.m_mad));
          Buffer.add_char b '}')
        metrics;
      Buffer.add_string b "}}")
    t.b_scenarios;
  Buffer.add_string b "}}\n";
  Buffer.contents b

(* ---- parsing ---- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let of_json (s : string) : (t, string) result =
  (* validate first: everything below can then assume the shape *)
  let* () = Observe.Check.check_bench s in
  let* doc = Observe.Json.parse_result s in
  let str name obj d =
    match Option.bind (Observe.Json.member name obj) Observe.Json.to_str with
    | Some s -> s
    | None -> d
  in
  let num name obj d =
    match Option.bind (Observe.Json.member name obj) Observe.Json.to_num with
    | Some f -> f
    | None -> d
  in
  let metric_of m =
    let kind = if str "kind" m "counter" = "wall" then Wall else Counter in
    {
      m_kind = kind;
      m_value = num "value" m 0.0;
      m_unit = str "unit" m "count";
      m_n = (match kind with Counter -> 1 | Wall -> int_of_float (num "n" m 1.0));
      m_mad = (match kind with Counter -> 0.0 | Wall -> num "mad" m 0.0);
    }
  in
  let scenarios =
    match Option.bind (Observe.Json.member "scenarios" doc) Observe.Json.to_obj with
    | None -> []
    | Some kvs ->
        List.map
          (fun (sc, body) ->
            let metrics =
              match
                Option.bind (Observe.Json.member "metrics" body)
                  Observe.Json.to_obj
              with
              | None -> []
              | Some ms -> List.map (fun (n, m) -> (n, metric_of m)) ms
            in
            (sc, metrics))
          kvs
  in
  Ok (make ~suite:(str "suite" doc "") scenarios)

(* ---- files ---- *)

let save (file : string) (t : t) : unit =
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (to_json t))

let load (file : string) : (t, string) result =
  match In_channel.with_open_bin file In_channel.input_all with
  | s -> of_json s
  | exception Sys_error e -> Error e
