(** Wall-clock sample statistics: min-of-N with a MAD-based noise band.

    Host wall time is a one-sided distribution — contention only ever
    adds time — so the minimum of N repeats is the best estimator of the
    uncontended cost, and the median absolute deviation (MAD) of the
    samples is a robust noise band that a single outlier cannot inflate.
    Deterministic counters never go through this module: they are exact
    and gate at zero tolerance (see {!Baseline}). *)

type t = {
  s_n : int; (* samples behind the estimate *)
  s_min : float; (* the reported value: min of the samples *)
  s_median : float;
  s_mad : float; (* median |sample - median|: the noise band *)
}

let zero = { s_n = 0; s_min = 0.0; s_median = 0.0; s_mad = 0.0 }

(** Median of a non-empty list (mean of the middle two for even n). *)
let median (xs : float list) : float =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let of_samples (xs : float list) : t =
  match xs with
  | [] -> zero
  | _ ->
      let med = median xs in
      {
        s_n = List.length xs;
        s_min = List.fold_left min infinity xs;
        s_median = med;
        s_mad = median (List.map (fun x -> abs_float (x -. med)) xs);
      }

(** [measure ~n f] runs the sampler [f] once for warmup (discarded), then
    [n] times, and summarizes the samples. [f] returns one measurement —
    the clock stays with the caller so this library needs none. *)
let measure ?(warmup = 1) ?(n = 5) (f : unit -> float) : t =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  of_samples (List.init n (fun _ -> f ()))

(** Relative noise band, as a fraction of the reported minimum (0 when
    the minimum is 0 — an all-zero measurement has no meaningful band). *)
let rel_noise (s : t) : float = if s.s_min <= 0.0 then 0.0 else s.s_mad /. s.s_min
