(** The deterministic scenario runner behind `waliperf`.

    Each bundled app runs once with the metrics and profiling pillars on
    (no tracing — the trace buffer is the one pillar whose cost scales
    with the run and the gate never reads it), and reports only
    deterministic counters: instructions retired, syscall crossings,
    virtual-clock nanoseconds, scheduler and kernel event counts. Two
    runs of the same build produce byte-identical results, which is what
    lets the baseline gate use zero tolerance.

    The suite-level scenario merges every per-app latency histogram
    ({!Observe.Hist.merge}) into whole-suite percentiles of time below
    the WALI boundary — still virtual-clock, still deterministic. *)

let gate_cfg =
  { Observe.Sink.c_metrics = true; c_trace = false; c_profile = true }

type app_result = {
  ar_name : string;
  ar_status : int; (* raw wait status *)
  ar_metrics : (string * Model.metric) list;
  ar_folded : string; (* the folded-stack profile of the run *)
  ar_reg : Observe.Metrics.t; (* the run's syscall registry *)
}

let scenario_name app = "app/" ^ app

let run_app ?(fuse = true) ?(walls = false) (a : Apps.Suite.app) : app_result =
  let sink = Observe.Sink.create gate_cfg in
  let status, _out = Apps.Suite.run ~fuse ~observe:sink a in
  let rc = Observe.Sink.run_counters sink in
  let reg = Observe.Sink.metrics sink in
  let ks = Observe.Sink.kstats_or_zero sink in
  let ci = Model.counter_i in
  let c v = Model.counter (float_of_int v) in
  (* Host wall-clock is the one non-deterministic metric and is opt-in:
     the gate and the committed baselines never see it (Wall rows would
     be hardware-dependent), but `waliperf run --walls` measures it so
     fused and unfused runs can be compared on real time. *)
  let wall_metrics =
    if not walls then []
    else
      let sample () =
        (* decorrelate minor-heap state between samples; at sub-ms run
           lengths a collection landing inside one sample otherwise
           dominates the measurement *)
        Gc.minor ();
        let t0 = Unix.gettimeofday () in
        ignore (Apps.Suite.run ~fuse a);
        (Unix.gettimeofday () -. t0) *. 1e9
      in
      (* Short runs (boot-dominated, sub-ms) are noisy at n=5: take more
         samples so the min-of-N actually reaches the uncontended floor.
         The pilot sample doubles as warmup. *)
      let pilot = sample () in
      let n = if pilot < 1e6 then 25 else if pilot < 10e6 then 9 else 5 in
      let s = Stats.measure ~warmup:1 ~n sample in
      [ ("host_wall_ns", Model.wall s) ]
  in
  {
    ar_name = a.Apps.Suite.a_name;
    ar_status = status;
    ar_metrics =
      [
        ("instructions", ci rc.Observe.Sink.rc_instructions);
        ("fused_dispatches", ci rc.Observe.Sink.rc_fused);
        ("fusion_sites", c rc.Observe.Sink.rc_fusion_sites);
        ("fusion_ops_before", c rc.Observe.Sink.rc_fusion_ops_before);
        ("fusion_ops_after", c rc.Observe.Sink.rc_fusion_ops_after);
        ("syscalls", c (Observe.Metrics.total_calls reg));
        ("unique_syscalls", c (Observe.Metrics.unique reg));
        ("syscall_errors", c (Observe.Metrics.total_errors reg));
        ("syscall_ns", ci ~unit_:"ns" (Observe.Metrics.total_ns reg));
        ("virtual_ns", ci ~unit_:"ns" rc.Observe.Sink.rc_wall_ns);
        ("profile_ns", ci ~unit_:"ns" rc.Observe.Sink.rc_profile_ns);
        ("ctx_switches", c rc.Observe.Sink.rc_ctx_switches);
        ("processes", c rc.Observe.Sink.rc_processes);
        ("safepoint_polls", ci rc.Observe.Sink.rc_safepoint_polls);
        ("dcache_hits", ci ks.Observe.Metrics.dcache_hits);
        ("dcache_misses", ci ks.Observe.Metrics.dcache_misses);
        ("exit_status", c (status lsr 8));
      ]
      @ wall_metrics;
    ar_folded = Observe.Sink.profile_folded sink;
    ar_reg = reg;
  }

(** Suite-level aggregate: merge the per-syscall latency histograms of
    every app into one, and report whole-suite counters and latency
    percentiles below the WALI boundary. *)
let suite_scenario (results : app_result list) :
    string * (string * Model.metric) list =
  let merged =
    List.fold_left
      (fun acc r ->
        Observe.Metrics.fold
          (fun _ (s : Observe.Metrics.syscall_stats) acc ->
            Observe.Hist.merge acc s.Observe.Metrics.hist)
          r.ar_reg acc)
      (Observe.Hist.create ()) results
  in
  let sum name =
    List.fold_left
      (fun a r ->
        match List.assoc_opt name r.ar_metrics with
        | Some m -> a +. m.Model.m_value
        | None -> a)
      0.0 results
  in
  ( "suite",
    [
      ("apps", Model.counter (float_of_int (List.length results)));
      ("instructions", Model.counter (sum "instructions"));
      ("fused_dispatches", Model.counter (sum "fused_dispatches"));
      ("dcache_hits", Model.counter (sum "dcache_hits"));
      ("dcache_misses", Model.counter (sum "dcache_misses"));
      ("syscalls", Model.counter (sum "syscalls"));
      ("virtual_ns", Model.counter ~unit_:"ns" (sum "virtual_ns"));
      ( "latency_p50_ns",
        Model.counter_i ~unit_:"ns" (Observe.Hist.percentile merged 0.50) );
      ( "latency_p90_ns",
        Model.counter_i ~unit_:"ns" (Observe.Hist.percentile merged 0.90) );
      ( "latency_p99_ns",
        Model.counter_i ~unit_:"ns" (Observe.Hist.percentile merged 0.99) );
      ( "latency_max_ns",
        Model.counter_i ~unit_:"ns" (Observe.Hist.max_value merged) );
    ] )

(** Run the suite's deterministic scenarios: the [wali-bench v1] run plus
    the per-app folded profiles (for the differential profiler). *)
let run_suite ?(apps = Apps.Suite.all) ?fuse ?walls () :
    Model.t * (string * string) list =
  let results = List.map (run_app ?fuse ?walls) apps in
  let scenarios =
    suite_scenario results
    :: List.map (fun r -> (scenario_name r.ar_name, r.ar_metrics)) results
  in
  let model = Model.make ~suite:"wali-deterministic" scenarios in
  let profiles = List.map (fun r -> (r.ar_name, r.ar_folded)) results in
  (model, profiles)
