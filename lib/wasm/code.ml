(** Validation + flattening of structured instructions into executable
    flat code with resolved jump targets.

    Structured control (block/loop/if/br/br_table) is compiled into
    [K_br]-style ops carrying [(target_pc, arity, drop)]: at runtime the top
    [arity] values are the branch payload and [drop] slots beneath them are
    discarded. The drop counts are computed statically from the validator's
    stack heights, so the interpreter needs no label bookkeeping at all —
    the sidetable technique used by in-place interpreters.

    The compiler also inserts [K_poll] safepoints according to the chosen
    scheme; this is where the WALI signal-delivery experiments (paper
    Table 3) get their loop/function/every-instruction variants. *)

open Types
open Ast

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

type jump = { mutable target : int; arity : int; drop : int }

type op =
  | K_unreachable
  | K_br of jump
  | K_br_if of jump
  | K_br_table of jump array * jump
  | K_return
  | K_call of int
  | K_call_indirect of int * int
  | K_drop
  | K_select
  | K_local_get of int
  | K_local_set of int
  | K_local_tee of int
  | K_global_get of int
  | K_global_set of int
  | K_load of load_kind * int (* offset *)
  | K_store of store_kind * int
  | K_memory_size
  | K_memory_grow
  | K_memory_fill
  | K_memory_copy
  | K_const of Values.value
  | K_i32_eqz
  | K_i64_eqz
  | K_i32_unop of int_unop
  | K_i64_unop of int_unop
  | K_i32_binop of int_binop
  | K_i64_binop of int_binop
  | K_i32_relop of int_relop
  | K_i64_relop of int_relop
  | K_f32_unop of float_unop
  | K_f64_unop of float_unop
  | K_f32_binop of float_binop
  | K_f64_binop of float_binop
  | K_f32_relop of float_relop
  | K_f64_relop of float_relop
  | K_cvt of cvt
  | K_poll
  (* Superinstructions produced by the [fuse] pass: each stands for the
     short op sequence named by its constructor and gets a dedicated
     unboxed handler in {!Interp}. No pattern contains [K_poll], a call
     or a branch *interior*, so safepoint delivery, the analyzer's call
     graph and jump targets are all untouched by fusion. *)
  | F_ll_i32_binop of int * int * int_binop
      (* local_get a; local_get b; i32.binop *)
  | F_ll_i32_binop_set of int * int * int_binop * int
      (* local_get a; local_get b; i32.binop; local_set d *)
  | F_lc_i32_binop of int * Int32.t * int_binop
      (* local_get a; i32.const c; i32.binop *)
  | F_lc_i32_binop_set of int * Int32.t * int_binop * int
      (* local_get a; i32.const c; i32.binop; local_set d *)
  | F_const_i32_binop of Int32.t * int_binop
      (* i32.const c; i32.binop — tos := tos op c *)
  | F_i32_binop_set of int_binop * int
      (* i32.binop; local_set d — sink the result into a local *)
  | F_local_load of int * load_kind * int
      (* local_get a; load — address comes straight from the local *)
  | F_i32_relop_br_if of int_relop * jump
      (* i32.relop; br_if — fused compare-and-branch *)
  | F_ll_i32_relop_br_if of int * int * int_relop * jump
      (* local_get a; local_get b; i32.relop; br_if *)
  | F_lc_i32_relop_br_if of int * Int32.t * int_relop * jump
      (* local_get a; i32.const c; i32.relop; br_if *)
  | F_lc_store of int * Values.value * store_kind * int
      (* local_get a; const v; store — mem[local a + off] := v *)
  | F_i32_eqz_br_if of jump
      (* i32.eqz; br_if — branch-if-zero *)
  | F_i32_relop_eqz_br_if of int_relop * jump
      (* i32.relop; i32.eqz; br_if — branch on the *negated* compare;
         minicc lowers `if (a < b)` fall-through edges this way *)
  | F_ll_i32_relop_eqz_br_if of int * int * int_relop * jump
      (* local_get a; local_get b; i32.relop; i32.eqz; br_if *)
  | F_lc_i32_relop_eqz_br_if of int * Int32.t * int_relop * jump
      (* local_get a; i32.const c; i32.relop; i32.eqz; br_if *)
  | F_l_i32_binop of int * int_binop
      (* local_get b; i32.binop — tos := tos op local b *)
  | F_i32_binop_load of int_binop * load_kind * int
      (* i32.binop; load — address computed by the binop *)
  | F_i32_binop_binop of int_binop * int_binop
      (* i32.binop; i32.binop — chained arithmetic *)
  | F_i32_binop_store of int_binop * store_kind * int
      (* i32.binop; store — store the freshly computed value *)
  | F_l_store of int * store_kind * int
      (* local_get v; store — mem[pop + off] := local v *)
  | F_set_get of int
      (* local_set i; local_get i — a tee spelled as two ops *)
  | F_i32_eqz_eqz
      (* i32.eqz; i32.eqz — normalize to 0/1 *)

and load_kind =
  | L_i32 | L_i64 | L_f32 | L_f64
  | L_i32_8 of extension | L_i32_16 of extension
  | L_i64_8 of extension | L_i64_16 of extension | L_i64_32 of extension

and store_kind =
  | S_i32 | S_i64 | S_f32 | S_f64
  | S_i32_8 | S_i32_16 | S_i64_8 | S_i64_16 | S_i64_32

and cvt =
  | C_i32_wrap_i64
  | C_i64_extend_i32 of extension
  | C_i32_trunc_f32 of extension
  | C_i32_trunc_f64 of extension
  | C_i64_trunc_f32 of extension
  | C_i64_trunc_f64 of extension
  | C_f32_convert_i32 of extension
  | C_f32_convert_i64 of extension
  | C_f64_convert_i32 of extension
  | C_f64_convert_i64 of extension
  | C_f32_demote_f64
  | C_f64_promote_f32
  | C_i32_reinterpret_f32
  | C_i64_reinterpret_f64
  | C_f32_reinterpret_i32
  | C_f64_reinterpret_i64
  | C_i32_extend8_s
  | C_i32_extend16_s
  | C_i64_extend8_s
  | C_i64_extend16_s
  | C_i64_extend32_s

type poll_scheme = Poll_none | Poll_loops | Poll_funcs | Poll_every

type fcode = {
  fc_name : string;
  fc_type : func_type;
  fc_arity : int; (* List.length fc_type.results, precomputed for returns *)
  fc_nparams : int; (* List.length fc_type.params, precomputed for calls *)
  fc_locals : val_type array; (* params followed by extra locals *)
  fc_ops : op array;
}

(* ------------------------------------------------------------------ *)
(* Validator state                                                      *)
(* ------------------------------------------------------------------ *)

(* A control frame. [cf_height] is the absolute value-stack height just
   after the frame's parameters were (conceptually) re-pushed at entry. *)
type ctrl = {
  cf_is_loop : bool;
  cf_params : val_type list;
  cf_results : val_type list;
  cf_height : int; (* stack height at entry, including params *)
  mutable cf_unreachable : bool;
  (* Forward-branch jumps to patch once the frame ends. Loops need no
     patching: their target is known at entry. *)
  mutable cf_patches : jump list;
  cf_target_if_loop : int; (* pc of loop header *)
}

type env = {
  e_module : module_;
  e_func_types : func_type array; (* full func index space *)
  e_global_types : global_type array; (* full global index space *)
  e_num_memories : int;
  e_num_tables : int;
}

let resolve_block_type env = function
  | Bt_none -> { params = []; results = [] }
  | Bt_val t -> { params = []; results = [ t ] }
  | Bt_type i ->
      if i < 0 || i >= Array.length env.e_module.types then
        invalid "block type index %d out of range" i;
      env.e_module.types.(i)

let compile_func env ~poll (f : func) : fcode =
  let ftype = env.e_module.types.(f.f_type) in
  let locals = Array.of_list (ftype.params @ f.f_locals) in
  let nlocals = Array.length locals in
  (* Emission buffer. *)
  let buf = ref (Array.make 64 K_return) in
  let len = ref 0 in
  let emit op =
    if !len = Array.length !buf then begin
      let b = Array.make (2 * !len) K_return in
      Array.blit !buf 0 b 0 !len;
      buf := b
    end;
    !buf.(!len) <- op;
    incr len
  in
  (* Value stack of types; Unknown height handling via frame.unreachable. *)
  let vstack = ref [] in
  let vheight = ref 0 in
  let ctrls : ctrl list ref = ref [] in
  let cur_ctrl () =
    match !ctrls with [] -> invalid "control stack underflow" | c :: _ -> c
  in
  let push_v t =
    vstack := t :: !vstack;
    incr vheight
  in
  (* Pops are polymorphic once the current frame is unreachable and the
     stack has been drained to the frame base. *)
  let pop_any () =
    let c = cur_ctrl () in
    if !vheight <= c.cf_height - List.length c.cf_params then
      if c.cf_unreachable then None (* polymorphic *)
      else invalid "%s: value stack underflow" f.f_name
    else
      match !vstack with
      | t :: rest ->
          vstack := rest;
          decr vheight;
          Some t
      | [] -> invalid "%s: value stack underflow" f.f_name
  in
  let pop_expect t =
    match pop_any () with
    | None -> ()
    | Some t' when t' = t -> ()
    | Some t' ->
        invalid "%s: type mismatch, expected %s got %s" f.f_name
          (string_of_val_type t) (string_of_val_type t')
  in
  let pop_list ts = List.iter pop_expect (List.rev ts) in
  let push_list ts = List.iter push_v ts in
  let push_ctrl ~is_loop bt target =
    let c =
      {
        cf_is_loop = is_loop;
        cf_params = bt.params;
        cf_results = bt.results;
        cf_height = !vheight;
        cf_unreachable = false;
        cf_patches = [];
        cf_target_if_loop = target;
      }
    in
    ctrls := c :: !ctrls
  in
  let mark_unreachable () =
    let c = cur_ctrl () in
    (* Reset stack to frame base; subsequent pops are polymorphic. *)
    let base = c.cf_height - List.length c.cf_params in
    while !vheight > base do
      ignore (pop_any ())
    done;
    c.cf_unreachable <- true
  in
  let label_of idx =
    let rec nth n = function
      | [] -> invalid "%s: branch depth %d out of range" f.f_name idx
      | c :: rest -> if n = 0 then c else nth (n - 1) rest
    in
    nth idx !ctrls
  in
  (* Branch payload types for label l. *)
  let label_types c = if c.cf_is_loop then c.cf_params else c.cf_results in
  (* Build a jump record for a branch to control frame [c] taken when the
     value stack currently holds [h] values (after popping any condition). *)
  let make_jump c h =
    let arity = List.length (label_types c) in
    let dest_height =
      if c.cf_is_loop then c.cf_height
      else c.cf_height - List.length c.cf_params + List.length c.cf_results
    in
    let drop = h - dest_height in
    let drop = if drop < 0 then 0 (* unreachable code only *) else drop in
    let j =
      {
        target = (if c.cf_is_loop then c.cf_target_if_loop else -1);
        arity;
        drop;
      }
    in
    if not c.cf_is_loop then c.cf_patches <- j :: c.cf_patches;
    j
  in
  let reachable () = not (cur_ctrl ()).cf_unreachable in
  let check_local i =
    if i < 0 || i >= nlocals then invalid "%s: local %d out of range" f.f_name i
  in
  let check_global i =
    if i < 0 || i >= Array.length env.e_global_types then
      invalid "%s: global %d out of range" f.f_name i
  in
  let check_mem () =
    if env.e_num_memories = 0 then invalid "%s: no memory" f.f_name
  in
  let local_type i = locals.(i) in
  let emit_r op = if reachable () then emit op in
  let do_load kind t off =
    check_mem ();
    pop_expect T_i32;
    push_v t;
    emit_r (K_load (kind, off))
  in
  let do_store kind t off =
    check_mem ();
    pop_expect t;
    pop_expect T_i32;
    emit_r (K_store (kind, off))
  in
  let rec instr (i : instr) =
    (if poll = Poll_every && reachable () then emit K_poll);
    match i with
    | Nop -> ()
    | Unreachable ->
        emit_r K_unreachable;
        mark_unreachable ()
    | Block (bt, body) ->
        let ft = resolve_block_type env bt in
        pop_list ft.params;
        push_list ft.params;
        push_ctrl ~is_loop:false ft 0;
        List.iter instr body;
        end_frame ()
    | Loop (bt, body) ->
        let ft = resolve_block_type env bt in
        pop_list ft.params;
        push_list ft.params;
        push_ctrl ~is_loop:true ft !len;
        if poll = Poll_loops then emit K_poll;
        List.iter instr body;
        end_frame ()
    | If (bt, then_body, else_body) ->
        let ft = resolve_block_type env bt in
        pop_expect T_i32;
        pop_list ft.params;
        push_list ft.params;
        if_construct ft then_body else_body (reachable ())
    | Br idx ->
        let c = label_of idx in
        pop_list (label_types c);
        (if reachable () then
           let j = make_jump c (!vheight + List.length (label_types c)) in
           emit (K_br j));
        mark_unreachable ()
    | Br_if idx ->
        pop_expect T_i32;
        let c = label_of idx in
        pop_list (label_types c);
        push_list (label_types c);
        if reachable () then begin
          let j = make_jump c !vheight in
          emit (K_br_if j)
        end
    | Br_table (idxs, default) ->
        pop_expect T_i32;
        let cd = label_of default in
        let ts = label_types cd in
        List.iter
          (fun i ->
            let c = label_of i in
            if List.length (label_types c) <> List.length ts then
              invalid "%s: br_table arity mismatch" f.f_name)
          idxs;
        pop_list ts;
        (if reachable () then begin
           let h = !vheight + List.length ts in
           let jumps =
             Array.of_list (List.map (fun i -> make_jump (label_of i) h) idxs)
           in
           let dj = make_jump cd h in
           emit (K_br_table (jumps, dj))
         end);
        mark_unreachable ()
    | Return ->
        pop_list ftype.results;
        emit_r K_return;
        mark_unreachable ()
    | Call fi ->
        if fi < 0 || fi >= Array.length env.e_func_types then
          invalid "%s: call index %d out of range" f.f_name fi;
        let ft = env.e_func_types.(fi) in
        pop_list ft.params;
        push_list ft.results;
        emit_r (K_call fi)
    | Call_indirect (ti, tbl) ->
        if ti < 0 || ti >= Array.length env.e_module.types then
          invalid "%s: call_indirect type %d out of range" f.f_name ti;
        if tbl < 0 || tbl >= env.e_num_tables then
          invalid "%s: table %d out of range" f.f_name tbl;
        let ft = env.e_module.types.(ti) in
        pop_expect T_i32;
        pop_list ft.params;
        push_list ft.results;
        emit_r (K_call_indirect (ti, tbl))
    | Drop ->
        ignore (pop_any ());
        emit_r K_drop
    | Select -> (
        pop_expect T_i32;
        let t1 = pop_any () in
        let t2 = pop_any () in
        (match (t1, t2) with
        | Some a, Some b when a <> b ->
            invalid "%s: select operand mismatch" f.f_name
        | _ -> ());
        (match (t1, t2) with
        | Some a, _ -> push_v a
        | None, Some b -> push_v b
        | None, None -> push_v T_i32 (* unreachable; arbitrary *));
        emit_r K_select)
    | Local_get i ->
        check_local i;
        push_v (local_type i);
        emit_r (K_local_get i)
    | Local_set i ->
        check_local i;
        pop_expect (local_type i);
        emit_r (K_local_set i)
    | Local_tee i ->
        check_local i;
        pop_expect (local_type i);
        push_v (local_type i);
        emit_r (K_local_tee i)
    | Global_get i ->
        check_global i;
        push_v env.e_global_types.(i).gt_type;
        emit_r (K_global_get i)
    | Global_set i ->
        check_global i;
        if env.e_global_types.(i).gt_mut = Immutable then
          invalid "%s: global %d is immutable" f.f_name i;
        pop_expect env.e_global_types.(i).gt_type;
        emit_r (K_global_set i)
    | I32_load m -> do_load L_i32 T_i32 m.offset
    | I64_load m -> do_load L_i64 T_i64 m.offset
    | F32_load m -> do_load L_f32 T_f32 m.offset
    | F64_load m -> do_load L_f64 T_f64 m.offset
    | I32_load8 (e, m) -> do_load (L_i32_8 e) T_i32 m.offset
    | I32_load16 (e, m) -> do_load (L_i32_16 e) T_i32 m.offset
    | I64_load8 (e, m) -> do_load (L_i64_8 e) T_i64 m.offset
    | I64_load16 (e, m) -> do_load (L_i64_16 e) T_i64 m.offset
    | I64_load32 (e, m) -> do_load (L_i64_32 e) T_i64 m.offset
    | I32_store m -> do_store S_i32 T_i32 m.offset
    | I64_store m -> do_store S_i64 T_i64 m.offset
    | F32_store m -> do_store S_f32 T_f32 m.offset
    | F64_store m -> do_store S_f64 T_f64 m.offset
    | I32_store8 m -> do_store S_i32_8 T_i32 m.offset
    | I32_store16 m -> do_store S_i32_16 T_i32 m.offset
    | I64_store8 m -> do_store S_i64_8 T_i64 m.offset
    | I64_store16 m -> do_store S_i64_16 T_i64 m.offset
    | I64_store32 m -> do_store S_i64_32 T_i64 m.offset
    | Memory_size ->
        check_mem ();
        push_v T_i32;
        emit_r K_memory_size
    | Memory_grow ->
        check_mem ();
        pop_expect T_i32;
        push_v T_i32;
        emit_r K_memory_grow
    | Memory_fill ->
        check_mem ();
        pop_expect T_i32;
        pop_expect T_i32;
        pop_expect T_i32;
        emit_r K_memory_fill
    | Memory_copy ->
        check_mem ();
        pop_expect T_i32;
        pop_expect T_i32;
        pop_expect T_i32;
        emit_r K_memory_copy
    | I32_const v ->
        push_v T_i32;
        emit_r (K_const (Values.I32 v))
    | I64_const v ->
        push_v T_i64;
        emit_r (K_const (Values.I64 v))
    | F32_const v ->
        push_v T_f32;
        emit_r (K_const (Values.F32 v))
    | F64_const v ->
        push_v T_f64;
        emit_r (K_const (Values.F64 v))
    | I32_eqz ->
        pop_expect T_i32;
        push_v T_i32;
        emit_r K_i32_eqz
    | I64_eqz ->
        pop_expect T_i64;
        push_v T_i32;
        emit_r K_i64_eqz
    | I32_unop o ->
        pop_expect T_i32;
        push_v T_i32;
        emit_r (K_i32_unop o)
    | I64_unop o ->
        pop_expect T_i64;
        push_v T_i64;
        emit_r (K_i64_unop o)
    | I32_binop o ->
        pop_expect T_i32;
        pop_expect T_i32;
        push_v T_i32;
        emit_r (K_i32_binop o)
    | I64_binop o ->
        pop_expect T_i64;
        pop_expect T_i64;
        push_v T_i64;
        emit_r (K_i64_binop o)
    | I32_relop o ->
        pop_expect T_i32;
        pop_expect T_i32;
        push_v T_i32;
        emit_r (K_i32_relop o)
    | I64_relop o ->
        pop_expect T_i64;
        pop_expect T_i64;
        push_v T_i32;
        emit_r (K_i64_relop o)
    | F32_unop o ->
        pop_expect T_f32;
        push_v T_f32;
        emit_r (K_f32_unop o)
    | F64_unop o ->
        pop_expect T_f64;
        push_v T_f64;
        emit_r (K_f64_unop o)
    | F32_binop o ->
        pop_expect T_f32;
        pop_expect T_f32;
        push_v T_f32;
        emit_r (K_f32_binop o)
    | F64_binop o ->
        pop_expect T_f64;
        pop_expect T_f64;
        push_v T_f64;
        emit_r (K_f64_binop o)
    | F32_relop o ->
        pop_expect T_f32;
        pop_expect T_f32;
        push_v T_i32;
        emit_r (K_f32_relop o)
    | F64_relop o ->
        pop_expect T_f64;
        pop_expect T_f64;
        push_v T_i32;
        emit_r (K_f64_relop o)
    | I32_wrap_i64 -> cvt T_i64 T_i32 C_i32_wrap_i64
    | I64_extend_i32 e -> cvt T_i32 T_i64 (C_i64_extend_i32 e)
    | I32_trunc_f32 e -> cvt T_f32 T_i32 (C_i32_trunc_f32 e)
    | I32_trunc_f64 e -> cvt T_f64 T_i32 (C_i32_trunc_f64 e)
    | I64_trunc_f32 e -> cvt T_f32 T_i64 (C_i64_trunc_f32 e)
    | I64_trunc_f64 e -> cvt T_f64 T_i64 (C_i64_trunc_f64 e)
    | F32_convert_i32 e -> cvt T_i32 T_f32 (C_f32_convert_i32 e)
    | F32_convert_i64 e -> cvt T_i64 T_f32 (C_f32_convert_i64 e)
    | F64_convert_i32 e -> cvt T_i32 T_f64 (C_f64_convert_i32 e)
    | F64_convert_i64 e -> cvt T_i64 T_f64 (C_f64_convert_i64 e)
    | F32_demote_f64 -> cvt T_f64 T_f32 C_f32_demote_f64
    | F64_promote_f32 -> cvt T_f32 T_f64 C_f64_promote_f32
    | I32_reinterpret_f32 -> cvt T_f32 T_i32 C_i32_reinterpret_f32
    | I64_reinterpret_f64 -> cvt T_f64 T_i64 C_i64_reinterpret_f64
    | F32_reinterpret_i32 -> cvt T_i32 T_f32 C_f32_reinterpret_i32
    | F64_reinterpret_i64 -> cvt T_i64 T_f64 C_f64_reinterpret_i64
    | I32_extend8_s -> cvt T_i32 T_i32 C_i32_extend8_s
    | I32_extend16_s -> cvt T_i32 T_i32 C_i32_extend16_s
    | I64_extend8_s -> cvt T_i64 T_i64 C_i64_extend8_s
    | I64_extend16_s -> cvt T_i64 T_i64 C_i64_extend16_s
    | I64_extend32_s -> cvt T_i64 T_i64 C_i64_extend32_s
  and cvt from into op =
    pop_expect from;
    push_v into;
    emit_r (K_cvt op)
  and if_construct ft then_body else_body was_reachable =
    (* Layout: [br_if_false -> else] then_code [br -> end] else_code end.
       We implement "branch if false" by emitting i32.eqz + K_br_if. *)
    let to_else = { target = -1; arity = 0; drop = 0 } in
    if was_reachable then begin
      emit K_i32_eqz;
      emit (K_br_if to_else)
    end;
    push_ctrl ~is_loop:false ft 0;
    List.iter instr then_body;
    (* Close the then arm manually (types), then emit skip-over-else. *)
    let c = cur_ctrl () in
    if not c.cf_unreachable then pop_list ft.results;
    (* Reset stack to frame base. *)
    let base = c.cf_height - List.length ft.params in
    while !vheight > base do
      match !vstack with
      | _ :: rest ->
          vstack := rest;
          decr vheight
      | [] -> ()
    done;
    ctrls := List.tl !ctrls;
    let to_end = { target = -1; arity = 0; drop = 0 } in
    let then_was_reachable = not c.cf_unreachable in
    if then_was_reachable && was_reachable then emit (K_br to_end);
    if was_reachable then to_else.target <- !len;
    (* Else arm. *)
    push_list ft.params;
    push_ctrl ~is_loop:false ft 0;
    List.iter instr else_body;
    let c2 = cur_ctrl () in
    if not c2.cf_unreachable then pop_list ft.results;
    let base2 = c2.cf_height - List.length ft.params in
    while !vheight > base2 do
      match !vstack with
      | _ :: rest ->
          vstack := rest;
          decr vheight
      | [] -> ()
    done;
    (* Patch branches recorded against either arm's frame to the join. *)
    ctrls := List.tl !ctrls;
    let join = !len in
    List.iter (fun j -> j.target <- join) c.cf_patches;
    List.iter (fun j -> j.target <- join) c2.cf_patches;
    if then_was_reachable && was_reachable then to_end.target <- join;
    (* Push results onto the enclosing frame. *)
    push_list ft.results
  and end_frame () =
    let c = cur_ctrl () in
    if not c.cf_unreachable then pop_list c.cf_results;
    (* Discard anything left (only possible in unreachable code). *)
    let base = c.cf_height - List.length c.cf_params in
    while !vheight > base do
      match !vstack with
      | _ :: rest ->
          vstack := rest;
          decr vheight
      | [] -> ()
    done;
    ctrls := List.tl !ctrls;
    List.iter (fun j -> j.target <- !len) c.cf_patches;
    push_list c.cf_results
  in
  (* Function body is an implicit block with the function's result type. *)
  push_ctrl ~is_loop:false { params = []; results = ftype.results } 0;
  if poll = Poll_funcs then emit K_poll;
  List.iter instr f.f_body;
  let c = cur_ctrl () in
  if not c.cf_unreachable then pop_list ftype.results;
  ctrls := [];
  List.iter (fun j -> j.target <- !len) c.cf_patches;
  emit K_return;
  { fc_name = f.f_name; fc_type = ftype;
    fc_arity = List.length ftype.results;
    fc_nparams = List.length ftype.params;
    fc_locals = locals; fc_ops = Array.sub !buf 0 !len }

(* ------------------------------------------------------------------ *)
(* Macro-op fusion                                                      *)
(* ------------------------------------------------------------------ *)

(** Coverage-stats name of a superinstruction ([None] for plain ops). *)
let superop_name = function
  | F_ll_i32_binop _ -> Some "ll_i32_binop"
  | F_ll_i32_binop_set _ -> Some "ll_i32_binop_set"
  | F_lc_i32_binop _ -> Some "lc_i32_binop"
  | F_lc_i32_binop_set _ -> Some "lc_i32_binop_set"
  | F_const_i32_binop _ -> Some "const_i32_binop"
  | F_i32_binop_set _ -> Some "i32_binop_set"
  | F_local_load _ -> Some "local_load"
  | F_i32_relop_br_if _ -> Some "i32_relop_br_if"
  | F_ll_i32_relop_br_if _ -> Some "ll_i32_relop_br_if"
  | F_lc_i32_relop_br_if _ -> Some "lc_i32_relop_br_if"
  | F_lc_store _ -> Some "lc_store"
  | F_i32_eqz_br_if _ -> Some "i32_eqz_br_if"
  | F_i32_relop_eqz_br_if _ -> Some "i32_relop_eqz_br_if"
  | F_ll_i32_relop_eqz_br_if _ -> Some "ll_i32_relop_eqz_br_if"
  | F_lc_i32_relop_eqz_br_if _ -> Some "lc_i32_relop_eqz_br_if"
  | F_l_i32_binop _ -> Some "l_i32_binop"
  | F_i32_binop_load _ -> Some "i32_binop_load"
  | F_i32_binop_binop _ -> Some "i32_binop_binop"
  | F_i32_binop_store _ -> Some "i32_binop_store"
  | F_l_store _ -> Some "l_store"
  | F_set_get _ -> Some "set_get"
  | F_i32_eqz_eqz -> Some "i32_eqz_eqz"
  | _ -> None

(** How many original ops an op stands for (1 for plain ops). The
    interpreter charges this to [machine.steps], so instruction counts,
    profile weights and replay coordinates are byte-identical between the
    fused and unfused engines. *)
let op_width = function
  | F_ll_i32_relop_eqz_br_if _ | F_lc_i32_relop_eqz_br_if _ -> 5
  | F_ll_i32_binop_set _ | F_lc_i32_binop_set _
  | F_ll_i32_relop_br_if _ | F_lc_i32_relop_br_if _ -> 4
  | F_ll_i32_binop _ | F_lc_i32_binop _ | F_lc_store _
  | F_i32_relop_eqz_br_if _ -> 3
  | F_const_i32_binop _ | F_i32_binop_set _ | F_local_load _
  | F_i32_relop_br_if _ | F_i32_eqz_br_if _ | F_l_i32_binop _
  | F_i32_binop_load _ | F_i32_binop_binop _ | F_i32_binop_store _
  | F_l_store _ | F_set_get _ | F_i32_eqz_eqz -> 2
  | _ -> 1

type fuse_stats = {
  fs_ops_before : int; (* flat ops over all functions, pre-fusion *)
  fs_ops_after : int;
  fs_sites : (string * int) list; (* superop name -> static sites, sorted *)
}

let empty_fuse_stats = { fs_ops_before = 0; fs_ops_after = 0; fs_sites = [] }

(** Rewrite [fc]'s ops, greedily replacing the hot idioms with
    superinstructions (longest match first). A window is fusable only if
    no *interior* pc is a branch target — the window head may be one —
    and every jump target is then remapped through the old-pc -> new-pc
    map (each [jump] record is referenced by exactly one op, so in-place
    remapping visits each record once). Loop-header [K_poll] safepoints
    never match a pattern, so fusion cannot move or elide a poll. *)
(* A window only fuses when every trap-capable op is the window's *last*
   op: the handler charges the full width to [steps] before executing, so
   a trap from an interior op would report a different instruction count
   than the unfused engine. Integer div/rem are the only trapping binops. *)
let nontrap_binop = function
  | Ast.Div_s | Ast.Div_u | Ast.Rem_s | Ast.Rem_u -> false
  | _ -> true

let fuse_func (sites : (string, int) Hashtbl.t) (fc : fcode) : fcode =
  let ops = fc.fc_ops in
  let n = Array.length ops in
  let is_target = Array.make (n + 1) false in
  let mark (j : jump) =
    if j.target >= 0 && j.target <= n then is_target.(j.target) <- true
  in
  Array.iter
    (function
      | K_br j | K_br_if j -> mark j
      | K_br_table (js, dj) ->
          Array.iter mark js;
          mark dj
      | _ -> ())
    ops;
  let out = Array.make (max n 1) K_return in
  let olen = ref 0 in
  let new_pc = Array.make (n + 1) 0 in
  let fusable i w =
    i + w <= n
    &&
    let ok = ref true in
    for k = i + 1 to i + w - 1 do
      if is_target.(k) then ok := false
    done;
    !ok
  in
  let try5 i =
    if not (fusable i 5) then None
    else
      match (ops.(i), ops.(i + 1), ops.(i + 2), ops.(i + 3), ops.(i + 4)) with
      | K_local_get a, K_local_get b, K_i32_relop o, K_i32_eqz, K_br_if j ->
          Some (F_ll_i32_relop_eqz_br_if (a, b, o, j))
      | ( K_local_get a, K_const (Values.I32 c), K_i32_relop o, K_i32_eqz,
          K_br_if j ) ->
          Some (F_lc_i32_relop_eqz_br_if (a, c, o, j))
      | _ -> None
  in
  let try4 i =
    if not (fusable i 4) then None
    else
      match (ops.(i), ops.(i + 1), ops.(i + 2), ops.(i + 3)) with
      | K_local_get a, K_local_get b, K_i32_binop o, K_local_set d
        when nontrap_binop o ->
          Some (F_ll_i32_binop_set (a, b, o, d))
      | K_local_get a, K_const (Values.I32 c), K_i32_binop o, K_local_set d
        when nontrap_binop o ->
          Some (F_lc_i32_binop_set (a, c, o, d))
      | K_local_get a, K_local_get b, K_i32_relop o, K_br_if j ->
          Some (F_ll_i32_relop_br_if (a, b, o, j))
      | K_local_get a, K_const (Values.I32 c), K_i32_relop o, K_br_if j ->
          Some (F_lc_i32_relop_br_if (a, c, o, j))
      | _ -> None
  in
  let try3 i =
    if not (fusable i 3) then None
    else
      match (ops.(i), ops.(i + 1), ops.(i + 2)) with
      | K_local_get a, K_local_get b, K_i32_binop o ->
          Some (F_ll_i32_binop (a, b, o))
      | K_local_get a, K_const (Values.I32 c), K_i32_binop o ->
          Some (F_lc_i32_binop (a, c, o))
      | K_local_get a, K_const v, K_store (k, off) ->
          Some (F_lc_store (a, v, k, off))
      | K_i32_relop o, K_i32_eqz, K_br_if j ->
          Some (F_i32_relop_eqz_br_if (o, j))
      | _ -> None
  in
  let try2 i =
    if not (fusable i 2) then None
    else
      match (ops.(i), ops.(i + 1)) with
      | K_local_get a, K_load (k, off) -> Some (F_local_load (a, k, off))
      | K_local_get a, K_i32_binop o -> Some (F_l_i32_binop (a, o))
      | K_local_get a, K_store (k, off) -> Some (F_l_store (a, k, off))
      | K_const (Values.I32 c), K_i32_binop o -> Some (F_const_i32_binop (c, o))
      | K_i32_binop o, K_local_set d when nontrap_binop o ->
          Some (F_i32_binop_set (o, d))
      | K_i32_binop o, K_load (k, off) when nontrap_binop o ->
          Some (F_i32_binop_load (o, k, off))
      | K_i32_binop o1, K_i32_binop o2 when nontrap_binop o1 ->
          Some (F_i32_binop_binop (o1, o2))
      | K_i32_binop o, K_store (k, off) when nontrap_binop o ->
          Some (F_i32_binop_store (o, k, off))
      | K_i32_relop o, K_br_if j -> Some (F_i32_relop_br_if (o, j))
      | K_i32_eqz, K_br_if j -> Some (F_i32_eqz_br_if j)
      | K_i32_eqz, K_i32_eqz -> Some F_i32_eqz_eqz
      | K_local_set s, K_local_get g when s = g -> Some (F_set_get s)
      | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    let sop =
      match try5 !i with
      | Some s -> Some s
      | None -> (
          match try4 !i with
          | Some s -> Some s
          | None -> (
              match try3 !i with Some s -> Some s | None -> try2 !i))
    in
    match sop with
    | Some s ->
        let w = op_width s in
        for k = !i to !i + w - 1 do
          new_pc.(k) <- !olen
        done;
        out.(!olen) <- s;
        incr olen;
        (match superop_name s with
        | Some name ->
            Hashtbl.replace sites name
              (1 + Option.value ~default:0 (Hashtbl.find_opt sites name))
        | None -> ());
        i := !i + w
    | None ->
        new_pc.(!i) <- !olen;
        out.(!olen) <- ops.(!i);
        incr olen;
        incr i
  done;
  new_pc.(n) <- !olen;
  let fused = Array.sub out 0 !olen in
  let remap (j : jump) = j.target <- new_pc.(j.target) in
  Array.iter
    (function
      | K_br j | K_br_if j -> remap j
      | K_br_table (js, dj) ->
          Array.iter remap js;
          remap dj
      | F_i32_relop_br_if (_, j)
      | F_ll_i32_relop_br_if (_, _, _, j)
      | F_lc_i32_relop_br_if (_, _, _, j)
      | F_i32_eqz_br_if j
      | F_i32_relop_eqz_br_if (_, j)
      | F_ll_i32_relop_eqz_br_if (_, _, _, j)
      | F_lc_i32_relop_eqz_br_if (_, _, _, j) ->
          remap j
      | _ -> ())
    fused;
  { fc with fc_ops = fused }

(* ------------------------------------------------------------------ *)
(* Static call info (for the reachability analyzer)                     *)
(* ------------------------------------------------------------------ *)

(** Exact direct callee indices of a compiled function. Computed over
    the validated flat code, so calls in statically unreachable code
    (dropped by the compiler) do not appear. *)
let direct_calls (fc : fcode) : int list =
  Array.to_list fc.fc_ops
  |> List.filter_map (function K_call fi -> Some fi | _ -> None)
  |> List.sort_uniq compare

(** Type indices used by [call_indirect] in a compiled function. The
    analyzer over-approximates the target set by matching these against
    type-compatible elem-segment entries. *)
let indirect_call_types (fc : fcode) : int list =
  Array.to_list fc.fc_ops
  |> List.filter_map (function K_call_indirect (ti, _) -> Some ti | _ -> None)
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Module-level validation context                                      *)
(* ------------------------------------------------------------------ *)

let build_env (m : module_) : env =
  Array.iter
    (fun (ft : func_type) ->
      if List.length ft.results > 1 then
        invalid "multi-value results not supported")
    m.types;
  let import_func_types =
    List.filter_map
      (fun i ->
        match i.imp_desc with
        | Id_func t ->
            if t < 0 || t >= Array.length m.types then
              invalid "import %s.%s: type index out of range" i.imp_module
                i.imp_name;
            Some m.types.(t)
        | _ -> None)
      m.imports
  in
  let local_func_types =
    Array.to_list
      (Array.map
         (fun f ->
           if f.f_type < 0 || f.f_type >= Array.length m.types then
             invalid "function type index out of range";
           m.types.(f.f_type))
         m.funcs)
  in
  let import_global_types =
    List.filter_map
      (fun i -> match i.imp_desc with Id_global g -> Some g | _ -> None)
      m.imports
  in
  let local_global_types =
    Array.to_list (Array.map (fun g -> g.g_type) m.globals)
  in
  {
    e_module = m;
    e_func_types = Array.of_list (import_func_types @ local_func_types);
    e_global_types = Array.of_list (import_global_types @ local_global_types);
    e_num_memories = num_imported_memories m + Array.length m.memories;
    e_num_tables = num_imported_tables m + Array.length m.tables;
  }

type compiled = {
  cm_module : module_;
  cm_env : env;
  cm_funcs : fcode array; (* local functions only, in definition order *)
  cm_fuse : fuse_stats; (* macro-op fusion coverage of this image *)
}

(** Validate and compile every local function of [m]. [fuse] (default on)
    runs the macro-op fusion pass over the validated flat code; the
    unfused engine is kept selectable for A/B runs and the differential
    replay gate. *)
let compile_module ?(poll = Poll_none) ?(fuse = true) (m : module_) : compiled =
  let env = build_env m in
  (* Validate exports refer to existing indices. *)
  List.iter
    (fun e ->
      let check n lim what =
        if n < 0 || n >= lim then invalid "export %s: %s out of range" e.exp_name what
      in
      match e.exp_desc with
      | Ed_func i -> check i (Array.length env.e_func_types) "function"
      | Ed_global i -> check i (Array.length env.e_global_types) "global"
      | Ed_memory i -> check i env.e_num_memories "memory"
      | Ed_table i -> check i env.e_num_tables "table")
    m.exports;
  let funcs = Array.map (compile_func env ~poll) m.funcs in
  let before = Array.fold_left (fun a fc -> a + Array.length fc.fc_ops) 0 funcs in
  let sites = Hashtbl.create 16 in
  let funcs = if fuse then Array.map (fuse_func sites) funcs else funcs in
  let after = Array.fold_left (fun a fc -> a + Array.length fc.fc_ops) 0 funcs in
  let fs =
    {
      fs_ops_before = before;
      fs_ops_after = after;
      fs_sites =
        List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) sites []);
    }
  in
  { cm_module = m; cm_env = env; cm_funcs = funcs; cm_fuse = fs }
