(** Structured (pre-validation) instruction AST and module grammar.

    This is the form the binary decoder produces and the builder/minic
    code generators construct; {!Code} flattens it to jump-resolved
    executable code. *)

open Types

(* Integer relational/arith operator tags shared by i32/i64. *)
type int_unop = Clz | Ctz | Popcnt
type int_binop =
  | Add | Sub | Mul | Div_s | Div_u | Rem_s | Rem_u
  | And | Or | Xor | Shl | Shr_s | Shr_u | Rotl | Rotr
type int_relop = Eq | Ne | Lt_s | Lt_u | Gt_s | Gt_u | Le_s | Le_u | Ge_s | Ge_u

type float_unop = Neg | Abs | Sqrt | Ceil | Floor | Trunc | Nearest
type float_binop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Copysign
type float_relop = Feq | Fne | Flt | Fgt | Fle | Fge

(* Load/store shapes. *)
type pack = P8 | P16 | P32
type extension = SX | ZX

type memop = { offset : int; align : int }

type block_type = Bt_none | Bt_val of val_type | Bt_type of int

type instr =
  | Unreachable
  | Nop
  | Block of block_type * instr list
  | Loop of block_type * instr list
  | If of block_type * instr list * instr list
  | Br of int
  | Br_if of int
  | Br_table of int list * int
  | Return
  | Call of int
  | Call_indirect of int * int (* type idx, table idx *)
  | Drop
  | Select
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  (* Memory *)
  | I32_load of memop
  | I64_load of memop
  | F32_load of memop
  | F64_load of memop
  | I32_load8 of extension * memop
  | I32_load16 of extension * memop
  | I64_load8 of extension * memop
  | I64_load16 of extension * memop
  | I64_load32 of extension * memop
  | I32_store of memop
  | I64_store of memop
  | F32_store of memop
  | F64_store of memop
  | I32_store8 of memop
  | I32_store16 of memop
  | I64_store8 of memop
  | I64_store16 of memop
  | I64_store32 of memop
  | Memory_size
  | Memory_grow
  | Memory_fill
  | Memory_copy
  (* Numeric *)
  | I32_const of int32
  | I64_const of int64
  | F32_const of int32
  | F64_const of int64
  | I32_eqz
  | I64_eqz
  | I32_unop of int_unop
  | I64_unop of int_unop
  | I32_binop of int_binop
  | I64_binop of int_binop
  | I32_relop of int_relop
  | I64_relop of int_relop
  | F32_unop of float_unop
  | F64_unop of float_unop
  | F32_binop of float_binop
  | F64_binop of float_binop
  | F32_relop of float_relop
  | F64_relop of float_relop
  (* Conversions *)
  | I32_wrap_i64
  | I64_extend_i32 of extension
  | I32_trunc_f32 of extension
  | I32_trunc_f64 of extension
  | I64_trunc_f32 of extension
  | I64_trunc_f64 of extension
  | F32_convert_i32 of extension
  | F32_convert_i64 of extension
  | F64_convert_i32 of extension
  | F64_convert_i64 of extension
  | F32_demote_f64
  | F64_promote_f32
  | I32_reinterpret_f32
  | I64_reinterpret_f64
  | F32_reinterpret_i32
  | F64_reinterpret_i64
  | I32_extend8_s
  | I32_extend16_s
  | I64_extend8_s
  | I64_extend16_s
  | I64_extend32_s

type func = {
  f_type : int; (* index into types *)
  f_locals : val_type list; (* extra locals beyond params *)
  f_body : instr list;
  f_name : string; (* diagnostic name; "" if unknown *)
}

type import_desc =
  | Id_func of int (* type index *)
  | Id_table of limits
  | Id_memory of limits
  | Id_global of global_type

type import = { imp_module : string; imp_name : string; imp_desc : import_desc }

type export_desc = Ed_func of int | Ed_table of int | Ed_memory of int | Ed_global of int

type export = { exp_name : string; exp_desc : export_desc }

type global = { g_type : global_type; g_init : instr list }

type elem = { e_table : int; e_offset : instr list; e_funcs : int list }

type data = { d_mem : int; d_offset : instr list; d_bytes : string }

type module_ = {
  types : func_type array;
  imports : import list;
  funcs : func array; (* locally defined functions *)
  tables : limits array; (* locally defined tables *)
  memories : limits array; (* locally defined memories *)
  globals : global array;
  exports : export list;
  start : int option;
  elems : elem list;
  datas : data list;
  m_name : string;
}

let empty_module =
  {
    types = [||];
    imports = [];
    funcs = [||];
    tables = [||];
    memories = [||];
    globals = [||];
    exports = [];
    start = None;
    elems = [];
    datas = [];
    m_name = "";
  }

(* Index-space helpers: imports precede local definitions. *)

let imported_funcs m =
  List.filter_map
    (fun i -> match i.imp_desc with Id_func t -> Some (i, t) | _ -> None)
    m.imports

let num_imported_funcs m = List.length (imported_funcs m)

let num_imported_globals m =
  List.length
    (List.filter (fun i -> match i.imp_desc with Id_global _ -> true | _ -> false)
       m.imports)

let num_imported_memories m =
  List.length
    (List.filter (fun i -> match i.imp_desc with Id_memory _ -> true | _ -> false)
       m.imports)

let num_imported_tables m =
  List.length
    (List.filter (fun i -> match i.imp_desc with Id_table _ -> true | _ -> false)
       m.imports)

(* Type of function by index across the import/local boundary. *)
let func_type_idx m idx =
  let n = num_imported_funcs m in
  if idx < n then snd (List.nth (imported_funcs m) idx)
  else m.funcs.(idx - n).f_type

(** Function exports as (export name, function index) pairs. *)
let exported_funcs m =
  List.filter_map
    (fun e -> match e.exp_desc with Ed_func i -> Some (e.exp_name, i) | _ -> None)
    m.exports

(** Every function index referenced by an element segment. Tables are
    only written at instantiation time (this Wasm subset has no
    table-mutation instructions), so this is the complete set of
    address-taken functions: the only possible [call_indirect] targets
    and the only functions the host can invoke through a table slot
    (signal handlers, thread entries). *)
let elem_func_indices m =
  List.concat_map (fun e -> e.e_funcs) m.elems |> List.sort_uniq compare

(** Diagnostic name of function [idx], crossing the import boundary. *)
let func_name m idx =
  let n = num_imported_funcs m in
  if idx < n then
    match List.nth_opt (imported_funcs m) idx with
    | Some (i, _) -> i.imp_module ^ "." ^ i.imp_name
    | None -> Printf.sprintf "#%d" idx
  else
    match m.funcs.(idx - n).f_name with
    | "" -> Printf.sprintf "#%d" idx
    | s -> s
