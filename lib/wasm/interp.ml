(** The interpreter loop over flat code.

    The loop — not the host functions — performs process-model surgery
    (fork clones the machine, exec swaps the process image), mirroring how
    WALI keeps syscall handlers tiny while the engine owns the execution
    environment. *)

open Values
open Rt

type run_result =
  | R_done of value list
  | R_trap of string
  | R_exit of int

let jump (m : machine) (fr : frame) (j : Code.jump) =
  let { Code.target; arity; drop } = j in
  if drop > 0 then begin
    for i = 0 to arity - 1 do
      m.stack.(m.sp - drop - arity + i) <- m.stack.(m.sp - arity + i)
    done;
    m.sp <- m.sp - drop
  end;
  fr.fr_pc <- target

(* Pop the current frame, preserving [fc_arity] results from the stack
   top. The frame record stays in the machine's frame array for reuse by
   the next call at this depth. *)
let pop_frame (m : machine) =
  (match m.prof_hook with Some h -> h m | None -> ());
  if m.depth = 0 then trap "return with no frame";
  let fr = m.frames.(m.depth - 1) in
  let n = fr.fr_code.Code.fc_arity in
  for i = 0 to n - 1 do
    m.stack.(fr.fr_ret_sp + i) <- m.stack.(m.sp - n + i)
  done;
  m.sp <- fr.fr_ret_sp + n;
  m.depth <- m.depth - 1

let addr_of (m : machine) offset =
  let a = Machine.pop m in
  (Int32.to_int (as_i32 a) land 0xFFFFFFFF) + offset

let i32_of_bool b = I32 (if b then 1l else 0l)

let exec_load (m : machine) mem kind addr =
  let v =
    match kind with
    | Code.L_i32 -> I32 (Memory.load32 mem addr)
    | Code.L_i64 -> I64 (Memory.load64 mem addr)
    | Code.L_f32 -> F32 (Memory.load32 mem addr)
    | Code.L_f64 -> F64 (Memory.load64 mem addr)
    | Code.L_i32_8 Ast.SX -> I32 (Int32.of_int (Memory.load8_s mem addr))
    | Code.L_i32_8 Ast.ZX -> I32 (Int32.of_int (Memory.load8_u mem addr))
    | Code.L_i32_16 Ast.SX -> I32 (Int32.of_int (Memory.load16_s mem addr))
    | Code.L_i32_16 Ast.ZX -> I32 (Int32.of_int (Memory.load16_u mem addr))
    | Code.L_i64_8 Ast.SX -> I64 (Int64.of_int (Memory.load8_s mem addr))
    | Code.L_i64_8 Ast.ZX -> I64 (Int64.of_int (Memory.load8_u mem addr))
    | Code.L_i64_16 Ast.SX -> I64 (Int64.of_int (Memory.load16_s mem addr))
    | Code.L_i64_16 Ast.ZX -> I64 (Int64.of_int (Memory.load16_u mem addr))
    | Code.L_i64_32 Ast.SX -> I64 (Int64.of_int32 (Memory.load32 mem addr))
    | Code.L_i64_32 Ast.ZX ->
        I64 (Int64.logand (Int64.of_int32 (Memory.load32 mem addr)) 0xFFFFFFFFL)
  in
  Machine.push m v

let exec_store mem kind addr v =
  match kind with
  | Code.S_i32 -> Memory.store32 mem addr (as_i32 v)
  | Code.S_i64 -> Memory.store64 mem addr (as_i64 v)
  | Code.S_f32 -> Memory.store32 mem addr (as_f32 v)
  | Code.S_f64 -> Memory.store64 mem addr (as_f64 v)
  | Code.S_i32_8 -> Memory.store8 mem addr (Int32.to_int (as_i32 v))
  | Code.S_i32_16 -> Memory.store16 mem addr (Int32.to_int (as_i32 v))
  | Code.S_i64_8 -> Memory.store8 mem addr (Int64.to_int (Int64.logand (as_i64 v) 0xffL))
  | Code.S_i64_16 -> Memory.store16 mem addr (Int64.to_int (Int64.logand (as_i64 v) 0xffffL))
  | Code.S_i64_32 -> Memory.store32 mem addr (Int64.to_int32 (as_i64 v))

let exec_i32_unop o x =
  match o with
  | Ast.Clz -> Int32.of_int (I32_op.clz x)
  | Ast.Ctz -> Int32.of_int (I32_op.ctz x)
  | Ast.Popcnt -> Int32.of_int (I32_op.popcnt x)

let exec_i64_unop o x =
  match o with
  | Ast.Clz -> Int64.of_int (I64_op.clz x)
  | Ast.Ctz -> Int64.of_int (I64_op.ctz x)
  | Ast.Popcnt -> Int64.of_int (I64_op.popcnt x)

let exec_i32_binop o a b =
  let open Int32 in
  match o with
  | Ast.Add -> add a b
  | Ast.Sub -> sub a b
  | Ast.Mul -> mul a b
  | Ast.Div_s -> I32_op.div_s a b
  | Ast.Div_u -> I32_op.div_u a b
  | Ast.Rem_s -> I32_op.rem_s a b
  | Ast.Rem_u -> I32_op.rem_u a b
  | Ast.And -> logand a b
  | Ast.Or -> logor a b
  | Ast.Xor -> logxor a b
  | Ast.Shl -> I32_op.shl a b
  | Ast.Shr_s -> I32_op.shr_s a b
  | Ast.Shr_u -> I32_op.shr_u a b
  | Ast.Rotl -> I32_op.rotl a b
  | Ast.Rotr -> I32_op.rotr a b

let exec_i64_binop o a b =
  let open Int64 in
  match o with
  | Ast.Add -> add a b
  | Ast.Sub -> sub a b
  | Ast.Mul -> mul a b
  | Ast.Div_s -> I64_op.div_s a b
  | Ast.Div_u -> I64_op.div_u a b
  | Ast.Rem_s -> I64_op.rem_s a b
  | Ast.Rem_u -> I64_op.rem_u a b
  | Ast.And -> logand a b
  | Ast.Or -> logor a b
  | Ast.Xor -> logxor a b
  | Ast.Shl -> I64_op.shl a b
  | Ast.Shr_s -> I64_op.shr_s a b
  | Ast.Shr_u -> I64_op.shr_u a b
  | Ast.Rotl -> I64_op.rotl a b
  | Ast.Rotr -> I64_op.rotr a b

let exec_i32_relop o a b =
  match o with
  | Ast.Eq -> a = b
  | Ast.Ne -> a <> b
  | Ast.Lt_s -> Int32.compare a b < 0
  | Ast.Lt_u -> I32_op.unsigned_compare a b < 0
  | Ast.Gt_s -> Int32.compare a b > 0
  | Ast.Gt_u -> I32_op.unsigned_compare a b > 0
  | Ast.Le_s -> Int32.compare a b <= 0
  | Ast.Le_u -> I32_op.unsigned_compare a b <= 0
  | Ast.Ge_s -> Int32.compare a b >= 0
  | Ast.Ge_u -> I32_op.unsigned_compare a b >= 0

let exec_i64_relop o a b =
  match o with
  | Ast.Eq -> a = b
  | Ast.Ne -> a <> b
  | Ast.Lt_s -> Int64.compare a b < 0
  | Ast.Lt_u -> I64_op.unsigned_compare a b < 0
  | Ast.Gt_s -> Int64.compare a b > 0
  | Ast.Gt_u -> I64_op.unsigned_compare a b > 0
  | Ast.Le_s -> Int64.compare a b <= 0
  | Ast.Le_u -> I64_op.unsigned_compare a b <= 0
  | Ast.Ge_s -> Int64.compare a b >= 0
  | Ast.Ge_u -> I64_op.unsigned_compare a b >= 0

let exec_f_unop o x =
  match o with
  | Ast.Neg -> -.x
  | Ast.Abs -> Float.abs x
  | Ast.Sqrt -> Float.sqrt x
  | Ast.Ceil -> Float.ceil x
  | Ast.Floor -> Float.floor x
  | Ast.Trunc -> Float.trunc x
  | Ast.Nearest -> Float.round x (* round-half-away; close enough for our use *)

let exec_f_binop o a b =
  match o with
  | Ast.Fadd -> a +. b
  | Ast.Fsub -> a -. b
  | Ast.Fmul -> a *. b
  | Ast.Fdiv -> a /. b
  | Ast.Fmin -> Float.min a b
  | Ast.Fmax -> Float.max a b
  | Ast.Copysign -> Float.copy_sign a b

let exec_f_relop o a b =
  match o with
  | Ast.Feq -> a = b
  | Ast.Fne -> a <> b
  | Ast.Flt -> a < b
  | Ast.Fgt -> a > b
  | Ast.Fle -> a <= b
  | Ast.Fge -> a >= b

let exec_cvt (c : Code.cvt) v =
  match c with
  | Code.C_i32_wrap_i64 -> I32 (Int64.to_int32 (as_i64 v))
  | Code.C_i64_extend_i32 Ast.SX -> I64 (Int64.of_int32 (as_i32 v))
  | Code.C_i64_extend_i32 Ast.ZX ->
      I64 (Int64.logand (Int64.of_int32 (as_i32 v)) 0xFFFFFFFFL)
  | Code.C_i32_trunc_f32 Ast.SX ->
      I32 (Convert.trunc_f64_i32_s (Int32.float_of_bits (as_f32 v)))
  | Code.C_i32_trunc_f32 Ast.ZX ->
      I32 (Convert.trunc_f64_i32_u (Int32.float_of_bits (as_f32 v)))
  | Code.C_i32_trunc_f64 Ast.SX ->
      I32 (Convert.trunc_f64_i32_s (Int64.float_of_bits (as_f64 v)))
  | Code.C_i32_trunc_f64 Ast.ZX ->
      I32 (Convert.trunc_f64_i32_u (Int64.float_of_bits (as_f64 v)))
  | Code.C_i64_trunc_f32 Ast.SX ->
      I64 (Convert.trunc_f64_i64_s (Int32.float_of_bits (as_f32 v)))
  | Code.C_i64_trunc_f32 Ast.ZX ->
      I64 (Convert.trunc_f64_i64_u (Int32.float_of_bits (as_f32 v)))
  | Code.C_i64_trunc_f64 Ast.SX ->
      I64 (Convert.trunc_f64_i64_s (Int64.float_of_bits (as_f64 v)))
  | Code.C_i64_trunc_f64 Ast.ZX ->
      I64 (Convert.trunc_f64_i64_u (Int64.float_of_bits (as_f64 v)))
  | Code.C_f32_convert_i32 Ast.SX ->
      F32 (Int32.bits_of_float (Int32.to_float (as_i32 v)))
  | Code.C_f32_convert_i32 Ast.ZX ->
      F32 (Int32.bits_of_float (Convert.convert_i32_u_to_float (as_i32 v)))
  | Code.C_f32_convert_i64 Ast.SX ->
      F32 (Int32.bits_of_float (Int64.to_float (as_i64 v)))
  | Code.C_f32_convert_i64 Ast.ZX ->
      F32 (Int32.bits_of_float (Convert.convert_i64_u_to_float (as_i64 v)))
  | Code.C_f64_convert_i32 Ast.SX ->
      F64 (Int64.bits_of_float (Int32.to_float (as_i32 v)))
  | Code.C_f64_convert_i32 Ast.ZX ->
      F64 (Int64.bits_of_float (Convert.convert_i32_u_to_float (as_i32 v)))
  | Code.C_f64_convert_i64 Ast.SX ->
      F64 (Int64.bits_of_float (Int64.to_float (as_i64 v)))
  | Code.C_f64_convert_i64 Ast.ZX ->
      F64 (Int64.bits_of_float (Convert.convert_i64_u_to_float (as_i64 v)))
  | Code.C_f32_demote_f64 ->
      F32 (Int32.bits_of_float (Int64.float_of_bits (as_f64 v)))
  | Code.C_f64_promote_f32 ->
      F64 (Int64.bits_of_float (Int32.float_of_bits (as_f32 v)))
  | Code.C_i32_reinterpret_f32 -> I32 (as_f32 v)
  | Code.C_i64_reinterpret_f64 -> I64 (as_f64 v)
  | Code.C_f32_reinterpret_i32 -> F32 (as_i32 v)
  | Code.C_f64_reinterpret_i64 -> F64 (as_i64 v)
  | Code.C_i32_extend8_s ->
      let x = Int32.to_int (as_i32 v) land 0xff in
      I32 (Int32.of_int (if x >= 0x80 then x - 0x100 else x))
  | Code.C_i32_extend16_s ->
      let x = Int32.to_int (as_i32 v) land 0xffff in
      I32 (Int32.of_int (if x >= 0x8000 then x - 0x10000 else x))
  | Code.C_i64_extend8_s ->
      let x = Int64.to_int (Int64.logand (as_i64 v) 0xffL) in
      I64 (Int64.of_int (if x >= 0x80 then x - 0x100 else x))
  | Code.C_i64_extend16_s ->
      let x = Int64.to_int (Int64.logand (as_i64 v) 0xffffL) in
      I64 (Int64.of_int (if x >= 0x8000 then x - 0x10000 else x))
  | Code.C_i64_extend32_s -> I64 (Int64.of_int32 (Int64.to_int32 (as_i64 v)))

exception Exit_trap of run_result

(** Run machine [m0] until its frame depth returns to [stop_depth]
    (0 = run to completion). [results] gives the arity of the entry
    function. *)
let rec run_machine ?(stop_depth = 0) (m0 : machine) ~(results : int) :
    run_result =
  let m = ref m0 in
  let results = ref results in
  let stop_depth = ref stop_depth in
  let call_host (h : func_inst) hf_type (hf_fn : host_fn) =
    ignore h;
    let n = List.length hf_type.Types.params in
    let args = Array.make n (I32 0l) in
    for i = n - 1 downto 0 do
      args.(i) <- Machine.pop !m
    done;
    match hf_fn !m args with
    | H_return vs -> List.iter (Machine.push !m) vs
    | H_trap s -> raise (Exit_trap (R_trap s))
    | H_exit code -> raise (Exit_trap (R_exit code))
    | H_fork register_child ->
        let child = Machine.clone !m in
        Machine.push child (I64 0L);
        let pid = register_child child in
        Machine.push !m (I64 pid)
    | H_exec make ->
        let m' = make () in
        m := m';
        results := 0;
        stop_depth := 0
  in
  let step fr =
    let mch = !m in
    let op = fr.fr_code.Code.fc_ops.(fr.fr_pc) in
    fr.fr_pc <- fr.fr_pc + 1;
    mch.steps <- Int64.add mch.steps 1L;
    match op with
    | Code.K_unreachable -> trap "unreachable executed"
    | Code.K_br j -> jump mch fr j
    | Code.K_br_if j ->
        let c = as_i32 (Machine.pop mch) in
        if c <> 0l then jump mch fr j
    | Code.K_br_table (js, dj) ->
        let i = Int32.to_int (as_i32 (Machine.pop mch)) land 0xFFFFFFFF in
        let j = if i >= 0 && i < Array.length js then js.(i) else dj in
        jump mch fr j
    | Code.K_return -> pop_frame mch
    | Code.K_call fi -> (
        match fr.fr_inst.i_funcs.(fi) with
        | Wasm_func { wf_inst; wf_code } -> Machine.push_frame mch wf_inst wf_code
        | Host_func { hf_type; hf_fn; _ } as h -> call_host h hf_type hf_fn)
    | Code.K_call_indirect (ti, tbl) -> (
        let i = Int32.to_int (as_i32 (Machine.pop mch)) land 0xFFFFFFFF in
        let table = fr.fr_inst.i_tables.(tbl) in
        match Table.get table i with
        | None -> trap "uninitialized element %d" i
        | Some fidx ->
            let f = fr.fr_inst.i_funcs.(fidx) in
            let expect = fr.fr_inst.i_types.(ti) in
            if not (Types.func_type_equal (func_type_of f) expect) then
              trap "indirect call type mismatch: expected %s, %s has %s"
                (Types.string_of_func_type expect)
                (func_name_of f)
                (Types.string_of_func_type (func_type_of f));
            (match f with
            | Wasm_func { wf_inst; wf_code } ->
                Machine.push_frame mch wf_inst wf_code
            | Host_func { hf_type; hf_fn; _ } as h -> call_host h hf_type hf_fn))
    | Code.K_drop -> ignore (Machine.pop mch)
    | Code.K_select ->
        let c = as_i32 (Machine.pop mch) in
        let v2 = Machine.pop mch in
        let v1 = Machine.pop mch in
        Machine.push mch (if c <> 0l then v1 else v2)
    | Code.K_local_get i -> Machine.push mch fr.fr_locals.(i)
    | Code.K_local_set i -> fr.fr_locals.(i) <- Machine.pop mch
    | Code.K_local_tee i -> fr.fr_locals.(i) <- Machine.peek mch
    | Code.K_global_get i -> Machine.push mch (Global.get fr.fr_inst.i_globals.(i))
    | Code.K_global_set i -> Global.set fr.fr_inst.i_globals.(i) (Machine.pop mch)
    | Code.K_load (kind, off) ->
        let mem = fr.fr_inst.i_memories.(0) in
        let addr = addr_of mch off in
        (try exec_load mch mem kind addr
         with Memory.Bounds -> trap "out of bounds memory access at %d" addr)
    | Code.K_store (kind, off) ->
        let mem = fr.fr_inst.i_memories.(0) in
        let v = Machine.pop mch in
        let addr = addr_of mch off in
        (try exec_store mem kind addr v
         with Memory.Bounds -> trap "out of bounds memory access at %d" addr)
    | Code.K_memory_size ->
        Machine.push mch (I32 (Int32.of_int (Memory.size_pages fr.fr_inst.i_memories.(0))))
    | Code.K_memory_grow ->
        let n = Int32.to_int (as_i32 (Machine.pop mch)) in
        let r = Memory.grow fr.fr_inst.i_memories.(0) n in
        Machine.push mch (I32 (Int32.of_int r))
    | Code.K_memory_fill ->
        let len = Int32.to_int (as_i32 (Machine.pop mch)) land 0xFFFFFFFF in
        let byte = Int32.to_int (as_i32 (Machine.pop mch)) in
        let dst = Int32.to_int (as_i32 (Machine.pop mch)) land 0xFFFFFFFF in
        (try Memory.fill fr.fr_inst.i_memories.(0) ~dst ~byte ~len
         with Memory.Bounds -> trap "out of bounds memory fill")
    | Code.K_memory_copy ->
        let len = Int32.to_int (as_i32 (Machine.pop mch)) land 0xFFFFFFFF in
        let src = Int32.to_int (as_i32 (Machine.pop mch)) land 0xFFFFFFFF in
        let dst = Int32.to_int (as_i32 (Machine.pop mch)) land 0xFFFFFFFF in
        (try Memory.copy fr.fr_inst.i_memories.(0) ~dst ~src ~len
         with Memory.Bounds -> trap "out of bounds memory copy")
    | Code.K_const v -> Machine.push mch v
    | Code.K_i32_eqz -> Machine.push mch (i32_of_bool (as_i32 (Machine.pop mch) = 0l))
    | Code.K_i64_eqz -> Machine.push mch (i32_of_bool (as_i64 (Machine.pop mch) = 0L))
    | Code.K_i32_unop o -> Machine.push mch (I32 (exec_i32_unop o (as_i32 (Machine.pop mch))))
    | Code.K_i64_unop o -> Machine.push mch (I64 (exec_i64_unop o (as_i64 (Machine.pop mch))))
    | Code.K_i32_binop o ->
        let b = as_i32 (Machine.pop mch) in
        let a = as_i32 (Machine.pop mch) in
        Machine.push mch (I32 (exec_i32_binop o a b))
    | Code.K_i64_binop o ->
        let b = as_i64 (Machine.pop mch) in
        let a = as_i64 (Machine.pop mch) in
        Machine.push mch (I64 (exec_i64_binop o a b))
    | Code.K_i32_relop o ->
        let b = as_i32 (Machine.pop mch) in
        let a = as_i32 (Machine.pop mch) in
        Machine.push mch (i32_of_bool (exec_i32_relop o a b))
    | Code.K_i64_relop o ->
        let b = as_i64 (Machine.pop mch) in
        let a = as_i64 (Machine.pop mch) in
        Machine.push mch (i32_of_bool (exec_i64_relop o a b))
    | Code.K_f32_unop o ->
        let x = Int32.float_of_bits (as_f32 (Machine.pop mch)) in
        Machine.push mch (F32 (Int32.bits_of_float (exec_f_unop o x)))
    | Code.K_f64_unop o ->
        let x = Int64.float_of_bits (as_f64 (Machine.pop mch)) in
        Machine.push mch (F64 (Int64.bits_of_float (exec_f_unop o x)))
    | Code.K_f32_binop o ->
        let b = Int32.float_of_bits (as_f32 (Machine.pop mch)) in
        let a = Int32.float_of_bits (as_f32 (Machine.pop mch)) in
        Machine.push mch (F32 (Int32.bits_of_float (exec_f_binop o a b)))
    | Code.K_f64_binop o ->
        let b = Int64.float_of_bits (as_f64 (Machine.pop mch)) in
        let a = Int64.float_of_bits (as_f64 (Machine.pop mch)) in
        Machine.push mch (F64 (Int64.bits_of_float (exec_f_binop o a b)))
    | Code.K_f32_relop o ->
        let b = Int32.float_of_bits (as_f32 (Machine.pop mch)) in
        let a = Int32.float_of_bits (as_f32 (Machine.pop mch)) in
        Machine.push mch (i32_of_bool (exec_f_relop o a b))
    | Code.K_f64_relop o ->
        let b = Int64.float_of_bits (as_f64 (Machine.pop mch)) in
        let a = Int64.float_of_bits (as_f64 (Machine.pop mch)) in
        Machine.push mch (i32_of_bool (exec_f_relop o a b))
    | Code.K_cvt c -> Machine.push mch (exec_cvt c (Machine.pop mch))
    | Code.K_poll -> (
        match mch.poll_hook with Some f -> f mch | None -> ())
    (* Superinstructions: dedicated handlers that read/write stack slots
       and locals directly instead of going through Machine.push/pop.
       Each charges [op_width - 1] extra steps *before* any trap can
       fire, so instruction counts (and trap-time counts) are identical
       to the unfused engine. *)
    | Code.F_ll_i32_binop (a, b, o) ->
        mch.steps <- Int64.add mch.steps 2L;
        mch.fused <- Int64.add mch.fused 1L;
        Machine.push mch
          (I32 (exec_i32_binop o (as_i32 fr.fr_locals.(a)) (as_i32 fr.fr_locals.(b))))
    | Code.F_ll_i32_binop_set (a, b, o, d) ->
        mch.steps <- Int64.add mch.steps 3L;
        mch.fused <- Int64.add mch.fused 1L;
        fr.fr_locals.(d) <-
          I32 (exec_i32_binop o (as_i32 fr.fr_locals.(a)) (as_i32 fr.fr_locals.(b)))
    | Code.F_lc_i32_binop (a, c, o) ->
        mch.steps <- Int64.add mch.steps 2L;
        mch.fused <- Int64.add mch.fused 1L;
        Machine.push mch (I32 (exec_i32_binop o (as_i32 fr.fr_locals.(a)) c))
    | Code.F_lc_i32_binop_set (a, c, o, d) ->
        mch.steps <- Int64.add mch.steps 3L;
        mch.fused <- Int64.add mch.fused 1L;
        fr.fr_locals.(d) <- I32 (exec_i32_binop o (as_i32 fr.fr_locals.(a)) c)
    | Code.F_const_i32_binop (c, o) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let t = mch.sp - 1 in
        mch.stack.(t) <- I32 (exec_i32_binop o (as_i32 mch.stack.(t)) c)
    | Code.F_i32_binop_set (o, d) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let b = as_i32 mch.stack.(mch.sp - 1) in
        let a = as_i32 mch.stack.(mch.sp - 2) in
        mch.sp <- mch.sp - 2;
        fr.fr_locals.(d) <- I32 (exec_i32_binop o a b)
    | Code.F_local_load (a, kind, off) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let mem = fr.fr_inst.i_memories.(0) in
        let addr = (Int32.to_int (as_i32 fr.fr_locals.(a)) land 0xFFFFFFFF) + off in
        (try exec_load mch mem kind addr
         with Memory.Bounds -> trap "out of bounds memory access at %d" addr)
    | Code.F_i32_relop_br_if (o, j) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let b = as_i32 mch.stack.(mch.sp - 1) in
        let a = as_i32 mch.stack.(mch.sp - 2) in
        mch.sp <- mch.sp - 2;
        if exec_i32_relop o a b then jump mch fr j
    | Code.F_ll_i32_relop_br_if (a, b, o, j) ->
        mch.steps <- Int64.add mch.steps 3L;
        mch.fused <- Int64.add mch.fused 1L;
        if exec_i32_relop o (as_i32 fr.fr_locals.(a)) (as_i32 fr.fr_locals.(b))
        then jump mch fr j
    | Code.F_lc_i32_relop_br_if (a, c, o, j) ->
        mch.steps <- Int64.add mch.steps 3L;
        mch.fused <- Int64.add mch.fused 1L;
        if exec_i32_relop o (as_i32 fr.fr_locals.(a)) c then jump mch fr j
    | Code.F_lc_store (a, v, kind, off) ->
        mch.steps <- Int64.add mch.steps 2L;
        mch.fused <- Int64.add mch.fused 1L;
        let mem = fr.fr_inst.i_memories.(0) in
        let addr = (Int32.to_int (as_i32 fr.fr_locals.(a)) land 0xFFFFFFFF) + off in
        (try exec_store mem kind addr v
         with Memory.Bounds -> trap "out of bounds memory access at %d" addr)
    | Code.F_i32_eqz_br_if j ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        if as_i32 (Machine.pop mch) = 0l then jump mch fr j
    | Code.F_i32_relop_eqz_br_if (o, j) ->
        mch.steps <- Int64.add mch.steps 2L;
        mch.fused <- Int64.add mch.fused 1L;
        let b = as_i32 mch.stack.(mch.sp - 1) in
        let a = as_i32 mch.stack.(mch.sp - 2) in
        mch.sp <- mch.sp - 2;
        if not (exec_i32_relop o a b) then jump mch fr j
    | Code.F_ll_i32_relop_eqz_br_if (a, b, o, j) ->
        mch.steps <- Int64.add mch.steps 4L;
        mch.fused <- Int64.add mch.fused 1L;
        if not (exec_i32_relop o (as_i32 fr.fr_locals.(a)) (as_i32 fr.fr_locals.(b)))
        then jump mch fr j
    | Code.F_lc_i32_relop_eqz_br_if (a, c, o, j) ->
        mch.steps <- Int64.add mch.steps 4L;
        mch.fused <- Int64.add mch.fused 1L;
        if not (exec_i32_relop o (as_i32 fr.fr_locals.(a)) c) then jump mch fr j
    | Code.F_l_i32_binop (b, o) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let t = mch.sp - 1 in
        mch.stack.(t) <-
          I32 (exec_i32_binop o (as_i32 mch.stack.(t)) (as_i32 fr.fr_locals.(b)))
    | Code.F_i32_binop_load (o, kind, off) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let b = as_i32 mch.stack.(mch.sp - 1) in
        let a = as_i32 mch.stack.(mch.sp - 2) in
        mch.sp <- mch.sp - 2;
        let mem = fr.fr_inst.i_memories.(0) in
        let addr = (Int32.to_int (exec_i32_binop o a b) land 0xFFFFFFFF) + off in
        (try exec_load mch mem kind addr
         with Memory.Bounds -> trap "out of bounds memory access at %d" addr)
    | Code.F_i32_binop_binop (o1, o2) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let z = as_i32 mch.stack.(mch.sp - 1) in
        let y = as_i32 mch.stack.(mch.sp - 2) in
        let x = as_i32 mch.stack.(mch.sp - 3) in
        mch.sp <- mch.sp - 2;
        mch.stack.(mch.sp - 1) <- I32 (exec_i32_binop o2 x (exec_i32_binop o1 y z))
    | Code.F_i32_binop_store (o, kind, off) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let y = as_i32 mch.stack.(mch.sp - 1) in
        let x = as_i32 mch.stack.(mch.sp - 2) in
        let a = mch.stack.(mch.sp - 3) in
        mch.sp <- mch.sp - 3;
        let mem = fr.fr_inst.i_memories.(0) in
        let addr = (Int32.to_int (as_i32 a) land 0xFFFFFFFF) + off in
        (try exec_store mem kind addr (I32 (exec_i32_binop o x y))
         with Memory.Bounds -> trap "out of bounds memory access at %d" addr)
    | Code.F_l_store (v, kind, off) ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let mem = fr.fr_inst.i_memories.(0) in
        let addr = addr_of mch off in
        (try exec_store mem kind addr fr.fr_locals.(v)
         with Memory.Bounds -> trap "out of bounds memory access at %d" addr)
    | Code.F_set_get i ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        fr.fr_locals.(i) <- Machine.peek mch
    | Code.F_i32_eqz_eqz ->
        mch.steps <- Int64.add mch.steps 1L;
        mch.fused <- Int64.add mch.fused 1L;
        let t = mch.sp - 1 in
        mch.stack.(t) <- i32_of_bool (as_i32 mch.stack.(t) <> 0l)
  in
  try
    let rec loop () =
      if !m.depth <= !stop_depth then begin
        let n = !results in
        let vs = ref [] in
        for _ = 1 to n do
          vs := Machine.pop !m :: !vs
        done;
        R_done !vs
      end
      else begin
        let mch = !m in
        step mch.frames.(mch.depth - 1);
        loop ()
      end
    in
    loop ()
  with
  | Trap s -> R_trap s
  | Exit_trap r -> r

(** Re-entrant call: invoke [f] on a machine that is already mid-execution
    (e.g. to run a virtual signal handler at a safepoint) and return when
    it completes, leaving the interrupted frames untouched. *)
and call_nested (m : machine) (f : func_inst) (args : value list) : run_result =
  let ft = func_type_of f in
  match f with
  | Wasm_func { wf_inst; wf_code } ->
      let base = m.depth in
      List.iter (Machine.push m) args;
      Machine.push_frame m wf_inst wf_code;
      run_machine m ~results:(List.length ft.Types.results) ~stop_depth:base
  | Host_func { hf_fn; _ } -> (
      match hf_fn m (Array.of_list args) with
      | H_return vs -> R_done vs
      | H_trap s -> R_trap s
      | H_exit c -> R_exit c
      | H_fork _ | H_exec _ -> R_trap "fork/exec in nested host call")

(** Invoke [f] on a fresh entry in machine [m] (frames must be empty). *)
let invoke (m : machine) (f : func_inst) (args : value list) : run_result =
  assert (m.depth = 0);
  let ft = func_type_of f in
  List.iter (Machine.push m) args;
  match f with
  | Wasm_func { wf_inst; wf_code } ->
      Machine.push_frame m wf_inst wf_code;
      run_machine m ~results:(List.length ft.Types.results)
  | Host_func { hf_type; hf_fn; _ } -> (
      let n = List.length hf_type.Types.params in
      let a = Array.make n (I32 0l) in
      for i = n - 1 downto 0 do
        a.(i) <- Machine.pop m
      done;
      match hf_fn m a with
      | H_return vs -> R_done vs
      | H_trap s -> R_trap s
      | H_exit c -> R_exit c
      | H_fork _ | H_exec _ -> R_trap "fork/exec outside wasm context")

(** Resume a machine that already has frames (used after fork: the child
    continues from its cloned state). *)
let resume (m : machine) ~(results : int) : run_result =
  run_machine m ~results
