(** Runtime structures: memories, tables, globals, instances, and the
    explicit machine state.

    The machine's value stack and call frames are plain data, which is what
    makes the WALI process model implementable: [Machine.clone] gives
    [fork] its child image, instance-per-thread shares the {!Memory.t}
    object, and safepoint delivery pushes a handler frame onto a live
    machine (paper §3.1/§3.3). *)

open Types
open Values

(* ------------------------------------------------------------------ *)
(* Linear memory                                                        *)
(* ------------------------------------------------------------------ *)

module Memory = struct
  type t = {
    mutable data : Bytes.t;
    mutable pages : int;
    max_pages : int;
  }

  exception Bounds

  let create ~(min_pages : int) ~(max_pages : int) =
    {
      data = Bytes.make (min_pages * page_size) '\000';
      pages = min_pages;
      max_pages;
    }

  let size_pages m = m.pages
  let size_bytes m = m.pages * page_size

  (** Grow by [n] pages; returns previous size in pages or -1 on failure
      (Wasm memory.grow semantics). *)
  let grow m n =
    if n < 0 then -1
    else
      let old = m.pages in
      let np = old + n in
      if np > m.max_pages then -1
      else begin
        let data = Bytes.make (np * page_size) '\000' in
        Bytes.blit m.data 0 data 0 (old * page_size);
        m.data <- data;
        m.pages <- np;
        old
      end

  let check m addr len =
    if addr < 0 || len < 0 || addr + len > size_bytes m then raise Bounds

  let load8_u m a = check m a 1; Char.code (Bytes.get m.data a)
  let load8_s m a = let v = load8_u m a in if v >= 128 then v - 256 else v
  let load16_u m a = check m a 2; Bytes.get_uint16_le m.data a
  let load16_s m a = check m a 2; Bytes.get_int16_le m.data a
  let load32 m a = check m a 4; Bytes.get_int32_le m.data a
  let load64 m a = check m a 8; Bytes.get_int64_le m.data a

  let store8 m a v = check m a 1; Bytes.set_uint8 m.data a (v land 0xff)
  let store16 m a v = check m a 2; Bytes.set_uint16_le m.data a (v land 0xffff)
  let store32 m a v = check m a 4; Bytes.set_int32_le m.data a v
  let store64 m a v = check m a 8; Bytes.set_int64_le m.data a v

  let fill m ~dst ~byte ~len =
    check m dst len;
    Bytes.fill m.data dst len (Char.chr (byte land 0xff))

  let copy m ~dst ~src ~len =
    check m dst len;
    check m src len;
    Bytes.blit m.data src m.data dst len

  let read_string m ~addr ~len =
    check m addr len;
    Bytes.sub_string m.data addr len

  (** Read a NUL-terminated string. *)
  let read_cstring m ~addr =
    let limit = size_bytes m in
    let rec find i =
      if i >= limit then raise Bounds
      else if Bytes.get m.data i = '\000' then i
      else find (i + 1)
    in
    let e = find addr in
    Bytes.sub_string m.data addr (e - addr)

  let write_string m ~addr s =
    check m addr (String.length s);
    Bytes.blit_string s 0 m.data addr (String.length s)

  let clone m = { m with data = Bytes.copy m.data }
end

module Table = struct
  type t = { mutable elems : int option array; max : int option }
  (** Entries are function addresses (indices into the owning instance's
      function space); [None] is a null funcref. *)

  let create ~(min : int) ~(max : int option) =
    { elems = Array.make min None; max }

  let size t = Array.length t.elems

  let get t i =
    if i < 0 || i >= size t then trap "undefined element" else t.elems.(i)

  let set t i v =
    if i < 0 || i >= size t then trap "table index out of bounds";
    t.elems.(i) <- v
end

module Global = struct
  type t = { mutable value : value; mut : mutability }

  let create mut value = { value; mut }
  let get g = g.value
  let set g v = g.value <- v
end

(* ------------------------------------------------------------------ *)
(* Instances, functions, machine                                        *)
(* ------------------------------------------------------------------ *)

type instance = {
  i_name : string;
  i_types : func_type array;
  mutable i_funcs : func_inst array;
  i_memories : Memory.t array;
  i_tables : Table.t array;
  i_globals : Global.t array;
  i_exports : (string, extern) Hashtbl.t;
  i_codes : Code.fcode array; (* local function bodies *)
}

and func_inst =
  | Wasm_func of { wf_inst : instance; wf_code : Code.fcode }
  | Host_func of { hf_name : string; hf_type : func_type; hf_fn : host_fn }

and extern =
  | E_func of func_inst
  | E_memory of Memory.t
  | E_table of Table.t
  | E_global of Global.t

and host_fn = machine -> value array -> host_outcome

(** What a host function tells the engine loop to do. [H_fork] and
    [H_exec] require machine surgery that only the engine loop can
    perform (§3.1); everything else is handled inline. *)
and host_outcome =
  | H_return of value list
  | H_trap of string
  | H_exit of int
  | H_fork of (machine -> int64) (* engine clones machine, callback returns parent's result *)
  | H_exec of (unit -> machine) (* replace the process image *)

and frame = {
  (* All fields mutable: the machine keeps a growable array of frame
     records that are reused in place across calls/returns, so a call
     allocates neither a list cell nor (usually) a locals array. *)
  mutable fr_inst : instance;
  mutable fr_code : Code.fcode;
  mutable fr_locals : value array;
  mutable fr_pc : int;
  mutable fr_ret_sp : int; (* value-stack height to restore on return *)
}

and machine = {
  mutable stack : value array;
  mutable sp : int;
  mutable frames : frame array; (* slots 0..depth-1 live; top = depth-1 *)
  mutable depth : int; (* live frame count *)
  mutable m_inst : instance; (* root instance (the process image) *)
  mutable steps : int64; (* executed ops, for deterministic metrics *)
  mutable fused : int64; (* superinstruction dispatches (fusion coverage) *)
  mutable poll_hook : (machine -> unit) option;
  mutable prof_hook : (machine -> unit) option;
      (* profiler sample hook, fired on frame push/pop before the frame
         stack mutates (so the sampled stack is the one that ran) *)
  mutable m_pid : int; (* owning simulated process; engine bookkeeping *)
}

let func_type_of = function
  | Wasm_func { wf_code; _ } -> wf_code.Code.fc_type
  | Host_func { hf_type; _ } -> hf_type

let func_name_of = function
  | Wasm_func { wf_code; _ } -> wf_code.Code.fc_name
  | Host_func { hf_name; _ } -> hf_name

module Machine = struct
  type t = machine

  (* Placeholder contents for not-yet-used frame slots. Never executed:
     the interpreter only reads frames below [depth]. *)
  let null_inst : instance =
    {
      i_name = "";
      i_types = [||];
      i_funcs = [||];
      i_memories = [||];
      i_tables = [||];
      i_globals = [||];
      i_exports = Hashtbl.create 1;
      i_codes = [||];
    }

  let null_code : Code.fcode =
    {
      Code.fc_name = "";
      fc_type = { params = []; results = [] };
      fc_arity = 0;
      fc_nparams = 0;
      fc_locals = [||];
      fc_ops = [||];
    }

  let null_frame () =
    { fr_inst = null_inst; fr_code = null_code; fr_locals = [||]; fr_pc = 0;
      fr_ret_sp = 0 }

  let create inst =
    {
      stack = Array.make 256 (I32 0l);
      sp = 0;
      frames = Array.init 16 (fun _ -> null_frame ());
      depth = 0;
      m_inst = inst;
      steps = 0L;
      fused = 0L;
      poll_hook = None;
      prof_hook = None;
      m_pid = 0;
    }

  let push m v =
    if m.sp = Array.length m.stack then begin
      let s = Array.make (2 * m.sp) (I32 0l) in
      Array.blit m.stack 0 s 0 m.sp;
      m.stack <- s
    end;
    m.stack.(m.sp) <- v;
    m.sp <- m.sp + 1

  let pop m =
    if m.sp = 0 then trap "value stack underflow";
    m.sp <- m.sp - 1;
    m.stack.(m.sp)

  let peek m =
    if m.sp = 0 then trap "value stack underflow";
    m.stack.(m.sp - 1)

  let top_frame m = m.frames.(m.depth - 1)

  let grow_frames m =
    let old = m.frames in
    let n = Array.length old in
    m.frames <-
      Array.init (2 * n) (fun i -> if i < n then old.(i) else null_frame ())

  (** Push a call frame for [code] whose arguments are the top
      [n_params] values of the stack. The frame record (and its locals
      array, when large enough) is reused from a previous call at the
      same depth — every local up to [nlocals] is initialized below, so
      stale values are never observable. *)
  let push_frame m inst (code : Code.fcode) =
    (match m.prof_hook with Some h -> h m | None -> ());
    let nparams = code.Code.fc_nparams in
    let nlocals = Array.length code.Code.fc_locals in
    if m.depth = Array.length m.frames then grow_frames m;
    let fr = m.frames.(m.depth) in
    let locals =
      if Array.length fr.fr_locals >= max nlocals 1 then fr.fr_locals
      else Array.make (max nlocals 4) (I32 0l)
    in
    for i = 0 to nlocals - 1 do
      locals.(i) <- Values.default_of code.Code.fc_locals.(i)
    done;
    if m.sp < nparams then trap "call: missing arguments";
    for i = 0 to nparams - 1 do
      locals.(i) <- m.stack.(m.sp - nparams + i)
    done;
    m.sp <- m.sp - nparams;
    fr.fr_inst <- inst;
    fr.fr_code <- code;
    fr.fr_locals <- locals;
    fr.fr_pc <- 0;
    fr.fr_ret_sp <- m.sp;
    m.depth <- m.depth + 1

  (** Deep-copy: new stack, new frames with copied locals; memories of the
      root instance are copied too (fork semantics). Instances other than
      the root share structure except for memory 0 which is replaced.

      Note: a forked child gets a full copy of the root instance so its
      globals and memory diverge from the parent, matching native fork. *)
  let clone (m : t) : t =
    (* Identity-keyed maps so shared memories/instances stay shared in the
       clone exactly as they were in the original. *)
    let mem_map : (Memory.t * Memory.t) list ref = ref [] in
    let clone_mem mem =
      match List.find_opt (fun (a, _) -> a == mem) !mem_map with
      | Some (_, m') -> m'
      | None ->
          let m' = Memory.clone mem in
          mem_map := (mem, m') :: !mem_map;
          m'
    in
    let inst_map : (instance * instance) list ref = ref [] in
    let rec clone_inst (i : instance) : instance =
      match List.find_opt (fun (a, _) -> a == i) !inst_map with
      | Some (_, i') -> i'
      | None ->
          let i' =
            {
              i with
              i_funcs = [||];
              i_memories = Array.map clone_mem i.i_memories;
              i_tables =
                Array.map
                  (fun (t : Table.t) ->
                    { t with Table.elems = Array.copy t.Table.elems })
                  i.i_tables;
              i_globals =
                Array.map
                  (fun g -> Global.create g.Global.mut (Global.get g))
                  i.i_globals;
              i_exports = Hashtbl.create 8;
            }
          in
          inst_map := (i, i') :: !inst_map;
          i'.i_funcs <-
            Array.map
              (function
                | Wasm_func w -> Wasm_func { w with wf_inst = clone_inst w.wf_inst }
                | Host_func h -> Host_func h)
              i.i_funcs;
          Hashtbl.iter
            (fun k v ->
              let v' =
                match v with
                | E_func (Wasm_func w) ->
                    E_func (Wasm_func { w with wf_inst = clone_inst w.wf_inst })
                | E_func (Host_func h) -> E_func (Host_func h)
                | E_memory mem -> E_memory (clone_mem mem)
                | E_table t -> E_table t
                | E_global g -> E_global g
              in
              Hashtbl.replace i'.i_exports k v')
            i.i_exports;
          i'
    in
    let root = clone_inst m.m_inst in
    (* Live frames get fresh records and locals (the child must not see
       parent mutations); spare slots get fresh placeholders so the two
       machines never share a reusable frame record. *)
    let frames =
      Array.init (Array.length m.frames) (fun i ->
          if i < m.depth then
            let fr = m.frames.(i) in
            {
              fr_inst = clone_inst fr.fr_inst;
              fr_code = fr.fr_code;
              fr_locals = Array.copy fr.fr_locals;
              fr_pc = fr.fr_pc;
              fr_ret_sp = fr.fr_ret_sp;
            }
          else null_frame ())
    in
    {
      stack = Array.copy m.stack;
      sp = m.sp;
      frames;
      depth = m.depth;
      m_inst = root;
      steps = m.steps;
      fused = m.fused;
      poll_hook = m.poll_hook;
      prof_hook = m.prof_hook;
      m_pid = m.m_pid;
    }
end

(** Default memory of the machine's root instance. *)
let memory0 (m : machine) =
  if Array.length m.m_inst.i_memories = 0 then trap "no memory";
  m.m_inst.i_memories.(0)

let export_opt inst name = Hashtbl.find_opt inst.i_exports name

let exported_func inst name =
  match export_opt inst name with
  | Some (E_func f) -> f
  | _ -> trap "no exported function %s in %s" name inst.i_name
