(** Wasm binary format: encoder and decoder (core spec §5).

    Round-tripping through this codec is how WALI binaries are packaged
    for ISA-agnostic distribution; the decoder doubles as the loader for
    `walirun`. Custom sections are ignored on decode. *)

open Types
open Ast

exception Decode_error of string

let decode_error fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Encoder                                                              *)
(* ------------------------------------------------------------------ *)

module E = struct
  let byte b v = Buffer.add_char b (Char.chr (v land 0xff))

  let rec u32 b (v : int) =
    if v < 0 then invalid_arg "u32: negative";
    if v < 128 then byte b v
    else begin
      byte b (128 lor (v land 0x7f));
      u32 b (v lsr 7)
    end

  let rec s64 b (v : int64) =
    let low = Int64.to_int (Int64.logand v 0x7fL) in
    let rest = Int64.shift_right v 7 in
    if (rest = 0L && low land 0x40 = 0) || (rest = -1L && low land 0x40 <> 0)
    then byte b low
    else begin
      byte b (128 lor low);
      s64 b rest
    end

  let s32 b (v : int32) = s64 b (Int64.of_int32 v)

  let f32 b (bits : int32) =
    for i = 0 to 3 do
      byte b (Int32.to_int (Int32.shift_right_logical bits (8 * i)) land 0xff)
    done

  let f64 b (bits : int64) =
    for i = 0 to 7 do
      byte b (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let name b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let val_type b = function
    | T_i32 -> byte b 0x7F
    | T_i64 -> byte b 0x7E
    | T_f32 -> byte b 0x7D
    | T_f64 -> byte b 0x7C
    | T_funcref -> byte b 0x70

  let func_type b ft =
    byte b 0x60;
    u32 b (List.length ft.params);
    List.iter (val_type b) ft.params;
    u32 b (List.length ft.results);
    List.iter (val_type b) ft.results

  let limits b l =
    match l.lim_max with
    | None ->
        byte b 0x00;
        u32 b l.lim_min
    | Some mx ->
        byte b 0x01;
        u32 b l.lim_min;
        u32 b mx

  let block_type b = function
    | Bt_none -> byte b 0x40
    | Bt_val t -> val_type b t
    | Bt_type i -> s64 b (Int64.of_int i)

  let memop b (m : memop) =
    u32 b m.align;
    u32 b m.offset

  let ext_load b op_sx op_zx = function SX -> byte b op_sx | ZX -> byte b op_zx

  let rec instr b (i : instr) =
    match i with
    | Unreachable -> byte b 0x00
    | Nop -> byte b 0x01
    | Block (bt, body) ->
        byte b 0x02;
        block_type b bt;
        List.iter (instr b) body;
        byte b 0x0B
    | Loop (bt, body) ->
        byte b 0x03;
        block_type b bt;
        List.iter (instr b) body;
        byte b 0x0B
    | If (bt, t, e) ->
        byte b 0x04;
        block_type b bt;
        List.iter (instr b) t;
        if e <> [] then begin
          byte b 0x05;
          List.iter (instr b) e
        end;
        byte b 0x0B
    | Br i -> byte b 0x0C; u32 b i
    | Br_if i -> byte b 0x0D; u32 b i
    | Br_table (is, d) ->
        byte b 0x0E;
        u32 b (List.length is);
        List.iter (u32 b) is;
        u32 b d
    | Return -> byte b 0x0F
    | Call i -> byte b 0x10; u32 b i
    | Call_indirect (ti, tbl) -> byte b 0x11; u32 b ti; u32 b tbl
    | Drop -> byte b 0x1A
    | Select -> byte b 0x1B
    | Local_get i -> byte b 0x20; u32 b i
    | Local_set i -> byte b 0x21; u32 b i
    | Local_tee i -> byte b 0x22; u32 b i
    | Global_get i -> byte b 0x23; u32 b i
    | Global_set i -> byte b 0x24; u32 b i
    | I32_load m -> byte b 0x28; memop b m
    | I64_load m -> byte b 0x29; memop b m
    | F32_load m -> byte b 0x2A; memop b m
    | F64_load m -> byte b 0x2B; memop b m
    | I32_load8 (e, m) -> ext_load b 0x2C 0x2D e; memop b m
    | I32_load16 (e, m) -> ext_load b 0x2E 0x2F e; memop b m
    | I64_load8 (e, m) -> ext_load b 0x30 0x31 e; memop b m
    | I64_load16 (e, m) -> ext_load b 0x32 0x33 e; memop b m
    | I64_load32 (e, m) -> ext_load b 0x34 0x35 e; memop b m
    | I32_store m -> byte b 0x36; memop b m
    | I64_store m -> byte b 0x37; memop b m
    | F32_store m -> byte b 0x38; memop b m
    | F64_store m -> byte b 0x39; memop b m
    | I32_store8 m -> byte b 0x3A; memop b m
    | I32_store16 m -> byte b 0x3B; memop b m
    | I64_store8 m -> byte b 0x3C; memop b m
    | I64_store16 m -> byte b 0x3D; memop b m
    | I64_store32 m -> byte b 0x3E; memop b m
    | Memory_size -> byte b 0x3F; byte b 0x00
    | Memory_grow -> byte b 0x40; byte b 0x00
    | Memory_fill -> byte b 0xFC; u32 b 11; byte b 0x00
    | Memory_copy -> byte b 0xFC; u32 b 10; byte b 0x00; byte b 0x00
    | I32_const v -> byte b 0x41; s32 b v
    | I64_const v -> byte b 0x42; s64 b v
    | F32_const v -> byte b 0x43; f32 b v
    | F64_const v -> byte b 0x44; f64 b v
    | I32_eqz -> byte b 0x45
    | I32_relop o ->
        byte b
          (match o with
          | Eq -> 0x46 | Ne -> 0x47 | Lt_s -> 0x48 | Lt_u -> 0x49
          | Gt_s -> 0x4A | Gt_u -> 0x4B | Le_s -> 0x4C | Le_u -> 0x4D
          | Ge_s -> 0x4E | Ge_u -> 0x4F)
    | I64_eqz -> byte b 0x50
    | I64_relop o ->
        byte b
          (match o with
          | Eq -> 0x51 | Ne -> 0x52 | Lt_s -> 0x53 | Lt_u -> 0x54
          | Gt_s -> 0x55 | Gt_u -> 0x56 | Le_s -> 0x57 | Le_u -> 0x58
          | Ge_s -> 0x59 | Ge_u -> 0x5A)
    | F32_relop o ->
        byte b
          (match o with
          | Feq -> 0x5B | Fne -> 0x5C | Flt -> 0x5D | Fgt -> 0x5E
          | Fle -> 0x5F | Fge -> 0x60)
    | F64_relop o ->
        byte b
          (match o with
          | Feq -> 0x61 | Fne -> 0x62 | Flt -> 0x63 | Fgt -> 0x64
          | Fle -> 0x65 | Fge -> 0x66)
    | I32_unop o -> byte b (match o with Clz -> 0x67 | Ctz -> 0x68 | Popcnt -> 0x69)
    | I32_binop o ->
        byte b
          (match o with
          | Add -> 0x6A | Sub -> 0x6B | Mul -> 0x6C | Div_s -> 0x6D
          | Div_u -> 0x6E | Rem_s -> 0x6F | Rem_u -> 0x70 | And -> 0x71
          | Or -> 0x72 | Xor -> 0x73 | Shl -> 0x74 | Shr_s -> 0x75
          | Shr_u -> 0x76 | Rotl -> 0x77 | Rotr -> 0x78)
    | I64_unop o -> byte b (match o with Clz -> 0x79 | Ctz -> 0x7A | Popcnt -> 0x7B)
    | I64_binop o ->
        byte b
          (match o with
          | Add -> 0x7C | Sub -> 0x7D | Mul -> 0x7E | Div_s -> 0x7F
          | Div_u -> 0x80 | Rem_s -> 0x81 | Rem_u -> 0x82 | And -> 0x83
          | Or -> 0x84 | Xor -> 0x85 | Shl -> 0x86 | Shr_s -> 0x87
          | Shr_u -> 0x88 | Rotl -> 0x89 | Rotr -> 0x8A)
    | F32_unop o ->
        byte b
          (match o with
          | Abs -> 0x8B | Neg -> 0x8C | Ceil -> 0x8D | Floor -> 0x8E
          | Trunc -> 0x8F | Nearest -> 0x90 | Sqrt -> 0x91)
    | F32_binop o ->
        byte b
          (match o with
          | Fadd -> 0x92 | Fsub -> 0x93 | Fmul -> 0x94 | Fdiv -> 0x95
          | Fmin -> 0x96 | Fmax -> 0x97 | Copysign -> 0x98)
    | F64_unop o ->
        byte b
          (match o with
          | Abs -> 0x99 | Neg -> 0x9A | Ceil -> 0x9B | Floor -> 0x9C
          | Trunc -> 0x9D | Nearest -> 0x9E | Sqrt -> 0x9F)
    | F64_binop o ->
        byte b
          (match o with
          | Fadd -> 0xA0 | Fsub -> 0xA1 | Fmul -> 0xA2 | Fdiv -> 0xA3
          | Fmin -> 0xA4 | Fmax -> 0xA5 | Copysign -> 0xA6)
    | I32_wrap_i64 -> byte b 0xA7
    | I32_trunc_f32 e -> byte b (match e with SX -> 0xA8 | ZX -> 0xA9)
    | I32_trunc_f64 e -> byte b (match e with SX -> 0xAA | ZX -> 0xAB)
    | I64_extend_i32 e -> byte b (match e with SX -> 0xAC | ZX -> 0xAD)
    | I64_trunc_f32 e -> byte b (match e with SX -> 0xAE | ZX -> 0xAF)
    | I64_trunc_f64 e -> byte b (match e with SX -> 0xB0 | ZX -> 0xB1)
    | F32_convert_i32 e -> byte b (match e with SX -> 0xB2 | ZX -> 0xB3)
    | F32_convert_i64 e -> byte b (match e with SX -> 0xB4 | ZX -> 0xB5)
    | F32_demote_f64 -> byte b 0xB6
    | F64_convert_i32 e -> byte b (match e with SX -> 0xB7 | ZX -> 0xB8)
    | F64_convert_i64 e -> byte b (match e with SX -> 0xB9 | ZX -> 0xBA)
    | F64_promote_f32 -> byte b 0xBB
    | I32_reinterpret_f32 -> byte b 0xBC
    | I64_reinterpret_f64 -> byte b 0xBD
    | F32_reinterpret_i32 -> byte b 0xBE
    | F64_reinterpret_i64 -> byte b 0xBF
    | I32_extend8_s -> byte b 0xC0
    | I32_extend16_s -> byte b 0xC1
    | I64_extend8_s -> byte b 0xC2
    | I64_extend16_s -> byte b 0xC3
    | I64_extend32_s -> byte b 0xC4

  let expr b is =
    List.iter (instr b) is;
    byte b 0x0B

  let section b id payload =
    if Buffer.length payload > 0 then begin
      byte b id;
      u32 b (Buffer.length payload);
      Buffer.add_buffer b payload
    end

  let vec b n each =
    u32 b n;
    each ()
end

let encode (m : module_) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "\x00asm\x01\x00\x00\x00";
  let sec id fill =
    let p = Buffer.create 256 in
    fill p;
    E.section b id p
  in
  if Array.length m.types > 0 then
    sec 1 (fun p ->
        E.vec p (Array.length m.types) (fun () ->
            Array.iter (E.func_type p) m.types));
  if m.imports <> [] then
    sec 2 (fun p ->
        E.vec p (List.length m.imports) (fun () ->
            List.iter
              (fun i ->
                E.name p i.imp_module;
                E.name p i.imp_name;
                match i.imp_desc with
                | Id_func t -> E.byte p 0x00; E.u32 p t
                | Id_table l -> E.byte p 0x01; E.byte p 0x70; E.limits p l
                | Id_memory l -> E.byte p 0x02; E.limits p l
                | Id_global g ->
                    E.byte p 0x03;
                    E.val_type p g.gt_type;
                    E.byte p (match g.gt_mut with Immutable -> 0 | Mutable -> 1))
              m.imports));
  if Array.length m.funcs > 0 then
    sec 3 (fun p ->
        E.vec p (Array.length m.funcs) (fun () ->
            Array.iter (fun f -> E.u32 p f.f_type) m.funcs));
  if Array.length m.tables > 0 then
    sec 4 (fun p ->
        E.vec p (Array.length m.tables) (fun () ->
            Array.iter (fun l -> E.byte p 0x70; E.limits p l) m.tables));
  if Array.length m.memories > 0 then
    sec 5 (fun p ->
        E.vec p (Array.length m.memories) (fun () ->
            Array.iter (E.limits p) m.memories));
  if Array.length m.globals > 0 then
    sec 6 (fun p ->
        E.vec p (Array.length m.globals) (fun () ->
            Array.iter
              (fun g ->
                E.val_type p g.g_type.gt_type;
                E.byte p (match g.g_type.gt_mut with Immutable -> 0 | Mutable -> 1);
                E.expr p g.g_init)
              m.globals));
  if m.exports <> [] then
    sec 7 (fun p ->
        E.vec p (List.length m.exports) (fun () ->
            List.iter
              (fun e ->
                E.name p e.exp_name;
                match e.exp_desc with
                | Ed_func i -> E.byte p 0x00; E.u32 p i
                | Ed_table i -> E.byte p 0x01; E.u32 p i
                | Ed_memory i -> E.byte p 0x02; E.u32 p i
                | Ed_global i -> E.byte p 0x03; E.u32 p i)
              m.exports));
  (match m.start with
  | Some s -> sec 8 (fun p -> E.u32 p s)
  | None -> ());
  if m.elems <> [] then
    sec 9 (fun p ->
        E.vec p (List.length m.elems) (fun () ->
            List.iter
              (fun e ->
                E.u32 p e.e_table;
                E.expr p e.e_offset;
                E.u32 p (List.length e.e_funcs);
                List.iter (E.u32 p) e.e_funcs)
              m.elems));
  if Array.length m.funcs > 0 then
    sec 10 (fun p ->
        E.vec p (Array.length m.funcs) (fun () ->
            Array.iter
              (fun f ->
                let fb = Buffer.create 128 in
                (* Compress locals into (count, type) runs. *)
                let runs =
                  List.fold_left
                    (fun acc t ->
                      match acc with
                      | (n, t') :: rest when t' = t -> (n + 1, t') :: rest
                      | _ -> (1, t) :: acc)
                    [] f.f_locals
                  |> List.rev
                in
                E.u32 fb (List.length runs);
                List.iter
                  (fun (n, t) ->
                    E.u32 fb n;
                    E.val_type fb t)
                  runs;
                E.expr fb f.f_body;
                E.u32 p (Buffer.length fb);
                Buffer.add_buffer p fb)
              m.funcs));
  if m.datas <> [] then
    sec 11 (fun p ->
        E.vec p (List.length m.datas) (fun () ->
            List.iter
              (fun d ->
                E.u32 p d.d_mem;
                E.expr p d.d_offset;
                E.u32 p (String.length d.d_bytes);
                Buffer.add_string p d.d_bytes)
              m.datas));
  (* Custom "name" section, function-name subsection (spec §7.4.1):
     carries the compiler's diagnostic names across the binary boundary,
     so stacks in profiles and flamegraph diffs name real functions
     instead of synthetic func<N> indices. Execution is unaffected. *)
  let named =
    Array.to_list m.funcs
    |> List.mapi (fun i f -> (num_imported_funcs m + i, f.f_name))
    |> List.filter (fun (_, n) -> n <> "")
  in
  if named <> [] then begin
    let p = Buffer.create 256 in
    E.name p "name";
    let sub = Buffer.create 256 in
    E.u32 sub (List.length named);
    List.iter
      (fun (i, n) ->
        E.u32 sub i;
        E.name sub n)
      named;
    E.byte p 1;
    E.u32 p (Buffer.length sub);
    Buffer.add_buffer p sub;
    E.section b 0 p
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoder                                                              *)
(* ------------------------------------------------------------------ *)

module D = struct
  type t = { src : string; mutable pos : int; limit : int }

  let make src = { src; pos = 0; limit = String.length src }

  let eof d = d.pos >= d.limit

  let byte d =
    if eof d then decode_error "unexpected end of input";
    let c = Char.code d.src.[d.pos] in
    d.pos <- d.pos + 1;
    c

  let u32 d =
    let rec go shift acc =
      let b = byte d in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0

  let s64 d =
    let rec go shift acc =
      let b = byte d in
      let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc
      else if shift + 7 < 64 && b land 0x40 <> 0 then
        Int64.logor acc (Int64.shift_left (-1L) (shift + 7))
      else acc
    in
    go 0 0L

  let s32 d = Int64.to_int32 (s64 d)

  let f32 d =
    let v = ref 0l in
    for i = 0 to 3 do
      v := Int32.logor !v (Int32.shift_left (Int32.of_int (byte d)) (8 * i))
    done;
    !v

  let f64 d =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte d)) (8 * i))
    done;
    !v

  let bytes d n =
    if d.pos + n > d.limit then decode_error "unexpected end of input";
    let s = String.sub d.src d.pos n in
    d.pos <- d.pos + n;
    s

  let name d = bytes d (u32 d)

  let val_type d =
    match byte d with
    | 0x7F -> T_i32
    | 0x7E -> T_i64
    | 0x7D -> T_f32
    | 0x7C -> T_f64
    | 0x70 -> T_funcref
    | b -> decode_error "bad value type 0x%02x" b

  let limits d =
    match byte d with
    | 0x00 -> { lim_min = u32 d; lim_max = None }
    | 0x01 ->
        let mn = u32 d in
        let mx = u32 d in
        { lim_min = mn; lim_max = Some mx }
    | b -> decode_error "bad limits flag 0x%02x" b

  let block_type d =
    (* Peek: 0x40 empty, valtype byte, or signed LEB index. *)
    let c = Char.code d.src.[d.pos] in
    match c with
    | 0x40 -> d.pos <- d.pos + 1; Bt_none
    | 0x7F | 0x7E | 0x7D | 0x7C | 0x70 -> Bt_val (val_type d)
    | _ -> Bt_type (Int64.to_int (s64 d))

  let memop d =
    let align = u32 d in
    let offset = u32 d in
    { align; offset }

  let rec instr_seq d (stops : int list) : instr list * int =
    let acc = ref [] in
    let rec go () =
      let op = byte d in
      if List.mem op stops then (List.rev !acc, op)
      else begin
        acc := decode_instr d op :: !acc;
        go ()
      end
    in
    go ()

  and decode_instr d op : instr =
    match op with
    | 0x00 -> Unreachable
    | 0x01 -> Nop
    | 0x02 ->
        let bt = block_type d in
        let body, _ = instr_seq d [ 0x0B ] in
        Block (bt, body)
    | 0x03 ->
        let bt = block_type d in
        let body, _ = instr_seq d [ 0x0B ] in
        Loop (bt, body)
    | 0x04 ->
        let bt = block_type d in
        let t, stop = instr_seq d [ 0x05; 0x0B ] in
        let e = if stop = 0x05 then fst (instr_seq d [ 0x0B ]) else [] in
        If (bt, t, e)
    | 0x0C -> Br (u32 d)
    | 0x0D -> Br_if (u32 d)
    | 0x0E ->
        let n = u32 d in
        let is = List.init n (fun _ -> u32 d) in
        Br_table (is, u32 d)
    | 0x0F -> Return
    | 0x10 -> Call (u32 d)
    | 0x11 ->
        let ti = u32 d in
        let tbl = u32 d in
        Call_indirect (ti, tbl)
    | 0x1A -> Drop
    | 0x1B -> Select
    | 0x20 -> Local_get (u32 d)
    | 0x21 -> Local_set (u32 d)
    | 0x22 -> Local_tee (u32 d)
    | 0x23 -> Global_get (u32 d)
    | 0x24 -> Global_set (u32 d)
    | 0x28 -> I32_load (memop d)
    | 0x29 -> I64_load (memop d)
    | 0x2A -> F32_load (memop d)
    | 0x2B -> F64_load (memop d)
    | 0x2C -> I32_load8 (SX, memop d)
    | 0x2D -> I32_load8 (ZX, memop d)
    | 0x2E -> I32_load16 (SX, memop d)
    | 0x2F -> I32_load16 (ZX, memop d)
    | 0x30 -> I64_load8 (SX, memop d)
    | 0x31 -> I64_load8 (ZX, memop d)
    | 0x32 -> I64_load16 (SX, memop d)
    | 0x33 -> I64_load16 (ZX, memop d)
    | 0x34 -> I64_load32 (SX, memop d)
    | 0x35 -> I64_load32 (ZX, memop d)
    | 0x36 -> I32_store (memop d)
    | 0x37 -> I64_store (memop d)
    | 0x38 -> F32_store (memop d)
    | 0x39 -> F64_store (memop d)
    | 0x3A -> I32_store8 (memop d)
    | 0x3B -> I32_store16 (memop d)
    | 0x3C -> I64_store8 (memop d)
    | 0x3D -> I64_store16 (memop d)
    | 0x3E -> I64_store32 (memop d)
    | 0x3F -> ignore (byte d); Memory_size
    | 0x40 -> ignore (byte d); Memory_grow
    | 0x41 -> I32_const (s32 d)
    | 0x42 -> I64_const (s64 d)
    | 0x43 -> F32_const (f32 d)
    | 0x44 -> F64_const (f64 d)
    | 0x45 -> I32_eqz
    | 0x46 -> I32_relop Eq | 0x47 -> I32_relop Ne
    | 0x48 -> I32_relop Lt_s | 0x49 -> I32_relop Lt_u
    | 0x4A -> I32_relop Gt_s | 0x4B -> I32_relop Gt_u
    | 0x4C -> I32_relop Le_s | 0x4D -> I32_relop Le_u
    | 0x4E -> I32_relop Ge_s | 0x4F -> I32_relop Ge_u
    | 0x50 -> I64_eqz
    | 0x51 -> I64_relop Eq | 0x52 -> I64_relop Ne
    | 0x53 -> I64_relop Lt_s | 0x54 -> I64_relop Lt_u
    | 0x55 -> I64_relop Gt_s | 0x56 -> I64_relop Gt_u
    | 0x57 -> I64_relop Le_s | 0x58 -> I64_relop Le_u
    | 0x59 -> I64_relop Ge_s | 0x5A -> I64_relop Ge_u
    | 0x5B -> F32_relop Feq | 0x5C -> F32_relop Fne
    | 0x5D -> F32_relop Flt | 0x5E -> F32_relop Fgt
    | 0x5F -> F32_relop Fle | 0x60 -> F32_relop Fge
    | 0x61 -> F64_relop Feq | 0x62 -> F64_relop Fne
    | 0x63 -> F64_relop Flt | 0x64 -> F64_relop Fgt
    | 0x65 -> F64_relop Fle | 0x66 -> F64_relop Fge
    | 0x67 -> I32_unop Clz | 0x68 -> I32_unop Ctz | 0x69 -> I32_unop Popcnt
    | 0x6A -> I32_binop Add | 0x6B -> I32_binop Sub | 0x6C -> I32_binop Mul
    | 0x6D -> I32_binop Div_s | 0x6E -> I32_binop Div_u
    | 0x6F -> I32_binop Rem_s | 0x70 -> I32_binop Rem_u
    | 0x71 -> I32_binop And | 0x72 -> I32_binop Or | 0x73 -> I32_binop Xor
    | 0x74 -> I32_binop Shl | 0x75 -> I32_binop Shr_s | 0x76 -> I32_binop Shr_u
    | 0x77 -> I32_binop Rotl | 0x78 -> I32_binop Rotr
    | 0x79 -> I64_unop Clz | 0x7A -> I64_unop Ctz | 0x7B -> I64_unop Popcnt
    | 0x7C -> I64_binop Add | 0x7D -> I64_binop Sub | 0x7E -> I64_binop Mul
    | 0x7F -> I64_binop Div_s | 0x80 -> I64_binop Div_u
    | 0x81 -> I64_binop Rem_s | 0x82 -> I64_binop Rem_u
    | 0x83 -> I64_binop And | 0x84 -> I64_binop Or | 0x85 -> I64_binop Xor
    | 0x86 -> I64_binop Shl | 0x87 -> I64_binop Shr_s | 0x88 -> I64_binop Shr_u
    | 0x89 -> I64_binop Rotl | 0x8A -> I64_binop Rotr
    | 0x8B -> F32_unop Abs | 0x8C -> F32_unop Neg | 0x8D -> F32_unop Ceil
    | 0x8E -> F32_unop Floor | 0x8F -> F32_unop Trunc
    | 0x90 -> F32_unop Nearest | 0x91 -> F32_unop Sqrt
    | 0x92 -> F32_binop Fadd | 0x93 -> F32_binop Fsub | 0x94 -> F32_binop Fmul
    | 0x95 -> F32_binop Fdiv | 0x96 -> F32_binop Fmin | 0x97 -> F32_binop Fmax
    | 0x98 -> F32_binop Copysign
    | 0x99 -> F64_unop Abs | 0x9A -> F64_unop Neg | 0x9B -> F64_unop Ceil
    | 0x9C -> F64_unop Floor | 0x9D -> F64_unop Trunc
    | 0x9E -> F64_unop Nearest | 0x9F -> F64_unop Sqrt
    | 0xA0 -> F64_binop Fadd | 0xA1 -> F64_binop Fsub | 0xA2 -> F64_binop Fmul
    | 0xA3 -> F64_binop Fdiv | 0xA4 -> F64_binop Fmin | 0xA5 -> F64_binop Fmax
    | 0xA6 -> F64_binop Copysign
    | 0xA7 -> I32_wrap_i64
    | 0xA8 -> I32_trunc_f32 SX | 0xA9 -> I32_trunc_f32 ZX
    | 0xAA -> I32_trunc_f64 SX | 0xAB -> I32_trunc_f64 ZX
    | 0xAC -> I64_extend_i32 SX | 0xAD -> I64_extend_i32 ZX
    | 0xAE -> I64_trunc_f32 SX | 0xAF -> I64_trunc_f32 ZX
    | 0xB0 -> I64_trunc_f64 SX | 0xB1 -> I64_trunc_f64 ZX
    | 0xB2 -> F32_convert_i32 SX | 0xB3 -> F32_convert_i32 ZX
    | 0xB4 -> F32_convert_i64 SX | 0xB5 -> F32_convert_i64 ZX
    | 0xB6 -> F32_demote_f64
    | 0xB7 -> F64_convert_i32 SX | 0xB8 -> F64_convert_i32 ZX
    | 0xB9 -> F64_convert_i64 SX | 0xBA -> F64_convert_i64 ZX
    | 0xBB -> F64_promote_f32
    | 0xBC -> I32_reinterpret_f32 | 0xBD -> I64_reinterpret_f64
    | 0xBE -> F32_reinterpret_i32 | 0xBF -> F64_reinterpret_i64
    | 0xC0 -> I32_extend8_s | 0xC1 -> I32_extend16_s
    | 0xC2 -> I64_extend8_s | 0xC3 -> I64_extend16_s | 0xC4 -> I64_extend32_s
    | 0xFC -> (
        match u32 d with
        | 10 ->
            ignore (byte d);
            ignore (byte d);
            Memory_copy
        | 11 ->
            ignore (byte d);
            Memory_fill
        | n -> decode_error "unsupported 0xFC opcode %d" n)
    | op -> decode_error "unsupported opcode 0x%02x" op

  let expr d = fst (instr_seq d [ 0x0B ])
end

let decode ?(name = "") (src : string) : module_ =
  let d = D.make src in
  if D.bytes d 4 <> "\x00asm" then decode_error "bad magic";
  if D.bytes d 4 <> "\x01\x00\x00\x00" then decode_error "bad version";
  let m = ref { empty_module with m_name = name } in
  let func_type_idxs = ref [||] in
  while not (D.eof d) do
    let id = D.byte d in
    let size = D.u32 d in
    let stop = d.D.pos + size in
    (match id with
    | 0 ->
        (* Custom section: decode function names from the "name" section
           (it follows the code section, so funcs are already in place);
           every other custom section is skipped. *)
        if D.name d = "name" then
          while d.D.pos < stop do
            let sub = D.byte d in
            let len = D.u32 d in
            let sub_stop = d.D.pos + len in
            if sub = 1 then begin
              let k = D.u32 d in
              for _ = 1 to k do
                let idx = D.u32 d in
                let nm = D.name d in
                let j = idx - num_imported_funcs !m in
                if j >= 0 && j < Array.length !m.funcs then
                  !m.funcs.(j) <- { (!m.funcs.(j)) with f_name = nm }
              done
            end;
            d.D.pos <- sub_stop
          done;
        d.D.pos <- stop
    | 1 ->
        let n = D.u32 d in
        let types =
          Array.init n (fun _ ->
              if D.byte d <> 0x60 then decode_error "bad functype tag";
              let np = D.u32 d in
              let params = List.init np (fun _ -> D.val_type d) in
              let nr = D.u32 d in
              let results = List.init nr (fun _ -> D.val_type d) in
              { params; results })
        in
        m := { !m with types }
    | 2 ->
        let n = D.u32 d in
        let imports =
          List.init n (fun _ ->
              let imp_module = D.name d in
              let imp_name = D.name d in
              let imp_desc =
                match D.byte d with
                | 0x00 -> Id_func (D.u32 d)
                | 0x01 ->
                    if D.byte d <> 0x70 then decode_error "bad table elem type";
                    Id_table (D.limits d)
                | 0x02 -> Id_memory (D.limits d)
                | 0x03 ->
                    let t = D.val_type d in
                    let mut = if D.byte d = 1 then Mutable else Immutable in
                    Id_global { gt_type = t; gt_mut = mut }
                | b -> decode_error "bad import kind 0x%02x" b
              in
              { imp_module; imp_name; imp_desc })
        in
        m := { !m with imports }
    | 3 ->
        let n = D.u32 d in
        func_type_idxs := Array.init n (fun _ -> D.u32 d)
    | 4 ->
        let n = D.u32 d in
        let tables =
          Array.init n (fun _ ->
              if D.byte d <> 0x70 then decode_error "bad table elem type";
              D.limits d)
        in
        m := { !m with tables }
    | 5 ->
        let n = D.u32 d in
        m := { !m with memories = Array.init n (fun _ -> D.limits d) }
    | 6 ->
        let n = D.u32 d in
        let globals =
          Array.init n (fun _ ->
              let t = D.val_type d in
              let mut = if D.byte d = 1 then Mutable else Immutable in
              let init = D.expr d in
              { g_type = { gt_type = t; gt_mut = mut }; g_init = init })
        in
        m := { !m with globals }
    | 7 ->
        let n = D.u32 d in
        let exports =
          List.init n (fun _ ->
              let exp_name = D.name d in
              let exp_desc =
                match D.byte d with
                | 0x00 -> Ed_func (D.u32 d)
                | 0x01 -> Ed_table (D.u32 d)
                | 0x02 -> Ed_memory (D.u32 d)
                | 0x03 -> Ed_global (D.u32 d)
                | b -> decode_error "bad export kind 0x%02x" b
              in
              { exp_name; exp_desc })
        in
        m := { !m with exports }
    | 8 -> m := { !m with start = Some (D.u32 d) }
    | 9 ->
        let n = D.u32 d in
        let elems =
          List.init n (fun _ ->
              let e_table = D.u32 d in
              let e_offset = D.expr d in
              let k = D.u32 d in
              let e_funcs = List.init k (fun _ -> D.u32 d) in
              { e_table; e_offset; e_funcs })
        in
        m := { !m with elems }
    | 10 ->
        let n = D.u32 d in
        if n <> Array.length !func_type_idxs then
          decode_error "function/code section mismatch";
        let funcs =
          Array.init n (fun i ->
              let _size = D.u32 d in
              let nruns = D.u32 d in
              let locals =
                List.concat
                  (List.init nruns (fun _ ->
                       let c = D.u32 d in
                       let t = D.val_type d in
                       List.init c (fun _ -> t)))
              in
              let body = D.expr d in
              {
                f_type = !func_type_idxs.(i);
                f_locals = locals;
                f_body = body;
                f_name = Printf.sprintf "func%d" i;
              })
        in
        m := { !m with funcs }
    | 11 ->
        let n = D.u32 d in
        let datas =
          List.init n (fun _ ->
              let d_mem = D.u32 d in
              let d_offset = D.expr d in
              let len = D.u32 d in
              let d_bytes = D.bytes d len in
              { d_mem; d_offset; d_bytes })
        in
        m := { !m with datas }
    | id -> decode_error "unknown section id %d" id);
    if d.D.pos <> stop then decode_error "section %d size mismatch" id
  done;
  !m
