(** The per-syscall write-set oracle: which guest-memory bytes may the
    kernel side of the thin interface write for a given call?

    This is the recorder's static model of `Wali.Interface.dispatch_raw`
    — for each syscall it enumerates the (addr, len) output regions from
    the handler's ABI (stat buffers, iovecs, read targets, …), clamped to
    the result where the ABI says so. Regions may over-approximate
    (e.g. `uname` records the whole 390-byte struct although only the
    six strings' prefixes change); over-approximation is harmless since
    re-applying unchanged bytes is a no-op, while *under*-approximation
    would let replayed memory drift. `brk` is the one handler whose
    write-set depends on engine state not visible in args/result, so it
    falls back to a whole-memory diff ([Whole]). *)

open Wasm

(** How a syscall is treated on replay. [Data] calls are injected from
    the log (the kernel is never consulted); [Live] calls re-execute
    through the engine because they create or destroy engine structure —
    machines, fibers, images, signal dispositions — and are validated
    against the log instead. *)
type cls = Live | Data

let classify = function
  | "fork" | "vfork" | "clone" | "execve" | "exit" | "exit_group"
  | "thread_spawn" | "rt_sigaction" ->
      Live
  | _ -> Data

(** Safepoint polls the live dispatcher performs *inside* the handler
    (interface.ml invokes [m.poll_hook] before returning from these);
    injection must replicate them so the per-machine poll counters that
    position signal deliveries stay aligned between record and replay. *)
let polls_inside = function "rt_sigprocmask" | "rt_sigsuspend" -> 1 | _ -> 0

type spec =
  | Regions of (int * int) list (* (addr, len) candidates; may overlap *)
  | Whole (* not statically enumerable: diff whole memory around the call *)

(** True when the recorder must snapshot all of linear memory before the
    call (the [Whole] fallback needs a pre-image to diff against). *)
let needs_whole = function "brk" -> true | _ -> false

let kstat_size = 112
let sigaction_size = 16

let written ~(mem : Rt.Memory.t) (name : string) (args : int64 array)
    (result : int64) : spec =
  let a i = if i < Array.length args then args.(i) else 0L in
  let ai i = Int64.to_int (a i) in
  let ap i = Int64.to_int (Int64.logand (a i) 0xFFFFFFFFL) in
  let r = Int64.to_int result in
  let ok = Int64.compare result 0L >= 0 in
  let if_ok l = if ok then Regions l else Regions [] in
  let nz p l = if p <> 0 then l else [] in
  match name with
  | "read" | "pread64" | "recvfrom" -> if_ok [ (ap 1, r) ]
  | "getrandom" -> if_ok [ (ap 0, r) ]
  | "readv" ->
      if not ok then Regions []
      else begin
        let iovs =
          try Wali.Abi.read_iovecs mem ~iov:(ap 1) ~cnt:(ai 2)
          with Wali.Abi.Efault | Rt.Memory.Bounds -> []
        in
        (* the kernel filled iovecs in order up to the returned total *)
        let rec take n = function
          | [] -> []
          | (base, len) :: rest ->
              if n <= 0 then []
              else (base, min len n) :: take (n - len) rest
        in
        Regions (take r iovs)
      end
  | "stat" | "lstat" | "fstat" -> if_ok [ (ap 1, kstat_size) ]
  | "newfstatat" -> if_ok [ (ap 2, kstat_size) ]
  | "statfs" | "fstatfs" -> if_ok [ (ap 1, 32) ]
  | "readlink" -> if_ok [ (ap 1, r) ]
  | "readlinkat" -> if_ok [ (ap 2, r) ]
  | "getcwd" -> if_ok [ (ap 0, r) ]
  | "getdents64" -> if_ok [ (ap 1, r) ]
  | "pipe" | "pipe2" -> if_ok [ (ap 0, 8) ]
  | "poll" | "ppoll" -> if_ok [ (ap 0, min (max (ai 1) 0) 4096 * 8) ]
  | "select" | "pselect6" ->
      let nbytes = (max 0 (min (ai 0) 1024) + 7) / 8 in
      if_ok (nz (ap 1) [ (ap 1, nbytes) ] @ nz (ap 2) [ (ap 2, nbytes) ])
  | "ioctl" -> if_ok (nz (ap 2) [ (ap 2, 8) ])
  | "rt_sigaction" -> if_ok (nz (ap 2) [ (ap 2, sigaction_size) ])
  | "rt_sigprocmask" -> if_ok (nz (ap 2) [ (ap 2, 8) ])
  | "rt_sigpending" -> if_ok [ (ap 0, 8) ]
  | "wait4" | "waitid" ->
      if ok && r > 0 then
        Regions (nz (ap 1) [ (ap 1, 4) ] @ nz (ap 3) [ (ap 3, 16) ])
      else Regions []
  | "getrusage" -> if_ok [ (ap 1, 40) ]
  | "times" -> if_ok (nz (ap 0) [ (ap 0, 32) ])
  | "sysinfo" -> if_ok [ (ap 0, 28) ]
  | "uname" -> if_ok [ (ap 0, 6 * 65) ]
  | "prlimit64" -> if_ok (nz (ap 3) [ (ap 3, 16) ])
  | "getrlimit" -> if_ok (nz (ap 1) [ (ap 1, 16) ])
  | "sched_getaffinity" -> if_ok [ (ap 2, 8) ]
  | "getitimer" -> if_ok [ (ap 1, 32) ]
  | "clock_gettime" -> if_ok [ (ap 1, 16) ]
  | "clock_getres" -> if_ok (nz (ap 1) [ (ap 1, 16) ])
  | "gettimeofday" -> if_ok [ (ap 0, 16) ]
  | "time" -> if_ok (nz (ap 0) [ (ap 0, 8) ])
  | "socketpair" -> if_ok [ (ap 3, 8) ]
  | "getsockopt" -> if_ok (nz (ap 3) [ (ap 3, 4) ] @ nz (ap 4) [ (ap 4, 4) ])
  | "accept" | "accept4" ->
      if ok && ap 1 <> 0 && ap 2 <> 0 then Regions [ (ap 1, 8); (ap 2, 4) ]
      else Regions []
  | "getsockname" | "getpeername" -> if_ok [ (ap 1, 8); (ap 2, 4) ]
  | "mmap" -> if_ok [ (r, Wali.Mmap_mgr.align_up (ai 1)) ]
  | "mremap" -> if_ok [ (r, Wali.Mmap_mgr.align_up (ai 2)) ]
  | "brk" -> Whole
  | _ -> Regions []
