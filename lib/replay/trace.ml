(** The versioned binary trace format for WALI record/replay.

    A trace captures everything that crosses the thin interface during
    one run: every host call (name, args, result, the bytes the kernel
    wrote into linear memory, the memory size afterwards), every virtual
    signal delivery (positioned by a per-machine safepoint-poll counter),
    and every process exit. Because the WALI boundary is the complete
    nondeterminism surface (paper §3, PAPERS.md: Wasm-R3), this log plus
    the original .wasm image is a hermetic, deterministically replayable
    artifact.

    Encoding: an 8-byte magic, a version varint, a header, then a stream
    of tagged records using LEB128 varints (zigzag for signed values)
    with syscall names interned via inline definition records, closed by
    a trailer that carries the event count and the final exit status.
    Decoding a truncated, corrupt or wrong-version stream raises
    [Corrupt] / [Bad_version] — never returns garbage. *)

(* ---- trace model ---- *)

(** Bytes the kernel wrote into guest linear memory during one call.
    [R_zeros] is the run-length form the reducer uses for zero fills
    (mmap, brk and fresh-page traffic is mostly zeros). *)
type region =
  | R_bytes of int * string (* addr, raw bytes *)
  | R_zeros of int * int (* addr, length of zero fill *)

type syscall = {
  sc_pid : int; (* machine pid = kernel task tid *)
  sc_name : string;
  sc_args : int64 array;
  sc_result : int64; (* raw kernel convention: -errno on failure *)
  sc_pages : int; (* linear memory size (pages) after the call *)
  sc_regions : region list;
}

(** A virtual signal delivery. [sg_poll] is the value of the per-machine
    counted safepoint-poll counter at the moment of delivery — replay
    re-injects the delivery when the same machine reaches the same
    counter value. [sg_status] is the packed wait status for fatal
    dispositions, [None] when a registered handler ran. *)
type signal = {
  sg_pid : int;
  sg_poll : int;
  sg_signo : int;
  sg_status : int option;
}

type exit_ev = { ex_pid : int; ex_status : int (* packed wait status *) }

type event = E_syscall of syscall | E_signal of signal | E_exit of exit_ev

type header = {
  h_app : string; (* informational: suite app name, or "" *)
  h_argv : string list;
  h_env : string list;
  h_digest : string; (* MD5 of the recorded .wasm image *)
  h_poll : string; (* safepoint scheme ("loops", …): delivery coordinates
                      only make sense under the same compiled poll sites *)
}

let poll_scheme_name : Wasm.Code.poll_scheme -> string = function
  | Wasm.Code.Poll_none -> "none"
  | Wasm.Code.Poll_loops -> "loops"
  | Wasm.Code.Poll_funcs -> "funcs"
  | Wasm.Code.Poll_every -> "every"

let poll_scheme_of_name : string -> Wasm.Code.poll_scheme option = function
  | "none" -> Some Wasm.Code.Poll_none
  | "loops" -> Some Wasm.Code.Poll_loops
  | "funcs" -> Some Wasm.Code.Poll_funcs
  | "every" -> Some Wasm.Code.Poll_every
  | _ -> None

type t = {
  tr_header : header;
  tr_events : event array;
  tr_status : int; (* packed wait status of the initial process *)
}

let magic = "WALITRC0"
let version = 1

exception Corrupt of string
exception Bad_version of int

(* ---- primitive encoders ---- *)

let put_u64 b (v : int64) =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let put_u b (n : int) =
  if n < 0 then invalid_arg "Trace.put_u: negative";
  put_u64 b (Int64.of_int n)

(* zigzag: small-magnitude negatives stay short *)
let put_i64 b (v : int64) =
  put_u64 b (Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63))

let put_i b (n : int) = put_i64 b (Int64.of_int n)

let put_str b s =
  put_u b (String.length s);
  Buffer.add_string b s

(* ---- primitive decoders ---- *)

type cursor = { src : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.src then raise (Corrupt "truncated trace")

let get_u64 c : int64 =
  let v = ref 0L and shift = ref 0 and continue = ref true in
  while !continue do
    need c 1;
    let byte = Char.code c.src.[c.pos] in
    c.pos <- c.pos + 1;
    v :=
      Int64.logor !v
        (Int64.shift_left (Int64.of_int (byte land 0x7F)) !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
    else if !shift > 63 then raise (Corrupt "overlong varint")
  done;
  !v

let get_u c : int =
  let v = get_u64 c in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Corrupt "varint out of int range");
  Int64.to_int v

let get_i64 c : int64 =
  let v = get_u64 c in
  Int64.logxor
    (Int64.shift_right_logical v 1)
    (Int64.neg (Int64.logand v 1L))

let get_i c : int = Int64.to_int (get_i64 c)

let get_str c : string =
  let n = get_u c in
  need c n;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

(* ---- record tags ---- *)

let tag_name = 0 (* intern a syscall name; ids are sequential *)
let tag_syscall = 1
let tag_signal = 2
let tag_exit = 3
let tag_trailer = 9

(* ---- encode ---- *)

let encode (t : t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_u b version;
  let h = t.tr_header in
  put_str b h.h_app;
  put_u b (List.length h.h_argv);
  List.iter (put_str b) h.h_argv;
  put_u b (List.length h.h_env);
  List.iter (put_str b) h.h_env;
  put_str b h.h_digest;
  put_str b h.h_poll;
  let names = Hashtbl.create 64 in
  let name_id n =
    match Hashtbl.find_opt names n with
    | Some id -> id
    | None ->
        let id = Hashtbl.length names in
        Hashtbl.add names n id;
        put_u b tag_name;
        put_str b n;
        id
  in
  let put_region = function
    | R_bytes (addr, s) ->
        put_u b 0;
        put_u b addr;
        put_str b s
    | R_zeros (addr, n) ->
        put_u b 1;
        put_u b addr;
        put_u b n
  in
  Array.iter
    (function
      | E_syscall sc ->
          let id = name_id sc.sc_name in
          put_u b tag_syscall;
          put_u b id;
          put_u b sc.sc_pid;
          put_u b (Array.length sc.sc_args);
          Array.iter (put_i64 b) sc.sc_args;
          put_i64 b sc.sc_result;
          put_u b sc.sc_pages;
          put_u b (List.length sc.sc_regions);
          List.iter put_region sc.sc_regions
      | E_signal sg ->
          put_u b tag_signal;
          put_u b sg.sg_pid;
          put_u b sg.sg_poll;
          put_u b sg.sg_signo;
          (match sg.sg_status with
          | None -> put_u b 0
          | Some st ->
              put_u b 1;
              put_i b st)
      | E_exit ex ->
          put_u b tag_exit;
          put_u b ex.ex_pid;
          put_i b ex.ex_status)
    t.tr_events;
  put_u b tag_trailer;
  put_u b (Array.length t.tr_events);
  put_i b t.tr_status;
  Buffer.contents b

(* ---- decode ---- *)

let decode (s : string) : t =
  let c = { src = s; pos = 0 } in
  need c (String.length magic);
  let m = String.sub s 0 (String.length magic) in
  if m <> magic then raise (Corrupt "bad magic");
  c.pos <- String.length magic;
  let v = get_u c in
  if v <> version then raise (Bad_version v);
  let h_app = get_str c in
  let get_list () = List.init (get_u c) (fun _ -> get_str c) in
  let h_argv = get_list () in
  let h_env = get_list () in
  let h_digest = get_str c in
  let h_poll = get_str c in
  let names : string array ref = ref [||] in
  let events = ref [] in
  let nevents = ref 0 in
  let finished = ref None in
  while !finished = None do
    match get_u c with
    | tag when tag = tag_name -> names := Array.append !names [| get_str c |]
    | tag when tag = tag_syscall ->
        let id = get_u c in
        if id >= Array.length !names then raise (Corrupt "undefined name id");
        let sc_name = !names.(id) in
        let sc_pid = get_u c in
        let nargs = get_u c in
        if nargs > 16 then raise (Corrupt "implausible arg count");
        let sc_args = Array.init nargs (fun _ -> get_i64 c) in
        let sc_result = get_i64 c in
        let sc_pages = get_u c in
        let nregions = get_u c in
        let sc_regions =
          List.init nregions (fun _ ->
              match get_u c with
              | 0 ->
                  let addr = get_u c in
                  R_bytes (addr, get_str c)
              | 1 ->
                  let addr = get_u c in
                  R_zeros (addr, get_u c)
              | k -> raise (Corrupt (Printf.sprintf "bad region kind %d" k)))
        in
        events :=
          E_syscall { sc_pid; sc_name; sc_args; sc_result; sc_pages; sc_regions }
          :: !events;
        incr nevents
    | tag when tag = tag_signal ->
        let sg_pid = get_u c in
        let sg_poll = get_u c in
        let sg_signo = get_u c in
        let sg_status =
          match get_u c with
          | 0 -> None
          | 1 -> Some (get_i c)
          | k -> raise (Corrupt (Printf.sprintf "bad signal status tag %d" k))
        in
        events := E_signal { sg_pid; sg_poll; sg_signo; sg_status } :: !events;
        incr nevents
    | tag when tag = tag_exit ->
        let ex_pid = get_u c in
        let ex_status = get_i c in
        events := E_exit { ex_pid; ex_status } :: !events;
        incr nevents
    | tag when tag = tag_trailer ->
        let count = get_u c in
        if count <> !nevents then raise (Corrupt "trailer event count mismatch");
        finished := Some (get_i c)
    | tag -> raise (Corrupt (Printf.sprintf "unknown record tag %d" tag))
  done;
  if c.pos <> String.length s then raise (Corrupt "trailing bytes after trailer");
  let tr_status = Option.get !finished in
  {
    tr_header = { h_app; h_argv; h_env; h_digest; h_poll };
    tr_events = Array.of_list (List.rev !events);
    tr_status;
  }

(* ---- file helpers ---- *)

let save (file : string) (t : t) : unit =
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (encode t))

let load (file : string) : t =
  decode (In_channel.with_open_bin file In_channel.input_all)

(* ---- pretty-printing (for divergence reports and `walireplay report`) *)

let region_len = function
  | R_bytes (_, s) -> String.length s
  | R_zeros (_, n) -> n

let region_addr = function R_bytes (a, _) -> a | R_zeros (a, _) -> a

let pp_args (args : int64 array) : string =
  String.concat ", " (Array.to_list (Array.map Int64.to_string args))

let pp_event = function
  | E_syscall sc ->
      Printf.sprintf "[pid %d] %s(%s) = %Ld (%d region%s, %d bytes)" sc.sc_pid
        sc.sc_name (pp_args sc.sc_args) sc.sc_result
        (List.length sc.sc_regions)
        (if List.length sc.sc_regions = 1 then "" else "s")
        (List.fold_left (fun a r -> a + region_len r) 0 sc.sc_regions)
  | E_signal sg ->
      Printf.sprintf "[pid %d] signal %d at safepoint %d%s" sg.sg_pid
        sg.sg_signo sg.sg_poll
        (match sg.sg_status with
        | None -> " (handler)"
        | Some st -> Printf.sprintf " (fatal, status 0x%x)" st)
  | E_exit ex -> Printf.sprintf "[pid %d] exit, status 0x%x" ex.ex_pid ex.ex_status
