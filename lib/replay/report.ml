(** Trace inspection: the data behind `walireplay report`.

    Summarizes a trace per syscall — calls, error returns, recorded
    kernel-write bytes — in the same deterministic order as
    [Wali.Strace.profile] (count descending, then name), plus the
    nondeterminism events (signal deliveries, exits). *)

type row = {
  rw_name : string;
  rw_calls : int;
  rw_errors : int;
  rw_bytes : int; (* recorded kernel-written region bytes *)
}

type summary = {
  sm_rows : row list;
  sm_records : int;
  sm_calls : int;
  sm_errors : int;
  sm_bytes : int;
  sm_signals : int;
  sm_exits : int;
  sm_pids : int;
}

let summarize (t : Trace.t) : summary =
  let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 64 in
  let pids = Hashtbl.create 8 in
  let signals = ref 0 and exits = ref 0 in
  Array.iter
    (fun ev ->
      match ev with
      | Trace.E_syscall sc ->
          Hashtbl.replace pids sc.Trace.sc_pid ();
          let r =
            match Hashtbl.find_opt tbl sc.Trace.sc_name with
            | Some r -> r
            | None ->
                let r =
                  ref
                    {
                      rw_name = sc.Trace.sc_name;
                      rw_calls = 0;
                      rw_errors = 0;
                      rw_bytes = 0;
                    }
                in
                Hashtbl.add tbl sc.Trace.sc_name r;
                r
          in
          let err = if Int64.compare sc.Trace.sc_result 0L < 0 then 1 else 0 in
          let bytes =
            List.fold_left (fun a rg -> a + Trace.region_len rg) 0
              sc.Trace.sc_regions
          in
          r :=
            {
              !r with
              rw_calls = !r.rw_calls + 1;
              rw_errors = !r.rw_errors + err;
              rw_bytes = !r.rw_bytes + bytes;
            }
      | Trace.E_signal sg ->
          Hashtbl.replace pids sg.Trace.sg_pid ();
          incr signals
      | Trace.E_exit ex ->
          Hashtbl.replace pids ex.Trace.ex_pid ();
          incr exits)
    t.Trace.tr_events;
  let rows =
    Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
    |> List.sort (fun a b ->
           match compare b.rw_calls a.rw_calls with
           | 0 -> compare a.rw_name b.rw_name
           | c -> c)
  in
  {
    sm_rows = rows;
    sm_records = Array.length t.Trace.tr_events;
    sm_calls = List.fold_left (fun a r -> a + r.rw_calls) 0 rows;
    sm_errors = List.fold_left (fun a r -> a + r.rw_errors) 0 rows;
    sm_bytes = List.fold_left (fun a r -> a + r.rw_bytes) 0 rows;
    sm_signals = !signals;
    sm_exits = !exits;
    sm_pids = Hashtbl.length pids;
  }

let print (t : Trace.t) : unit =
  let h = t.Trace.tr_header in
  let s = summarize t in
  Printf.printf "trace: app=%s argv=[%s] poll=%s digest=%s\n"
    (if h.Trace.h_app = "" then "-" else h.Trace.h_app)
    (String.concat " " h.Trace.h_argv)
    h.Trace.h_poll
    (Digest.to_hex h.Trace.h_digest);
  Printf.printf
    "%d records: %d syscalls (%d errors, %d kernel-written bytes), %d signal \
     deliveries, %d exits across %d pids; final status 0x%x\n"
    s.sm_records s.sm_calls s.sm_errors s.sm_bytes s.sm_signals s.sm_exits
    s.sm_pids t.Trace.tr_status;
  Printf.printf "%-18s %8s %8s %10s\n" "syscall" "calls" "errors" "bytes";
  List.iter
    (fun r ->
      Printf.printf "%-18s %8d %8d %10d\n" r.rw_name r.rw_calls r.rw_errors
        r.rw_bytes)
    s.sm_rows
