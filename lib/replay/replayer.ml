(** The replayer: re-runs a module with the simulated kernel swapped out
    for the trace log.

    Data-class syscalls are injected — result and kernel-written memory
    bytes come straight from the log and the kernel is never consulted.
    Live-class calls (fork/exec/exit/thread_spawn/rt_sigaction) re-execute
    through the engine, because they create real engine structure, and
    their outcomes are validated against the log. The recorded global
    event order doubles as the scheduler oracle: a fiber whose next
    action is not the globally-next record spin-yields until it is, which
    forces the recorded interleaving; a bounded stall counter turns any
    impossible schedule into a divergence instead of a livelock. Signal
    deliveries are re-injected when a machine's counted safepoint-poll
    counter reaches the recorded coordinate.

    The first mismatch — name, args, result, memory delta, exit status,
    ordering — aborts the run and is reported with the event index and a
    readable expected/actual diff. *)

open Wasm
open Wali

type divergence = {
  d_index : int; (* event index in the trace (-1: pre-run check) *)
  d_pid : int;
  d_kind : string; (* "name" | "args" | "result" | "memory" | ... *)
  d_expected : string;
  d_actual : string;
}

exception Diverged of divergence

let pp_divergence (d : divergence) : string =
  Printf.sprintf
    "divergence at record #%d (pid %d): %s mismatch\n  expected: %s\n  actual:   %s"
    d.d_index d.d_pid d.d_kind d.d_expected d.d_actual

type outcome = {
  rp_status : int; (* replayed init exit status (packed) *)
  rp_consumed : int;
  rp_total : int;
  rp_divergence : divergence option;
  rp_errors : int; (* error returns seen during replay (Strace) *)
}

let converged (o : outcome) = o.rp_divergence = None

(* How many consecutive scheduler yields without global-cursor progress
   before we call the replay stalled. Generous: every blocked fiber
   burns one per scheduler round-trip while others make real progress. *)
let stall_limit = 200_000

type state = {
  st_trace : Trace.t;
  mutable st_cursor : int; (* next event index to consume *)
  st_queues : (int, int Queue.t) Hashtbl.t; (* pid -> its event indices *)
  st_polls : (int, int ref) Hashtbl.t; (* pid -> safepoint-poll counter *)
  mutable st_stall : int;
  mutable st_div : divergence option;
}

let make (trace : Trace.t) : state =
  let queues = Hashtbl.create 8 in
  Array.iteri
    (fun i ev ->
      let pid =
        match ev with
        | Trace.E_syscall sc -> sc.Trace.sc_pid
        | Trace.E_signal sg -> sg.Trace.sg_pid
        | Trace.E_exit ex -> ex.Trace.ex_pid
      in
      let q =
        match Hashtbl.find_opt queues pid with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add queues pid q;
            q
      in
      Queue.push i q)
    trace.Trace.tr_events;
  {
    st_trace = trace;
    st_cursor = 0;
    st_queues = queues;
    st_polls = Hashtbl.create 8;
    st_stall = 0;
    st_div = None;
  }

let queue st pid =
  match Hashtbl.find_opt st.st_queues pid with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add st.st_queues pid q;
      q

let counter st pid =
  match Hashtbl.find_opt st.st_polls pid with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add st.st_polls pid r;
      r

let diverge st ~index ~pid ~kind ~expected ~actual : 'a =
  let d =
    { d_index = index; d_pid = pid; d_kind = kind; d_expected = expected;
      d_actual = actual }
  in
  if st.st_div = None then st.st_div <- Some d;
  raise (Diverged d)

let fmt_call name (args : int64 array) =
  Printf.sprintf "%s(%s)" name (Trace.pp_args args)

(* Wait until pid's next recorded event is the globally-next one,
   yielding to let the fibers that own the intervening records run. *)
let rec wait_turn st pid ~(doing : string) : Trace.event * int =
  match Queue.peek_opt (queue st pid) with
  | None ->
      diverge st ~index:(Array.length st.st_trace.Trace.tr_events) ~pid
        ~kind:"extra event" ~expected:"no more events for this pid"
        ~actual:doing
  | Some i when i = st.st_cursor -> (st.st_trace.Trace.tr_events.(i), i)
  | Some i ->
      st.st_stall <- st.st_stall + 1;
      if st.st_stall > stall_limit then
        diverge st ~index:st.st_cursor ~pid ~kind:"schedule"
          ~expected:
            (Printf.sprintf "globally-next record %s"
               (Trace.pp_event st.st_trace.Trace.tr_events.(st.st_cursor)))
          ~actual:
            (Printf.sprintf "stalled at %s (pid's next record is #%d)" doing i);
      Fiber.yield ();
      wait_turn st pid ~doing

let consume st pid =
  let q = queue st pid in
  (match Queue.take_opt q with
  | Some i -> assert (i = st.st_cursor)
  | None -> assert false);
  st.st_cursor <- st.st_cursor + 1;
  st.st_stall <- 0

let arg_i64 = Recorder.arg_i64

let hex (s : string) =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.of_seq (String.to_seq s))))

(* Replay-side memory handling for an injected record: grow to the
   recorded size, then apply the recorded kernel writes. *)
let apply_regions st (mem : Rt.Memory.t) (r : Trace.syscall) (idx : int) =
  let size = Rt.Memory.size_bytes mem in
  List.iter
    (fun region ->
      let addr = Trace.region_addr region in
      let len = Trace.region_len region in
      if addr < 0 || len < 0 || addr + len > size then
        diverge st ~index:idx ~pid:r.Trace.sc_pid ~kind:"memory"
          ~expected:(Printf.sprintf "region [%d, +%d) within %d-byte memory" addr len size)
          ~actual:"region out of bounds on replay"
      else
        match region with
        | Trace.R_bytes (_, s) ->
            Bytes.blit_string s 0 mem.Rt.Memory.data addr (String.length s)
        | Trace.R_zeros (_, n) -> Bytes.fill mem.Rt.Memory.data addr n '\000')
    r.Trace.sc_regions

(* For live-class calls the kernel wrote memory itself; check it matches
   the recording and report the delta when it does not. *)
let validate_regions st (mem : Rt.Memory.t) (r : Trace.syscall) (idx : int) =
  let size = Rt.Memory.size_bytes mem in
  List.iter
    (fun region ->
      let addr = Trace.region_addr region in
      let len = Trace.region_len region in
      if addr >= 0 && len > 0 && addr + len <= size then begin
        let actual = Bytes.sub_string mem.Rt.Memory.data addr len in
        let expected =
          match region with
          | Trace.R_bytes (_, s) -> s
          | Trace.R_zeros (_, n) -> String.make n '\000'
        in
        if actual <> expected then
          diverge st ~index:idx ~pid:r.Trace.sc_pid ~kind:"memory"
            ~expected:
              (Printf.sprintf "%s wrote [%d, +%d) = %s" r.Trace.sc_name addr
                 len (hex expected))
            ~actual:(Printf.sprintf "[%d, +%d) = %s" addr len (hex actual))
      end)
    r.Trace.sc_regions

let rec inject_signals st eng (p : Engine.proc) (m : Rt.machine) =
  let pid = m.Rt.m_pid in
  let c = counter st pid in
  match Queue.peek_opt (queue st pid) with
  | Some i -> (
      match st.st_trace.Trace.tr_events.(i) with
      | Trace.E_signal sg ->
          if sg.Trace.sg_poll < !c then
            diverge st ~index:i ~pid ~kind:"signal"
              ~expected:
                (Printf.sprintf "delivery of signal %d at safepoint %d"
                   sg.Trace.sg_signo sg.Trace.sg_poll)
              ~actual:
                (Printf.sprintf "safepoint %d already passed without it" !c)
          else if sg.Trace.sg_poll = !c then begin
            (* ordering: other pids' earlier records must land first *)
            while st.st_cursor < i do
              st.st_stall <- st.st_stall + 1;
              if st.st_stall > stall_limit then
                diverge st ~index:st.st_cursor ~pid ~kind:"schedule"
                  ~expected:
                    (Printf.sprintf "globally-next record %s"
                       (Trace.pp_event
                          st.st_trace.Trace.tr_events.(st.st_cursor)))
                  ~actual:
                    (Printf.sprintf
                       "stalled delivering signal %d to pid %d (record #%d)"
                       sg.Trace.sg_signo pid i);
              Fiber.yield ()
            done;
            consume st pid;
            match sg.Trace.sg_status with
            | Some status -> raise (Engine.Killed_by status)
            | None ->
                let signo = sg.Trace.sg_signo in
                let actions =
                  p.Engine.pr_task.Kernel.Task.group.Kernel.Task.actions
                in
                let action =
                  if signo >= 0 && signo < Array.length actions then
                    actions.(signo)
                  else Kernel.Ktypes.sigaction_default
                in
                if
                  action.Kernel.Ktypes.sa_handler = Kernel.Ktypes.sig_dfl
                  || action.Kernel.Ktypes.sa_handler = Kernel.Ktypes.sig_ign
                then
                  diverge st ~index:i ~pid ~kind:"signal"
                    ~expected:
                      (Printf.sprintf
                         "a handler registered for signal %d (recorded run ran one)"
                         signo)
                    ~actual:"no handler registered at this point on replay"
                else begin
                  Engine.run_signal_handler eng p m ~signo ~action;
                  (* further deliveries may be recorded at this same
                     safepoint (or the handler's own polls advanced c) *)
                  inject_signals st eng p m
                end
          end
      | _ -> ())
  | None -> ()

let ip_poll st eng (p : Engine.proc) (m : Rt.machine) =
  incr (counter st m.Rt.m_pid);
  inject_signals st eng p m

let ip_dispatch st _eng (_p : Engine.proc) name (m : Rt.machine) args live =
  let pid = m.Rt.m_pid in
  let argv = Array.map arg_i64 args in
  let doing = fmt_call name argv in
  let ev, idx = wait_turn st pid ~doing in
  match ev with
  | Trace.E_exit ex ->
      (* the recorded run died at this point (seccomp kill, fatal trap)
         without completing the call; reproduce the death. The exit
         record itself is consumed and validated in on_proc_exit. *)
      raise (Engine.Killed_by ex.Trace.ex_status)
  | Trace.E_signal sg ->
      diverge st ~index:idx ~pid ~kind:"signal"
        ~expected:
          (Printf.sprintf "delivery of signal %d at safepoint %d"
             sg.Trace.sg_signo sg.Trace.sg_poll)
        ~actual:(Printf.sprintf "syscall entry %s" doing)
  | Trace.E_syscall r ->
      if r.Trace.sc_name <> name then
        diverge st ~index:idx ~pid ~kind:"name"
          ~expected:(fmt_call r.Trace.sc_name r.Trace.sc_args)
          ~actual:doing;
      if r.Trace.sc_args <> argv then
        diverge st ~index:idx ~pid ~kind:"args"
          ~expected:(fmt_call r.Trace.sc_name r.Trace.sc_args)
          ~actual:doing;
      consume st pid;
      let check_result (actual : int64) =
        if actual <> r.Trace.sc_result then
          diverge st ~index:idx ~pid ~kind:"result"
            ~expected:(Printf.sprintf "%s = %Ld" doing r.Trace.sc_result)
            ~actual:(Printf.sprintf "%s = %Ld" doing actual)
      in
      if Writeset.classify name = Writeset.Live then begin
        match live () with
        | Rt.H_return [ Values.I64 v ] as o ->
            check_result v;
            validate_regions st (Rt.memory0 m) r idx;
            o
        | Rt.H_return [ Values.I32 v ] as o ->
            check_result (Int64.of_int32 v);
            o
        | Rt.H_return _ as o -> o
        | Rt.H_exit code as o ->
            check_result (Int64.of_int code);
            o
        | Rt.H_exec mk ->
            check_result 0L;
            Rt.H_exec mk
        | Rt.H_trap _ as o -> o
        | Rt.H_fork cb ->
            Rt.H_fork
              (fun child ->
                let v = cb child in
                check_result v;
                v)
      end
      else begin
        (* inject: the kernel is not consulted *)
        let mem = Rt.memory0 m in
        let cur = Rt.Memory.size_pages mem in
        if r.Trace.sc_pages > cur then
          ignore (Rt.Memory.grow mem (r.Trace.sc_pages - cur));
        apply_regions st mem r idx;
        (* replicate the safepoint polls the live handler performs
           internally, so delivery coordinates stay aligned *)
        for _ = 1 to Writeset.polls_inside name do
          match m.Rt.poll_hook with Some f -> f m | None -> ()
        done;
        Rt.H_return [ Values.I64 r.Trace.sc_result ]
      end

(* Validate a process exit against its recorded exit event. *)
let on_exit st (q : Engine.proc) (status : int) =
  let pid = q.Engine.pr_task.Kernel.Task.tid in
  let doing = Printf.sprintf "exit with status 0x%x" status in
  let ev, idx = wait_turn st pid ~doing in
  match ev with
  | Trace.E_exit ex ->
      if ex.Trace.ex_status <> status then
        diverge st ~index:idx ~pid ~kind:"exit status"
          ~expected:(Printf.sprintf "exit with status 0x%x" ex.Trace.ex_status)
          ~actual:doing;
      consume st pid
  | other ->
      diverge st ~index:idx ~pid ~kind:"exit"
        ~expected:(Trace.pp_event other) ~actual:doing

let interposer (st : state) : Engine.interposer =
  {
    Engine.ip_dispatch = (fun eng p name m args live ->
        ip_dispatch st eng p name m args live);
    ip_poll = (fun eng p m -> ip_poll st eng p m);
    ip_signal = (fun _ _ _ ~signo:_ ~status:_ -> ());
    ip_virtual_signals = true;
  }

(** Replay [trace] against [binary]. [setup] re-creates the boot-time
    VFS environment (needed only when the recorded run execve'd binaries
    out of the VFS). The digest check refuses a binary other than the
    recorded one unless [check_digest:false]. *)
let replay ?(setup = fun (_ : Kernel.Task.kernel) -> ())
    ?(check_digest = true) ?(fuse = true) ?observe ~(trace : Trace.t)
    ~(binary : string) () : outcome =
  let total = Array.length trace.Trace.tr_events in
  let digest = Digest.string binary in
  if check_digest && digest <> trace.Trace.tr_header.Trace.h_digest then
    {
      rp_status = 0;
      rp_consumed = 0;
      rp_total = total;
      rp_divergence =
        Some
          {
            d_index = -1;
            d_pid = 0;
            d_kind = "binary digest";
            d_expected = Digest.to_hex trace.Trace.tr_header.Trace.h_digest;
            d_actual = Digest.to_hex digest;
          };
      rp_errors = 0;
    }
  else begin
    let st = make trace in
    let kernel = Kernel.Task.boot () in
    setup kernel;
    (* When a sink is observing the replay, aggregate syscalls straight
       into its registry: the regenerated metrics/trace/profile then come
       from the recorded outcomes, not a live kernel. *)
    let strace =
      match observe with
      | Some o -> Strace.of_metrics (Observe.Sink.metrics o)
      | None -> Strace.create ()
    in
    let poll_scheme =
      match Trace.poll_scheme_of_name trace.Trace.tr_header.Trace.h_poll with
      | Some s -> s
      | None -> Code.Poll_loops
    in
    let eng = Engine.create ~poll_scheme ~fuse ~trace:strace ?observe kernel in
    eng.Engine.interpose <- Some (interposer st);
    let status = ref 0 in
    (match observe with Some o -> Observe.Sink.attach o | None -> ());
    (try
       Fun.protect
         ~finally:(fun () ->
           match observe with Some o -> Observe.Sink.detach o | None -> ())
         (fun () ->
           Fiber.run (fun () ->
               let p =
                 Interface.spawn_init eng ~binary
                   ~argv:trace.Trace.tr_header.Trace.h_argv
                   ~env:trace.Trace.tr_header.Trace.h_env
               in
               eng.Engine.on_proc_exit <-
                 Some
                   (fun q st_exit ->
                     on_exit st q st_exit;
                     if q == p then status := st_exit)))
     with
    | Diverged _ -> () (* first divergence already captured in st *)
    | Fiber.Deadlock names ->
        if st.st_div = None then
          st.st_div <-
            Some
              {
                d_index = st.st_cursor;
                d_pid = 0;
                d_kind = "schedule";
                d_expected =
                  (if st.st_cursor < total then
                     Trace.pp_event trace.Trace.tr_events.(st.st_cursor)
                   else "run completion");
                d_actual =
                  "scheduler deadlock (suspended: "
                  ^ String.concat ", " names ^ ")";
              });
    if st.st_div = None && st.st_cursor < total then
      st.st_div <-
        Some
          {
            d_index = st.st_cursor;
            d_pid = 0;
            d_kind = "coverage";
            d_expected = Trace.pp_event trace.Trace.tr_events.(st.st_cursor);
            d_actual =
              Printf.sprintf "replay finished after %d of %d records"
                st.st_cursor total;
          };
    if st.st_div = None && !status <> trace.Trace.tr_status then
      st.st_div <-
        Some
          {
            d_index = total;
            d_pid = 0;
            d_kind = "final status";
            d_expected = Printf.sprintf "0x%x" trace.Trace.tr_status;
            d_actual = Printf.sprintf "0x%x" !status;
          };
    {
      rp_status = !status;
      rp_consumed = st.st_cursor;
      rp_total = total;
      rp_divergence = st.st_div;
      rp_errors = Strace.total_errors strace;
    }
  end
