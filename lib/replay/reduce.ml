(** Trace reduction.

    Every record in a trace is load-bearing for replay — the ordering
    validator consumes each one — so the reducer shrinks the *encoding*,
    not the event count: raw memory regions are rewritten with zero runs
    compressed into [R_zeros] run-length records (mmap/brk zero fills and
    sparse poll/select bitmaps dominate raw traces), and zero-length
    regions are dropped.

    For divergence minimization there is also [truncate], which keeps
    only the first [n] events: replaying a truncated trace stops (with a
    coverage divergence) right after the interesting prefix, which is the
    standard way to bisect a long trace down to the record that first
    goes wrong. *)

(* Zero runs shorter than this stay raw: an R_zeros record costs a few
   varint bytes, so tiny runs are not worth splitting a region over. *)
let min_zero_run = 16

let split_region (addr : int) (s : string) : Trace.region list =
  let n = String.length s in
  let out = ref [] in
  let flush_raw lo hi =
    if hi > lo then out := Trace.R_bytes (addr + lo, String.sub s lo (hi - lo)) :: !out
  in
  let i = ref 0 and raw_start = ref 0 in
  while !i < n do
    if s.[!i] = '\000' then begin
      let z = ref !i in
      while !z < n && s.[!z] = '\000' do incr z done;
      if !z - !i >= min_zero_run then begin
        flush_raw !raw_start !i;
        out := Trace.R_zeros (addr + !i, !z - !i) :: !out;
        raw_start := !z
      end;
      i := !z
    end
    else incr i
  done;
  flush_raw !raw_start n;
  List.rev !out

let reduce_region = function
  | Trace.R_bytes (_, "") -> []
  | Trace.R_bytes (addr, s) -> split_region addr s
  | Trace.R_zeros (_, 0) -> []
  | Trace.R_zeros _ as r -> [ r ]

let reduce_event = function
  | Trace.E_syscall sc ->
      Trace.E_syscall
        {
          sc with
          Trace.sc_regions =
            List.concat_map reduce_region sc.Trace.sc_regions;
        }
  | ev -> ev

(** Semantics-preserving shrink: replaying the reduced trace applies the
    exact same bytes. *)
let reduce (t : Trace.t) : Trace.t =
  { t with Trace.tr_events = Array.map reduce_event t.Trace.tr_events }

(** Keep only the first [n] events (for divergence bisection). *)
let truncate (t : Trace.t) ~(n : int) : Trace.t =
  let n = max 0 (min n (Array.length t.Trace.tr_events)) in
  { t with Trace.tr_events = Array.sub t.Trace.tr_events 0 n }

let byte_size (t : Trace.t) : int = String.length (Trace.encode t)
