(** The recorder: runs a WALI program with an [Engine.interposer] that
    logs every host call, signal delivery and process exit into a
    {!Trace.t}.

    The recorder is a pure observer — every call still executes live
    against the simulated kernel, and the guest sees identical behavior.
    For each call it captures the result plus the guest-memory bytes the
    kernel wrote (per the {!Writeset} oracle, or a whole-memory diff for
    the few calls the oracle cannot enumerate), and the linear-memory
    size afterwards so replay can mirror growth. Signal deliveries are
    logged with the per-machine safepoint-poll counter value, which is
    the replay-stable coordinate for re-injection. *)

open Wasm
open Wali

type t = {
  mutable rc_events : Trace.event list; (* reversed *)
  rc_polls : (int, int ref) Hashtbl.t; (* pid -> counted safepoint polls *)
}

let make () = { rc_events = []; rc_polls = Hashtbl.create 8 }

let emit rc ev = rc.rc_events <- ev :: rc.rc_events

let counter rc pid =
  match Hashtbl.find_opt rc.rc_polls pid with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add rc.rc_polls pid r;
      r

(* thread_spawn args arrive as i32s; everything else is i64. *)
let arg_i64 (v : Values.value) : int64 =
  match v with
  | Values.I64 x -> x
  | Values.I32 x -> Int64.of_int32 x
  | _ -> 0L

(* Extract the recorded bytes for the oracle's (addr, len) regions,
   clamped to the current memory bounds. *)
let capture_regions (mem : Rt.Memory.t) (spans : (int * int) list) :
    Trace.region list =
  let size = Rt.Memory.size_bytes mem in
  List.filter_map
    (fun (addr, len) ->
      if addr < 0 || len <= 0 || addr >= size then None
      else
        let len = min len (size - addr) in
        Some (Trace.R_bytes (addr, Bytes.sub_string mem.Rt.Memory.data addr len)))
    spans

(* Whole-memory diff for syscalls whose write-set is not statically
   enumerable (brk). The pre-image is zero-extended if memory grew.
   Nearby changed spans (gap <= 32 bytes) merge into one region. *)
let diff_regions ~(pre : Bytes.t) ~(post : Bytes.t) : Trace.region list =
  let n = Bytes.length post in
  let pre_at i = if i < Bytes.length pre then Bytes.get pre i else '\000' in
  let spans = ref [] in
  let start = ref (-1) and last = ref (-1) in
  for i = 0 to n - 1 do
    if Bytes.get post i <> pre_at i then begin
      if !start < 0 then start := i
      else if i - !last > 32 then begin
        spans := (!start, !last - !start + 1) :: !spans;
        start := i
      end;
      last := i
    end
  done;
  if !start >= 0 then spans := (!start, !last - !start + 1) :: !spans;
  List.rev_map
    (fun (a, len) -> Trace.R_bytes (a, Bytes.sub_string post a len))
    !spans

let interposer (rc : t) : Engine.interposer =
  let ip_dispatch _eng _p name (m : Rt.machine) args live =
    let mem = Rt.memory0 m in
    let argv = Array.map arg_i64 args in
    let pre_whole =
      if Writeset.needs_whole name then Some (Bytes.copy mem.Rt.Memory.data)
      else None
    in
    let emit_call (result : int64) =
      let regions =
        match pre_whole with
        | Some pre -> diff_regions ~pre ~post:mem.Rt.Memory.data
        | None -> (
            match Writeset.written ~mem name argv result with
            | Writeset.Regions spans -> capture_regions mem spans
            | Writeset.Whole -> diff_regions ~pre:Bytes.empty ~post:mem.Rt.Memory.data)
      in
      emit rc
        (Trace.E_syscall
           {
             Trace.sc_pid = m.Rt.m_pid;
             sc_name = name;
             sc_args = argv;
             sc_result = result;
             sc_pages = Rt.Memory.size_pages mem;
             sc_regions = regions;
           })
    in
    let outcome = live () in
    match outcome with
    | Rt.H_return [ Values.I64 r ] ->
        emit_call r;
        outcome
    | Rt.H_return [ Values.I32 r ] ->
        emit_call (Int64.of_int32 r);
        outcome
    | Rt.H_return _ ->
        emit_call 0L;
        outcome
    | Rt.H_exit code ->
        emit_call (Int64.of_int code);
        outcome
    | Rt.H_exec mk ->
        emit_call 0L;
        Rt.H_exec mk
    | Rt.H_trap _ ->
        emit_call 0L;
        outcome
    | Rt.H_fork cb ->
        (* the record is written when the engine loop registers the
           child — after the clone, before either side resumes — so it
           precedes both sides' subsequent calls in the global order *)
        Rt.H_fork
          (fun child ->
            let pid = cb child in
            emit_call pid;
            pid)
  in
  {
    Engine.ip_dispatch;
    ip_poll = (fun _ _ m -> incr (counter rc m.Rt.m_pid));
    ip_signal =
      (fun _ _ m ~signo ~status ->
        emit rc
          (Trace.E_signal
             {
               Trace.sg_pid = m.Rt.m_pid;
               sg_poll = !(counter rc m.Rt.m_pid);
               sg_signo = signo;
               sg_status = status;
             }));
    ip_virtual_signals = false;
  }

type run = {
  r_trace : Trace.t;
  r_status : int; (* packed wait status of the initial process *)
  r_output : string; (* console output of the recorded run *)
  r_result : Interp.run_result option;
}

(** Record one program run. Mirrors [Interface.run_program], with the
    engine's exit notification shared between status capture and exit
    logging (the engine has a single [on_proc_exit] slot). *)
let record ?(app = "") ?(poll_scheme = Code.Poll_loops) ?(fuse = true) ?strace
    ?policy ?(kernel : Kernel.Task.kernel option) ?observe ~(binary : string)
    ~(argv : string list) ~(env : string list) () : run =
  let kernel = match kernel with Some k -> k | None -> Kernel.Task.boot () in
  let strace = match strace with Some t -> t | None -> Strace.create () in
  let policy = match policy with Some p -> p | None -> Seccomp.allow_all () in
  (* The sink rides in the engine's dedicated observe slot, so recording
     (which owns the single interposer slot) and observability compose. *)
  let eng =
    Engine.create ~poll_scheme ~fuse ~trace:strace ~policy ?observe kernel
  in
  let rc = make () in
  eng.Engine.interpose <- Some (interposer rc);
  let status = ref 0 in
  let result = ref None in
  (match observe with Some o -> Observe.Sink.attach o | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match observe with Some o -> Observe.Sink.detach o | None -> ())
    (fun () ->
      Fiber.run (fun () ->
          let p = Interface.spawn_init eng ~binary ~argv ~env in
          eng.Engine.on_proc_exit <-
            Some
              (fun q st ->
                emit rc
                  (Trace.E_exit
                     {
                       Trace.ex_pid = q.Engine.pr_task.Kernel.Task.tid;
                       ex_status = st;
                     });
                if q == p then begin
                  status := st;
                  result := q.Engine.pr_result
                end)));
  let trace =
    {
      Trace.tr_header =
        {
          Trace.h_app = app;
          h_argv = argv;
          h_env = env;
          h_digest = Digest.string binary;
          h_poll = Trace.poll_scheme_name poll_scheme;
        };
      tr_events = Array.of_list (List.rev rc.rc_events);
      tr_status = !status;
    }
  in
  {
    r_trace = trace;
    r_status = !status;
    r_output = Kernel.Task.console_output kernel;
    r_result = !result;
  }
