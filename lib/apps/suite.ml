(** The application suite: Table 1 rows, Fig 2 profile workloads and the
    Fig 8 benchmark inputs, with the porting analysis over API feature
    sets. *)

type app = {
  a_name : string;
  a_paper_name : string; (* the Table 1 codebase it stands in for *)
  a_description : string;
  a_source : string;
  a_argv : string list; (* profiling/test invocation *)
  a_stdin : string; (* fed to the console before the run *)
  a_setup : Kernel.Task.kernel -> unit; (* files the app expects *)
  a_expect : string list; (* substrings the output must contain *)
}

let no_setup (_ : Kernel.Task.kernel) = ()

let all : app list =
  [
    {
      a_name = "minish";
      a_paper_name = "bash";
      a_description = "POSIX-ish shell: fork/exec/pipes/signals";
      a_source = App_minish.source;
      a_argv =
        [ "minish"; "-c";
          "echo hello world;loop 2000;write /tmp/f.txt data;cat /tmp/f.txt;echo;pwd;kill-self;echo one two | upcase;sub echo in subshell;status" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "hello world"; "caught SIGINT"; "ONE TWO"; "in subshell" ];
    };
    {
      a_name = "calc";
      a_paper_name = "lua";
      a_description = "scripting-language interpreter (alloc-heavy)";
      a_source = App_calc.source;
      a_argv = [ "calc"; "-e"; "i = 0; s = 0; while i < 50 do s = s + i*i; i = i + 1 end; print s; print >s" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "40425" ];
    };
    {
      a_name = "minidb";
      a_paper_name = "sqlite";
      a_description = "embedded KV database over mmap/mremap/pread";
      a_source = App_minidb.source;
      a_argv = [ "minidb"; "bench"; "150" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "rows=150" ];
    };
    {
      a_name = "kvd";
      a_paper_name = "memcached";
      a_description = "network KV daemon: sockets + mmap slab";
      a_source = App_kvd.source;
      a_argv = [ "kvd"; "bench"; "40" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "kvd: ready"; "ops=80 hits=40"; "kvd: bye" ];
    };
    {
      a_name = "sshd-lite";
      a_paper_name = "openssh";
      a_description = "login daemon: users/sessions/privilege drop";
      a_source = App_misc.sshd;
      a_argv = [ "sshd-lite"; "user" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "session: user=user uid=1000" ];
    };
    {
      a_name = "mk";
      a_paper_name = "make";
      a_description = "build tool: stat mtimes + fork/wait4";
      a_source = App_misc.mk;
      a_argv = [ "mk"; "/tmp/Makefile" ];
      a_stdin = "";
      a_setup =
        (fun k ->
          Kernel.Vfs.write_file k.Kernel.Task.fs "/tmp/Makefile"
            "/tmp/out1:/tmp/dep1:rule-one\n/tmp/out2:/tmp/dep2:rule-two\n";
          Kernel.Vfs.write_file k.Kernel.Task.fs "/tmp/dep1" "d1";
          Kernel.Vfs.write_file k.Kernel.Task.fs "/tmp/dep2" "d2");
      a_expect = [ "built /tmp/out1"; "built 2 of 2" ];
    };
    {
      a_name = "edlite";
      a_paper_name = "vim";
      a_description = "editor: mmap'ed buffer, mremap growth, ioctl";
      a_source = App_misc.edlite;
      a_argv = [ "edlite" ];
      a_stdin = "ahello editor\naline two\np\nw/tmp/ed.out\nq\n";
      a_setup = no_setup;
      a_expect = [ "term 80x24"; "hello editor"; "wrote 22 bytes" ];
    };
    {
      a_name = "mqttc";
      a_paper_name = "paho-mqtt";
      a_description = "pub/sub messaging: sockets + sockopt";
      a_source = App_misc.mqttc;
      a_argv = [ "mqttc"; "12" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "published=12 echoed=12" ];
    };
    {
      a_name = "zpack";
      a_paper_name = "zlib";
      a_description = "compression: pure compute + files";
      a_source = App_misc.zpack;
      a_argv = [ "zpack"; "6" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "ok=1" ];
    };
    {
      a_name = "evloop";
      a_paper_name = "libevent";
      a_description = "event loop: socketpair + poll multiplexing";
      a_source = App_misc.evloop;
      a_argv = [ "evloop" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "2 events" ];
    };
    {
      a_name = "tui";
      a_paper_name = "libncurses";
      a_description = "terminal UI: winsize ioctl + process groups";
      a_source = App_misc.tui;
      a_argv = [ "tui" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "screen 80x24" ];
    };
    {
      a_name = "crypt";
      a_paper_name = "openssl";
      a_description = "stream cipher: getrandom + ioctl";
      a_source = App_misc.crypt;
      a_argv = [ "crypt"; "3" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "pending=100"; "digest=" ];
    };
    {
      a_name = "ltp";
      a_paper_name = "LTP";
      a_description = "syscall conformance harness";
      a_source = App_misc.ltp;
      a_argv = [ "ltp" ];
      a_stdin = "";
      a_setup = no_setup;
      a_expect = [ "0 failed" ];
    };
  ]

let find name = List.find_opt (fun a -> a.a_name = name) all

(* Compiled binaries are cached: apps are compiled once per process. *)
let binary_cache : (string, string) Hashtbl.t = Hashtbl.create 16

let binary_of (a : app) : string =
  match Hashtbl.find_opt binary_cache a.a_name with
  | Some b -> b
  | None ->
      let b = Minic.to_wasm_binary a.a_source in
      Hashtbl.replace binary_cache a.a_name b;
      b

(** Run an app on the WALI engine; returns (status, output). [policy]
    lets callers run the suite under e.g. a statically derived seccomp
    allowlist (see lib/analysis). *)
let run ?(argv : string list option) ?(env = []) ?trace ?policy ?poll_scheme
    ?fuse ?observe (a : app) : int * string =
  let binary = binary_of a in
  let kernel = Kernel.Task.boot () in
  a.a_setup kernel;
  if a.a_stdin <> "" then begin
    Kernel.Task.console_feed kernel a.a_stdin;
    (* close stdin after the script: feed EOF by dropping the writer *)
    Kernel.Pipe.drop_writer kernel.Kernel.Task.console_in
  end;
  let status, out, _ =
    Wali.Interface.run_program ~kernel ?trace ?policy ?poll_scheme ?fuse
      ?observe ~binary
      ~argv:(Option.value argv ~default:a.a_argv)
      ~env ()
  in
  (status, out)

(* ------------------------------------------------------------------ *)
(* Porting analysis (Table 1)                                           *)
(* ------------------------------------------------------------------ *)

(** Syscall families available under WASI preview1 (names normalized to
    Linux syscalls). The capability model exposes file I/O, clocks and
    randomness — no processes, signals, memory mapping, sockets or
    terminal control. *)
let wasi_supported =
  [
    "read"; "write"; "readv"; "writev"; "pread64"; "pwrite64"; "open";
    "openat"; "close"; "fstat"; "stat"; "lstat"; "newfstatat"; "lseek";
    "getdents64"; "mkdir"; "mkdirat"; "unlink"; "unlinkat"; "rmdir";
    "rename"; "renameat"; "symlink"; "symlinkat"; "readlink"; "readlinkat";
    "link"; "linkat"; "ftruncate"; "fsync"; "fdatasync"; "utimensat";
    "faccessat"; "access"; "clock_gettime"; "clock_getres"; "nanosleep";
    "clock_nanosleep"; "getrandom"; "exit"; "exit_group"; "sched_yield";
    "poll"; "ppoll";
  ]

(** WASIX: WASI plus the POSIX extensions Wasmer added — processes,
    pipes, dup, basic sockets, kill/sigaction-style signals. Still no
    memory mapping, users/groups, process groups, socketpair, ioctl,
    wait4-with-rusage or terminal control. *)
let wasix_supported =
  wasi_supported
  @ [
      "pipe"; "pipe2"; "dup"; "dup2"; "dup3"; "fork"; "vfork"; "execve";
      "kill"; "rt_sigaction"; "rt_sigprocmask"; "getpid"; "getppid";
      "gettid"; "socket"; "bind"; "connect"; "listen"; "accept"; "accept4";
      "sendto"; "recvfrom"; "shutdown"; "getcwd"; "chdir"; "fchdir";
      "futex"; "set_tid_address"; "getuid"; "getgid"; "geteuid"; "getegid";
      "uname"; "select"; "pselect6"; "wait4"; "waitid"; "setsockopt";
      "getsockopt"; "getsockname"; "getpeername"; "thread_spawn";
    ]

type api = Wali_api | Wasix_api | Wasi_api

let api_name = function
  | Wali_api -> "WALI"
  | Wasix_api -> "WASIX"
  | Wasi_api -> "WASI"

(** Extract the syscall manifest from a binary's import section — the
    name-bound imports make this a static, ISA-agnostic check (§3.6). *)
let required_syscalls (binary : string) : string list =
  let m = Wasm.Binary.decode binary in
  List.filter_map
    (fun (imp : Wasm.Ast.import) ->
      if imp.Wasm.Ast.imp_module = "wali" then
        let n = imp.Wasm.Ast.imp_name in
        if String.length n > 4 && String.sub n 0 4 = "SYS_" then
          Some (String.sub n 4 (String.length n - 4))
        else Some n (* argv/env methods, thread_spawn *)
      else None)
    m.Wasm.Ast.imports

let non_syscall_methods =
  [ "get_argc"; "get_argv_len"; "copy_argv"; "get_envc"; "get_env_len";
    "copy_env" ]

(* libc wrapper -> underlying syscall, for source-level analysis *)
let wrapper_syscalls =
  [ ("write", "write"); ("read", "read"); ("open", "open"); ("close", "close");
    ("lseek", "lseek"); ("pread", "pread64"); ("pwrite", "pwrite64");
    ("unlink", "unlink"); ("mkdir", "mkdir"); ("rename_file", "rename");
    ("ftruncate", "ftruncate"); ("fsync", "fsync"); ("chdir_to", "chdir");
    ("dup_fd", "dup"); ("dup2", "dup2"); ("pipe", "pipe");
    ("ioctl3", "ioctl"); ("exit", "exit_group"); ("fork", "fork");
    ("getpid", "getpid"); ("getppid", "getppid"); ("waitpid", "wait4");
    ("kill", "kill"); ("execve", "execve"); ("setpgid_self", "setpgid");
    ("sched_yield", "sched_yield"); ("signal", "rt_sigaction");
    ("msleep", "nanosleep"); ("monotime_us", "clock_gettime") ]

(** The syscalls the *application code* itself needs (Table 1's view):
    direct syscall() invocations plus libc wrappers it calls. The libc's
    internal allocator plumbing is excluded — a WASI port swaps the
    allocator, it does not change the application. *)
let app_required_syscalls (a : app) : string list =
  let prog = Minic.parse a.a_source in
  let acc = Hashtbl.create 16 in
  let rec expr (e : Minic.Ast.expr) =
    match e with
    | Minic.Ast.ESyscall (n, args) ->
        Hashtbl.replace acc n ();
        List.iter expr args
    | Minic.Ast.ECall (f, args) ->
        (match List.assoc_opt f wrapper_syscalls with
        | Some sc -> Hashtbl.replace acc sc ()
        | None -> ());
        List.iter expr args
    | Minic.Ast.EBuiltin (("thread_spawn" as b), args) ->
        Hashtbl.replace acc b ();
        List.iter expr args
    | Minic.Ast.EBuiltin (_, args) -> List.iter expr args
    | Minic.Ast.EUnop (_, x) | Minic.Ast.EDeref x | Minic.Ast.ECast (_, x) ->
        expr x
    | Minic.Ast.EBinop (_, x, y)
    | Minic.Ast.EAssign (x, y)
    | Minic.Ast.EIndex (x, y) ->
        expr x;
        expr y
    | Minic.Ast.ECond (x, y, z) ->
        expr x;
        expr y;
        expr z
    | Minic.Ast.EInt _ | Minic.Ast.EStr _ | Minic.Ast.EVar _
    | Minic.Ast.EFnptr _ | Minic.Ast.ESizeof _ ->
        ()
  in
  let rec stmt (st : Minic.Ast.stmt) =
    match st with
    | Minic.Ast.SExpr e -> expr e
    | Minic.Ast.SDecl (_, _, i) -> Option.iter expr i
    | Minic.Ast.SIf (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | Minic.Ast.SWhile (c, b) ->
        expr c;
        List.iter stmt b
    | Minic.Ast.SFor (i, c, sstep, b) ->
        Option.iter stmt i;
        Option.iter expr c;
        Option.iter expr sstep;
        List.iter stmt b
    | Minic.Ast.SReturn e -> Option.iter expr e
    | Minic.Ast.SBreak | Minic.Ast.SContinue -> ()
    | Minic.Ast.SBlock b -> List.iter stmt b
  in
  List.iter
    (function
      | Minic.Ast.GFunc f -> List.iter stmt f.Minic.Ast.fn_body
      | Minic.Ast.GVar _ | Minic.Ast.GArr _ -> ())
    prog;
  Hashtbl.fold (fun k () l -> k :: l) acc []

(** First missing feature of [api] for this app, or None if it ports. *)
let missing_feature (api : api) (a : app) : string option =
  let required = app_required_syscalls a in
  let supported =
    match api with
    | Wali_api -> None (* everything in the spec *)
    | Wasix_api -> Some (wasix_supported @ non_syscall_methods)
    | Wasi_api -> Some (wasi_supported @ non_syscall_methods)
  in
  (* Report the most salient blocker (the paper's Table 1 lists the
     canonical one per app), not an arbitrary import-order artifact. *)
  let salience =
    [ "mremap"; "mmap"; "munmap"; "rt_sigaction"; "kill"; "setuid"; "setsid";
      "setpgid"; "socketpair"; "setsockopt"; "ioctl"; "dup"; "dup2"; "fork";
      "execve"; "wait4"; "pipe"; "socket"; "thread_spawn"; "sysinfo" ]
  in
  let pick = function
    | [] -> None
    | missing -> (
        match List.find_opt (fun s -> List.mem s missing) salience with
        | Some s -> Some s
        | None -> Some (List.hd missing))
  in
  match supported with
  | None ->
      (* WALI: check against the spec's implemented set *)
      pick
        (List.filter
           (fun s ->
             match Wali.Spec.find s with
             | Some e -> not e.Wali.Spec.implemented
             | None -> not (List.mem s ("thread_spawn" :: non_syscall_methods)))
           required)
  | Some set -> pick (List.filter (fun s -> not (List.mem s set)) required)

type porting_row = {
  pr_app : app;
  pr_wali : string option;
  pr_wasix : string option;
  pr_wasi : string option;
}

let porting_table () : porting_row list =
  List.map
    (fun a ->
      {
        pr_app = a;
        pr_wali = missing_feature Wali_api a;
        pr_wasix = missing_feature Wasix_api a;
        pr_wasi = missing_feature Wasi_api a;
      })
    all
