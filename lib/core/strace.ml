(** Syscall tracing and profiling (the WALI_VERBOSE analogue, and the
    data source for the Fig 2 syscall profile). *)

type record = {
  mutable calls : int;
  mutable errors : int;
  mutable ns : int64; (* total time in the WALI layer + kernel *)
}

type t = {
  counts : (string, record) Hashtbl.t;
  mutable verbose : bool;
  mutable log : (string -> unit) option;
  mutable total : int;
}

let create ?(verbose = false) () =
  { counts = Hashtbl.create 64; verbose; log = None; total = 0 }

let record_of t name =
  match Hashtbl.find_opt t.counts name with
  | Some r -> r
  | None ->
      let r = { calls = 0; errors = 0; ns = 0L } in
      Hashtbl.replace t.counts name r;
      r

let note t ~pid ~name ~args ~(result : int64) ~ns =
  let r = record_of t name in
  r.calls <- r.calls + 1;
  if Int64.compare result 0L < 0 then r.errors <- r.errors + 1;
  r.ns <- Int64.add r.ns ns;
  t.total <- t.total + 1;
  if t.verbose then begin
    let line =
      Printf.sprintf "[%d] %s(%s) = %Ld" pid name
        (String.concat ", " (List.map Int64.to_string args))
        result
    in
    match t.log with Some f -> f line | None -> prerr_endline line
  end

(* Frequency order with a deterministic tie-break: equal-count syscalls
   sort by name, not by hashtable iteration order. *)
let by_freq count a b =
  match compare (count b) (count a) with
  | 0 -> compare (fst a) (fst b)
  | c -> c

(** (name, calls) sorted by frequency, most frequent first; ties break
    alphabetically so the profile is stable across runs. *)
let profile t : (string * int) list =
  Hashtbl.fold (fun name r acc -> (name, r.calls) :: acc) t.counts []
  |> List.sort (by_freq snd)

(** Per-syscall aggregate beyond the raw call count: error returns and
    total time spent below the WALI boundary. *)
type info = { i_calls : int; i_errors : int; i_ns : int64 }

let info_of r = { i_calls = r.calls; i_errors = r.errors; i_ns = r.ns }

(** (name, info) in the same deterministic order as [profile]. *)
let profile_info t : (string * info) list =
  Hashtbl.fold (fun name r acc -> (name, info_of r) :: acc) t.counts []
  |> List.sort (by_freq (fun (_, i) -> i.i_calls))

let info t name = Option.map info_of (Hashtbl.find_opt t.counts name)

let total_errors t =
  Hashtbl.fold (fun _ r acc -> acc + r.errors) t.counts 0

let unique_syscalls t = Hashtbl.length t.counts

let total_calls t = t.total

let total_ns t =
  Hashtbl.fold (fun _ r acc -> Int64.add acc r.ns) t.counts 0L

let reset t =
  Hashtbl.reset t.counts;
  t.total <- 0
