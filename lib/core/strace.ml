(** Syscall tracing and profiling (the WALI_VERBOSE analogue, and the
    data source for the Fig 2 syscall profile).

    The per-syscall aggregation itself lives in {!Observe.Metrics} — this
    module is a thin consumer that adds the verbose strace-style line
    rendering and the frequency-ordered profile views. An observability
    sink can share the same registry (see {!of_metrics} / {!metrics}) so
    each WALI crossing is counted exactly once, whoever is looking. *)

type t = {
  reg : Observe.Metrics.t;
  mutable verbose : bool;
  mutable log : (string -> unit) option;
}

let create ?(verbose = false) () =
  { reg = Observe.Metrics.create (); verbose; log = None }

(** A tracer over an existing registry (shared with an observability
    sink, or replaying a recorded run into a fresh view). *)
let of_metrics ?(verbose = false) reg = { reg; verbose; log = None }

let metrics t = t.reg

(* Values at or above 64 KiB are almost always addresses, buffer lengths
   don't reach them in practice, and flag words stay small — render those
   in hex so pointers are readable. The cutoff is fixed, keeping the
   format deterministic. *)
let pp_arg (v : int64) : string =
  if Int64.compare v 0x10000L >= 0 then Printf.sprintf "0x%Lx" v
  else Int64.to_string v

let note t ~pid ~name ~args ~(result : int64) ~ns =
  Observe.Metrics.record t.reg ~name ~result ~ns;
  if t.verbose then begin
    let line =
      Printf.sprintf "[%d] %s(%s) = %Ld" pid name
        (String.concat ", " (List.map pp_arg args))
        result
    in
    match t.log with Some f -> f line | None -> prerr_endline line
  end

(** (name, calls) sorted by frequency, most frequent first; ties break
    alphabetically so the profile is stable across runs. The comparator
    lives in {!Observe.Metrics} and is shared with the walitop report
    and waliperf, so every per-syscall table agrees on row order. *)
let profile t : (string * int) list =
  List.map
    (fun (name, (s : Observe.Metrics.syscall_stats)) ->
      (name, s.Observe.Metrics.calls))
    (Observe.Metrics.by_calls t.reg)

(** Per-syscall aggregate beyond the raw call count: error returns and
    total time spent below the WALI boundary. *)
type info = { i_calls : int; i_errors : int; i_ns : int64 }

let info_of (s : Observe.Metrics.syscall_stats) =
  {
    i_calls = s.Observe.Metrics.calls;
    i_errors = s.Observe.Metrics.errors;
    i_ns = s.Observe.Metrics.ns;
  }

(** (name, info) in the same deterministic order as [profile]. *)
let profile_info t : (string * info) list =
  List.map
    (fun (name, s) -> (name, info_of s))
    (Observe.Metrics.by_calls t.reg)

let info t name = Option.map info_of (Observe.Metrics.find t.reg name)
let total_errors t = Observe.Metrics.total_errors t.reg
let unique_syscalls t = Observe.Metrics.unique t.reg
let total_calls t = Observe.Metrics.total_calls t.reg
let total_ns t = Observe.Metrics.total_ns t.reg
let reset t = Observe.Metrics.reset t.reg
