(** The WALI engine: process/thread model (1-to-1, instance-per-thread),
    virtual signal delivery at safepoints, and process lifecycle
    (paper §3.1, §3.3).

    Each WALI process is one kernel task running one explicit-state Wasm
    machine on its own fiber. Threads share the process image (memory,
    mmap manager, sigactions) but get their own machine — the engine-side
    equivalent of instance-per-thread, since all per-thread execution
    state (value stack, call frames) lives in the machine. *)

open Wasm

(* Raised out of the interpreter at a safepoint when a fatal signal or an
   exit_group from a sibling thread terminates the task. Not a Wasm trap:
   it deliberately unwinds the whole machine run. *)
exception Killed_by of int (* packed wait status *)

type pshared = {
  ps_mmap : Mmap_mgr.t;
  mutable ps_argv : string array;
  mutable ps_env : string array;
  ps_mem_id : int; (* futex address-space id *)
  mutable ps_brk : int;
  ps_heap_base : int;
  ps_binary : string; (* the loaded .wasm image, for diagnostics *)
}

type proc = {
  pr_task : Kernel.Task.t;
  pr_sys : Kernel.Syscalls.ctx;
  mutable pr_shared : pshared;
  mutable pr_machine : Rt.machine option;
  mutable pr_result : Interp.run_result option; (* set when the task ends *)
}

type t = {
  kernel : Kernel.Task.kernel;
  futexes : Kernel.Futex.t;
  trace : Strace.t;
  mutable policy : Seccomp.t;
  mutable poll_scheme : Code.poll_scheme;
  mutable fuse : bool; (* run the macro-op fusion pass on new images *)
  procs : (int, proc) Hashtbl.t; (* task tid -> proc *)
  mutable next_mem_id : int;
  mutable live_procs : int;
  mutable on_proc_exit : (proc -> int -> unit) option;
  mutable interpose : interposer option;
  mutable observe : Observe.Sink.t option;
      (* observability sink — deliberately separate from [interpose] so
         tracing/metrics/profiling compose with record/replay *)
}

(** Record/replay (and other tooling) hooks around the thin interface.
    [ip_dispatch] wraps every WALI host call — the [run] thunk performs
    the live seccomp check + kernel dispatch, and the interposer may call
    it (recording) or substitute its own outcome (replay). [ip_poll] is
    invoked at every counted safepoint poll, before signal delivery, so
    both sides of record/replay agree on delivery positions. [ip_signal]
    observes each virtual signal delivery ([status] is the packed wait
    status for fatal dispositions, [None] for handler runs). *)
and interposer = {
  ip_dispatch :
    t ->
    proc ->
    string ->
    Rt.machine ->
    Values.value array ->
    (unit -> Rt.host_outcome) ->
    Rt.host_outcome;
  ip_poll : t -> proc -> Rt.machine -> unit;
  ip_signal : t -> proc -> Rt.machine -> signo:int -> status:int option -> unit;
  ip_virtual_signals : bool;
      (* true (replay): kernel-pending signals are never popped at
         safepoints — deliveries come exclusively from the interposer's
         [ip_poll] re-injection. Live process exits still post e.g.
         SIGCHLD to kernel tasks; without this, those would be delivered
         a second time on top of the injected recorded delivery. *)
}

let create ?(poll_scheme = Code.Poll_loops) ?(fuse = true)
    ?(trace = Strace.create ()) ?(policy = Seccomp.allow_all ()) ?observe
    (kernel : Kernel.Task.kernel) : t =
  (match observe with
  | Some o -> Observe.Sink.set_kstats o kernel.Kernel.Task.stats
  | None -> ());
  {
    kernel;
    futexes = Kernel.Futex.create ();
    trace;
    policy;
    poll_scheme;
    fuse;
    procs = Hashtbl.create 16;
    next_mem_id = 1;
    live_procs = 0;
    on_proc_exit = None;
    interpose = None;
    observe;
  }

let fresh_mem_id eng =
  let id = eng.next_mem_id in
  eng.next_mem_id <- id + 1;
  id

let proc_of eng (m : Rt.machine) : proc =
  match Hashtbl.find_opt eng.procs m.Rt.m_pid with
  | Some p -> p
  | None -> Values.trap "no WALI process for machine (pid %d)" m.Rt.m_pid

let find_proc eng tid = Hashtbl.find_opt eng.procs tid

(** The machine's current Wasm call stack, outermost first — the folded
    profile's frame order. *)
let machine_stack (m : Rt.machine) : string list =
  List.init m.Rt.depth (fun i -> m.Rt.frames.(i).Rt.fr_code.Code.fc_name)

(** Install the profiler's call/return sample hook on a machine (new
    process images and spawned threads; fork children inherit the hook
    through [Machine.clone]). *)
let install_prof eng (m : Rt.machine) : unit =
  match eng.observe with
  | Some o when Observe.Sink.profiling o ->
      m.Rt.prof_hook <-
        Some
          (fun mm ->
            Observe.Sink.prof_sample o ~pid:mm.Rt.m_pid ~steps:mm.Rt.steps
              ~stack:(fun () -> machine_stack mm))
  | _ -> ()

let register_proc eng (p : proc) =
  Hashtbl.replace eng.procs p.pr_task.Kernel.Task.tid p;
  eng.live_procs <- eng.live_procs + 1;
  match eng.observe with
  | Some o ->
      let t = p.pr_task in
      Observe.Sink.proc_start o ~pid:t.Kernel.Task.tgid ~tid:t.Kernel.Task.tid
        ~comm:t.Kernel.Task.comm ~ts:(Fiber.now ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Virtual signal delivery at safepoints (paper §3.3, Fig 5)            *)
(* ------------------------------------------------------------------ *)

(* Resolve a registered handler (a Wasm function-pointer, i.e. an index
   into table 0) to a callable function. *)
let handler_func (inst : Rt.instance) idx : Rt.func_inst option =
  if Array.length inst.Rt.i_tables = 0 then None
  else
    match Rt.Table.get inst.Rt.i_tables.(0) idx with
    | Some fidx -> Some inst.Rt.i_funcs.(fidx)
    | None -> None
    | exception Values.Trap _ -> None

(** Run the registered Wasm handler for [signo] with the mask discipline:
    block the signal itself (unless SA_NODEFER) plus sa_mask for the
    duration — nested delivery therefore defers identical signals, the
    stack-based structure of §3.3. A dangling handler function pointer is
    treated as default Term. Also the entry point the replayer uses to
    re-inject recorded deliveries. *)
let run_signal_handler _eng (p : proc) (m : Rt.machine) ~(signo : int)
    ~(action : Kernel.Ktypes.sigaction) : unit =
  let task = p.pr_task in
  let open Kernel.Ktypes in
  match handler_func m.Rt.m_inst action.sa_handler with
  | None ->
      (* dangling function pointer: treat as default Term *)
      raise (Killed_by (wsignal_status signo))
  | Some f ->
      let old_mask = task.Kernel.Task.sigmask in
      let block =
        if action.sa_flags land sa_nodefer <> 0 then action.sa_mask
        else Sigset.add action.sa_mask signo
      in
      task.Kernel.Task.sigmask <- Sigset.union old_mask block;
      let result = Interp.call_nested m f [ Values.I32 (Int32.of_int signo) ] in
      task.Kernel.Task.sigmask <- old_mask;
      (match result with
      | Interp.R_done _ -> ()
      | Interp.R_trap msg -> Values.trap "trap in signal handler: %s" msg
      | Interp.R_exit _ -> () (* unreachable: exits raise *))

(** Deliver every currently-deliverable signal on machine [m]. Handlers
    run re-entrantly on the interrupted machine (sig_poll in Fig 5);
    default dispositions terminate via [Killed_by]. *)
let rec deliver_signals eng (p : proc) (m : Rt.machine) : unit =
  let task = p.pr_task in
  (match task.Kernel.Task.group.Kernel.Task.exiting with
  | Some status -> raise (Killed_by status)
  | None -> ());
  let suppressed =
    match eng.interpose with
    | Some ip -> ip.ip_virtual_signals
    | None -> false
  in
  if (not suppressed) && Kernel.Task.has_deliverable_signal task then begin
    match Kernel.Task.next_signal task with
    | None -> ()
    | Some (signo, action) ->
        let open Kernel.Ktypes in
        let observe status =
          match eng.interpose with
          | Some ip -> ip.ip_signal eng p m ~signo ~status
          | None -> ()
        in
        let delivered () =
          let ks = eng.kernel.Kernel.Task.stats in
          ks.Observe.Metrics.sig_delivered <-
            ks.Observe.Metrics.sig_delivered + 1
        in
        let pid = task.Kernel.Task.tgid and tid = task.Kernel.Task.tid in
        if action.sa_handler = sig_ign then deliver_signals eng p m
        else if action.sa_handler = sig_dfl then begin
          match default_disposition signo with
          | Ign | Cont -> deliver_signals eng p m
          | Stop -> deliver_signals eng p m (* job control simplified *)
          | Term | Core ->
              let status = wsignal_status signo in
              observe (Some status);
              delivered ();
              (match eng.observe with
              | Some o ->
                  Observe.Sink.signal_fatal o ~pid ~tid ~signo
                    ~ts:(Fiber.now ())
              | None -> ());
              raise (Killed_by status)
        end
        else begin
          observe None;
          delivered ();
          (match eng.observe with
          | Some o ->
              Observe.Sink.signal_begin o ~pid ~tid ~signo ~ts:(Fiber.now ());
              (* the handler may exit the process via Killed_by — close
                 the span either way so the trace stays well-nested *)
              Fun.protect
                ~finally:(fun () ->
                  Observe.Sink.signal_end o ~pid ~tid ~signo
                    ~ts:(Fiber.now ()))
                (fun () -> run_signal_handler eng p m ~signo ~action)
          | None -> run_signal_handler eng p m ~signo ~action);
          (* more signals may have arrived meanwhile *)
          deliver_signals eng p m
        end
  end

let poll_hook eng : Rt.machine -> unit =
 fun m ->
  (match eng.observe with
  | Some o -> Observe.Sink.safepoint_poll o
  | None -> ());
  let p = proc_of eng m in
  (match eng.interpose with Some ip -> ip.ip_poll eng p m | None -> ());
  deliver_signals eng p m

(* ------------------------------------------------------------------ *)
(* Image construction                                                   *)
(* ------------------------------------------------------------------ *)

(* Decode + compile is pure in the binary (and the compile options), and
   [Link.instantiate] never mutates the compiled module — memories,
   globals and tables are built fresh per instance — so compiled images
   are shared across processes and repeated execs of the same binary.
   Compilation consumes no virtual time, so the cache cannot perturb any
   deterministic counter; it only removes redundant host work. *)
let compile_cache : (string * string * Code.poll_scheme * bool, Code.compiled)
    Hashtbl.t =
  Hashtbl.create 16

let compile_cache_max = 64

let compile_cached ~poll ~fuse ~name binary : Code.compiled =
  let key = (Digest.string binary, name, poll, fuse) in
  match Hashtbl.find_opt compile_cache key with
  | Some cm -> cm
  | None ->
      let m = Binary.decode ~name binary in
      let cm = Code.compile_module ~poll ~fuse m in
      if Hashtbl.length compile_cache >= compile_cache_max then
        Hashtbl.reset compile_cache;
      Hashtbl.replace compile_cache key cm;
      cm

(** Compile and instantiate a Wasm binary as a fresh process image. *)
let build_image eng ~(resolver : Link.resolver) ~(binary : string)
    ~(name : string) : Rt.instance =
  let cm = compile_cached ~poll:eng.poll_scheme ~fuse:eng.fuse ~name binary in
  (match eng.observe with
  | Some o ->
      let fs = cm.Code.cm_fuse in
      Observe.Sink.note_fusion o ~ops_before:fs.Code.fs_ops_before
        ~ops_after:fs.Code.fs_ops_after ~sites:fs.Code.fs_sites
  | None -> ());
  let inst, start = Link.instantiate ~name resolver cm in
  (match start with
  | Some _ -> () (* start functions run on first invoke by convention *)
  | None -> ());
  inst

let heap_base_of (inst : Rt.instance) : int =
  match Rt.export_opt inst "__heap_base" with
  | Some (Rt.E_global g) -> (
      match Rt.Global.get g with
      | Values.I32 v -> Int32.to_int v
      | _ -> 1 lsl 20)
  | _ -> 1 lsl 20

let make_pshared eng ~(inst : Rt.instance) ~argv ~env ~binary : pshared =
  let heap_base = heap_base_of inst in
  {
    ps_mmap = Mmap_mgr.create ~heap_base;
    ps_argv = Array.of_list argv;
    ps_env = Array.of_list env;
    ps_mem_id = fresh_mem_id eng;
    ps_brk = Mmap_mgr.align_up heap_base;
    ps_heap_base = heap_base;
    ps_binary = binary;
  }

(** Open the console on fds 0,1,2 of a task (for the initial process). *)
let setup_stdio eng (task : Kernel.Task.t) =
  let ctx = Kernel.Syscalls.make_ctx eng.kernel task eng.futexes in
  let open_tty flags =
    match
      Kernel.Syscalls.openat ctx ~dirfd:Kernel.Syscalls.at_fdcwd
        ~path:"/dev/console" ~flags ~mode:0
    with
    | Ok fd -> fd
    | Error e -> failwith ("setup_stdio: " ^ Kernel.Errno.to_string e)
  in
  ignore (open_tty Kernel.Ktypes.o_rdonly);
  ignore (open_tty Kernel.Ktypes.o_wronly);
  ignore (open_tty Kernel.Ktypes.o_wronly)

(* ------------------------------------------------------------------ *)
(* Task completion                                                      *)
(* ------------------------------------------------------------------ *)

(* Tear the task down with a packed wait status, propagating exit_group
   to sibling threads. *)
let do_exit eng (p : proc) ~(status : int) : unit =
  let open Kernel in
  let task = p.pr_task in
  let is_group_leader = task.Task.tid = task.Task.tgid in
  if is_group_leader then begin
    (* exit_group semantics: take the rest of the thread group down. *)
    task.Task.group.Task.exiting <- Some status;
    List.iter
      (fun (sib : Task.t) ->
        if sib != task then
          match !(sib.Task.intr) with Some wake -> wake () | None -> ())
      task.Task.group.Task.threads
  end;
  Task.exit_task eng.kernel task ~status;
  eng.live_procs <- eng.live_procs - 1;
  (match eng.observe with
  | Some o ->
      (match p.pr_machine with
      | Some m ->
          (* Attribute the final stretch of steps, then retire the
             machine's instruction count. *)
          if Observe.Sink.profiling o then begin
            Observe.Sink.prof_sample o ~pid:m.Rt.m_pid ~steps:m.Rt.steps
              ~stack:(fun () -> machine_stack m);
            Observe.Sink.prof_reset o ~pid:m.Rt.m_pid
          end;
          Observe.Sink.instr_retire o ~pid:m.Rt.m_pid ~steps:m.Rt.steps
            ~fused:m.Rt.fused
      | None -> ());
      Observe.Sink.proc_exit o ~pid:task.Task.tgid ~tid:task.Task.tid ~status
        ~ts:(Fiber.now ())
  | None -> ());
  (match eng.on_proc_exit with
  | Some f -> f p status
  | None -> ());
  Hashtbl.remove eng.procs task.Task.tid

(** The body that every process/thread fiber runs. Wasm traps terminate
    the process like fatal signals (SIGILL-style status), which is how
    e.g. call_indirect signature violations surface. *)
let run_machine_body eng (p : proc) (m : Rt.machine) ~fresh_entry
    ~(entry : Rt.func_inst option) ~(args : Values.value list) : unit =
  let outcome =
    try
      `Result
        (if fresh_entry then
           match entry with
           | Some f -> Interp.invoke m f args
           | None -> Interp.R_trap "no entry function"
         else Interp.resume m ~results:0)
    with Killed_by status -> `Killed status
  in
  match outcome with
  | `Killed status ->
      p.pr_result <- Some (Interp.R_exit (status lsr 8));
      do_exit eng p ~status
  | `Result r ->
      p.pr_result <- Some r;
      (match (r, eng.observe) with
      | Interp.R_trap _, Some o -> Observe.Sink.trap o
      | _ -> ());
      let status =
        let open Kernel.Ktypes in
        match r with
        | Interp.R_done _ -> wexit_status 0
        | Interp.R_exit code -> wexit_status code
        | Interp.R_trap _ -> wsignal_status Kernel.Ktypes.sigill
      in
      do_exit eng p ~status

(** Result of the last finished process with pid [tid], if tracked. *)
let result_of (p : proc) = p.pr_result
