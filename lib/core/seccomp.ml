(** seccomp-like dynamic syscall policies, layered entirely in user space
    above the kernel interface (paper §3.6 "Dynamic Policies").

    Because WALI syscalls are name-bound, policies are ISA-agnostic and
    can be expressed against names rather than numbers. Policies compose:
    for a given syscall name the most recently added rule wins, then the
    default applies. Rules are kept most-recent-first ([allow]/[deny]/
    [kill_on] all prepend), so resolution is the first name match. *)

type verdict =
  | Allow
  | Deny of Kernel.Errno.t (* fail the call with an errno *)
  | Kill (* terminate the process, like SECCOMP_RET_KILL *)

type rule = { r_name : string; r_verdict : verdict }

type t = {
  mutable rules : rule list;
  mutable default : verdict;
  mutable hits : (string, int) Hashtbl.t; (* denied-call accounting *)
}

let allow_all () = { rules = []; default = Allow; hits = Hashtbl.create 8 }

(** A default-deny policy seeded with an allowlist, the shape used by
    gVisor/Nabla-style secure containers. *)
let allowlist names =
  {
    (* reversed so that, should a name repeat, the later entry is first
       and wins — the same most-recent-first order the mutators keep *)
    rules = List.rev_map (fun n -> { r_name = n; r_verdict = Allow }) names;
    default = Deny Kernel.Errno.EPERM;
    hits = Hashtbl.create 8;
  }

(* Mutators prepend: the head of [rules] is always the newest rule, so
   a later [deny] overrides an earlier allowlist entry and vice versa. *)
let allow t name = t.rules <- { r_name = name; r_verdict = Allow } :: t.rules

let deny t name ?(errno = Kernel.Errno.EPERM) () =
  t.rules <- { r_name = name; r_verdict = Deny errno } :: t.rules

let kill_on t name = t.rules <- { r_name = name; r_verdict = Kill } :: t.rules

(** Resolve [name]: the most recently added rule for the name, or the
    policy default. First match is correct because rules are kept
    most-recent-first. *)
let check t name : verdict =
  let v =
    match List.find_opt (fun r -> r.r_name = name) t.rules with
    | Some r -> r.r_verdict
    | None -> t.default
  in
  (match v with
  | Allow -> ()
  | Deny _ | Kill ->
      Hashtbl.replace t.hits name
        (1 + Option.value (Hashtbl.find_opt t.hits name) ~default:0));
  v

let denied_counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hits []
  |> List.sort compare
