(** The WALI host-function interface: ~150 name-bound virtual syscalls
    plus the argv/env support methods (paper §3, §3.4).

    Each handler unmarshals i64 arguments, performs address-space
    translation into the caller's linear memory (zero-copy where the
    kernel ABI allows), invokes the kernel syscall, and encodes the
    result with the raw kernel convention: an i64 that is non-negative on
    success and -errno on failure. Most handlers are under ten lines —
    the property that keeps the TCB thin. *)

open Wasm
open Kernel

let ( let* ) = Result.bind

(* ---- result encoding ---- *)

let errno_ret (e : Errno.t) = Int64.of_int (-Errno.to_code e)
let enc_unit = function Ok () -> 0L | Error e -> errno_ret e
let enc_int = function Ok n -> Int64.of_int n | Error e -> errno_ret e
let enc_i64 = function Ok n -> n | Error e -> errno_ret e

(* ------------------------------------------------------------------ *)
(* fork / exec / thread machinery                                       *)
(* ------------------------------------------------------------------ *)

let do_fork eng (p : Engine.proc) (child_m : Rt.machine) : int64 =
  let child_task =
    Task.clone_task eng.Engine.kernel p.Engine.pr_task ~thread:false
      ~share_files:false
  in
  let old = p.Engine.pr_shared in
  let shared =
    {
      old with
      Engine.ps_mmap = Mmap_mgr.clone old.Engine.ps_mmap;
      ps_argv = Array.copy old.Engine.ps_argv;
      ps_env = Array.copy old.Engine.ps_env;
      ps_mem_id = Engine.fresh_mem_id eng;
    }
  in
  child_m.Rt.m_pid <- child_task.Task.tid;
  let cp =
    {
      Engine.pr_task = child_task;
      pr_sys = Syscalls.make_ctx eng.Engine.kernel child_task eng.Engine.futexes;
      pr_shared = shared;
      pr_machine = Some child_m;
      pr_result = None;
    }
  in
  Engine.register_proc eng cp;
  (* Instruction accounting: the child machine clones the parent's step
     counter, so retire only what it executes from here on. (The cloned
     prof_hook likewise re-baselines on the child's first sample.) *)
  (match eng.Engine.observe with
  | Some o ->
      Observe.Sink.instr_baseline o ~pid:child_task.Task.tid
        ~steps:child_m.Rt.steps ~fused:child_m.Rt.fused
  | None -> ());
  ignore
    (Fiber.spawn
       (Printf.sprintf "wali-pid%d" child_task.Task.tid)
       (fun () ->
         Engine.run_machine_body eng cp child_m ~fresh_entry:false ~entry:None
           ~args:[]));
  Int64.of_int child_task.Task.tgid

(* Read a NULL-terminated array of guest string pointers. *)
let read_str_array mem addr : string list =
  if addr = 0 then []
  else begin
    let rec go i acc =
      if i > 4096 then raise Abi.Efault
      else begin
        let p = Abi.u32i mem (addr + (4 * i)) in
        if p = 0 then List.rev acc else go (i + 1) (Abi.cstring mem p :: acc)
      end
    in
    go 0 []
  end

(* Forward declaration knot: execve needs the resolver, the resolver
   needs dispatch, dispatch needs execve. *)
let resolver_ref :
    (Engine.t -> module_name:string -> name:string -> Rt.extern option) ref =
  ref (fun _ ~module_name:_ ~name:_ -> None)

let do_execve eng (p : Engine.proc) mem ~path_ptr ~argv_ptr ~envp_ptr :
    Rt.host_outcome =
  let path = Abi.cstring mem path_ptr in
  let argv = read_str_array mem argv_ptr in
  let envp = read_str_array mem envp_ptr in
  match Syscalls.execve_load p.Engine.pr_sys ~path with
  | Error e -> Rt.H_return [ Values.I64 (errno_ret e) ]
  | Ok binary -> (
      match
        Engine.build_image eng
          ~resolver:(fun ~module_name ~name ->
            !resolver_ref eng ~module_name ~name)
          ~binary ~name:(Filename.basename path)
      with
      | exception _ -> Rt.H_return [ Values.I64 (errno_ret Errno.ENOEXEC) ]
      | inst ->
          Rt.H_exec
            (fun () ->
              let task = p.Engine.pr_task in
              (* Close the books on the replaced machine: charge its last
                 steps and retire its instruction count; the new image
                 starts from a fresh counter. *)
              (match (eng.Engine.observe, p.Engine.pr_machine) with
              | Some o, Some m_old ->
                  if Observe.Sink.profiling o then begin
                    Observe.Sink.prof_sample o ~pid:m_old.Rt.m_pid
                      ~steps:m_old.Rt.steps
                      ~stack:(fun () -> Engine.machine_stack m_old);
                    Observe.Sink.prof_reset o ~pid:m_old.Rt.m_pid
                  end;
                  Observe.Sink.instr_retire o ~pid:m_old.Rt.m_pid
                    ~steps:m_old.Rt.steps ~fused:m_old.Rt.fused
              | _ -> ());
              (* POSIX: caught signals reset to default across exec. *)
              let actions = task.Task.group.Task.actions in
              Array.iteri
                (fun i a ->
                  if a.Ktypes.sa_handler <> Ktypes.sig_ign
                     && a.Ktypes.sa_handler <> Ktypes.sig_dfl then
                    actions.(i) <- Ktypes.sigaction_default)
                actions;
              (* The virtual environment travels to the new image with the
                 process (the paper's per-pid shared-segment technique,
                 realized directly in the engine). *)
              p.Engine.pr_shared <-
                Engine.make_pshared eng ~inst ~argv ~env:envp ~binary;
              let m' = Rt.Machine.create inst in
              m'.Rt.m_pid <- task.Task.tid;
              m'.Rt.poll_hook <- Some (Engine.poll_hook eng);
              Engine.install_prof eng m';
              (match Rt.exported_func inst "_start" with
              | Rt.Wasm_func { wf_inst; wf_code } ->
                  Rt.Machine.push_frame m' wf_inst wf_code
              | Rt.Host_func _ -> Values.trap "_start is a host function"
              | exception Values.Trap _ -> Values.trap "%s: no _start" path);
              p.Engine.pr_machine <- Some m';
              m'))

let do_thread_spawn eng (p : Engine.proc) (m : Rt.machine) ~entry_idx ~arg :
    int64 =
  match Engine.handler_func m.Rt.m_inst entry_idx with
  | None -> errno_ret Errno.EINVAL
  | Some f ->
      let child_task =
        Task.clone_task eng.Engine.kernel p.Engine.pr_task ~thread:true
          ~share_files:true
      in
      (* Instance-per-thread: per-thread execution state lives in the new
         machine; the process image (memory, tables, code) is shared. *)
      let tm = Rt.Machine.create m.Rt.m_inst in
      tm.Rt.m_pid <- child_task.Task.tid;
      tm.Rt.poll_hook <- Some (Engine.poll_hook eng);
      Engine.install_prof eng tm;
      let cp =
        {
          Engine.pr_task = child_task;
          pr_sys =
            Syscalls.make_ctx eng.Engine.kernel child_task eng.Engine.futexes;
          pr_shared = p.Engine.pr_shared;
          pr_machine = Some tm;
          pr_result = None;
        }
      in
      Engine.register_proc eng cp;
      ignore
        (Fiber.spawn
           (Printf.sprintf "wali-tid%d" child_task.Task.tid)
           (fun () ->
             Engine.run_machine_body eng cp tm ~fresh_entry:true
               ~entry:(Some f)
               ~args:[ Values.I32 (Int32.of_int arg) ]));
      Int64.of_int child_task.Task.tid

(* ------------------------------------------------------------------ *)
(* The syscall dispatcher                                               *)
(* ------------------------------------------------------------------ *)

(* /proc/self/mem interposition (paper §3.6: Filesystem Sandboxing). *)
let forbidden_path path =
  path = "/proc/self/mem"
  || (String.length path >= 6 && String.sub path 0 6 = "/proc/"
     && Filename.basename path = "mem")

exception Sys_ret of int64

let dispatch_raw eng (name : string) (m : Rt.machine)
    (args : Values.value array) : (Rt.host_outcome, Errno.t) result =
  let p = Engine.proc_of eng m in
  let ctx = p.Engine.pr_sys in
  let mem = Rt.memory0 m in
  let sh = p.Engine.pr_shared in
  let a64 i = Values.as_i64 args.(i) in
  let ai i = Int64.to_int (a64 i) in
  (* guest pointers are u32s carried in i64s *)
  let ap i = Int64.to_int (Int64.logand (a64 i) 0xFFFFFFFFL) in
  let buf i len = Abi.buffer mem ~addr:(ap i) ~len in
  let str i = Abi.cstring mem (ap i) in
  let ret v = raise (Sys_ret v) in
  let retu r = ret (enc_unit r) in
  let reti r = ret (enc_int r) in
  let err e = ret (errno_ret e) in
  let check_path path = if forbidden_path path then err Errno.EACCES in
  (* fd-relative base: WALI forwards dirfd (incl. AT_FDCWD = -100). *)
  let go () : (Rt.host_outcome, Errno.t) result =
    match name with
    (* ---- plain I/O: zero-copy address-space translation ---- *)
    | "read" ->
        let b, off = buf 1 (ai 2) in
        reti (Syscalls.read ctx ~fd:(ai 0) ~buf:b ~off ~len:(ai 2))
    | "write" ->
        let b, off = buf 1 (ai 2) in
        reti (Syscalls.write ctx ~fd:(ai 0) ~buf:b ~off ~len:(ai 2))
    | "pread64" ->
        let b, off = buf 1 (ai 2) in
        reti (Syscalls.pread64 ctx ~fd:(ai 0) ~buf:b ~off ~len:(ai 2) ~pos:(ai 3))
    | "pwrite64" ->
        let b, off = buf 1 (ai 2) in
        reti (Syscalls.pwrite64 ctx ~fd:(ai 0) ~buf:b ~off ~len:(ai 2) ~pos:(ai 3))
    | "readv" ->
        let iovs = Abi.read_iovecs mem ~iov:(ap 1) ~cnt:(ai 2) in
        let total = ref 0 in
        let rec go = function
          | [] -> reti (Ok !total)
          | (base, len) :: rest -> (
              let b, off = Abi.buffer mem ~addr:base ~len in
              match Syscalls.read ctx ~fd:(ai 0) ~buf:b ~off ~len with
              | Ok 0 -> reti (Ok !total)
              | Ok n ->
                  total := !total + n;
                  if n < len then reti (Ok !total) else go rest
              | Error e -> if !total > 0 then reti (Ok !total) else err e)
        in
        go iovs
    | "writev" ->
        let iovs = Abi.read_iovecs mem ~iov:(ap 1) ~cnt:(ai 2) in
        let total = ref 0 in
        let rec go = function
          | [] -> reti (Ok !total)
          | (base, len) :: rest -> (
              let b, off = Abi.buffer mem ~addr:base ~len in
              match Syscalls.write ctx ~fd:(ai 0) ~buf:b ~off ~len with
              | Ok n ->
                  total := !total + n;
                  if n < len then reti (Ok !total) else go rest
              | Error e -> if !total > 0 then reti (Ok !total) else err e)
        in
        go iovs
    | "open" ->
        let path = str 0 in
        check_path path;
        reti
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path ~flags:(ai 1)
             ~mode:(ai 2))
    | "openat" ->
        let path = str 1 in
        check_path path;
        reti (Syscalls.openat ctx ~dirfd:(ai 0) ~path ~flags:(ai 2) ~mode:(ai 3))
    | "close" -> retu (Syscalls.close ctx ~fd:(ai 0))
    | "lseek" -> reti (Syscalls.lseek ctx ~fd:(ai 0) ~offset:(ai 1) ~whence:(ai 2))
    | "ftruncate" -> retu (Syscalls.ftruncate ctx ~fd:(ai 0) ~len:(ai 1))
    | "truncate" ->
        let path = str 0 in
        (match Vfs.resolve eng.Engine.kernel.Task.fs ~cwd:ctx.Syscalls.t.Task.cwd path with
        | Ok { Vfs.kind = Vfs.Reg b; _ } ->
            Bytebuf.truncate b (ai 1);
            ret 0L
        | Ok _ -> err Errno.EINVAL
        | Error e -> err e)
    | "fsync" | "fdatasync" -> retu (Syscalls.fsync ctx ~fd:(ai 0))
    | "sync" -> ret 0L
    (* ---- stat family: explicit layout conversion (§3.5) ---- *)
    | "stat" | "lstat" ->
        let follow = name = "stat" in
        let* st = Syscalls.stat_path ctx ~dirfd:Syscalls.at_fdcwd ~path:(str 0) ~follow in
        Abi.write_kstat mem (ap 1) st;
        ret 0L
    | "newfstatat" ->
        (* flags bit 0x100 = AT_SYMLINK_NOFOLLOW *)
        let follow = ai 3 land 0x100 = 0 in
        let* st = Syscalls.stat_path ctx ~dirfd:(ai 0) ~path:(str 1) ~follow in
        Abi.write_kstat mem (ap 2) st;
        ret 0L
    | "fstat" ->
        let* st = Syscalls.fstat ctx ~fd:(ai 0) in
        Abi.write_kstat mem (ap 1) st;
        ret 0L
    | "statfs" | "fstatfs" ->
        (* synthetic tmpfs-shaped statfs: type, bsize, blocks, bfree *)
        let a = ap 1 in
        Abi.set_i64 mem a 0x01021994L;
        Abi.set_i64 mem (a + 8) 4096L;
        Abi.set_i64 mem (a + 16) 1048576L;
        Abi.set_i64 mem (a + 24) 524288L;
        ret 0L
    | "access" | "faccessat" ->
        let dirfd, pi, mi = if name = "access" then (Syscalls.at_fdcwd, 0, 1) else (ai 0, 1, 2) in
        retu (Syscalls.faccessat ctx ~dirfd ~path:(Abi.cstring mem (ap pi)) ~amode:(ai mi))
    (* ---- directories ---- *)
    | "mkdir" -> retu (Syscalls.mkdirat ctx ~dirfd:Syscalls.at_fdcwd ~path:(str 0) ~mode:(ai 1))
    | "mkdirat" -> retu (Syscalls.mkdirat ctx ~dirfd:(ai 0) ~path:(str 1) ~mode:(ai 2))
    | "rmdir" ->
        retu (Syscalls.unlinkat ctx ~dirfd:Syscalls.at_fdcwd ~path:(str 0) ~rmdir_flag:true)
    | "unlink" ->
        retu (Syscalls.unlinkat ctx ~dirfd:Syscalls.at_fdcwd ~path:(str 0) ~rmdir_flag:false)
    | "unlinkat" ->
        (* AT_REMOVEDIR = 0x200 *)
        retu (Syscalls.unlinkat ctx ~dirfd:(ai 0) ~path:(str 1) ~rmdir_flag:(ai 2 land 0x200 <> 0))
    | "link" ->
        retu
          (Syscalls.linkat ctx ~olddirfd:Syscalls.at_fdcwd ~oldpath:(str 0)
             ~newdirfd:Syscalls.at_fdcwd ~newpath:(str 1))
    | "linkat" ->
        retu
          (Syscalls.linkat ctx ~olddirfd:(ai 0) ~oldpath:(str 1) ~newdirfd:(ai 2)
             ~newpath:(str 3))
    | "symlink" ->
        retu (Syscalls.symlinkat ctx ~target:(str 0) ~dirfd:Syscalls.at_fdcwd ~path:(str 1))
    | "symlinkat" ->
        retu (Syscalls.symlinkat ctx ~target:(str 0) ~dirfd:(ai 1) ~path:(str 2))
    | "readlink" | "readlinkat" ->
        let dirfd, pi, bi, li =
          if name = "readlink" then (Syscalls.at_fdcwd, 0, 1, 2) else (ai 0, 1, 2, 3)
        in
        let* target = Syscalls.readlinkat ctx ~dirfd ~path:(Abi.cstring mem (ap pi)) in
        let n = min (String.length target) (ai li) in
        Abi.write_bytes mem (ap bi) (String.sub target 0 n);
        ret (Int64.of_int n)
    | "rename" ->
        retu
          (Syscalls.renameat ctx ~olddirfd:Syscalls.at_fdcwd ~oldpath:(str 0)
             ~newdirfd:Syscalls.at_fdcwd ~newpath:(str 1))
    | "renameat" | "renameat2" ->
        retu
          (Syscalls.renameat ctx ~olddirfd:(ai 0) ~oldpath:(str 1)
             ~newdirfd:(ai 2) ~newpath:(str 3))
    | "chdir" -> retu (Syscalls.chdir ctx ~path:(str 0))
    | "fchdir" -> retu (Syscalls.fchdir ctx ~fd:(ai 0))
    | "getcwd" ->
        let* cwd = Syscalls.getcwd ctx in
        if String.length cwd + 1 > ai 1 then err Errno.ERANGE
        else begin
          Abi.write_cstring mem (ap 0) cwd;
          ret (Int64.of_int (String.length cwd + 1))
        end
    | "chmod" -> retu (Syscalls.fchmodat ctx ~dirfd:Syscalls.at_fdcwd ~path:(str 0) ~mode:(ai 1))
    | "fchmodat" -> retu (Syscalls.fchmodat ctx ~dirfd:(ai 0) ~path:(str 1) ~mode:(ai 2))
    | "fchmod" -> ret 0L (* metadata-only on an open fd; accepted *)
    | "chown" | "lchown" ->
        retu (Syscalls.fchownat ctx ~dirfd:Syscalls.at_fdcwd ~path:(str 0) ~uid:(ai 1) ~gid:(ai 2))
    | "fchownat" ->
        retu (Syscalls.fchownat ctx ~dirfd:(ai 0) ~path:(str 1) ~uid:(ai 2) ~gid:(ai 3))
    | "fchown" -> ret 0L
    | "getdents64" ->
        let fd = ai 0 and b = ap 1 and len = ai 2 in
        let* entries = Syscalls.getdents ctx ~fd ~max:(max 1 (len / 24)) in
        let written, consumed = Abi.write_dirents mem ~buf:b ~len entries in
        (* push back entries that did not fit *)
        (match Fdtab.get ctx.Syscalls.t.Task.fdtab fd with
        | Some d ->
            d.Fdtab.d_dir_cookie <-
              d.Fdtab.d_dir_cookie - (List.length entries - consumed)
        | None -> ());
        ret (Int64.of_int written)
    | "utimensat" ->
        let now = Task.clock_gettime eng.Engine.kernel Ktypes.clock_realtime in
        let times = ap 2 in
        let at, mt =
          if times = 0 then (now, now)
          else (Abi.read_timespec_ns mem times, Abi.read_timespec_ns mem (times + 16))
        in
        retu (Syscalls.utimensat ctx ~dirfd:(ai 0) ~path:(str 1) ~atime_ns:at ~mtime_ns:mt)
    (* ---- dup / fcntl / ioctl / pipes ---- *)
    | "dup" -> reti (Syscalls.dup ctx ~fd:(ai 0))
    | "dup2" -> reti (Syscalls.dup3 ctx ~fd:(ai 0) ~newfd:(ai 1) ~cloexec:false)
    | "dup3" ->
        reti
          (Syscalls.dup3 ctx ~fd:(ai 0) ~newfd:(ai 1)
             ~cloexec:(ai 2 land Ktypes.o_cloexec <> 0))
    | "fcntl" -> reti (Syscalls.fcntl ctx ~fd:(ai 0) ~cmd:(ai 1) ~arg:(ai 2))
    | "flock" -> ret 0L
    | "ioctl" ->
        let req = ai 1 in
        let* r = Syscalls.ioctl ctx ~fd:(ai 0) ~request:req in
        if req = Ktypes.tiocgwinsz && ap 2 <> 0 then begin
          (* struct winsize { u16 rows, cols, xpix, ypix } *)
          Abi.set_u16 mem (ap 2) 24;
          Abi.set_u16 mem (ap 2 + 2) 80;
          Abi.set_u16 mem (ap 2 + 4) 0;
          Abi.set_u16 mem (ap 2 + 6) 0
        end
        else if req = Ktypes.fionread && ap 2 <> 0 then Abi.set_i32i mem (ap 2) r;
        ret 0L
    | "pipe" | "pipe2" ->
        let flags = if name = "pipe2" then ai 1 else 0 in
        let* r, w = Syscalls.pipe2 ctx ~flags in
        Abi.set_i32i mem (ap 0) r;
        Abi.set_i32i mem (ap 0 + 4) w;
        ret 0L
    (* ---- poll / select ---- *)
    | "poll" | "ppoll" ->
        let fds = Abi.read_pollfds mem ~addr:(ap 0) ~cnt:(ai 1) in
        let timeout_ms =
          if name = "poll" then ai 2
          else if ap 2 = 0 then -1
          else Int64.to_int (Int64.div (Abi.read_timespec_ns mem (ap 2)) 1_000_000L)
        in
        let* n, revents = Syscalls.poll ctx ~fds ~timeout_ms in
        Abi.write_revents mem ~addr:(ap 0) revents;
        ret (Int64.of_int n)
    | "select" | "pselect6" ->
        let nfds = ai 0 in
        let rd = ap 1 and wr = ap 2 in
        let read_set addr =
          if addr = 0 then []
          else
            List.filter
              (fun fd ->
                Abi.u8 mem (addr + (fd / 8)) land (1 lsl (fd mod 8)) <> 0)
              (List.init (max 0 (min nfds 1024)) Fun.id)
        in
        let rfds = read_set rd and wfds = read_set wr in
        let fds =
          List.map (fun fd -> (fd, Ktypes.pollin)) rfds
          @ List.map (fun fd -> (fd, Ktypes.pollout)) wfds
        in
        let timeout_ms =
          if ap 4 = 0 then -1
          else Int64.to_int (Int64.div (Abi.read_timespec_ns mem (ap 4)) 1_000_000L)
        in
        let* _n, revents = Syscalls.poll ctx ~fds ~timeout_ms in
        (* rewrite the bitmaps *)
        let clear addr =
          if addr <> 0 then
            for i = 0 to ((max 0 (min nfds 1024)) + 7) / 8 - 1 do
              Abi.set_u8 mem (addr + i) 0
            done
        in
        clear rd;
        clear wr;
        let ready = ref 0 in
        List.iteri
          (fun i r ->
            if r <> 0 then begin
              incr ready;
              let fd, events = List.nth fds i in
              let addr = if events = Ktypes.pollin then rd else wr in
              if addr <> 0 then
                Abi.set_u8 mem
                  (addr + (fd / 8))
                  (Abi.u8 mem (addr + (fd / 8)) lor (1 lsl (fd mod 8)))
            end)
          revents;
        ret (Int64.of_int !ready)
    (* ---- memory management (§3.2) ---- *)
    | "mmap" ->
        let addr = ap 0 and len = ai 1 and prot = ai 2 and flags = ai 3 in
        let fd = ai 4 and off = ai 5 in
        let file =
          if flags land Ktypes.map_anonymous <> 0 || fd = -1 then Ok None
          else
            match Fdtab.get ctx.Syscalls.t.Task.fdtab fd with
            | Some { Fdtab.d_kind = Fdtab.F_inode { Vfs.kind = Vfs.Reg b; _ }; _ } ->
                Ok (Some (b, off))
            | Some _ -> Error Errno.EACCES
            | None -> Error Errno.EBADF
        in
        let* file = file in
        let* a =
          Mmap_mgr.mmap sh.Engine.ps_mmap ~mem ~addr ~len ~prot ~flags ~file
        in
        Task.charge_vm ctx.Syscalls.t (Mmap_mgr.align_up len);
        ret (Int64.of_int a)
    | "munmap" ->
        let* () = Mmap_mgr.munmap sh.Engine.ps_mmap ~mem ~addr:(ap 0) ~len:(ai 1) in
        Task.charge_vm ctx.Syscalls.t (-Mmap_mgr.align_up (ai 1));
        ret 0L
    | "mremap" ->
        let* a =
          Mmap_mgr.mremap sh.Engine.ps_mmap ~mem ~old_addr:(ap 0)
            ~old_len:(ai 1) ~new_len:(ai 2)
        in
        Task.charge_vm ctx.Syscalls.t (Mmap_mgr.align_up (ai 2) - Mmap_mgr.align_up (ai 1));
        ret (Int64.of_int a)
    | "mprotect" -> retu (Mmap_mgr.mprotect sh.Engine.ps_mmap ~addr:(ap 0) ~len:(ai 1) ~prot:(ai 2))
    | "msync" -> retu (Mmap_mgr.msync sh.Engine.ps_mmap ~mem ~addr:(ap 0) ~len:(ai 1))
    | "madvise" | "mincore" | "fadvise64" | "membarrier" -> ret 0L
    | "brk" ->
        let req = ap 0 in
        if req = 0 then ret (Int64.of_int sh.Engine.ps_brk)
        else begin
          (* grow-only brk within the mmap pool, as a dedicated region *)
          let cur = sh.Engine.ps_brk in
          if req <= cur then ret (Int64.of_int cur)
          else
            match
              Mmap_mgr.mmap sh.Engine.ps_mmap ~mem ~addr:cur
                ~len:(req - cur)
                ~prot:(Ktypes.prot_read lor Ktypes.prot_write)
                ~flags:(Ktypes.map_fixed lor Ktypes.map_anonymous lor Ktypes.map_private)
                ~file:None
            with
            | Ok _ ->
                sh.Engine.ps_brk <- Mmap_mgr.align_up req;
                ret (Int64.of_int sh.Engine.ps_brk)
            | Error _ -> ret (Int64.of_int cur)
        end
    (* ---- signals (§3.3) ---- *)
    | "rt_sigaction" ->
        let signo = ai 0 in
        let act = if ap 1 = 0 then None else Some (Abi.read_sigaction mem (ap 1)) in
        let* old = Syscalls.rt_sigaction ctx ~signo ~action:act in
        if ap 2 <> 0 then Abi.write_sigaction mem (ap 2) old;
        ret 0L
    | "rt_sigprocmask" ->
        let set = if ap 1 = 0 then None else Some (Abi.i64 mem (ap 1)) in
        let* old = Syscalls.rt_sigprocmask ctx ~how:(ai 0) ~set in
        if ap 2 <> 0 then Abi.set_i64 mem (ap 2) old;
        (* §3.3: handle signals unblocked by this call before re-entering
           the Wasm critical section. *)
        (match m.Rt.poll_hook with Some f -> f m | None -> ());
        ret 0L
    | "rt_sigpending" ->
        let* pend = Syscalls.rt_sigpending ctx in
        Abi.set_i64 mem (ap 0) pend;
        ret 0L
    | "rt_sigsuspend" ->
        let nmask = Abi.i64 mem (ap 0) in
        let* old = Syscalls.rt_sigprocmask ctx ~how:Ktypes.sig_setmask ~set:(Some nmask) in
        let r = Syscalls.pause ctx in
        (match m.Rt.poll_hook with Some f -> f m | None -> ());
        let _ = Syscalls.rt_sigprocmask ctx ~how:Ktypes.sig_setmask ~set:(Some old) in
        retu r
    | "rt_sigreturn" ->
        (* §3.6: the signal trampoline is engine-managed; direct calls
           are a known attack gadget and trap. *)
        Values.trap "rt_sigreturn invoked directly from WALI module"
    | "sigaltstack" -> ret 0L
    | "kill" -> retu (Syscalls.kill ctx ~pid:(ai 0) ~signo:(ai 1))
    | "tkill" -> retu (Syscalls.tkill ctx ~tid:(ai 0) ~signo:(ai 1))
    | "tgkill" -> retu (Syscalls.tkill ctx ~tid:(ai 1) ~signo:(ai 2))
    | "pause" -> retu (Syscalls.pause ctx)
    | "alarm" -> reti (Syscalls.alarm ctx ~seconds:(ai 0))
    | "setitimer" ->
        (* ITIMER_REAL via the alarm machinery; interval ignored *)
        let it_value_ns = if ap 1 = 0 then 0L else Abi.read_timespec_ns mem (ap 1 + 16) in
        let secs = Int64.to_int (Int64.div (Int64.add it_value_ns 999_999_999L) 1_000_000_000L) in
        reti (Syscalls.alarm ctx ~seconds:secs)
    | "getitimer" ->
        Abi.write_timespec mem (ap 1) ~ns:0L;
        Abi.write_timespec mem (ap 1 + 16) ~ns:0L;
        ret 0L
    (* ---- processes (§3.1) ---- *)
    | "fork" | "vfork" -> Ok (Rt.H_fork (fun child -> do_fork eng p child))
    | "clone" ->
        let flags = ai 0 in
        if flags land Ktypes.clone_vm <> 0 then
          (* Thread creation goes through the dedicated spawn method the
             libc uses (instance-per-thread); raw CLONE_VM is refused. *)
          err Errno.EINVAL
        else Ok (Rt.H_fork (fun child -> do_fork eng p child))
    | "execve" ->
        Ok (do_execve eng p mem ~path_ptr:(ap 0) ~argv_ptr:(ap 1) ~envp_ptr:(ap 2))
    | "exit" | "exit_group" -> Ok (Rt.H_exit (ai 0))
    | "wait4" | "waitid" ->
        let pid = ai 0 in
        let status_ptr = ap 1 in
        let options = ai 2 in
        let* r = Syscalls.wait4 ctx ~pid ~options in
        (match r with
        | None -> ret 0L
        | Some wr ->
            if status_ptr <> 0 then Abi.set_i32i mem status_ptr wr.Task.wr_status;
            if ap 3 <> 0 then begin
              (* rusage: fill ru_utime (timeval) *)
              Abi.write_timeval mem (ap 3) ~ns:wr.Task.wr_rusage_utime
            end;
            ret (Int64.of_int wr.Task.wr_pid))
    | "getpid" -> ret (Int64.of_int (Syscalls.getpid ctx))
    | "getppid" -> ret (Int64.of_int (Syscalls.getppid ctx))
    | "gettid" -> ret (Int64.of_int (Syscalls.gettid ctx))
    | "getuid" -> ret (Int64.of_int (Syscalls.getuid ctx))
    | "geteuid" -> ret (Int64.of_int (Syscalls.geteuid ctx))
    | "getgid" -> ret (Int64.of_int (Syscalls.getgid ctx))
    | "getegid" -> ret (Int64.of_int (Syscalls.getegid ctx))
    | "setuid" -> retu (Syscalls.setuid ctx ~uid:(ai 0))
    | "setgid" -> retu (Syscalls.setgid ctx ~gid:(ai 0))
    | "getgroups" -> ret 0L
    | "setpgid" -> retu (Syscalls.setpgid ctx ~pid:(ai 0) ~pgid:(ai 1))
    | "getpgid" -> reti (Syscalls.getpgid ctx ~pid:(ai 0))
    | "getpgrp" -> reti (Syscalls.getpgid ctx ~pid:0)
    | "setsid" -> reti (Syscalls.setsid ctx)
    | "getsid" -> ret (Int64.of_int ctx.Syscalls.t.Task.sid)
    | "sched_yield" ->
        Syscalls.sched_yield ctx;
        ret 0L
    | "sched_getaffinity" ->
        if ai 1 >= 8 then begin
          Abi.set_i64 mem (ap 2) 1L;
          ret 8L
        end
        else err Errno.EINVAL
    | "sched_setaffinity" | "prctl" | "set_robust_list" -> ret 0L
    | "set_tid_address" -> ret (Int64.of_int ctx.Syscalls.t.Task.tid)
    | "prlimit64" | "getrlimit" ->
        let res, out = if name = "getrlimit" then (ai 0, ap 1) else (ai 1, ap 3) in
        let* cur, mx = Syscalls.prlimit64 ctx ~resource:res in
        if out <> 0 then begin
          Abi.set_i64 mem out cur;
          Abi.set_i64 mem (out + 8) mx
        end;
        ret 0L
    | "setrlimit" -> ret 0L
    | "getrusage" ->
        let* ut, st, maxrss = Syscalls.getrusage ctx ~who:(ai 0) in
        let a = ap 1 in
        Abi.write_timeval mem a ~ns:ut;
        Abi.write_timeval mem (a + 16) ~ns:st;
        Abi.set_i64 mem (a + 32) (Int64.of_int maxrss);
        ret 0L
    | "times" ->
        let t = ctx.Syscalls.t in
        let a = ap 0 in
        if a <> 0 then begin
          Abi.set_i64 mem a (Int64.div t.Task.utime 10_000_000L);
          Abi.set_i64 mem (a + 8) (Int64.div t.Task.stime 10_000_000L);
          Abi.set_i64 mem (a + 16) 0L;
          Abi.set_i64 mem (a + 24) 0L
        end;
        ret (Int64.div (Fiber.now ()) 10_000_000L)
    | "sysinfo" ->
        let uptime, procs = Syscalls.sysinfo ctx in
        let a = ap 0 in
        Abi.set_i64 mem a (Int64.div uptime 1_000_000_000L);
        Abi.set_i64 mem (a + 8) 8_589_934_592L;
        Abi.set_i64 mem (a + 16) 4_294_967_296L;
        Abi.set_i32i mem (a + 24) procs;
        ret 0L
    | "uname" ->
        let sysname, nodename, release, version, machine, domain =
          Syscalls.uname ctx
        in
        let a = ap 0 in
        List.iteri
          (fun i s -> Abi.write_cstring mem (a + (i * 65)) ~max:65 s)
          [ sysname; nodename; release; version; machine; domain ];
        ret 0L
    | "umask" -> ret (Int64.of_int (Syscalls.umask ctx ~mask:(ai 0)))
    (* ---- time ---- *)
    | "nanosleep" | "clock_nanosleep" ->
        let req = if name = "nanosleep" then ap 0 else ap 2 in
        retu (Syscalls.nanosleep ctx ~ns:(Abi.read_timespec_ns mem req))
    | "clock_gettime" ->
        Abi.write_timespec mem (ap 1) ~ns:(Syscalls.clock_gettime ctx ~clock:(ai 0));
        ret 0L
    | "clock_getres" ->
        if ap 1 <> 0 then Abi.write_timespec mem (ap 1) ~ns:1L;
        ret 0L
    | "gettimeofday" ->
        Abi.write_timeval mem (ap 0)
          ~ns:(Syscalls.clock_gettime ctx ~clock:Ktypes.clock_realtime);
        ret 0L
    | "time" ->
        let secs =
          Int64.div (Syscalls.clock_gettime ctx ~clock:Ktypes.clock_realtime)
            1_000_000_000L
        in
        if ap 0 <> 0 then Abi.set_i64 mem (ap 0) secs;
        ret secs
    (* ---- sockets ---- *)
    | "socket" -> reti (Syscalls.socket ctx ~family:(ai 0) ~stype:(ai 1))
    | "bind" | "connect" -> (
        match Abi.read_sockaddr mem ~addr:(ap 1) ~len:(ai 2) with
        | None -> err Errno.EINVAL
        | Some addr ->
            if name = "bind" then retu (Syscalls.bind ctx ~fd:(ai 0) ~addr)
            else retu (Syscalls.connect ctx ~fd:(ai 0) ~addr))
    | "listen" -> retu (Syscalls.listen ctx ~fd:(ai 0) ~backlog:(ai 1))
    | "accept" | "accept4" ->
        let* fd = Syscalls.accept ctx ~fd:(ai 0) in
        if ap 1 <> 0 && ap 2 <> 0 then begin
          let n = Abi.write_sockaddr mem ~addr:(ap 1) (Socket.A_inet (0x7F000001, 0)) in
          Abi.set_i32i mem (ap 2) n
        end;
        ret (Int64.of_int fd)
    | "sendto" ->
        let b, off = buf 1 (ai 2) in
        reti (Syscalls.write ctx ~fd:(ai 0) ~buf:b ~off ~len:(ai 2))
    | "recvfrom" ->
        let b, off = buf 1 (ai 2) in
        reti (Syscalls.read ctx ~fd:(ai 0) ~buf:b ~off ~len:(ai 2))
    | "shutdown" -> retu (Syscalls.shutdown ctx ~fd:(ai 0) ~how:(ai 1))
    | "socketpair" ->
        let* a, b = Syscalls.socketpair ctx ~family:(ai 0) in
        Abi.set_i32i mem (ap 3) a;
        Abi.set_i32i mem (ap 3 + 4) b;
        ret 0L
    | "setsockopt" ->
        let v = if ap 3 <> 0 && ai 4 >= 4 then Int32.to_int (Abi.i32 mem (ap 3)) else 0 in
        retu (Syscalls.setsockopt ctx ~fd:(ai 0) ~level:(ai 1) ~opt:(ai 2) ~value:v)
    | "getsockopt" ->
        let* v = Syscalls.getsockopt ctx ~fd:(ai 0) ~level:(ai 1) ~opt:(ai 2) in
        if ap 3 <> 0 then Abi.set_i32i mem (ap 3) v;
        if ap 4 <> 0 then Abi.set_i32i mem (ap 4) 4;
        ret 0L
    | "getsockname" | "getpeername" ->
        let n = Abi.write_sockaddr mem ~addr:(ap 1) (Socket.A_inet (0x7F000001, 0)) in
        Abi.set_i32i mem (ap 2) n;
        ret 0L
    | "sendfile" ->
        let infd = ai 1 and outfd = ai 0 and count = ai 3 in
        let tmp = Bytes.create (min count 65536) in
        let total = ref 0 in
        let rec go () =
          let want = min (Bytes.length tmp) (count - !total) in
          if want = 0 then reti (Ok !total)
          else
            match Syscalls.read ctx ~fd:infd ~buf:tmp ~off:0 ~len:want with
            | Ok 0 -> reti (Ok !total)
            | Ok n -> (
                match Syscalls.write ctx ~fd:outfd ~buf:tmp ~off:0 ~len:n with
                | Ok _ ->
                    total := !total + n;
                    go ()
                | Error e -> if !total > 0 then reti (Ok !total) else err e)
            | Error e -> if !total > 0 then reti (Ok !total) else err e
        in
        go ()
    (* ---- futex / misc ---- *)
    | "futex" ->
        let addr = ap 0 in
        let op = ai 1 land lnot Ktypes.futex_private in
        if op = Ktypes.futex_wait then begin
          let timeout_ns =
            if ap 3 = 0 then None else Some (Abi.read_timespec_ns mem (ap 3))
          in
          let load () = Abi.i32 mem addr in
          retu
            (Syscalls.futex_wait ctx ~mem_id:sh.Engine.ps_mem_id ~addr ~load
               ~expected:(Int64.to_int32 (a64 2)) ~timeout_ns)
        end
        else if op = Ktypes.futex_wake then
          ret
            (Int64.of_int
               (Syscalls.futex_wake ctx ~mem_id:sh.Engine.ps_mem_id ~addr ~n:(ai 2)))
        else err Errno.ENOSYS
    | "getrandom" ->
        let b, off = buf 0 (ai 1) in
        reti (Syscalls.getrandom ctx ~buf:b ~off ~len:(ai 1))
    | _ ->
        (* auto-generated passthrough stub (paper §5/§6) *)
        err Errno.ENOSYS
  in
  go ()

(* Collapse the Result plumbing: [Error e] from a let* chain is an errno
   return; Sys_ret carries successful encodings; failed pointer
   translation is -EFAULT, as in the raw kernel ABI. *)
let dispatch eng name m args : Rt.host_outcome =
  match dispatch_raw eng name m args with
  | Ok o -> o
  | Error e -> Rt.H_return [ Values.I64 (errno_ret e) ]
  | exception Sys_ret v -> Rt.H_return [ Values.I64 v ]
  | exception Abi.Efault -> Rt.H_return [ Values.I64 (errno_ret Errno.EFAULT) ]
  | exception Rt.Memory.Bounds ->
      Rt.H_return [ Values.I64 (errno_ret Errno.EFAULT) ]

(* ------------------------------------------------------------------ *)
(* Host function construction / resolver                                *)
(* ------------------------------------------------------------------ *)

let traced_dispatch eng name (m : Rt.machine) (args : Values.value array) :
    Rt.host_outcome =
  let p = Engine.proc_of eng m in
  (* The live path: seccomp decision + kernel dispatch. An interposer
     (record/replay) wraps this thunk — the recorder runs it and logs the
     outcome, the replayer substitutes the logged outcome for it. *)
  let live () =
    match Seccomp.check eng.Engine.policy name with
    | Seccomp.Allow -> dispatch eng name m args
    | Seccomp.Deny e -> Rt.H_return [ Values.I64 (errno_ret e) ]
    | Seccomp.Kill ->
        raise (Engine.Killed_by (Ktypes.wsignal_status Ktypes.sigsys))
  in
  let pid = p.Engine.pr_task.Task.tgid and tid = p.Engine.pr_task.Task.tid in
  let t0 = Fiber.now () in
  (match eng.Engine.observe with
  | Some o -> Observe.Sink.syscall_begin o ~pid ~tid ~name ~ts:t0
  | None -> ());
  let outcome =
    match eng.Engine.interpose with
    | Some ip -> ip.Engine.ip_dispatch eng p name m args live
    | None -> live ()
  in
  let t1 = Fiber.now () in
  let ns = Int64.sub t1 t0 in
  let result =
    match outcome with Rt.H_return [ Values.I64 r ] -> r | _ -> 0L
  in
  Strace.note eng.Engine.trace ~pid ~name
    ~args:(Array.to_list (Array.map Values.as_i64 args))
    ~result ~ns;
  (match eng.Engine.observe with
  | Some o ->
      (* When the sink shares the tracer's registry, Strace.note above
         already aggregated this call — don't count it twice. *)
      if not (Observe.Sink.metrics o == Strace.metrics eng.Engine.trace) then
        Observe.Sink.record_syscall o ~name ~result ~ns;
      Observe.Sink.syscall_end o ~pid ~tid ~name ~ts:t1 ~ns ~result
        ~stack:(fun () -> Engine.machine_stack m)
  | None -> ());
  (* Linux delivers pending signals on return to userspace from any
     syscall; mirror that by polling before handing the result back
     (complements the compiler-inserted safepoints of §3.3). Polling
     after the span closes keeps the trace well-nested even when a
     delivery terminates the process. *)
  (match outcome with
  | Rt.H_return _ -> (
      match m.Rt.poll_hook with Some f -> f m | None -> ())
  | _ -> ());
  outcome

let i64s n = List.init n (fun _ -> Types.T_i64)

let syscall_host_func eng (entry : Spec.entry) : Rt.func_inst =
  Rt.Host_func
    {
      hf_name = Spec.import_name entry.Spec.name;
      hf_type = { Types.params = i64s entry.Spec.arity; results = [ Types.T_i64 ] };
      hf_fn = (fun m args -> traced_dispatch eng entry.Spec.name m args);
    }

(* argv/env support methods (§3.4): ownership of the vectors stays in the
   application sandbox; the engine only answers sizes and copies one
   element at a time. *)
let env_host_func eng (name : string) (arity : int) : Rt.func_inst =
  let fn (m : Rt.machine) (args : Values.value array) : Rt.host_outcome =
    let p = Engine.proc_of eng m in
    let sh = p.Engine.pr_shared in
    let mem = Rt.memory0 m in
    let arg i = Int32.to_int (Values.as_i32 args.(i)) in
    let vec =
      match name with
      | "get_envc" | "get_env_len" | "copy_env" -> sh.Engine.ps_env
      | _ -> sh.Engine.ps_argv
    in
    let r =
      match name with
      | "get_argc" | "get_envc" -> Array.length vec
      | "get_argv_len" | "get_env_len" ->
          let i = arg 0 in
          if i < 0 || i >= Array.length vec then -1
          else String.length vec.(i) + 1
      | "copy_argv" | "copy_env" ->
          let b = arg 0 and i = arg 1 in
          if i < 0 || i >= Array.length vec then -1
          else begin
            (try Abi.write_cstring mem b vec.(i)
             with Abi.Efault -> ());
            String.length vec.(i) + 1
          end
      | _ -> -1
    in
    Rt.H_return [ Values.I32 (Int32.of_int r) ]
  in
  Rt.Host_func
    {
      hf_name = name;
      hf_type =
        { Types.params = List.init arity (fun _ -> Types.T_i32);
          results = [ Types.T_i32 ] };
      hf_fn = fn;
    }

let thread_spawn_host_func eng : Rt.func_inst =
  Rt.Host_func
    {
      hf_name = "thread_spawn";
      hf_type = { Types.params = [ Types.T_i32; Types.T_i32 ]; results = [ Types.T_i32 ] };
      hf_fn =
        (fun m args ->
          let p = Engine.proc_of eng m in
          (* thread_spawn creates engine structure (a fiber and a
             machine), so like fork it must be interposable: replay
             re-executes it live and validates the resulting tid. *)
          let live () =
            let tid =
              do_thread_spawn eng p m
                ~entry_idx:(Int32.to_int (Values.as_i32 args.(0)))
                ~arg:(Int32.to_int (Values.as_i32 args.(1)))
            in
            Rt.H_return [ Values.I32 (Int64.to_int32 tid) ]
          in
          match eng.Engine.interpose with
          | Some ip -> ip.Engine.ip_dispatch eng p "thread_spawn" m args live
          | None -> live ());
    }

(** The engine's import resolver for the ["wali"] namespace. *)
let resolver (eng : Engine.t) : Link.resolver =
 fun ~module_name ~name ->
  if module_name <> Spec.import_module then None
  else if name = "thread_spawn" then Some (Rt.E_func (thread_spawn_host_func eng))
  else
    match List.assoc_opt name (List.map (fun (n, a) -> (n, a)) Spec.env_methods) with
    | Some arity -> Some (Rt.E_func (env_host_func eng name arity))
    | None ->
        if String.length name > 4 && String.sub name 0 4 = "SYS_" then begin
          let sys = String.sub name 4 (String.length name - 4) in
          match Spec.find sys with
          | Some entry -> Some (Rt.E_func (syscall_host_func eng entry))
          | None -> None
        end
        else None

let () = resolver_ref := fun eng ~module_name ~name -> resolver eng ~module_name ~name

(* ------------------------------------------------------------------ *)
(* Program spawning                                                     *)
(* ------------------------------------------------------------------ *)

(** Launch a Wasm binary as the initial WALI process (with stdio on the
    console). Returns the process; its result is available once the
    scheduler drains. *)
let spawn_init (eng : Engine.t) ~(binary : string) ~(argv : string list)
    ~(env : string list) : Engine.proc =
  let name = match argv with a :: _ -> Filename.basename a | [] -> "wali-app" in
  let inst = Engine.build_image eng ~resolver:(resolver eng) ~binary ~name in
  let task = Task.make_init eng.Engine.kernel ~comm:name in
  Engine.setup_stdio eng task;
  let m = Rt.Machine.create inst in
  m.Rt.m_pid <- task.Task.tid;
  m.Rt.poll_hook <- Some (Engine.poll_hook eng);
  Engine.install_prof eng m;
  let p =
    {
      Engine.pr_task = task;
      pr_sys = Syscalls.make_ctx eng.Engine.kernel task eng.Engine.futexes;
      pr_shared = Engine.make_pshared eng ~inst ~argv ~env ~binary;
      pr_machine = Some m;
      pr_result = None;
    }
  in
  Engine.register_proc eng p;
  let entry = Rt.exported_func inst "_start" in
  ignore
    (Fiber.spawn name (fun () ->
         Engine.run_machine_body eng p m ~fresh_entry:true ~entry:(Some entry)
           ~args:[]));
  p

(** One-call convenience: boot a kernel, install the program at [path] in
    the VFS, run it to completion, return (exit_status, console output,
    result). Used by tests, examples and benches. *)
let run_program ?(kernel : Task.kernel option) ?(poll_scheme = Code.Poll_loops)
    ?(fuse = true) ?(trace : Strace.t option) ?(policy : Seccomp.t option)
    ?(observe : Observe.Sink.t option) ~(binary : string)
    ~(argv : string list) ~(env : string list) () :
    int * string * Interp.run_result option =
  let kernel = match kernel with Some k -> k | None -> Task.boot () in
  let trace = match trace with Some t -> t | None -> Strace.create () in
  let policy = match policy with Some p -> p | None -> Seccomp.allow_all () in
  let eng = Engine.create ~poll_scheme ~fuse ~trace ~policy ?observe kernel in
  let status = ref 0 in
  let result = ref None in
  (match observe with Some o -> Observe.Sink.attach o | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match observe with Some o -> Observe.Sink.detach o | None -> ())
    (fun () ->
      Fiber.run (fun () ->
          let p = spawn_init eng ~binary ~argv ~env in
          eng.Engine.on_proc_exit <-
            Some
              (fun q st ->
                if q == p then begin
                  status := st;
                  result := q.Engine.pr_result
                end)));
  (!status, Task.console_output kernel, !result)
