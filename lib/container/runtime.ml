(** Mini container runtime (the Docker analogue for Fig 8).

    [create] does what `docker run` does before the entrypoint executes:
    materialize the image layers into a private rootfs inside the VFS
    (union copy-up), set up namespaces and cgroup accounting, create the
    container's /etc state. This is real work proportional to the image,
    which is why containers pay a large startup intercept and base memory
    cost; the runtime-phase execution is native speed. *)

open Kernel

type cgroup = {
  mutable cg_mem_bytes : int;
  mutable cg_mem_peak : int;
  mutable cg_cpu_ns : int64;
  cg_mem_limit : int;
}

type t = {
  ct_name : string;
  ct_root : Vfs.inode; (* private rootfs *)
  ct_cgroup : cgroup;
  ct_pidns_base : int;
  mutable ct_layers_materialized : int;
  mutable ct_bytes_copied : int;
  mutable ct_state : [ `Created | `Running | `Exited of int ];
}

let charge cg n =
  cg.cg_mem_bytes <- cg.cg_mem_bytes + n;
  if cg.cg_mem_bytes > cg.cg_mem_peak then cg.cg_mem_peak <- cg.cg_mem_bytes

(** Materialize one layer into the container rootfs (copy-up). *)
let apply_layer (k : Task.kernel) (root : Vfs.inode) (cg : cgroup)
    (l : Image.layer) : int =
  let copied = ref 0 in
  let fs = k.Task.fs in
  List.iter
    (fun d ->
      let rec ensure (cur : Vfs.inode) = function
        | [] -> cur
        | seg :: rest -> (
            match Vfs.lookup cur seg with
            | Some i -> ensure i rest
            | None -> (
                match Vfs.mkdir fs cur seg ~mode:0o755 with
                | Ok i ->
                    copied := !copied + 128;
                    ensure i rest
                | Error _ -> cur))
      in
      ignore (ensure root (Vfs.split_path d)))
    l.Image.l_dirs;
  List.iter
    (fun path ->
      match Vfs.resolve_parent fs ~cwd:root path with
      | Ok (dir, name) -> ignore (Vfs.unlink fs dir name)
      | Error _ -> ())
    l.Image.l_whiteouts;
  List.iter
    (fun (path, contents) ->
      match Vfs.resolve_parent fs ~cwd:root path with
      | Ok (dir, name) -> (
          (match Vfs.lookup dir name with
          | Some _ -> ignore (Vfs.unlink fs dir name)
          | None -> ());
          match Vfs.create_file fs dir name ~mode:0o755 with
          | Ok node -> (
              match node.Vfs.kind with
              | Vfs.Reg b ->
                  (* the actual copy-up: bytes move *)
                  Bytebuf.pwrite b ~off:0 ~src:(Bytes.of_string contents)
                    ~src_off:0 ~len:(String.length contents);
                  copied := !copied + String.length contents
              | _ -> ())
          | Error _ -> ())
      | Error _ -> ())
    l.Image.l_files;
  charge cg !copied;
  !copied

let next_pidns = ref 10_000

(** `docker create` + namespace/cgroup setup. *)
let create (k : Task.kernel) ~(name : string) (img : Image.t)
    ?(mem_limit = 1 lsl 30) () : t =
  let fs = k.Task.fs in
  (* private rootfs under /var/lib/containers/<name> *)
  let root = Vfs.mkdir_p fs ("/var/lib/containers/" ^ name ^ "/rootfs") in
  let cg =
    { cg_mem_bytes = 0; cg_mem_peak = 0; cg_cpu_ns = 0L; cg_mem_limit = mem_limit }
  in
  let ct =
    {
      ct_name = name;
      ct_root = root;
      ct_cgroup = cg;
      ct_pidns_base = (incr next_pidns; !next_pidns);
      ct_layers_materialized = 0;
      ct_bytes_copied = 0;
      ct_state = `Created;
    }
  in
  (* layer materialization: the dominant startup cost *)
  List.iter
    (fun l ->
      ct.ct_bytes_copied <- ct.ct_bytes_copied + apply_layer k root cg l;
      ct.ct_layers_materialized <- ct.ct_layers_materialized + 1)
    img.Image.layers;
  (* per-container /etc state, DNS, hostname — runtime-generated files *)
  let write path contents =
    match Vfs.resolve_parent fs ~cwd:root path with
    | Ok (dir, nm) -> (
        (match Vfs.lookup dir nm with
        | Some _ -> ignore (Vfs.unlink fs dir nm)
        | None -> ());
        match Vfs.create_file fs dir nm ~mode:0o644 with
        | Ok node -> (
            match node.Vfs.kind with
            | Vfs.Reg b ->
                Bytebuf.pwrite b ~off:0 ~src:(Bytes.of_string contents)
                  ~src_off:0 ~len:(String.length contents)
            | _ -> ())
        | Error _ -> ())
    | Error _ -> ()
  in
  write "/etc/hostname" (name ^ "\n");
  write "/etc/hosts" ("127.0.0.1 localhost " ^ name ^ "\n");
  (* namespace bookkeeping: private pid numbering base, mount table entry *)
  ignore (Vfs.mkdir_p fs ("/sys/fs/cgroup/" ^ name));
  write ("/../../../sys/fs/cgroup/" ^ name ^ "/memory.max") (string_of_int mem_limit);
  ct

(** Enter the container: chroot the task into the private rootfs and
    mark it running. The caller then executes the workload natively. *)
let enter (ct : t) (task : Task.t) : unit =
  task.Task.cwd <- ct.ct_root;
  ct.ct_state <- `Running

let finish (ct : t) ~(status : int) : unit = ct.ct_state <- `Exited status

(** Base memory consumed by the container before the app allocates
    anything: the materialized layers plus runtime structures. *)
let base_memory (ct : t) : int = ct.ct_cgroup.cg_mem_peak + 2_000_000

(** Tear down: remove the private rootfs (docker rm). *)
let destroy (k : Task.kernel) (ct : t) : unit =
  let fs = k.Task.fs in
  match Vfs.resolve fs ~cwd:fs.Vfs.root ("/var/lib/containers/" ^ ct.ct_name) with
  | Ok dir -> (
      match Vfs.resolve_parent fs ~cwd:fs.Vfs.root ("/var/lib/containers/" ^ ct.ct_name) with
      | Ok (parent, name) ->
          ignore dir;
          let rec rm_rf (d : Vfs.inode) =
            match d.Vfs.kind with
            | Vfs.Dir dd ->
                Hashtbl.iter (fun _ c -> rm_rf c) dd.Vfs.entries;
                Hashtbl.reset dd.Vfs.entries
            | _ -> ()
          in
          rm_rf dir;
          ignore (Vfs.rmdir fs parent name)
      | Error _ -> ())
  | Error _ -> ()
