(** The kernel syscall ABI: typed entry points operating on native OCaml
    values. The WALI layer (and the RV32 ecall bridge, and the MiniC
    native backend) marshal their guests' memory into these calls — this
    module is the boundary that plays the role of Linux's syscall table. *)

open Ktypes

type ctx = { k : Task.kernel; t : Task.t; futexes : Futex.t }

let make_ctx k t futexes = { k; t; futexes }

let count ctx = ctx.k.Task.syscall_count <- Int64.add ctx.k.Task.syscall_count 1L

(* Always-on kernel counters (observability): cheap inline tallies read
   out by the sink at dump time. *)
let kstats ctx = ctx.k.Task.stats
let vfs_op ctx op = Observe.Metrics.vfs_op (kstats ctx) op

(* Track the fd-table high-water mark on every fd-returning path. *)
let noting ctx (r : int Errno.result) : int Errno.result =
  (match r with
  | Ok fd -> Observe.Metrics.note_fd (kstats ctx) fd
  | Error _ -> ());
  r

let tally_pipe ctx (r : int Errno.result) : int Errno.result =
  (match r with
  | Ok n when n > 0 ->
      let s = kstats ctx in
      s.Observe.Metrics.pipe_bytes <-
        Int64.add s.Observe.Metrics.pipe_bytes (Int64.of_int n)
  | _ -> ());
  r

let tally_sock ctx (r : int Errno.result) : int Errno.result =
  (match r with
  | Ok n when n > 0 ->
      let s = kstats ctx in
      s.Observe.Metrics.sock_bytes <-
        Int64.add s.Observe.Metrics.sock_bytes (Int64.of_int n)
  | _ -> ());
  r

let nonblock_of d = d.Fdtab.d_flags land o_nonblock <> 0

(* ------------------------------------------------------------------ *)
(* fd-level read/write dispatch                                         *)
(* ------------------------------------------------------------------ *)

let desc_read ctx (d : Fdtab.desc) buf off len : int Errno.result =
  let intr = ctx.t.Task.intr in
  let nonblock = nonblock_of d in
  match d.Fdtab.d_kind with
  | Fdtab.F_inode i -> (
      match i.Vfs.kind with
      | Vfs.Reg b ->
          let n = Bytebuf.pread b ~off:d.Fdtab.d_pos ~dst:buf ~dst_off:off ~len in
          d.Fdtab.d_pos <- d.Fdtab.d_pos + n;
          Ok n
      | Vfs.Dir _ -> Error Errno.EISDIR
      | Vfs.Fifo p -> tally_pipe ctx (Pipe.read p ~intr ~nonblock buf off len)
      | Vfs.Chardev cd -> cd.Vfs.cd_read ~intr ~nonblock buf off len
      | Vfs.Symlink _ | Vfs.Gen _ -> Error Errno.EINVAL)
  | Fdtab.F_gen s ->
      let avail = String.length s - d.Fdtab.d_pos in
      if avail <= 0 then Ok 0
      else begin
        let n = min len avail in
        Bytes.blit_string s d.Fdtab.d_pos buf off n;
        d.Fdtab.d_pos <- d.Fdtab.d_pos + n;
        Ok n
      end
  | Fdtab.F_pipe_r p -> tally_pipe ctx (Pipe.read p ~intr ~nonblock buf off len)
  | Fdtab.F_pipe_w _ -> Error Errno.EBADF
  | Fdtab.F_fifo (p, has_r, _) ->
      if has_r then tally_pipe ctx (Pipe.read p ~intr ~nonblock buf off len)
      else Error Errno.EBADF
  | Fdtab.F_chardev cd -> cd.Vfs.cd_read ~intr ~nonblock buf off len
  | Fdtab.F_sock s -> tally_sock ctx (Socket.read s ~intr ~nonblock buf off len)

let desc_write ctx (d : Fdtab.desc) buf off len : int Errno.result =
  let intr = ctx.t.Task.intr in
  let nonblock = nonblock_of d in
  let sigpipe_wrap r =
    match r with
    | Error Errno.EPIPE ->
        Task.post_to_thread ctx.k ctx.t sigpipe;
        r
    | _ -> r
  in
  match d.Fdtab.d_kind with
  | Fdtab.F_inode i -> (
      match i.Vfs.kind with
      | Vfs.Reg b ->
          let pos =
            if d.Fdtab.d_flags land o_append <> 0 then Bytebuf.length b
            else d.Fdtab.d_pos
          in
          Bytebuf.pwrite b ~off:pos ~src:buf ~src_off:off ~len;
          d.Fdtab.d_pos <- pos + len;
          i.Vfs.mtime <- Fiber.now ();
          Ok len
      | Vfs.Dir _ -> Error Errno.EISDIR
      | Vfs.Fifo p ->
          tally_pipe ctx (sigpipe_wrap (Pipe.write p ~intr ~nonblock buf off len))
      | Vfs.Chardev cd -> cd.Vfs.cd_write buf off len
      | Vfs.Symlink _ | Vfs.Gen _ -> Error Errno.EINVAL)
  | Fdtab.F_gen _ -> Error Errno.EACCES
  | Fdtab.F_pipe_r _ -> Error Errno.EBADF
  | Fdtab.F_pipe_w p ->
      tally_pipe ctx (sigpipe_wrap (Pipe.write p ~intr ~nonblock buf off len))
  | Fdtab.F_fifo (p, _, has_w) ->
      if has_w then
        tally_pipe ctx (sigpipe_wrap (Pipe.write p ~intr ~nonblock buf off len))
      else Error Errno.EBADF
  | Fdtab.F_chardev cd -> cd.Vfs.cd_write buf off len
  | Fdtab.F_sock s ->
      tally_sock ctx (sigpipe_wrap (Socket.write s ~intr ~nonblock buf off len))

let with_fd ctx fd f =
  match Fdtab.get ctx.t.Task.fdtab fd with
  | None -> Error Errno.EBADF
  | Some d -> f d

(* ------------------------------------------------------------------ *)
(* I/O syscalls                                                         *)
(* ------------------------------------------------------------------ *)

let read ctx ~fd ~buf ~off ~len : int Errno.result =
  count ctx;
  if len < 0 then Error Errno.EINVAL
  else with_fd ctx fd (fun d -> desc_read ctx d buf off len)

let write ctx ~fd ~buf ~off ~len : int Errno.result =
  count ctx;
  if len < 0 then Error Errno.EINVAL
  else with_fd ctx fd (fun d -> desc_write ctx d buf off len)

let pread64 ctx ~fd ~buf ~off ~len ~pos : int Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      match d.Fdtab.d_kind with
      | Fdtab.F_inode { Vfs.kind = Vfs.Reg b; _ } ->
          Ok (Bytebuf.pread b ~off:pos ~dst:buf ~dst_off:off ~len)
      | Fdtab.F_gen s ->
          if pos >= String.length s then Ok 0
          else begin
            let n = min len (String.length s - pos) in
            Bytes.blit_string s pos buf off n;
            Ok n
          end
      | _ -> Error Errno.ESPIPE)

let pwrite64 ctx ~fd ~buf ~off ~len ~pos : int Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      match d.Fdtab.d_kind with
      | Fdtab.F_inode ({ Vfs.kind = Vfs.Reg b; _ } as i) ->
          Bytebuf.pwrite b ~off:pos ~src:buf ~src_off:off ~len;
          i.Vfs.mtime <- Fiber.now ();
          Ok len
      | _ -> Error Errno.ESPIPE)

let lseek ctx ~fd ~offset ~whence : int Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      match d.Fdtab.d_kind with
      | Fdtab.F_inode { Vfs.kind = Vfs.Reg b; _ } ->
          let base =
            if whence = seek_set then 0
            else if whence = seek_cur then d.Fdtab.d_pos
            else if whence = seek_end then Bytebuf.length b
            else -1
          in
          if base < 0 then Error Errno.EINVAL
          else begin
            let np = base + offset in
            if np < 0 then Error Errno.EINVAL
            else begin
              d.Fdtab.d_pos <- np;
              Ok np
            end
          end
      | Fdtab.F_gen s ->
          let base =
            if whence = seek_set then 0
            else if whence = seek_cur then d.Fdtab.d_pos
            else String.length s
          in
          let np = base + offset in
          if np < 0 then Error Errno.EINVAL
          else begin
            d.Fdtab.d_pos <- np;
            Ok np
          end
      | Fdtab.F_inode { Vfs.kind = Vfs.Dir _; _ } ->
          if offset = 0 && whence = seek_set then begin
            d.Fdtab.d_dir_cookie <- 0;
            Ok 0
          end
          else Error Errno.EINVAL
      | _ -> Error Errno.ESPIPE)

(* ------------------------------------------------------------------ *)
(* open / close / stat                                                  *)
(* ------------------------------------------------------------------ *)

(* dirfd = AT_FDCWD (-100) resolves relative to cwd. *)
let at_fdcwd = -100

let dir_base ctx dirfd path : (Vfs.inode, Errno.t) result =
  if String.length path > 0 && path.[0] = '/' then Ok ctx.k.Task.fs.Vfs.root
  else if dirfd = at_fdcwd then Ok ctx.t.Task.cwd
  else
    match Fdtab.get ctx.t.Task.fdtab dirfd with
    | Some { Fdtab.d_kind = Fdtab.F_inode i; _ } when Vfs.is_dir i -> Ok i
    | Some _ -> Error Errno.ENOTDIR
    | None -> Error Errno.EBADF

let ( let* ) = Result.bind

let openat ctx ~dirfd ~path ~flags ~mode : int Errno.result =
  count ctx;
  vfs_op ctx "open";
  let* base = dir_base ctx dirfd path in
  let fs = ctx.k.Task.fs in
  let follow = true in
  let node =
    match Vfs.resolve fs ~cwd:base ~follow path with
    | Ok i ->
        if flags land o_creat <> 0 && flags land o_excl <> 0 then
          Error Errno.EEXIST
        else Ok i
    | Error Errno.ENOENT when flags land o_creat <> 0 ->
        let* parent, name = Vfs.resolve_parent fs ~cwd:base path in
        Vfs.create_file fs parent name
          ~mode:(mode land lnot ctx.t.Task.umask)
    | Error _ as e -> e
  in
  let* node = node in
  if flags land o_directory <> 0 && not (Vfs.is_dir node) then
    Error Errno.ENOTDIR
  else begin
    let* kind =
      match node.Vfs.kind with
      | Vfs.Reg b ->
          if flags land o_trunc <> 0 && flags land o_accmode <> o_rdonly then
            Bytebuf.truncate b 0;
          Ok (Fdtab.F_inode node)
      | Vfs.Dir _ ->
          if flags land o_accmode <> o_rdonly then Error Errno.EISDIR
          else Ok (Fdtab.F_inode node)
      | Vfs.Chardev _ -> Ok (Fdtab.F_inode node)
      | Vfs.Gen g -> Ok (Fdtab.F_gen (g ()))
      | Vfs.Fifo p ->
          let acc = flags land o_accmode in
          let r = acc = o_rdonly || acc = o_rdwr in
          let w = acc = o_wronly || acc = o_rdwr in
          if r then Pipe.add_reader p;
          if w then Pipe.add_writer p;
          Ok (Fdtab.F_fifo (p, r, w))
      | Vfs.Symlink _ -> Error Errno.ELOOP
    in
    let d = Fdtab.mk_desc ~flags ~path kind in
    noting ctx
      (Fdtab.install ~cloexec:(flags land o_cloexec <> 0) ctx.t.Task.fdtab d)
  end

let close ctx ~fd : unit Errno.result =
  count ctx;
  Fdtab.close ~sock_registry:ctx.k.Task.sockets ctx.t.Task.fdtab fd

let stat_path ctx ~dirfd ~path ~follow : stat Errno.result =
  count ctx;
  vfs_op ctx "stat";
  let* base = dir_base ctx dirfd path in
  let* node = Vfs.resolve ctx.k.Task.fs ~cwd:base ~follow path in
  Ok (Vfs.stat_of node)

let fstat ctx ~fd : stat Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      match d.Fdtab.d_kind with
      | Fdtab.F_inode i -> Ok (Vfs.stat_of i)
      | Fdtab.F_gen s ->
          Ok
            {
              st_dev = 0; st_ino = 0; st_mode = s_ifreg lor 0o444; st_nlink = 1;
              st_uid = 0; st_gid = 0; st_rdev = 0;
              st_size = Int64.of_int (String.length s); st_blksize = 4096;
              st_blocks = 0L; st_atime_ns = 0L; st_mtime_ns = 0L;
              st_ctime_ns = 0L;
            }
      | Fdtab.F_pipe_r _ | Fdtab.F_pipe_w _ | Fdtab.F_fifo _ ->
          Ok
            {
              st_dev = 0; st_ino = 0; st_mode = s_ififo lor 0o600; st_nlink = 1;
              st_uid = ctx.t.Task.uid; st_gid = ctx.t.Task.gid; st_rdev = 0;
              st_size = 0L; st_blksize = 4096; st_blocks = 0L;
              st_atime_ns = 0L; st_mtime_ns = 0L; st_ctime_ns = 0L;
            }
      | Fdtab.F_chardev _ ->
          Ok
            {
              st_dev = 0; st_ino = 0; st_mode = s_ifchr lor 0o666; st_nlink = 1;
              st_uid = 0; st_gid = 0; st_rdev = 0x8801; st_size = 0L;
              st_blksize = 1024; st_blocks = 0L; st_atime_ns = 0L;
              st_mtime_ns = 0L; st_ctime_ns = 0L;
            }
      | Fdtab.F_sock _ ->
          Ok
            {
              st_dev = 0; st_ino = 0; st_mode = s_ifsock lor 0o777;
              st_nlink = 1; st_uid = ctx.t.Task.uid; st_gid = ctx.t.Task.gid;
              st_rdev = 0; st_size = 0L; st_blksize = 4096; st_blocks = 0L;
              st_atime_ns = 0L; st_mtime_ns = 0L; st_ctime_ns = 0L;
            })

let ftruncate ctx ~fd ~len : unit Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      match d.Fdtab.d_kind with
      | Fdtab.F_inode { Vfs.kind = Vfs.Reg b; _ } ->
          if len < 0 then Error Errno.EINVAL
          else begin
            Bytebuf.truncate b len;
            Ok ()
          end
      | _ -> Error Errno.EINVAL)

let fsync ctx ~fd : unit Errno.result =
  count ctx;
  with_fd ctx fd (fun _ -> Ok ())

let faccessat ctx ~dirfd ~path ~amode : unit Errno.result =
  count ctx;
  ignore amode;
  let* base = dir_base ctx dirfd path in
  let* _ = Vfs.resolve ctx.k.Task.fs ~cwd:base path in
  Ok ()

(* ------------------------------------------------------------------ *)
(* Directory operations                                                 *)
(* ------------------------------------------------------------------ *)

let mkdirat ctx ~dirfd ~path ~mode : unit Errno.result =
  count ctx;
  vfs_op ctx "mkdir";
  let* base = dir_base ctx dirfd path in
  let* parent, name = Vfs.resolve_parent ctx.k.Task.fs ~cwd:base path in
  let* _ = Vfs.mkdir ctx.k.Task.fs parent name ~mode:(mode land lnot ctx.t.Task.umask) in
  Ok ()

let unlinkat ctx ~dirfd ~path ~rmdir_flag : unit Errno.result =
  count ctx;
  vfs_op ctx (if rmdir_flag then "rmdir" else "unlink");
  let* base = dir_base ctx dirfd path in
  let* parent, name = Vfs.resolve_parent ctx.k.Task.fs ~cwd:base path in
  if rmdir_flag then Vfs.rmdir ctx.k.Task.fs parent name else Vfs.unlink ctx.k.Task.fs parent name

let linkat ctx ~olddirfd ~oldpath ~newdirfd ~newpath : unit Errno.result =
  count ctx;
  vfs_op ctx "link";
  let* obase = dir_base ctx olddirfd oldpath in
  let* target = Vfs.resolve ctx.k.Task.fs ~cwd:obase oldpath in
  let* nbase = dir_base ctx newdirfd newpath in
  let* parent, name = Vfs.resolve_parent ctx.k.Task.fs ~cwd:nbase newpath in
  Vfs.link ctx.k.Task.fs parent name target

let symlinkat ctx ~target ~dirfd ~path : unit Errno.result =
  count ctx;
  vfs_op ctx "symlink";
  let* base = dir_base ctx dirfd path in
  let* parent, name = Vfs.resolve_parent ctx.k.Task.fs ~cwd:base path in
  let* _ = Vfs.symlink ctx.k.Task.fs parent name ~target in
  Ok ()

let readlinkat ctx ~dirfd ~path : string Errno.result =
  count ctx;
  vfs_op ctx "readlink";
  let* base = dir_base ctx dirfd path in
  let* node = Vfs.resolve ctx.k.Task.fs ~cwd:base ~follow:false path in
  match node.Vfs.kind with
  | Vfs.Symlink s -> Ok s
  | _ -> Error Errno.EINVAL

let renameat ctx ~olddirfd ~oldpath ~newdirfd ~newpath : unit Errno.result =
  count ctx;
  vfs_op ctx "rename";
  let* obase = dir_base ctx olddirfd oldpath in
  let* sdir, sname = Vfs.resolve_parent ctx.k.Task.fs ~cwd:obase oldpath in
  let* nbase = dir_base ctx newdirfd newpath in
  let* ddir, dname = Vfs.resolve_parent ctx.k.Task.fs ~cwd:nbase newpath in
  Vfs.rename ctx.k.Task.fs sdir sname ddir dname

let chdir ctx ~path : unit Errno.result =
  count ctx;
  let* node = Vfs.resolve ctx.k.Task.fs ~cwd:ctx.t.Task.cwd path in
  if Vfs.is_dir node then begin
    ctx.t.Task.cwd <- node;
    Ok ()
  end
  else Error Errno.ENOTDIR

let fchdir ctx ~fd : unit Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      match d.Fdtab.d_kind with
      | Fdtab.F_inode i when Vfs.is_dir i ->
          ctx.t.Task.cwd <- i;
          Ok ()
      | _ -> Error Errno.ENOTDIR)

let getcwd ctx : string Errno.result =
  count ctx;
  Ok (Vfs.path_of ctx.k.Task.fs ctx.t.Task.cwd)

let fchmodat ctx ~dirfd ~path ~mode : unit Errno.result =
  count ctx;
  let* base = dir_base ctx dirfd path in
  let* node = Vfs.resolve ctx.k.Task.fs ~cwd:base path in
  node.Vfs.mode <- mode land 0o7777;
  node.Vfs.ctime <- Fiber.now ();
  Ok ()

let fchownat ctx ~dirfd ~path ~uid ~gid : unit Errno.result =
  count ctx;
  let* base = dir_base ctx dirfd path in
  let* node = Vfs.resolve ctx.k.Task.fs ~cwd:base path in
  if ctx.t.Task.euid <> 0 && ctx.t.Task.euid <> node.Vfs.uid then
    Error Errno.EPERM
  else begin
    if uid >= 0 then node.Vfs.uid <- uid;
    if gid >= 0 then node.Vfs.gid <- gid;
    Ok ()
  end

(** getdents64: up to [max] entries starting at the fd's cookie. *)
let getdents ctx ~fd ~max : (string * int * int) list Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      match d.Fdtab.d_kind with
      | Fdtab.F_inode i when Vfs.is_dir i ->
          let all = Vfs.readdir i in
          let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
          let rec take n l =
            if n = 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r
          in
          let slice = take max (drop d.Fdtab.d_dir_cookie all) in
          d.Fdtab.d_dir_cookie <- d.Fdtab.d_dir_cookie + List.length slice;
          Ok slice
      | _ -> Error Errno.ENOTDIR)

let utimensat ctx ~dirfd ~path ~atime_ns ~mtime_ns : unit Errno.result =
  count ctx;
  let* base = dir_base ctx dirfd path in
  let* node = Vfs.resolve ctx.k.Task.fs ~cwd:base path in
  node.Vfs.atime <- atime_ns;
  node.Vfs.mtime <- mtime_ns;
  Ok ()

(* ------------------------------------------------------------------ *)
(* dup / fcntl / ioctl / pipe                                           *)
(* ------------------------------------------------------------------ *)

let dup ctx ~fd : int Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      Fdtab.incref d;
      noting ctx (Fdtab.install ctx.t.Task.fdtab d))

let dup3 ctx ~fd ~newfd ~cloexec : int Errno.result =
  count ctx;
  if fd = newfd then
    if Fdtab.get ctx.t.Task.fdtab fd = None then Error Errno.EBADF else Ok fd
  else
    with_fd ctx fd (fun d ->
        Fdtab.incref d;
        noting ctx
          (Fdtab.install_at ~cloexec ~sock_registry:ctx.k.Task.sockets
             ctx.t.Task.fdtab newfd d))

let fcntl ctx ~fd ~cmd ~arg : int Errno.result =
  count ctx;
  match Fdtab.get_entry ctx.t.Task.fdtab fd with
  | None -> Error Errno.EBADF
  | Some e ->
      let d = e.Fdtab.e_desc in
      if cmd = f_dupfd || cmd = f_dupfd_cloexec then begin
        Fdtab.incref d;
        noting ctx
          (Fdtab.install ~from:arg ~cloexec:(cmd = f_dupfd_cloexec)
             ctx.t.Task.fdtab d)
      end
      else if cmd = f_getfd then Ok (if e.Fdtab.e_cloexec then fd_cloexec else 0)
      else if cmd = f_setfd then begin
        e.Fdtab.e_cloexec <- arg land fd_cloexec <> 0;
        Ok 0
      end
      else if cmd = f_getfl then Ok d.Fdtab.d_flags
      else if cmd = f_setfl then begin
        (* Only O_APPEND and O_NONBLOCK are mutable. *)
        let keep = d.Fdtab.d_flags land lnot (o_append lor o_nonblock) in
        d.Fdtab.d_flags <- keep lor (arg land (o_append lor o_nonblock));
        Ok 0
      end
      else Error Errno.EINVAL

let ioctl ctx ~fd ~request : int Errno.result =
  count ctx;
  with_fd ctx fd (fun d ->
      if request = tiocgwinsz then
        match d.Fdtab.d_kind with
        | Fdtab.F_inode { Vfs.kind = Vfs.Chardev _; _ } | Fdtab.F_chardev _ ->
            Ok 0 (* caller fills 80x24 via the WALI layer *)
        | _ -> Error Errno.ENOTTY
      else if request = fionread then
        match d.Fdtab.d_kind with
        | Fdtab.F_pipe_r p | Fdtab.F_fifo (p, true, _) -> Ok (Pipe.available p)
        | Fdtab.F_sock s -> (
            match s.Socket.state with
            | Socket.S_connected c -> Ok (Pipe.available c.Socket.rx)
            | _ -> Ok 0)
        | _ -> Ok 0
      else Error Errno.EINVAL)

let pipe2 ctx ~flags : (int * int) Errno.result =
  count ctx;
  let p = Pipe.create () in
  let cloexec = flags land o_cloexec <> 0 in
  let dr = Fdtab.mk_desc ~flags:(flags land o_nonblock) (Fdtab.F_pipe_r p) in
  let dw = Fdtab.mk_desc ~flags:(flags land o_nonblock) (Fdtab.F_pipe_w p) in
  let* r = noting ctx (Fdtab.install ~cloexec ctx.t.Task.fdtab dr) in
  let* w = noting ctx (Fdtab.install ~cloexec ctx.t.Task.fdtab dw) in
  Ok (r, w)

(* ------------------------------------------------------------------ *)
(* poll                                                                 *)
(* ------------------------------------------------------------------ *)

let desc_poll_bits (d : Fdtab.desc) : int =
  match d.Fdtab.d_kind with
  | Fdtab.F_inode i -> (
      match i.Vfs.kind with
      | Vfs.Reg _ | Vfs.Dir _ -> pollin lor pollout
      | Vfs.Fifo p -> Pipe.poll_read p lor Pipe.poll_write p
      | Vfs.Chardev cd -> cd.Vfs.cd_poll ()
      | Vfs.Symlink _ | Vfs.Gen _ -> pollin)
  | Fdtab.F_gen _ -> pollin
  | Fdtab.F_pipe_r p -> Pipe.poll_read p
  | Fdtab.F_pipe_w p -> Pipe.poll_write p
  | Fdtab.F_fifo (p, r, w) ->
      (if r then Pipe.poll_read p else 0) lor if w then Pipe.poll_write p else 0
  | Fdtab.F_chardev cd -> cd.Vfs.cd_poll ()
  | Fdtab.F_sock s -> Socket.poll_bits s

let poll_tick_ns = 200_000L (* virtual re-check interval *)

(** poll(2). [fds] is (fd, events) list; returns revents per entry and the
    ready count. [timeout_ms] < 0 means infinite. *)
let poll ctx ~(fds : (int * int) list) ~timeout_ms :
    (int * int list) Errno.result =
  count ctx;
  let deadline =
    if timeout_ms < 0 then None
    else Some (Int64.add (Fiber.now ()) (Int64.mul (Int64.of_int timeout_ms) 1_000_000L))
  in
  let dummy : unit Waitq.t = Waitq.create () in
  let rec go () =
    let revents =
      List.map
        (fun (fd, events) ->
          match Fdtab.get ctx.t.Task.fdtab fd with
          | None -> if fd < 0 then 0 else pollnval
          | Some d ->
              let bits = desc_poll_bits d in
              bits land (events lor pollerr lor pollhup lor pollnval))
        fds
    in
    let ready = List.length (List.filter (fun r -> r <> 0) revents) in
    if ready > 0 then Ok (ready, revents)
    else begin
      let expired =
        match deadline with
        | Some dl -> Int64.compare (Fiber.now ()) dl >= 0
        | None -> false
      in
      if expired || timeout_ms = 0 then Ok (0, revents)
      else begin
        let remaining =
          match deadline with
          | Some dl -> min poll_tick_ns (Int64.sub dl (Fiber.now ()))
          | None -> poll_tick_ns
        in
        match Waitq.wait ~timeout_ns:remaining ~intr:ctx.t.Task.intr dummy with
        | Waitq.Interrupted -> Error Errno.EINTR
        | Waitq.Timeout | Waitq.Woken () -> go ()
      end
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Sockets                                                              *)
(* ------------------------------------------------------------------ *)

let socket ctx ~family ~stype : int Errno.result =
  count ctx;
  if family <> af_unix && family <> af_inet then Error Errno.EAFNOSUPPORT
  else if stype land 0xff <> sock_stream then Error Errno.EPROTONOSUPPORT
  else begin
    let s = Socket.create ~family in
    let d = Fdtab.mk_desc (Fdtab.F_sock s) in
    noting ctx (Fdtab.install ctx.t.Task.fdtab d)
  end

let with_sock ctx fd f =
  with_fd ctx fd (fun d ->
      match d.Fdtab.d_kind with
      | Fdtab.F_sock s -> f d s
      | _ -> Error Errno.ENOTSOCK)

let bind ctx ~fd ~addr : unit Errno.result =
  count ctx;
  with_sock ctx fd (fun _ s -> Socket.bind ctx.k.Task.sockets s addr)

let listen ctx ~fd ~backlog : unit Errno.result =
  count ctx;
  with_sock ctx fd (fun _ s -> Socket.listen ctx.k.Task.sockets s ~backlog)

let accept ctx ~fd : int Errno.result =
  count ctx;
  with_sock ctx fd (fun d s ->
      let* peer = Socket.accept s ~intr:ctx.t.Task.intr ~nonblock:(nonblock_of d) in
      let nd = Fdtab.mk_desc (Fdtab.F_sock peer) in
      noting ctx (Fdtab.install ctx.t.Task.fdtab nd))

let connect ctx ~fd ~addr : unit Errno.result =
  count ctx;
  with_sock ctx fd (fun _ s ->
      Socket.connect ctx.k.Task.sockets s addr ~intr:ctx.t.Task.intr)

let shutdown ctx ~fd ~how : unit Errno.result =
  count ctx;
  with_sock ctx fd (fun _ s -> Socket.shutdown s how)

let socketpair ctx ~family : (int * int) Errno.result =
  count ctx;
  let a, b = Socket.pair ~family in
  let* fa =
    noting ctx (Fdtab.install ctx.t.Task.fdtab (Fdtab.mk_desc (Fdtab.F_sock a)))
  in
  let* fb =
    noting ctx (Fdtab.install ctx.t.Task.fdtab (Fdtab.mk_desc (Fdtab.F_sock b)))
  in
  Ok (fa, fb)

let setsockopt ctx ~fd ~level ~opt ~value : unit Errno.result =
  count ctx;
  with_sock ctx fd (fun _ s ->
      Hashtbl.replace s.Socket.opts (level, opt) value;
      Ok ())

let getsockopt ctx ~fd ~level ~opt : int Errno.result =
  count ctx;
  with_sock ctx fd (fun _ s ->
      Ok (Option.value (Hashtbl.find_opt s.Socket.opts (level, opt)) ~default:0))

(* ------------------------------------------------------------------ *)
(* Signals                                                              *)
(* ------------------------------------------------------------------ *)

let rt_sigaction ctx ~signo ~(action : sigaction option) :
    sigaction Errno.result =
  count ctx;
  if signo < 1 || signo > nsig || signo = sigkill || signo = sigstop then
    if action = None && signo >= 1 && signo <= nsig then
      Ok ctx.t.Task.group.Task.actions.(signo)
    else Error Errno.EINVAL
  else begin
    let old = ctx.t.Task.group.Task.actions.(signo) in
    (match action with
    | Some a -> ctx.t.Task.group.Task.actions.(signo) <- a
    | None -> ());
    Ok old
  end

let rt_sigprocmask ctx ~how ~(set : Sigset.t option) : Sigset.t Errno.result =
  count ctx;
  let old = ctx.t.Task.sigmask in
  (match set with
  | Some s ->
      let s = Sigset.remove (Sigset.remove s sigkill) sigstop in
      if how = sig_block then ctx.t.Task.sigmask <- Sigset.union old s
      else if how = sig_unblock then ctx.t.Task.sigmask <- Sigset.diff old s
      else if how = sig_setmask then ctx.t.Task.sigmask <- s
  | None -> ());
  Ok old

let rt_sigpending ctx : Sigset.t Errno.result =
  count ctx;
  Ok (Sigset.inter
        (Sigset.union ctx.t.Task.pending ctx.t.Task.group.Task.group_pending)
        ctx.t.Task.sigmask)

let kill ctx ~pid ~signo : unit Errno.result =
  count ctx;
  Task.kill ctx.k ctx.t ~pid ~signo

let tkill ctx ~tid ~signo : unit Errno.result =
  count ctx;
  match Task.find ctx.k tid with
  | Some t when t.Task.state = Task.Running ->
      if signo <> 0 then Task.post_to_thread ctx.k t signo;
      Ok ()
  | _ -> Error Errno.ESRCH

let alarm ctx ~seconds : int Errno.result =
  count ctx;
  let t = ctx.t in
  t.Task.alarm_gen <- t.Task.alarm_gen + 1;
  let gen = t.Task.alarm_gen in
  if seconds > 0 then
    Fiber.at
      (Int64.add (Fiber.now ()) (Int64.mul (Int64.of_int seconds) 1_000_000_000L))
      (fun () ->
        if t.Task.alarm_gen = gen && t.Task.state = Task.Running then
          Task.post_to_group ctx.k t.Task.group sigalrm);
  Ok 0

let pause ctx : unit Errno.result =
  count ctx;
  let dummy : unit Waitq.t = Waitq.create () in
  match Waitq.wait ~intr:ctx.t.Task.intr dummy with
  | Waitq.Interrupted -> Error Errno.EINTR
  | Waitq.Woken () | Waitq.Timeout -> Error Errno.EINTR

let nanosleep ctx ~ns : unit Errno.result =
  count ctx;
  if ns <= 0L then Ok ()
  else begin
    let dummy : unit Waitq.t = Waitq.create () in
    match Waitq.wait ~timeout_ns:ns ~intr:ctx.t.Task.intr dummy with
    | Waitq.Timeout -> Ok ()
    | Waitq.Interrupted -> Error Errno.EINTR
    | Waitq.Woken () -> Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Identity / misc                                                      *)
(* ------------------------------------------------------------------ *)

let getpid ctx = count ctx; ctx.t.Task.tgid
let getppid ctx = count ctx; ctx.t.Task.ppid
let gettid ctx = count ctx; ctx.t.Task.tid
let getuid ctx = count ctx; ctx.t.Task.uid
let geteuid ctx = count ctx; ctx.t.Task.euid
let getgid ctx = count ctx; ctx.t.Task.gid
let getegid ctx = count ctx; ctx.t.Task.egid

let setuid ctx ~uid : unit Errno.result =
  count ctx;
  if ctx.t.Task.euid = 0 || uid = ctx.t.Task.uid then begin
    ctx.t.Task.uid <- uid;
    ctx.t.Task.euid <- uid;
    Ok ()
  end
  else Error Errno.EPERM

let setgid ctx ~gid : unit Errno.result =
  count ctx;
  if ctx.t.Task.euid = 0 || gid = ctx.t.Task.gid then begin
    ctx.t.Task.gid <- gid;
    ctx.t.Task.egid <- gid;
    Ok ()
  end
  else Error Errno.EPERM

let getpgid ctx ~pid : int Errno.result =
  count ctx;
  if pid = 0 then Ok ctx.t.Task.pgid
  else
    match Task.find ctx.k pid with
    | Some t -> Ok t.Task.pgid
    | None -> Error Errno.ESRCH

let setpgid ctx ~pid ~pgid : unit Errno.result =
  count ctx;
  let target = if pid = 0 then Some ctx.t else Task.find ctx.k pid in
  match target with
  | Some t ->
      t.Task.pgid <- (if pgid = 0 then t.Task.tgid else pgid);
      Ok ()
  | None -> Error Errno.ESRCH

let setsid ctx : int Errno.result =
  count ctx;
  if ctx.t.Task.pgid = ctx.t.Task.tgid then Error Errno.EPERM
  else begin
    ctx.t.Task.sid <- ctx.t.Task.tgid;
    ctx.t.Task.pgid <- ctx.t.Task.tgid;
    Ok ctx.t.Task.tgid
  end

let umask ctx ~mask : int =
  count ctx;
  let old = ctx.t.Task.umask in
  ctx.t.Task.umask <- mask land 0o777;
  old

let uname _ctx =
  ( "Linux", "wali-sim", "6.1.0-wali", "#1 SMP PREEMPT_DYNAMIC", "wasm32",
    "(none)" )

let sysinfo ctx =
  count ctx;
  (Fiber.now (), Hashtbl.length ctx.k.Task.tasks)

let getrusage ctx ~who : (int64 * int64 * int) Errno.result =
  count ctx;
  ignore who;
  Ok (ctx.t.Task.utime, ctx.t.Task.stime, ctx.t.Task.vm_peak / 1024)

let prlimit64 ctx ~resource : (int64 * int64) Errno.result =
  count ctx;
  if resource = rlimit_nofile then
    Ok (Int64.of_int ctx.t.Task.fdtab.Fdtab.max_fds,
        Int64.of_int ctx.t.Task.fdtab.Fdtab.max_fds)
  else if resource = rlimit_stack then Ok (8_388_608L, 8_388_608L)
  else Ok (Int64.max_int, Int64.max_int)

let clock_gettime ctx ~clock : int64 =
  count ctx;
  Task.clock_gettime ctx.k clock

let getrandom ctx ~buf ~off ~len : int Errno.result =
  count ctx;
  (* Same deterministic generator as /dev/urandom semantics-wise. *)
  let seed = ref (Int64.add 0x2545F4914F6CDD1DL (Int64.of_int (ctx.t.Task.tid * 7919))) in
  for i = 0 to len - 1 do
    let x = !seed in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    seed := x;
    Bytes.set buf (off + i) (Char.chr (Int64.to_int (Int64.logand x 0xFFL)))
  done;
  Ok len

let sched_yield ctx : unit =
  count ctx;
  Fiber.yield ()

let futex_wait ctx ~mem_id ~addr ~load ~expected ~timeout_ns : unit Errno.result =
  count ctx;
  let s = kstats ctx in
  s.Observe.Metrics.futex_waits <- s.Observe.Metrics.futex_waits + 1;
  Futex.wait ctx.futexes ~key:(mem_id, addr) ~load ~expected ?timeout_ns
    ~intr:ctx.t.Task.intr ()

let futex_wake ctx ~mem_id ~addr ~n : int =
  count ctx;
  let woken = Futex.wake ctx.futexes ~key:(mem_id, addr) ~n in
  let s = kstats ctx in
  s.Observe.Metrics.futex_wakes <- s.Observe.Metrics.futex_wakes + woken;
  woken

let wait4 ctx ~pid ~options : (Task.wait_result option, Errno.t) result =
  count ctx;
  Task.wait4 ctx.k ctx.t ~pid ~options

(** execve, kernel half: resolve and read the new image; close CLOEXEC
    fds. The engine swaps the machine. *)
let execve_load ctx ~path : string Errno.result =
  count ctx;
  let* node = Vfs.resolve ctx.k.Task.fs ~cwd:ctx.t.Task.cwd path in
  match node.Vfs.kind with
  | Vfs.Reg b ->
      if node.Vfs.mode land 0o111 = 0 then Error Errno.EACCES
      else begin
        Fdtab.close_cloexec ~sock_registry:ctx.k.Task.sockets ctx.t.Task.fdtab;
        ctx.t.Task.comm <- Filename.basename path;
        Ok (Bytebuf.contents b)
      end
  | Vfs.Dir _ -> Error Errno.EISDIR
  | _ -> Error Errno.EACCES
