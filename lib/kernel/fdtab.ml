(** Open file descriptions and per-process fd tables. *)

type desc_kind =
  | F_inode of Vfs.inode (* regular file or directory *)
  | F_gen of string (* snapshot of a generated /proc node *)
  | F_pipe_r of Pipe.t
  | F_pipe_w of Pipe.t
  | F_fifo of Pipe.t * bool * bool (* pipe, has_read_end, has_write_end *)
  | F_chardev of Vfs.chardev
  | F_sock of Socket.t

type desc = {
  d_kind : desc_kind;
  mutable d_pos : int;
  mutable d_flags : int; (* O_* status flags *)
  mutable d_refs : int;
  d_path : string; (* best-effort origin path, for /proc/self/fd + strace *)
  mutable d_dir_cookie : int; (* getdents position *)
}

type entry = { mutable e_desc : desc; mutable e_cloexec : bool }

type t = {
  mutable slots : entry option array;
  mutable max_fds : int;
  (* Last-fd fast path: most syscall bursts hammer a single descriptor
     (read/read/read on one fd), so remember the last successful lookup
     and serve repeats without touching the slot array.  Any operation
     that can change what lives at a slot drops the memo. *)
  mutable last : (int * entry) option;
}

let create ?(max_fds = 1024) () =
  { slots = Array.make 64 None; max_fds; last = None }

let mk_desc ?(flags = 0) ?(path = "") kind =
  { d_kind = kind; d_pos = 0; d_flags = flags; d_refs = 1; d_path = path;
    d_dir_cookie = 0 }

let incref d = d.d_refs <- d.d_refs + 1

(** Release one reference; when it drops to zero, tear down the kernel
    object behind the description. *)
let release ?(sock_registry : Socket.registry option) d =
  d.d_refs <- d.d_refs - 1;
  if d.d_refs = 0 then
    match d.d_kind with
    | F_pipe_r p -> Pipe.drop_reader p
    | F_pipe_w p -> Pipe.drop_writer p
    | F_fifo (p, r, w) ->
        if r then Pipe.drop_reader p;
        if w then Pipe.drop_writer p
    | F_sock s -> (
        match sock_registry with
        | Some reg -> Socket.close reg s
        | None -> ())
    | F_inode _ | F_gen _ | F_chardev _ -> ()

let get_entry (t : t) fd : entry option =
  match t.last with
  | Some (lfd, e) when lfd = fd -> Some e
  | _ ->
      if fd < 0 || fd >= Array.length t.slots then None
      else begin
        let r = t.slots.(fd) in
        (match r with Some e -> t.last <- Some (fd, e) | None -> ());
        r
      end

let get (t : t) fd : desc option =
  match get_entry t fd with Some e -> Some e.e_desc | None -> None

let ensure_capacity t n =
  if n >= Array.length t.slots then begin
    let a = Array.make (max (2 * Array.length t.slots) (n + 1)) None in
    Array.blit t.slots 0 a 0 (Array.length t.slots);
    t.slots <- a
  end

(** Install [d] at the lowest free slot >= [from]. *)
let install ?(from = 0) ?(cloexec = false) (t : t) d : (int, Errno.t) result =
  let rec find i =
    if i >= t.max_fds then Error Errno.EMFILE
    else begin
      ensure_capacity t i;
      match t.slots.(i) with
      | None ->
          let e = { e_desc = d; e_cloexec = cloexec } in
          t.slots.(i) <- Some e;
          t.last <- Some (i, e);
          Ok i
      | Some _ -> find (i + 1)
    end
  in
  find from

(** dup2 semantics: close whatever is at [fd], install [d] there. *)
let install_at ?(cloexec = false) ?sock_registry (t : t) fd d :
    (int, Errno.t) result =
  if fd < 0 || fd >= t.max_fds then Error Errno.EBADF
  else begin
    ensure_capacity t fd;
    (match t.slots.(fd) with
    | Some e -> release ?sock_registry e.e_desc
    | None -> ());
    t.last <- None;
    t.slots.(fd) <- Some { e_desc = d; e_cloexec = cloexec };
    Ok fd
  end

let close ?sock_registry (t : t) fd : (unit, Errno.t) result =
  match get_entry t fd with
  | None -> Error Errno.EBADF
  | Some e ->
      t.last <- None;
      t.slots.(fd) <- None;
      release ?sock_registry e.e_desc;
      Ok ()

let close_all ?sock_registry (t : t) =
  t.last <- None;
  Array.iteri
    (fun i e ->
      match e with
      | Some e ->
          t.slots.(i) <- None;
          release ?sock_registry e.e_desc
      | None -> ())
    t.slots

let close_cloexec ?sock_registry (t : t) =
  t.last <- None;
  Array.iteri
    (fun i e ->
      match e with
      | Some e when e.e_cloexec ->
          t.slots.(i) <- None;
          release ?sock_registry e.e_desc
      | _ -> ())
    t.slots

(** Fork: new table sharing the open file descriptions. *)
let clone (t : t) : t =
  let slots =
    Array.map
      (Option.map (fun e ->
           incref e.e_desc;
           { e_desc = e.e_desc; e_cloexec = e.e_cloexec }))
      t.slots
  in
  { slots; max_fds = t.max_fds; last = None }

let count (t : t) =
  Array.fold_left (fun n e -> if e = None then n else n + 1) 0 t.slots
