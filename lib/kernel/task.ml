(** Tasks (LWPs), thread groups, signals, fork/exit/wait — the process
    model the WALI 1-to-1 design maps onto (paper §3.1, Fig 4). *)

open Ktypes

type state = Running | Zombie | Dead

type tgroup = {
  mutable tg_id : int; (* = leader tid *)
  mutable actions : sigaction array; (* index 1..nsig *)
  mutable group_pending : Sigset.t;
  mutable threads : t list;
  mutable exiting : int option; (* exit_group status, packed *)
}

and t = {
  tid : int;
  mutable tgid : int;
  mutable ppid : int;
  mutable pgid : int;
  mutable sid : int;
  mutable comm : string;
  mutable uid : int;
  mutable euid : int;
  mutable gid : int;
  mutable egid : int;
  mutable cwd : Vfs.inode;
  mutable fdtab : Fdtab.t;
  mutable sigmask : Sigset.t;
  mutable pending : Sigset.t; (* thread-directed *)
  mutable group : tgroup;
  intr : (unit -> unit) option ref;
  mutable state : state;
  mutable exit_status : int; (* packed wait status *)
  child_wq : unit Waitq.t; (* this task waits here for its children *)
  mutable vm_bytes : int;
  mutable vm_peak : int;
  mutable utime : int64; (* consumed cpu, ns (charged by engines) *)
  mutable stime : int64;
  mutable start_time : int64;
  mutable umask : int;
  mutable alarm_gen : int; (* cancels stale alarms *)
}

type kernel = {
  fs : Vfs.t;
  sockets : Socket.registry;
  tasks : (int, t) Hashtbl.t;
  mutable next_tid : int;
  console_out : Buffer.t;
  console_in : Pipe.t;
  mutable fg_pgid : int;
  mutable epoch_ns : int64; (* CLOCK_REALTIME base *)
  mutable syscall_count : int64; (* global, for stats *)
  stats : Observe.Metrics.kstats; (* always-on kernel counters *)
}

let fresh_actions () = Array.make (nsig + 1) sigaction_default

(* ------------------------------------------------------------------ *)
(* Kernel boot                                                          *)
(* ------------------------------------------------------------------ *)

let console_chardev (k : kernel) : Vfs.chardev =
  {
    Vfs.cd_name = "tty";
    cd_read =
      (fun ~intr ~nonblock dst off len ->
        Pipe.read k.console_in ~intr ~nonblock dst off len);
    cd_write =
      (fun src off len ->
        Buffer.add_subbytes k.console_out src off len;
        Ok len);
    cd_poll = (fun () -> Pipe.poll_read k.console_in lor pollout);
  }

let null_chardev : Vfs.chardev =
  {
    Vfs.cd_name = "null";
    cd_read = (fun ~intr:_ ~nonblock:_ _ _ _ -> Ok 0);
    cd_write = (fun _ _ len -> Ok len);
    cd_poll = (fun () -> pollin lor pollout);
  }

let zero_chardev : Vfs.chardev =
  {
    Vfs.cd_name = "zero";
    cd_read =
      (fun ~intr:_ ~nonblock:_ dst off len ->
        Bytes.fill dst off len '\000';
        Ok len);
    cd_write = (fun _ _ len -> Ok len);
    cd_poll = (fun () -> pollin lor pollout);
  }

(* Deterministic xorshift PRNG for /dev/urandom. *)
let urandom_chardev () : Vfs.chardev =
  let state = ref 0x9E3779B97F4A7C15L in
  let next () =
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    x
  in
  {
    Vfs.cd_name = "urandom";
    cd_read =
      (fun ~intr:_ ~nonblock:_ dst off len ->
        for i = 0 to len - 1 do
          Bytes.set dst (off + i)
            (Char.chr (Int64.to_int (Int64.logand (next ()) 0xFFL)))
        done;
        Ok len);
    cd_write = (fun _ _ len -> Ok len);
    cd_poll = (fun () -> pollin lor pollout);
  }

let boot () : kernel =
  let stats = Observe.Metrics.kstats_create () in
  let fs = Vfs.create ~stats () in
  let k =
    {
      fs;
      sockets = Socket.create_registry ();
      tasks = Hashtbl.create 64;
      next_tid = 1;
      console_out = Buffer.create 4096;
      console_in = Pipe.create ();
      fg_pgid = 1;
      epoch_ns = 1_700_000_000_000_000_000L;
      syscall_count = 0L;
      stats;
    }
  in
  let dev = Vfs.mkdir_p fs "/dev" in
  ignore (Vfs.add_chardev fs dev "null" null_chardev);
  ignore (Vfs.add_chardev fs dev "zero" zero_chardev);
  ignore (Vfs.add_chardev fs dev "urandom" (urandom_chardev ()));
  ignore (Vfs.add_chardev fs dev "random" (urandom_chardev ()));
  ignore (Vfs.add_chardev fs dev "tty" (console_chardev k));
  ignore (Vfs.add_chardev fs dev "console" (console_chardev k));
  ignore (Vfs.mkdir_p fs "/tmp");
  ignore (Vfs.mkdir_p fs "/home/user");
  ignore (Vfs.mkdir_p fs "/bin");
  ignore (Vfs.mkdir_p fs "/usr/lib");
  ignore (Vfs.mkdir_p fs "/var/run");
  Vfs.write_file fs "/etc/passwd"
    "root:x:0:0:root:/root:/bin/sh\nuser:x:1000:1000:user:/home/user:/bin/sh\n";
  Vfs.write_file fs "/etc/hostname" "wali-sim\n";
  let proc = Vfs.mkdir_p fs "/proc" in
  let self = Vfs.mkdir_p fs "/proc/self" in
  ignore proc;
  (* The endpoint WALI must refuse to open (paper §3.6). *)
  ignore (Vfs.add_gen fs self "mem" (fun () -> ""));
  ignore
    (Vfs.add_gen fs self "status" (fun () -> "Name:\twali-app\nState:\tR\n"));
  ignore
    (Vfs.add_gen fs proc "uptime" (fun () ->
         Printf.sprintf "%.2f 0.00\n"
           (Int64.to_float (Fiber.now ()) /. 1e9)));
  ignore
    (Vfs.add_gen fs proc "meminfo" (fun () ->
         "MemTotal:  8388608 kB\nMemFree:   4194304 kB\n"));
  k

(* ------------------------------------------------------------------ *)
(* Task creation                                                        *)
(* ------------------------------------------------------------------ *)

let alloc_tid k =
  let tid = k.next_tid in
  k.next_tid <- tid + 1;
  tid

(** Create the init task (tid 1). Its body is run by the caller. *)
let make_init (k : kernel) ~comm : t =
  let tid = alloc_tid k in
  let group =
    { tg_id = tid; actions = fresh_actions (); group_pending = Sigset.empty;
      threads = []; exiting = None }
  in
  let t =
    {
      tid;
      tgid = tid;
      ppid = 0;
      pgid = tid;
      sid = tid;
      comm;
      uid = 0;
      euid = 0;
      gid = 0;
      egid = 0;
      cwd = k.fs.Vfs.root;
      fdtab = Fdtab.create ();
      sigmask = Sigset.empty;
      pending = Sigset.empty;
      group;
      intr = ref None;
      state = Running;
      exit_status = 0;
      child_wq = Waitq.create ();
      vm_bytes = 0;
      vm_peak = 0;
      utime = 0L;
      stime = 0L;
      start_time = Fiber.now ();
      umask = 0o022;
      alarm_gen = 0;
    }
  in
  group.threads <- [ t ];
  Hashtbl.replace k.tasks tid t;
  t

(** fork/clone. [thread] = CLONE_THREAD (same tgid, shared sigactions);
    [share_files] = CLONE_FILES. *)
let clone_task (k : kernel) (parent : t) ~thread ~share_files : t =
  let tid = alloc_tid k in
  let group =
    if thread then parent.group
    else
      {
        tg_id = tid;
        actions = Array.copy parent.group.actions;
        group_pending = Sigset.empty;
        threads = [];
        exiting = None;
      }
  in
  let t =
    {
      tid;
      tgid = (if thread then parent.tgid else tid);
      ppid = (if thread then parent.ppid else parent.tgid);
      pgid = parent.pgid;
      sid = parent.sid;
      comm = parent.comm;
      uid = parent.uid;
      euid = parent.euid;
      gid = parent.gid;
      egid = parent.egid;
      cwd = parent.cwd;
      fdtab = (if share_files then parent.fdtab else Fdtab.clone parent.fdtab);
      sigmask = parent.sigmask;
      pending = Sigset.empty;
      group;
      intr = ref None;
      state = Running;
      exit_status = 0;
      child_wq = Waitq.create ();
      vm_bytes = parent.vm_bytes;
      vm_peak = parent.vm_bytes;
      utime = 0L;
      stime = 0L;
      start_time = Fiber.now ();
      umask = parent.umask;
      alarm_gen = 0;
    }
  in
  group.threads <- t :: group.threads;
  Hashtbl.replace k.tasks tid t;
  t

let find (k : kernel) pid = Hashtbl.find_opt k.tasks pid

let live_threads g = List.filter (fun t -> t.state = Running) g.threads

(* ------------------------------------------------------------------ *)
(* Signals                                                              *)
(* ------------------------------------------------------------------ *)

let action_of (t : t) signo = t.group.actions.(signo)

let is_ignored (t : t) signo =
  let a = action_of t signo in
  a.sa_handler = sig_ign
  || (a.sa_handler = sig_dfl && default_disposition signo = Ign)

(** Would this signal, if delivered right now, do anything? *)
let deliverable (t : t) signo =
  signo = sigkill
  || ((not (Sigset.mem t.sigmask signo)) && not (is_ignored t signo))

(** Post a signal to a specific thread. *)
let post_to_thread (k : kernel) (t : t) signo : unit =
  if t.state <> Running then ()
  else if is_ignored t signo && not (Sigset.mem t.sigmask signo) then
    () (* discarded *)
  else begin
    t.pending <- Sigset.add t.pending signo;
    k.stats.Observe.Metrics.sig_queued <-
      k.stats.Observe.Metrics.sig_queued + 1;
    if deliverable t signo then
      match !(t.intr) with Some wake -> wake () | None -> ()
  end

(** Post a process-directed signal: any thread that can take it may. *)
let post_to_group (k : kernel) (g : tgroup) signo : unit =
  match live_threads g with
  | [] -> ()
  | threads ->
      let sample = List.hd threads in
      if is_ignored sample signo && not (List.exists (fun t -> Sigset.mem t.sigmask signo) threads)
      then ()
      else begin
        g.group_pending <- Sigset.add g.group_pending signo;
        k.stats.Observe.Metrics.sig_queued <-
          k.stats.Observe.Metrics.sig_queued + 1;
        (* Wake one thread that would deliver it. *)
        match List.find_opt (fun t -> deliverable t signo) threads with
        | Some t -> (match !(t.intr) with Some wake -> wake () | None -> ())
        | None -> ()
      end

(** kill(2) pid semantics: pid > 0 targets that process; 0 targets the
    caller's process group; -1 everything except init; -pgid a group. *)
let kill (k : kernel) (by : t) ~pid ~signo : (unit, Errno.t) result =
  if signo < 0 || signo > nsig then Error Errno.EINVAL
  else begin
    let send_group_of (t : t) =
      if signo <> 0 then post_to_group k t.group signo
    in
    if pid > 0 then
      match find k pid with
      | Some t when t.state = Running -> Ok (send_group_of t)
      | Some _ | None -> Error Errno.ESRCH
    else begin
      let pgid = if pid = 0 then by.pgid else -pid in
      let targets =
        Hashtbl.fold
          (fun _ t acc ->
            if t.state = Running && t.tid = t.tgid
               && ((pid = -1 && t.tgid <> 1 && t.tgid <> by.tgid)
                  || (pid <> -1 && t.pgid = pgid))
            then t :: acc
            else acc)
          k.tasks []
      in
      if targets = [] then Error Errno.ESRCH
      else begin
        List.iter send_group_of targets;
        Ok ()
      end
    end
  end

(** Dequeue the next deliverable signal for [t]; clears its pending bit.
    Returns the signal number and the action in force. *)
let rec next_signal (t : t) : (int * sigaction) option =
  let candidates = Sigset.union t.pending t.group.group_pending in
  let eligible = Sigset.diff candidates t.sigmask in
  let eligible =
    if Sigset.mem candidates sigkill then Sigset.add eligible sigkill
    else eligible
  in
  match Sigset.lowest eligible with
  | None -> None
  | Some signo ->
      if Sigset.mem t.pending signo then
        t.pending <- Sigset.remove t.pending signo
      else
        t.group.group_pending <- Sigset.remove t.group.group_pending signo;
      if is_ignored t signo && signo <> sigkill then next_signal t
      else Some (signo, action_of t signo)

let has_deliverable_signal (t : t) =
  let candidates = Sigset.union t.pending t.group.group_pending in
  Sigset.mem candidates sigkill
  || not (Sigset.is_empty (Sigset.diff candidates t.sigmask))

(* ------------------------------------------------------------------ *)
(* Exit and wait                                                        *)
(* ------------------------------------------------------------------ *)

let children (k : kernel) (parent : t) : t list =
  Hashtbl.fold
    (fun _ t acc ->
      if t.ppid = parent.tgid && t.tid = t.tgid && t.state <> Dead then t :: acc
      else acc)
    k.tasks []

let reap (k : kernel) (child : t) =
  child.state <- Dead;
  Hashtbl.remove k.tasks child.tid

(** Terminate one task. For a thread-group leader this zombifies the
    process; other threads just disappear. *)
let exit_task (k : kernel) (t : t) ~(status : int) : unit =
  if t.state <> Running then ()
  else begin
    (* The fd table may be shared (CLONE_FILES); only its last live user
       tears it down. *)
    let fdtab_shared =
      Hashtbl.fold
        (fun _ o acc ->
          acc || (o != t && o.state = Running && o.fdtab == t.fdtab))
        k.tasks false
    in
    if not fdtab_shared then Fdtab.close_all ~sock_registry:k.sockets t.fdtab;
    t.exit_status <- status;
    t.group.threads <- List.filter (fun x -> x != t) t.group.threads;
    let is_process = t.tid = t.tgid in
    if is_process then begin
      (* Reparent children to init. *)
      List.iter
        (fun c ->
          c.ppid <- 1;
          if c.state = Zombie then reap k c)
        (children k t);
      t.state <- Zombie;
      match find k t.ppid with
      | Some parent ->
          let chld_action = parent.group.actions.(sigchld) in
          if chld_action.sa_handler = sig_ign then reap k t
          else begin
            ignore (Waitq.wake_all parent.child_wq ());
            post_to_group k parent.group sigchld
          end
      | None -> reap k t
    end
    else begin
      t.state <- Dead;
      Hashtbl.remove k.tasks t.tid
    end
  end

type wait_result = { wr_pid : int; wr_status : int; wr_rusage_utime : int64 }

(** wait4. [pid] selector: -1 any child, >0 specific, 0 same pgroup,
    <-1 pgroup -pid. *)
let wait4 (k : kernel) (t : t) ~pid ~options : (wait_result option, Errno.t) result =
  let matches (c : t) =
    if pid = -1 then true
    else if pid > 0 then c.tgid = pid
    else if pid = 0 then c.pgid = t.pgid
    else c.pgid = -pid
  in
  let rec go () =
    let kids = children k t in
    let candidates = List.filter matches kids in
    if candidates = [] then Error Errno.ECHILD
    else
      match List.find_opt (fun c -> c.state = Zombie) candidates with
      | Some z ->
          let r =
            { wr_pid = z.tgid; wr_status = z.exit_status;
              wr_rusage_utime = z.utime }
          in
          reap k z;
          Ok (Some r)
      | None ->
          if options land wnohang <> 0 then Ok None
          else
            match Waitq.wait ~intr:t.intr t.child_wq with
            | Waitq.Interrupted -> Error Errno.EINTR
            | Waitq.Woken () | Waitq.Timeout -> go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Time                                                                 *)
(* ------------------------------------------------------------------ *)

let clock_gettime (k : kernel) clock : int64 =
  match clock with
  | c when c = clock_realtime -> Int64.add k.epoch_ns (Fiber.now ())
  | _ -> Fiber.now ()

let charge_vm (t : t) delta =
  t.vm_bytes <- t.vm_bytes + delta;
  if t.vm_bytes > t.vm_peak then t.vm_peak <- t.vm_bytes

(** Console helpers for tests and examples. *)
let console_output (k : kernel) = Buffer.contents k.console_out

let console_feed (k : kernel) (s : string) =
  ignore (Pipe.push k.console_in (Bytes.of_string s) 0 (String.length s))

(** Simulate the terminal driver's ^C: SIGINT to the foreground group. *)
let console_interrupt (k : kernel) =
  Hashtbl.iter
    (fun _ t ->
      if t.state = Running && t.pgid = k.fg_pgid && t.tid = t.tgid then
        post_to_group k t.group sigint)
    k.tasks
