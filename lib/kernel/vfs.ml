(** In-memory virtual filesystem: inodes, directories, symlinks, FIFOs,
    character devices and generated (proc-style) nodes. *)

open Ktypes

type inode = {
  ino : int;
  mutable mode : int; (* type bits lor permission bits *)
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  mutable atime : int64;
  mutable mtime : int64;
  mutable ctime : int64;
  kind : kind;
}

and kind =
  | Reg of Bytebuf.t
  | Dir of dir
  | Symlink of string
  | Fifo of Pipe.t
  | Chardev of chardev
  | Gen of (unit -> string) (* /proc-style: content generated at open *)

and dir = {
  entries : (string, inode) Hashtbl.t;
  mutable parent : inode option; (* None for the root *)
}

and chardev = {
  cd_name : string;
  cd_read :
    intr:(unit -> unit) option ref ->
    nonblock:bool ->
    Bytes.t -> int -> int ->
    (int, Errno.t) result;
  cd_write : Bytes.t -> int -> int -> (int, Errno.t) result;
  cd_poll : unit -> int;
}

type t = {
  mutable next_ino : int;
  root : inode;
  (* Path-resolution cache ("dentry cache"): whole-path positive lookups
     keyed by (starting ino, path, follow) and stamped with the namespace
     generation current at fill time.  Every namespace mutation bumps
     [gen], so a stamp mismatch invalidates the whole cache at once
     without any per-entry bookkeeping.  Only successful resolutions are
     cached — error results (notably ENOENT, which O_CREAT depends on)
     are always re-derived from the tree. *)
  mutable gen : int;
  dcache : (int * string * bool, int * inode) Hashtbl.t;
  stats : Observe.Metrics.kstats option;
}

let dcache_max = 1024

(** Invalidate every cached path resolution (namespace changed). *)
let bump fs = fs.gen <- fs.gen + 1

let is_dir i = match i.kind with Dir _ -> true | _ -> false

let kind_bits i =
  match i.kind with
  | Reg _ -> s_ifreg
  | Dir _ -> s_ifdir
  | Symlink _ -> s_iflnk
  | Fifo _ -> s_ififo
  | Chardev _ -> s_ifchr
  | Gen _ -> s_ifreg

let size_of i =
  match i.kind with
  | Reg b -> Int64.of_int (Bytebuf.length b)
  | Symlink s -> Int64.of_int (String.length s)
  | Dir d -> Int64.of_int (Hashtbl.length d.entries * 32)
  | Fifo _ | Chardev _ | Gen _ -> 0L

let stat_of i =
  {
    st_dev = 1;
    st_ino = i.ino;
    st_mode = kind_bits i lor (i.mode land 0o7777);
    st_nlink = i.nlink;
    st_uid = i.uid;
    st_gid = i.gid;
    st_rdev = 0;
    st_size = size_of i;
    st_blksize = 4096;
    st_blocks = Int64.div (Int64.add (size_of i) 511L) 512L;
    st_atime_ns = i.atime;
    st_mtime_ns = i.mtime;
    st_ctime_ns = i.ctime;
  }

let mk_inode fs ~mode kind =
  let ino = fs.next_ino in
  fs.next_ino <- ino + 1;
  let now = Fiber.now () in
  {
    ino;
    mode;
    uid = 0;
    gid = 0;
    nlink = 1;
    atime = now;
    mtime = now;
    ctime = now;
    kind;
  }

let create ?stats () =
  let root_dir = { entries = Hashtbl.create 16; parent = None } in
  let root =
    {
      ino = 1;
      mode = 0o755;
      uid = 0;
      gid = 0;
      nlink = 2;
      atime = 0L;
      mtime = 0L;
      ctime = 0L;
      kind = Dir root_dir;
    }
  in
  { next_ino = 2; root; gen = 0; dcache = Hashtbl.create 256; stats }

(* ------------------------------------------------------------------ *)
(* Path resolution                                                      *)
(* ------------------------------------------------------------------ *)

let split_path (p : string) : string list =
  List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' p)

let max_symlinks = 40

(** Resolve [path] relative to [cwd] (or the root for absolute paths).
    [follow] controls whether a trailing symlink is dereferenced. *)
let rec resolve_at fs ~(cwd : inode) ~follow ~depth (path : string) :
    (inode, Errno.t) result =
  if depth > max_symlinks then Error Errno.ELOOP
  else begin
    let start = if String.length path > 0 && path.[0] = '/' then fs.root else cwd in
    let rec walk (cur : inode) (parts : string list) : (inode, Errno.t) result =
      match parts with
      | [] -> Ok cur
      | name :: rest -> (
          match cur.kind with
          | Dir d -> (
              if name = ".." then
                match d.parent with
                | Some p -> walk p rest
                | None -> walk cur rest
              else
                match Hashtbl.find_opt d.entries name with
                | None -> Error Errno.ENOENT
                | Some child -> (
                    match child.kind with
                    | Symlink target when rest <> [] || follow -> (
                        match
                          resolve_at fs ~cwd:cur ~follow:true ~depth:(depth + 1)
                            target
                        with
                        | Ok i -> walk i rest
                        | Error _ as e -> e)
                    | _ -> walk child rest))
          | _ -> Error Errno.ENOTDIR)
    in
    walk start (split_path path)
  end

let resolve fs ~cwd ?(follow = true) path =
  let key = (cwd.ino, path, follow) in
  match Hashtbl.find_opt fs.dcache key with
  | Some (stamp, node) when stamp = fs.gen ->
      (match fs.stats with
      | Some ks ->
          ks.Observe.Metrics.dcache_hits <-
            Int64.add ks.Observe.Metrics.dcache_hits 1L
      | None -> ());
      Ok node
  | _ ->
      (match fs.stats with
      | Some ks ->
          ks.Observe.Metrics.dcache_misses <-
            Int64.add ks.Observe.Metrics.dcache_misses 1L
      | None -> ());
      let r = resolve_at fs ~cwd ~follow ~depth:0 path in
      (match r with
      | Ok node ->
          if Hashtbl.length fs.dcache >= dcache_max then
            Hashtbl.reset fs.dcache;
          Hashtbl.replace fs.dcache key (fs.gen, node)
      | Error _ -> ());
      r

(** Resolve to the parent directory and final component (for create /
    unlink / rename). *)
let resolve_parent fs ~cwd (path : string) : (inode * string, Errno.t) result =
  let parts = split_path path in
  match List.rev parts with
  | [] -> Error Errno.EINVAL
  | base :: rev_dir ->
      let dir_path =
        (if String.length path > 0 && path.[0] = '/' then "/" else "")
        ^ String.concat "/" (List.rev rev_dir)
      in
      let dir_path = if dir_path = "" then "." else dir_path in
      (match resolve fs ~cwd dir_path with
      | Ok d when is_dir d -> Ok (d, base)
      | Ok _ -> Error Errno.ENOTDIR
      | Error _ as e -> e)

let dir_of i =
  match i.kind with Dir d -> Some d | _ -> None

let lookup (dir : inode) name : inode option =
  match dir.kind with
  | Dir d -> (
      if name = ".." then d.parent
      else if name = "." then Some dir
      else Hashtbl.find_opt d.entries name)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Mutations                                                            *)
(* ------------------------------------------------------------------ *)

let add_entry fs (dirnode : inode) name (child : inode) :
    (unit, Errno.t) result =
  match dirnode.kind with
  | Dir d ->
      if Hashtbl.mem d.entries name then Error Errno.EEXIST
      else begin
        Hashtbl.replace d.entries name child;
        (match child.kind with
        | Dir cd ->
            cd.parent <- Some dirnode;
            dirnode.nlink <- dirnode.nlink + 1
        | _ -> ());
        dirnode.mtime <- Fiber.now ();
        bump fs;
        Ok ()
      end
  | _ -> Error Errno.ENOTDIR

let create_file fs (dirnode : inode) name ~mode : (inode, Errno.t) result =
  let i = mk_inode fs ~mode:(mode land 0o7777) (Reg (Bytebuf.create ())) in
  match add_entry fs dirnode name i with Ok () -> Ok i | Error _ as e -> e

let mkdir fs (dirnode : inode) name ~mode : (inode, Errno.t) result =
  let d = { entries = Hashtbl.create 8; parent = Some dirnode } in
  let i = mk_inode fs ~mode:(mode land 0o7777) (Dir d) in
  i.nlink <- 2;
  match add_entry fs dirnode name i with Ok () -> Ok i | Error _ as e -> e

let symlink fs (dirnode : inode) name ~target : (inode, Errno.t) result =
  let i = mk_inode fs ~mode:0o777 (Symlink target) in
  match add_entry fs dirnode name i with Ok () -> Ok i | Error _ as e -> e

let mkfifo fs (dirnode : inode) name ~mode : (inode, Errno.t) result =
  let p = Pipe.create () in
  (* FIFO nodes start with no open ends. *)
  p.Pipe.readers <- 0;
  p.Pipe.writers <- 0;
  let i = mk_inode fs ~mode:(mode land 0o7777) (Fifo p) in
  match add_entry fs dirnode name i with Ok () -> Ok i | Error _ as e -> e

let add_chardev fs (dirnode : inode) name cd : (inode, Errno.t) result =
  let i = mk_inode fs ~mode:0o666 (Chardev cd) in
  match add_entry fs dirnode name i with Ok () -> Ok i | Error _ as e -> e

let add_gen fs (dirnode : inode) name gen : (inode, Errno.t) result =
  let i = mk_inode fs ~mode:0o444 (Gen gen) in
  match add_entry fs dirnode name i with Ok () -> Ok i | Error _ as e -> e

let unlink fs (dirnode : inode) name : (unit, Errno.t) result =
  match dirnode.kind with
  | Dir d -> (
      match Hashtbl.find_opt d.entries name with
      | None -> Error Errno.ENOENT
      | Some child -> (
          match child.kind with
          | Dir _ -> Error Errno.EISDIR
          | _ ->
              Hashtbl.remove d.entries name;
              child.nlink <- child.nlink - 1;
              child.ctime <- Fiber.now ();
              bump fs;
              Ok ()))
  | _ -> Error Errno.ENOTDIR

let rmdir fs (dirnode : inode) name : (unit, Errno.t) result =
  match dirnode.kind with
  | Dir d -> (
      match Hashtbl.find_opt d.entries name with
      | None -> Error Errno.ENOENT
      | Some child -> (
          match child.kind with
          | Dir cd ->
              if Hashtbl.length cd.entries > 0 then Error Errno.ENOTEMPTY
              else begin
                Hashtbl.remove d.entries name;
                dirnode.nlink <- dirnode.nlink - 1;
                bump fs;
                Ok ()
              end
          | _ -> Error Errno.ENOTDIR))
  | _ -> Error Errno.ENOTDIR

let link fs (dirnode : inode) name (target : inode) : (unit, Errno.t) result =
  match target.kind with
  | Dir _ -> Error Errno.EPERM
  | _ -> (
      match add_entry fs dirnode name target with
      | Ok () ->
          target.nlink <- target.nlink + 1;
          Ok ()
      | Error _ as e -> e)

let rename fs (srcdir : inode) sname (dstdir : inode) dname :
    (unit, Errno.t) result =
  match (srcdir.kind, dstdir.kind) with
  | Dir sd, Dir dd -> (
      match Hashtbl.find_opt sd.entries sname with
      | None -> Error Errno.ENOENT
      | Some child ->
          (* Replace any existing destination (non-directory only). *)
          (match Hashtbl.find_opt dd.entries dname with
          | Some existing when is_dir existing -> Error Errno.EISDIR
          | Some existing ->
              existing.nlink <- existing.nlink - 1;
              Hashtbl.remove dd.entries dname;
              Hashtbl.remove sd.entries sname;
              Hashtbl.replace dd.entries dname child;
              (match child.kind with
              | Dir cd -> cd.parent <- Some dstdir
              | _ -> ());
              bump fs;
              Ok ()
          | None ->
              Hashtbl.remove sd.entries sname;
              Hashtbl.replace dd.entries dname child;
              (match child.kind with
              | Dir cd -> cd.parent <- Some dstdir
              | _ -> ());
              bump fs;
              Ok ()))
  | _ -> Error Errno.ENOTDIR

(** Directory listing as (name, dtype, ino) triples including . and .. *)
let readdir (dirnode : inode) : (string * int * int) list =
  match dirnode.kind with
  | Dir d ->
      let dtype i =
        match i.kind with
        | Reg _ | Gen _ -> dt_reg
        | Dir _ -> dt_dir
        | Symlink _ -> dt_lnk
        | Fifo _ -> dt_fifo
        | Chardev _ -> dt_chr
      in
      let parent_ino =
        match d.parent with Some p -> p.ino | None -> dirnode.ino
      in
      (".", dt_dir, dirnode.ino) :: ("..", dt_dir, parent_ino)
      :: (Hashtbl.fold
            (fun name i acc -> (name, dtype i, i.ino) :: acc)
            d.entries []
         |> List.sort compare)
  | _ -> []

(** Absolute path of an inode (best effort, for getcwd). *)
let path_of fs (node : inode) : string =
  let rec up (i : inode) acc =
    match i.kind with
    | Dir d -> (
        match d.parent with
        | None -> "/" ^ String.concat "/" acc
        | Some p -> (
            match p.kind with
            | Dir pd ->
                let name =
                  Hashtbl.fold
                    (fun n c acc -> if c == i then Some n else acc)
                    pd.entries None
                in
                (match name with
                | Some n -> up p (n :: acc)
                | None -> "/" ^ String.concat "/" acc)
            | _ -> "/" ^ String.concat "/" acc))
    | _ -> "/" ^ String.concat "/" acc
  in
  ignore fs;
  up node []

(** Ensure a directory path exists (mkdir -p), returning the leaf. *)
let mkdir_p fs path : inode =
  let parts = split_path path in
  List.fold_left
    (fun cur name ->
      match lookup cur name with
      | Some i when is_dir i -> i
      | Some _ -> failwith ("mkdir_p: not a dir: " ^ name)
      | None -> (
          match mkdir fs cur name ~mode:0o755 with
          | Ok i -> i
          | Error e -> failwith ("mkdir_p: " ^ Errno.to_string e)))
    fs.root parts

(** Write a whole file, creating parents (test/image setup helper). *)
let write_file fs path (content : string) : unit =
  let parts = split_path path in
  match List.rev parts with
  | [] -> invalid_arg "write_file"
  | base :: rev_dir ->
      let dir = mkdir_p fs (String.concat "/" (List.rev rev_dir)) in
      let node =
        match lookup dir base with
        | Some i -> i
        | None -> (
            match create_file fs dir base ~mode:0o644 with
            | Ok i -> i
            | Error e -> failwith (Errno.to_string e))
      in
      (match node.kind with
      | Reg b ->
          Bytebuf.clear b;
          Bytebuf.pwrite b ~off:0 ~src:(Bytes.of_string content) ~src_off:0
            ~len:(String.length content)
      | _ -> invalid_arg "write_file: not a regular file")

let read_file fs ~cwd path : (string, Errno.t) result =
  match resolve fs ~cwd path with
  | Ok { kind = Reg b; _ } -> Ok (Bytebuf.contents b)
  | Ok { kind = Gen g; _ } -> Ok (g ())
  | Ok _ -> Error Errno.EISDIR
  | Error _ as e -> e
