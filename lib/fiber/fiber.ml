open Effect
open Effect.Deep

type t = { fid : int; fname : string }

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

(* Timer heap entries are compared by (time, seq) so that equal deadlines
   fire in registration order. *)
module Timer_heap = struct
  type entry = { time : int64; seq : int; fire : unit -> unit }

  type heap = { mutable arr : entry array; mutable len : int }

  let dummy = { time = 0L; seq = 0; fire = (fun () -> ()) }
  let make () = { arr = Array.make 16 dummy; len = 0 }
  let is_empty h = h.len = 0

  let less a b =
    if Int64.compare a.time b.time <> 0 then Int64.compare a.time b.time < 0
    else a.seq < b.seq

  let push h e =
    if h.len = Array.length h.arr then begin
      let arr = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    h.arr.(h.len) <- e;
    h.len <- h.len + 1;
    let rec up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if less h.arr.(i) h.arr.(p) then begin
          let tmp = h.arr.(i) in
          h.arr.(i) <- h.arr.(p);
          h.arr.(p) <- tmp;
          up p
        end
      end
    in
    up (h.len - 1)

  let peek h = h.arr.(0)

  let pop h =
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- dummy;
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = if l < h.len && less h.arr.(l) h.arr.(i) then l else i in
      let m = if r < h.len && less h.arr.(r) h.arr.(m) then r else m in
      if m <> i then begin
        let tmp = h.arr.(i) in
        h.arr.(i) <- h.arr.(m);
        h.arr.(m) <- tmp;
        down m
      end
    in
    down 0;
    top
end

type sched = {
  runq : (unit -> unit) Queue.t;
  timers : Timer_heap.heap;
  mutable clock : int64;
  mutable next_fid : int;
  mutable timer_seq : int;
  mutable live : int;
  mutable cur : t option;
  (* Fibers currently suspended, for deadlock reporting. *)
  suspended : (int, string) Hashtbl.t;
}

exception Deadlock of string list

let tick_ns = 1_000L

(* Scheduler observation hook (for the observability sink): called once
   per quantum with the fiber that ran and the clock after the quantum,
   and once per idle clock jump with the skipped delta. Summing tick_ns
   per quantum plus the idle deltas reproduces the final clock exactly. *)
type observer = {
  ob_quantum : t -> int64 -> unit;
  ob_idle : int64 -> unit;
}

let observer : observer option ref = ref None
let set_observer ob = observer := ob

let scheduler : sched option ref = ref None

let sched () =
  match !scheduler with
  | Some s -> s
  | None -> failwith "Fiber: not inside Fiber.run"

let id f = f.fid
let name f = f.fname

let current () =
  match (sched ()).cur with
  | Some f -> f
  | None -> failwith "Fiber: no current fiber"

(* Callers like VFS timestamping may run outside a scheduler (e.g. while
   staging a filesystem image); report epoch then. *)
let now () = match !scheduler with Some s -> s.clock | None -> 0L
let alive () = (sched ()).live

(* Run one fiber body to completion under the effect handler. Suspension
   parks the continuation; the resumer pushes a thunk back on the run
   queue. *)
let exec_fiber s (f : t) (main : unit -> unit) =
  let finish () = s.live <- s.live - 1 in
  match_with
    (fun () ->
      s.cur <- Some f;
      main ())
    ()
    {
      retc = (fun () -> finish ());
      exnc = (fun e -> finish (); raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let fired = ref false in
                  Hashtbl.replace s.suspended f.fid f.fname;
                  let resume v =
                    if not !fired then begin
                      fired := true;
                      Hashtbl.remove s.suspended f.fid;
                      Queue.push
                        (fun () ->
                          s.cur <- Some f;
                          continue k v)
                        s.runq
                    end
                  in
                  register resume)
          | _ -> None);
    }

let spawn fname main =
  let s = sched () in
  let f = { fid = s.next_fid; fname } in
  s.next_fid <- s.next_fid + 1;
  s.live <- s.live + 1;
  Queue.push (fun () -> exec_fiber s f main) s.runq;
  f

let suspend register = perform (Suspend register)

let yield () =
  suspend (fun resume -> Queue.push (fun () -> resume ()) (sched ()).runq)

let at time fire =
  let s = sched () in
  s.timer_seq <- s.timer_seq + 1;
  Timer_heap.push s.timers { Timer_heap.time; seq = s.timer_seq; fire }

let sleep_until t =
  if Int64.compare t (now ()) > 0 then
    suspend (fun resume -> at t (fun () -> resume ()))
  else yield ()

let run main =
  let s =
    {
      runq = Queue.create ();
      timers = Timer_heap.make ();
      clock = 0L;
      next_fid = 0;
      timer_seq = 0;
      live = 0;
      cur = None;
      suspended = Hashtbl.create 16;
    }
  in
  let saved = !scheduler in
  scheduler := Some s;
  Fun.protect
    ~finally:(fun () -> scheduler := saved)
    (fun () ->
      ignore (spawn "root" main);
      let fire_due () =
        (* Fire every timer due at or before the current clock. *)
        let rec loop () =
          if
            (not (Timer_heap.is_empty s.timers))
            && Int64.compare (Timer_heap.peek s.timers).Timer_heap.time s.clock
               <= 0
          then begin
            (Timer_heap.pop s.timers).Timer_heap.fire ();
            loop ()
          end
        in
        loop ()
      in
      let rec loop () =
        if not (Queue.is_empty s.runq) then begin
          let thunk = Queue.pop s.runq in
          s.clock <- Int64.add s.clock tick_ns;
          thunk ();
          (match (!observer, s.cur) with
          | Some ob, Some f -> ob.ob_quantum f s.clock
          | _ -> ());
          s.cur <- None;
          fire_due ();
          loop ()
        end
        else if not (Timer_heap.is_empty s.timers) then begin
          (* Everyone is blocked: jump the clock to the next deadline. *)
          (let t = (Timer_heap.peek s.timers).Timer_heap.time in
           if Int64.compare t s.clock > 0 then begin
             (match !observer with
             | Some ob -> ob.ob_idle (Int64.sub t s.clock)
             | None -> ());
             s.clock <- t
           end);
          fire_due ();
          loop ()
        end
        else if s.live > 0 then
          raise
            (Deadlock (Hashtbl.fold (fun _ n acc -> n :: acc) s.suspended []))
      in
      loop ())
