(** Deterministic cooperative fibers on OCaml 5 effects.

    Fibers model kernel tasks (light-weight processes): each simulated LWP
    runs as one fiber under a round-robin scheduler with a virtual
    monotonic clock. Blocking kernel operations suspend the current fiber
    and hand an explicit resumer to the caller, which makes wakeup,
    timeout and signal-interruption races easy to express and fully
    deterministic. *)

type t
(** A fiber (scheduled task). *)

val id : t -> int
(** Unique id, dense from 0 in spawn order. *)

val name : t -> string

val spawn : string -> (unit -> unit) -> t
(** [spawn name main] creates a runnable fiber. Must be called from within
    {!run}. An uncaught exception in [main] aborts the whole scheduler. *)

val current : unit -> t
(** The running fiber. @raise Failure outside of {!run}. *)

val yield : unit -> unit
(** Reschedule the current fiber to the back of the run queue. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the current fiber. [register resume] is called
    immediately with a one-shot [resume] function; invoking [resume v] makes
    the fiber runnable again and [suspend] returns [v]. Calling [resume]
    more than once is ignored. *)

val now : unit -> int64
(** Virtual monotonic clock, nanoseconds. Advances by a small tick per
    scheduling quantum, and jumps forward when every fiber is blocked on a
    timer. *)

val sleep_until : int64 -> unit
(** Block until [now () >= t]. *)

val at : int64 -> (unit -> unit) -> unit
(** [at t f] runs [f] (in scheduler context, not in a fiber) once the
    virtual clock reaches [t]. Used for timeouts; [f] typically invokes a
    suspended fiber's resumer. *)

exception Deadlock of string list
(** Raised by {!run} when fibers remain suspended with no timer able to
    wake them. Carries the names of the stuck fibers. *)

val run : (unit -> unit) -> unit
(** [run main] installs a fresh scheduler, runs [main] as the root fiber
    and returns when every fiber has finished.
    @raise Deadlock if the system wedges. *)

val alive : unit -> int
(** Number of fibers spawned and not yet finished (including current). *)

val tick_ns : int64
(** Virtual-clock advance per scheduling quantum. *)

type observer = {
  ob_quantum : t -> int64 -> unit;
      (** [ob_quantum f clock] after each quantum: [f] ran during
          [[clock - tick_ns, clock]]. *)
  ob_idle : int64 -> unit;
      (** [ob_idle delta] when the clock jumps over an idle period of
          [delta] ns (all fibers blocked on timers). *)
}
(** Scheduler observation hook. [tick_ns] per quantum plus the idle
    deltas sum to the final clock exactly. *)

val set_observer : observer option -> unit
(** Install (or clear) the global scheduler observer. Takes effect
    immediately, including for an already-running scheduler. *)
