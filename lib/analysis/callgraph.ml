(** Call graph over a validated module.

    Direct calls are exact: edges come from the compiled [K_call] ops,
    so calls sitting in statically unreachable code do not count.
    [call_indirect] is over-approximated by type: a call through type
    index [ti] may target any elem-segment entry whose function type is
    structurally equal to [types.(ti)]. This engine has no
    table-mutation instructions and the host never writes table slots,
    so elem segments are the complete table contents and the
    over-approximation is sound. *)

open Wasm

type t = {
  cg_module : Ast.module_;
  cg_num_imports : int;
  cg_num_funcs : int; (* full function index space: imports + locals *)
  cg_direct : int list array; (* per function: exact direct callees *)
  cg_indirect_types : int list array; (* per function: call_indirect type idxs *)
  cg_elem_funcs : int list; (* address-taken functions (table contents) *)
}

let build (cm : Code.compiled) : t =
  let m = cm.Code.cm_module in
  let ni = Ast.num_imported_funcs m in
  let n = ni + Array.length m.Ast.funcs in
  let direct = Array.make n [] in
  let itypes = Array.make n [] in
  Array.iteri
    (fun i fc ->
      direct.(ni + i) <- Code.direct_calls fc;
      itypes.(ni + i) <- Code.indirect_call_types fc)
    cm.Code.cm_funcs;
  {
    cg_module = m;
    cg_num_imports = ni;
    cg_num_funcs = n;
    cg_direct = direct;
    cg_indirect_types = itypes;
    cg_elem_funcs = Ast.elem_func_indices m;
  }

(** Structural type of function [idx] across the import/local boundary. *)
let func_type g idx =
  g.cg_module.Ast.types.(Ast.func_type_idx g.cg_module idx)

(** Elem-segment entries type-compatible with [call_indirect] type [ti]:
    the over-approximated target set. *)
let indirect_targets g ti =
  let want = g.cg_module.Ast.types.(ti) in
  List.filter
    (fun fi -> Types.func_type_equal (func_type g fi) want)
    g.cg_elem_funcs

(** Successors of [idx]: direct callees plus, unless [direct_only], the
    over-approximated targets of its indirect calls. *)
let succs ?(direct_only = false) g idx =
  let d = g.cg_direct.(idx) in
  if direct_only then d
  else d @ List.concat_map (indirect_targets g) g.cg_indirect_types.(idx)

(** Which function indices are reachable from [roots] (depth-first over
    [succs])? *)
let reachable ?(direct_only = false) g (roots : int list) : bool array =
  let seen = Array.make (max 1 g.cg_num_funcs) false in
  let rec go idx =
    if idx >= 0 && idx < g.cg_num_funcs && not seen.(idx) then begin
      seen.(idx) <- true;
      List.iter go (succs ~direct_only g idx)
    end
  in
  List.iter go roots;
  seen

(** Every type index some [call_indirect] in the module dispatches on. *)
let indirect_type_indices g =
  Array.to_list g.cg_indirect_types |> List.concat |> List.sort_uniq compare

(** Is import/local function [idx] the target of any direct call? *)
let directly_called g =
  let called = Array.make (max 1 g.cg_num_funcs) false in
  Array.iter
    (List.iter (fun callee ->
         if callee >= 0 && callee < g.cg_num_funcs then called.(callee) <- true))
    g.cg_direct;
  called
