(** Lint diagnostics over a {!Reach.summary}. All of these are warnings:
    they flag wasted surface (dead code, unused imports, uncallable
    table slots) and over-approximation (syscalls allowed only because
    of an indirect call), not soundness problems. Soundness is checked
    dynamically by {!Crosscheck}. *)

open Wasm

type diag =
  | Dead_func of int * string
      (* local function unreachable from every export, start and table slot *)
  | Unused_import of string * string
      (* function import with no direct call site and no table slot *)
  | Uncallable_elem of int * string
      (* table entry no call_indirect type matches and the host cannot invoke *)
  | Indirect_only of string
      (* syscall in the allowlist only via a table entry / indirect call *)

let describe = function
  | Dead_func (i, n) ->
      Printf.sprintf
        "dead function #%d (%s): unreachable from every export, start \
         function and table entry"
        i n
  | Unused_import (m, n) ->
      Printf.sprintf
        "unused import %s.%s: declared but never called (no direct call \
         site, not in any elem segment)"
        m n
  | Uncallable_elem (i, n) ->
      Printf.sprintf
        "uncallable table entry #%d (%s): its type matches no call_indirect \
         in the module and is not a host-invokable callback shape"
        i n
  | Indirect_only s ->
      Printf.sprintf
        "syscall %s is allowed only via an indirect call or table entry \
         (over-approximation: may-reach, not must-reach)"
        s

(* Callback shapes the engine invokes through the table without any
   call_indirect: signal handlers (i32)->() and thread entries
   (i32)->(i32) (see Engine.handler_func / Interface.do_thread_spawn). *)
let host_invokable (ft : Types.func_type) =
  match (ft.Types.params, ft.Types.results) with
  | [ Types.T_i32 ], [] | [ Types.T_i32 ], [ Types.T_i32 ] -> true
  | _ -> false

let lint (s : Reach.summary) : diag list =
  let g = s.Reach.s_graph in
  let m = s.Reach.s_module in
  let ni = g.Callgraph.cg_num_imports in
  let dead =
    List.filter_map
      (fun i ->
        let idx = ni + i in
        if s.Reach.s_reachable.(idx) then None
        else Some (Dead_func (idx, Ast.func_name m idx)))
      (List.init (Array.length m.Ast.funcs) Fun.id)
  in
  let called = Callgraph.directly_called g in
  let in_elem fi = List.mem fi g.Callgraph.cg_elem_funcs in
  let unused_imports =
    List.filter_map
      (fun (i, imp, _) ->
        if called.(i) || in_elem i then None
        else Some (Unused_import (imp.Ast.imp_module, imp.Ast.imp_name)))
      s.Reach.s_imports
  in
  let itypes =
    List.map
      (fun ti -> m.Ast.types.(ti))
      (Callgraph.indirect_type_indices g)
  in
  let uncallable =
    List.filter_map
      (fun fi ->
        let ft = Callgraph.func_type g fi in
        if host_invokable ft then None
        else if List.exists (Types.func_type_equal ft) itypes then None
        else Some (Uncallable_elem (fi, Ast.func_name m fi)))
      g.Callgraph.cg_elem_funcs
  in
  dead @ unused_imports @ uncallable
  @ List.map (fun n -> Indirect_only n) s.Reach.s_indirect_only
