(** Human-readable rendering of an analysis {!Reach.summary} — the
    `waliscan` output format. *)

open Wasm

let wrap_names ?(indent = "    ") ?(width = 72) names =
  let buf = Buffer.create 256 in
  let line = Buffer.create 80 in
  let flush_line () =
    if Buffer.length line > 0 then begin
      Buffer.add_string buf indent;
      Buffer.add_buffer buf line;
      Buffer.add_char buf '\n';
      Buffer.clear line
    end
  in
  List.iter
    (fun n ->
      if Buffer.length line + String.length n + 1 > width then flush_line ();
      if Buffer.length line > 0 then Buffer.add_char line ' ';
      Buffer.add_string line n)
    names;
  flush_line ();
  Buffer.contents buf

let render ?(lints = []) (s : Reach.summary) : string =
  let b = Buffer.create 1024 in
  let m = s.Reach.s_module in
  let g = s.Reach.s_graph in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let name = if s.Reach.s_name = "" then "(module)" else s.Reach.s_name in
  let n_imp = g.Callgraph.cg_num_imports in
  let n_local = Array.length m.Ast.funcs in
  let live =
    Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0
      s.Reach.s_reachable
  in
  pf "module %s: %d functions (%d imported), %d live, %d exports, %d table entries\n"
    name (n_imp + n_local) n_imp live
    (List.length (Ast.exported_funcs m))
    (List.length g.Callgraph.cg_elem_funcs);
  let count k =
    List.length
      (List.filter
         (fun (_, _, kk) ->
           match (k, kk) with
           | `Sys, Classify.Syscall _
           | `Env, Classify.Env_helper _
           | `Wasi, Classify.Wasi_call _
           | `Other, Classify.Host_other _ ->
               true
           | _ -> false)
         s.Reach.s_imports)
  in
  pf "  imports: %d syscalls, %d env helpers, %d wasi, %d other\n"
    (count `Sys) (count `Env) (count `Wasi) (count `Other);
  pf "  minimal allowlist (%d syscalls):\n%s"
    (List.length s.Reach.s_syscalls)
    (wrap_names s.Reach.s_syscalls);
  if s.Reach.s_wasi_calls <> [] then
    pf "  wasi preview1 surface (%d calls, resolved by the adapter):\n%s"
      (List.length s.Reach.s_wasi_calls)
      (wrap_names s.Reach.s_wasi_calls);
  if s.Reach.s_per_export <> [] then begin
    pf "  per-export syscall reachability:\n";
    List.iter
      (fun (en, sys) ->
        pf "    %-20s %d syscall%s%s\n" en (List.length sys)
          (if List.length sys = 1 then "" else "s")
          (if sys = [] then ""
           else if List.length sys <= 8 then ": " ^ String.concat " " sys
           else ""))
      s.Reach.s_per_export
  end;
  if lints <> [] then begin
    pf "  diagnostics (%d):\n" (List.length lints);
    List.iter (fun d -> pf "    warning: %s\n" (Lint.describe d)) lints
  end;
  Buffer.contents b

let print ?lints s = print_string (render ?lints s)

(** The generated policy, one syscall per line — pipe into tooling. *)
let policy_lines (s : Reach.summary) : string =
  String.concat "" (List.map (fun n -> n ^ "\n") s.Reach.s_syscalls)
