(** Static syscall reachability: per-export reachability sets and the
    whole-module minimal allowlist, derived from the call graph.

    This closes the loop the paper leaves open in §3.6: the import
    section is the module's complete syscall *manifest*, but the minimal
    *policy* is the subset of that manifest actually reachable at run
    time. Roots are:

    - every exported function (and the start function), which the host
      may invoke by name; and
    - every elem-segment entry, because the engine invokes table slots
      directly — signal handlers registered via [rt_sigaction] and
      [thread_spawn] entries run without any [call_indirect] — so
      address-taken functions are live even if no export reaches them.

    Dropping either root class would make the derived policy unsound;
    the dynamic cross-check in {!Crosscheck} exists to prove it is not. *)

open Wasm

type summary = {
  s_name : string;
  s_module : Ast.module_;
  s_graph : Callgraph.t;
  s_imports : (int * Ast.import * Classify.kind) list;
  s_roots : (string * int) list; (* root label -> function index *)
  s_reachable : bool array; (* full index space, from all roots *)
  s_per_export : (string * string list) list; (* export -> syscall set *)
  s_syscalls : string list; (* the whole-module minimal allowlist *)
  s_env_helpers : string list; (* reachable argv/env methods + thread_spawn *)
  s_wasi_calls : string list; (* imported preview1 functions (adapter layer) *)
  s_other_imports : (string * string) list;
  s_indirect_only : string list; (* in the allowlist only via tables/indirect *)
}

(* Syscall names among [imports] whose function index is marked in
   [seen]. *)
let syscalls_in imports (seen : bool array) : string list =
  List.filter_map
    (fun (i, _, k) ->
      match k with
      | Classify.Syscall n when seen.(i) -> Some n
      | _ -> None)
    imports
  |> List.sort_uniq compare

let analyze ?(name = "") (m : Ast.module_) : summary =
  let cm = Code.compile_module m in
  let g = Callgraph.build cm in
  let imports = Classify.func_imports m in
  let exports = Ast.exported_funcs m in
  let start_roots =
    match m.Ast.start with Some s -> [ ("(start)", s) ] | None -> []
  in
  let elem_roots =
    List.map (fun fi -> ("(table)", fi)) g.Callgraph.cg_elem_funcs
  in
  let roots = exports @ start_roots @ elem_roots in
  let seen = Callgraph.reachable g (List.map snd roots) in
  let syscalls = syscalls_in imports seen in
  (* Over-approximation accounting: what would direct call chains from
     the named entry points (exports + start) alone reach? Anything in
     the allowlist beyond that is there only because of a table entry or
     an indirect call — flag it so policy reviewers know it is a
     may-reach, not a must-reach. *)
  let named_roots = List.map snd (exports @ start_roots) in
  let seen_direct = Callgraph.reachable ~direct_only:true g named_roots in
  let direct_syscalls = syscalls_in imports seen_direct in
  let indirect_only =
    List.filter (fun s -> not (List.mem s direct_syscalls)) syscalls
  in
  let per_export =
    List.map
      (fun (en, ei) -> (en, syscalls_in imports (Callgraph.reachable g [ ei ])))
      exports
  in
  let pick f =
    List.filter_map (fun (i, _, k) -> if seen.(i) then f k else None) imports
    |> List.sort_uniq compare
  in
  {
    s_name = (if name = "" then m.Ast.m_name else name);
    s_module = m;
    s_graph = g;
    s_imports = imports;
    s_roots = roots;
    s_reachable = seen;
    s_per_export = per_export;
    s_syscalls = syscalls;
    s_env_helpers =
      pick (function Classify.Env_helper n -> Some n | _ -> None);
    s_wasi_calls =
      (* the adapter resolves these below the module; list them all so a
         layered run can derive the adapter-side policy separately *)
      List.filter_map
        (fun (_, _, k) ->
          match k with Classify.Wasi_call n -> Some n | _ -> None)
        imports
      |> List.sort_uniq compare;
    s_other_imports =
      List.filter_map
        (fun (_, _, k) ->
          match k with Classify.Host_other (m, n) -> Some (m, n) | _ -> None)
        imports
      |> List.sort_uniq compare;
    s_indirect_only = indirect_only;
  }

(** Decode and analyze a Wasm binary. Raises [Binary.Decode_error] /
    [Code.Invalid] on malformed modules — analyzer errors, not lints. *)
let analyze_binary ?name (binary : string) : summary =
  analyze ?name (Binary.decode binary)

(** The whole-module minimal allowlist. *)
let allowlist (s : summary) : string list = s.s_syscalls

(** A ready-made default-deny {!Wali.Seccomp} policy seeded with the
    derived allowlist — the gVisor/Nabla shape, computed not hand-seeded. *)
let policy (s : summary) : Wali.Seccomp.t = Wali.Seccomp.allowlist s.s_syscalls
