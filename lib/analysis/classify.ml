(** Import classification against the WALI naming convention of
    {!Wali.Spec}: [("wali", "SYS_" ^ name)] virtual syscalls, the
    argv/env support methods and [thread_spawn] (paper §3.4), and the
    WASI preview1 surface an application imports when it runs layered
    over the sandboxed adapter (Fig 1/Fig 6).

    Only [Syscall] imports are policy-relevant: they are the calls the
    engine routes through {!Wali.Seccomp.check}. *)

type kind =
  | Syscall of string (* ("wali", "SYS_x"): checked by the seccomp layer *)
  | Env_helper of string (* argv/env methods + thread_spawn: engine-internal *)
  | Wasi_call of string (* preview1 API, resolved by the WASI adapter *)
  | Host_other of string * string (* anything else (env.memory, custom hosts) *)

let wasi_modules = [ "wasi_snapshot_preview1"; "wasi_unstable" ]

let classify (imp : Wasm.Ast.import) : kind =
  let m = imp.Wasm.Ast.imp_module and n = imp.Wasm.Ast.imp_name in
  if m = Wali.Spec.import_module then
    if String.length n > 4 && String.sub n 0 4 = "SYS_" then
      Syscall (String.sub n 4 (String.length n - 4))
    else if n = "thread_spawn" || List.mem_assoc n Wali.Spec.env_methods then
      Env_helper n
    else Host_other (m, n)
  else if List.mem m wasi_modules then Wasi_call n
  else Host_other (m, n)

(** Is [name] resolvable by the engine at all (implemented handler or
    auto-generated ENOSYS stub)? Anything else fails at link time. *)
let known_syscall name = Wali.Spec.find name <> None

let implemented_syscall name =
  match Wali.Spec.find name with
  | Some e -> e.Wali.Spec.implemented
  | None -> false

(** The classified function imports of a module, with their position in
    the function index space (imports precede local definitions). *)
let func_imports (m : Wasm.Ast.module_) :
    (int * Wasm.Ast.import * kind) list =
  List.mapi
    (fun i (imp, _ty) -> (i, imp, classify imp))
    (Wasm.Ast.imported_funcs m)
