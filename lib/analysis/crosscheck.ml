(** Dynamic soundness check for the static analyzer: run the module
    under its *derived* policy with tracing and diff the observed
    syscall profile against the static reachability set.

    The invariant: the static set must be a superset of the dynamic set.
    Any dynamically observed syscall outside the static set — or any
    seccomp denial under the derived allowlist — is an analyzer
    soundness bug, not an application bug, and callers are expected to
    fail loudly on it. (Denials and escapes are distinct observables:
    a denied call is intercepted before tracing, so an unsound policy
    shows up in [cc_denied] while an unsound *trace* comparison would
    show up in [cc_escaped].) *)

type result = {
  cc_status : int; (* packed wait status of the run *)
  cc_output : string; (* console output *)
  cc_static : string list; (* the derived allowlist *)
  cc_dynamic : string list; (* syscalls actually dispatched *)
  cc_escaped : string list; (* dynamic \ static: soundness violations *)
  cc_denied : (string * int) list; (* seccomp denials under the policy *)
  cc_unused_allow : string list; (* static \ dynamic: over-approximation *)
}

let ok (r : result) = r.cc_escaped = [] && r.cc_denied = []

(** Run [binary] under the policy derived from [summary].
    [setup]/[stdin] mirror the app-suite harness: VFS fixtures and
    console input the workload expects. *)
let run ?(setup = fun (_ : Kernel.Task.kernel) -> ()) ?(stdin = "")
    ?(argv = [ "module" ]) ?(env = []) ~(summary : Reach.summary)
    ~(binary : string) () : result =
  let static = Reach.allowlist summary in
  let policy = Reach.policy summary in
  let trace = Wali.Strace.create () in
  let kernel = Kernel.Task.boot () in
  setup kernel;
  if stdin <> "" then begin
    Kernel.Task.console_feed kernel stdin;
    Kernel.Pipe.drop_writer kernel.Kernel.Task.console_in
  end;
  let status, out, _ =
    Wali.Interface.run_program ~kernel ~trace ~policy ~binary ~argv ~env ()
  in
  let dynamic =
    List.map fst (Wali.Strace.profile trace) |> List.sort_uniq compare
  in
  let escaped = List.filter (fun s -> not (List.mem s static)) dynamic in
  let unused = List.filter (fun s -> not (List.mem s dynamic)) static in
  {
    cc_status = status;
    cc_output = out;
    cc_static = static;
    cc_dynamic = dynamic;
    cc_escaped = escaped;
    cc_denied = Wali.Seccomp.denied_counts policy;
    cc_unused_allow = unused;
  }

(** One-call form: derive the policy from [binary] itself, then verify. *)
let run_binary ?setup ?stdin ?argv ?env ?name (binary : string) : result =
  let summary = Reach.analyze_binary ?name binary in
  run ?setup ?stdin ?argv ?env ~summary ~binary ()
