(** Folded-stack profile accumulator (flamegraph / inferno input format:
    one [root;child;leaf weight] line per unique stack). Weights are
    nanoseconds of the deterministic profile clock — Wasm instructions
    retired (1 ns each) plus virtual time spent below the WALI boundary —
    so two identical runs fold to byte-identical output. *)

type t = {
  tbl : (string, int64 ref) Hashtbl.t;
  mutable total : int64;
}

let create () = { tbl = Hashtbl.create 64; total = 0L }

let key_of (stack : string list) =
  match stack with [] -> "(toplevel)" | _ -> String.concat ";" stack

let add t (stack : string list) (weight : int64) =
  if Int64.compare weight 0L > 0 then begin
    let key = key_of stack in
    (match Hashtbl.find_opt t.tbl key with
    | Some r -> r := Int64.add !r weight
    | None -> Hashtbl.replace t.tbl key (ref weight));
    t.total <- Int64.add t.total weight
  end

let total t = t.total

let stacks t = Hashtbl.length t.tbl

(** Folded output, lines sorted lexicographically by stack (stable across
    runs independent of hashtable iteration order). *)
let dump t : string =
  let lines =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let b = Buffer.create 1024 in
  List.iter (fun (k, w) -> Printf.bprintf b "%s %Ld\n" k w) lines;
  Buffer.contents b

(** Sum of weights in a folded dump (for consistency checks). *)
let parse_total (folded : string) : (int64, string) result =
  let lines = String.split_on_char '\n' folded in
  let rec go acc = function
    | [] -> Ok acc
    | "" :: rest -> go acc rest
    | line :: rest -> (
        match String.rindex_opt line ' ' with
        | None -> Error (Printf.sprintf "malformed folded line: %s" line)
        | Some i -> (
            let w = String.sub line (i + 1) (String.length line - i - 1) in
            match Int64.of_string_opt w with
            | Some w -> go (Int64.add acc w) rest
            | None -> Error (Printf.sprintf "malformed weight: %s" line)))
  in
  go 0L lines
