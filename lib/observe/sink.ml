(** The observability sink: one object threaded through engine, WALI
    interface and kernel that fans events out to the three pillars —
    the metrics registry ({!Metrics}), the Chrome trace buffer
    ({!Tracebuf}) and the folded-stack profiler ({!Profile}).

    Pillars are enabled independently via {!config}; disabled pillars
    cost one branch per event. Run-level counters (virtual wall time,
    instructions retired, safepoint polls, traps, context switches) are
    always accumulated — they are a handful of adds per quantum.

    Time base: the deterministic virtual clock. One Wasm step counts as
    1 ns of CPU; time a fiber spends below the WALI boundary is the
    virtual-clock delta across the syscall. The folded profile's total
    weight therefore equals the [profile_ns] field of the metrics dump
    exactly, and two identical runs produce identical dumps. *)

type config = {
  c_metrics : bool; (* per-syscall histograms + kernel counters dump *)
  c_trace : bool; (* Chrome trace-event spans *)
  c_profile : bool; (* folded-stack profiler (call/return driven) *)
}

let all_on = { c_metrics = true; c_trace = true; c_profile = true }
let metrics_only = { c_metrics = true; c_trace = false; c_profile = false }

(** Synthetic pid lane carrying scheduler quanta (one tid per fiber), so
    scheduling never cross-nests with the per-process syscall lanes. *)
let sched_pid = 999_999

type prof_state = { mutable ps_last_steps : int64 }

type t = {
  cfg : config;
  reg : Metrics.t; (* possibly shared with Strace *)
  mutable ks : Metrics.kstats option; (* kernel counter block, set at attach *)
  tb : Tracebuf.t;
  pf : Profile.t;
  prof : (int, prof_state) Hashtbl.t; (* pid -> step counter at last sample *)
  instr_base : (int, int64 * int64) Hashtbl.t;
      (* pid -> (steps, fused dispatches) at machine birth *)
  mutable instructions : int64; (* retired across all exited machines *)
  mutable fused : int64; (* superinstruction dispatches, same lifecycle *)
  mutable fuse_before : int; (* flat ops of all built images, pre-fusion *)
  mutable fuse_after : int;
  mutable fuse_sites : int; (* static superinstruction sites *)
  mutable polls : int64;
  mutable traps : int;
  mutable ctx_switches : int;
  mutable procs : int;
  mutable wall_ns : int64;
  mutable idle_ns : int64;
  (* scheduler-lane span coalescing *)
  mutable last_fid : int;
  mutable sched_open : bool;
  mutable sched_fid : int;
  mutable sched_name : string;
  mutable last_q_end : int64;
}

let create ?metrics cfg =
  {
    cfg;
    reg = (match metrics with Some m -> m | None -> Metrics.create ());
    ks = None;
    tb = Tracebuf.create ();
    pf = Profile.create ();
    prof = Hashtbl.create 8;
    instr_base = Hashtbl.create 8;
    instructions = 0L;
    fused = 0L;
    fuse_before = 0;
    fuse_after = 0;
    fuse_sites = 0;
    polls = 0L;
    traps = 0;
    ctx_switches = 0;
    procs = 0;
    wall_ns = 0L;
    idle_ns = 0L;
    last_fid = -1;
    sched_open = false;
    sched_fid = -1;
    sched_name = "";
    last_q_end = 0L;
  }

let metrics o = o.reg
let set_kstats o ks = o.ks <- Some ks
let profiling o = o.cfg.c_profile
let tracing o = o.cfg.c_trace

(* ---- syscalls ---- *)

let syscall_begin o ~pid ~tid ~name ~ts =
  if o.cfg.c_trace then Tracebuf.span_begin o.tb ~name ~cat:"syscall" ~pid ~tid ~ts

(** Aggregate one completed syscall into the registry. Callers sharing
    the registry with a {!Strace} tracer must not call this (the tracer
    already recorded it) — see [Interface.traced_dispatch]. *)
let record_syscall o ~name ~result ~ns = Metrics.record o.reg ~name ~result ~ns

let syscall_end o ~pid ~tid ~name ~ts ~ns ~result ~(stack : unit -> string list)
    =
  if o.cfg.c_trace then
    Tracebuf.span_end o.tb ~name ~cat:"syscall" ~pid ~tid ~ts
      ~args:[ ("result", Int64.to_string result) ]
      ();
  (* Attribute time below the boundary to the calling Wasm stack, with
     the syscall name as leaf frame. *)
  if o.cfg.c_profile && Int64.compare ns 0L > 0 then
    Profile.add o.pf (stack () @ [ name ]) ns

(* ---- profiler (call/return driven) ---- *)

(** Charge the steps executed since the previous sample to the machine's
    current frame stack. Called from the interpreter's push/pop hooks
    before the stack mutates, so the charged stack is the one that ran.
    The first sample for a pid only establishes the baseline (handles
    fork, whose child clones the parent's step counter). *)
let prof_sample o ~pid ~(steps : int64) ~(stack : unit -> string list) =
  match Hashtbl.find_opt o.prof pid with
  | None -> Hashtbl.replace o.prof pid { ps_last_steps = steps }
  | Some ps ->
      let delta = Int64.sub steps ps.ps_last_steps in
      ps.ps_last_steps <- steps;
      if Int64.compare delta 0L > 0 then Profile.add o.pf (stack ()) delta

(** Forget a pid's sample baseline (exec replaces the machine; its step
    counter restarts). *)
let prof_reset o ~pid = Hashtbl.remove o.prof pid

(* ---- instructions retired ---- *)

let instr_baseline o ~pid ~steps ~fused =
  Hashtbl.replace o.instr_base pid (steps, fused)

let instr_retire o ~pid ~steps ~fused =
  let sb, fb =
    match Hashtbl.find_opt o.instr_base pid with
    | Some b -> b
    | None -> (0L, 0L)
  in
  let d = Int64.sub steps sb in
  if Int64.compare d 0L > 0 then o.instructions <- Int64.add o.instructions d;
  let df = Int64.sub fused fb in
  if Int64.compare df 0L > 0 then o.fused <- Int64.add o.fused df;
  Hashtbl.remove o.instr_base pid

(* ---- macro-op fusion coverage ---- *)

(** Record the static fusion stats of a freshly built process image
    (initial load and each execve); images accumulate over the run. *)
let note_fusion o ~ops_before ~ops_after ~(sites : (string * int) list) =
  o.fuse_before <- o.fuse_before + ops_before;
  o.fuse_after <- o.fuse_after + ops_after;
  o.fuse_sites <-
    o.fuse_sites + List.fold_left (fun a (_, n) -> a + n) 0 sites

(* ---- processes ---- *)

let proc_start o ~pid ~tid ~comm ~ts =
  o.procs <- o.procs + 1;
  if o.cfg.c_trace then begin
    Tracebuf.name_process o.tb ~pid ~name:(Printf.sprintf "%s (pid %d)" comm pid);
    Tracebuf.name_thread o.tb ~pid ~tid ~name:(Printf.sprintf "tid %d" tid);
    Tracebuf.instant o.tb ~name:"proc_start" ~cat:"proc" ~pid ~tid ~ts ()
  end

let proc_exit o ~pid ~tid ~status ~ts =
  if o.cfg.c_trace then
    Tracebuf.instant o.tb ~name:"proc_exit" ~cat:"proc" ~pid ~tid ~ts
      ~args:[ ("status", string_of_int status) ]
      ()

(* ---- signals ---- *)

let signal_begin o ~pid ~tid ~signo ~ts =
  if o.cfg.c_trace then
    Tracebuf.span_begin o.tb
      ~name:(Printf.sprintf "sig%d" signo)
      ~cat:"signal" ~pid ~tid ~ts

let signal_end o ~pid ~tid ~signo ~ts =
  if o.cfg.c_trace then
    Tracebuf.span_end o.tb
      ~name:(Printf.sprintf "sig%d" signo)
      ~cat:"signal" ~pid ~tid ~ts ()

let signal_fatal o ~pid ~tid ~signo ~ts =
  if o.cfg.c_trace then
    Tracebuf.instant o.tb
      ~name:(Printf.sprintf "fatal sig%d" signo)
      ~cat:"signal" ~pid ~tid ~ts ()

(* ---- engine counters ---- *)

let safepoint_poll o = o.polls <- Int64.add o.polls 1L
let trap o = o.traps <- o.traps + 1

(* ---- scheduler observation ---- *)

let close_sched o =
  if o.sched_open then begin
    Tracebuf.span_end o.tb ~name:o.sched_name ~cat:"sched" ~pid:sched_pid
      ~tid:o.sched_fid ~ts:o.last_q_end ();
    o.sched_open <- false
  end

(* One scheduling quantum finished at [ts] (it covered
   [ts - tick_ns, ts]). Contiguous quanta of the same fiber coalesce
   into a single span on the scheduler lane. *)
let on_quantum o f (ts : int64) =
  o.wall_ns <- Int64.add o.wall_ns Fiber.tick_ns;
  let fid = Fiber.id f in
  if o.last_fid >= 0 && o.last_fid <> fid then
    o.ctx_switches <- o.ctx_switches + 1;
  o.last_fid <- fid;
  if o.cfg.c_trace then begin
    let start = Int64.sub ts Fiber.tick_ns in
    if o.sched_open && o.sched_fid = fid && Int64.equal o.last_q_end start then
      o.last_q_end <- ts
    else begin
      close_sched o;
      Tracebuf.name_process o.tb ~pid:sched_pid ~name:"scheduler";
      Tracebuf.name_thread o.tb ~pid:sched_pid ~tid:fid ~name:(Fiber.name f);
      Tracebuf.span_begin o.tb ~name:(Fiber.name f) ~cat:"sched" ~pid:sched_pid
        ~tid:fid ~ts:start;
      o.sched_open <- true;
      o.sched_fid <- fid;
      o.sched_name <- Fiber.name f;
      o.last_q_end <- ts
    end
  end

let on_idle o (delta : int64) =
  o.wall_ns <- Int64.add o.wall_ns delta;
  o.idle_ns <- Int64.add o.idle_ns delta

let attach o =
  Fiber.set_observer
    (Some
       {
         Fiber.ob_quantum = (fun f ts -> on_quantum o f ts);
         ob_idle = (fun d -> on_idle o d);
       })

let detach o =
  close_sched o;
  Fiber.set_observer None

(* ---- dumps ---- *)

let trace_json o = Tracebuf.dump o.tb
let trace_events o = Tracebuf.events o.tb
let profile_folded o = Profile.dump o.pf
let profile_total o = Profile.total o.pf
let wall_ns o = o.wall_ns

(** The always-on run counters as a plain record, so consumers (waliperf)
    read them without going through the JSON dump. Every field is
    deterministic — virtual clock, instruction counts, scheduler and
    engine event counts — never the host wall clock. *)
type run_counters = {
  rc_wall_ns : int64;
  rc_idle_ns : int64;
  rc_instructions : int64;
  rc_fused : int64; (* superinstruction dispatches retired *)
  rc_fusion_sites : int; (* static superinstruction sites in built images *)
  rc_fusion_ops_before : int;
  rc_fusion_ops_after : int;
  rc_safepoint_polls : int64;
  rc_traps : int;
  rc_ctx_switches : int;
  rc_processes : int;
  rc_profile_ns : int64;
}

let run_counters o =
  {
    rc_wall_ns = o.wall_ns;
    rc_idle_ns = o.idle_ns;
    rc_instructions = o.instructions;
    rc_fused = o.fused;
    rc_fusion_sites = o.fuse_sites;
    rc_fusion_ops_before = o.fuse_before;
    rc_fusion_ops_after = o.fuse_after;
    rc_safepoint_polls = o.polls;
    rc_traps = o.traps;
    rc_ctx_switches = o.ctx_switches;
    rc_processes = o.procs;
    rc_profile_ns = Profile.total o.pf;
  }

let schema_version = 1

let kstats_or_zero o =
  match o.ks with Some ks -> ks | None -> Metrics.kstats_create ()

let metrics_json o : string =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"schema\":\"wali-metrics\",\"version\":%d," schema_version;
  Printf.bprintf b
    "\"run\":{\"wall_ns\":%Ld,\"idle_ns\":%Ld,\"instructions\":%Ld,\"fused_dispatches\":%Ld,\"fusion_sites\":%d,\"fusion_ops_before\":%d,\"fusion_ops_after\":%d,\"safepoint_polls\":%Ld,\"traps\":%d,\"processes\":%d,\"profile_ns\":%Ld},"
    o.wall_ns o.idle_ns o.instructions o.fused o.fuse_sites o.fuse_before
    o.fuse_after o.polls o.traps o.procs
    (Profile.total o.pf);
  Buffer.add_string b "\"syscalls\":{";
  List.iteri
    (fun i (name, (s : Metrics.syscall_stats)) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "%s:{\"calls\":%d,\"errors\":%d,\"total_ns\":%Ld,\"p50_ns\":%Ld,\"p90_ns\":%Ld,\"p99_ns\":%Ld,\"max_ns\":%Ld,\"buckets\":["
        (Json.quote name) s.calls s.errors s.ns
        (Hist.percentile s.hist 0.50)
        (Hist.percentile s.hist 0.90)
        (Hist.percentile s.hist 0.99)
        (Hist.max_value s.hist);
      List.iteri
        (fun j (bi, c) ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "[%d,%d]" bi c)
        (Hist.nonzero s.hist);
      Buffer.add_string b "]}")
    (Metrics.by_name o.reg);
  Buffer.add_string b "},";
  let ks = kstats_or_zero o in
  Buffer.add_string b "\"kernel\":{\"vfs\":{";
  List.iteri
    (fun i (op, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%s:%d" (Json.quote op) n)
    (Metrics.vfs_by_name ks);
  Printf.bprintf b
    "},\"fd_high_water\":%d,\"futex_waits\":%d,\"futex_wakes\":%d,\"signals_queued\":%d,\"signals_delivered\":%d,\"pipe_bytes\":%Ld,\"socket_bytes\":%Ld,\"dcache_hits\":%Ld,\"dcache_misses\":%Ld,\"context_switches\":%d}}"
    ks.Metrics.fd_high_water ks.Metrics.futex_waits ks.Metrics.futex_wakes
    ks.Metrics.sig_queued ks.Metrics.sig_delivered ks.Metrics.pipe_bytes
    ks.Metrics.sock_bytes ks.Metrics.dcache_hits ks.Metrics.dcache_misses
    o.ctx_switches;
  Buffer.add_string b "\n";
  Buffer.contents b

(* walitop-style human summary *)
let report o : string =
  let b = Buffer.create 2048 in
  let ks = kstats_or_zero o in
  let pct_idle =
    if Int64.compare o.wall_ns 0L > 0 then
      100.0 *. Int64.to_float o.idle_ns /. Int64.to_float o.wall_ns
    else 0.0
  in
  Printf.bprintf b "== run ==\n";
  Printf.bprintf b "  wall            %Ld ns  (idle %.1f%%)\n" o.wall_ns pct_idle;
  Printf.bprintf b "  processes       %d\n" o.procs;
  Printf.bprintf b "  ctx switches    %d\n" o.ctx_switches;
  Printf.bprintf b "  instructions    %Ld\n" o.instructions;
  (if o.fuse_sites > 0 || Int64.compare o.fused 0L > 0 then
     let saved =
       if Int64.compare o.instructions 0L > 0 then
         100.0 *. Int64.to_float o.fused /. Int64.to_float o.instructions
       else 0.0
     in
     Printf.bprintf b
       "  fusion          %Ld dispatches (%.1f%% of instrs), %d sites, ops %d -> %d\n"
       o.fused saved o.fuse_sites o.fuse_before o.fuse_after);
  Printf.bprintf b "  safepoint polls %Ld\n" o.polls;
  Printf.bprintf b "  traps           %d\n" o.traps;
  if o.cfg.c_profile then
    Printf.bprintf b "  profiled        %Ld ns over %d stacks\n"
      (Profile.total o.pf) (Profile.stacks o.pf);
  Printf.bprintf b "== syscalls ==\n";
  Printf.bprintf b "  %-18s %7s %6s %12s %9s %9s %9s\n" "name" "calls" "errs"
    "total_ns" "p50_ns" "p90_ns" "p99_ns";
  let by_time = Metrics.by_time o.reg in
  List.iter
    (fun (name, (s : Metrics.syscall_stats)) ->
      Printf.bprintf b "  %-18s %7d %6d %12Ld %9Ld %9Ld %9Ld\n" name s.calls
        s.errors s.ns
        (Hist.percentile s.hist 0.50)
        (Hist.percentile s.hist 0.90)
        (Hist.percentile s.hist 0.99))
    by_time;
  Printf.bprintf b "== kernel ==\n";
  (match Metrics.vfs_by_name ks with
  | [] -> ()
  | ops ->
      Printf.bprintf b "  vfs            ";
      List.iteri
        (fun i (op, n) ->
          if i > 0 then Buffer.add_char b ' ';
          Printf.bprintf b "%s=%d" op n)
        ops;
      Buffer.add_char b '\n');
  Printf.bprintf b "  fd high water   %d\n" ks.Metrics.fd_high_water;
  Printf.bprintf b "  futex wait/wake %d/%d\n" ks.Metrics.futex_waits
    ks.Metrics.futex_wakes;
  Printf.bprintf b "  sig queue/deliv %d/%d\n" ks.Metrics.sig_queued
    ks.Metrics.sig_delivered;
  Printf.bprintf b "  pipe bytes      %Ld\n" ks.Metrics.pipe_bytes;
  Printf.bprintf b "  socket bytes    %Ld\n" ks.Metrics.sock_bytes;
  Printf.bprintf b "  dcache hit/miss %Ld/%Ld\n" ks.Metrics.dcache_hits
    ks.Metrics.dcache_misses;
  Buffer.contents b
