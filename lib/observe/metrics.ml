(** The metrics registry: per-syscall aggregation (calls, errors, time,
    log2 latency histogram) plus the kernel-internal counter block.

    There is exactly one per-syscall aggregation in the system — Strace
    is a thin consumer of this registry, and the observability sink dumps
    it — so the WALI boundary is counted once, whoever is looking. *)

type syscall_stats = {
  mutable calls : int;
  mutable errors : int;
  mutable ns : int64; (* total time below the WALI boundary *)
  hist : Hist.t; (* latency distribution, ns *)
}

type t = {
  tbl : (string, syscall_stats) Hashtbl.t;
  mutable total : int; (* total calls across all syscalls *)
}

let create () = { tbl = Hashtbl.create 64; total = 0 }

let stats_of t name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s
  | None ->
      let s = { calls = 0; errors = 0; ns = 0L; hist = Hist.create () } in
      Hashtbl.replace t.tbl name s;
      s

let record t ~name ~(result : int64) ~(ns : int64) =
  let s = stats_of t name in
  s.calls <- s.calls + 1;
  if Int64.compare result 0L < 0 then s.errors <- s.errors + 1;
  s.ns <- Int64.add s.ns (if Int64.compare ns 0L > 0 then ns else 0L);
  Hist.record s.hist ns;
  t.total <- t.total + 1

let find t name = Hashtbl.find_opt t.tbl name

let fold f t acc = Hashtbl.fold f t.tbl acc

let unique t = Hashtbl.length t.tbl
let total_calls t = t.total

let total_errors t = fold (fun _ s acc -> acc + s.errors) t 0
let total_ns t = fold (fun _ s acc -> Int64.add acc s.ns) t 0L

(** [(name, stats)] sorted by name (deterministic dump order). *)
let by_name t : (string * syscall_stats) list =
  fold (fun name s acc -> (name, s) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Deterministic row orderings shared by every consumer that renders
   per-syscall tables (Strace profiles, the walitop report, waliperf).
   Both break remaining ties on the syscall name, never on hashtable
   iteration order, so equal-count rows render identically across runs. *)

let cmp_by_calls (an, (a : syscall_stats)) (bn, (b : syscall_stats)) =
  match compare b.calls a.calls with 0 -> compare an bn | c -> c

let cmp_by_time (an, (a : syscall_stats)) (bn, (b : syscall_stats)) =
  let c = Int64.compare b.ns a.ns in
  if c <> 0 then c
  else match compare b.calls a.calls with 0 -> compare an bn | c -> c

(** [(name, stats)] by call count descending, then name. *)
let by_calls t : (string * syscall_stats) list =
  fold (fun name s acc -> (name, s) :: acc) t [] |> List.sort cmp_by_calls

(** [(name, stats)] by total time descending, then calls, then name. *)
let by_time t : (string * syscall_stats) list =
  fold (fun name s acc -> (name, s) :: acc) t [] |> List.sort cmp_by_time

let reset t =
  Hashtbl.reset t.tbl;
  t.total <- 0

(* ------------------------------------------------------------------ *)
(* Kernel-internal counters                                             *)
(* ------------------------------------------------------------------ *)

(** Counters owned by the simulated kernel ([Task.kernel] carries one of
    these from boot): always on, incremented inline by the kernel paths
    themselves, read out by the sink at dump time. *)
type kstats = {
  vfs : (string, int ref) Hashtbl.t; (* VFS operations by type *)
  mutable fd_high_water : int; (* highest fd slot ever installed, +1 *)
  mutable futex_waits : int;
  mutable futex_wakes : int; (* waiters actually woken *)
  mutable sig_queued : int;
  mutable sig_delivered : int;
  mutable pipe_bytes : int64; (* bytes moved through pipes/FIFOs *)
  mutable sock_bytes : int64; (* bytes moved through sockets *)
  mutable dcache_hits : int64; (* path resolutions served from the dentry cache *)
  mutable dcache_misses : int64; (* resolutions that walked the tree *)
}

let kstats_create () =
  {
    vfs = Hashtbl.create 16;
    fd_high_water = 0;
    futex_waits = 0;
    futex_wakes = 0;
    sig_queued = 0;
    sig_delivered = 0;
    pipe_bytes = 0L;
    sock_bytes = 0L;
    dcache_hits = 0L;
    dcache_misses = 0L;
  }

let vfs_op ks op =
  match Hashtbl.find_opt ks.vfs op with
  | Some r -> incr r
  | None -> Hashtbl.replace ks.vfs op (ref 1)

let note_fd ks fd = if fd + 1 > ks.fd_high_water then ks.fd_high_water <- fd + 1

(** VFS op counts sorted by op name. *)
let vfs_by_name ks : (string * int) list =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) ks.vfs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
