(** Structural validators for the three dump formats, used by the
    [@observe] gate and the test suite. They check what a viewer would
    choke on: parse errors, unbalanced or misnamed B/E pairs, and
    timestamps running backwards within a lane. *)

type trace_stats = {
  ts_events : int; (* total events, metadata included *)
  ts_pids : int list; (* distinct pids carrying real (non-M) events *)
  ts_max_depth : int; (* deepest B/E nesting seen on any lane *)
}

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let num_field obj name =
  match Option.bind (Json.member name obj) Json.to_num with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "event missing numeric %S" name)

let str_field obj name =
  match Option.bind (Json.member name obj) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "event missing string %S" name)

(** Validate a Chrome trace-event JSON document: it parses, every B has a
    matching same-name E on its (pid, tid) lane with strict stack
    discipline, per-lane timestamps never decrease, and no span is left
    open at the end. *)
let check_trace (s : string) : (trace_stats, string) result =
  let* doc = Json.parse_result s in
  let* events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_arr with
    | Some evs -> Ok evs
    | None -> Error "no traceEvents array"
  in
  let stacks : (int * int, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let last_ts : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let pids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let max_depth = ref 0 in
  let rec go i = function
    | [] -> Ok ()
    | ev :: rest ->
        let ctx msg = Error (Printf.sprintf "event %d: %s" i msg) in
        let* ph = str_field ev "ph" in
        if ph = "M" then go (i + 1) rest
        else
          let* name = str_field ev "name" in
          let* pid = num_field ev "pid" in
          let* tid = num_field ev "tid" in
          let* ts = num_field ev "ts" in
          let pid = int_of_float pid and tid = int_of_float tid in
          Hashtbl.replace pids pid ();
          let lane = (pid, tid) in
          let prev =
            match Hashtbl.find_opt last_ts lane with Some t -> t | None -> 0.0
          in
          if ts < prev then
            ctx
              (Printf.sprintf "ts %g < %g on lane pid=%d tid=%d" ts prev pid tid)
          else begin
            Hashtbl.replace last_ts lane ts;
            let stk =
              match Hashtbl.find_opt stacks lane with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.replace stacks lane r;
                  r
            in
            match ph with
            | "B" ->
                stk := name :: !stk;
                if List.length !stk > !max_depth then
                  max_depth := List.length !stk;
                go (i + 1) rest
            | "E" -> (
                match !stk with
                | top :: below when top = name ->
                    stk := below;
                    go (i + 1) rest
                | top :: _ ->
                    ctx
                      (Printf.sprintf "E %S does not match open span %S" name
                         top)
                | [] -> ctx (Printf.sprintf "E %S with no open span" name))
            | "i" -> go (i + 1) rest
            | other -> ctx (Printf.sprintf "unsupported phase %S" other)
          end
  in
  let* () = go 0 events in
  let open_spans =
    Hashtbl.fold
      (fun (pid, tid) stk acc ->
        match !stk with
        | [] -> acc
        | top :: _ ->
            Printf.sprintf "pid=%d tid=%d span %S" pid tid top :: acc)
      stacks []
  in
  match open_spans with
  | [] ->
      Ok
        {
          ts_events = List.length events;
          ts_pids = Hashtbl.fold (fun p () acc -> p :: acc) pids [] |> List.sort compare;
          ts_max_depth = !max_depth;
        }
  | errs -> Error ("spans left open at end of trace: " ^ String.concat "; " errs)

(** Validate a metrics dump against schema v1: header fields, a [run]
    block, per-syscall percentile fields, and the kernel counter block
    with at least 6 counters. *)
let check_metrics (s : string) : (unit, string) result =
  let* doc = Json.parse_result s in
  let* schema =
    match Option.bind (Json.member "schema" doc) Json.to_str with
    | Some s -> Ok s
    | None -> Error "missing schema field"
  in
  if schema <> "wali-metrics" then Error ("bad schema: " ^ schema)
  else
    let* version = num_field doc "version" in
    if int_of_float version <> 1 then
      Error (Printf.sprintf "unsupported version %g" version)
    else
      let* run =
        match Json.member "run" doc with
        | Some r -> Ok r
        | None -> Error "missing run block"
      in
      let* _ = num_field run "wall_ns" in
      let* _ = num_field run "instructions" in
      let* syscalls =
        match Option.bind (Json.member "syscalls" doc) Json.to_obj with
        | Some kvs -> Ok kvs
        | None -> Error "missing syscalls object"
      in
      if syscalls = [] then Error "syscalls object is empty"
      else
        let rec each = function
          | [] -> Ok ()
          | (name, stats) :: rest ->
              let req f =
                match num_field stats f with
                | Ok _ -> Ok ()
                | Error _ ->
                    Error (Printf.sprintf "syscall %S missing %S" name f)
              in
              let* () = req "calls" in
              let* () = req "p50_ns" in
              let* () = req "p90_ns" in
              let* () = req "p99_ns" in
              each rest
        in
        let* () = each syscalls in
        let* kernel =
          match Option.bind (Json.member "kernel" doc) Json.to_obj with
          | Some kvs -> Ok kvs
          | None -> Error "missing kernel object"
        in
        (* vfs is a sub-object; the rest are scalar counters *)
        let counters = List.filter (fun (k, _) -> k <> "vfs") kernel in
        if List.length counters < 6 then
          Error
            (Printf.sprintf "kernel block has %d counters, want >= 6"
               (List.length counters))
        else Ok ()

(** Validate a folded profile dump; returns the total weight. *)
let check_folded (s : string) : (int64, string) result = Profile.parse_total s

(** Validate a benchmark-results dump against schema [wali-bench v1]:
    header fields, a non-empty scenario map, and per-metric fields —
    [kind] (counter|wall), [value], [unit]; wall metrics additionally
    carry the sample count [n] and the MAD noise band [mad], which
    deterministic counters must not (a counter with a noise band is a
    mislabelled measurement). *)
let check_bench (s : string) : (unit, string) result =
  let* doc = Json.parse_result s in
  let* schema =
    match Option.bind (Json.member "schema" doc) Json.to_str with
    | Some s -> Ok s
    | None -> Error "missing schema field"
  in
  if schema <> "wali-bench" then Error ("bad schema: " ^ schema)
  else
    let* version = num_field doc "version" in
    if int_of_float version <> 1 then
      Error (Printf.sprintf "unsupported version %g" version)
    else
      let* scenarios =
        match Option.bind (Json.member "scenarios" doc) Json.to_obj with
        | Some kvs -> Ok kvs
        | None -> Error "missing scenarios object"
      in
      if scenarios = [] then Error "scenarios object is empty"
      else
        let check_metric sc name m =
          let ctx msg =
            Error (Printf.sprintf "scenario %S metric %S: %s" sc name msg)
          in
          let* kind =
            match Option.bind (Json.member "kind" m) Json.to_str with
            | Some k -> Ok k
            | None -> ctx "missing kind"
          in
          let* _ =
            match num_field m "value" with Ok v -> Ok v | Error e -> ctx e
          in
          let* _ =
            match Option.bind (Json.member "unit" m) Json.to_str with
            | Some u -> Ok u
            | None -> ctx "missing unit"
          in
          match kind with
          | "counter" ->
              if Json.member "mad" m <> None then
                ctx "counter carries a noise band"
              else Ok ()
          | "wall" ->
              let* n =
                match num_field m "n" with Ok v -> Ok v | Error e -> ctx e
              in
              let* mad =
                match num_field m "mad" with Ok v -> Ok v | Error e -> ctx e
              in
              if n < 1.0 then ctx "wall metric with n < 1"
              else if mad < 0.0 then ctx "negative noise band"
              else Ok ()
          | k -> ctx (Printf.sprintf "unknown kind %S" k)
        in
        let rec each_scenario = function
          | [] -> Ok ()
          | (sc, body) :: rest ->
              let* metrics =
                match Option.bind (Json.member "metrics" body) Json.to_obj with
                | Some kvs -> Ok kvs
                | None ->
                    Error (Printf.sprintf "scenario %S missing metrics" sc)
              in
              if metrics = [] then
                Error (Printf.sprintf "scenario %S has no metrics" sc)
              else
                let rec each_metric = function
                  | [] -> each_scenario rest
                  | (name, m) :: ms ->
                      let* () = check_metric sc name m in
                      each_metric ms
                in
                each_metric metrics
        in
        each_scenario scenarios
