(** Minimal JSON: escaping for the emitters and a recursive-descent
    parser for the well-formedness gates. No external dependencies; the
    parser accepts exactly the JSON this library (and Chrome trace
    viewers) produce. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- emission ---- *)

(** Escape the contents of a JSON string (no surrounding quotes). *)
let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

(* ---- parsing ---- *)

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let fail p msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" p.pos msg))

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some x when x = c -> advance p
  | _ -> fail p (Printf.sprintf "expected %c" c)

let parse_literal p lit v =
  if
    p.pos + String.length lit <= String.length p.src
    && String.sub p.src p.pos (String.length lit) = lit
  then begin
    p.pos <- p.pos + String.length lit;
    v
  end
  else fail p ("expected " ^ lit)

let parse_string_body p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some 'n' -> advance p; Buffer.add_char b '\n'; go ()
        | Some 't' -> advance p; Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance p; Buffer.add_char b '\r'; go ()
        | Some 'b' -> advance p; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance p; Buffer.add_char b '\012'; go ()
        | Some '"' -> advance p; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance p; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance p; Buffer.add_char b '/'; go ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.src then fail p "bad \\u escape";
            let hex = String.sub p.src p.pos 4 in
            p.pos <- p.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail p "bad \\u escape"
            in
            (* UTF-8 encode the code point (BMP only, enough here) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail p "bad escape")
    | Some c ->
        advance p;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek p with
    | Some c when is_num_char c ->
        advance p;
        go ()
    | _ -> ()
  in
  go ();
  if p.pos = start then fail p "expected number";
  match float_of_string_opt (String.sub p.src start (p.pos - start)) with
  | Some f -> f
  | None -> fail p "malformed number"

let rec parse_value p : t =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws p;
          let k = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              members ((k, v) :: acc)
          | Some '}' ->
              advance p;
              List.rev ((k, v) :: acc)
          | _ -> fail p "expected , or } in object"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              elems (v :: acc)
          | Some ']' ->
              advance p;
              List.rev (v :: acc)
          | _ -> fail p "expected , or ] in array"
        in
        Arr (elems [])
      end
  | Some '"' -> Str (parse_string_body p)
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some 'n' -> parse_literal p "null" Null
  | Some _ -> Num (parse_number p)

(** Parse a complete JSON document. @raise Parse_error on malformed input
    or trailing garbage. *)
let parse (s : string) : t =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail p "trailing garbage";
  v

let parse_result s : (t, string) result =
  match parse s with v -> Ok v | exception Parse_error m -> Error m

(* ---- accessors ---- *)

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
let to_obj = function Obj l -> Some l | _ -> None
