(** Chrome trace-event buffer: append-only, eagerly serialized span
    (ph B/E), instant (ph i) and metadata (ph M) records, dumped as a
    [{"traceEvents": [...]}] document loadable in Perfetto or
    chrome://tracing. Timestamps are virtual nanoseconds converted to the
    format's microseconds with sub-us precision preserved. *)

type t = {
  buf : Buffer.t;
  mutable n : int;
  named_procs : (int, unit) Hashtbl.t;
  named_threads : (int * int, unit) Hashtbl.t;
}

let create () =
  {
    buf = Buffer.create 4096;
    n = 0;
    named_procs = Hashtbl.create 8;
    named_threads = Hashtbl.create 8;
  }

let events t = t.n

(* ts: virtual ns -> trace-format us, exact to the nanosecond *)
let pp_ts (ns : int64) : string =
  Printf.sprintf "%Ld.%03d"
    (Int64.div ns 1_000L)
    (Int64.to_int (Int64.rem ns 1_000L))

(* [args] values must already be valid JSON fragments. *)
let event t ~(ph : char) ~(name : string) ~(cat : string) ~(pid : int)
    ~(tid : int) ~(ts : int64) ?(args : (string * string) list = []) () =
  if t.n > 0 then Buffer.add_string t.buf ",\n";
  t.n <- t.n + 1;
  Printf.bprintf t.buf
    {|{"name":%s,"cat":"%s","ph":"%c","ts":%s,"pid":%d,"tid":%d|}
    (Json.quote name) cat ph (pp_ts ts) pid tid;
  (match args with
  | [] -> ()
  | kvs ->
      Buffer.add_string t.buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char t.buf ',';
          Printf.bprintf t.buf "%s:%s" (Json.quote k) v)
        kvs;
      Buffer.add_char t.buf '}');
  (* instant events need a scope *)
  if ph = 'i' then Buffer.add_string t.buf {|,"s":"t"|};
  Buffer.add_char t.buf '}'

let span_begin t ~name ~cat ~pid ~tid ~ts =
  event t ~ph:'B' ~name ~cat ~pid ~tid ~ts ()

let span_end t ~name ~cat ~pid ~tid ~ts ?args () =
  event t ~ph:'E' ~name ~cat ~pid ~tid ~ts ?args ()

let instant t ~name ~cat ~pid ~tid ~ts ?args () =
  event t ~ph:'i' ~name ~cat ~pid ~tid ~ts ?args ()

(** Name a process lane (once per pid) / a thread lane (once per tid). *)
let name_process t ~pid ~name =
  if not (Hashtbl.mem t.named_procs pid) then begin
    Hashtbl.replace t.named_procs pid ();
    event t ~ph:'M' ~name:"process_name" ~cat:"__metadata" ~pid ~tid:0 ~ts:0L
      ~args:[ ("name", Json.quote name) ]
      ()
  end

let name_thread t ~pid ~tid ~name =
  if not (Hashtbl.mem t.named_threads (pid, tid)) then begin
    Hashtbl.replace t.named_threads (pid, tid) ();
    event t ~ph:'M' ~name:"thread_name" ~cat:"__metadata" ~pid ~tid ~ts:0L
      ~args:[ ("name", Json.quote name) ]
      ()
  end

let dump t : string =
  "{\"traceEvents\":[\n" ^ Buffer.contents t.buf ^ "\n]}\n"
