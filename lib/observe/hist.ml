(** Log2-bucketed latency histograms.

    Bucket 0 holds exactly the value 0 (and, defensively, negatives);
    bucket [b >= 1] holds values in [[2^(b-1), 2^b - 1]]. The last bucket
    is open-ended up to [Int64.max_int]. Percentile estimates return the
    bucket's upper bound clamped to the largest value ever recorded, so a
    single-sample histogram reports that sample exactly. *)

let nbuckets = 64

type t = {
  counts : int array; (* length nbuckets *)
  mutable total : int;
  mutable sum : int64;
  mutable vmax : int64;
}

let create () = { counts = Array.make nbuckets 0; total = 0; sum = 0L; vmax = 0L }

let bucket_of (v : int64) : int =
  if Int64.compare v 0L <= 0 then 0
  else begin
    let rec go i v =
      if Int64.equal v 0L then i else go (i + 1) (Int64.shift_right_logical v 1)
    in
    min (nbuckets - 1) (go 0 v)
  end

(** Smallest value belonging to bucket [b]. *)
let lower_bound b = if b <= 0 then 0L else Int64.shift_left 1L (b - 1)

(** Largest value belonging to bucket [b]. *)
let upper_bound b =
  if b <= 0 then 0L
  else if b >= nbuckets - 1 then Int64.max_int
  else Int64.sub (Int64.shift_left 1L b) 1L

let record t (v : int64) =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.total <- t.total + 1;
  t.sum <- Int64.add t.sum v;
  if Int64.compare v t.vmax > 0 then t.vmax <- v

let count t = t.total
let sum t = t.sum
let max_value t = t.vmax

(** [percentile t q] with [q] in [0, 1]: the upper bound of the bucket
    containing the sample of rank [ceil (q * total)], clamped to the
    maximum recorded value. 0 if the histogram is empty. *)
let percentile t (q : float) : int64 =
  if t.total = 0 then 0L
  else begin
    let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
    let rank = Stdlib.min rank t.total in
    let rec go b cum =
      if b >= nbuckets then t.vmax
      else begin
        let cum = cum + t.counts.(b) in
        if cum >= rank then
          if Int64.compare (upper_bound b) t.vmax > 0 then t.vmax
          else upper_bound b
        else go (b + 1) cum
      end
    in
    go 0 0
  end

(** [merge a b]: a fresh histogram equivalent to recording every sample
    of [a] and then every sample of [b] (commutative and associative up
    to the bucketing, which loses nothing here — counts, totals, sums
    and the recorded maximum all add or max exactly). This is how
    per-process histograms aggregate into suite-level percentiles. *)
let merge a b =
  let t = create () in
  for i = 0 to nbuckets - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.total <- a.total + b.total;
  t.sum <- Int64.add a.sum b.sum;
  t.vmax <- (if Int64.compare a.vmax b.vmax > 0 then a.vmax else b.vmax);
  t

(** Non-empty buckets as [(index, count)] pairs, index ascending. *)
let nonzero t : (int * int) list =
  let acc = ref [] in
  for b = nbuckets - 1 downto 0 do
    if t.counts.(b) > 0 then acc := (b, t.counts.(b)) :: !acc
  done;
  !acc

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.total <- 0;
  t.sum <- 0L;
  t.vmax <- 0L
