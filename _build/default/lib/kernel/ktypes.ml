(** Kernel ABI constants and record types shared by the VFS, tasks, the
    WALI marshalling layer and the MiniC libc. The numeric values follow
    the Linux generic (asm-generic) ABI; WALI's dedicated portable layout
    (paper §3.5) is defined against these. *)

(* ---- open(2) flags (octal, asm-generic) ---- *)

let o_rdonly = 0o0
let o_wronly = 0o1
let o_rdwr = 0o2
let o_accmode = 0o3
let o_creat = 0o100
let o_excl = 0o200
let o_noctty = 0o400
let o_trunc = 0o1000
let o_append = 0o2000
let o_nonblock = 0o4000
let o_directory = 0o200000
let o_cloexec = 0o2000000

(* ---- lseek whence ---- *)

let seek_set = 0
let seek_cur = 1
let seek_end = 2

(* ---- file modes ---- *)

let s_ifmt = 0o170000
let s_ifreg = 0o100000
let s_ifdir = 0o040000
let s_iflnk = 0o120000
let s_ififo = 0o010000
let s_ifchr = 0o020000
let s_ifsock = 0o140000

(* ---- stat: the WALI portable kstat layout carries these fields ---- *)

type stat = {
  st_dev : int;
  st_ino : int;
  st_mode : int;
  st_nlink : int;
  st_uid : int;
  st_gid : int;
  st_rdev : int;
  st_size : int64;
  st_blksize : int;
  st_blocks : int64;
  st_atime_ns : int64;
  st_mtime_ns : int64;
  st_ctime_ns : int64;
}

(* ---- signals ---- *)

let sighup = 1
let sigint = 2
let sigquit = 3
let sigill = 4
let sigtrap = 5
let sigabrt = 6
let sigbus = 7
let sigfpe = 8
let sigkill = 9
let sigusr1 = 10
let sigsegv = 11
let sigusr2 = 12
let sigpipe = 13
let sigalrm = 14
let sigterm = 15
let sigchld = 17
let sigcont = 18
let sigstop = 19
let sigtstp = 20
let sigttin = 21
let sigttou = 22
let sigurg = 23
let sigxcpu = 24
let sigwinch = 28
let sigsys = 31
let nsig = 64

let signal_name n =
  match n with
  | 1 -> "SIGHUP" | 2 -> "SIGINT" | 3 -> "SIGQUIT" | 4 -> "SIGILL"
  | 5 -> "SIGTRAP" | 6 -> "SIGABRT" | 7 -> "SIGBUS" | 8 -> "SIGFPE"
  | 9 -> "SIGKILL" | 10 -> "SIGUSR1" | 11 -> "SIGSEGV" | 12 -> "SIGUSR2"
  | 13 -> "SIGPIPE" | 14 -> "SIGALRM" | 15 -> "SIGTERM" | 17 -> "SIGCHLD"
  | 18 -> "SIGCONT" | 19 -> "SIGSTOP" | 20 -> "SIGTSTP" | 21 -> "SIGTTIN"
  | 22 -> "SIGTTOU" | n -> Printf.sprintf "SIG%d" n

(* Signal sets as 64-bit masks; bit (n-1) is signal n, as in the kernel. *)
module Sigset = struct
  type t = int64

  let empty : t = 0L
  let full : t = -1L
  let bit n = Int64.shift_left 1L (n - 1)
  let mem s n = Int64.logand s (bit n) <> 0L
  let add s n = Int64.logor s (bit n)
  let remove s n = Int64.logand s (Int64.lognot (bit n))
  let union = Int64.logor
  let inter = Int64.logand
  let diff a b = Int64.logand a (Int64.lognot b)
  let is_empty s = s = 0L

  (** Lowest pending signal number in [s], if any (delivery order). *)
  let lowest s =
    if s = 0L then None
    else begin
      let rec go n = if mem s n then Some n else go (n + 1) in
      go 1
    end
end

(* rt_sigprocmask how *)
let sig_block = 0
let sig_unblock = 1
let sig_setmask = 2

(* sigaction sa_handler special values *)
let sig_dfl = 0
let sig_ign = 1

(* sa_flags *)
let sa_nocldstop = 1
let sa_nodefer = 0x40000000
let sa_restart = 0x10000000

type sigaction = {
  sa_handler : int; (* 0 = SIG_DFL, 1 = SIG_IGN, else wasm table index / fn addr *)
  sa_mask : Sigset.t;
  sa_flags : int;
}

let sigaction_default = { sa_handler = sig_dfl; sa_mask = Sigset.empty; sa_flags = 0 }

(* ---- default dispositions ---- *)

type disposition = Term | Ign | Core | Stop | Cont

let default_disposition n =
  if n = sigchld || n = sigurg || n = sigwinch then Ign
  else if n = sigstop || n = sigtstp || n = sigttin || n = sigttou then Stop
  else if n = sigcont then Cont
  else if n = sigquit || n = sigill || n = sigtrap || n = sigabrt || n = sigbus
          || n = sigfpe || n = sigsegv || n = sigsys || n = sigxcpu then Core
  else Term

(* ---- clone flags ---- *)

let clone_vm = 0x00000100
let clone_fs = 0x00000200
let clone_files = 0x00000400
let clone_sighand = 0x00000800
let clone_thread = 0x00010000
let clone_child_settid = 0x01000000
let clone_child_cleartid = 0x00200000

(* ---- mmap ---- *)

let prot_read = 1
let prot_write = 2
let prot_exec = 4
let map_shared = 0x01
let map_private = 0x02
let map_fixed = 0x10
let map_anonymous = 0x20

(* ---- wait4 options ---- *)

let wnohang = 1
let wuntraced = 2

(* Exit status encoding, as the kernel packs it for wait4. *)
let wexit_status code = (code land 0xff) lsl 8
let wsignal_status signo = signo land 0x7f

(* ---- clocks ---- *)

let clock_realtime = 0
let clock_monotonic = 1
let clock_process_cputime = 2
let clock_monotonic_raw = 4

(* ---- fcntl ---- *)

let f_dupfd = 0
let f_getfd = 1
let f_setfd = 2
let f_getfl = 3
let f_setfl = 4
let f_dupfd_cloexec = 1030
let fd_cloexec = 1

(* ---- futex ops ---- *)

let futex_wait = 0
let futex_wake = 1
let futex_private = 128

(* ---- poll events ---- *)

let pollin = 0x001
let pollout = 0x004
let pollerr = 0x008
let pollhup = 0x010
let pollnval = 0x020

(* ---- ioctl ---- *)

let tiocgwinsz = 0x5413
let fionread = 0x541B

(* ---- dirent types ---- *)

let dt_unknown = 0
let dt_fifo = 1
let dt_chr = 2
let dt_dir = 4
let dt_reg = 8
let dt_lnk = 10
let dt_sock = 12

(* ---- sockets ---- *)

let af_unix = 1
let af_inet = 2
let sock_stream = 1
let sock_dgram = 2
let sol_socket = 1
let so_reuseaddr = 2
let so_rcvbuf = 8
let so_sndbuf = 7
let shut_rd = 0
let shut_wr = 1
let shut_rdwr = 2

(* ---- resource limits ---- *)

let rlimit_nofile = 7
let rlimit_stack = 3
