(** Pipes: bounded ring buffer with blocking reader/writer ends, EOF on
    writer hangup and EPIPE on reader hangup. Also backs socketpairs and
    accepted socket streams. *)

type t = {
  buf : Bytes.t;
  mutable rd : int; (* read position *)
  mutable count : int; (* bytes available *)
  mutable readers : int;
  mutable writers : int;
  read_wq : unit Waitq.t;
  write_wq : unit Waitq.t;
  capacity : int;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  {
    buf = Bytes.create capacity;
    rd = 0;
    count = 0;
    readers = 1;
    writers = 1;
    read_wq = Waitq.create ();
    write_wq = Waitq.create ();
    capacity;
  }

let available p = p.count
let space p = p.capacity - p.count

let add_reader p = p.readers <- p.readers + 1
let add_writer p = p.writers <- p.writers + 1

let drop_reader p =
  p.readers <- p.readers - 1;
  if p.readers = 0 then ignore (Waitq.wake_all p.write_wq ())

let drop_writer p =
  p.writers <- p.writers - 1;
  if p.writers = 0 then ignore (Waitq.wake_all p.read_wq ())

(* Copy out up to [len] bytes; assumes count > 0. *)
let pop p dst dst_off len =
  let n = min len p.count in
  let first = min n (p.capacity - p.rd) in
  Bytes.blit p.buf p.rd dst dst_off first;
  if n > first then Bytes.blit p.buf 0 dst (dst_off + first) (n - first);
  p.rd <- (p.rd + n) mod p.capacity;
  p.count <- p.count - n;
  ignore (Waitq.wake_all p.write_wq ());
  n

let push p src src_off len =
  let n = min len (space p) in
  let wr = (p.rd + p.count) mod p.capacity in
  let first = min n (p.capacity - wr) in
  Bytes.blit src src_off p.buf wr first;
  if n > first then Bytes.blit src (src_off + first) p.buf 0 (n - first);
  p.count <- p.count + n;
  ignore (Waitq.wake_all p.read_wq ());
  n

(** Blocking read; 0 = EOF. *)
let read p ~intr ~nonblock dst dst_off len : (int, Errno.t) result =
  if len = 0 then Ok 0
  else begin
    let rec go () =
      if p.count > 0 then Ok (pop p dst dst_off len)
      else if p.writers = 0 then Ok 0
      else if nonblock then Error Errno.EAGAIN
      else
        match Waitq.wait ~intr p.read_wq with
        | Waitq.Interrupted -> Error Errno.EINTR
        | Waitq.Woken () | Waitq.Timeout -> go ()
    in
    go ()
  end

(** Blocking write of the full buffer (short writes only in nonblocking
    mode). Returns [Error EPIPE] when no readers remain — the caller is
    responsible for raising SIGPIPE. *)
let write p ~intr ~nonblock src src_off len : (int, Errno.t) result =
  if len = 0 then Ok 0
  else begin
    let written = ref 0 in
    let rec go () =
      if p.readers = 0 then
        if !written > 0 then Ok !written else Error Errno.EPIPE
      else if !written >= len then Ok !written
      else if space p > 0 then begin
        written := !written + push p src (src_off + !written) (len - !written);
        go ()
      end
      else if nonblock then
        if !written > 0 then Ok !written else Error Errno.EAGAIN
      else
        match Waitq.wait ~intr p.write_wq with
        | Waitq.Interrupted ->
            if !written > 0 then Ok !written else Error Errno.EINTR
        | Waitq.Woken () | Waitq.Timeout -> go ()
    in
    go ()
  end

(** Poll readiness bits for one end of the pipe. *)
let poll_read p =
  (if p.count > 0 then Ktypes.pollin else 0)
  lor if p.writers = 0 then Ktypes.pollhup else 0

let poll_write p =
  (if space p > 0 then Ktypes.pollout else 0)
  lor if p.readers = 0 then Ktypes.pollerr else 0
