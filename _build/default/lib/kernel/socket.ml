(** Loopback stream sockets (AF_UNIX and AF_INET on 127.0.0.1).

    A connection is a pair of pipes; connect finds the listener in the
    kernel's binding registry, hands it the server-side endpoints and
    completes immediately (no handshake modelling). *)

type addr =
  | A_unix of string
  | A_inet of int * int (* host, port; host 0x7F000001 = loopback *)

let addr_to_string = function
  | A_unix p -> Printf.sprintf "unix:%s" p
  | A_inet (h, p) ->
      Printf.sprintf "%d.%d.%d.%d:%d"
        ((h lsr 24) land 0xff) ((h lsr 16) land 0xff)
        ((h lsr 8) land 0xff) (h land 0xff) p

type conn = {
  rx : Pipe.t;
  tx : Pipe.t;
  mutable peer : addr option;
}

type listener = {
  l_addr : addr;
  backlog : conn Queue.t;
  max_backlog : int;
  accept_wq : unit Waitq.t;
  mutable l_closed : bool;
}

type state =
  | S_unbound
  | S_bound of addr
  | S_listening of listener
  | S_connected of conn
  | S_closed

type t = {
  family : int;
  mutable state : state;
  mutable opts : (int * int, int) Hashtbl.t; (* (level, opt) -> value *)
  mutable nonblock_default : bool;
}

type registry = { mutable bindings : (addr * listener) list }

let create_registry () = { bindings = [] }

let create ~family =
  {
    family;
    state = S_unbound;
    opts = Hashtbl.create 4;
    nonblock_default = false;
  }

let find_listener reg addr =
  List.find_opt (fun (a, l) -> a = addr && not l.l_closed) reg.bindings
  |> Option.map snd

let bind reg (s : t) (addr : addr) : (unit, Errno.t) result =
  match s.state with
  | S_unbound ->
      let in_use =
        List.exists (fun (a, l) -> a = addr && not l.l_closed) reg.bindings
      in
      let reuse = Hashtbl.mem s.opts (Ktypes.sol_socket, Ktypes.so_reuseaddr) in
      if in_use && not reuse then Error Errno.EADDRINUSE
      else begin
        s.state <- S_bound addr;
        Ok ()
      end
  | _ -> Error Errno.EINVAL

let listen reg (s : t) ~backlog : (unit, Errno.t) result =
  match s.state with
  | S_bound addr ->
      let l =
        {
          l_addr = addr;
          backlog = Queue.create ();
          max_backlog = max 1 backlog;
          accept_wq = Waitq.create ();
          l_closed = false;
        }
      in
      reg.bindings <- (addr, l) :: List.remove_assoc addr reg.bindings;
      s.state <- S_listening l;
      Ok ()
  | _ -> Error Errno.EINVAL

let connect reg (s : t) (addr : addr) ~intr : (unit, Errno.t) result =
  ignore intr;
  match s.state with
  | S_unbound | S_bound _ -> (
      match find_listener reg addr with
      | None -> Error Errno.ECONNREFUSED
      | Some l ->
          if Queue.length l.backlog >= l.max_backlog then Error Errno.ECONNREFUSED
          else begin
            let p1 = Pipe.create () and p2 = Pipe.create () in
            let client = { rx = p1; tx = p2; peer = Some addr } in
            let server = { rx = p2; tx = p1; peer = None } in
            (* Each pipe has exactly one reader and one writer end. *)
            Queue.push server l.backlog;
            ignore (Waitq.wake_one l.accept_wq ());
            s.state <- S_connected client;
            Ok ()
          end)
  | S_connected _ -> Error Errno.EISCONN
  | _ -> Error Errno.EINVAL

let accept (s : t) ~intr ~nonblock : (t, Errno.t) result =
  match s.state with
  | S_listening l ->
      let rec go () =
        if not (Queue.is_empty l.backlog) then begin
          let conn = Queue.pop l.backlog in
          let peer = create ~family:s.family in
          peer.state <- S_connected conn;
          Ok peer
        end
        else if l.l_closed then Error Errno.EINVAL
        else if nonblock then Error Errno.EAGAIN
        else
          match Waitq.wait ~intr l.accept_wq with
          | Waitq.Interrupted -> Error Errno.EINTR
          | Waitq.Woken () | Waitq.Timeout -> go ()
      in
      go ()
  | _ -> Error Errno.EINVAL

let read (s : t) ~intr ~nonblock dst off len : (int, Errno.t) result =
  match s.state with
  | S_connected c -> Pipe.read c.rx ~intr ~nonblock dst off len
  | _ -> Error Errno.ENOTCONN

let write (s : t) ~intr ~nonblock src off len : (int, Errno.t) result =
  match s.state with
  | S_connected c -> Pipe.write c.tx ~intr ~nonblock src off len
  | _ -> Error Errno.ENOTCONN

let shutdown (s : t) how : (unit, Errno.t) result =
  match s.state with
  | S_connected c ->
      if how = Ktypes.shut_rd || how = Ktypes.shut_rdwr then Pipe.drop_reader c.rx;
      if how = Ktypes.shut_wr || how = Ktypes.shut_rdwr then Pipe.drop_writer c.tx;
      Ok ()
  | _ -> Error Errno.ENOTCONN

let close reg (s : t) =
  (match s.state with
  | S_connected c ->
      Pipe.drop_reader c.rx;
      Pipe.drop_writer c.tx
  | S_listening l ->
      l.l_closed <- true;
      reg.bindings <- List.filter (fun (_, l') -> l' != l) reg.bindings;
      ignore (Waitq.wake_all l.accept_wq ())
  | _ -> ());
  s.state <- S_closed

let poll_bits (s : t) =
  match s.state with
  | S_connected c -> Pipe.poll_read c.rx lor Pipe.poll_write c.tx
  | S_listening l -> if not (Queue.is_empty l.backlog) then Ktypes.pollin else 0
  | S_closed -> Ktypes.pollnval
  | _ -> 0

(** socketpair: two already-connected sockets. *)
let pair ~family =
  let p1 = Pipe.create () and p2 = Pipe.create () in
  let a = create ~family and b = create ~family in
  a.state <- S_connected { rx = p1; tx = p2; peer = None };
  b.state <- S_connected { rx = p2; tx = p1; peer = None };
  (a, b)
