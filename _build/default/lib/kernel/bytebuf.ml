(** Growable byte buffer used for regular file contents. *)

type t = { mutable data : Bytes.t; mutable len : int }

let create () = { data = Bytes.create 64; len = 0 }

let of_string s = { data = Bytes.of_string s; len = String.length s }

let length b = b.len

let ensure b n =
  if n > Bytes.length b.data then begin
    let cap = max n (2 * Bytes.length b.data) in
    let d = Bytes.make cap '\000' in
    Bytes.blit b.data 0 d 0 b.len;
    b.data <- d
  end

(** Write [len] bytes from [src] at file offset [off], growing (and
    zero-filling any hole) as needed. *)
let pwrite b ~off ~src ~src_off ~len =
  ensure b (off + len);
  if off > b.len then Bytes.fill b.data b.len (off - b.len) '\000';
  Bytes.blit src src_off b.data off len;
  b.len <- max b.len (off + len)

(** Read up to [len] bytes at [off] into [dst]; returns bytes read. *)
let pread b ~off ~dst ~dst_off ~len =
  if off >= b.len then 0
  else begin
    let n = min len (b.len - off) in
    Bytes.blit b.data off dst dst_off n;
    n
  end

let truncate b n =
  ensure b n;
  if n > b.len then Bytes.fill b.data b.len (n - b.len) '\000';
  b.len <- n

let contents b = Bytes.sub_string b.data 0 b.len

let clear b = b.len <- 0
