(** Futexes. Keys are (address-space id, address): engines give each
    shared memory object a unique id so futexes in different processes
    never collide while threads sharing memory rendezvous correctly. *)

type key = int * int

type t = { table : (key, unit Waitq.t) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let queue_of f key =
  match Hashtbl.find_opt f.table key with
  | Some q -> q
  | None ->
      let q = Waitq.create () in
      Hashtbl.replace f.table key q;
      q

(** FUTEX_WAIT: blocks iff [load ()] still equals [expected]. *)
let wait f ~key ~(load : unit -> int32) ~(expected : int32) ?timeout_ns ~intr
    () : (unit, Errno.t) result =
  if load () <> expected then Error Errno.EAGAIN
  else begin
    let q = queue_of f key in
    match Waitq.wait ?timeout_ns ~intr q with
    | Waitq.Woken () -> Ok ()
    | Waitq.Timeout -> Error Errno.ETIMEDOUT
    | Waitq.Interrupted -> Error Errno.EINTR
  end

(** FUTEX_WAKE: wake up to [n] waiters; returns number woken. *)
let wake f ~key ~n : int =
  match Hashtbl.find_opt f.table key with
  | None -> 0
  | Some q ->
      let woken = ref 0 in
      while !woken < n && Waitq.wake_one q () do
        incr woken
      done;
      !woken
