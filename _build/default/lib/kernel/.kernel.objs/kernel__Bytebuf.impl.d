lib/kernel/bytebuf.ml: Bytes String
