lib/kernel/waitq.ml: Fiber Int64 List
