lib/kernel/vfs.ml: Bytebuf Bytes Errno Fiber Hashtbl Int64 Ktypes List Pipe String
