lib/kernel/errno.ml: Stdlib
