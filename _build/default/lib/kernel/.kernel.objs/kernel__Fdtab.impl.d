lib/kernel/fdtab.ml: Array Errno Option Pipe Socket Vfs
