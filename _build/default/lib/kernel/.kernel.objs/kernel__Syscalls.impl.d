lib/kernel/syscalls.ml: Array Bytebuf Bytes Char Errno Fdtab Fiber Filename Futex Hashtbl Int64 Ktypes List Option Pipe Result Sigset Socket String Task Vfs Waitq
