lib/kernel/ktypes.ml: Int64 Printf
