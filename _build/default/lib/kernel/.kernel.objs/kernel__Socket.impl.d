lib/kernel/socket.ml: Errno Hashtbl Ktypes List Option Pipe Printf Queue Waitq
