lib/kernel/futex.ml: Errno Hashtbl Waitq
