lib/kernel/task.ml: Array Buffer Bytes Char Errno Fdtab Fiber Hashtbl Int64 Ktypes List Pipe Printf Sigset Socket String Vfs Waitq
