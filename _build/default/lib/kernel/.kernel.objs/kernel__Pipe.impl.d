lib/kernel/pipe.ml: Bytes Errno Ktypes Waitq
