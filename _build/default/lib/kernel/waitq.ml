(** Interruptible wait queues: the kernel's blocking primitive.

    A blocked task can be woken by an event, by a timeout, or by signal
    delivery (EINTR). The interruption hook is an option ref supplied by
    the caller (the task's [intr] slot), so signal posting can find and
    wake whatever queue the task currently sleeps on. *)

type 'a outcome = Woken of 'a | Timeout | Interrupted

type 'a waiter = { mutable live : bool; fire : 'a outcome -> unit }

type 'a t = { mutable waiters : 'a waiter list }

let create () = { waiters = [] }

let waiting q = List.length (List.filter (fun w -> w.live) q.waiters)

(** Block until woken. [intr] is the task's interruption slot: while
    waiting it holds a function that aborts the wait with [Interrupted]. *)
let wait ?timeout_ns ~(intr : (unit -> unit) option ref) (q : 'a t) :
    'a outcome =
  let result =
    Fiber.suspend (fun resume ->
        let w = ref { live = true; fire = (fun _ -> ()) } in
        let fire o =
          if !w.live then begin
            !w.live <- false;
            resume o
          end
        in
        w := { live = true; fire };
        q.waiters <- q.waiters @ [ !w ];
        intr := Some (fun () -> fire Interrupted);
        match timeout_ns with
        | Some ns -> Fiber.at (Int64.add (Fiber.now ()) ns) (fun () -> fire Timeout)
        | None -> ())
  in
  intr := None;
  (* Drop dead waiters lazily. *)
  q.waiters <- List.filter (fun w -> w.live) q.waiters;
  result

(** Wake at most one waiter with [v]; returns true if someone was woken. *)
let wake_one q v =
  let rec go = function
    | [] -> false
    | w :: rest ->
        if w.live then begin
          w.fire (Woken v);
          true
        end
        else go rest
  in
  let r = go q.waiters in
  q.waiters <- List.filter (fun w -> w.live) q.waiters;
  r

(** Wake every current waiter; returns the number woken. *)
let wake_all q v =
  let n = ref 0 in
  List.iter
    (fun w ->
      if w.live then begin
        w.fire (Woken v);
        incr n
      end)
    q.waiters;
  q.waiters <- [];
  !n
