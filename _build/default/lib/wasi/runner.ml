(** Launch a WASI application over the layered adapter (Fig 1):

    engine TCB = the thin WALI interface
      -> adapter module (sandboxed Wasm, imports "wali")
         -> application module (imports "wasi_snapshot_preview1")

    The application and adapter share one linear memory created by the
    engine and imported by both ("env", "memory"). *)

open Wasm
open Kernel

let preview1 = "wasi_snapshot_preview1"

(** Instantiate adapter + app, wire them, and run the app's _start as a
    WALI process. Returns (status, console output). *)
let run ?(kernel : Task.kernel option) ?(poll_scheme = Code.Poll_loops)
    ?(trace : Wali.Strace.t option) ~(app_binary : string)
    ~(argv : string list) ~(env : string list) () : int * string =
  let kernel = match kernel with Some k -> k | None -> Task.boot () in
  let trace = match trace with Some t -> t | None -> Wali.Strace.create () in
  let eng = Wali.Engine.create ~poll_scheme ~trace kernel in
  let status = ref 0 in
  Fiber.run (fun () ->
      let task = Task.make_init kernel ~comm:(List.hd argv) in
      Wali.Engine.setup_stdio eng task;
      (* fd 3: the preopened root directory, as WASI libcs expect *)
      let sys = Syscalls.make_ctx kernel task eng.Wali.Engine.futexes in
      (match
         Syscalls.openat sys ~dirfd:Syscalls.at_fdcwd ~path:"/"
           ~flags:Ktypes.o_rdonly ~mode:0
       with
      | Ok 3 -> ()
      | Ok fd -> failwith (Printf.sprintf "preopen landed on fd %d" fd)
      | Error e -> failwith (Errno.to_string e));
      (* the shared linear memory *)
      let memory = Rt.Memory.create ~min_pages:32 ~max_pages:1024 in
      let mem_resolver : Link.resolver =
       fun ~module_name ~name ->
        if module_name = "env" && name = "memory" then Some (Rt.E_memory memory)
        else None
      in
      (* adapter: wali + env.memory *)
      let adapter_cm =
        Code.compile_module ~poll:poll_scheme (Adapter.build_module ())
      in
      let adapter_inst, _ =
        Link.instantiate ~name:"wasi-adapter"
          Link.(Wali.Interface.resolver eng <+> mem_resolver)
          adapter_cm
      in
      (* app: preview1 (from the adapter's exports) + env.memory *)
      let adapter_resolver : Link.resolver =
       fun ~module_name ~name ->
        if module_name = preview1 then
          Hashtbl.find_opt adapter_inst.Rt.i_exports name
        else None
      in
      let app_cm =
        Code.compile_module ~poll:poll_scheme (Binary.decode app_binary)
      in
      let app_inst, _ =
        Link.instantiate ~name:"wasi-app"
          Link.(adapter_resolver <+> mem_resolver)
          app_cm
      in
      let m = Rt.Machine.create app_inst in
      m.Rt.m_pid <- task.Task.tid;
      m.Rt.poll_hook <- Some (Wali.Engine.poll_hook eng);
      let p =
        {
          Wali.Engine.pr_task = task;
          pr_sys = sys;
          pr_shared =
            Wali.Engine.make_pshared eng ~inst:app_inst ~argv ~env
              ~binary:app_binary;
          pr_machine = Some m;
          pr_result = None;
        }
      in
      Wali.Engine.register_proc eng p;
      eng.Wali.Engine.on_proc_exit <-
        Some (fun q st -> if q == p then status := st);
      let entry = Rt.exported_func app_inst "_start" in
      ignore
        (Fiber.spawn "wasi-app" (fun () ->
             Wali.Engine.run_machine_body eng p m ~fresh_entry:true
               ~entry:(Some entry) ~args:[])));
  (!status, Task.console_output kernel)
