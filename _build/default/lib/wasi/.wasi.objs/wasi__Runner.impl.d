lib/wasi/runner.ml: Adapter Binary Code Errno Fiber Hashtbl Kernel Ktypes Link List Printf Rt Syscalls Task Wali Wasm
