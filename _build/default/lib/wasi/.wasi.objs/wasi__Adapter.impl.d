lib/wasi/adapter.ml: Array Ast Binary Int32 List Minic String Types Wasm
