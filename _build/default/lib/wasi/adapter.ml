(** WASI preview1 implemented as a Wasm module layered over WALI — the
    paper's Fig 1/Fig 6 decoupling (the libuvwasi experiment, E2).

    The adapter is a genuine Wasm module: written in MiniC against the
    raw WALI syscall interface, compiled to Wasm, and linked *under* the
    application — it imports the ("wali", "SYS_...") functions plus the shared linear
    memory and exports the preview1 API. The engine's TCB contains only
    the thin kernel interface; the capability logic runs sandboxed.

    Signature notes (documented deviations): preview1's two i64 "rights"
    arguments of path_open are carried as i32 (their payload is the
    capability bitmask, which the adapter checks coarsely);
    clock_time_get and fd_seek keep their true i64 signatures and are
    appended as hand-assembled functions to show both techniques.
    Timestamps in filestat are second-granular. *)

open Wasm

(* Adapter state lives in the reserved low page (256..1023) so it never
   collides with the application's data (>= 1024) or heap. *)
let source =
  {|
// ---------------- WASI preview1 over WALI ----------------

char ts[16];        // timespec scratch
char kst[112];      // kstat scratch
char pathbuf[200];  // NUL-termination scratch for (ptr,len) paths
int preopen_fd;

// Linux errno -> WASI errno
int __werr(int r) {
  if (r >= 0) { return 0; }
  r = -r;
  if (r == 2) { return 44; }   // ENOENT
  if (r == 9) { return 8; }    // EBADF
  if (r == 22) { return 28; }  // EINVAL
  if (r == 13) { return 2; }   // EACCES
  if (r == 17) { return 20; }  // EEXIST
  if (r == 21) { return 31; }  // EISDIR
  if (r == 20) { return 54; }  // ENOTDIR
  if (r == 39) { return 55; }  // ENOTEMPTY
  if (r == 32) { return 64; }  // EPIPE
  if (r == 28) { return 51; }  // ENOSPC
  return 63;                   // EPERM
}

char *cpath(char *p, int len) {
  if (len > 199) { len = 199; }
  memcopy(pathbuf, p, len);
  pathbuf[len] = 0;
  return pathbuf;
}

int wasi_fd_write(int fd, char *iovs, int cnt, int *nwritten) {
  // WASI ciovec layout == WALI iovec layout: zero-copy passthrough
  int n = syscall("writev", fd, iovs, cnt);
  if (n < 0) { return __werr(n); }
  *nwritten = n;
  return 0;
}

int wasi_fd_read(int fd, char *iovs, int cnt, int *nread) {
  int n = syscall("readv", fd, iovs, cnt);
  if (n < 0) { return __werr(n); }
  *nread = n;
  return 0;
}

int wasi_fd_close(int fd) { return __werr(syscall("close", fd)); }

int wasi_fd_sync(int fd) { return __werr(syscall("fsync", fd)); }
int wasi_fd_datasync(int fd) { return __werr(syscall("fdatasync", fd)); }

int wasi_fd_fdstat_get(int fd, char *buf) {
  int r = syscall("fstat", fd, kst);
  if (r < 0) { return __werr(r); }
  int mode = *(int*)(kst + 16);
  int fmt = mode & 61440; // S_IFMT
  int ft = 0;
  if (fmt == 32768) { ft = 4; }       // regular
  if (fmt == 16384) { ft = 3; }       // directory
  if (fmt == 8192) { ft = 2; }        // chardev
  if (fmt == 49152) { ft = 6; }       // socket
  memfill(buf, 0, 24);
  buf[0] = ft;
  // rights: everything (the preopen model narrows by construction)
  for (int i = 8; i < 24; i = i + 1) { buf[i] = 255; }
  return 0;
}

int wasi_fd_filestat_get(int fd, char *buf) {
  int r = syscall("fstat", fd, kst);
  if (r < 0) { return __werr(r); }
  memfill(buf, 0, 64);
  memcopy(buf, kst, 8);              // dev
  memcopy(buf + 8, kst + 8, 8);      // ino
  int mode = *(int*)(kst + 16);
  int fmt = mode & 61440;
  buf[16] = fmt == 16384 ? 3 : 4;
  *(int*)(buf + 24) = *(int*)(kst + 20); // nlink
  memcopy(buf + 32, kst + 40, 8);    // size
  // timestamps: seconds only (see module docs)
  *(int*)(buf + 40) = *(int*)(kst + 64);
  *(int*)(buf + 48) = *(int*)(kst + 80);
  *(int*)(buf + 56) = *(int*)(kst + 96);
  return 0;
}

int wasi_path_filestat_get(int dirfd, int flags, char *path, int len, char *buf) {
  int r = syscall("newfstatat", -100, cpath(path, len), kst, flags ? 0 : 256);
  if (r < 0) { return __werr(r); }
  memfill(buf, 0, 64);
  memcopy(buf, kst, 8);
  memcopy(buf + 8, kst + 8, 8);
  int mode = *(int*)(kst + 16);
  buf[16] = (mode & 61440) == 16384 ? 3 : 4;
  memcopy(buf + 32, kst + 40, 8);
  return 0;
}

// oflags: 1=creat 2=directory 4=excl 8=trunc; fdflags: 1=append 4=nonblock
int wasi_path_open(int dirfd, int dirflags, char *path, int len, int oflags,
                   int rights_lo, int rights_hi, int fdflags, int *fd_out) {
  int flags = 0;
  if (oflags & 1) { flags = flags | 64; }      // O_CREAT
  if (oflags & 2) { flags = flags | 65536; }   // O_DIRECTORY
  if (oflags & 4) { flags = flags | 128; }     // O_EXCL
  if (oflags & 8) { flags = flags | 512; }     // O_TRUNC
  if (fdflags & 1) { flags = flags | 1024; }   // O_APPEND
  if (fdflags & 4) { flags = flags | 2048; }   // O_NONBLOCK
  // capability check: rights bit 6 = fd_write-ish; bit 1 = fd_read
  int want_write = (rights_lo >> 6) & 1;
  int want_read = (rights_lo >> 1) & 1;
  if (want_write) { flags = flags | (want_read ? 2 : 1); }
  int r = syscall("openat", -100, cpath(path, len), flags, 438);
  if (r < 0) { return __werr(r); }
  *fd_out = r;
  return 0;
}

int wasi_path_create_directory(int dirfd, char *path, int len) {
  return __werr(syscall("mkdirat", -100, cpath(path, len), 493));
}

int wasi_path_remove_directory(int dirfd, char *path, int len) {
  return __werr(syscall("unlinkat", -100, cpath(path, len), 512));
}

int wasi_path_unlink_file(int dirfd, char *path, int len) {
  return __werr(syscall("unlinkat", -100, cpath(path, len), 0));
}

char pathbuf2[200];
int wasi_path_rename(int fd1, char *p1, int l1, int fd2, char *p2, int l2) {
  if (l2 > 199) { l2 = 199; }
  memcopy(pathbuf2, p2, l2);
  pathbuf2[l2] = 0;
  return __werr(syscall("renameat", -100, cpath(p1, l1), -100, pathbuf2));
}

int wasi_fd_prestat_get(int fd, char *buf) {
  if (fd != 3) { return 8; } // EBADF: only one preopen
  *(int*)buf = 0;            // tag: dir
  *(int*)(buf + 4) = 1;      // name length of "/"
  return 0;
}

int wasi_fd_prestat_dir_name(int fd, char *path, int len) {
  if (fd != 3) { return 8; }
  if (len < 1) { return 28; }
  path[0] = '/';
  return 0;
}

int wasi_proc_exit(int code) {
  syscall("exit_group", code);
  return 0;
}

int wasi_random_get(char *buf, int len) {
  return __werr(syscall("getrandom", buf, len, 0));
}

int wasi_sched_yield() { return __werr(syscall("sched_yield")); }

int wasi_args_sizes_get(int *argc_p, int *size_p) {
  int n = argc();
  int total = 0;
  for (int i = 0; i < n; i = i + 1) { total = total + argv_len(i); }
  *argc_p = n;
  *size_p = total;
  return 0;
}

int wasi_args_get(int *argv_p, char *buf) {
  int n = argc();
  for (int i = 0; i < n; i = i + 1) {
    argv_copy(buf, i);
    argv_p[i] = (int)buf;
    buf = buf + argv_len(i);
  }
  return 0;
}

int wasi_environ_sizes_get(int *envc_p, int *size_p) {
  int n = envc();
  int total = 0;
  for (int i = 0; i < n; i = i + 1) { total = total + env_len(i); }
  *envc_p = n;
  *size_p = total;
  return 0;
}

int wasi_environ_get(int *env_p, char *buf) {
  int n = envc();
  for (int i = 0; i < n; i = i + 1) {
    env_copy(buf, i);
    env_p[i] = (int)buf;
    buf = buf + env_len(i);
  }
  return 0;
}

// keeps SYS_clock_gettime in the import section for the hand-appended
// clock_time_get (which needs the true i64 signature)
int __clock_probe() { return syscall("clock_gettime", 1, ts); }

int wasi_fd_tell(int fd, int *pos) {
  int r = syscall("lseek", fd, 0, 1);
  if (r < 0) { return __werr(r); }
  pos[0] = r;
  pos[1] = 0;
  return 0;
}
|}

(** Build the adapter as an AST module: compile the MiniC source with a
    relocated data base (below the app's data), import the shared memory
    instead of defining one, and export each [wasi_*] function under its
    preview1 name. Two true-i64 functions are appended by hand. *)
let build_module () : Ast.module_ =
  let prog = Minic.parse source in
  let m = Minic.Mc_wasm.compile ~data_base:256 prog in
  (* swap the local memory for an import *)
  let mem_import =
    {
      Ast.imp_module = "env";
      imp_name = "memory";
      imp_desc = Ast.Id_memory { Types.lim_min = 1; lim_max = None };
    }
  in
  let m =
    {
      m with
      Ast.memories = [||];
      imports = m.Ast.imports @ [ mem_import ];
      exports =
        List.filter
          (fun e -> e.Ast.exp_name <> "memory" && e.Ast.exp_name <> "__heap_base")
          m.Ast.exports;
      globals = [||];
    }
  in
  (* export every wasi_* function under its preview1 name *)
  let n_imported = Ast.num_imported_funcs m in
  let extra_exports = ref [] in
  Array.iteri
    (fun i (f : Ast.func) ->
      let name = f.Ast.f_name in
      if String.length name > 5 && String.sub name 0 5 = "wasi_" then
        extra_exports :=
          {
            Ast.exp_name = String.sub name 5 (String.length name - 5);
            exp_desc = Ast.Ed_func (n_imported + i);
          }
          :: !extra_exports)
    m.Ast.funcs;
  (* append the true-i64 functions: clock_time_get and fd_seek *)
  let find_import name =
    let rec go i = function
      | [] -> None
      | imp :: rest ->
          if imp.Ast.imp_module = "wali" && imp.Ast.imp_name = name
             && (match imp.Ast.imp_desc with Ast.Id_func _ -> true | _ -> false)
          then Some i
          else
            go (match imp.Ast.imp_desc with Ast.Id_func _ -> i + 1 | _ -> i) rest
    in
    go 0 m.Ast.imports
  in
  let clock_import = find_import "SYS_clock_gettime" in
  let lseek_import = find_import "SYS_lseek" in
  let types = ref (Array.to_list m.Ast.types) in
  let type_idx params results =
    let ft = { Types.params; results } in
    let rec search i = function
      | [] ->
          types := !types @ [ ft ];
          List.length !types - 1
      | t :: rest -> if Types.func_type_equal t ft then i else search (i + 1) rest
    in
    search 0 !types
  in
  let open Ast in
  let i32 = Types.T_i32 and i64 = Types.T_i64 in
  (* scratch timespec lives at adapter address 0..15 region? use 200..216
     inside the reserved page (the MiniC ts buffer is at a compiled
     address; here we use a fixed low slot 160). *)
  let scratch = 160 in
  let new_funcs = ref [] in
  (match clock_import with
  | Some ci ->
      (* clock_time_get(id:i32, precision:i64, out:i32) -> i32 *)
      let body =
        [
          (* SYS_clock_gettime(id, scratch) *)
          Local_get 0; I64_extend_i32 SX;
          I32_const (Int32.of_int scratch); I64_extend_i32 SX;
          Call ci; Drop;
          (* out <- sec * 1e9 + nsec, full 64-bit *)
          Local_get 2;
          I32_const (Int32.of_int scratch); I64_load { offset = 0; align = 3 };
          I64_const 1_000_000_000L; I64_binop Mul;
          I32_const (Int32.of_int scratch); I64_load { offset = 8; align = 3 };
          I64_binop Add;
          I64_store { offset = 0; align = 3 };
          I32_const 0l;
        ]
      in
      let f =
        { f_type = type_idx [ i32; i64; i32 ] [ i32 ];
          f_locals = []; f_body = body; f_name = "clock_time_get" }
      in
      new_funcs := !new_funcs @ [ f ]
  | None -> ());
  (match lseek_import with
  | Some li ->
      (* fd_seek(fd:i32, offset:i64, whence:i32, out:i32) -> i32 *)
      let body =
        [
          Local_get 0; I64_extend_i32 SX;
          Local_get 1;
          Local_get 2; I64_extend_i32 SX;
          Call li;
          Local_tee 4;
          I64_const 0L; I64_relop Lt_s;
          If
            ( Bt_val i32,
              [ (* map to EINVAL=28 generically *) I32_const 28l ],
              [
                Local_get 3; Local_get 4; I64_store { offset = 0; align = 3 };
                I32_const 0l;
              ] );
        ]
      in
      let f =
        { f_type = type_idx [ i32; i64; i32; i32 ] [ i32 ];
          f_locals = [ i64 ]; f_body = body; f_name = "fd_seek" }
      in
      new_funcs := !new_funcs @ [ f ]
  | None -> ());
  let base = n_imported + Array.length m.Ast.funcs in
  let appended_exports =
    List.mapi
      (fun i (f : Ast.func) ->
        { Ast.exp_name = f.Ast.f_name; exp_desc = Ast.Ed_func (base + i) })
      !new_funcs
  in
  {
    m with
    Ast.types = Array.of_list !types;
    funcs = Array.append m.Ast.funcs (Array.of_list !new_funcs);
    exports = m.Ast.exports @ List.rev !extra_exports @ appended_exports;
  }

let binary () : string = Binary.encode (build_module ())
