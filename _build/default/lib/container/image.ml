(** Container images: a stack of layers, each a set of (path -> contents)
    plus whiteouts — the Docker storage-driver model whose materialization
    cost dominates container startup (paper §4.3). *)

type layer = {
  l_name : string;
  l_files : (string * string) list; (* path -> contents *)
  l_dirs : string list;
  l_whiteouts : string list; (* paths removed by this layer *)
}

type t = { img_name : string; layers : layer list (* bottom first *) }

let layer ?(dirs = []) ?(whiteouts = []) name files =
  { l_name = name; l_files = files; l_dirs = dirs; l_whiteouts = whiteouts }

let image name layers = { img_name = name; layers }

let layer_bytes (l : layer) : int =
  List.fold_left (fun acc (_, c) -> acc + String.length c + 256) 0 l.l_files
  + (List.length l.l_dirs * 128)

let image_bytes (img : t) : int =
  List.fold_left (fun acc l -> acc + layer_bytes l) 0 img.layers

(* A base rootfs layer shaped like a slim distro image: libc, coreutils
   stubs, service configs — the ~30 MB base cost Docker pays and WALI
   does not (Fig 8a). [scale] multiplies the synthetic payload size. *)
let base_rootfs ?(scale = 1) () : layer =
  let blob tag n = (tag, String.make n 'x') in
  let files =
    [
      blob "/lib/libc.so.6" (1_800_000 * scale);
      blob "/lib/libpthread.so.0" (120_000 * scale);
      blob "/lib/ld-linux.so.2" (180_000 * scale);
      blob "/bin/busybox" (900_000 * scale);
      blob "/usr/lib/libssl.so" (600_000 * scale);
      blob "/usr/lib/libcrypto.so" (2_500_000 * scale);
      ("/etc/os-release", "ID=minilinux\nVERSION_ID=1.0\n");
      ("/etc/passwd", "root:x:0:0:root:/root:/bin/sh\n");
      ("/etc/group", "root:x:0:\n");
      ("/etc/hosts", "127.0.0.1 localhost\n");
      ("/etc/resolv.conf", "nameserver 127.0.0.1\n");
    ]
  in
  layer "base-rootfs"
    ~dirs:[ "/bin"; "/lib"; "/usr/lib"; "/etc"; "/var"; "/tmp"; "/proc"; "/sys" ]
    files

let app_layer ~name ~(binary : string) ?(extra = []) () : layer =
  layer ("app-" ^ name) (("/app/" ^ name, binary) :: extra) ~dirs:[ "/app" ]
