lib/container/runtime.ml: Bytebuf Bytes Hashtbl Image Kernel List String Task Vfs
