lib/container/image.ml: List String
