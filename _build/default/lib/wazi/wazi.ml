(** WAZI: the thin kernel interface for Zephyr RTOS (paper §5.1),
    produced by applying the six-step recipe of §5:

    1. name-bind all syscalls — imports are ("wazi", <zephyr call name>)
       taken from the compiler-extracted encoding in
       {!Tables.Zephyr_tables};
    2. sandbox pointers — buffer arguments are translated/bounds-checked
       against the module's linear memory;
    3. portable layouts — Zephyr's encoding is already ISA-portable;
    4. process model — k_thread maps to instance-per-thread machines;
    5. memory — k_malloc cookies account against the kernel heap while
       storage stays inside linear memory;
    6. async — timers/semaphore wakeups land at the same safepoints WALI
       uses.

    Handlers for the implemented core are below; every other entry in the
    encoding becomes an auto-generated trap-on-call stub, mirroring how
    WAZI auto-generates >85% of the surface. *)

open Wasm

type t = {
  z : Zephyr.Zkernel.t;
  mutable trace : (string * int) list; (* call counts *)
  strings : Buffer.t; (* uart text staging *)
}

let create ?(z : Zephyr.Zkernel.t option) () : t =
  {
    z = (match z with Some z -> z | None -> Zephyr.Zkernel.create ());
    trace = [];
    strings = Buffer.create 64;
  }

let note t name =
  t.trace <-
    (match List.assoc_opt name t.trace with
    | Some n -> (name, n + 1) :: List.remove_assoc name t.trace
    | None -> (name, 1) :: t.trace)

let i32 v = Values.I32 (Int32.of_int v)

(* The per-call implementations over the Zephyr simulator. Each gets the
   calling machine (for address-space translation) and i32 args. *)
let dispatch (t : t) (name : string) (m : Rt.machine) (args : int array) :
    Rt.host_outcome =
  note t name;
  let z = t.z in
  let mem = Rt.memory0 m in
  let a i = if i < Array.length args then args.(i) else 0 in
  let ret v = Rt.H_return [ i32 v ] in
  let open Zephyr.Zkernel in
  match name with
  | "k_yield" ->
      k_yield ();
      ret 0
  | "k_sleep" ->
      k_sleep_ms (a 0);
      ret 0
  | "k_usleep" ->
      k_sleep_ms (max 1 (a 0 / 1000));
      ret 0
  | "k_uptime_ticks" -> ret (k_uptime_ms ())
  | "k_sem_init" -> ret (k_sem_init z ~count:(a 1) ~limit:(a 2))
  | "k_sem_take" -> ret (k_sem_take z ~handle:(a 0) ~timeout_ms:(a 1))
  | "k_sem_give" -> ret (k_sem_give z ~handle:(a 0))
  | "k_sem_count_get" -> ret (k_sem_count z ~handle:(a 0))
  | "k_mutex_init" -> ret (k_mutex_init z)
  | "k_mutex_lock" -> ret (k_mutex_lock z ~handle:(a 0))
  | "k_mutex_unlock" -> ret (k_mutex_unlock z ~handle:(a 0))
  | "k_msgq_init" -> ret (k_msgq_init z ~msg_size:(a 2) ~capacity:(a 3))
  | "k_msgq_put" -> (
      let size =
        match find_obj z (a 0) with
        | Some (O_msgq q) -> q.q_msg_size
        | _ -> 0
      in
      if size = 0 then ret (-22)
      else
        try
          let data = Bytes.of_string (Rt.Memory.read_string mem ~addr:(a 1) ~len:size) in
          ret (k_msgq_put z ~handle:(a 0) ~data ~timeout_ms:(a 2))
        with Rt.Memory.Bounds -> ret (-14))
  | "k_msgq_get" -> (
      match k_msgq_get z ~handle:(a 0) ~timeout_ms:(a 2) with
      | Ok data -> (
          try
            Rt.Memory.write_string mem ~addr:(a 1) (Bytes.to_string data);
            ret 0
          with Rt.Memory.Bounds -> ret (-14))
      | Error e -> ret e)
  | "k_timer_start" -> ret (k_timer_start z ~handle:(a 0) ~duration_ms:(a 1) ~period_ms:(a 2))
  | "k_timer_stop" -> ret (k_timer_stop z ~handle:(a 0))
  | "k_timer_status_get" -> ret (k_timer_status z ~handle:(a 0))
  | "k_timer_init" -> ret (k_timer_init z) (* convenience alias *)
  | "k_malloc" -> ret (k_malloc z (a 0))
  | "k_free" ->
      k_free z (a 0);
      ret 0
  | "gpio_pin_configure" -> ret (gpio_configure z ~pin:(a 1) ~output:(a 2 <> 0))
  | "gpio_pin_set" -> ret (gpio_set z ~pin:(a 1) ~value:(a 2))
  | "gpio_pin_get" -> ret (gpio_get z ~pin:(a 1))
  | "gpio_pin_toggle" -> ret (gpio_toggle z ~pin:(a 1))
  | "uart_poll_out" -> ret (uart_poll_out z (a 1))
  | "uart_poll_in" -> ret (uart_poll_in z)
  | "device_get_binding" -> ret 1 (* single board: handle 1 *)
  | "device_is_ready" -> ret 1
  | "sys_rand_get" -> (
      try
        let len = a 1 in
        Rt.Memory.check mem (a 0) len;
        sys_rand mem.Rt.Memory.data (a 0) len;
        ret 0
      with Rt.Memory.Bounds -> ret (-14))
  | "k_thread_join" -> ret (k_thread_join z ~tid:(a 0))
  | "k_thread_abort" -> ret (k_thread_abort z ~tid:(a 0))
  | _ ->
      (* auto-generated stub: the call exists in the encoding but targets
         a subsystem the interface does not virtualize *)
      Rt.H_trap (Printf.sprintf "WAZI: %s is an unimplemented subsystem stub" name)

(** k_thread_create needs the engine loop (instance-per-thread), so it is
    installed specially by {!resolver}. *)
let thread_create_host (t : t) : Rt.func_inst =
  Rt.Host_func
    {
      hf_name = "k_thread_create";
      hf_type =
        { Types.params = [ Types.T_i32; Types.T_i32 ]; results = [ Types.T_i32 ] };
      hf_fn =
        (fun m args ->
          let entry_idx = Int32.to_int (Values.as_i32 args.(0)) in
          let arg = Int32.to_int (Values.as_i32 args.(1)) in
          let f =
            if Array.length m.Rt.m_inst.Rt.i_tables = 0 then None
            else
              match Rt.Table.get m.Rt.m_inst.Rt.i_tables.(0) entry_idx with
              | Some fidx -> Some m.Rt.m_inst.Rt.i_funcs.(fidx)
              | None -> None
              | exception Values.Trap _ -> None
          in
          match f with
          | None -> Rt.H_return [ i32 (-22) ]
          | Some fn ->
              let tid =
                Zephyr.Zkernel.k_thread_create t.z ~name:"wasm" ~prio:5
                  (fun () ->
                    let tm = Rt.Machine.create m.Rt.m_inst in
                    tm.Rt.poll_hook <- m.Rt.poll_hook;
                    ignore (Interp.invoke tm fn [ i32 arg ]))
              in
              Rt.H_return [ i32 tid ]);
    }

(** The WAZI import resolver: every call in the Zephyr encoding resolves
    (implemented or stub), demonstrating the auto-generation claim. *)
let resolver (t : t) : Link.resolver =
 fun ~module_name ~name ->
  if module_name <> "wazi" then None
  else if name = "k_thread_create" then Some (Rt.E_func (thread_create_host t))
  else
    match
      List.find_opt
        (fun (e : Tables.Zephyr_tables.entry) -> e.Tables.Zephyr_tables.name = name)
        Tables.Zephyr_tables.all
    with
    | None -> None
    | Some entry ->
        let arity = entry.Tables.Zephyr_tables.arity in
        Some
          (Rt.E_func
             (Rt.Host_func
                {
                  hf_name = name;
                  hf_type =
                    { Types.params = List.init arity (fun _ -> Types.T_i32);
                      results = [ Types.T_i32 ] };
                  hf_fn =
                    (fun m args ->
                      dispatch t name m
                        (Array.map (fun v -> Int32.to_int (Values.as_i32 v)) args));
                }))

(** Run a Wasm module's [main] export on WAZI. Returns (result, wazi). *)
let run_module ?(wazi : t option) (binary : string) :
    Interp.run_result * t =
  let t = match wazi with Some t -> t | None -> create () in
  let m = Binary.decode ~name:"wazi-app" binary in
  let cm = Code.compile_module ~poll:Code.Poll_loops m in
  let result = ref (Interp.R_trap "did not run") in
  Fiber.run (fun () ->
      let inst, _ = Link.instantiate ~name:"wazi-app" (resolver t) cm in
      let mach = Rt.Machine.create inst in
      result := Interp.invoke mach (Rt.exported_func inst "main") []);
  (!result, t)
