(** A Zephyr-like RTOS simulator: cooperative threads with priorities,
    semaphores, mutexes, message queues, timers, a kernel heap, and a
    small device tree (GPIO pins + UART console) — the substrate WAZI's
    recipe is applied to (paper §5.1). *)

type zthread = {
  zt_id : int;
  mutable zt_name : string;
  mutable zt_prio : int;
  mutable zt_alive : bool;
  zt_join_wq : unit Kernel.Waitq.t;
  zt_intr : (unit -> unit) option ref;
}

type sem = { mutable s_count : int; s_limit : int; s_wq : unit Kernel.Waitq.t }

type mutex = {
  mutable m_owner : int option; (* thread id *)
  mutable m_depth : int;
  m_wq : unit Kernel.Waitq.t;
}

type msgq = {
  q_msg_size : int;
  q_capacity : int;
  q_items : Bytes.t Queue.t;
  q_put_wq : unit Kernel.Waitq.t;
  q_get_wq : unit Kernel.Waitq.t;
}

type timer = {
  mutable tm_gen : int;
  mutable tm_expired : int;
  tm_wq : unit Kernel.Waitq.t;
}

type gpio_pin = { mutable gp_dir_out : bool; mutable gp_value : int }

type t = {
  mutable next_tid : int;
  threads : (int, zthread) Hashtbl.t;
  mutable objects : (int, obj) Hashtbl.t; (* kernel object handles *)
  mutable next_obj : int;
  uart_out : Buffer.t;
  mutable uart_in : string list; (* queued input bytes *)
  gpio : gpio_pin array;
  mutable gpio_log : (int * int * int64) list; (* pin, value, time *)
  mutable heap_used : int;
  heap_limit : int;
}

and obj = O_sem of sem | O_mutex of mutex | O_msgq of msgq | O_timer of timer

let create ?(heap_limit = 65536) () : t =
  {
    next_tid = 1;
    threads = Hashtbl.create 8;
    objects = Hashtbl.create 16;
    next_obj = 1;
    uart_out = Buffer.create 256;
    uart_in = [];
    gpio = Array.init 32 (fun _ -> { gp_dir_out = false; gp_value = 0 });
    gpio_log = [];
    heap_used = 0;
    heap_limit;
  }

let alloc_obj z o =
  let h = z.next_obj in
  z.next_obj <- h + 1;
  Hashtbl.replace z.objects h o;
  h

let find_obj z h = Hashtbl.find_opt z.objects h

(* ---- threads ---- *)

let current_thread : zthread option ref = ref None

let k_thread_create z ~name ~prio (body : unit -> unit) : int =
  let tid = z.next_tid in
  z.next_tid <- tid + 1;
  let th =
    { zt_id = tid; zt_name = name; zt_prio = prio; zt_alive = true;
      zt_join_wq = Kernel.Waitq.create (); zt_intr = ref None }
  in
  Hashtbl.replace z.threads tid th;
  ignore
    (Fiber.spawn ("z:" ^ name) (fun () ->
         let saved = !current_thread in
         current_thread := Some th;
         (try body () with _ -> ());
         th.zt_alive <- false;
         ignore (Kernel.Waitq.wake_all th.zt_join_wq ());
         current_thread := saved));
  tid

let k_thread_join z ~tid : int =
  match Hashtbl.find_opt z.threads tid with
  | None -> -22 (* EINVAL *)
  | Some th ->
      if th.zt_alive then begin
        let intr = match !current_thread with Some t -> t.zt_intr | None -> ref None in
        ignore (Kernel.Waitq.wait ~intr th.zt_join_wq)
      end;
      0

let k_thread_abort z ~tid : int =
  match Hashtbl.find_opt z.threads tid with
  | None -> -22
  | Some th ->
      th.zt_alive <- false;
      ignore (Kernel.Waitq.wake_all th.zt_join_wq ());
      0

let k_yield () = Fiber.yield ()

let k_sleep_ms ms =
  if ms > 0 then Fiber.sleep_until (Int64.add (Fiber.now ()) (Int64.mul (Int64.of_int ms) 1_000_000L))
  else Fiber.yield ()

let k_uptime_ms () = Int64.to_int (Int64.div (Fiber.now ()) 1_000_000L)

let cur_intr () =
  match !current_thread with Some t -> t.zt_intr | None -> ref None

(* ---- semaphores ---- *)

let k_sem_init z ~count ~limit : int =
  alloc_obj z (O_sem { s_count = count; s_limit = limit; s_wq = Kernel.Waitq.create () })

let k_sem_take z ~handle ~timeout_ms : int =
  match find_obj z handle with
  | Some (O_sem s) ->
      let rec go () =
        if s.s_count > 0 then begin
          s.s_count <- s.s_count - 1;
          0
        end
        else if timeout_ms = 0 then -11 (* EAGAIN: K_NO_WAIT *)
        else begin
          let timeout_ns =
            if timeout_ms < 0 then None
            else Some (Int64.mul (Int64.of_int timeout_ms) 1_000_000L)
          in
          match Kernel.Waitq.wait ?timeout_ns ~intr:(cur_intr ()) s.s_wq with
          | Kernel.Waitq.Timeout -> -116 (* ETIMEDOUT-ish (Zephyr -EAGAIN) *)
          | Kernel.Waitq.Woken () | Kernel.Waitq.Interrupted -> go ()
        end
      in
      go ()
  | _ -> -22

let k_sem_give z ~handle : int =
  match find_obj z handle with
  | Some (O_sem s) ->
      if s.s_count < s.s_limit then s.s_count <- s.s_count + 1;
      ignore (Kernel.Waitq.wake_one s.s_wq ());
      0
  | _ -> -22

let k_sem_count z ~handle : int =
  match find_obj z handle with Some (O_sem s) -> s.s_count | _ -> -22

(* ---- mutexes ---- *)

let k_mutex_init z : int =
  alloc_obj z (O_mutex { m_owner = None; m_depth = 0; m_wq = Kernel.Waitq.create () })

let k_mutex_lock z ~handle : int =
  match find_obj z handle with
  | Some (O_mutex m) ->
      let me = match !current_thread with Some t -> t.zt_id | None -> 0 in
      let rec go () =
        match m.m_owner with
        | None ->
            m.m_owner <- Some me;
            m.m_depth <- 1;
            0
        | Some o when o = me ->
            m.m_depth <- m.m_depth + 1;
            0
        | Some _ -> (
            match Kernel.Waitq.wait ~intr:(cur_intr ()) m.m_wq with
            | _ -> go ())
      in
      go ()
  | _ -> -22

let k_mutex_unlock z ~handle : int =
  match find_obj z handle with
  | Some (O_mutex m) ->
      m.m_depth <- m.m_depth - 1;
      if m.m_depth <= 0 then begin
        m.m_owner <- None;
        ignore (Kernel.Waitq.wake_one m.m_wq ())
      end;
      0
  | _ -> -22

(* ---- message queues ---- *)

let k_msgq_init z ~msg_size ~capacity : int =
  alloc_obj z
    (O_msgq
       { q_msg_size = msg_size; q_capacity = capacity; q_items = Queue.create ();
         q_put_wq = Kernel.Waitq.create (); q_get_wq = Kernel.Waitq.create () })

let k_msgq_put z ~handle ~(data : Bytes.t) ~timeout_ms : int =
  match find_obj z handle with
  | Some (O_msgq q) ->
      let rec go () =
        if Queue.length q.q_items < q.q_capacity then begin
          Queue.push (Bytes.sub data 0 q.q_msg_size) q.q_items;
          ignore (Kernel.Waitq.wake_one q.q_get_wq ());
          0
        end
        else if timeout_ms = 0 then -11
        else
          match Kernel.Waitq.wait ~intr:(cur_intr ()) q.q_put_wq with _ -> go ()
      in
      go ()
  | _ -> -22

let k_msgq_get z ~handle ~timeout_ms : (Bytes.t, int) result =
  match find_obj z handle with
  | Some (O_msgq q) ->
      let rec go () =
        if not (Queue.is_empty q.q_items) then begin
          let item = Queue.pop q.q_items in
          ignore (Kernel.Waitq.wake_one q.q_put_wq ());
          Ok item
        end
        else if timeout_ms = 0 then Error (-11)
        else begin
          let timeout_ns =
            if timeout_ms < 0 then None
            else Some (Int64.mul (Int64.of_int timeout_ms) 1_000_000L)
          in
          match Kernel.Waitq.wait ?timeout_ns ~intr:(cur_intr ()) q.q_get_wq with
          | Kernel.Waitq.Timeout -> Error (-11)
          | _ -> go ()
        end
      in
      go ()
  | _ -> Error (-22)

(* ---- timers ---- *)

let k_timer_init z : int =
  alloc_obj z (O_timer { tm_gen = 0; tm_expired = 0; tm_wq = Kernel.Waitq.create () })

let k_timer_start z ~handle ~duration_ms ~period_ms : int =
  match find_obj z handle with
  | Some (O_timer t) ->
      t.tm_gen <- t.tm_gen + 1;
      let gen = t.tm_gen in
      let rec arm delay =
        Fiber.at
          (Int64.add (Fiber.now ()) (Int64.mul (Int64.of_int delay) 1_000_000L))
          (fun () ->
            if t.tm_gen = gen then begin
              t.tm_expired <- t.tm_expired + 1;
              ignore (Kernel.Waitq.wake_all t.tm_wq ());
              if period_ms > 0 then arm period_ms
            end)
      in
      arm duration_ms;
      0
  | _ -> -22

let k_timer_stop z ~handle : int =
  match find_obj z handle with
  | Some (O_timer t) ->
      t.tm_gen <- t.tm_gen + 1;
      0
  | _ -> -22

let k_timer_status z ~handle : int =
  match find_obj z handle with
  | Some (O_timer t) ->
      let n = t.tm_expired in
      t.tm_expired <- 0;
      n
  | _ -> -22

(* ---- devices ---- *)

let gpio_configure z ~pin ~output : int =
  if pin < 0 || pin >= Array.length z.gpio then -22
  else begin
    z.gpio.(pin).gp_dir_out <- output;
    0
  end

let gpio_set z ~pin ~value : int =
  if pin < 0 || pin >= Array.length z.gpio then -22
  else begin
    z.gpio.(pin).gp_value <- (if value <> 0 then 1 else 0);
    z.gpio_log <- (pin, z.gpio.(pin).gp_value, Fiber.now ()) :: z.gpio_log;
    0
  end

let gpio_get z ~pin : int =
  if pin < 0 || pin >= Array.length z.gpio then -22 else z.gpio.(pin).gp_value

let gpio_toggle z ~pin : int =
  if pin < 0 || pin >= Array.length z.gpio then -22
  else gpio_set z ~pin ~value:(1 - z.gpio.(pin).gp_value)

let uart_poll_out z (c : int) : int =
  Buffer.add_char z.uart_out (Char.chr (c land 0xff));
  0

let uart_poll_in z : int =
  match z.uart_in with
  | [] -> -1
  | s :: rest ->
      if String.length s = 0 then begin
        z.uart_in <- rest;
        -1
      end
      else begin
        let c = Char.code s.[0] in
        z.uart_in <- String.sub s 1 (String.length s - 1) :: rest;
        c
      end

let uart_feed z s = z.uart_in <- z.uart_in @ [ s ]
let uart_output z = Buffer.contents z.uart_out

(* ---- kernel heap (bump accounting; real storage is the Wasm module's) *)

let k_malloc z n : int =
  if z.heap_used + n > z.heap_limit then 0
  else begin
    z.heap_used <- z.heap_used + n;
    z.heap_used (* opaque nonzero cookie *)
  end

let k_free _z _p = ()

(* deterministic PRNG for sys_rand_get *)
let rand_state = ref 0x12345678L

let sys_rand (buf : Bytes.t) off len =
  for i = 0 to len - 1 do
    let x = !rand_state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    rand_state := x;
    Bytes.set buf (off + i) (Char.chr (Int64.to_int (Int64.logand x 0xFFL)))
  done
