lib/zephyr/zkernel.ml: Array Buffer Bytes Char Fiber Hashtbl Int64 Kernel Queue String
