lib/tables/linux_tables.ml: List
