lib/tables/zephyr_tables.ml: List Printf
