(** Zephyr RTOS syscall encoding.

    Zephyr's build system parses every __syscall declaration and emits an
    ISA-portable encoding; WAZI consumes that encoding to auto-generate
    passthrough handlers (paper §5.1). This module is our stand-in for
    that generated encoding: each entry carries the subsystem group, the
    argument arity, and whether our Zephyr simulator implements the
    target (the rest become trap-on-call stubs, as in WAZI).

    Counts per subsystem approximate the real tree (~520 syscalls total),
    which is what the §2 scoping argument needs: most target
    domain-specific subsystems a kernel interface need not support. *)

type entry = {
  name : string;
  group : string;
  arity : int;
  implemented : bool;
}

let z ?(impl = false) name group arity = { name; group; arity; implemented = impl }

(* Core kernel calls implemented by our simulator. *)
let implemented_calls =
  [
    z ~impl:true "k_thread_create" "kernel" 6;
    z ~impl:true "k_thread_join" "kernel" 2;
    z ~impl:true "k_thread_abort" "kernel" 1;
    z ~impl:true "k_thread_priority_get" "kernel" 1;
    z ~impl:true "k_thread_priority_set" "kernel" 2;
    z ~impl:true "k_thread_name_set" "kernel" 2;
    z ~impl:true "k_sleep" "kernel" 1;
    z ~impl:true "k_usleep" "kernel" 1;
    z ~impl:true "k_yield" "kernel" 0;
    z ~impl:true "k_uptime_ticks" "kernel" 0;
    z ~impl:true "k_sem_init" "kernel" 3;
    z ~impl:true "k_sem_take" "kernel" 2;
    z ~impl:true "k_sem_give" "kernel" 1;
    z ~impl:true "k_sem_count_get" "kernel" 1;
    z ~impl:true "k_mutex_init" "kernel" 1;
    z ~impl:true "k_mutex_lock" "kernel" 2;
    z ~impl:true "k_mutex_unlock" "kernel" 1;
    z ~impl:true "k_queue_init" "kernel" 1;
    z ~impl:true "k_queue_append" "kernel" 2;
    z ~impl:true "k_queue_get" "kernel" 2;
    z ~impl:true "k_msgq_init" "kernel" 4;
    z ~impl:true "k_msgq_put" "kernel" 3;
    z ~impl:true "k_msgq_get" "kernel" 3;
    z ~impl:true "k_timer_start" "kernel" 3;
    z ~impl:true "k_timer_stop" "kernel" 1;
    z ~impl:true "k_timer_status_get" "kernel" 1;
    z ~impl:true "k_malloc" "kernel" 1;
    z ~impl:true "k_free" "kernel" 1;
    z ~impl:true "device_get_binding" "device" 1;
    z ~impl:true "device_is_ready" "device" 1;
    z ~impl:true "gpio_pin_configure" "gpio" 3;
    z ~impl:true "gpio_pin_set" "gpio" 3;
    z ~impl:true "gpio_pin_get" "gpio" 2;
    z ~impl:true "gpio_pin_toggle" "gpio" 2;
    z ~impl:true "uart_poll_out" "uart" 2;
    z ~impl:true "uart_poll_in" "uart" 2;
    z ~impl:true "fs_open" "fs" 3;
    z ~impl:true "fs_close" "fs" 1;
    z ~impl:true "fs_read" "fs" 3;
    z ~impl:true "fs_write" "fs" 3;
    z ~impl:true "fs_seek" "fs" 3;
    z ~impl:true "fs_unlink" "fs" 1;
    z ~impl:true "fs_mkdir" "fs" 1;
    z ~impl:true "fs_stat" "fs" 2;
    z ~impl:true "k_poll" "kernel" 3;
    z ~impl:true "k_stack_push" "kernel" 2;
    z ~impl:true "k_stack_pop" "kernel" 3;
    z ~impl:true "sys_rand_get" "misc" 2;
    z ~impl:true "k_object_alloc" "kernel" 1;
  ]

(* Domain-specific subsystems: present in Zephyr's interface, stubbed in
   WAZI (trap with a clear message if called) — the paper's point that a
   kernel interface only needs the core fraction. *)
let stub_groups : (string * int) list =
  [
    ("net", 80); ("bluetooth", 45); ("sensor", 30); ("i2c", 18); ("spi", 12);
    ("adc", 10); ("dac", 6); ("pwm", 8); ("can", 22); ("counter", 12);
    ("dma", 10); ("eeprom", 4); ("entropy", 3); ("flash", 14); ("gnss", 9);
    ("hwinfo", 4); ("ipm", 6); ("led", 6); ("mbox", 5); ("modem", 10);
    ("regulator", 8); ("retained_mem", 4); ("rtc", 10); ("sip_svc", 8);
    ("smbus", 12); ("w1", 9); ("wdt", 5); ("auxdisplay", 12); ("display", 10);
    ("video", 14); ("usb", 16); ("crypto", 8); ("espi", 12); ("kscan", 3);
    ("mdio" , 4); ("peci", 5); ("ps2", 5); ("sdhc", 6); ("syscon", 4);
    ("tgpio", 6); ("charger", 5); ("fuel_gauge", 4); ("haptics", 3);
    ("stepper", 8); ("i3c", 10); ("clock_control", 6); ("pm", 8);
    ("logging", 6); ("tracing", 5); ("settings", 6);
  ]

let stubs : entry list =
  List.concat_map
    (fun (group, n) ->
      List.init n (fun i -> z (Printf.sprintf "%s_call%d" group i) group 3))
    stub_groups

let all : entry list = implemented_calls @ stubs

let total_count = List.length all
let implemented_count = List.length implemented_calls

let groups () =
  List.sort_uniq compare (List.map (fun z -> z.group) all)

let by_group g = List.filter (fun z -> z.group = g) all
