(** Linux syscall presence across ISAs.

    Numbers are the x86-64 syscall numbers (the reference ABI); for
    aarch64 and riscv64 we record *presence*, which is what both the
    Fig 3 similarity analysis and WALI's name-bound union specification
    (paper §3.5) need. The characteristic pattern encoded here: the
    asm-generic ABI used by aarch64/riscv64 dropped the legacy
    path-based calls (open, stat, access, pipe, fork, ...) in favour of
    the *at/newer variants, and riscv64 additionally dropped a small
    handful (e.g. renameat) that aarch64 kept. *)

type entry = {
  name : string;
  nr_x86_64 : int;
  on_x86_64 : bool;
  on_aarch64 : bool;
  on_riscv64 : bool;
  category : string; (* file | proc | signal | mem | net | time | misc *)
}

let e ?(x86 = true) ?(a64 = true) ?(rv = true) name nr category =
  {
    name;
    nr_x86_64 = nr;
    on_x86_64 = x86;
    on_aarch64 = a64;
    on_riscv64 = rv;
    category;
  }

(* legacy: x86-64 only *)
let legacy name nr cat = e ~a64:false ~rv:false name nr cat

let all : entry list =
  [
    e "read" 0 "file";
    e "write" 1 "file";
    legacy "open" 2 "file";
    e "close" 3 "file";
    legacy "stat" 4 "file";
    e "fstat" 5 "file";
    legacy "lstat" 6 "file";
    legacy "poll" 7 "file";
    e "lseek" 8 "file";
    e "mmap" 9 "mem";
    e "mprotect" 10 "mem";
    e "munmap" 11 "mem";
    e "brk" 12 "mem";
    e "rt_sigaction" 13 "signal";
    e "rt_sigprocmask" 14 "signal";
    e "rt_sigreturn" 15 "signal";
    e "ioctl" 16 "file";
    e "pread64" 17 "file";
    e "pwrite64" 18 "file";
    e "readv" 19 "file";
    e "writev" 20 "file";
    legacy "access" 21 "file";
    legacy "pipe" 22 "file";
    legacy "select" 23 "file";
    e "sched_yield" 24 "proc";
    e "mremap" 25 "mem";
    e "msync" 26 "mem";
    e "mincore" 27 "mem";
    e "madvise" 28 "mem";
    legacy "dup2" 33 "file";
    e "dup" 32 "file";
    legacy "pause" 34 "signal";
    e "nanosleep" 35 "time";
    e "getitimer" 36 "time";
    legacy "alarm" 37 "time";
    e "setitimer" 38 "time";
    e "getpid" 39 "proc";
    e "sendfile" 40 "file";
    e "socket" 41 "net";
    e "connect" 42 "net";
    e "accept" 43 "net";
    e "sendto" 44 "net";
    e "recvfrom" 45 "net";
    e "sendmsg" 46 "net";
    e "recvmsg" 47 "net";
    e "shutdown" 48 "net";
    e "bind" 49 "net";
    e "listen" 50 "net";
    e "getsockname" 51 "net";
    e "getpeername" 52 "net";
    e "socketpair" 53 "net";
    e "setsockopt" 54 "net";
    e "getsockopt" 55 "net";
    e "clone" 56 "proc";
    legacy "fork" 57 "proc";
    legacy "vfork" 58 "proc";
    e "execve" 59 "proc";
    e "exit" 60 "proc";
    e "wait4" 61 "proc";
    e "kill" 62 "signal";
    e "uname" 63 "misc";
    e "fcntl" 72 "file";
    e "flock" 73 "file";
    e "fsync" 74 "file";
    e "fdatasync" 75 "file";
    e "truncate" 76 "file";
    e "ftruncate" 77 "file";
    legacy "getdents" 78 "file";
    e "getcwd" 79 "file";
    e "chdir" 80 "file";
    e "fchdir" 81 "file";
    legacy "rename" 82 "file";
    legacy "mkdir" 83 "file";
    legacy "rmdir" 84 "file";
    legacy "creat" 85 "file";
    legacy "link" 86 "file";
    legacy "unlink" 87 "file";
    legacy "symlink" 88 "file";
    legacy "readlink" 89 "file";
    legacy "chmod" 90 "file";
    e "fchmod" 91 "file";
    legacy "chown" 92 "file";
    e "fchown" 93 "file";
    legacy "lchown" 94 "file";
    e "umask" 95 "proc";
    e "gettimeofday" 96 "time";
    e "getrlimit" 97 "proc";
    e "getrusage" 98 "proc";
    e "sysinfo" 99 "misc";
    e "times" 100 "time";
    e "getuid" 102 "proc";
    e "getgid" 104 "proc";
    e "setuid" 105 "proc";
    e "setgid" 106 "proc";
    e "geteuid" 107 "proc";
    e "getegid" 108 "proc";
    e "setpgid" 109 "proc";
    e "getppid" 110 "proc";
    legacy "getpgrp" 111 "proc";
    e "setsid" 112 "proc";
    e "setreuid" 113 "proc";
    e "setregid" 114 "proc";
    e "getgroups" 115 "proc";
    e "setgroups" 116 "proc";
    e "setresuid" 117 "proc";
    e "getresuid" 118 "proc";
    e "setresgid" 119 "proc";
    e "getresgid" 120 "proc";
    e "getpgid" 121 "proc";
    e "getsid" 124 "proc";
    e "rt_sigpending" 127 "signal";
    e "rt_sigtimedwait" 128 "signal";
    e "rt_sigqueueinfo" 129 "signal";
    e "rt_sigsuspend" 130 "signal";
    e "sigaltstack" 131 "signal";
    legacy "utime" 132 "file";
    legacy "mknod" 133 "file";
    e "statfs" 137 "file";
    e "fstatfs" 138 "file";
    e "sched_setparam" 142 "proc";
    e "sched_getparam" 143 "proc";
    e "sched_setscheduler" 144 "proc";
    e "sched_getscheduler" 145 "proc";
    e "sched_get_priority_max" 146 "proc";
    e "sched_get_priority_min" 147 "proc";
    e "mlock" 149 "mem";
    e "munlock" 150 "mem";
    e "prctl" 157 "proc";
    legacy "arch_prctl" 158 "proc";
    e "setrlimit" 160 "proc";
    e "chroot" 161 "file";
    e "sync" 162 "file";
    e "mount" 165 "file";
    e "umount2" 166 "file";
    e "sethostname" 170 "misc";
    e "gettid" 186 "proc";
    e "futex" 202 "proc";
    e "sched_setaffinity" 203 "proc";
    e "sched_getaffinity" 204 "proc";
    legacy "epoll_create" 213 "file";
    e "getdents64" 217 "file";
    e "set_tid_address" 218 "proc";
    e "fadvise64" 221 "file";
    e "timer_create" 222 "time";
    e "timer_settime" 223 "time";
    e "timer_gettime" 224 "time";
    e "timer_delete" 226 "time";
    e "clock_settime" 227 "time";
    e "clock_gettime" 228 "time";
    e "clock_getres" 229 "time";
    e "clock_nanosleep" 230 "time";
    e "exit_group" 231 "proc";
    legacy "epoll_wait" 232 "file";
    e "epoll_ctl" 233 "file";
    e "tgkill" 234 "signal";
    legacy "utimes" 235 "file";
    e "waitid" 247 "proc";
    legacy "inotify_init" 253 "file";
    e "inotify_add_watch" 254 "file";
    e "inotify_rm_watch" 255 "file";
    e "openat" 257 "file";
    e "mkdirat" 258 "file";
    e "mknodat" 259 "file";
    e "fchownat" 260 "file";
    legacy "futimesat" 261 "file";
    e "newfstatat" 262 "file";
    e "unlinkat" 263 "file";
    (* riscv64 dropped renameat, keeping only renameat2 *)
    e ~rv:false "renameat" 264 "file";
    e "linkat" 265 "file";
    e "symlinkat" 266 "file";
    e "readlinkat" 267 "file";
    e "fchmodat" 268 "file";
    e "faccessat" 269 "file";
    e "pselect6" 270 "file";
    e "ppoll" 271 "file";
    e "set_robust_list" 273 "proc";
    e "get_robust_list" 274 "proc";
    e "splice" 275 "file";
    e "tee" 276 "file";
    e "sync_file_range" 277 "file";
    e "utimensat" 280 "file";
    legacy "epoll_pwait" 281 "file";
    legacy "signalfd" 282 "signal";
    e "timerfd_create" 283 "time";
    legacy "eventfd" 284 "file";
    e "fallocate" 285 "file";
    e "timerfd_settime" 286 "time";
    e "timerfd_gettime" 287 "time";
    e "accept4" 288 "net";
    e "signalfd4" 289 "signal";
    e "eventfd2" 290 "file";
    e "epoll_create1" 291 "file";
    e "dup3" 292 "file";
    e "pipe2" 293 "file";
    e "inotify_init1" 294 "file";
    e "preadv" 295 "file";
    e "pwritev" 296 "file";
    e "rt_tgsigqueueinfo" 297 "signal";
    e "recvmmsg" 299 "net";
    e "prlimit64" 302 "proc";
    e "sendmmsg" 307 "net";
    e "getcpu" 309 "misc";
    e "renameat2" 316 "file";
    e "seccomp" 317 "proc";
    e "getrandom" 318 "misc";
    e "memfd_create" 319 "mem";
    e "execveat" 322 "proc";
    e "mlock2" 325 "mem";
    e "copy_file_range" 326 "file";
    e "preadv2" 327 "file";
    e "pwritev2" 328 "file";
    e "statx" 332 "file";
    e "rseq" 334 "proc";
    e "pidfd_send_signal" 424 "signal";
    e "clone3" 435 "proc";
    e "close_range" 436 "file";
    e "openat2" 437 "file";
    e "pidfd_getfd" 438 "file";
    e "faccessat2" 439 "file";
    e "process_madvise" 440 "mem";
    e "epoll_pwait2" 441 "file";
    e "futex_waitv" 449 "proc";
    (* x86-64-only oddities at the tail *)
    legacy "uselib" 134 "misc";
    legacy "ustat" 136 "misc";
    legacy "sysfs" 139 "misc";
    legacy "modify_ldt" 154 "misc";
    legacy "iopl" 172 "misc";
    legacy "ioperm" 173 "misc";
  ]

type isa = X86_64 | Aarch64 | Riscv64

let isa_name = function
  | X86_64 -> "x86-64"
  | Aarch64 -> "aarch64"
  | Riscv64 -> "riscv64"

let isas = [ X86_64; Aarch64; Riscv64 ]

let present isa (en : entry) =
  match isa with
  | X86_64 -> en.on_x86_64
  | Aarch64 -> en.on_aarch64
  | Riscv64 -> en.on_riscv64

let syscalls_of isa = List.filter (present isa) all

let count isa = List.length (syscalls_of isa)

(** |A ∩ B| for Fig 3. *)
let common a b =
  List.length (List.filter (fun en -> present a en && present b en) all)

(** Union across ISAs: the WALI name-bound specification set (§3.5). *)
let union_names () = List.map (fun en -> en.name) all

let find name = List.find_opt (fun en -> en.name = name) all
