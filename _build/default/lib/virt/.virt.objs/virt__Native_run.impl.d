lib/virt/native_run.ml: Array Errno Fiber Hashtbl Int32 Int64 Kernel Ktypes List Minic Sigset String Syscalls Task Wali Wasm
