lib/virt/virt.ml: Container Fiber Int64 Kernel Minic Monotonic_clock Native_run Rv_run String Wali Wasm
