lib/virt/rv_run.ml: Array Errno Fiber Int64 Kernel Ktypes List Minic Native_run Printf Riscv String Task Wali Wasm
