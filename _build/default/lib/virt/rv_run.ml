(** qemu-user-style runner: executes an RV32 guest binary by pure
    interpretation, bridging guest ecalls to the simulated kernel — the
    "QEMU (no KVM)" side of the Fig 8 comparison.

    Like qemu-user, startup is cheap (load two flat segments, point the
    PC at _start); execution pays the per-instruction decode cost. fork
    IS supported: the guest machine state (registers + memory) is plain
    data, so the child is a structural clone. *)

open Kernel

type result = {
  r_status : int;
  r_output : string;
  r_vm_peak : int;
  r_insns : int64; (* guest instructions executed *)
}

let mem_pages = 512 (* 32 MiB guest address space *)

let load_image (img : Minic.Mc_rv.rv_image) : Wasm.Rt.Memory.t =
  let mem = Wasm.Rt.Memory.create ~min_pages:mem_pages ~max_pages:(mem_pages * 4) in
  Wasm.Rt.Memory.write_string mem ~addr:0 img.Minic.Mc_rv.rv_data;
  Wasm.Rt.Memory.write_string mem ~addr:img.Minic.Mc_rv.rv_code_base
    img.Minic.Mc_rv.rv_code;
  mem

exception Guest_exit of int

let start ?(kernel : Task.kernel option) ?(argv = [ "prog" ]) ?(env = [])
    (img : Minic.Mc_rv.rv_image) : Task.kernel * (unit -> result option) =
  let kernel = match kernel with Some k -> k | None -> Task.boot () in
  let eng = Wali.Engine.create kernel in
  let result = ref None in
  let argv_arr = Array.of_list argv and env_arr = Array.of_list env in
  (* Launch one guest machine as one kernel task; fork recurses. *)
  let rec launch (task : Task.t) (rv : Riscv.Rv_mach.t) : unit =
    let mem = rv.Riscv.Rv_mach.mem in
    let p, wmachine =
      Native_run.make_proc eng task mem ~heap_base:img.Minic.Mc_rv.rv_heap_base
    in
    ignore p;
    let ecall (m : Riscv.Rv_mach.t) : unit =
      let nr = Riscv.Rv_mach.get m Riscv.Rv_asm.a7 in
      let arg i = Riscv.Rv_mach.get m (Riscv.Rv_asm.a0 + i) in
      let setret v = Riscv.Rv_mach.set m Riscv.Rv_asm.a0 v in
      match Riscv.Rv_linux.builtin_of_nr nr with
      | Some b -> (
          let vec =
            match b with
            | "envc" | "env_len" | "env_copy" -> env_arr
            | _ -> argv_arr
          in
          match b with
          | "argc" | "envc" -> setret (Array.length vec)
          | "argv_len" | "env_len" ->
              let i = arg 0 in
              setret
                (if i < 0 || i >= Array.length vec then -1
                 else String.length vec.(i) + 1)
          | "argv_copy" | "env_copy" ->
              let addr = arg 0 and i = arg 1 in
              if i < 0 || i >= Array.length vec then setret (-1)
              else begin
                Wasm.Rt.Memory.write_string mem ~addr (vec.(i) ^ "\000");
                setret (String.length vec.(i) + 1)
              end
          | "memcopy" ->
              Wasm.Rt.Memory.copy mem ~dst:(arg 0) ~src:(arg 1) ~len:(arg 2);
              setret 0
          | "memfill" ->
              Wasm.Rt.Memory.fill mem ~dst:(arg 0) ~byte:(arg 1) ~len:(arg 2);
              setret 0
          | _ -> setret (-Errno.to_code Errno.ENOSYS))
      | None -> (
          match Riscv.Rv_linux.name_of_nr nr with
          | None -> setret (-Errno.to_code Errno.ENOSYS)
          | Some "exit" | Some "exit_group" -> raise (Guest_exit (arg 0))
          | Some "fork" | Some "vfork" ->
              (* clone the guest: registers + memory *)
              let child_task =
                Task.clone_task kernel task ~thread:false ~share_files:false
              in
              let cmem = Wasm.Rt.Memory.clone mem in
              let crv =
                Riscv.Rv_mach.create ~mem:cmem ~entry:(m.Riscv.Rv_mach.pc + 4)
                  ~sp_init:0
              in
              Array.blit m.Riscv.Rv_mach.regs 0 crv.Riscv.Rv_mach.regs 0 32;
              Riscv.Rv_mach.set crv Riscv.Rv_asm.a0 0;
              setret child_task.Task.tgid;
              ignore
                (Fiber.spawn
                   (Printf.sprintf "rv-pid%d" child_task.Task.tid)
                   (fun () -> launch child_task crv))
          | Some name -> (
              let arity =
                match Wali.Spec.find name with
                | Some e -> e.Wali.Spec.arity
                | None -> 6
              in
              let vals =
                Array.init arity (fun i -> Wasm.Values.I64 (Int64.of_int (arg i)))
              in
              match Wali.Interface.dispatch eng name wmachine vals with
              | Wasm.Rt.H_return [ Wasm.Values.I64 r ] ->
                  setret (Int64.to_int r)
              | _ -> setret (-Errno.to_code Errno.ENOSYS)))
    in
    let poll () =
      Fiber.yield ();
      (match task.Task.group.Task.exiting with
      | Some st -> raise (Guest_exit (st lsr 8))
      | None -> ());
      if Task.has_deliverable_signal task then begin
        match Task.next_signal task with
        | Some (signo, action)
          when action.Ktypes.sa_handler = Ktypes.sig_dfl
               && (Ktypes.default_disposition signo = Ktypes.Term
                  || Ktypes.default_disposition signo = Ktypes.Core) ->
            raise (Guest_exit (128 + signo))
        | _ -> () (* guest handlers not modelled under emulation *)
      end
    in
    let status =
      try
        Riscv.Rv_mach.run rv ~ecall ~poll ~poll_interval:4096 ();
        Ktypes.wexit_status 0
      with
      | Guest_exit code -> Ktypes.wexit_status code
      | Riscv.Rv_mach.Rv_trap msg ->
          ignore msg;
          Ktypes.wsignal_status Ktypes.sigsegv
    in
    Task.exit_task kernel task ~status;
    if !result = None && task.Task.ppid = 0 then
      result :=
        Some
          {
            r_status = status;
            r_output = "";
            r_vm_peak = task.Task.vm_peak;
            r_insns = rv.Riscv.Rv_mach.steps;
          }
  in
  let task = Task.make_init kernel ~comm:(List.hd argv) in
  Wali.Engine.setup_stdio eng task;
  let mem = load_image img in
  let rv =
    Riscv.Rv_mach.create ~mem ~entry:img.Minic.Mc_rv.rv_entry
      ~sp_init:img.Minic.Mc_rv.rv_sp_init
  in
  ignore (Fiber.spawn "rv-init" (fun () -> launch task rv));
  (kernel, fun () -> !result)

let run ?(argv = [ "prog" ]) ?(env = []) (img : Minic.Mc_rv.rv_image) : result =
  let out = ref None in
  let kout = ref "" in
  Fiber.run (fun () ->
      let kernel, get = start ~argv ~env img in
      let rec finalize () =
        match get () with
        | Some r ->
            out := Some r;
            kout := Task.console_output kernel
        | None ->
            Fiber.yield ();
            finalize ()
      in
      ignore (Fiber.spawn "rv-finalize" finalize));
  match !out with
  | Some r -> { r with r_output = !kout }
  | None -> failwith "rv run did not complete"
