(** Native-process runner: executes a MiniC program compiled to host
    closures as a kernel task — the "native" side of the Fig 8
    comparison and the execution engine inside containers.

    Syscall marshalling reuses the WALI dispatcher over the process's
    flat memory (the work a native libc does against the kernel ABI is
    the same translation); fork/exec are not supported in this backend
    because the host call stack is not cloneable — the benchmark
    workloads are single-process (documented in DESIGN.md). *)

open Kernel

exception Native_exit of int
exception Native_killed of int

type result = {
  r_status : int; (* packed wait status *)
  r_output : string;
  r_vm_peak : int;
  r_loop_steps : int;
}

let errno_of_name = Errno.to_code

(* Build the shared proc plumbing so Wali.Interface.dispatch can serve
   this task. *)
let make_proc eng (task : Task.t) (mem : Wasm.Rt.Memory.t) ~heap_base :
    Wali.Engine.proc * Wasm.Rt.machine =
  let inst : Wasm.Rt.instance =
    {
      Wasm.Rt.i_name = "native";
      i_types = [||];
      i_funcs = [||];
      i_memories = [| mem |];
      i_tables = [||];
      i_globals = [||];
      i_exports = Hashtbl.create 1;
      i_codes = [||];
    }
  in
  let m = Wasm.Rt.Machine.create inst in
  m.Wasm.Rt.m_pid <- task.Task.tid;
  let shared =
    {
      Wali.Engine.ps_mmap = Wali.Mmap_mgr.create ~heap_base;
      ps_argv = [||];
      ps_env = [||];
      ps_mem_id = Wali.Engine.fresh_mem_id eng;
      ps_brk = Wali.Mmap_mgr.align_up heap_base;
      ps_heap_base = heap_base;
      ps_binary = "";
    }
  in
  let p =
    {
      Wali.Engine.pr_task = task;
      pr_sys = Syscalls.make_ctx eng.Wali.Engine.kernel task eng.Wali.Engine.futexes;
      pr_shared = shared;
      pr_machine = Some m;
      pr_result = None;
    }
  in
  Wali.Engine.register_proc eng p;
  (p, m)

(* Deliver pending signals to a native task; handlers are MiniC functions
   resolved through the fnptr table. *)
let native_poll (c : Minic.Mc_native.compiled) (st : Minic.Mc_native.st)
    (task : Task.t) : unit =
  (match task.Task.group.Task.exiting with
  | Some status -> raise (Native_killed status)
  | None -> ());
  if Task.has_deliverable_signal task then begin
    match Task.next_signal task with
    | None -> ()
    | Some (signo, action) ->
        let open Ktypes in
        if action.sa_handler = sig_ign then ()
        else if action.sa_handler = sig_dfl then begin
          match default_disposition signo with
          | Ign | Cont | Stop -> ()
          | Term | Core -> raise (Native_killed (wsignal_status signo))
        end
        else begin
          let old = task.Task.sigmask in
          task.Task.sigmask <- Sigset.add (Sigset.union old action.sa_mask) signo;
          ignore (Minic.Mc_native.call_slot c st action.sa_handler [| signo |]);
          task.Task.sigmask <- old
        end
  end

(** Run [compiled] as a fresh kernel task. Must be called inside
    {!Fiber.run}; spawns its own fiber and returns a promise-like
    getter. *)
let start ?(kernel : Task.kernel option) ?(argv = [ "prog" ]) ?(env = [])
    ?(task : Task.t option) (c : Minic.Mc_native.compiled) :
    Task.kernel * (unit -> result option) =
  let kernel = match kernel with Some k -> k | None -> Task.boot () in
  let eng = Wali.Engine.create kernel in
  let task =
    match task with
    | Some t -> t
    | None ->
        let t = Task.make_init kernel ~comm:(List.hd argv) in
        Wali.Engine.setup_stdio eng t;
        t
  in
  let mem = Wasm.Rt.Memory.create ~min_pages:64 ~max_pages:2048 in
  let p, machine = make_proc eng task mem ~heap_base:c.Minic.Mc_native.nc_heap_base in
  ignore p;
  let argv_arr = Array.of_list argv and env_arr = Array.of_list env in
  let result = ref None in
  let finish status st =
    Task.exit_task kernel task ~status;
    result :=
      Some
        {
          r_status = status;
          r_output = "";
          r_vm_peak = task.Task.vm_peak;
          r_loop_steps = st;
        }
  in
  let body () =
    let st_ref = ref None in
    let hooks =
      {
        Minic.Mc_native.h_sys =
          (fun name args ->
            match name with
            | "exit" | "exit_group" ->
                raise (Native_exit (if Array.length args > 0 then args.(0) else 0))
            | "fork" | "vfork" | "execve" | "clone" ->
                -errno_of_name Errno.ENOSYS
            | _ -> (
                let vals =
                  Array.map (fun v -> Wasm.Values.I64 (Int64.of_int v)) args
                in
                match Wali.Interface.dispatch eng name machine vals with
                | Wasm.Rt.H_return [ Wasm.Values.I64 r ] ->
                    let r = Int64.to_int r in
                    (r land 0xFFFFFFFF)
                    - (if r land 0x80000000 <> 0 then 0x100000000 else 0)
                | _ -> -errno_of_name Errno.ENOSYS))
        ;
        h_builtin =
          (fun b args ->
            let vec =
              match b with
              | "envc" | "env_len" | "env_copy" -> env_arr
              | _ -> argv_arr
            in
            match b with
            | "argc" | "envc" -> Array.length vec
            | "argv_len" | "env_len" ->
                let i = args.(0) in
                if i < 0 || i >= Array.length vec then -1
                else String.length vec.(i) + 1
            | "argv_copy" | "env_copy" ->
                let addr = args.(0) and i = args.(1) in
                if i < 0 || i >= Array.length vec then -1
                else begin
                  Wasm.Rt.Memory.write_string mem ~addr (vec.(i) ^ "\000");
                  String.length vec.(i) + 1
                end
            | "thread_spawn" -> -errno_of_name Errno.ENOSYS
            | _ -> -1);
        h_poll =
          (fun () ->
            match !st_ref with
            | Some st -> native_poll c st task
            | None -> ());
      }
    in
    let st = Minic.Mc_native.make_state c ~mem ~hooks in
    st_ref := Some st;
    let status =
      try
        if Hashtbl.mem c.Minic.Mc_native.nc_func_idx "__rt_init" then
          ignore (Minic.Mc_native.call c st "__rt_init" [||]);
        let margs =
          if c.Minic.Mc_native.nc_main_params = 0 then [||]
          else
            let ld a =
              Int32.to_int (Wasm.Rt.Memory.load32 mem a)
            in
            match (c.Minic.Mc_native.nc_argc_addr, c.Minic.Mc_native.nc_argv_addr) with
            | Some ac, Some av -> [| ld ac; ld av |]
            | _ -> [| 0; 0 |]
        in
        let code = Minic.Mc_native.call c st "main" margs in
        Ktypes.wexit_status code
      with
      | Native_exit code -> Ktypes.wexit_status code
      | Native_killed status -> status
    in
    finish status st.Minic.Mc_native.steps
  in
  ignore (Fiber.spawn ("native-" ^ task.Task.comm) body);
  (kernel, fun () -> !result)

(** One-shot convenience: boot kernel, run to completion. *)
let run ?(argv = [ "prog" ]) ?(env = []) (c : Minic.Mc_native.compiled) : result =
  let out = ref None in
  let kout = ref "" in
  Fiber.run (fun () ->
      let kernel, get = start ~argv ~env c in
      ignore
        (Fiber.spawn "native-waiter" (fun () ->
             (* runs after everything else drains; Fiber.run returns when
                all fibers finish *)
             ignore kernel));
      ignore get;
      (* capture at scheduler drain via a final closure *)
      let rec finalize () =
        match get () with
        | Some r ->
            out := Some r;
            kout := Task.console_output kernel
        | None ->
            Fiber.yield ();
            finalize ()
      in
      ignore (Fiber.spawn "native-finalize" finalize));
  match !out with
  | Some r -> { r with r_output = !kout }
  | None -> failwith "native run did not complete"
