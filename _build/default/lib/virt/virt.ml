(** The virtualization comparison harness (paper §4.3, Fig 8).

    One MiniC workload, four deployment methods:
    - [Native]  — host closures, no container (the reference);
    - [Docker]  — container create (layer materialization, namespaces)
                  then native execution inside it;
    - [Qemu]    — RV32 guest under pure interpretation;
    - [Wali]    — Wasm over the WALI engine.

    Each run reports wall-clock startup time, total time and peak memory,
    using the host monotonic clock for times and engine accounting for
    memory. *)

module Native_run = Native_run
module Rv_run = Rv_run

type method_ = M_native | M_docker | M_qemu | M_wali

let method_name = function
  | M_native -> "native"
  | M_docker -> "docker"
  | M_qemu -> "qemu"
  | M_wali -> "wali"

type measurement = {
  m_method : method_;
  m_startup_ns : int64; (* image build/instantiation before first insn *)
  m_total_ns : int64; (* startup + execution *)
  m_peak_mem : int; (* bytes: app + virtualization base *)
  m_status : int;
  m_output : string;
}

let now = Monotonic_clock.now

type workload = {
  w_name : string;
  w_source : string; (* MiniC *)
  w_argv : string list;
}

(* Pre-compiled artifacts so compile time (= paper's build time) is not
   charged to startup; what IS charged matches each technology:
   docker: container create; wali: decode+validate+instantiate;
   qemu: image load; native: nothing. *)
type prepared = {
  p_workload : workload;
  p_native : Minic.Mc_native.compiled;
  p_wasm_binary : string;
  p_rv : Minic.Mc_rv.rv_image;
}

let prepare (w : workload) : prepared =
  {
    p_workload = w;
    p_native = Minic.Mc_native.compile (Minic.parse_with_libc w.w_source);
    p_wasm_binary = Minic.to_wasm_binary w.w_source;
    p_rv = Minic.Mc_rv.compile (Minic.parse_with_libc w.w_source);
  }

(* ---- native ---- *)

let run_native (p : prepared) : measurement =
  let t0 = now () in
  let r = Native_run.run ~argv:p.p_workload.w_argv p.p_native in
  let t1 = now () in
  {
    m_method = M_native;
    m_startup_ns = 0L;
    m_total_ns = Int64.sub t1 t0;
    m_peak_mem = r.Native_run.r_vm_peak + 262144 (* resident image+stack *);
    m_status = r.Native_run.r_status;
    m_output = r.Native_run.r_output;
  }

(* ---- docker ---- *)

let run_docker (p : prepared) : measurement =
  let out = ref None in
  let t0 = now () in
  let startup = ref 0L in
  let base_mem = ref 0 in
  Fiber.run (fun () ->
      let kernel = Kernel.Task.boot () in
      (* docker run: create the container (materialize layers) first *)
      let img =
        Container.Image.image p.p_workload.w_name
          [
            Container.Image.base_rootfs ();
            Container.Image.app_layer ~name:p.p_workload.w_name
              ~binary:(String.make 200_000 'b') ();
          ]
      in
      let ct = Container.Runtime.create kernel ~name:p.p_workload.w_name img () in
      base_mem := Container.Runtime.base_memory ct;
      startup := Int64.sub (now ()) t0;
      (* then execute the entrypoint natively inside it *)
      let _kernel2, get =
        Native_run.start ~kernel ~argv:p.p_workload.w_argv p.p_native
      in
      (match Kernel.Task.find kernel 1 with
      | Some t -> Container.Runtime.enter ct t
      | None -> ());
      let rec finalize () =
        match get () with
        | Some r ->
            Container.Runtime.finish ct ~status:r.Native_run.r_status;
            out :=
              Some
                ( r.Native_run.r_status,
                  Kernel.Task.console_output kernel,
                  r.Native_run.r_vm_peak )
        | None ->
            Fiber.yield ();
            finalize ()
      in
      ignore (Fiber.spawn "docker-finalize" finalize));
  let t1 = now () in
  match !out with
  | Some (status, output, vm_peak) ->
      {
        m_method = M_docker;
        m_startup_ns = !startup;
        m_total_ns = Int64.sub t1 t0;
        m_peak_mem = vm_peak + !base_mem;
        m_status = status;
        m_output = output;
      }
  | None -> failwith "docker run did not complete"

(* ---- qemu ---- *)

let run_qemu (p : prepared) : measurement =
  let t0 = now () in
  (* startup: load the guest image (cheap, like qemu-user) *)
  let mem_probe = Rv_run.load_image p.p_rv in
  let startup = Int64.sub (now ()) t0 in
  ignore mem_probe;
  let r = Rv_run.run ~argv:p.p_workload.w_argv p.p_rv in
  let t1 = now () in
  {
    m_method = M_qemu;
    m_startup_ns = startup;
    m_total_ns = Int64.sub t1 t0;
    m_peak_mem =
      r.Rv_run.r_vm_peak + (Rv_run.mem_pages * Wasm.Types.page_size / 8)
      (* guest pages touched + emulator structures, lazily allocated *);
    m_status = r.Rv_run.r_status;
    m_output = r.Rv_run.r_output;
  }

(* ---- wali ---- *)

let run_wali ?(poll_scheme = Wasm.Code.Poll_loops) (p : prepared) : measurement =
  let status = ref 0 and peak = ref 0 in
  let output = ref "" in
  let startup = ref 0L in
  let t0 = now () in
  Fiber.run (fun () ->
      let kernel = Kernel.Task.boot () in
      let eng = Wali.Engine.create ~poll_scheme kernel in
      (* startup = decode + validate/compile + instantiate, measured by
         the time until the init process is ready to execute *)
      let proc =
        Wali.Interface.spawn_init eng ~binary:p.p_wasm_binary
          ~argv:p.p_workload.w_argv ~env:[]
      in
      startup := Int64.sub (now ()) t0;
      eng.Wali.Engine.on_proc_exit <-
        Some
          (fun q st ->
            if q == proc then begin
              status := st;
              output := Kernel.Task.console_output kernel;
              peak :=
                (match q.Wali.Engine.pr_machine with
                | Some m ->
                    Wasm.Rt.Memory.size_bytes (Wasm.Rt.memory0 m)
                | None -> 0)
                + 300_000 (* engine structures *)
            end));
  let t1 = now () in
  {
    m_method = M_wali;
    m_startup_ns = !startup;
    m_total_ns = Int64.sub t1 t0;
    m_peak_mem = !peak;
    m_status = !status;
    m_output = !output;
  }

let run (p : prepared) (m : method_) : measurement =
  match m with
  | M_native -> run_native p
  | M_docker -> run_docker p
  | M_qemu -> run_qemu p
  | M_wali -> run_wali p

let all_methods = [ M_native; M_docker; M_qemu; M_wali ]
