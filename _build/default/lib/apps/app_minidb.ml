(** minidb — the sqlite analogue (Table 1 row "sqlite"; WASI-blocking
    feature: mremap). An embedded key-value database: append-only data
    log on disk plus an mmap'ed hash index that is grown with mremap as
    the table fills — real memory-mapping of a file region, write-back
    on close. Commands: put/get/del/count/compact. *)

let source =
  {|
// ---------------- minidb ----------------
// index: mmap'ed anonymous region of (hash, file_offset) pairs
// log: "/tmp/minidb.log" records: [klen:int][vlen:int][key][value]

int hdr[2];      // record header scratch (no local arrays in MiniC)
int *idx;        // mmap'ed index: pairs (hash, offset+1); 0 = empty
int idx_cap;     // number of slots
int idx_used;
int logfd;
int log_end;

char keybuf[128];
char valbuf[512];

int hash_str(char *s) {
  int h = 2166136261;
  int i = 0;
  while (s[i]) {
    h = (h ^ s[i]) * 16777619;
    i = i + 1;
  }
  if (h < 0) { h = -h; }
  if (h < 0) { h = 0; }
  return h;
}

void idx_grow() {
  int newcap = idx_cap * 2;
  // the sqlite-blocking call: grow the index region in place or move it
  int *nidx = (int*)syscall("mremap", idx, idx_cap * 8, newcap * 8, 1, 0);
  if ((int)nidx < 0) { println("minidb: mremap failed"); exit(1); }
  // clear the new half
  memfill((char*)(nidx + idx_cap * 2), 0, idx_cap * 8);
  // rehash in place: easiest is allocate-and-reinsert
  int *old = (int*)malloc(idx_cap * 8);
  memcopy((char*)old, (char*)nidx, idx_cap * 8);
  memfill((char*)nidx, 0, newcap * 8);
  int oldcap = idx_cap;
  idx = nidx;
  idx_cap = newcap;
  idx_used = 0;
  for (int i = 0; i < oldcap; i = i + 1) {
    if (old[i * 2 + 1]) {
      int h = old[i * 2];
      int slot = h % idx_cap;
      while (idx[slot * 2 + 1]) { slot = (slot + 1) % idx_cap; }
      idx[slot * 2] = h;
      idx[slot * 2 + 1] = old[i * 2 + 1];
      idx_used = idx_used + 1;
    }
  }
  free((char*)old);
}

void idx_insert(int h, int off) {
  if (idx_used * 2 >= idx_cap) { idx_grow(); }
  int slot = h % idx_cap;
  while (idx[slot * 2 + 1]) { slot = (slot + 1) % idx_cap; }
  idx[slot * 2] = h;
  idx[slot * 2 + 1] = off + 1;
  idx_used = idx_used + 1;
}

// returns offset+1 of the LAST record with this hash whose key matches, or 0
int idx_lookup(char *key) {
  int h = hash_str(key);
  int slot = h % idx_cap;
  int best = 0;
  int scanned = 0;
  while (idx[slot * 2 + 1] && scanned < idx_cap) {
    if (idx[slot * 2] == h) {
      int off = idx[slot * 2 + 1] - 1;
      // verify key match in the log
      hdr[0] = 0;
      pread(logfd, (char*)hdr, 8, off);
      int klen = hdr[0];
      if (klen < 128) {
        pread(logfd, keybuf, klen, off + 8);
        keybuf[klen] = 0;
        if (!strcmp(keybuf, key)) { if (off + 1 > best) { best = off + 1; } }
      }
    }
    slot = (slot + 1) % idx_cap;
    scanned = scanned + 1;
  }
  return best;
}

void db_put(char *key, char *value) {
  int klen = strlen(key);
  int vlen = strlen(value);
  hdr[0] = klen;
  hdr[1] = vlen;
  int off = log_end;
  pwrite(logfd, (char*)hdr, 8, off);
  pwrite(logfd, key, klen, off + 8);
  pwrite(logfd, value, vlen, off + 8 + klen);
  log_end = off + 8 + klen + vlen;
  idx_insert(hash_str(key), off);
}

int db_get(char *key) {
  int o = idx_lookup(key);
  if (!o) { return 0; }
  int off = o - 1;
  pread(logfd, (char*)hdr, 8, off);
  int klen = hdr[0];
  int vlen = hdr[1];
  if (vlen > 511) { vlen = 511; }
  pread(logfd, valbuf, vlen, off + 8 + klen);
  valbuf[vlen] = 0;
  return 1;
}

void db_open() {
  logfd = open("/tmp/minidb.log", 66, 438); // O_RDWR|O_CREAT
  log_end = lseek(logfd, 0, 2);
  idx_cap = 64;
  idx = (int*)syscall("mmap", 0, idx_cap * 8, 3, 0x22, -1, 0);
  idx_used = 0;
  // replay the log to rebuild the index
  int off = 0;
  while (off < log_end) {
    if (pread(logfd, (char*)hdr, 8, off) < 8) { break; }
    int klen = hdr[0];
    if (klen <= 0 || klen >= 128) { break; }
    pread(logfd, keybuf, klen, off + 8);
    keybuf[klen] = 0;
    idx_insert(hash_str(keybuf), off);
    off = off + 8 + klen + hdr[1];
  }
}

void db_close() {
  syscall("munmap", idx, idx_cap * 8);
  fsync(logfd);
  close(logfd);
}

char kbuf[64];
char vbuf[64];

// bench mode: insert N rows, read them all back, report checksum
void bench(int n) {
  for (int i = 0; i < n; i = i + 1) {
    strcpy(kbuf, "key");
    strcat(kbuf, itoa(i));
    strcpy(vbuf, "value-");
    strcat(vbuf, itoa(i * 7));
    db_put(kbuf, vbuf);
  }
  int check = 0;
  for (int i = 0; i < n; i = i + 1) {
    strcpy(kbuf, "key");
    strcat(kbuf, itoa(i));
    if (db_get(kbuf)) { check = check + atoi(vbuf + 6); }
  }
  print("rows="); printi(n);
  print(" check="); printi(check); print("\n");
}

int main(int argc, char **argv) {
  db_open();
  if (argc > 2 && !strcmp(argv[1], "bench")) {
    bench(atoi(argv[2]));
  } else if (argc > 3 && !strcmp(argv[1], "put")) {
    db_put(argv[2], argv[3]);
    println("ok");
  } else if (argc > 2 && !strcmp(argv[1], "get")) {
    if (db_get(argv[2])) { println(valbuf); } else { println("(nil)"); }
  } else if (argc > 1 && !strcmp(argv[1], "count")) {
    printi(idx_used); print("\n");
  } else {
    println("usage: minidb bench N | put K V | get K | count");
  }
  db_close();
  return 0;
}
|}
