(** calc — the lua analogue (Table 1 row "lua"; the WASI-blocking feature
    is dup). A tiny scripting-language interpreter: recursive-descent
    expression parser over heap-allocated AST nodes, variables,
    while-loops and print — interpreter workloads are allocation-heavy,
    which is exactly why the paper's lua runs poorly in containers.
    Uses dup/dup2 for output redirection of `print >file`. *)

let source =
  {|
// ---------------- calc: a tiny language ----------------
// script  := stmt (';' stmt)*
// stmt    := IDENT '=' expr | 'print' expr | 'while' expr 'do' script 'end'
// expr    := term (('+'|'-') term)*
// term    := factor (('*'|'/'|'%') factor)*
// factor  := NUM | IDENT | '(' expr ')'

char *src;
int pos;
int vars[26];

// AST nodes: [tag, a, b] — tag 0=num(a), 1=var(a), 2=binop(op in a>>16 ... )
// node layout: 16 bytes: tag, x, left, right
int *node(int tag, int x, int l, int r) {
  int *n = (int*)malloc(16);
  n[0] = tag;
  n[1] = x;
  n[2] = l;
  n[3] = r;
  return n;
}

void skip_ws() { while (src[pos] == ' ' || src[pos] == '\n') { pos = pos + 1; } }

int peek() { skip_ws(); return src[pos]; }

int parse_factor() {
  skip_ws();
  int c = src[pos];
  if (c >= '0' && c <= '9') {
    int v = 0;
    while (src[pos] >= '0' && src[pos] <= '9') {
      v = v * 10 + (src[pos] - '0');
      pos = pos + 1;
    }
    return (int)node(0, v, 0, 0);
  }
  if (c == '(') {
    pos = pos + 1;
    int e = parse_expr();
    skip_ws();
    if (src[pos] == ')') { pos = pos + 1; }
    return e;
  }
  if (c >= 'a' && c <= 'z') {
    pos = pos + 1;
    return (int)node(1, c - 'a', 0, 0);
  }
  return (int)node(0, 0, 0, 0);
}

int parse_term() {
  int l = parse_factor();
  while (1) {
    int c = peek();
    if (c == '*' || c == '/' || c == '%') {
      pos = pos + 1;
      int r = parse_factor();
      l = (int)node(2, c, l, r);
    } else { break; }
  }
  return l;
}

int parse_expr() {
  int l = parse_term();
  while (1) {
    int c = peek();
    if (c == '+' || c == '-' || c == '<') {
      pos = pos + 1;
      int r = parse_term();
      l = (int)node(2, c, l, r);
    } else { break; }
  }
  return l;
}

int eval(int *n) {
  int tag = n[0];
  if (tag == 0) { return n[1]; }
  if (tag == 1) { return vars[n[1]]; }
  int a = eval((int*)n[2]);
  int b = eval((int*)n[3]);
  int op = n[1];
  if (op == '+') { return a + b; }
  if (op == '-') { return a - b; }
  if (op == '*') { return a * b; }
  if (op == '/') { return b ? a / b : 0; }
  if (op == '%') { return b ? a % b : 0; }
  if (op == '<') { return a < b; }
  return 0;
}

void free_tree(int *n) {
  if (n[0] == 2) {
    free_tree((int*)n[2]);
    free_tree((int*)n[3]);
  }
  free((char*)n);
}

// scan forward over a while-body, balancing nested while/end
void skip_block() {
  int depth = 1;
  while (src[pos] && depth > 0) {
    if (src[pos] == 'w' && src[pos+1] == 'h' && src[pos+2] == 'i') {
      depth = depth + 1; pos = pos + 5;
    } else if (src[pos] == 'e' && src[pos+1] == 'n' && src[pos+2] == 'd') {
      depth = depth - 1; pos = pos + 3;
    } else {
      pos = pos + 1;
    }
  }
}

int match_kw(char *kw) {
  skip_ws();
  int i = 0;
  while (kw[i]) {
    if (src[pos + i] != kw[i]) { return 0; }
    i = i + 1;
  }
  pos = pos + i;
  return 1;
}

void run_stmt() {
  skip_ws();
  if (!src[pos]) { return; }
  if (src[pos] == 'p' && src[pos+1] == 'r') {
    match_kw("print");
    int redirect = 0;
    skip_ws();
    if (src[pos] == '>') {
      // print >expr : duplicate stdout to /tmp/calc.out (uses dup!)
      pos = pos + 1;
      redirect = 1;
    }
    int e = parse_expr();
    int v = eval((int*)e);
    free_tree((int*)e);
    if (redirect) {
      int saved = dup_fd(1);
      int fd = open("/tmp/calc.out", 66 | 1024, 438); // O_RDWR|O_CREAT|O_APPEND
      dup2(fd, 1);
      close(fd);
      printi(v); print("\n");
      dup2(saved, 1);
      close(saved);
    } else {
      printi(v); print("\n");
    }
    return;
  }
  if (src[pos] == 'w' && src[pos+1] == 'h') {
    match_kw("while");
    int cond_pos = pos;
    int e = parse_expr();
    match_kw("do");
    int body_pos = pos;
    while (1) {
      pos = cond_pos;
      int c = parse_expr();
      int v = eval((int*)c);
      free_tree((int*)c);
      if (!v) { break; }
      pos = body_pos;
      run_script();
    }
    // scan past the loop body to the matching 'end' without executing
    pos = body_pos;
    skip_block();
    return;
  }
  // assignment: v = expr
  int var = src[pos] - 'a';
  pos = pos + 1;
  skip_ws();
  if (src[pos] == '=') { pos = pos + 1; }
  int e = parse_expr();
  vars[var] = eval((int*)e);
  free_tree((int*)e);
}

// run statements until 'end' or end of input
void run_script() {
  while (1) {
    skip_ws();
    if (!src[pos]) { return; }
    if (src[pos] == 'e' && src[pos+1] == 'n' && src[pos+2] == 'd') { return; }
    run_stmt();
    skip_ws();
    if (src[pos] == ';') { pos = pos + 1; }
  }
}

char filebuf[4096];

int main(int argc, char **argv) {
  if (argc > 2 && !strcmp(argv[1], "-e")) {
    src = argv[2];
  } else if (argc > 1) {
    int fd = open(argv[1], 0, 0);
    if (fd < 0) { println("calc: cannot open script"); return 1; }
    int n = read(fd, filebuf, 4095);
    filebuf[n] = 0;
    close(fd);
    src = filebuf;
  } else {
    println("usage: calc -e SCRIPT | calc FILE");
    return 2;
  }
  pos = 0;
  run_script();
  return 0;
}
|}
