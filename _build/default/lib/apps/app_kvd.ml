(** kvd — the memcached analogue (Table 1 row "memcached"; WASI-blocking
    feature: mmap). A network key-value daemon: TCP socket accept loop,
    worker threads sharing an mmap'ed slab arena, a text protocol
    (SET/GET/DEL/STATS/QUIT). The bundled client mode drives load against
    a running server for the benchmarks. *)

let source =
  {|
// ---------------- kvd ----------------
// slab arena: one mmap'ed region holding [klen][vlen][key][val] cells
// hash table: global arrays of (hash, cell offset+1)

int kv_hash_arr[2048];   // hash per slot
int kv_off_arr[2048];    // cell offset+1 per slot
int kv_count;
char *arena;             // mmap'ed slab (the memcached-blocking feature)
int arena_cap;
int arena_used;

char reqbuf[512];
char outbuf[512];
int srvfd;
int stop_flag;

int kv_hash(char *s) {
  int h = 5381;
  int i = 0;
  while (s[i]) { h = h * 33 + s[i]; i = i + 1; }
  if (h < 0) { h = -h; }
  if (h < 0) { h = 0; }
  return h;
}

void kv_set(char *key, char *val) {
  int klen = strlen(key);
  int vlen = strlen(val);
  int need = 8 + klen + vlen + 2;
  if (arena_used + need > arena_cap) { return; } // slab full: drop (like -M)
  int cell = arena_used;
  *(int*)(arena + cell) = klen;
  *(int*)(arena + cell + 4) = vlen;
  memcopy(arena + cell + 8, key, klen + 1);
  memcopy(arena + cell + 8 + klen + 1, val, vlen + 1);
  arena_used = arena_used + need;
  int h = kv_hash(key);
  int slot = h % 2048;
  while (kv_off_arr[slot]) {
    // overwrite same key
    int c = kv_off_arr[slot] - 1;
    if (kv_hash_arr[slot] == h && !strcmp(arena + c + 8, key)) { break; }
    slot = (slot + 1) % 2048;
  }
  if (!kv_off_arr[slot]) { kv_count = kv_count + 1; }
  kv_hash_arr[slot] = h;
  kv_off_arr[slot] = cell + 1;
}

char *kv_get(char *key) {
  int h = kv_hash(key);
  int slot = h % 2048;
  int scanned = 0;
  while (kv_off_arr[slot] && scanned < 2048) {
    int c = kv_off_arr[slot] - 1;
    if (kv_hash_arr[slot] == h && !strcmp(arena + c + 8, key)) {
      int klen = *(int*)(arena + c);
      return arena + c + 8 + klen + 1;
    }
    slot = (slot + 1) % 2048;
    scanned = scanned + 1;
  }
  return (char*)0;
}

// read a \n-terminated line from fd into reqbuf; 0 on EOF
int read_req(int fd) {
  int i = 0;
  while (i < 511) {
    int n = read(fd, reqbuf + i, 1);
    if (n <= 0) { return 0; }
    if (reqbuf[i] == '\n') { break; }
    i = i + 1;
  }
  reqbuf[i] = 0;
  return 1;
}

char sabuf[16];
void make_addr(int port) {
  // sockaddr_in: family=2 LE, port BE, 127.0.0.1
  sabuf[0] = 2; sabuf[1] = 0;
  sabuf[2] = (port >> 8) & 255; sabuf[3] = port & 255;
  sabuf[4] = 127; sabuf[5] = 0; sabuf[6] = 0; sabuf[7] = 1;
}

// split reqbuf "CMD key value..." in place; returns value start or 0
char *split_req() {
  int i = 0;
  while (reqbuf[i] && reqbuf[i] != ' ') { i = i + 1; }
  if (!reqbuf[i]) { return (char*)0; }
  reqbuf[i] = 0;
  int j = i + 1;
  while (reqbuf[j] && reqbuf[j] != ' ') { j = j + 1; }
  if (!reqbuf[j]) { return (char*)0; }
  reqbuf[j] = 0;
  return reqbuf + j + 1;
}

void serve_conn(int fd) {
  while (read_req(fd)) {
    if (!strncmp(reqbuf, "QUIT", 4)) { write(fd, "BYE\n", 4); break; }
    if (!strncmp(reqbuf, "STOP", 4)) { stop_flag = 1; write(fd, "BYE\n", 4); break; }
    if (!strncmp(reqbuf, "STATS", 5)) {
      strcpy(outbuf, "items ");
      strcat(outbuf, itoa(kv_count));
      strcat(outbuf, " bytes ");
      strcat(outbuf, itoa(arena_used));
      strcat(outbuf, "\n");
      write(fd, outbuf, strlen(outbuf));
      continue;
    }
    if (!strncmp(reqbuf, "SET ", 4)) {
      char *val = split_req();
      if (val) {
        kv_set(reqbuf + 4, val);
        write(fd, "STORED\n", 7);
      } else {
        write(fd, "ERROR\n", 6);
      }
      continue;
    }
    if (!strncmp(reqbuf, "GET ", 4)) {
      char *v = kv_get(reqbuf + 4);
      if (v) {
        strcpy(outbuf, "VALUE ");
        strcat(outbuf, v);
        strcat(outbuf, "\n");
        write(fd, outbuf, strlen(outbuf));
      } else {
        write(fd, "MISS\n", 5);
      }
      continue;
    }
    write(fd, "ERROR\n", 6);
  }
  close(fd);
}

int worker(int fd) {
  serve_conn(fd);
  return 0;
}

void server(int port, int threaded) {
  arena_cap = 262144;
  arena = (char*)syscall("mmap", 0, arena_cap, 3, 0x22, -1, 0);
  srvfd = syscall("socket", 2, 1, 0);
  make_addr(port);
  syscall("setsockopt", srvfd, 1, 2, 0, 0); // SO_REUSEADDR (flagged)
  if (syscall("bind", srvfd, sabuf, 16) < 0) { println("kvd: bind failed"); exit(1); }
  syscall("listen", srvfd, 16);
  println("kvd: ready");
  while (!stop_flag) {
    int c = syscall("accept", srvfd, 0, 0);
    if (c < 0) { break; }
    if (threaded) { thread_spawn(fnptr(worker), c); }
    else { serve_conn(c); }
  }
  close(srvfd);
  println("kvd: bye");
}

char ckey[64];
char cval[64];

// client mode: drive N SET+GET pairs against localhost:port
void client(int port, int n) {
  int fd = syscall("socket", 2, 1, 0);
  make_addr(port);
  if (syscall("connect", fd, sabuf, 16) < 0) { println("kvd: connect failed"); exit(1); }
  int hits = 0;
  for (int i = 0; i < n; i = i + 1) {
    strcpy(outbuf, "SET k");
    strcat(outbuf, itoa(i % 100));
    strcat(outbuf, " v");
    strcat(outbuf, itoa(i));
    strcat(outbuf, "\n");
    write(fd, outbuf, strlen(outbuf));
    read_req(fd);
    strcpy(outbuf, "GET k");
    strcat(outbuf, itoa(i % 100));
    strcat(outbuf, "\n");
    write(fd, outbuf, strlen(outbuf));
    if (read_req(fd) && !strncmp(reqbuf, "VALUE", 5)) { hits = hits + 1; }
  }
  write(fd, "STOP\n", 5);
  read_req(fd);
  close(fd);
  print("ops="); printi(2 * n);
  print(" hits="); printi(hits); print("\n");
}

// combined benchmark: fork a client against an in-process server
int main(int argc, char **argv) {
  int port = 7000;
  if (argc > 2 && !strcmp(argv[1], "serve")) {
    server(atoi(argv[2]), 1);
    return 0;
  }
  if (argc > 3 && !strcmp(argv[1], "client")) {
    client(atoi(argv[2]), atoi(argv[3]));
    return 0;
  }
  if (argc > 2 && !strcmp(argv[1], "bench")) {
    int n = atoi(argv[2]);
    int pid = fork();
    if (pid == 0) {
      // child: wait for the server socket, then run the client
      msleep(5);
      client(port, n);
      exit(0);
    }
    server(port, 0);
    return 0;
  }
  println("usage: kvd serve PORT | client PORT N | bench N");
  return 2;
}
|}
