lib/apps/app_minish.ml:
