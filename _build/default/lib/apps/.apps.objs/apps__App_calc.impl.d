lib/apps/app_calc.ml:
