lib/apps/app_minidb.ml:
