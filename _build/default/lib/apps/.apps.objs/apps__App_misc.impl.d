lib/apps/app_misc.ml:
