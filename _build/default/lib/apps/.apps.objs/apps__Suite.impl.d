lib/apps/suite.ml: App_calc App_kvd App_minidb App_minish App_misc Hashtbl Kernel List Minic Option String Wali Wasm
