lib/apps/app_kvd.ml:
