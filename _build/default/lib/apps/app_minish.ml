(** minish — the bash analogue (Table 1 row "bash"; the WASI-blocking
    feature is signals). A small POSIX-ish shell: tokenizing, builtins,
    external commands via fork/execve, pipelines via pipe/dup2/fork,
    subshells, SIGINT trapping, and `$?` status. *)

let source =
  {|
// ---------------- minish ----------------

int interrupted;
void on_sigint(int sig) { interrupted = sig; }

char linebuf[512];
char tokbuf[2048];
char *toks[32];
int ntoks;
int last_status;
int wstatus[1];
int pipefds[2];
char iobuf[128];
char cwdbuf[128];

int read_line() {
  int i = 0;
  while (i < 511) {
    int n = read(0, linebuf + i, 1);
    if (n <= 0) { if (i == 0) { return 0; } break; }
    if (linebuf[i] == '\n') { break; }
    i = i + 1;
  }
  linebuf[i] = 0;
  return 1;
}

void tokenize() {
  ntoks = 0;
  int i = 0;
  int o = 0;
  while (linebuf[i] && ntoks < 31) {
    while (linebuf[i] == ' ') { i = i + 1; }
    if (!linebuf[i]) { break; }
    toks[ntoks] = tokbuf + o;
    while (linebuf[i] && linebuf[i] != ' ') {
      tokbuf[o] = linebuf[i];
      o = o + 1;
      i = i + 1;
    }
    tokbuf[o] = 0;
    o = o + 1;
    ntoks = ntoks + 1;
  }
  toks[ntoks] = (char*)0;
}

// the "shell loop" benchmark body (Fig 8 bash workload)
int shell_loop(int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc + (i % 100) * (i % 100);
  }
  return acc;
}

int run_external(char **cmd_argv) {
  int pid = fork();
  if (pid == 0) {
    execve(cmd_argv[0], cmd_argv, (char**)0);
    print("minish: exec failed: "); println(cmd_argv[0]);
    exit(127);
  }
  if (pid < 0) { return -1; }
  waitpid(pid, wstatus, 0);
  return wstatus[0] >> 8;
}

void do_upcase() {
  while (1) {
    int n = read(0, __pcbuf, 1);
    if (n <= 0) { break; }
    int c = __pcbuf[0];
    if (c >= 'a' && c <= 'z') { c = c - 32; }
    __pcbuf[0] = c;
    write(1, __pcbuf, 1);
  }
}

void do_echo(int from) {
  for (int i = from; i < ntoks; i = i + 1) {
    if (i > from) { print(" "); }
    print(toks[i]);
  }
  print("\n");
}

int run_pipeline(int split) {
  pipe(pipefds);
  int pid = fork();
  if (pid == 0) {
    close(pipefds[0]);
    dup2(pipefds[1], 1);
    close(pipefds[1]);
    toks[split] = (char*)0;
    ntoks = split;
    execute();
    exit(0);
  }
  int pid2 = fork();
  if (pid2 == 0) {
    close(pipefds[1]);
    dup2(pipefds[0], 0);
    close(pipefds[0]);
    int j = 0;
    int i = split + 1;
    while (i < ntoks) { toks[j] = toks[i]; j = j + 1; i = i + 1; }
    ntoks = j;
    toks[j] = (char*)0;
    execute();
    exit(0);
  }
  close(pipefds[0]);
  close(pipefds[1]);
  waitpid(pid, wstatus, 0);
  waitpid(pid2, wstatus, 0);
  return 0;
}

int execute() {
  if (ntoks == 0) { return 0; }
  for (int i = 0; i < ntoks; i = i + 1) {
    if (toks[i][0] == '|' && !toks[i][1]) { return run_pipeline(i); }
  }
  char *cmd = toks[0];
  if (!strcmp(cmd, "echo")) { do_echo(1); return 0; }
  if (!strcmp(cmd, "upcase")) { do_upcase(); return 0; }
  if (!strcmp(cmd, "exit")) { exit(ntoks > 1 ? atoi(toks[1]) : 0); }
  if (!strcmp(cmd, "status")) { printi(last_status); print("\n"); return 0; }
  if (!strcmp(cmd, "loop")) {
    int n = ntoks > 1 ? atoi(toks[1]) : 1000;
    printi(shell_loop(n)); print("\n");
    return 0;
  }
  if (!strcmp(cmd, "cd")) {
    if (ntoks > 1 && chdir_to(toks[1]) < 0) { println("minish: cd failed"); }
    return 0;
  }
  if (!strcmp(cmd, "pwd")) {
    if (syscall("getcwd", cwdbuf, 128) >= 0) { println(cwdbuf); }
    return 0;
  }
  if (!strcmp(cmd, "cat")) {
    int fd = ntoks > 1 ? open(toks[1], 0, 0) : 0;
    if (fd < 0) { println("minish: no such file"); return 1; }
    while (1) {
      int n = read(fd, iobuf, 128);
      if (n <= 0) { break; }
      write(1, iobuf, n);
    }
    if (fd != 0) { close(fd); }
    return 0;
  }
  if (!strcmp(cmd, "write")) {
    if (ntoks > 2) {
      int fd = open(toks[1], 66 | 512, 438);
      write(fd, toks[2], strlen(toks[2]));
      close(fd);
    }
    return 0;
  }
  if (!strcmp(cmd, "kill-self")) {
    kill(getpid(), 2);
    while (!interrupted) { sched_yield(); }
    println("caught SIGINT");
    interrupted = 0;
    return 0;
  }
  if (!strcmp(cmd, "sub")) {
    int pid = fork();
    if (pid == 0) {
      int j = 0;
      for (int i = 1; i < ntoks; i = i + 1) { toks[j] = toks[i]; j = j + 1; }
      ntoks = j;
      toks[j] = (char*)0;
      execute();
      exit(0);
    }
    waitpid(pid, wstatus, 0);
    return wstatus[0] >> 8;
  }
  return run_external(toks);
}

int main(int argc, char **argv) {
  signal(2, fnptr(on_sigint));
  if (argc > 2 && !strcmp(argv[1], "-c")) {
    char *s = argv[2];
    int i = 0;
    int start = 0;
    while (1) {
      if (s[i] == ';' || !s[i]) {
        int j = 0;
        while (start + j < i && j < 511) { linebuf[j] = s[start + j]; j = j + 1; }
        linebuf[j] = 0;
        tokenize();
        last_status = execute();
        if (!s[i]) { break; }
        start = i + 1;
      }
      i = i + 1;
    }
    return last_status;
  }
  while (read_line()) {
    tokenize();
    last_status = execute();
  }
  return last_status;
}
|}
