(** The remaining Table 1 application analogues, each exercising the
    syscall family that blocks it on WASI (and sometimes WASIX). *)

(* zpack — the zlib analogue (row "zlib": works everywhere, including
   WASI). RLE compressor/decompressor over files: pure compute + basic
   file I/O only. *)
let zpack =
  {|
char inbuf[8192];
char outbuf[16384];

int rle_compress(char *src, int n, char *dst) {
  int o = 0;
  int i = 0;
  while (i < n) {
    int c = src[i];
    int run = 1;
    while (i + run < n && src[i + run] == c && run < 255) { run = run + 1; }
    dst[o] = run;
    dst[o + 1] = c;
    o = o + 2;
    i = i + run;
  }
  return o;
}

int rle_expand(char *src, int n, char *dst) {
  int o = 0;
  int i = 0;
  while (i + 1 < n) {
    int run = src[i];
    int c = src[i + 1];
    for (int j = 0; j < run; j = j + 1) { dst[o] = c; o = o + 1; }
    i = i + 2;
  }
  return o;
}

int checksum(char *p, int n) {
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = (s * 31 + p[i]) & 0xffffff; }
  return s;
}

int main(int argc, char **argv) {
  int rounds = argc > 1 ? atoi(argv[1]) : 8;
  // synthesize compressible data
  int n = 4096;
  for (int i = 0; i < n; i = i + 1) {
    inbuf[i] = 'a' + ((i / 97) % 7);
  }
  int before = checksum(inbuf, n);
  int csize = 0;
  for (int r = 0; r < rounds; r = r + 1) {
    csize = rle_compress(inbuf, n, outbuf);
    rle_expand(outbuf, csize, inbuf);
  }
  int fd = open("/tmp/zpack.out", 66, 438);
  write(fd, outbuf, csize);
  close(fd);
  print("in="); printi(n);
  print(" out="); printi(csize);
  print(" ok="); printi(before == checksum(inbuf, n));
  print("\n");
  return 0;
}
|}

(* mk — the make analogue (row "make"; WASIX-blocking feature: wait4).
   Reads a tiny makefile, compares stat mtimes, runs rules via
   fork/execve/wait4. *)
let mk =
  {|
char mkbuf[2048];
char statbuf[112];   // WALI portable kstat
int wst[1];
char *rule_target[16];
char *rule_dep[16];
char *rule_cmd[16];
int nrules;

int mtime_of(char *path) {
  if (syscall("stat", path, statbuf) < 0) { return -1; }
  return *(int*)(statbuf + 80); // mtime seconds (low word)
}

void parse_makefile() {
  // format per line: target:dep:echo-text
  int i = 0;
  nrules = 0;
  while (mkbuf[i] && nrules < 16) {
    rule_target[nrules] = mkbuf + i;
    while (mkbuf[i] && mkbuf[i] != ':') { i = i + 1; }
    if (!mkbuf[i]) { break; }
    mkbuf[i] = 0; i = i + 1;
    rule_dep[nrules] = mkbuf + i;
    while (mkbuf[i] && mkbuf[i] != ':') { i = i + 1; }
    if (!mkbuf[i]) { break; }
    mkbuf[i] = 0; i = i + 1;
    rule_cmd[nrules] = mkbuf + i;
    while (mkbuf[i] && mkbuf[i] != '\n') { i = i + 1; }
    if (mkbuf[i]) { mkbuf[i] = 0; i = i + 1; }
    nrules = nrules + 1;
  }
}

char *cmd_argv[4];

int run_rule(int r) {
  int pid = fork();
  if (pid == 0) {
    // the "recipe": write the command text into the target
    int fd = open(rule_target[r], 66 | 512, 438);
    write(fd, rule_cmd[r], strlen(rule_cmd[r]));
    close(fd);
    print("built "); println(rule_target[r]);
    exit(0);
  }
  if (pid < 0) { return -1; }
  // the make-blocking call:
  if (syscall("wait4", pid, wst, 0, 0) < 0) { return -1; }
  return wst[0] >> 8;
}

int main(int argc, char **argv) {
  char *file = argc > 1 ? argv[1] : "/tmp/Makefile";
  int fd = open(file, 0, 0);
  if (fd < 0) { println("mk: no makefile"); return 2; }
  int n = read(fd, mkbuf, 2047);
  mkbuf[n] = 0;
  close(fd);
  parse_makefile();
  int built = 0;
  for (int r = 0; r < nrules; r = r + 1) {
    int tm = mtime_of(rule_target[r]);
    int dm = mtime_of(rule_dep[r]);
    if (tm < 0 || (dm >= 0 && dm > tm)) {
      if (run_rule(r) == 0) { built = built + 1; }
    } else {
      print("up to date: "); println(rule_target[r]);
    }
  }
  print("built "); printi(built); print(" of "); printi(nrules); print("\n");
  return 0;
}
|}

(* edlite — the vim analogue (row "vim"; WASI-blocking: mmap). A line
   editor that mmaps its buffer, supports append/print/delete/write, and
   queries the terminal size with ioctl. *)
let edlite =
  {|
char *ebuf;      // mmap'ed edit buffer
int ecap;
int elen;
char wsz[8];
char lbuf[256];

void ensure(int need) {
  if (elen + need <= ecap) { return; }
  int ncap = ecap * 2;
  while (ncap < elen + need) { ncap = ncap * 2; }
  char *nb = (char*)syscall("mremap", ebuf, ecap, ncap, 1, 0);
  if ((int)nb < 0) { exit(1); }
  ebuf = nb;
  ecap = ncap;
}

int main(int argc, char **argv) {
  ecap = 4096;
  ebuf = (char*)syscall("mmap", 0, ecap, 3, 0x22, -1, 0); // the vim-blocking call
  // report the terminal size like a visual editor would
  if (syscall("ioctl", 1, 0x5413, wsz) == 0) {
    print("term "); printi((wsz[2] & 255) | ((wsz[3] & 255) << 8));
    print("x"); printi((wsz[0] & 255) | ((wsz[1] & 255) << 8)); print("\n");
  }
  if (argc > 1) {
    int fd = open(argv[1], 0, 0);
    if (fd >= 0) {
      while (1) {
        ensure(256);
        int n = read(fd, ebuf + elen, 256);
        if (n <= 0) { break; }
        elen = elen + n;
      }
      close(fd);
    }
  }
  // edit script on stdin: aTEXT append, p print, wFILE write, q quit
  while (1) {
    int i = 0;
    while (i < 255) {
      int n = read(0, lbuf + i, 1);
      if (n <= 0) { lbuf[i] = 0; if (i == 0) { return 0; } break; }
      if (lbuf[i] == '\n') { break; }
      i = i + 1;
    }
    lbuf[i] = 0;
    if (lbuf[0] == 'q') { break; }
    if (lbuf[0] == 'a') {
      int l = strlen(lbuf + 1);
      ensure(l + 1);
      memcopy(ebuf + elen, lbuf + 1, l);
      elen = elen + l;
      ebuf[elen] = '\n';
      elen = elen + 1;
    }
    if (lbuf[0] == 'p') { write(1, ebuf, elen); }
    if (lbuf[0] == 'w') {
      int fd = open(lbuf + 1, 66 | 512, 438);
      write(fd, ebuf, elen);
      close(fd);
      print("wrote "); printi(elen); print(" bytes\n");
    }
  }
  return 0;
}
|}

(* mqttc — the paho-mqtt analogue (row "paho-mqtt"; WASI-blocking:
   sockopt). Publish/subscribe over a loopback broker with socket
   options set on the connection. *)
let mqttc =
  {|
char sabuf[16];
char msgbuf[256];
int nrecv;

void make_addr(int port) {
  sabuf[0] = 2; sabuf[1] = 0;
  sabuf[2] = (port >> 8) & 255; sabuf[3] = port & 255;
  sabuf[4] = 127; sabuf[5] = 0; sabuf[6] = 0; sabuf[7] = 1;
}

int read_line(int fd) {
  int i = 0;
  while (i < 255) {
    int n = read(fd, msgbuf + i, 1);
    if (n <= 0) { return 0; }
    if (msgbuf[i] == '\n') { break; }
    i = i + 1;
  }
  msgbuf[i] = 0;
  return 1;
}

char optval[4];

// broker: relay PUB payloads back to the subscriber (same connection)
void broker(int port) {
  int s = syscall("socket", 2, 1, 0);
  make_addr(port);
  syscall("bind", s, sabuf, 16);
  syscall("listen", s, 4);
  int c = syscall("accept", s, 0, 0);
  while (read_line(c)) {
    if (!strncmp(msgbuf, "PUB ", 4)) {
      strcat(msgbuf, "\n");
      write(c, msgbuf + 4, strlen(msgbuf + 4));
    }
    if (!strncmp(msgbuf, "END", 3)) { break; }
  }
  close(c);
  close(s);
}

int broker_thread(int port) { broker(port); return 0; }

int main(int argc, char **argv) {
  int n = argc > 1 ? atoi(argv[1]) : 10;
  int port = 7100;
  thread_spawn(fnptr(broker_thread), port);
  sched_yield();
  int fd = syscall("socket", 2, 1, 0);
  // the paho-blocking calls: tune the socket
  *(int*)optval = 65536;
  syscall("setsockopt", fd, 1, 8, optval, 4);  // SO_RCVBUF
  syscall("setsockopt", fd, 1, 7, optval, 4);  // SO_SNDBUF
  make_addr(port);
  int tries = 0;
  while (syscall("connect", fd, sabuf, 16) < 0 && tries < 100) {
    msleep(1);
    tries = tries + 1;
  }
  for (int i = 0; i < n; i = i + 1) {
    strcpy(msgbuf, "PUB sensor/temp ");
    strcat(msgbuf, itoa(20 + (i % 5)));
    strcat(msgbuf, "\n");
    write(fd, msgbuf, strlen(msgbuf));
    if (read_line(fd)) { nrecv = nrecv + 1; }
  }
  write(fd, "END\n", 4);
  close(fd);
  print("published="); printi(n);
  print(" echoed="); printi(nrecv); print("\n");
  return 0;
}
|}

(* evloop — the libevent analogue (row "libevent"; WASI-blocking:
   socketpair). An event loop multiplexing a socketpair and a pipe with
   poll. *)
let evloop =
  {|
int sp[2];
int pfd[2];
char pollset[16];   // two pollfds
char buf[64];

int main() {
  syscall("socketpair", 1, 1, 0, sp);   // the libevent-blocking call
  pipe(pfd);
  // seed both sources
  write(sp[1], "sock-ev", 7);
  write(pfd[1], "pipe-ev", 7);
  int got = 0;
  while (got < 2) {
    // pollfd[0] = sp[0], pollfd[1] = pfd[0], events=POLLIN
    *(int*)pollset = sp[0];
    pollset[4] = 1; pollset[5] = 0; pollset[6] = 0; pollset[7] = 0;
    *(int*)(pollset + 8) = pfd[0];
    pollset[12] = 1; pollset[13] = 0; pollset[14] = 0; pollset[15] = 0;
    int n = syscall("poll", pollset, 2, 1000);
    if (n <= 0) { break; }
    if (pollset[6] & 1) {
      int k = read(sp[0], buf, 63);
      buf[k] = 0;
      print("event: "); println(buf);
      got = got + 1;
    }
    if (pollset[14] & 1) {
      int k = read(pfd[0], buf, 63);
      buf[k] = 0;
      print("event: "); println(buf);
      got = got + 1;
    }
  }
  printi(got); println(" events");
  return 0;
}
|}

(* sshd-lite — the openssh analogue (row "openssh"; WASI-blocking:
   users). A login daemon skeleton: parses /etc/passwd, setsid, drops
   privileges with setuid after "authentication". *)
let sshd =
  {|
char pwbuf[1024];
char userbuf[64];
int st[1];

// find "user:" in /etc/passwd; returns uid or -1
int lookup_user(char *name) {
  int fd = open("/etc/passwd", 0, 0);
  if (fd < 0) { return -1; }
  int n = read(fd, pwbuf, 1023);
  pwbuf[n] = 0;
  close(fd);
  int i = 0;
  while (i < n) {
    // match name at line start
    int j = 0;
    while (name[j] && pwbuf[i + j] == name[j]) { j = j + 1; }
    if (!name[j] && pwbuf[i + j] == ':') {
      // skip two fields, read uid
      int f = 0;
      int k = i;
      while (pwbuf[k] && f < 2) {
        if (pwbuf[k] == ':') { f = f + 1; }
        k = k + 1;
      }
      return atoi(pwbuf + k);
    }
    while (pwbuf[i] && pwbuf[i] != '\n') { i = i + 1; }
    if (pwbuf[i]) { i = i + 1; }
  }
  return -1;
}

int main(int argc, char **argv) {
  char *user = argc > 1 ? argv[1] : "user";
  print("sshd: uid="); printi(syscall("getuid")); print("\n");
  // daemonize-ish: new session and process group (the users family)
  int pid = fork();
  if (pid != 0) {
    st[0] = 0;
    waitpid(pid, st, 0);
    return st[0] >> 8;
  }
  syscall("setsid");
  int uid = lookup_user(user);
  if (uid < 0) {
    print("sshd: no such user: "); println(user);
    exit(1);
  }
  // "authentication" succeeded: drop privileges
  if (syscall("setuid", uid) < 0) {
    println("sshd: setuid failed");
    exit(1);
  }
  print("session: user="); print(user);
  print(" uid="); printi(syscall("getuid"));
  print(" euid="); printi(syscall("geteuid"));
  print(" sid="); printi(syscall("getsid", 0));
  print("\n");
  exit(0);
  return 0;
}
|}

(* tui — the ncurses analogue (row "libncurses"; WASI-blocking: process
   groups). Terminal setup: window size, foreground process group
   management. *)
let tui =
  {|
char wsz[8];

int main() {
  syscall("ioctl", 1, 0x5413, wsz);
  int rows = (wsz[0] & 255) | ((wsz[1] & 255) << 8);
  int cols = (wsz[2] & 255) | ((wsz[3] & 255) << 8);
  print("screen "); printi(cols); print("x"); printi(rows); print("\n");
  // the ncurses-blocking family: process groups for job control
  int pg = syscall("getpgrp");
  if (syscall("setpgid", 0, 0) < 0) { println("tui: setpgid failed"); return 1; }
  int npg = syscall("getpgid", 0);
  print("pgrp "); printi(pg); print(" -> "); printi(npg); print("\n");
  // draw a frame
  for (int i = 0; i < 3; i = i + 1) {
    for (int j = 0; j < 8; j = j + 1) { printc(i == 1 ? ' ' : '*'); }
    printc('\n');
  }
  return 0;
}
|}

(* crypt — the openssl analogue (row "openssl"; WASI-blocking: ioctl).
   Stream cipher + entropy via getrandom and FIONREAD probing. *)
let crypt =
  {|
char key[32];
char data[4096];
char probe[4];
int fds[2];

int main(int argc, char **argv) {
  int rounds = argc > 1 ? atoi(argv[1]) : 4;
  syscall("getrandom", key, 32, 0);
  for (int i = 0; i < 4096; i = i + 1) { data[i] = i & 255; }
  int state = 0;
  for (int r = 0; r < rounds; r = r + 1) {
    for (int i = 0; i < 4096; i = i + 1) {
      state = (state * 1103515245 + 12345 + key[i % 32]) & 0x7fffffff;
      data[i] = data[i] ^ (state & 255);
    }
  }
  // the openssl-blocking call: ioctl on a socket-ish fd
  pipe(fds);
  write(fds[1], data, 100);
  if (syscall("ioctl", fds[0], 0x541B, probe) == 0) {  // FIONREAD
    print("pending="); printi(*(int*)probe); print("\n");
  }
  int sum = 0;
  for (int i = 0; i < 4096; i = i + 1) { sum = (sum + data[i]) & 0xffffff; }
  print("digest="); printi(sum); print("\n");
  return 0;
}
|}

(* ltp — the Linux Test Project analogue (row "LTP"): a syscall
   conformance harness exercising signals + shared state for job
   control, reporting TAP-style results. *)
let ltp =
  {|
int passed;
int failed;
int got_usr1;
int st[1];
int fds[2];
char buf[64];

void check(char *name, int cond) {
  if (cond) { passed = passed + 1; print("ok "); }
  else { failed = failed + 1; print("not ok "); }
  println(name);
}

void usr1(int sig) { got_usr1 = got_usr1 + 1; }

int main() {
  // getpid/getppid
  check("getpid>0", getpid() > 0);
  check("getppid>=0", getppid() >= 0);
  // files
  int fd = open("/tmp/ltp.dat", 66, 438);
  check("open", fd >= 0);
  check("write", write(fd, "x1x2", 4) == 4);
  check("lseek", lseek(fd, 0, 0) == 0);
  check("read", read(fd, buf, 4) == 4);
  check("close", close(fd) == 0);
  check("unlink", unlink("/tmp/ltp.dat") == 0);
  check("unlink-enoent", unlink("/tmp/ltp.dat") < 0 && errno == 2);
  // fork/wait with exit status
  int pid = fork();
  if (pid == 0) { exit(42); }
  check("waitpid", waitpid(pid, st, 0) == pid);
  check("status", (st[0] >> 8) == 42);
  check("echild", waitpid(-1, st, 0) < 0 && errno == 10);
  // signals: mask + delivery
  signal(10, fnptr(usr1));
  kill(getpid(), 10);
  sched_yield();
  check("sigusr1-delivered", got_usr1 == 1);
  // pipe + shared memory-style communication
  pipe(fds);
  pid = fork();
  if (pid == 0) {
    write(fds[1], "ltp-child", 9);
    exit(0);
  }
  int n = read(fds[0], buf, 9);
  buf[n] = 0;
  check("pipe-ipc", !strcmp(buf, "ltp-child"));
  waitpid(pid, st, 0);
  // dup semantics
  int d = dup_fd(1);
  check("dup", d > 2);
  check("dup2", dup2(d, 19) == 19);
  close(d);
  close(19);
  // mmap
  char *p = (char*)syscall("mmap", 0, 8192, 3, 0x22, -1, 0);
  check("mmap", (int)p > 0);
  p[8191] = 7;
  check("mmap-rw", p[8191] == 7);
  check("munmap", syscall("munmap", p, 8192) == 0);
  // summary
  printi(passed); print(" passed, "); printi(failed); println(" failed");
  return failed ? 1 : 0;
}
|}
