(** MiniC recursive-descent parser. *)

open Mc_ast
open Mc_lexer

let expect lx (t : token) =
  if token lx = t then advance lx
  else
    fail lx "expected %s, found %s" (token_to_string t)
      (token_to_string (token lx))

let expect_punct lx s = expect lx (PUNCT s)

let parse_ident lx =
  match token lx with
  | IDENT s ->
      advance lx;
      s
  | t -> fail lx "expected identifier, found %s" (token_to_string t)

(* type = ("int" | "char" | "void") "*"* *)
let parse_base_ty lx : ty =
  match token lx with
  | KW "int" -> advance lx; TInt
  | KW "char" -> advance lx; TChar
  | KW "void" -> advance lx; TVoid
  | t -> fail lx "expected type, found %s" (token_to_string t)

let rec parse_ptr lx base =
  if token lx = PUNCT "*" then begin
    advance lx;
    parse_ptr lx (TPtr base)
  end
  else base

let parse_ty lx = parse_ptr lx (parse_base_ty lx)

let looks_like_type lx =
  match token lx with KW ("int" | "char" | "void") -> true | _ -> false

(* Expression parsing: precedence climbing. *)

let binop_of = function
  | "*" -> Some (Mul, 10) | "/" -> Some (Div, 10) | "%" -> Some (Mod, 10)
  | "+" -> Some (Add, 9) | "-" -> Some (Sub, 9)
  | "<<" -> Some (Shl, 8) | ">>" -> Some (Shr, 8)
  | "<" -> Some (Lt, 7) | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7) | ">=" -> Some (Ge, 7)
  | "==" -> Some (Eq, 6) | "!=" -> Some (Ne, 6)
  | "&" -> Some (Band, 5)
  | "^" -> Some (Bxor, 4)
  | "|" -> Some (Bor, 3)
  | "&&" -> Some (And, 2)
  | "||" -> Some (Or, 1)
  | _ -> None

let rec parse_expr lx : expr = parse_assign lx

and parse_assign lx : expr =
  let lhs = parse_cond lx in
  match token lx with
  | PUNCT "=" ->
      advance lx;
      EAssign (lhs, parse_assign lx)
  | PUNCT "+=" ->
      advance lx;
      EAssign (lhs, EBinop (Add, lhs, parse_assign lx))
  | PUNCT "-=" ->
      advance lx;
      EAssign (lhs, EBinop (Sub, lhs, parse_assign lx))
  | _ -> lhs

and parse_cond lx : expr =
  let c = parse_binary lx 1 in
  if token lx = PUNCT "?" then begin
    advance lx;
    let t = parse_expr lx in
    expect_punct lx ":";
    let e = parse_cond lx in
    ECond (c, t, e)
  end
  else c

and parse_binary lx min_prec : expr =
  let lhs = ref (parse_unary lx) in
  let rec go () =
    match token lx with
    | PUNCT p -> (
        match binop_of p with
        | Some (op, prec) when prec >= min_prec ->
            advance lx;
            let rhs = parse_binary lx (prec + 1) in
            lhs := EBinop (op, !lhs, rhs);
            go ()
        | _ -> ())
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary lx : expr =
  match token lx with
  | PUNCT "-" ->
      advance lx;
      EUnop (Neg, parse_unary lx)
  | PUNCT "!" ->
      advance lx;
      EUnop (Not, parse_unary lx)
  | PUNCT "~" ->
      advance lx;
      EUnop (Bnot, parse_unary lx)
  | PUNCT "*" ->
      advance lx;
      EDeref (parse_unary lx)
  | PUNCT "(" when is_cast lx -> (
      advance lx;
      let t = parse_ty lx in
      expect_punct lx ")";
      ECast (t, parse_unary lx))
  | KW "sizeof" ->
      advance lx;
      expect_punct lx "(";
      let t = parse_ty lx in
      expect_punct lx ")";
      ESizeof t
  | _ -> parse_postfix lx

(* Peek whether "(" starts a cast: "(" followed by a type keyword. *)
and is_cast lx =
  (* cheap lookahead: save lexer state *)
  let save_pos = lx.Mc_lexer.pos and save_tok = lx.Mc_lexer.tok and save_line = lx.Mc_lexer.line in
  advance lx;
  let r = looks_like_type lx in
  lx.Mc_lexer.pos <- save_pos;
  lx.Mc_lexer.tok <- save_tok;
  lx.Mc_lexer.line <- save_line;
  r

and parse_postfix lx : expr =
  let e = ref (parse_primary lx) in
  let rec go () =
    match token lx with
    | PUNCT "[" ->
        advance lx;
        let i = parse_expr lx in
        expect_punct lx "]";
        e := EIndex (!e, i);
        go ()
    | _ -> ()
  in
  go ();
  !e

and parse_args lx : expr list =
  expect_punct lx "(";
  if token lx = PUNCT ")" then begin
    advance lx;
    []
  end
  else begin
    let rec go acc =
      let a = parse_expr lx in
      match token lx with
      | PUNCT "," ->
          advance lx;
          go (a :: acc)
      | _ ->
          expect_punct lx ")";
          List.rev (a :: acc)
    in
    go []
  end

and parse_primary lx : expr =
  match token lx with
  | INT n ->
      advance lx;
      EInt n
  | CHAR c ->
      advance lx;
      EInt c
  | STR s ->
      advance lx;
      EStr s
  | PUNCT "(" ->
      advance lx;
      let e = parse_expr lx in
      expect_punct lx ")";
      e
  | IDENT "syscall" -> (
      advance lx;
      match parse_args lx with
      | EStr name :: rest -> ESyscall (name, rest)
      | _ -> fail lx "syscall requires a string-literal name")
  | IDENT "fnptr" -> (
      advance lx;
      match parse_args lx with
      | [ EVar f ] -> EFnptr f
      | _ -> fail lx "fnptr requires a function name")
  | IDENT (("argc" | "argv_len" | "argv_copy" | "envc" | "env_len"
           | "env_copy" | "thread_spawn" | "calli" | "memcopy" | "memfill")
           as b)
    when (let save_pos = lx.Mc_lexer.pos and save_tok = lx.Mc_lexer.tok in
          advance lx;
          let is_call = token lx = PUNCT "(" in
          lx.Mc_lexer.pos <- save_pos;
          lx.Mc_lexer.tok <- save_tok;
          is_call) ->
      advance lx;
      EBuiltin (b, parse_args lx)
  | IDENT name ->
      advance lx;
      if token lx = PUNCT "(" then ECall (name, parse_args lx) else EVar name
  | t -> fail lx "unexpected token %s" (token_to_string t)

(* Statements *)

let rec parse_stmt lx : stmt =
  match token lx with
  | PUNCT "{" -> SBlock (parse_block lx)
  | KW "if" ->
      advance lx;
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      let t = parse_stmt_as_block lx in
      let e =
        if token lx = KW "else" then begin
          advance lx;
          parse_stmt_as_block lx
        end
        else []
      in
      SIf (c, t, e)
  | KW "while" ->
      advance lx;
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      SWhile (c, parse_stmt_as_block lx)
  | KW "for" ->
      advance lx;
      expect_punct lx "(";
      let init =
        if token lx = PUNCT ";" then None
        else if looks_like_type lx then begin
          let t = parse_ty lx in
          let n = parse_ident lx in
          let e =
            if token lx = PUNCT "=" then begin
              advance lx;
              Some (parse_expr lx)
            end
            else None
          in
          Some (SDecl (t, n, e))
        end
        else Some (SExpr (parse_expr lx))
      in
      expect_punct lx ";";
      let cond = if token lx = PUNCT ";" then None else Some (parse_expr lx) in
      expect_punct lx ";";
      let step = if token lx = PUNCT ")" then None else Some (parse_expr lx) in
      expect_punct lx ")";
      SFor (init, cond, step, parse_stmt_as_block lx)
  | KW "return" ->
      advance lx;
      if token lx = PUNCT ";" then begin
        advance lx;
        SReturn None
      end
      else begin
        let e = parse_expr lx in
        expect_punct lx ";";
        SReturn (Some e)
      end
  | KW "break" ->
      advance lx;
      expect_punct lx ";";
      SBreak
  | KW "continue" ->
      advance lx;
      expect_punct lx ";";
      SContinue
  | KW ("int" | "char" | "void") ->
      let t = parse_ty lx in
      let n = parse_ident lx in
      let init =
        if token lx = PUNCT "=" then begin
          advance lx;
          Some (parse_expr lx)
        end
        else None
      in
      expect_punct lx ";";
      SDecl (t, n, init)
  | _ ->
      let e = parse_expr lx in
      expect_punct lx ";";
      SExpr e

and parse_stmt_as_block lx : stmt list =
  match token lx with
  | PUNCT "{" -> parse_block lx
  | _ -> [ parse_stmt lx ]

and parse_block lx : stmt list =
  expect_punct lx "{";
  let rec go acc =
    if token lx = PUNCT "}" then begin
      advance lx;
      List.rev acc
    end
    else go (parse_stmt lx :: acc)
  in
  go []

(* Top level *)

let parse_program (src : string) : program =
  let lx = create src in
  let rec go acc =
    match token lx with
    | EOF -> List.rev acc
    | _ ->
        let t = parse_ty lx in
        let name = parse_ident lx in
        if token lx = PUNCT "(" then begin
          (* function *)
          advance lx;
          let params =
            if token lx = PUNCT ")" then begin
              advance lx;
              []
            end
            else begin
              let rec ps acc =
                let pt = parse_ty lx in
                let pn = parse_ident lx in
                match token lx with
                | PUNCT "," ->
                    advance lx;
                    ps ((pt, pn) :: acc)
                | _ ->
                    expect_punct lx ")";
                    List.rev ((pt, pn) :: acc)
              in
              ps []
            end
          in
          let body = parse_block lx in
          go (GFunc { fn_name = name; fn_ret = t; fn_params = params; fn_body = body } :: acc)
        end
        else if token lx = PUNCT "[" then begin
          advance lx;
          let n =
            match token lx with
            | INT n ->
                advance lx;
                n
            | t -> fail lx "array size must be a literal, found %s" (token_to_string t)
          in
          expect_punct lx "]";
          expect_punct lx ";";
          go (GArr (t, name, n) :: acc)
        end
        else begin
          let init =
            if token lx = PUNCT "=" then begin
              advance lx;
              match token lx with
              | INT n ->
                  advance lx;
                  Some n
              | PUNCT "-" ->
                  advance lx;
                  (match token lx with
                  | INT n ->
                      advance lx;
                      Some (-n)
                  | t -> fail lx "global init must be a literal, found %s" (token_to_string t))
              | t -> fail lx "global init must be a literal, found %s" (token_to_string t)
            end
            else None
          in
          expect_punct lx ";";
          go (GVar (t, name, init) :: acc)
        end
  in
  go []
