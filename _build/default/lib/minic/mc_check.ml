(** MiniC type checking and the expression-typing oracle shared by the
    three code generators. char is unsigned and promotes to int in
    arithmetic; pointer arithmetic scales by element size. *)

open Mc_ast

type fsig = { fs_ret : ty; fs_params : ty list }

type env = {
  globals : (string, ty) Hashtbl.t; (* arrays appear as TPtr elem *)
  funcs : (string, fsig) Hashtbl.t;
}

let builtin_sigs : (string * fsig) list =
  [
    ("argc", { fs_ret = TInt; fs_params = [] });
    ("argv_len", { fs_ret = TInt; fs_params = [ TInt ] });
    ("argv_copy", { fs_ret = TInt; fs_params = [ TPtr TChar; TInt ] });
    ("envc", { fs_ret = TInt; fs_params = [] });
    ("env_len", { fs_ret = TInt; fs_params = [ TInt ] });
    ("env_copy", { fs_ret = TInt; fs_params = [ TPtr TChar; TInt ] });
    ("thread_spawn", { fs_ret = TInt; fs_params = [ TInt; TInt ] });
    (* calli/memcopy/memfill are variadic-ish; checked structurally *)
  ]

let build_env (p : program) : env =
  let env = { globals = Hashtbl.create 32; funcs = Hashtbl.create 32 } in
  List.iter
    (function
      | GVar (t, n, _) ->
          if Hashtbl.mem env.globals n then error "duplicate global %s" n;
          Hashtbl.replace env.globals n t
      | GArr (t, n, sz) ->
          if sz <= 0 then error "array %s: bad size" n;
          if Hashtbl.mem env.globals n then error "duplicate global %s" n;
          Hashtbl.replace env.globals n (TPtr t)
      | GFunc f ->
          if Hashtbl.mem env.funcs f.fn_name then
            error "duplicate function %s" f.fn_name;
          Hashtbl.replace env.funcs f.fn_name
            { fs_ret = f.fn_ret; fs_params = List.map fst f.fn_params })
    p;
  env

(* Structural compatibility for assignment/args: int~char, any pointer
   converts to any pointer (explicit casts are available but not
   required — MiniC is a systems language, not a proof assistant). *)
let compatible a b =
  match (a, b) with
  | TVoid, _ | _, TVoid -> false
  | (TInt | TChar), (TInt | TChar) -> true
  | TPtr _, TPtr _ -> true
  | (TInt | TChar), TPtr _ | TPtr _, (TInt | TChar) -> true

let rec ty_of (lookup : string -> ty) (env : env) (e : expr) : ty =
  match e with
  | EInt _ -> TInt
  | EStr _ -> TPtr TChar
  | EVar n -> lookup n
  | ECall (f, _) -> (
      match Hashtbl.find_opt env.funcs f with
      | Some s -> s.fs_ret
      | None -> error "call to undefined function %s" f)
  | ESyscall _ -> TInt
  | EFnptr _ -> TInt
  | EBuiltin (("memcopy" | "memfill"), _) -> TVoid
  | EBuiltin (b, _) -> (
      match List.assoc_opt b builtin_sigs with
      | Some s -> s.fs_ret
      | None -> TInt (* calli *))
  | EUnop (_, _) -> TInt
  | EBinop ((Add | Sub), a, b) -> (
      let ta = ty_of lookup env a and tb = ty_of lookup env b in
      match (ta, tb) with
      | TPtr _, _ -> ta
      | _, TPtr _ -> tb
      | _ -> TInt)
  | EBinop (_, _, _) -> TInt
  | EAssign (l, _) -> ty_of lookup env l
  | EIndex (p, _) -> (
      match ty_of lookup env p with
      | TPtr t -> t
      | _ -> error "indexing a non-pointer")
  | EDeref p -> (
      match ty_of lookup env p with
      | TPtr t -> t
      | _ -> error "dereferencing a non-pointer")
  | ECast (t, _) -> t
  | ECond (_, a, _) -> ty_of lookup env a
  | ESizeof _ -> TInt

(* Full checking pass: variable scoping, arity, lvalues, break/continue
   placement, return types. *)
let check_func (env : env) (f : func) : unit =
  let scopes : (string * ty) list ref = ref [] in
  let push_scope () =
    let saved = !scopes in
    fun () -> scopes := saved
  in
  let declare n t =
    if List.mem_assoc n !scopes then error "%s: duplicate local %s" f.fn_name n;
    scopes := (n, t) :: !scopes
  in
  let lookup n =
    match List.assoc_opt n !scopes with
    | Some t -> t
    | None -> (
        match Hashtbl.find_opt env.globals n with
        | Some t -> t
        | None -> error "%s: undefined variable %s" f.fn_name n)
  in
  let rec expr (e : expr) : ty =
    match e with
    | EInt _ | EStr _ | ESizeof _ -> ty_of lookup env e
    | EVar n -> lookup n
    | EFnptr fn ->
        if not (Hashtbl.mem env.funcs fn) then
          error "%s: fnptr of undefined function %s" f.fn_name fn;
        TInt
    | ECall (fn, args) -> (
        match Hashtbl.find_opt env.funcs fn with
        | None -> error "%s: call to undefined function %s" f.fn_name fn
        | Some s ->
            if List.length args <> List.length s.fs_params then
              error "%s: %s expects %d args, got %d" f.fn_name fn
                (List.length s.fs_params) (List.length args);
            List.iter2
              (fun a pt ->
                let at = expr a in
                if not (compatible at pt) then
                  error "%s: argument type mismatch in call to %s (%s vs %s)"
                    f.fn_name fn (string_of_ty at) (string_of_ty pt))
              args s.fs_params;
            s.fs_ret)
    | ESyscall (_, args) ->
        if List.length args > 6 then error "%s: syscall with >6 args" f.fn_name;
        List.iter (fun a -> ignore (expr a)) args;
        TInt
    | EBuiltin (b, args) -> (
        List.iter (fun a -> ignore (expr a)) args;
        match b with
        | "calli" ->
            if args = [] then error "%s: calli needs a target" f.fn_name;
            TInt
        | "memcopy" | "memfill" ->
            if List.length args <> 3 then
              error "%s: %s needs 3 args" f.fn_name b;
            TVoid
        | b -> (
            match List.assoc_opt b builtin_sigs with
            | Some s ->
                if List.length args <> List.length s.fs_params then
                  error "%s: %s arity" f.fn_name b;
                s.fs_ret
            | None -> error "%s: unknown builtin %s" f.fn_name b))
    | EUnop (_, a) ->
        ignore (expr a);
        TInt
    | EBinop ((And | Or), a, b) ->
        ignore (expr a);
        ignore (expr b);
        TInt
    | EBinop (op, a, b) -> (
        let ta = expr a and tb = expr b in
        match (op, ta, tb) with
        | (Add | Sub), TPtr _, (TInt | TChar) -> ta
        | Add, (TInt | TChar), TPtr _ -> tb
        | Sub, TPtr _, TPtr _ -> TInt (* pointer difference, in elements *)
        | _, (TInt | TChar), (TInt | TChar) -> TInt
        | _, TPtr _, _ | _, _, TPtr _ ->
            (* comparisons of pointers are fine *)
            if List.mem op [ Eq; Ne; Lt; Le; Gt; Ge ] then TInt
            else error "%s: invalid pointer arithmetic" f.fn_name
        | _ -> error "%s: type error in binary op" f.fn_name)
    | EAssign (l, r) ->
        let lt = lvalue l in
        let rt = expr r in
        if not (compatible lt rt) then
          error "%s: assignment type mismatch (%s = %s)" f.fn_name
            (string_of_ty lt) (string_of_ty rt);
        lt
    | EIndex (p, i) -> (
        let pt = expr p in
        ignore (expr i);
        match pt with
        | TPtr t -> t
        | _ -> error "%s: indexing non-pointer" f.fn_name)
    | EDeref p -> (
        match expr p with
        | TPtr t -> t
        | _ -> error "%s: dereferencing non-pointer" f.fn_name)
    | ECast (t, a) ->
        ignore (expr a);
        t
    | ECond (c, a, b) ->
        ignore (expr c);
        let ta = expr a and tb = expr b in
        if not (compatible ta tb) then error "%s: ternary arms differ" f.fn_name;
        ta
  and lvalue (e : expr) : ty =
    match e with
    | EVar n -> lookup n
    | EIndex _ | EDeref _ -> expr e
    | _ -> error "%s: not an lvalue" f.fn_name
  in
  let rec stmt ~in_loop (s : stmt) : unit =
    match s with
    | SExpr e -> ignore (expr e)
    | SDecl (t, n, init) ->
        if t = TVoid then error "%s: void variable %s" f.fn_name n;
        (match init with
        | Some e ->
            let et = expr e in
            if not (compatible t et) then
              error "%s: init type mismatch for %s" f.fn_name n
        | None -> ());
        declare n t
    | SIf (c, t, e) ->
        ignore (expr c);
        block ~in_loop t;
        block ~in_loop e
    | SWhile (c, b) ->
        ignore (expr c);
        block ~in_loop:true b
    | SFor (init, cond, step, b) ->
        let pop = push_scope () in
        Option.iter (stmt ~in_loop) init;
        Option.iter (fun e -> ignore (expr e)) cond;
        Option.iter (fun e -> ignore (expr e)) step;
        block ~in_loop:true b;
        pop ()
    | SReturn None ->
        if f.fn_ret <> TVoid then error "%s: missing return value" f.fn_name
    | SReturn (Some e) ->
        let t = expr e in
        if f.fn_ret = TVoid then error "%s: returning value from void" f.fn_name
        else if not (compatible t f.fn_ret) then
          error "%s: return type mismatch" f.fn_name
    | SBreak | SContinue ->
        if not in_loop then error "%s: break/continue outside loop" f.fn_name
    | SBlock b -> block ~in_loop b
  and block ~in_loop (b : stmt list) : unit =
    let pop = push_scope () in
    List.iter (stmt ~in_loop) b;
    pop ()
  in
  List.iter (fun (t, n) -> declare n t) f.fn_params;
  block ~in_loop:false f.fn_body

let check (p : program) : env =
  let env = build_env p in
  List.iter (function GFunc f -> check_func env f | GVar _ | GArr _ -> ()) p;
  env
