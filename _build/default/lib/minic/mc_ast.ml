(** MiniC: a small C-like systems language.

    MiniC plays the role of the paper's C toolchain: one source program
    compiles unchanged to (a) Wasm importing the name-bound WALI
    interface, (b) RV32 with the Linux ecall ABI (the QEMU-baseline
    guest), and (c) host closures calling the kernel directly (the
    native baseline) — the "recompile against the syscall ABI and it
    just works" porting story.

    Restrictions vs C: no address-of (use globals, global arrays or
    malloc), no structs (pointer arithmetic instead), int is 32-bit,
    char is a byte. [syscall("name", ...)] is the primitive the libc
    wraps; [fnptr(f)] yields a function pointer (a table index). *)

type ty = TInt | TChar | TPtr of ty | TVoid

let rec string_of_ty = function
  | TInt -> "int"
  | TChar -> "char"
  | TVoid -> "void"
  | TPtr t -> string_of_ty t ^ "*"

let size_of = function TChar -> 1 | TInt | TPtr _ -> 4 | TVoid -> 0

(* element size for pointer arithmetic / indexing *)
let elem_size = function TPtr t -> size_of t | _ -> 1

type unop = Neg | Not | Bnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or (* short-circuit *)

type expr =
  | EInt of int
  | EStr of string
  | EVar of string
  | ECall of string * expr list
  | ESyscall of string * expr list
  | EBuiltin of string * expr list (* argc(), argv_copy(..), thread_spawn(..) *)
  | EFnptr of string
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | EAssign of expr * expr (* lvalue = rvalue *)
  | EIndex of expr * expr
  | EDeref of expr
  | ECast of ty * expr
  | ECond of expr * expr * expr
  | ESizeof of ty

type stmt =
  | SExpr of expr
  | SDecl of ty * string * expr option
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SFor of stmt option * expr option * expr option * stmt list
  | SReturn of expr option
  | SBreak
  | SContinue
  | SBlock of stmt list

type func = {
  fn_name : string;
  fn_ret : ty;
  fn_params : (ty * string) list;
  fn_body : stmt list;
}

type glob =
  | GVar of ty * string * int option (* scalar global, optional const init *)
  | GArr of ty * string * int (* element type, name, count *)
  | GFunc of func

type program = glob list

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
