(** The MiniC libc ("wali-musl"): written in MiniC against the raw
    syscall ABI, so the same source serves all three backends — the
    paper's porting story in miniature. Provides startup (argv/env
    transfer per §3.4), an mmap-backed malloc (possible only because
    WALI supports real memory mapping, §3.2), strings, stdio, process
    and signal wrappers. *)

let source =
  {|
// ---------------- wali-libc (MiniC) ----------------

int errno;
int __argc;
char **__argv;

int __sys(int r) {
  if (r < 0) { errno = 0 - r; return -1; }
  return r;
}

// ---- malloc: first-fit free list over mmap chunks ----
// free block layout: [size:int][next:int] ; allocated: [size:int][pad]

char *__flist;

char *malloc(int size) {
  if (size < 1) { size = 1; }
  int need = ((size + 8) + 7) & ~7;
  if (need < 16) { need = 16; }
  char *prev = (char*)0;
  char *cur = __flist;
  while (cur) {
    int csz = *(int*)cur;
    if (csz >= need) {
      if (csz - need >= 16) {
        char *tail = cur + need;
        *(int*)tail = csz - need;
        *(int*)(tail + 4) = *(int*)(cur + 4);
        *(int*)cur = need;
        if (prev) { *(int*)(prev + 4) = (int)tail; } else { __flist = tail; }
      } else {
        if (prev) { *(int*)(prev + 4) = *(int*)(cur + 4); }
        else { __flist = (char*)(*(int*)(cur + 4)); }
      }
      return cur + 8;
    }
    prev = cur;
    cur = (char*)(*(int*)(cur + 4));
  }
  int chunk = 65536;
  if (need > chunk) { chunk = (need + 65535) & ~65535; }
  // mmap(0, chunk, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANONYMOUS, -1, 0)
  char *blk = (char*)syscall("mmap", 0, chunk, 3, 0x22, -1, 0);
  if ((int)blk < 0) { return (char*)0; }
  *(int*)blk = chunk;
  *(int*)(blk + 4) = (int)__flist;
  __flist = blk;
  return malloc(size);
}

void free(char *p) {
  if (!p) { return; }
  char *blk = p - 8;
  *(int*)(blk + 4) = (int)__flist;
  __flist = blk;
}

char *realloc(char *p, int size) {
  char *q = malloc(size);
  if (p && q) {
    int old = *(int*)(p - 8) - 8;
    int n = old < size ? old : size;
    memcopy(q, p, n);
    free(p);
  }
  return q;
}

// ---- strings ----

int strlen(char *s) {
  int n = 0;
  while (s[n]) { n = n + 1; }
  return n;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n && a[i] && a[i] == b[i]) { i = i + 1; }
  if (i == n) { return 0; }
  return a[i] - b[i];
}

void strcpy(char *d, char *s) {
  int i = 0;
  while (s[i]) { d[i] = s[i]; i = i + 1; }
  d[i] = 0;
}

void strcat(char *d, char *s) { strcpy(d + strlen(d), s); }

char *strdup(char *s) {
  char *d = malloc(strlen(s) + 1);
  strcpy(d, s);
  return d;
}

int strchr_pos(char *s, int c) {
  int i = 0;
  while (s[i]) {
    if (s[i] == c) { return i; }
    i = i + 1;
  }
  return -1;
}

int atoi(char *s) {
  int n = 0;
  int sign = 1;
  int i = 0;
  while (s[i] == ' ') { i = i + 1; }
  if (s[i] == '-') { sign = -1; i = i + 1; }
  while (s[i] >= '0' && s[i] <= '9') {
    n = n * 10 + (s[i] - '0');
    i = i + 1;
  }
  return n * sign;
}

void memset(char *p, int c, int n) { memfill(p, c, n); }
void memcpy(char *d, char *s, int n) { memcopy(d, s, n); }

int memcmp(char *a, char *b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    if (a[i] != b[i]) { return a[i] - b[i]; }
  }
  return 0;
}

// ---- stdio ----

int write(int fd, char *p, int n) { return __sys(syscall("write", fd, p, n)); }
int read(int fd, char *p, int n) { return __sys(syscall("read", fd, p, n)); }
int open(char *path, int flags, int mode) { return __sys(syscall("open", path, flags, mode)); }
int close(int fd) { return __sys(syscall("close", fd)); }
int lseek(int fd, int off, int whence) { return __sys(syscall("lseek", fd, off, whence)); }
int pread(int fd, char *p, int n, int off) { return __sys(syscall("pread64", fd, p, n, off)); }
int pwrite(int fd, char *p, int n, int off) { return __sys(syscall("pwrite64", fd, p, n, off)); }
int unlink(char *path) { return __sys(syscall("unlink", path)); }
int mkdir(char *path, int mode) { return __sys(syscall("mkdir", path, mode)); }
int rename_file(char *a, char *b) { return __sys(syscall("rename", a, b)); }
int ftruncate(int fd, int len) { return __sys(syscall("ftruncate", fd, len)); }
int fsync(int fd) { return __sys(syscall("fsync", fd)); }
int chdir_to(char *p) { return __sys(syscall("chdir", p)); }
int dup_fd(int fd) { return __sys(syscall("dup", fd)); }
int dup2(int o, int n) { return __sys(syscall("dup2", o, n)); }
int pipe(int *fds) { return __sys(syscall("pipe", fds)); }
int ioctl3(int fd, int req, char *arg) { return __sys(syscall("ioctl", fd, req, arg)); }

void print(char *s) { write(1, s, strlen(s)); }
char __pcbuf[4];
void printc(int c) { __pcbuf[0] = c; write(1, __pcbuf, 1); }

char __itoabuf[36];
char *itoa(int n) {
  int i = 34;
  __itoabuf[35] = 0;
  int neg = 0;
  if (n < 0) { neg = 1; }
  if (n == 0) { __itoabuf[i] = '0'; return __itoabuf + 34; }
  // handle INT_MIN via unsigned-ish trick: work on negatives
  int m = n;
  if (!neg) { m = -n; }
  while (m) {
    __itoabuf[i] = '0' - (m % 10);
    m = m / 10;
    i = i - 1;
  }
  if (neg) { __itoabuf[i] = '-'; i = i - 1; }
  return __itoabuf + i + 1;
}

void printi(int n) { print(itoa(n)); }
void println(char *s) { print(s); print("\n"); }

// ---- process / signals ----

void exit(int code) { syscall("exit_group", code); }
int fork() { return __sys(syscall("fork")); }
int getpid() { return __sys(syscall("getpid")); }
int getppid() { return __sys(syscall("getppid")); }
int waitpid(int pid, int *status, int options) {
  return __sys(syscall("wait4", pid, status, options, 0));
}
int kill(int pid, int sig) { return __sys(syscall("kill", pid, sig)); }
int execve(char *path, char **argv, char **envp) {
  return __sys(syscall("execve", path, argv, envp));
}
int setpgid_self(int pgid) { return __sys(syscall("setpgid", 0, pgid)); }
int sched_yield() { return __sys(syscall("sched_yield")); }

char __sigbuf[16];
int signal(int sig, int handler) {
  *(int*)__sigbuf = handler;
  *(int*)(__sigbuf + 4) = 0;
  *(int*)(__sigbuf + 8) = 0;
  *(int*)(__sigbuf + 12) = 0;
  return __sys(syscall("rt_sigaction", sig, __sigbuf, 0, 16));
}

char __tsbuf[16];
int msleep(int ms) {
  *(int*)__tsbuf = ms / 1000;
  *(int*)(__tsbuf + 4) = 0;
  *(int*)(__tsbuf + 8) = (ms % 1000) * 1000000;
  *(int*)(__tsbuf + 12) = 0;
  return __sys(syscall("nanosleep", __tsbuf, 0));
}

char __timebuf[16];
int monotime_us() {
  syscall("clock_gettime", 1, __timebuf);
  return *(int*)__timebuf * 1000000 + *(int*)(__timebuf + 8) / 1000;
}

// ---- env ----

char *getenv(char *name) {
  int n = envc();
  for (int i = 0; i < n; i = i + 1) {
    char *e = malloc(env_len(i));
    env_copy(e, i);
    int j = 0;
    while (name[j] && e[j] == name[j]) { j = j + 1; }
    if (!name[j] && e[j] == '=') { return e + j + 1; }
    free(e);
  }
  return (char*)0;
}

// ---- startup ----

void __rt_init() {
  __argc = argc();
  __argv = (char**)malloc((__argc + 1) * 4);
  for (int i = 0; i < __argc; i = i + 1) {
    char *p = malloc(argv_len(i));
    argv_copy(p, i);
    __argv[i] = p;
  }
  __argv[__argc] = (char*)0;
}
|}
