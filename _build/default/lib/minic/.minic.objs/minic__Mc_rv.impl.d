lib/minic/mc_rv.ml: Bytes Hashtbl Int32 List Mc_ast Mc_check Option Printf Riscv String
