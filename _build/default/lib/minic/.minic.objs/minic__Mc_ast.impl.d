lib/minic/mc_ast.ml: Printf
