lib/minic/minic.ml: Mc_ast Mc_check Mc_lexer Mc_native Mc_parser Mc_rv Mc_stdlib Mc_wasm Wasm
