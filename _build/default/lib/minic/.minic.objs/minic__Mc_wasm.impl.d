lib/minic/mc_wasm.ml: Builder Bytes Hashtbl Int32 List Mc_ast Mc_check Option String Types Wasm
