lib/minic/mc_native.ml: Array Bytes Hashtbl Int32 List Mc_ast Mc_check Mc_wasm Option String Wasm
