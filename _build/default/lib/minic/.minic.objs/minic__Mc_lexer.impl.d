lib/minic/mc_lexer.ml: Buffer Char List Mc_ast Printf String
