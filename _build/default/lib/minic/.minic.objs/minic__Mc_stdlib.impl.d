lib/minic/mc_stdlib.ml:
