lib/minic/mc_check.ml: Hashtbl List Mc_ast Option
