lib/minic/mc_parser.ml: List Mc_ast Mc_lexer
