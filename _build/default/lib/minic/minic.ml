(** MiniC driver: parse, link the libc, and compile to the chosen target.

    This module is the library root; the pipeline stages are re-exported
    below. *)

module Ast = Mc_ast
module Lexer = Mc_lexer
module Parser = Mc_parser
module Check = Mc_check
module Libc = Mc_stdlib
module Mc_ast = Mc_ast
module Mc_wasm = Mc_wasm
module Mc_native = Mc_native
module Mc_rv = Mc_rv

let parse (src : string) : Mc_ast.program = Mc_parser.parse_program src

(** Parse an application together with the libc. *)
let parse_with_libc (src : string) : Mc_ast.program =
  Mc_parser.parse_program (Mc_stdlib.source ^ "\n" ^ src)

(** Compile MiniC source (plus libc) to a WALI Wasm module. *)
let to_wasm_module ?(with_libc = true) ?mem_max_pages (src : string) :
    Wasm.Ast.module_ =
  let p = if with_libc then parse_with_libc src else parse src in
  Mc_wasm.compile ?mem_max_pages p

(** Compile MiniC source to an encoded .wasm binary for the WALI target. *)
let to_wasm_binary ?with_libc ?mem_max_pages (src : string) : string =
  Wasm.Binary.encode (to_wasm_module ?with_libc ?mem_max_pages src)
