(** MiniC -> RV32IM code generator: the QEMU-baseline guest target.

    Same memory layout policy as the other backends (data at 1024), with
    code loaded at [code_base], the stack just below it and the heap
    above. Syscalls use the Linux RV convention (args a0..a5, number in
    a7, ecall) with the numbering from {!Riscv.Rv_linux}. *)

open Mc_ast
open Riscv.Rv_asm

type gsym = { g_addr : int; g_ty : ty; g_is_array : bool }

let code_base = 0x400000
let stack_top = 0x3F0000
let heap_base = 0x500000

type rv_image = {
  rv_code : string;
  rv_code_base : int;
  rv_data : string; (* load at address 0 *)
  rv_entry : int;
  rv_sp_init : int;
  rv_heap_base : int;
}

type cctx = {
  env : Mc_check.env;
  globals : (string, gsym) Hashtbl.t;
  strings : (string, int) Hashtbl.t;
  mutable data : (int * string) list;
  mutable data_end : int;
  fnames : (string, unit) Hashtbl.t;
  table_labels : (string, int) Hashtbl.t; (* fnptr slot -> nothing; we use addresses *)
  mutable gensym : int;
  mutable out : instr list; (* reversed *)
}

let align4 n = (n + 3) land lnot 3

let emit ctx i = ctx.out <- i :: ctx.out

let fresh ctx prefix =
  ctx.gensym <- ctx.gensym + 1;
  Printf.sprintf ".%s%d" prefix ctx.gensym

let intern ctx s =
  match Hashtbl.find_opt ctx.strings s with
  | Some a -> a
  | None ->
      let a = ctx.data_end in
      ctx.data <- (a, s ^ "\000") :: ctx.data;
      ctx.data_end <- align4 (a + String.length s + 1);
      Hashtbl.replace ctx.strings s a;
      a

type fctx = {
  locals : (string, int * ty) Hashtbl.t;
  mutable nlocals : int;
  ret_label : string;
  mutable loop_stack : (string * string) list; (* (continue, break) *)
}

let local_off i = -12 - (4 * i)

let lookup_var ctx fc n : ty =
  match Hashtbl.find_opt fc.locals n with
  | Some (_, t) -> t
  | None -> (
      match Hashtbl.find_opt ctx.globals n with
      | Some g -> if g.g_is_array then TPtr g.g_ty else g.g_ty
      | None -> error "undefined variable %s" n)

let ty_of ctx fc e = Mc_check.ty_of (lookup_var ctx fc) ctx.env e

let push_a0 ctx =
  emit ctx (Addi (sp, sp, -4));
  emit ctx (Sw (a0, 0, sp))

let pop_to ctx r =
  emit ctx (Lw (r, 0, sp));
  emit ctx (Addi (sp, sp, 4))

(* Evaluate [e] into a0. *)
let rec cexpr ctx fc (e : expr) : unit =
  match e with
  | EInt n -> emit ctx (Li (a0, n))
  | ESizeof t -> emit ctx (Li (a0, Mc_ast.size_of t))
  | EStr s -> emit ctx (Li (a0, intern ctx s))
  | EFnptr f -> emit ctx (La (a0, f))
  | EVar n -> (
      match Hashtbl.find_opt fc.locals n with
      | Some (i, _) -> emit ctx (Lw (a0, local_off i, s0))
      | None -> (
          match Hashtbl.find_opt ctx.globals n with
          | Some g ->
              if g.g_is_array then emit ctx (Li (a0, g.g_addr))
              else begin
                emit ctx (Li (t0, g.g_addr));
                emit ctx (if g.g_ty = TChar then Lbu (a0, 0, t0) else Lw (a0, 0, t0))
              end
          | None -> error "undefined variable %s" n))
  | ECall (f, args) ->
      List.iter
        (fun a ->
          cexpr ctx fc a;
          push_a0 ctx)
        args;
      let n = List.length args in
      for i = n - 1 downto 0 do
        pop_to ctx (a0 + i)
      done;
      emit ctx (Call f)
  | ESyscall (name, args) ->
      List.iter
        (fun a ->
          cexpr ctx fc a;
          push_a0 ctx)
        args;
      let n = List.length args in
      for i = n - 1 downto 0 do
        pop_to ctx (a0 + i)
      done;
      (match Riscv.Rv_linux.nr_of_name name with
      | Some nr -> emit ctx (Li (a7, nr))
      | None -> error "no RV syscall number for %s" name);
      emit ctx Ecall
  | EBuiltin (("memcopy" | "memfill" | "argc" | "argv_len" | "argv_copy"
              | "envc" | "env_len" | "env_copy") as b, args) ->
      List.iter
        (fun a ->
          cexpr ctx fc a;
          push_a0 ctx)
        args;
      let n = List.length args in
      for i = n - 1 downto 0 do
        pop_to ctx (a0 + i)
      done;
      emit ctx (Li (a7, Riscv.Rv_linux.builtin_nr b));
      emit ctx Ecall
  | EBuiltin ("calli", target :: args) ->
      cexpr ctx fc target;
      push_a0 ctx;
      List.iter
        (fun a ->
          cexpr ctx fc a;
          push_a0 ctx)
        args;
      let n = List.length args in
      for i = n - 1 downto 0 do
        pop_to ctx (a0 + i)
      done;
      pop_to ctx t1;
      emit ctx (Jalr (ra, t1, 0))
  | EBuiltin (b, _) -> error "builtin %s not supported on RV32" b
  | EUnop (Neg, a) ->
      cexpr ctx fc a;
      emit ctx (Sub (a0, x0, a0))
  | EUnop (Not, a) ->
      cexpr ctx fc a;
      emit ctx (Sltu (a0, x0, a0));
      emit ctx (Xori (a0, a0, 1))
  | EUnop (Bnot, a) ->
      cexpr ctx fc a;
      emit ctx (Xori (a0, a0, -1))
  | EBinop (And, a, b) ->
      let lfalse = fresh ctx "andf" and lend = fresh ctx "ande" in
      cexpr ctx fc a;
      emit ctx (Beqz (a0, lfalse));
      cexpr ctx fc b;
      emit ctx (Sltu (a0, x0, a0));
      emit ctx (Jmp lend);
      emit ctx (Label lfalse);
      emit ctx (Li (a0, 0));
      emit ctx (Label lend)
  | EBinop (Or, a, b) ->
      let ltrue = fresh ctx "ort" and lend = fresh ctx "ore" in
      cexpr ctx fc a;
      emit ctx (Bnez (a0, ltrue));
      cexpr ctx fc b;
      emit ctx (Sltu (a0, x0, a0));
      emit ctx (Jmp lend);
      emit ctx (Label ltrue);
      emit ctx (Li (a0, 1));
      emit ctx (Label lend)
  | EBinop (op, a, b) -> cbinop ctx fc op a b
  | EAssign (l, r) -> cassign ctx fc l r
  | EIndex (p, i) ->
      let t = ty_of ctx fc e in
      caddr_index ctx fc p i;
      emit ctx (if t = TChar then Lbu (a0, 0, a0) else Lw (a0, 0, a0))
  | EDeref p ->
      let t = ty_of ctx fc e in
      cexpr ctx fc p;
      emit ctx (if t = TChar then Lbu (a0, 0, a0) else Lw (a0, 0, a0))
  | ECast (_, a) -> cexpr ctx fc a
  | ECond (c, a, b) ->
      let lelse = fresh ctx "ce" and lend = fresh ctx "cd" in
      cexpr ctx fc c;
      emit ctx (Beqz (a0, lelse));
      cexpr ctx fc a;
      emit ctx (Jmp lend);
      emit ctx (Label lelse);
      cexpr ctx fc b;
      emit ctx (Label lend)

(* leaves the effective address in a0 *)
and caddr_index ctx fc p i =
  let pt = ty_of ctx fc p in
  let sz = elem_size pt in
  cexpr ctx fc p;
  push_a0 ctx;
  cexpr ctx fc i;
  if sz <> 1 then begin
    emit ctx (Li (t0, sz));
    emit ctx (Mul (a0, a0, t0))
  end;
  pop_to ctx t0;
  emit ctx (Add (a0, t0, a0))

and cbinop ctx fc op a b =
  let ta = ty_of ctx fc a and tb = ty_of ctx fc b in
  (* pointer scaling *)
  let scale_b = match (op, ta) with (Add | Sub), TPtr t -> Mc_ast.size_of t | _ -> 1 in
  let scale_a = match (op, tb) with Add, TPtr t when ta <> TPtr t -> (match ta with TPtr _ -> 1 | _ -> Mc_ast.size_of t) | _ -> 1 in
  cexpr ctx fc a;
  if scale_a <> 1 then begin
    emit ctx (Li (t0, scale_a));
    emit ctx (Mul (a0, a0, t0))
  end;
  push_a0 ctx;
  cexpr ctx fc b;
  if scale_b <> 1 && not (op = Sub && (match tb with TPtr _ -> true | _ -> false))
  then begin
    emit ctx (Li (t0, scale_b));
    emit ctx (Mul (a0, a0, t0))
  end;
  emit ctx (Addi (a1, a0, 0));
  pop_to ctx a0;
  (match op with
  | Add -> emit ctx (Add (a0, a0, a1))
  | Sub ->
      emit ctx (Sub (a0, a0, a1));
      (match (ta, tb) with
      | TPtr t, TPtr _ when Mc_ast.size_of t <> 1 ->
          emit ctx (Li (t0, Mc_ast.size_of t));
          emit ctx (Div (a0, a0, t0))
      | _ -> ())
  | Mul -> emit ctx (Mul (a0, a0, a1))
  | Div -> emit ctx (Div (a0, a0, a1))
  | Mod -> emit ctx (Rem (a0, a0, a1))
  | Shl -> emit ctx (Sll (a0, a0, a1))
  | Shr -> emit ctx (Sra (a0, a0, a1))
  | Band -> emit ctx (And (a0, a0, a1))
  | Bor -> emit ctx (Or (a0, a0, a1))
  | Bxor -> emit ctx (Xor (a0, a0, a1))
  | Lt -> emit ctx (Slt (a0, a0, a1))
  | Gt -> emit ctx (Slt (a0, a1, a0))
  | Le ->
      emit ctx (Slt (a0, a1, a0));
      emit ctx (Xori (a0, a0, 1))
  | Ge ->
      emit ctx (Slt (a0, a0, a1));
      emit ctx (Xori (a0, a0, 1))
  | Eq ->
      emit ctx (Sub (a0, a0, a1));
      emit ctx (Sltu (a0, x0, a0));
      emit ctx (Xori (a0, a0, 1))
  | Ne ->
      emit ctx (Sub (a0, a0, a1));
      emit ctx (Sltu (a0, x0, a0))
  | And | Or -> assert false)

and cassign ctx fc lhs rhs =
  match lhs with
  | EVar n -> (
      match Hashtbl.find_opt fc.locals n with
      | Some (i, _) ->
          cexpr ctx fc rhs;
          emit ctx (Sw (a0, local_off i, s0))
      | None -> (
          match Hashtbl.find_opt ctx.globals n with
          | Some g when not g.g_is_array ->
              cexpr ctx fc rhs;
              emit ctx (Li (t0, g.g_addr));
              emit ctx (if g.g_ty = TChar then Sb (a0, 0, t0) else Sw (a0, 0, t0))
          | Some _ -> error "cannot assign to array %s" n
          | None -> error "undefined variable %s" n))
  | EIndex (p, i) ->
      let t = ty_of ctx fc lhs in
      caddr_index ctx fc p i;
      push_a0 ctx;
      cexpr ctx fc rhs;
      pop_to ctx t0;
      emit ctx (if t = TChar then Sb (a0, 0, t0) else Sw (a0, 0, t0))
  | EDeref p ->
      let t = ty_of ctx fc lhs in
      cexpr ctx fc p;
      push_a0 ctx;
      cexpr ctx fc rhs;
      pop_to ctx t0;
      emit ctx (if t = TChar then Sb (a0, 0, t0) else Sw (a0, 0, t0))
  | _ -> error "not an lvalue"

let rec cstmt ctx fc (s : stmt) : unit =
  match s with
  | SExpr e -> cexpr ctx fc e
  | SDecl (t, n, init) ->
      let idx = fc.nlocals in
      fc.nlocals <- fc.nlocals + 1;
      Hashtbl.replace fc.locals n (idx, t);
      (match init with
      | Some e ->
          cexpr ctx fc e;
          emit ctx (Sw (a0, local_off idx, s0))
      | None -> ())
  | SIf (c, t, e) ->
      let lelse = fresh ctx "ie" and lend = fresh ctx "id" in
      cexpr ctx fc c;
      emit ctx (Beqz (a0, lelse));
      List.iter (cstmt ctx fc) t;
      emit ctx (Jmp lend);
      emit ctx (Label lelse);
      List.iter (cstmt ctx fc) e;
      emit ctx (Label lend)
  | SWhile (c, body) ->
      let head = fresh ctx "wh" and lend = fresh ctx "we" in
      emit ctx (Label head);
      cexpr ctx fc c;
      emit ctx (Beqz (a0, lend));
      fc.loop_stack <- (head, lend) :: fc.loop_stack;
      List.iter (cstmt ctx fc) body;
      fc.loop_stack <- List.tl fc.loop_stack;
      emit ctx (Jmp head);
      emit ctx (Label lend)
  | SFor (init, cond, step, body) ->
      Option.iter (cstmt ctx fc) init;
      let head = fresh ctx "fh" and lcont = fresh ctx "fc" and lend = fresh ctx "fe" in
      emit ctx (Label head);
      (match cond with
      | Some c ->
          cexpr ctx fc c;
          emit ctx (Beqz (a0, lend))
      | None -> ());
      fc.loop_stack <- (lcont, lend) :: fc.loop_stack;
      List.iter (cstmt ctx fc) body;
      fc.loop_stack <- List.tl fc.loop_stack;
      emit ctx (Label lcont);
      Option.iter (cexpr ctx fc) step;
      emit ctx (Jmp head);
      emit ctx (Label lend)
  | SReturn None ->
      emit ctx (Li (a0, 0));
      emit ctx (Jmp fc.ret_label)
  | SReturn (Some e) ->
      cexpr ctx fc e;
      emit ctx (Jmp fc.ret_label)
  | SBreak -> (
      match fc.loop_stack with
      | (_, brk) :: _ -> emit ctx (Jmp brk)
      | [] -> error "break outside loop")
  | SContinue -> (
      match fc.loop_stack with
      | (cont, _) :: _ -> emit ctx (Jmp cont)
      | [] -> error "continue outside loop")
  | SBlock b -> List.iter (cstmt ctx fc) b

(* Count locals (params + decls) to size the frame up front. *)
let rec count_decls (b : stmt list) : int =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | SDecl _ -> 1
      | SIf (_, t, e) -> count_decls t + count_decls e
      | SWhile (_, b) -> count_decls b
      | SFor (i, _, _, b) ->
          count_decls b + (match i with Some (SDecl _) -> 1 | _ -> 0)
      | SBlock b -> count_decls b
      | _ -> 0)
    0 b

let cfunc ctx (f : func) : unit =
  let nparams = List.length f.fn_params in
  let nlocals = nparams + count_decls f.fn_body in
  let frame = (12 + (4 * nlocals) + 15) land lnot 15 in
  let fc =
    {
      locals = Hashtbl.create 16;
      nlocals = nparams;
      ret_label = "." ^ f.fn_name ^ "$ret";
      loop_stack = [];
    }
  in
  List.iteri (fun i (t, n) -> Hashtbl.replace fc.locals n (i, t)) f.fn_params;
  emit ctx (Label f.fn_name);
  emit ctx (Addi (sp, sp, -frame));
  emit ctx (Sw (ra, frame - 4, sp));
  emit ctx (Sw (s0, frame - 8, sp));
  emit ctx (Addi (s0, sp, frame));
  (* spill incoming arguments into their local slots *)
  List.iteri (fun i _ -> emit ctx (Sw (a0 + i, local_off i, s0))) f.fn_params;
  List.iter (cstmt ctx fc) f.fn_body;
  emit ctx (Li (a0, 0)); (* fallthrough return value *)
  emit ctx (Label fc.ret_label);
  emit ctx (Lw (ra, -4, s0));
  emit ctx (Addi (sp, s0, 0));
  emit ctx (Lw (s0, -8, s0));
  emit ctx Ret

let compile (p : program) : rv_image =
  let env = Mc_check.check p in
  let ctx =
    {
      env;
      globals = Hashtbl.create 32;
      strings = Hashtbl.create 32;
      data = [];
      data_end = 1024;
      fnames = Hashtbl.create 32;
      table_labels = Hashtbl.create 8;
      gensym = 0;
      out = [];
    }
  in
  List.iter
    (function
      | GVar (t, n, init) ->
          let addr = ctx.data_end in
          ctx.data_end <- align4 (addr + Mc_ast.size_of t);
          Hashtbl.replace ctx.globals n { g_addr = addr; g_ty = t; g_is_array = false };
          (match init with
          | Some v when v <> 0 ->
              let b = Bytes.create 4 in
              Bytes.set_int32_le b 0 (Int32.of_int v);
              ctx.data <- (addr, Bytes.to_string b) :: ctx.data
          | _ -> ())
      | GArr (t, n, count) ->
          let addr = ctx.data_end in
          ctx.data_end <- align4 (addr + (Mc_ast.size_of t * count)) + 4;
          Hashtbl.replace ctx.globals n { g_addr = addr; g_ty = t; g_is_array = true }
      | GFunc f -> Hashtbl.replace ctx.fnames f.fn_name ())
    p;
  let funcs = List.filter_map (function GFunc f -> Some f | _ -> None) p in
  (* entry shim *)
  let has_rt_init = Hashtbl.mem env.Mc_check.funcs "__rt_init" in
  let main_params =
    match Hashtbl.find_opt env.Mc_check.funcs "main" with
    | Some s -> List.length s.Mc_check.fs_params
    | None -> error "RV target requires a main function"
  in
  emit ctx (Label "_start");
  if has_rt_init then emit ctx (Call "__rt_init");
  (if main_params > 0 then begin
     match (Hashtbl.find_opt ctx.globals "__argc", Hashtbl.find_opt ctx.globals "__argv") with
     | Some ac, Some av ->
         emit ctx (Li (t0, ac.g_addr));
         emit ctx (Lw (a0, 0, t0));
         emit ctx (Li (t0, av.g_addr));
         emit ctx (Lw (a1, 0, t0))
     | _ -> error "main(argc, argv) requires the libc"
   end);
  emit ctx (Call "main");
  (match Riscv.Rv_linux.nr_of_name "exit_group" with
  | Some nr -> emit ctx (Li (a7, nr))
  | None -> assert false);
  emit ctx Ecall;
  List.iter (cfunc ctx) funcs;
  let code, labels = Riscv.Rv_asm.assemble ~base:code_base (List.rev ctx.out) in
  let data = Bytes.make ctx.data_end '\000' in
  List.iter (fun (a, s) -> Bytes.blit_string s 0 data a (String.length s)) ctx.data;
  {
    rv_code = code;
    rv_code_base = code_base;
    rv_data = Bytes.to_string data;
    rv_entry = Hashtbl.find labels "_start";
    rv_sp_init = stack_top;
    rv_heap_base = heap_base;
  }
