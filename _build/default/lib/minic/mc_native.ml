(** MiniC -> host-closure backend: the "native" baseline.

    The program compiles to OCaml closures over an explicit store (a flat
    byte memory laid out exactly like the Wasm target), so it executes
    without any bytecode interpretation — playing the role of natively
    compiled code in the Fig 8 comparison and in differential tests
    against the Wasm and RV32 backends.

    The runner supplies the OS surface: a [sys] callback (the libc ->
    kernel boundary), argv/env accessors, and thread spawning. Safepoint
    polling runs at loop headers, mirroring the engines, so signals reach
    native processes too. *)

open Mc_ast

type hooks = {
  h_sys : string -> int array -> int; (* syscall by name *)
  h_builtin : string -> int array -> int; (* argc/argv_len/.../thread_spawn *)
  h_poll : unit -> unit; (* loop-header safepoint *)
}

(* Execution state passed to every compiled closure. *)
type st = {
  mem : Wasm.Rt.Memory.t;
  hooks : hooks;
  funcs : (st -> int array -> int) array;
  mutable steps : int; (* loop-iteration counter, for metrics *)
}

exception Ret of int
exception Brk
exception Cnt

let wrap v = (v land 0xFFFFFFFF) - (if v land 0x80000000 <> 0 then 0x100000000 else 0)

let load mem ty addr =
  match ty with
  | TChar -> Wasm.Rt.Memory.load8_u mem addr
  | _ -> wrap (Int32.to_int (Wasm.Rt.Memory.load32 mem addr))

let store mem ty addr v =
  match ty with
  | TChar -> Wasm.Rt.Memory.store8 mem addr v
  | _ -> Wasm.Rt.Memory.store32 mem addr (Int32.of_int v)

type gsym = { g_addr : int; g_ty : ty; g_is_array : bool }

type cctx = {
  env : Mc_check.env;
  globals : (string, gsym) Hashtbl.t;
  strings : (string, int) Hashtbl.t;
  mutable data : (int * string) list;
  mutable data_end : int;
  func_idx : (string, int) Hashtbl.t;
  table_idx : (string, int) Hashtbl.t;
}

let align4 n = (n + 3) land lnot 3

let intern ctx s =
  match Hashtbl.find_opt ctx.strings s with
  | Some a -> a
  | None ->
      let a = ctx.data_end in
      ctx.data <- (a, s ^ "\000") :: ctx.data;
      ctx.data_end <- align4 (a + String.length s + 1);
      Hashtbl.replace ctx.strings s a;
      a

type fctx = { locals : (string, int * ty) Hashtbl.t; mutable nlocals : int }

let lookup_var ctx fc n : ty =
  match Hashtbl.find_opt fc.locals n with
  | Some (_, t) -> t
  | None -> (
      match Hashtbl.find_opt ctx.globals n with
      | Some g -> if g.g_is_array then TPtr g.g_ty else g.g_ty
      | None -> error "undefined variable %s" n)

let ty_of ctx fc e = Mc_check.ty_of (lookup_var ctx fc) ctx.env e

(* compile expr -> (st -> int array -> int) where the array holds locals *)
let rec cexpr ctx fc (e : expr) : st -> int array -> int =
  match e with
  | EInt n ->
      let n = wrap n in
      fun _ _ -> n
  | ESizeof t ->
      let s = size_of t in
      fun _ _ -> s
  | EStr s ->
      let a = intern ctx s in
      fun _ _ -> a
  | EFnptr f ->
      let slot = Hashtbl.find ctx.table_idx f in
      fun _ _ -> slot
  | EVar n -> (
      match Hashtbl.find_opt fc.locals n with
      | Some (i, _) -> fun _ l -> l.(i)
      | None -> (
          match Hashtbl.find_opt ctx.globals n with
          | Some g ->
              if g.g_is_array then fun _ _ -> g.g_addr
              else
                let addr = g.g_addr and t = g.g_ty in
                fun st _ -> load st.mem t addr
          | None -> error "undefined variable %s" n))
  | ECall (f, args) ->
      let idx = Hashtbl.find ctx.func_idx f in
      let cargs = Array.of_list (List.map (cexpr ctx fc) args) in
      fun st l ->
        let a = Array.map (fun c -> c st l) cargs in
        st.funcs.(idx) st a
  | ESyscall (name, args) ->
      let cargs = Array.of_list (List.map (cexpr ctx fc) args) in
      fun st l -> st.hooks.h_sys name (Array.map (fun c -> c st l) cargs)
  | EBuiltin ("memcopy", [ d; s; n ]) ->
      let cd = cexpr ctx fc d and cs = cexpr ctx fc s and cn = cexpr ctx fc n in
      fun st l ->
        Wasm.Rt.Memory.copy st.mem ~dst:(cd st l) ~src:(cs st l) ~len:(cn st l);
        0
  | EBuiltin ("memfill", [ d; c; n ]) ->
      let cd = cexpr ctx fc d and cc = cexpr ctx fc c and cn = cexpr ctx fc n in
      fun st l ->
        Wasm.Rt.Memory.fill st.mem ~dst:(cd st l) ~byte:(cc st l) ~len:(cn st l);
        0
  | EBuiltin ("calli", target :: args) ->
      let ct = cexpr ctx fc target in
      let cargs = Array.of_list (List.map (cexpr ctx fc) args) in
      (* slot -> func index, resolved lazily because the callee may be
         compiled after this call site *)
      let inverse = Hashtbl.create 8 in
      let resolve slot =
        if Hashtbl.length inverse = 0 then
          Hashtbl.iter
            (fun f s -> Hashtbl.replace inverse s (Hashtbl.find ctx.func_idx f))
            ctx.table_idx;
        Hashtbl.find_opt inverse slot
      in
      fun st l ->
        let slot = ct st l in
        let a = Array.map (fun c -> c st l) cargs in
        (match resolve slot with
        | Some fi -> st.funcs.(fi) st a
        | None -> error "calli: bad function pointer %d" slot)
  | EBuiltin (b, args) ->
      let cargs = Array.of_list (List.map (cexpr ctx fc) args) in
      fun st l -> st.hooks.h_builtin b (Array.map (fun c -> c st l) cargs)
  | EUnop (Neg, a) ->
      let c = cexpr ctx fc a in
      fun st l -> wrap (-c st l)
  | EUnop (Not, a) ->
      let c = cexpr ctx fc a in
      fun st l -> if c st l = 0 then 1 else 0
  | EUnop (Bnot, a) ->
      let c = cexpr ctx fc a in
      fun st l -> wrap (lnot (c st l))
  | EBinop (And, a, b) ->
      let ca = cexpr ctx fc a and cb = cexpr ctx fc b in
      fun st l -> if ca st l <> 0 && cb st l <> 0 then 1 else 0
  | EBinop (Or, a, b) ->
      let ca = cexpr ctx fc a and cb = cexpr ctx fc b in
      fun st l -> if ca st l <> 0 || cb st l <> 0 then 1 else 0
  | EBinop (op, a, b) -> cbinop ctx fc op a b
  | EAssign (l, r) -> cassign ctx fc l r
  | EIndex (p, i) ->
      let t = ty_of ctx fc e in
      let caddr = caddr_index ctx fc p i in
      fun st l -> load st.mem t (caddr st l)
  | EDeref p ->
      let t = ty_of ctx fc e in
      let cp = cexpr ctx fc p in
      fun st l -> load st.mem t (cp st l)
  | ECast (_, a) -> cexpr ctx fc a
  | ECond (c, a, b) ->
      let cc = cexpr ctx fc c and ca = cexpr ctx fc a and cb = cexpr ctx fc b in
      fun st l -> if cc st l <> 0 then ca st l else cb st l

and cbinop ctx fc op a b =
  let ta = ty_of ctx fc a and tb = ty_of ctx fc b in
  let ca = cexpr ctx fc a and cb = cexpr ctx fc b in
  let sa = elem_size ta and sb = elem_size tb in
  match (op, ta, tb) with
  | Add, TPtr _, _ -> fun st l -> wrap (ca st l + (cb st l * sa))
  | Add, _, TPtr _ -> fun st l -> wrap ((ca st l * sb) + cb st l)
  | Sub, TPtr _, (TInt | TChar) -> fun st l -> wrap (ca st l - (cb st l * sa))
  | Sub, TPtr _, TPtr _ -> fun st l -> (ca st l - cb st l) / sa
  | _ ->
      let f =
        match op with
        | Add -> fun x y -> wrap (x + y)
        | Sub -> fun x y -> wrap (x - y)
        | Mul -> fun x y -> wrap (x * y)
        | Div ->
            fun x y ->
              if y = 0 then error "native: division by zero" else wrap (x / y)
        | Mod ->
            fun x y ->
              if y = 0 then error "native: division by zero" else wrap (x mod y)
        | Shl -> fun x y -> wrap (x lsl (y land 31))
        | Shr -> fun x y -> wrap (x asr (y land 31))
        | Band -> fun x y -> x land y
        | Bor -> fun x y -> x lor y
        | Bxor -> fun x y -> x lxor y
        | Lt -> fun x y -> if x < y then 1 else 0
        | Le -> fun x y -> if x <= y then 1 else 0
        | Gt -> fun x y -> if x > y then 1 else 0
        | Ge -> fun x y -> if x >= y then 1 else 0
        | Eq -> fun x y -> if x = y then 1 else 0
        | Ne -> fun x y -> if x <> y then 1 else 0
        | And | Or -> assert false
      in
      fun st l -> f (ca st l) (cb st l)

and caddr_index ctx fc p i =
  let pt = ty_of ctx fc p in
  let sz = elem_size pt in
  let cp = cexpr ctx fc p and ci = cexpr ctx fc i in
  fun st l -> cp st l + (ci st l * sz)

and cassign ctx fc lhs rhs : st -> int array -> int =
  let cr = cexpr ctx fc rhs in
  match lhs with
  | EVar n -> (
      match Hashtbl.find_opt fc.locals n with
      | Some (i, _) ->
          fun st l ->
            let v = cr st l in
            l.(i) <- v;
            v
      | None -> (
          match Hashtbl.find_opt ctx.globals n with
          | Some g when not g.g_is_array ->
              let addr = g.g_addr and t = g.g_ty in
              fun st l ->
                let v = cr st l in
                store st.mem t addr v;
                v
          | Some _ -> error "cannot assign to array %s" n
          | None -> error "undefined variable %s" n))
  | EIndex (p, i) ->
      let t = ty_of ctx fc lhs in
      let caddr = caddr_index ctx fc p i in
      fun st l ->
        let a = caddr st l in
        let v = cr st l in
        store st.mem t a v;
        v
  | EDeref p ->
      let t = ty_of ctx fc lhs in
      let cp = cexpr ctx fc p in
      fun st l ->
        let a = cp st l in
        let v = cr st l in
        store st.mem t a v;
        v
  | _ -> error "not an lvalue"

let rec cstmt ctx fc (s : stmt) : st -> int array -> unit =
  match s with
  | SExpr e ->
      let c = cexpr ctx fc e in
      fun st l -> ignore (c st l)
  | SDecl (t, n, init) -> (
      let idx = fc.nlocals in
      fc.nlocals <- fc.nlocals + 1;
      Hashtbl.replace fc.locals n (idx, t);
      match init with
      | Some e ->
          let c = cexpr ctx fc e in
          fun st l -> l.(idx) <- c st l
      | None -> fun _ _ -> ())
  | SIf (c, t, e) ->
      let cc = cexpr ctx fc c in
      let ct = cblock ctx fc t and ce = cblock ctx fc e in
      fun st l -> if cc st l <> 0 then ct st l else ce st l
  | SWhile (c, body) ->
      let cc = cexpr ctx fc c in
      let cb = cblock ctx fc body in
      fun st l ->
        (try
           while cc st l <> 0 do
             st.hooks.h_poll ();
             st.steps <- st.steps + 1;
             try cb st l with Cnt -> ()
           done
         with Brk -> ())
  | SFor (init, cond, step, body) ->
      let ci = Option.map (cstmt ctx fc) init in
      let cc = Option.map (cexpr ctx fc) cond in
      let cs = Option.map (cexpr ctx fc) step in
      let cb = cblock ctx fc body in
      fun st l ->
        (match ci with Some c -> c st l | None -> ());
        (try
           while (match cc with Some c -> c st l <> 0 | None -> true) do
             st.hooks.h_poll ();
             st.steps <- st.steps + 1;
             (try cb st l with Cnt -> ());
             match cs with Some c -> ignore (c st l) | None -> ()
           done
         with Brk -> ())
  | SReturn None -> fun _ _ -> raise (Ret 0)
  | SReturn (Some e) ->
      let c = cexpr ctx fc e in
      fun st l -> raise (Ret (c st l))
  | SBreak -> fun _ _ -> raise Brk
  | SContinue -> fun _ _ -> raise Cnt
  | SBlock b -> cblock ctx fc b

and cblock ctx fc (b : stmt list) : st -> int array -> unit =
  let cs = Array.of_list (List.map (cstmt ctx fc) b) in
  fun st l ->
    for i = 0 to Array.length cs - 1 do
      cs.(i) st l
    done

type compiled = {
  nc_mem_image : string; (* initial data segment contents *)
  nc_data_end : int;
  nc_heap_base : int;
  nc_funcs : (st -> int array -> int) array;
  nc_func_idx : (string, int) Hashtbl.t;
  nc_table_idx : (string, int) Hashtbl.t;
  nc_main_params : int;
  nc_argc_addr : int option; (* __argc global *)
  nc_argv_addr : int option;
}

let compile (p : program) : compiled =
  let env = Mc_check.check p in
  let ctx =
    {
      env;
      globals = Hashtbl.create 32;
      strings = Hashtbl.create 32;
      data = [];
      data_end = 1024;
      func_idx = Hashtbl.create 32;
      table_idx = Hashtbl.create 8;
    }
  in
  (* globals/arrays: identical layout policy to the Wasm backend *)
  List.iter
    (function
      | GVar (t, n, init) ->
          let addr = ctx.data_end in
          ctx.data_end <- align4 (addr + size_of t);
          Hashtbl.replace ctx.globals n { g_addr = addr; g_ty = t; g_is_array = false };
          (match init with
          | Some v when v <> 0 ->
              let b = Bytes.create 4 in
              Bytes.set_int32_le b 0 (Int32.of_int v);
              ctx.data <- (addr, Bytes.to_string b) :: ctx.data
          | _ -> ())
      | GArr (t, n, count) ->
          let addr = ctx.data_end in
          ctx.data_end <- align4 (addr + (size_of t * count)) + 4;
          Hashtbl.replace ctx.globals n { g_addr = addr; g_ty = t; g_is_array = true }
      | GFunc _ -> ())
    p;
  let funcs = List.filter_map (function GFunc f -> Some f | _ -> None) p in
  List.iteri (fun i f -> Hashtbl.replace ctx.func_idx f.fn_name i) funcs;
  (* fnptr table slots, matching the Wasm backend's offset-2 policy *)
  let fnptrs = Hashtbl.create 8 in
  let syscalls = Hashtbl.create 1 and builtins = Hashtbl.create 1 in
  List.iter
    (fun f -> List.iter (Mc_wasm.scan_stmt ~syscalls ~builtins ~fnptrs) f.fn_body)
    funcs;
  let names = List.sort compare (Hashtbl.fold (fun k () a -> k :: a) fnptrs []) in
  List.iteri (fun i n -> Hashtbl.replace ctx.table_idx n (i + 2)) names;
  let compiled_funcs =
    Array.of_list
      (List.map
         (fun f ->
           let fc = { locals = Hashtbl.create 16; nlocals = List.length f.fn_params } in
           List.iteri (fun i (t, n) -> Hashtbl.replace fc.locals n (i, t)) f.fn_params;
           let body = cblock ctx fc f.fn_body in
           let nparams = List.length f.fn_params in
           let total = fc.nlocals in
           fun (st : st) (args : int array) ->
             let l = Array.make (max total 1) 0 in
             Array.blit args 0 l 0 (min (Array.length args) nparams);
             (try
                body st l;
                0
              with Ret v -> v))
         funcs)
  in
  (* render the initial data image *)
  let img = Bytes.make ctx.data_end '\000' in
  List.iter
    (fun (addr, s) -> Bytes.blit_string s 0 img addr (String.length s))
    ctx.data;
  let gaddr n =
    Option.map (fun g -> g.g_addr) (Hashtbl.find_opt ctx.globals n)
  in
  {
    nc_mem_image = Bytes.to_string img;
    nc_data_end = ctx.data_end;
    nc_heap_base = (ctx.data_end + 4095) land lnot 4095;
    nc_funcs = compiled_funcs;
    nc_func_idx = ctx.func_idx;
    nc_table_idx = ctx.table_idx;
    nc_main_params =
      (match Hashtbl.find_opt env.Mc_check.funcs "main" with
      | Some s -> List.length s.Mc_check.fs_params
      | None -> 0);
    nc_argc_addr = gaddr "__argc";
    nc_argv_addr = gaddr "__argv";
  }

(** Instantiate a compiled program over a fresh memory and run a function
    by name. Used by the native runner. *)
let make_state (c : compiled) ~(mem : Wasm.Rt.Memory.t) ~(hooks : hooks) : st =
  Wasm.Rt.Memory.write_string mem ~addr:0 c.nc_mem_image;
  { mem; hooks; funcs = c.nc_funcs; steps = 0 }

let call (c : compiled) (st : st) (name : string) (args : int array) : int =
  match Hashtbl.find_opt c.nc_func_idx name with
  | Some i -> c.nc_funcs.(i) st args
  | None -> error "native: no function %s" name

let call_slot (c : compiled) (st : st) (slot : int) (args : int array) : int =
  let f =
    Hashtbl.fold
      (fun name s acc -> if s = slot then Some name else acc)
      c.nc_table_idx None
  in
  match f with
  | Some name -> call c st name args
  | None -> error "native: bad function pointer %d" slot
