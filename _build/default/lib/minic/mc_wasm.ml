(** MiniC -> Wasm(WALI) code generator: the `wasm32-wali-linux` target.

    - Globals, arrays and string literals live in linear memory below
      `__heap_base` (exported for the WALI mmap manager).
    - syscall("name", ...) lowers to a call of import ("wali", "SYS_name")
      with i64-normalized arguments — the name-bound interface, so the
      module's import section is its syscall manifest.
    - fnptr(f) yields f's index in table 0; slots 0/1 stay empty because
      they collide with SIG_DFL/SIG_IGN in sigaction handlers. *)

open Mc_ast
open Wasm
open Wasm.Ast

type gsym = { g_addr : int; g_ty : ty; g_is_array : bool }

type ctx = {
  env : Mc_check.env;
  b : Builder.t;
  globals : (string, gsym) Hashtbl.t;
  strings : (string, int) Hashtbl.t;
  mutable data : (int * string) list;
  mutable data_end : int;
  func_idx : (string, int) Hashtbl.t;
  table_idx : (string, int) Hashtbl.t; (* fnptr slots *)
  syscall_imports : (string, int) Hashtbl.t;
  builtin_imports : (string, int) Hashtbl.t;
}

let align4 n = (n + 3) land lnot 3

(* ---- pre-scan: which imports / fnptrs does the program need? ---- *)

let rec scan_expr ~syscalls ~builtins ~fnptrs (e : expr) =
  let r = scan_expr ~syscalls ~builtins ~fnptrs in
  match e with
  | EInt _ | EStr _ | EVar _ | ESizeof _ -> ()
  | ECall (_, args) -> List.iter r args
  | ESyscall (n, args) ->
      Hashtbl.replace syscalls n (List.length args);
      List.iter r args
  | EBuiltin (b, args) ->
      (match b with
      | "argc" | "argv_len" | "argv_copy" | "envc" | "env_len" | "env_copy"
      | "thread_spawn" ->
          Hashtbl.replace builtins b (List.length args)
      | _ -> ());
      List.iter r args
  | EFnptr f -> Hashtbl.replace fnptrs f ()
  | EUnop (_, a) -> r a
  | EBinop (_, a, b) -> r a; r b
  | EAssign (a, b) -> r a; r b
  | EIndex (a, b) -> r a; r b
  | EDeref a -> r a
  | ECast (_, a) -> r a
  | ECond (a, b, c) -> r a; r b; r c

let rec scan_stmt ~syscalls ~builtins ~fnptrs (s : stmt) =
  let se = scan_expr ~syscalls ~builtins ~fnptrs in
  let sb = List.iter (scan_stmt ~syscalls ~builtins ~fnptrs) in
  match s with
  | SExpr e -> se e
  | SDecl (_, _, init) -> Option.iter se init
  | SIf (c, t, e) -> se c; sb t; sb e
  | SWhile (c, b) -> se c; sb b
  | SFor (i, c, st, b) ->
      Option.iter (scan_stmt ~syscalls ~builtins ~fnptrs) i;
      Option.iter se c;
      Option.iter se st;
      sb b
  | SReturn e -> Option.iter se e
  | SBreak | SContinue -> ()
  | SBlock b -> sb b

(* ---- data segment interning ---- *)

let intern_string ctx s =
  match Hashtbl.find_opt ctx.strings s with
  | Some a -> a
  | None ->
      let a = ctx.data_end in
      ctx.data <- (a, s ^ "\000") :: ctx.data;
      ctx.data_end <- align4 (a + String.length s + 1);
      Hashtbl.replace ctx.strings s a;
      a

(* ---- expression compilation ---- *)

type fctx = {
  locals : (string, int * ty) Hashtbl.t;
  mutable local_types : Types.val_type list; (* reversed extra locals *)
  mutable nlocals : int; (* including params *)
  scratch : int;
  ret : ty;
}

let i32c n = I32_const (Int32.of_int n)

let load_of = function
  | TChar -> I32_load8 (ZX, { offset = 0; align = 0 })
  | _ -> I32_load { offset = 0; align = 2 }

let store_of = function
  | TChar -> I32_store8 { offset = 0; align = 0 }
  | _ -> I32_store { offset = 0; align = 2 }

let lookup_var ctx fc n : ty =
  match Hashtbl.find_opt fc.locals n with
  | Some (_, t) -> t
  | None -> (
      match Hashtbl.find_opt ctx.globals n with
      | Some g -> if g.g_is_array then TPtr g.g_ty else g.g_ty
      | None -> error "undefined variable %s" n)

let ty_of ctx fc e = Mc_check.ty_of (lookup_var ctx fc) ctx.env e

let rec compile_expr ctx fc (e : expr) : instr list =
  match e with
  | EInt n -> [ I32_const (Int32.of_int n) ]
  | ESizeof t -> [ i32c (size_of t) ]
  | EStr s -> [ i32c (intern_string ctx s) ]
  | EFnptr f -> [ i32c (Hashtbl.find ctx.table_idx f) ]
  | EVar n -> (
      match Hashtbl.find_opt fc.locals n with
      | Some (i, _) -> [ Local_get i ]
      | None -> (
          match Hashtbl.find_opt ctx.globals n with
          | Some g ->
              if g.g_is_array then [ i32c g.g_addr ]
              else [ i32c g.g_addr; load_of g.g_ty ]
          | None -> error "undefined variable %s" n))
  | ECall (f, args) ->
      List.concat_map (compile_expr ctx fc) args
      @ [ Call (Hashtbl.find ctx.func_idx f) ]
  | ESyscall (name, args) ->
      List.concat_map
        (fun a -> compile_expr ctx fc a @ [ I64_extend_i32 SX ])
        args
      @ [ Call (Hashtbl.find ctx.syscall_imports name); I32_wrap_i64 ]
  | EBuiltin ("memcopy", [ d; s; n ]) ->
      compile_expr ctx fc d @ compile_expr ctx fc s @ compile_expr ctx fc n
      @ [ Memory_copy ]
  | EBuiltin ("memfill", [ d; c; n ]) ->
      compile_expr ctx fc d @ compile_expr ctx fc c @ compile_expr ctx fc n
      @ [ Memory_fill ]
  | EBuiltin ("calli", target :: args) ->
      let ti =
        Builder.type_idx ctx.b
          ~params:(List.map (fun _ -> Types.T_i32) args)
          ~results:[ Types.T_i32 ]
      in
      List.concat_map (compile_expr ctx fc) args
      @ compile_expr ctx fc target
      @ [ Call_indirect (ti, 0) ]
  | EBuiltin (b, args) ->
      List.concat_map (compile_expr ctx fc) args
      @ [ Call (Hashtbl.find ctx.builtin_imports b) ]
  | EUnop (Neg, a) -> (i32c 0 :: compile_expr ctx fc a) @ [ I32_binop Sub ]
  | EUnop (Not, a) -> compile_expr ctx fc a @ [ I32_eqz ]
  | EUnop (Bnot, a) -> compile_expr ctx fc a @ [ i32c (-1); I32_binop Xor ]
  | EBinop (And, a, b) ->
      compile_expr ctx fc a
      @ [
          If
            ( Bt_val Types.T_i32,
              compile_expr ctx fc b @ [ I32_eqz; I32_eqz ],
              [ i32c 0 ] );
        ]
  | EBinop (Or, a, b) ->
      compile_expr ctx fc a
      @ [
          If
            ( Bt_val Types.T_i32,
              [ i32c 1 ],
              compile_expr ctx fc b @ [ I32_eqz; I32_eqz ] );
        ]
  | EBinop (op, a, b) -> compile_binop ctx fc op a b
  | EAssign (l, r) -> compile_assign ctx fc l r ~want_value:true
  | EIndex (p, i) ->
      let et = ty_of ctx fc e in
      compile_addr_index ctx fc p i @ [ load_of et ]
  | EDeref p ->
      let et = ty_of ctx fc e in
      compile_expr ctx fc p @ [ load_of et ]
  | ECast (_, a) -> compile_expr ctx fc a
  | ECond (c, a, b) ->
      compile_expr ctx fc c
      @ [ If (Bt_val Types.T_i32, compile_expr ctx fc a, compile_expr ctx fc b) ]

and compile_binop ctx fc op a b : instr list =
  let ta = ty_of ctx fc a and tb = ty_of ctx fc b in
  let ea = compile_expr ctx fc a and eb = compile_expr ctx fc b in
  let scale t es =
    let sz = elem_size t in
    if sz = 1 then es else es @ [ i32c sz; I32_binop Mul ]
  in
  match (op, ta, tb) with
  | Add, TPtr _, _ -> ea @ scale ta eb @ [ I32_binop Add ]
  | Add, _, TPtr _ -> scale tb ea @ eb @ [ I32_binop Add ]
  | Sub, TPtr _, (TInt | TChar) -> ea @ scale ta eb @ [ I32_binop Sub ]
  | Sub, TPtr _, TPtr _ ->
      let sz = elem_size ta in
      ea @ eb @ [ I32_binop Sub ]
      @ (if sz = 1 then [] else [ i32c sz; I32_binop Div_s ])
  | _ ->
      let ins =
        match op with
        | Add -> I32_binop Add
        | Sub -> I32_binop Sub
        | Mul -> I32_binop Mul
        | Div -> I32_binop Div_s
        | Mod -> I32_binop Rem_s
        | Shl -> I32_binop Shl
        | Shr -> I32_binop Shr_s
        | Band -> I32_binop And
        | Bor -> I32_binop Or
        | Bxor -> I32_binop Xor
        | Lt -> I32_relop Lt_s
        | Le -> I32_relop Le_s
        | Gt -> I32_relop Gt_s
        | Ge -> I32_relop Ge_s
        | Eq -> I32_relop Eq
        | Ne -> I32_relop Ne
        | And | Or -> assert false
      in
      ea @ eb @ [ ins ]

and compile_addr_index ctx fc p i : instr list =
  let pt = ty_of ctx fc p in
  let sz = elem_size pt in
  compile_expr ctx fc p
  @ compile_expr ctx fc i
  @ (if sz = 1 then [] else [ i32c sz; I32_binop Mul ])
  @ [ I32_binop Add ]

and compile_assign ctx fc l r ~want_value : instr list =
  match l with
  | EVar n -> (
      match Hashtbl.find_opt fc.locals n with
      | Some (i, _) ->
          compile_expr ctx fc r @ [ (if want_value then Local_tee i else Local_set i) ]
      | None -> (
          match Hashtbl.find_opt ctx.globals n with
          | Some g when not g.g_is_array ->
              compile_expr ctx fc r
              @ [ Local_set fc.scratch; i32c g.g_addr; Local_get fc.scratch;
                  store_of g.g_ty ]
              @ (if want_value then [ Local_get fc.scratch ] else [])
          | Some _ -> error "cannot assign to array %s" n
          | None -> error "undefined variable %s" n))
  | EIndex (p, i) ->
      let et = ty_of ctx fc l in
      compile_addr_index ctx fc p i
      @ compile_expr ctx fc r
      @
      if want_value then
        [ Local_tee fc.scratch; store_of et; Local_get fc.scratch ]
      else [ store_of et ]
  | EDeref p ->
      let et = ty_of ctx fc l in
      compile_expr ctx fc p
      @ compile_expr ctx fc r
      @
      if want_value then
        [ Local_tee fc.scratch; store_of et; Local_get fc.scratch ]
      else [ store_of et ]
  | _ -> error "not an lvalue"

(* ---- statements ---- *)

type label = L_break | L_continue | L_other

let rec compile_stmt ctx fc (labels : label list) (s : stmt) : instr list =
  match s with
  | SExpr (EAssign (l, r)) -> compile_assign ctx fc l r ~want_value:false
  | SExpr e ->
      let t = ty_of ctx fc e in
      compile_expr ctx fc e @ (if t = TVoid then [] else [ Drop ])
  | SDecl (t, n, init) ->
      let idx = fc.nlocals in
      fc.nlocals <- fc.nlocals + 1;
      fc.local_types <- Types.T_i32 :: fc.local_types;
      Hashtbl.replace fc.locals n (idx, t);
      (match init with
      | Some e -> compile_expr ctx fc e @ [ Local_set idx ]
      | None -> [])
  | SIf (c, t, e) ->
      compile_expr ctx fc c
      @ [
          If
            ( Bt_none,
              compile_block ctx fc (L_other :: labels) t,
              compile_block ctx fc (L_other :: labels) e );
        ]
  | SWhile (c, body) ->
      let inner = L_continue :: L_break :: labels in
      [
        Block
          ( Bt_none,
            [
              Loop
                ( Bt_none,
                  compile_expr ctx fc c
                  @ [ I32_eqz; Br_if 1 ]
                  @ compile_block ctx fc inner body
                  @ [ Br 0 ] );
            ] );
      ]
  | SFor (init, cond, step, body) ->
      let init_code =
        match init with Some s -> compile_stmt ctx fc labels s | None -> []
      in
      (* labels inside body: Block(cont) :: Loop :: Block(brk) *)
      let inner = L_continue :: L_other :: L_break :: labels in
      (* cond sits directly in the Loop: 0 = loop header, 1 = break block *)
      let cond_code =
        match cond with
        | Some c -> compile_expr ctx fc c @ [ I32_eqz; Br_if 1 ]
        | None -> []
      in
      let step_code =
        match step with
        | Some e ->
            let t = ty_of ctx fc e in
            (match e with
            | EAssign (l, r) -> compile_assign ctx fc l r ~want_value:false
            | _ -> compile_expr ctx fc e @ (if t = TVoid then [] else [ Drop ]))
        | None -> []
      in
      init_code
      @ [
          Block
            ( Bt_none,
              [
                Loop
                  ( Bt_none,
                    cond_code
                    @ [ Block (Bt_none, compile_block ctx fc inner body) ]
                    @ step_code @ [ Br 0 ] );
              ] );
        ]
  | SReturn None -> [ Return ]
  | SReturn (Some e) -> compile_expr ctx fc e @ [ Return ]
  | SBreak ->
      let rec find i = function
        | [] -> error "break outside loop"
        | L_break :: _ -> i
        | _ :: rest -> find (i + 1) rest
      in
      [ Br (find 0 labels) ]
  | SContinue ->
      let rec find i = function
        | [] -> error "continue outside loop"
        | L_continue :: _ -> i
        | _ :: rest -> find (i + 1) rest
      in
      [ Br (find 0 labels) ]
  | SBlock b -> compile_block ctx fc labels b

and compile_block ctx fc labels (b : stmt list) : instr list =
  List.concat_map (compile_stmt ctx fc labels) b

(* ---- program ---- *)

let compile ?(mem_min_pages = 0) ?(mem_max_pages = 1024) ?(data_base = 1024)
    (p : program) : module_ =
  let env = Mc_check.check p in
  let b = Builder.create ~name:"minic" () in
  let syscalls = Hashtbl.create 16
  and builtins = Hashtbl.create 8
  and fnptrs = Hashtbl.create 8 in
  List.iter
    (function
      | GFunc f -> List.iter (scan_stmt ~syscalls ~builtins ~fnptrs) f.fn_body
      | GVar _ | GArr _ -> ())
    p;
  let ctx =
    {
      env;
      b;
      globals = Hashtbl.create 32;
      strings = Hashtbl.create 32;
      data = [];
      data_end = data_base;
      func_idx = Hashtbl.create 32;
      table_idx = Hashtbl.create 8;
      syscall_imports = Hashtbl.create 16;
      builtin_imports = Hashtbl.create 8;
    }
  in
  (* imports first *)
  Hashtbl.iter
    (fun name arity ->
      let idx =
        Builder.import_func b ~module_:"wali" ~name:("SYS_" ^ name)
          ~params:(List.init arity (fun _ -> Types.T_i64))
          ~results:[ Types.T_i64 ]
      in
      Hashtbl.replace ctx.syscall_imports name idx)
    syscalls;
  let builtin_import_name = function
    | "argc" -> "get_argc"
    | "argv_len" -> "get_argv_len"
    | "argv_copy" -> "copy_argv"
    | "envc" -> "get_envc"
    | "env_len" -> "get_env_len"
    | "env_copy" -> "copy_env"
    | "thread_spawn" -> "thread_spawn"
    | b -> error "unknown builtin import %s" b
  in
  Hashtbl.iter
    (fun name arity ->
      let idx =
        Builder.import_func b ~module_:"wali" ~name:(builtin_import_name name)
          ~params:(List.init arity (fun _ -> Types.T_i32))
          ~results:[ Types.T_i32 ]
      in
      Hashtbl.replace ctx.builtin_imports name idx)
    builtins;
  (* globals and arrays in the data region *)
  List.iter
    (function
      | GVar (t, n, init) ->
          let addr = ctx.data_end in
          ctx.data_end <- align4 (addr + size_of t);
          Hashtbl.replace ctx.globals n { g_addr = addr; g_ty = t; g_is_array = false };
          (match init with
          | Some v when v <> 0 ->
              let bytes = Bytes.create 4 in
              Bytes.set_int32_le bytes 0 (Int32.of_int v);
              ctx.data <- (addr, Bytes.to_string bytes) :: ctx.data
          | _ -> ())
      | GArr (t, n, count) ->
          let addr = ctx.data_end in
          ctx.data_end <- align4 (addr + (size_of t * count)) + 4;
          Hashtbl.replace ctx.globals n { g_addr = addr; g_ty = t; g_is_array = true }
      | GFunc _ -> ())
    p;
  (* declare all functions (forward references allowed) *)
  let funcs = List.filter_map (function GFunc f -> Some f | _ -> None) p in
  List.iter
    (fun f ->
      let params = List.map (fun _ -> Types.T_i32) f.fn_params in
      let results = if f.fn_ret = TVoid then [] else [ Types.T_i32 ] in
      let idx = Builder.declare_func b ~name:f.fn_name ~params ~results in
      Hashtbl.replace ctx.func_idx f.fn_name idx)
    funcs;
  (* fnptr table: slots 0/1 reserved (SIG_DFL / SIG_IGN) *)
  let fnptr_names = Hashtbl.fold (fun k () acc -> k :: acc) fnptrs [] in
  let fnptr_names = List.sort compare fnptr_names in
  List.iteri
    (fun i name -> Hashtbl.replace ctx.table_idx name (i + 2))
    fnptr_names;
  ignore (Builder.add_table b ~min:(2 + List.length fnptr_names) ~max:None);
  if fnptr_names <> [] then
    Builder.add_elem b ~table:0 ~offset:2
      (List.map
         (fun n ->
           match Hashtbl.find_opt ctx.func_idx n with
           | Some i -> i
           | None -> error "fnptr of unknown function %s" n)
         fnptr_names);
  (* compile bodies *)
  List.iter
    (fun f ->
      let fc =
        {
          locals = Hashtbl.create 16;
          local_types = [];
          nlocals = List.length f.fn_params + 1;
          scratch = List.length f.fn_params;
          ret = f.fn_ret;
        }
      in
      List.iteri
        (fun i (t, n) -> Hashtbl.replace fc.locals n (i, t))
        f.fn_params;
      (* scratch local is at index nparams *)
      fc.local_types <- [ Types.T_i32 ];
      let body = compile_block ctx fc [] f.fn_body in
      let body = if f.fn_ret = TVoid then body else body @ [ i32c 0 ] in
      Builder.define b
        (Hashtbl.find ctx.func_idx f.fn_name)
        ~locals:(List.rev fc.local_types) body)
    funcs;
  (* synthesize _start if there is a main *)
  (match Hashtbl.find_opt ctx.func_idx "main" with
  | Some main_idx ->
      let rt_init = Hashtbl.find_opt ctx.func_idx "__rt_init" in
      let exit_import =
        match Hashtbl.find_opt ctx.syscall_imports "exit_group" with
        | Some i -> i
        | None -> error "program must use syscall(\"exit_group\") via the libc"
      in
      let argc_g = Hashtbl.find_opt ctx.globals "__argc" in
      let argv_g = Hashtbl.find_opt ctx.globals "__argv" in
      let main_arity =
        (Hashtbl.find env.Mc_check.funcs "main").Mc_check.fs_params |> List.length
      in
      let call_main =
        if main_arity = 0 then [ Call main_idx ]
        else
          match (argc_g, argv_g) with
          | Some ac, Some av ->
              [
                i32c ac.g_addr; I32_load { offset = 0; align = 2 };
                i32c av.g_addr; I32_load { offset = 0; align = 2 };
                Call main_idx;
              ]
          | _ -> error "main(argc, argv) requires the libc (__argc/__argv)"
      in
      let body =
        (match rt_init with Some i -> [ Call i ] | None -> [])
        @ call_main
        @ [ I64_extend_i32 SX; Call exit_import; Drop ]
      in
      let start = Builder.func b ~name:"_start" ~params:[] ~results:[] ~locals:[] body in
      Builder.export_func b "_start" start
  | None -> ());
  (* memory: enough pages for data + slack *)
  let data_pages = (ctx.data_end / Types.page_size) + 2 in
  let min_pages = max mem_min_pages data_pages in
  ignore (Builder.add_memory b ~min:min_pages ~max:(Some mem_max_pages));
  Builder.export_memory b "memory" 0;
  List.iter (fun (addr, bytes) -> Builder.add_data b ~offset:addr bytes) ctx.data;
  let hb = Builder.add_global b ~mut:Types.Immutable ~typ:Types.T_i32
      [ I32_const (Int32.of_int ((ctx.data_end + 4095) land lnot 4095)) ] in
  Builder.export_global b "__heap_base" hb;
  Builder.build b
