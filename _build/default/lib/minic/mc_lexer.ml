(** MiniC lexer. *)

type token =
  | INT of int
  | STR of string
  | CHAR of int
  | IDENT of string
  | KW of string (* int char void if else while for return break continue sizeof *)
  | PUNCT of string (* operators and punctuation *)
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
  mutable tok_line : int;
}

let keywords =
  [ "int"; "char"; "void"; "if"; "else"; "while"; "for"; "return"; "break";
    "continue"; "sizeof" ]

let fail lx fmt =
  Printf.ksprintf (fun s -> Mc_ast.error "line %d: %s" lx.tok_line s) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident c = is_ident_start c || is_digit c

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let rec skip_ws lx =
  match peek_char lx with
  | Some ('\n') ->
      lx.line <- lx.line + 1;
      lx.pos <- lx.pos + 1;
      skip_ws lx
  | Some (' ' | '\t' | '\r') ->
      lx.pos <- lx.pos + 1;
      skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
      while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
        lx.pos <- lx.pos + 1
      done;
      skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
      lx.pos <- lx.pos + 2;
      let rec go () =
        if lx.pos + 1 >= String.length lx.src then Mc_ast.error "unterminated comment"
        else if lx.src.[lx.pos] = '*' && lx.src.[lx.pos + 1] = '/' then lx.pos <- lx.pos + 2
        else begin
          if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
          lx.pos <- lx.pos + 1;
          go ()
        end
      in
      go ();
      skip_ws lx
  | _ -> ()

let escape lx c =
  match c with
  | 'n' -> 10
  | 't' -> 9
  | 'r' -> 13
  | '0' -> 0
  | '\\' -> 92
  | '\'' -> 39
  | '"' -> 34
  | c -> fail lx "bad escape \\%c" c

let scan lx : token =
  skip_ws lx;
  lx.tok_line <- lx.line;
  match peek_char lx with
  | None -> EOF
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let s = String.sub lx.src start (lx.pos - start) in
      if List.mem s keywords then KW s else IDENT s
  | Some c when is_digit c ->
      let start = lx.pos in
      if c = '0' && lx.pos + 1 < String.length lx.src
         && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
      then begin
        lx.pos <- lx.pos + 2;
        while
          lx.pos < String.length lx.src
          && (is_digit lx.src.[lx.pos]
             || (Char.lowercase_ascii lx.src.[lx.pos] >= 'a'
                && Char.lowercase_ascii lx.src.[lx.pos] <= 'f'))
        do
          lx.pos <- lx.pos + 1
        done;
        INT (int_of_string (String.sub lx.src start (lx.pos - start)))
      end
      else begin
        while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
          lx.pos <- lx.pos + 1
        done;
        INT (int_of_string (String.sub lx.src start (lx.pos - start)))
      end
  | Some '"' ->
      lx.pos <- lx.pos + 1;
      let b = Buffer.create 16 in
      let rec go () =
        if lx.pos >= String.length lx.src then fail lx "unterminated string"
        else
          match lx.src.[lx.pos] with
          | '"' -> lx.pos <- lx.pos + 1
          | '\\' ->
              lx.pos <- lx.pos + 1;
              Buffer.add_char b (Char.chr (escape lx lx.src.[lx.pos]));
              lx.pos <- lx.pos + 1;
              go ()
          | c ->
              Buffer.add_char b c;
              lx.pos <- lx.pos + 1;
              go ()
      in
      go ();
      STR (Buffer.contents b)
  | Some '\'' ->
      lx.pos <- lx.pos + 1;
      let v =
        match lx.src.[lx.pos] with
        | '\\' ->
            lx.pos <- lx.pos + 1;
            let v = escape lx lx.src.[lx.pos] in
            lx.pos <- lx.pos + 1;
            v
        | c ->
            lx.pos <- lx.pos + 1;
            Char.code c
      in
      if lx.pos >= String.length lx.src || lx.src.[lx.pos] <> '\'' then
        fail lx "unterminated char literal";
      lx.pos <- lx.pos + 1;
      CHAR v
  | Some _ ->
      let two =
        if lx.pos + 1 < String.length lx.src then String.sub lx.src lx.pos 2
        else ""
      in
      if List.mem two [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "-=" ]
      then begin
        lx.pos <- lx.pos + 2;
        PUNCT two
      end
      else begin
        let c = lx.src.[lx.pos] in
        lx.pos <- lx.pos + 1;
        PUNCT (String.make 1 c)
      end

let create src =
  let lx = { src; pos = 0; line = 1; tok = EOF; tok_line = 1 } in
  lx.tok <- scan lx;
  lx

let token lx = lx.tok
let line lx = lx.tok_line

let advance lx = lx.tok <- scan lx

let token_to_string = function
  | INT n -> string_of_int n
  | STR s -> Printf.sprintf "%S" s
  | CHAR c -> Printf.sprintf "'%c'" (Char.chr c)
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
