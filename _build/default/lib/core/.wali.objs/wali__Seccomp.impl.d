lib/core/seccomp.ml: Hashtbl Kernel List Option
