lib/core/engine.ml: Array Binary Code Hashtbl Int32 Interp Kernel Link List Mmap_mgr Rt Seccomp Sigset Strace Task Values Wasm
