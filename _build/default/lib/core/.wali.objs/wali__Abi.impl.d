lib/core/abi.ml: Buffer Bytes Char Int32 Int64 Kernel List Rt String Wasm
