lib/core/strace.ml: Hashtbl Int64 List Printf String
