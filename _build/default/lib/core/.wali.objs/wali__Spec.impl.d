lib/core/spec.ml: List Tables
