lib/core/mmap_mgr.ml: Bytes Kernel List Rt Types Wasm
