(** The WALI syscall specification: name-bound, statically-typed virtual
    syscalls forming the union across supported ISAs (paper §3.5).

    Every WALI syscall is imported as [("wali", "SYS_" ^ name)] with all
    arguments normalized to i64 and an i64 result carrying the kernel
    convention (negative values are -errno). A binary's import section is
    therefore its complete syscall manifest, which is what the Table 1
    porting analysis inspects. *)

type entry = {
  name : string;
  arity : int;
  (* Implementation metadata reported in Table 2. *)
  loc : int; (* handler size, lines of code *)
  stateful : bool; (* maintains WALI-internal state *)
  implemented : bool; (* false = auto-generated ENOSYS passthrough stub *)
}

let s ?(loc = 4) ?(stateful = false) ?(impl = true) name arity =
  { name; arity; loc; stateful; implemented = impl }

(** The implemented set: the "critical mass" of ~140 calls (§4). Arity is
    the Linux argument count. LoC reflects this repository's handlers. *)
let implemented : entry list =
  [
    s "read" 3;
    s "write" 3 ~loc:5;
    s "open" 3;
    s "openat" 4;
    s "close" 1 ~loc:3;
    s "stat" 2 ~loc:8;
    s "fstat" 2;
    s "lstat" 2 ~loc:6;
    s "newfstatat" 4 ~loc:8;
    s "poll" 3 ~loc:12;
    s "ppoll" 4 ~loc:12;
    s "lseek" 3 ~loc:3;
    s "mmap" 6 ~loc:30 ~stateful:true;
    s "mremap" 5 ~loc:18 ~stateful:true;
    s "munmap" 2 ~loc:12 ~stateful:true;
    s "mprotect" 3;
    s "msync" 3 ~loc:6 ~stateful:true;
    s "madvise" 3 ~loc:2;
    s "mincore" 3 ~loc:2;
    s "brk" 1 ~loc:3 ~stateful:true;
    s "rt_sigaction" 4 ~loc:40 ~stateful:true;
    s "rt_sigprocmask" 4 ~loc:5;
    s "rt_sigpending" 2 ~loc:4;
    s "rt_sigsuspend" 2 ~loc:8;
    s "rt_sigreturn" 0 ~loc:2;
    s "sigaltstack" 2 ~loc:2;
    s "ioctl" 3;
    s "pread64" 4;
    s "pwrite64" 4;
    s "readv" 3 ~loc:9;
    s "writev" 3 ~loc:10;
    s "access" 2 ~loc:8;
    s "faccessat" 3 ~loc:8;
    s "pipe" 1 ~loc:6;
    s "pipe2" 2 ~loc:6;
    s "select" 5 ~loc:14;
    s "pselect6" 6 ~loc:14;
    s "sched_yield" 0 ~loc:2;
    s "dup" 1 ~loc:3;
    s "dup2" 2 ~loc:4;
    s "dup3" 3 ~loc:4;
    s "pause" 0 ~loc:3;
    s "nanosleep" 2 ~loc:6;
    s "clock_nanosleep" 4 ~loc:6;
    s "alarm" 1 ~loc:4;
    s "setitimer" 3 ~loc:8;
    s "getitimer" 2 ~loc:4;
    s "getpid" 0 ~loc:1;
    s "getppid" 0 ~loc:1;
    s "gettid" 0 ~loc:1;
    s "socket" 3 ~loc:5;
    s "connect" 3 ~loc:8;
    s "accept" 3 ~loc:7;
    s "accept4" 4 ~loc:7;
    s "sendto" 6 ~loc:8;
    s "recvfrom" 6 ~loc:8;
    s "shutdown" 2 ~loc:3;
    s "bind" 3 ~loc:7;
    s "listen" 2 ~loc:3;
    s "getsockname" 3 ~loc:6;
    s "getpeername" 3 ~loc:6;
    s "socketpair" 4 ~loc:7;
    s "setsockopt" 5 ~loc:5;
    s "getsockopt" 5 ~loc:6;
    s "clone" 5 ~loc:100 ~stateful:true;
    s "fork" 0 ~loc:1 ~stateful:true;
    s "vfork" 0 ~loc:1 ~stateful:true;
    s "execve" 3 ~loc:25 ~stateful:true;
    s "exit" 1 ~loc:2;
    s "exit_group" 1 ~loc:3;
    s "wait4" 4 ~loc:12;
    s "waitid" 5 ~loc:12;
    s "kill" 2 ~loc:3;
    s "tkill" 2 ~loc:3;
    s "tgkill" 3 ~loc:3;
    s "uname" 1 ~loc:8;
    s "fcntl" 3 ~loc:10;
    s "flock" 2 ~loc:2;
    s "fsync" 1 ~loc:2;
    s "fdatasync" 1 ~loc:2;
    s "truncate" 2 ~loc:5;
    s "ftruncate" 2 ~loc:3;
    s "getdents64" 3 ~loc:14;
    s "getcwd" 2 ~loc:5;
    s "chdir" 1 ~loc:3;
    s "fchdir" 1 ~loc:3;
    s "rename" 2 ~loc:5;
    s "renameat" 4 ~loc:5;
    s "renameat2" 5 ~loc:5;
    s "mkdir" 2 ~loc:4;
    s "mkdirat" 3 ~loc:4;
    s "rmdir" 1 ~loc:4;
    s "link" 2 ~loc:5;
    s "linkat" 5 ~loc:5;
    s "unlink" 1 ~loc:4;
    s "unlinkat" 3 ~loc:4;
    s "symlink" 2 ~loc:4;
    s "symlinkat" 3 ~loc:4;
    s "readlink" 3 ~loc:6;
    s "readlinkat" 4 ~loc:6;
    s "chmod" 2 ~loc:4;
    s "fchmod" 2 ~loc:4;
    s "fchmodat" 3 ~loc:4;
    s "chown" 3 ~loc:4;
    s "fchown" 3 ~loc:4;
    s "fchownat" 5 ~loc:4;
    s "lchown" 3 ~loc:4;
    s "umask" 1 ~loc:2;
    s "gettimeofday" 2 ~loc:5;
    s "clock_gettime" 2 ~loc:4;
    s "clock_getres" 2 ~loc:3;
    s "time" 1 ~loc:2;
    s "getrlimit" 2 ~loc:5;
    s "setrlimit" 2 ~loc:2;
    s "prlimit64" 4 ~loc:5;
    s "getrusage" 2 ~loc:5;
    s "sysinfo" 1 ~loc:6;
    s "times" 1 ~loc:4;
    s "getuid" 0 ~loc:1;
    s "getgid" 0 ~loc:1;
    s "geteuid" 0 ~loc:1;
    s "getegid" 0 ~loc:1;
    s "setuid" 1 ~loc:2;
    s "setgid" 1 ~loc:2;
    s "getgroups" 2 ~loc:2;
    s "setpgid" 2 ~loc:3;
    s "getpgid" 1 ~loc:3;
    s "getpgrp" 0 ~loc:2;
    s "setsid" 0 ~loc:3;
    s "getsid" 1 ~loc:2;
    s "utimensat" 4 ~loc:6;
    s "futex" 6 ~loc:6;
    s "set_tid_address" 1 ~loc:2;
    s "set_robust_list" 2 ~loc:2;
    s "getrandom" 3 ~loc:5;
    s "statfs" 2 ~loc:6;
    s "fstatfs" 2 ~loc:6;
    s "sync" 0 ~loc:1;
    s "sched_getaffinity" 3 ~loc:4;
    s "sched_setaffinity" 3 ~loc:2;
    s "prctl" 5 ~loc:4;
    s "sendfile" 4 ~loc:10;
    s "fadvise64" 4 ~loc:1;
    s "membarrier" 2 ~loc:1;
  ]

(** Remaining Linux API: auto-generated passthrough stubs that return
    -ENOSYS with a trace entry, matching the paper's claim that >85% of
    the surface is mechanically generatable (§5/§6). *)
let stubs : entry list =
  let implemented_names = List.map (fun e -> e.name) implemented in
  Tables.Linux_tables.all
  |> List.filter_map (fun (t : Tables.Linux_tables.entry) ->
         if List.mem t.Tables.Linux_tables.name implemented_names then None
         else Some (s ~loc:1 ~impl:false t.Tables.Linux_tables.name 6))

let all : entry list = implemented @ stubs

let find name = List.find_opt (fun e -> e.name = name) all

let import_module = "wali"
let import_name name = "SYS_" ^ name

(** Environment/argument support methods (paper §3.4). *)
let env_methods =
  [ ("get_argc", 0); ("get_argv_len", 1); ("copy_argv", 2);
    ("get_envc", 0); ("get_env_len", 1); ("copy_env", 2) ]

let implemented_count = List.length implemented
let total_count = List.length all
