(** Address-space translation and ISA-portable layout (ABI) conversion
    (paper §3.2, §3.5).

    WALI syscalls are zero-copy wherever possible: buffer arguments are
    translated to (bounds-checked) views of the Wasm linear memory and
    handed straight to the kernel. The handful of struct-typed arguments
    (kstat, iovec, timespec, sigaction, pollfd, dirent64, sockaddr) use
    WALI's dedicated portable layouts defined here; the MiniC libc is
    written against the same offsets. *)

open Wasm

exception Efault
(** Raised when a guest pointer fails translation; the dispatcher maps it
    to -EFAULT, like the kernel. *)

type mem = Rt.Memory.t

let check (m : mem) addr len =
  if addr < 0 || len < 0 || addr + len > Rt.Memory.size_bytes m then raise Efault

(** Translate a guest pointer to a host view: the backing [Bytes.t] plus
    the validated offset. This is the zero-copy path. *)
let buffer (m : mem) ~addr ~len : Bytes.t * int =
  check m addr len;
  (m.Rt.Memory.data, addr)

let u8 (m : mem) addr = check m addr 1; Char.code (Bytes.get m.Rt.Memory.data addr)
let u16 (m : mem) addr = check m addr 2; Bytes.get_uint16_le m.Rt.Memory.data addr
let i32 (m : mem) addr = check m addr 4; Bytes.get_int32_le m.Rt.Memory.data addr
let i64 (m : mem) addr = check m addr 8; Bytes.get_int64_le m.Rt.Memory.data addr
let u32i (m : mem) addr = Int32.to_int (i32 m addr) land 0xFFFFFFFF

let set_u8 (m : mem) addr v = check m addr 1; Bytes.set_uint8 m.Rt.Memory.data addr (v land 0xff)
let set_u16 (m : mem) addr v = check m addr 2; Bytes.set_uint16_le m.Rt.Memory.data addr (v land 0xffff)
let set_i32 (m : mem) addr v = check m addr 4; Bytes.set_int32_le m.Rt.Memory.data addr v
let set_i64 (m : mem) addr v = check m addr 8; Bytes.set_int64_le m.Rt.Memory.data addr v
let set_i32i (m : mem) addr v = set_i32 m addr (Int32.of_int v)

let cstring (m : mem) addr : string =
  try Rt.Memory.read_cstring m ~addr with Rt.Memory.Bounds -> raise Efault

let write_bytes (m : mem) addr (s : string) =
  check m addr (String.length s);
  Bytes.blit_string s 0 m.Rt.Memory.data addr (String.length s)

(** Write a NUL-terminated string, truncating to [max] (incl. NUL). *)
let write_cstring (m : mem) addr ?max:limit s =
  let s =
    match limit with
    | Some mx when String.length s >= mx -> String.sub s 0 (max 0 (mx - 1))
    | _ -> s
  in
  write_bytes m addr s;
  set_u8 m (addr + String.length s) 0

(* ------------------------------------------------------------------ *)
(* iovec: { base : u32; len : u32 }                                     *)
(* ------------------------------------------------------------------ *)

let iovec_size = 8

let read_iovecs (m : mem) ~iov ~cnt : (int * int) list =
  if cnt < 0 || cnt > 1024 then raise Efault;
  List.init cnt (fun i ->
      let base = u32i m (iov + (i * iovec_size)) in
      let len = u32i m (iov + (i * iovec_size) + 4) in
      check m base len;
      (base, len))

(* ------------------------------------------------------------------ *)
(* kstat: WALI's dedicated portable layout (112 bytes)                  *)
(* ------------------------------------------------------------------ *)

let kstat_size = 112

let write_kstat (m : mem) addr (st : Kernel.Ktypes.stat) =
  check m addr kstat_size;
  let open Kernel.Ktypes in
  set_i64 m addr (Int64.of_int st.st_dev);
  set_i64 m (addr + 8) (Int64.of_int st.st_ino);
  set_i32i m (addr + 16) st.st_mode;
  set_i32i m (addr + 20) st.st_nlink;
  set_i32i m (addr + 24) st.st_uid;
  set_i32i m (addr + 28) st.st_gid;
  set_i64 m (addr + 32) (Int64.of_int st.st_rdev);
  set_i64 m (addr + 40) st.st_size;
  set_i32i m (addr + 48) st.st_blksize;
  set_i32i m (addr + 52) 0;
  set_i64 m (addr + 56) st.st_blocks;
  let times base ns =
    set_i64 m base (Int64.div ns 1_000_000_000L);
    set_i64 m (base + 8) (Int64.rem ns 1_000_000_000L)
  in
  times (addr + 64) st.st_atime_ns;
  times (addr + 80) st.st_mtime_ns;
  times (addr + 96) st.st_ctime_ns

(* ------------------------------------------------------------------ *)
(* timespec: { sec : i64; nsec : i64 }                                  *)
(* ------------------------------------------------------------------ *)

let read_timespec_ns (m : mem) addr : int64 =
  let sec = i64 m addr and nsec = i64 m (addr + 8) in
  Int64.add (Int64.mul sec 1_000_000_000L) nsec

let write_timespec (m : mem) addr ~ns =
  set_i64 m addr (Int64.div ns 1_000_000_000L);
  set_i64 m (addr + 8) (Int64.rem ns 1_000_000_000L)

let write_timeval (m : mem) addr ~ns =
  set_i64 m addr (Int64.div ns 1_000_000_000L);
  set_i64 m (addr + 8) (Int64.div (Int64.rem ns 1_000_000_000L) 1_000L)

(* ------------------------------------------------------------------ *)
(* sigaction (WALI portable): { handler:u32; flags:u32; mask:u64 }      *)
(* ------------------------------------------------------------------ *)

let sigaction_size = 16

let read_sigaction (m : mem) addr : Kernel.Ktypes.sigaction =
  {
    Kernel.Ktypes.sa_handler = u32i m addr;
    sa_flags = u32i m (addr + 4);
    sa_mask = i64 m (addr + 8);
  }

let write_sigaction (m : mem) addr (a : Kernel.Ktypes.sigaction) =
  set_i32i m addr a.Kernel.Ktypes.sa_handler;
  set_i32i m (addr + 4) a.Kernel.Ktypes.sa_flags;
  set_i64 m (addr + 8) a.Kernel.Ktypes.sa_mask

(* ------------------------------------------------------------------ *)
(* pollfd: { fd:i32; events:u16; revents:u16 }                          *)
(* ------------------------------------------------------------------ *)

let pollfd_size = 8

let read_pollfds (m : mem) ~addr ~cnt : (int * int) list =
  if cnt < 0 || cnt > 4096 then raise Efault;
  List.init cnt (fun i ->
      let base = addr + (i * pollfd_size) in
      (Int32.to_int (i32 m base), u16 m (base + 4)))

let write_revents (m : mem) ~addr (revents : int list) =
  List.iteri
    (fun i r -> set_u16 m (addr + (i * pollfd_size) + 6) r)
    revents

(* ------------------------------------------------------------------ *)
(* dirent64: { ino:u64; off:i64; reclen:u16; type:u8; name[] }          *)
(* ------------------------------------------------------------------ *)

(** Pack directory entries into [buf..buf+len); returns bytes written and
    the number of entries consumed. *)
let write_dirents (m : mem) ~buf ~len (entries : (string * int * int) list) :
    int * int =
  let pos = ref buf in
  let consumed = ref 0 in
  (try
     List.iter
       (fun (name, dtype, ino) ->
         let reclen = (19 + String.length name + 1 + 7) land lnot 7 in
         if !pos + reclen > buf + len then raise Exit;
         set_i64 m !pos (Int64.of_int ino);
         set_i64 m (!pos + 8) (Int64.of_int (!consumed + 1));
         set_u16 m (!pos + 16) reclen;
         set_u8 m (!pos + 18) dtype;
         write_cstring m (!pos + 19) name;
         pos := !pos + reclen;
         incr consumed)
       entries
   with Exit -> ());
  (!pos - buf, !consumed)

(* ------------------------------------------------------------------ *)
(* sockaddr                                                             *)
(* ------------------------------------------------------------------ *)

let read_sockaddr (m : mem) ~addr ~len : Kernel.Socket.addr option =
  if len < 2 then None
  else begin
    let family = u16 m addr in
    if family = Kernel.Ktypes.af_inet && len >= 8 then begin
      (* port and address in network byte order, as in the real ABI *)
      let port = (u8 m (addr + 2) lsl 8) lor u8 m (addr + 3) in
      let host =
        (u8 m (addr + 4) lsl 24) lor (u8 m (addr + 5) lsl 16)
        lor (u8 m (addr + 6) lsl 8) lor u8 m (addr + 7)
      in
      Some (Kernel.Socket.A_inet (host, port))
    end
    else if family = Kernel.Ktypes.af_unix then begin
      let max_path = min (len - 2) 108 in
      let b = Buffer.create 32 in
      (try
         for i = 0 to max_path - 1 do
           let c = u8 m (addr + 2 + i) in
           if c = 0 then raise Exit;
           Buffer.add_char b (Char.chr c)
         done
       with Exit -> ());
      Some (Kernel.Socket.A_unix (Buffer.contents b))
    end
    else None
  end

let write_sockaddr (m : mem) ~addr (a : Kernel.Socket.addr) : int =
  match a with
  | Kernel.Socket.A_inet (host, port) ->
      set_u16 m addr Kernel.Ktypes.af_inet;
      set_u8 m (addr + 2) ((port lsr 8) land 0xff);
      set_u8 m (addr + 3) (port land 0xff);
      set_u8 m (addr + 4) ((host lsr 24) land 0xff);
      set_u8 m (addr + 5) ((host lsr 16) land 0xff);
      set_u8 m (addr + 6) ((host lsr 8) land 0xff);
      set_u8 m (addr + 7) (host land 0xff);
      8
  | Kernel.Socket.A_unix path ->
      set_u16 m addr Kernel.Ktypes.af_unix;
      write_cstring m (addr + 2) path;
      2 + String.length path + 1
