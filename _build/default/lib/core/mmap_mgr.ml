(** The WALI memory-mapping manager (paper §3.2).

    All mappings live inside the process's Wasm linear memory between
    [heap_base] and the memory's declared maximum; the manager grows the
    Wasm memory on demand (MAP_FIXED-style placement into the sandbox) and
    fails with ENOMEM past the self-imposed limit. File-backed mappings
    are materialized by copy-in; MAP_SHARED file mappings write back on
    msync/munmap. Regions are disjoint and 4096-aligned by construction —
    a property the test suite checks with qcheck. *)

open Wasm

let page = 4096

let align_up n = (n + page - 1) land lnot (page - 1)

type backing =
  | Anon
  | File of {
      fb_buf : Kernel.Bytebuf.t; (* the file's contents *)
      fb_off : int; (* file offset of the mapping *)
      fb_shared : bool;
    }

type region = {
  r_addr : int;
  r_len : int; (* multiple of page *)
  mutable r_prot : int;
  r_backing : backing;
}

type t = {
  mutable regions : region list; (* sorted by address, disjoint *)
  base : int; (* lowest mappable address *)
  mutable mapped_bytes : int;
}

let create ~heap_base = { regions = []; base = align_up heap_base; mapped_bytes = 0 }

let regions t = t.regions
let mapped_bytes t = t.mapped_bytes

let limit_of (mem : Rt.Memory.t) = mem.Rt.Memory.max_pages * Types.page_size

(* Grow the Wasm memory so that [addr+len) is addressable. *)
let ensure_mem (mem : Rt.Memory.t) addr len : bool =
  let needed = addr + len in
  if needed <= Rt.Memory.size_bytes mem then true
  else begin
    let extra = needed - Rt.Memory.size_bytes mem in
    let pages = (extra + Types.page_size - 1) / Types.page_size in
    Rt.Memory.grow mem pages >= 0
  end

(* First gap of size >= len within [base, limit). *)
let find_gap t ~(mem : Rt.Memory.t) len : int option =
  let limit = limit_of mem in
  let rec go prev_end = function
    | [] -> if prev_end + len <= limit then Some prev_end else None
    | r :: rest ->
        if r.r_addr - prev_end >= len then Some prev_end
        else go (r.r_addr + r.r_len) rest
  in
  go t.base t.regions

let insert t r =
  let rec go = function
    | [] -> [ r ]
    | x :: rest -> if r.r_addr < x.r_addr then r :: x :: rest else x :: go rest
  in
  t.regions <- go t.regions;
  t.mapped_bytes <- t.mapped_bytes + r.r_len

let region_overlaps ~addr ~len r =
  addr < r.r_addr + r.r_len && r.r_addr < addr + len

(* Write a shared file mapping's pages back to the file. *)
let writeback (mem : Rt.Memory.t) (r : region) =
  match r.r_backing with
  | File { fb_buf; fb_off; fb_shared = true } ->
      Kernel.Bytebuf.pwrite fb_buf ~off:fb_off ~src:mem.Rt.Memory.data
        ~src_off:r.r_addr ~len:r.r_len
  | _ -> ()

(* Remove [addr,addr+len) from region [r], yielding surviving pieces. *)
let carve (mem : Rt.Memory.t) ~addr ~len r : region list =
  writeback mem r;
  let pieces = ref [] in
  if r.r_addr < addr then
    pieces :=
      { r with r_len = addr - r.r_addr } :: !pieces;
  if addr + len < r.r_addr + r.r_len then begin
    let tail_addr = addr + len in
    let tail_backing =
      match r.r_backing with
      | Anon -> Anon
      | File f -> File { f with fb_off = f.fb_off + (tail_addr - r.r_addr) }
    in
    pieces :=
      { r_addr = tail_addr; r_len = r.r_addr + r.r_len - tail_addr;
        r_prot = r.r_prot; r_backing = tail_backing }
      :: !pieces
  end;
  !pieces

let do_unmap t (mem : Rt.Memory.t) ~addr ~len =
  let keep, gone =
    List.partition (fun r -> not (region_overlaps ~addr ~len r)) t.regions
  in
  let survivors = List.concat_map (carve mem ~addr ~len) gone in
  let all = List.sort (fun a b -> compare a.r_addr b.r_addr) (keep @ survivors) in
  let old_total = List.fold_left (fun n r -> n + r.r_len) 0 t.regions in
  let new_total = List.fold_left (fun n r -> n + r.r_len) 0 all in
  t.regions <- all;
  t.mapped_bytes <- t.mapped_bytes - (old_total - new_total)

(** mmap. [file] is the backing regular-file buffer for non-anonymous
    maps. Returns the mapped address. *)
let mmap t ~(mem : Rt.Memory.t) ~addr ~len ~prot ~flags
    ~(file : (Kernel.Bytebuf.t * int) option) : (int, Kernel.Errno.t) result =
  if len <= 0 then Error Kernel.Errno.EINVAL
  else begin
    let len = align_up len in
    let fixed = flags land Kernel.Ktypes.map_fixed <> 0 in
    let place =
      if fixed then
        if addr land (page - 1) <> 0 then Error Kernel.Errno.EINVAL
        else if addr < t.base then Error Kernel.Errno.EINVAL
        else begin
          (* MAP_FIXED replaces existing mappings. *)
          do_unmap t mem ~addr ~len;
          Ok addr
        end
      else
        match find_gap t ~mem len with
        | Some a -> Ok a
        | None -> Error Kernel.Errno.ENOMEM
    in
    match place with
    | Error _ as e -> e
    | Ok a ->
        if not (ensure_mem mem a len) then Error Kernel.Errno.ENOMEM
        else begin
          let backing =
            match file with
            | None -> Anon
            | Some (buf, off) ->
                File
                  {
                    fb_buf = buf;
                    fb_off = off;
                    fb_shared = flags land Kernel.Ktypes.map_shared <> 0;
                  }
          in
          (* Initialize contents: zero for anon, copy-in for file. *)
          Bytes.fill mem.Rt.Memory.data a len '\000';
          (match file with
          | Some (buf, off) ->
              ignore
                (Kernel.Bytebuf.pread buf ~off ~dst:mem.Rt.Memory.data
                   ~dst_off:a ~len)
          | None -> ());
          insert t { r_addr = a; r_len = len; r_prot = prot; r_backing = backing };
          Ok a
        end
  end

let munmap t ~(mem : Rt.Memory.t) ~addr ~len : (unit, Kernel.Errno.t) result =
  if addr land (page - 1) <> 0 || len <= 0 then Error Kernel.Errno.EINVAL
  else begin
    do_unmap t mem ~addr ~len:(align_up len);
    Ok ()
  end

let mprotect t ~addr ~len ~prot : (unit, Kernel.Errno.t) result =
  if addr land (page - 1) <> 0 || len < 0 then Error Kernel.Errno.EINVAL
  else begin
    List.iter
      (fun r -> if region_overlaps ~addr ~len:(align_up len) r then r.r_prot <- prot)
      t.regions;
    Ok ()
  end

let msync t ~(mem : Rt.Memory.t) ~addr ~len : (unit, Kernel.Errno.t) result =
  List.iter
    (fun r -> if region_overlaps ~addr ~len:(align_up (max len 1)) r then writeback mem r)
    t.regions;
  Ok ()

let mremap t ~(mem : Rt.Memory.t) ~old_addr ~old_len ~new_len :
    (int, Kernel.Errno.t) result =
  let old_len = align_up old_len and new_len = align_up new_len in
  match List.find_opt (fun r -> r.r_addr = old_addr) t.regions with
  | None -> Error Kernel.Errno.EFAULT
  | Some r when r.r_len <> old_len -> Error Kernel.Errno.EINVAL
  | Some r ->
      if new_len = old_len then Ok old_addr
      else if new_len < old_len then begin
        do_unmap t mem ~addr:(old_addr + new_len) ~len:(old_len - new_len);
        Ok old_addr
      end
      else begin
        (* Try to extend in place. *)
        let next_start =
          List.fold_left
            (fun acc x ->
              if x.r_addr > r.r_addr then min acc x.r_addr else acc)
            max_int t.regions
        in
        if old_addr + new_len <= min next_start (limit_of mem)
           && ensure_mem mem old_addr new_len
        then begin
          t.mapped_bytes <- t.mapped_bytes + (new_len - old_len);
          Bytes.fill mem.Rt.Memory.data (old_addr + old_len) (new_len - old_len) '\000';
          t.regions <-
            List.map
              (fun x -> if x == r then { x with r_len = new_len } else x)
              t.regions;
          Ok old_addr
        end
        else begin
          (* Relocate: map new, copy, unmap old. *)
          match mmap t ~mem ~addr:0 ~len:new_len ~prot:r.r_prot ~flags:Kernel.Ktypes.map_private ~file:None with
          | Error _ as e -> e
          | Ok na ->
              Bytes.blit mem.Rt.Memory.data old_addr mem.Rt.Memory.data na old_len;
              do_unmap t mem ~addr:old_addr ~len:old_len;
              Ok na
        end
      end

(** Fork: duplicate the bookkeeping (contents were already copied with the
    machine's memory). *)
let clone t = { t with regions = List.map (fun r -> { r with r_prot = r.r_prot }) t.regions }

(** Invariant check used by the property tests. *)
let well_formed t =
  let rec go prev = function
    | [] -> true
    | r :: rest ->
        r.r_addr >= prev
        && r.r_addr land (page - 1) = 0
        && r.r_len > 0
        && r.r_len land (page - 1) = 0
        && go (r.r_addr + r.r_len) rest
  in
  go t.base t.regions
