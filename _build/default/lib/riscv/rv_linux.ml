(** Guest syscall numbering for the RV32 target.

    Numbers are assigned from the Linux syscall table in
    {!Tables.Linux_tables} (a stable, riscv-present-first ordering) —
    illustrating exactly the cross-ISA numbering divergence that WALI's
    name binding sidesteps (paper §3.5). Numbers above 6000 are the
    emulation-control calls the guest startup shim uses (argv/env
    transfer), mirroring how qemu-user implements auxv. *)

let table : (string * int) array =
  let entries = Tables.Linux_tables.all in
  let arr = Array.of_list (List.map (fun (e : Tables.Linux_tables.entry) -> e.Tables.Linux_tables.name) entries) in
  Array.mapi (fun i name -> (name, i + 64)) arr

let nr_of_name (name : string) : int option =
  Array.fold_left
    (fun acc (n, nr) -> if n = name then Some nr else acc)
    None table

let name_of_nr (nr : int) : string option =
  Array.fold_left
    (fun acc (n, v) -> if v = nr then Some n else acc)
    None table

(* Emulation-control calls (not Linux syscalls). *)
let nr_get_argc = 6000
let nr_get_argv_len = 6001
let nr_copy_argv = 6002
let nr_get_envc = 6003
let nr_get_env_len = 6004
let nr_copy_env = 6005
let nr_memcopy = 6010
let nr_memfill = 6011

let builtin_nr = function
  | "argc" -> nr_get_argc
  | "argv_len" -> nr_get_argv_len
  | "argv_copy" -> nr_copy_argv
  | "envc" -> nr_get_envc
  | "env_len" -> nr_get_env_len
  | "env_copy" -> nr_copy_env
  | "memcopy" -> nr_memcopy
  | "memfill" -> nr_memfill
  | b -> raise (Rv_mach.Rv_trap ("no RV lowering for builtin " ^ b))

let builtin_of_nr nr =
  if nr = nr_get_argc then Some "argc"
  else if nr = nr_get_argv_len then Some "argv_len"
  else if nr = nr_copy_argv then Some "argv_copy"
  else if nr = nr_get_envc then Some "envc"
  else if nr = nr_get_env_len then Some "env_len"
  else if nr = nr_copy_env then Some "env_copy"
  else if nr = nr_memcopy then Some "memcopy"
  else if nr = nr_memfill then Some "memfill"
  else None
