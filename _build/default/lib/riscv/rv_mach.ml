(** RV32IM user-mode machine: fetch/decode/execute from raw memory on
    every step, qemu-user style (no pre-decoding, no translation cache —
    the pure interpretive cost model of ISA virtualization).

    Memory is a {!Wasm.Rt.Memory.t} so the syscall marshalling layer can
    be shared with the other engines. Registers are OCaml ints holding
    sign-extended 32-bit values. *)

type t = {
  regs : int array; (* x0..x31 *)
  mutable pc : int;
  mem : Wasm.Rt.Memory.t;
  mutable steps : int64;
  mutable halted : bool;
}

exception Rv_trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Rv_trap s)) fmt

let wrap v = (v land 0xFFFFFFFF) - (if v land 0x80000000 <> 0 then 0x100000000 else 0)
let to_u v = v land 0xFFFFFFFF

let create ~(mem : Wasm.Rt.Memory.t) ~(entry : int) ~(sp_init : int) : t =
  let m = { regs = Array.make 32 0; pc = entry; mem; steps = 0L; halted = false } in
  m.regs.(Rv_asm.sp) <- sp_init;
  m

let get m r = if r = 0 then 0 else m.regs.(r)
let set m r v = if r <> 0 then m.regs.(r) <- wrap v

let sign_extend v bits =
  (* OCaml native ints are 63-bit; shift against the actual width *)
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

(** One instruction. On ECALL, calls [ecall m] which reads/writes the
    argument registers itself. *)
let step (m : t) ~(ecall : t -> unit) : unit =
  let w =
    try Int32.to_int (Wasm.Rt.Memory.load32 m.mem m.pc) land 0xFFFFFFFF
    with Wasm.Rt.Memory.Bounds -> trap "instruction fetch fault at 0x%x" m.pc
  in
  m.steps <- Int64.add m.steps 1L;
  let opcode = w land 0x7f in
  let rd = (w lsr 7) land 0x1f in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1f in
  let rs2 = (w lsr 20) land 0x1f in
  let funct7 = (w lsr 25) land 0x7f in
  let imm_i = sign_extend (w lsr 20) 12 in
  let imm_s = sign_extend (((w lsr 25) lsl 5) lor ((w lsr 7) land 0x1f)) 12 in
  let imm_b =
    sign_extend
      ((((w lsr 31) land 1) lsl 12)
      lor (((w lsr 7) land 1) lsl 11)
      lor (((w lsr 25) land 0x3f) lsl 5)
      lor (((w lsr 8) land 0xf) lsl 1))
      13
  in
  let imm_u = w land 0xFFFFF000 in
  let imm_j =
    sign_extend
      ((((w lsr 31) land 1) lsl 20)
      lor (((w lsr 12) land 0xff) lsl 12)
      lor (((w lsr 20) land 1) lsl 11)
      lor (((w lsr 21) land 0x3ff) lsl 1))
      21
  in
  let next = m.pc + 4 in
  let load_at addr f =
    try f addr with Wasm.Rt.Memory.Bounds -> trap "load fault at 0x%x (pc 0x%x)" addr m.pc
  in
  let store_at addr f =
    try f addr with Wasm.Rt.Memory.Bounds -> trap "store fault at 0x%x (pc 0x%x)" addr m.pc
  in
  (match opcode with
  | 0x37 -> set m rd (wrap imm_u) (* LUI *)
  | 0x17 -> set m rd (wrap (m.pc + imm_u)) (* AUIPC *)
  | 0x6f ->
      set m rd next;
      m.pc <- m.pc + imm_j - 4 (* JAL; -4 compensates the common +4 below *)
  | 0x67 ->
      let t = get m rs1 + imm_i in
      set m rd next;
      m.pc <- (t land lnot 1) - 4
  | 0x63 ->
      let a = get m rs1 and b = get m rs2 in
      let taken =
        match funct3 with
        | 0 -> a = b
        | 1 -> a <> b
        | 4 -> a < b
        | 5 -> a >= b
        | 6 -> to_u a < to_u b
        | 7 -> to_u a >= to_u b
        | _ -> trap "bad branch funct3 %d" funct3
      in
      if taken then m.pc <- m.pc + imm_b - 4
  | 0x03 ->
      let addr = to_u (get m rs1 + imm_i) in
      let v =
        match funct3 with
        | 0 -> load_at addr (fun a -> Wasm.Rt.Memory.load8_s m.mem a)
        | 1 -> load_at addr (fun a -> Wasm.Rt.Memory.load16_s m.mem a)
        | 2 -> load_at addr (fun a -> wrap (Int32.to_int (Wasm.Rt.Memory.load32 m.mem a)))
        | 4 -> load_at addr (fun a -> Wasm.Rt.Memory.load8_u m.mem a)
        | 5 -> load_at addr (fun a -> Wasm.Rt.Memory.load16_u m.mem a)
        | _ -> trap "bad load funct3 %d" funct3
      in
      set m rd v
  | 0x23 ->
      let addr = to_u (get m rs1 + imm_s) in
      let v = get m rs2 in
      (match funct3 with
      | 0 -> store_at addr (fun a -> Wasm.Rt.Memory.store8 m.mem a (v land 0xff))
      | 1 -> store_at addr (fun a -> Wasm.Rt.Memory.store16 m.mem a (v land 0xffff))
      | 2 -> store_at addr (fun a -> Wasm.Rt.Memory.store32 m.mem a (Int32.of_int v))
      | _ -> trap "bad store funct3 %d" funct3)
  | 0x13 ->
      let a = get m rs1 in
      let v =
        match funct3 with
        | 0 -> a + imm_i
        | 2 -> if a < imm_i then 1 else 0
        | 3 -> if to_u a < to_u imm_i then 1 else 0
        | 4 -> a lxor imm_i
        | 6 -> a lor imm_i
        | 7 -> a land imm_i
        | 1 -> a lsl (imm_i land 31)
        | 5 ->
            if (w lsr 30) land 1 = 1 then a asr (imm_i land 31)
            else to_u a lsr (imm_i land 31)
        | _ -> trap "bad op-imm funct3 %d" funct3
      in
      set m rd v
  | 0x33 ->
      let a = get m rs1 and b = get m rs2 in
      let v =
        if funct7 = 1 then
          (* M extension *)
          match funct3 with
          | 0 -> a * b
          | 4 -> if b = 0 then -1 else a / b (* DIV truncates toward zero *)
          | 5 -> if b = 0 then -1 else to_u a / to_u b
          | 6 -> if b = 0 then a else a mod b
          | 7 -> if b = 0 then a else to_u a mod to_u b
          | _ -> trap "bad M funct3 %d" funct3
        else
          match funct3 with
          | 0 -> if funct7 = 0x20 then a - b else a + b
          | 1 -> a lsl (b land 31)
          | 2 -> if a < b then 1 else 0
          | 3 -> if to_u a < to_u b then 1 else 0
          | 4 -> a lxor b
          | 5 -> if funct7 = 0x20 then a asr (b land 31) else to_u a lsr (b land 31)
          | 6 -> a lor b
          | 7 -> a land b
          | _ -> trap "bad op funct3 %d" funct3
      in
      set m rd v
  | 0x73 ->
      if w = 0x73 then ecall m
      else if w = 0x100073 then m.halted <- true (* EBREAK *)
      else trap "unsupported system instruction 0x%x" w
  | op -> trap "illegal instruction 0x%08x (opcode 0x%02x) at pc 0x%x" w op m.pc);
  m.pc <- m.pc + 4

(** Run until halted or [max_steps]; calls [poll] every [poll_interval]
    instructions (safepoints for the scheduler / signals). *)
let run (m : t) ~(ecall : t -> unit) ?(poll = fun () -> ())
    ?(poll_interval = 4096) () : unit =
  let count = ref 0 in
  while not m.halted do
    step m ~ecall;
    incr count;
    if !count land (poll_interval - 1) = 0 then poll ()
  done
