lib/riscv/rv_mach.ml: Array Int32 Int64 Printf Rv_asm Sys Wasm
