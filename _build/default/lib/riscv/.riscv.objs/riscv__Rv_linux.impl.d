lib/riscv/rv_linux.ml: Array List Rv_mach Tables
