lib/riscv/rv_asm.ml: Buffer Char Hashtbl List Sys
