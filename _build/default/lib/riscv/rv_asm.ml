(** RV32IM assembler: symbolic instructions with labels, two-pass
    assembly to raw machine code. The emulator decodes these words back
    from memory on every step — the interpretive ISA-virtualization cost
    the QEMU baseline pays. *)

type reg = int (* x0..x31 *)

let x0 = 0
let ra = 1
let sp = 2
let s0 = 8
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a7 = 17
let t0 = 5
let t1 = 6
let t2 = 7

type instr =
  | Lui of reg * int (* upper 20 bits *)
  | Addi of reg * reg * int
  | Slti of reg * reg * int
  | Xori of reg * reg * int
  | Ori of reg * reg * int
  | Andi of reg * reg * int
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Sll of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Xor of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Or of reg * reg * reg
  | And of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Rem of reg * reg * reg
  | Lb of reg * int * reg (* rd, offset(rs) *)
  | Lbu of reg * int * reg
  | Lw of reg * int * reg
  | Sb of reg * int * reg (* rs2, offset(rs1) *)
  | Sw of reg * int * reg
  | Jalr of reg * reg * int
  | Ecall
  (* pseudo / label-based; fixed encodable sizes *)
  | Label of string
  | Li of reg * int (* 2 words: lui+addi *)
  | La of reg * string (* 2 words: address of label *)
  | Jmp of string (* jal x0, label *)
  | Call of string (* jal ra, label *)
  | Ret
  | Beqz of reg * string (* 2 words: bne rs,x0,+8 ; jal x0,label *)
  | Bnez of reg * string

exception Asm_error of string

let size_of = function
  | Label _ -> 0
  | Li _ | La _ | Beqz _ | Bnez _ -> 8
  | _ -> 4

(* --- encoders --- *)

let mask n bits = n land ((1 lsl bits) - 1)

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  (mask imm 12 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
  lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  (mask (imm asr 5) 7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15)
  lor (funct3 lsl 12) lor (mask imm 5 lsl 7) lor opcode

let b_type ~imm ~rs2 ~rs1 ~funct3 =
  let imm12 = (imm asr 12) land 1 and imm11 = (imm asr 11) land 1 in
  let imm10_5 = (imm asr 5) land 0x3f and imm4_1 = (imm asr 1) land 0xf in
  (imm12 lsl 31) lor (imm10_5 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15)
  lor (funct3 lsl 12) lor (imm4_1 lsl 8) lor (imm11 lsl 7) lor 0x63

let u_type ~imm20 ~rd ~opcode = (mask imm20 20 lsl 12) lor (rd lsl 7) lor opcode

let j_type ~imm ~rd =
  let imm20 = (imm asr 20) land 1 and imm10_1 = (imm asr 1) land 0x3ff in
  let imm11 = (imm asr 11) land 1 and imm19_12 = (imm asr 12) land 0xff in
  (imm20 lsl 31) lor (imm10_1 lsl 21) lor (imm11 lsl 20) lor (imm19_12 lsl 12)
  lor (rd lsl 7) lor 0x6f

(* li: lui rd, hi20 ; addi rd, rd, lo12 with rounding for sign of lo12 *)
let li_words rd v =
  let sh = Sys.int_size - 12 in
  let lo = ((v land 0xfff) lsl sh) asr sh in
  let hi = (v - lo) asr 12 in
  [ u_type ~imm20:(mask hi 20) ~rd ~opcode:0x37;
    i_type ~imm:lo ~rs1:rd ~funct3:0 ~rd ~opcode:0x13 ]

let encode_at (labels : (string, int) Hashtbl.t) (pc : int) (ins : instr) :
    int list =
  let target l =
    match Hashtbl.find_opt labels l with
    | Some a -> a
    | None -> raise (Asm_error ("undefined label " ^ l))
  in
  match ins with
  | Label _ -> []
  | Lui (rd, imm20) -> [ u_type ~imm20 ~rd ~opcode:0x37 ]
  | Addi (rd, rs, imm) -> [ i_type ~imm ~rs1:rs ~funct3:0 ~rd ~opcode:0x13 ]
  | Slti (rd, rs, imm) -> [ i_type ~imm ~rs1:rs ~funct3:2 ~rd ~opcode:0x13 ]
  | Xori (rd, rs, imm) -> [ i_type ~imm ~rs1:rs ~funct3:4 ~rd ~opcode:0x13 ]
  | Ori (rd, rs, imm) -> [ i_type ~imm ~rs1:rs ~funct3:6 ~rd ~opcode:0x13 ]
  | Andi (rd, rs, imm) -> [ i_type ~imm ~rs1:rs ~funct3:7 ~rd ~opcode:0x13 ]
  | Slli (rd, rs, sh) -> [ i_type ~imm:(sh land 31) ~rs1:rs ~funct3:1 ~rd ~opcode:0x13 ]
  | Srli (rd, rs, sh) -> [ i_type ~imm:(sh land 31) ~rs1:rs ~funct3:5 ~rd ~opcode:0x13 ]
  | Srai (rd, rs, sh) ->
      [ i_type ~imm:((sh land 31) lor 0x400) ~rs1:rs ~funct3:5 ~rd ~opcode:0x13 ]
  | Add (rd, a, b) -> [ r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:0 ~rd ~opcode:0x33 ]
  | Sub (rd, a, b) -> [ r_type ~funct7:0x20 ~rs2:b ~rs1:a ~funct3:0 ~rd ~opcode:0x33 ]
  | Sll (rd, a, b) -> [ r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:1 ~rd ~opcode:0x33 ]
  | Slt (rd, a, b) -> [ r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:2 ~rd ~opcode:0x33 ]
  | Sltu (rd, a, b) -> [ r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:3 ~rd ~opcode:0x33 ]
  | Xor (rd, a, b) -> [ r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:4 ~rd ~opcode:0x33 ]
  | Srl (rd, a, b) -> [ r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:5 ~rd ~opcode:0x33 ]
  | Sra (rd, a, b) -> [ r_type ~funct7:0x20 ~rs2:b ~rs1:a ~funct3:5 ~rd ~opcode:0x33 ]
  | Or (rd, a, b) -> [ r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:6 ~rd ~opcode:0x33 ]
  | And (rd, a, b) -> [ r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:7 ~rd ~opcode:0x33 ]
  | Mul (rd, a, b) -> [ r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:0 ~rd ~opcode:0x33 ]
  | Div (rd, a, b) -> [ r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:4 ~rd ~opcode:0x33 ]
  | Rem (rd, a, b) -> [ r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:6 ~rd ~opcode:0x33 ]
  | Lb (rd, off, rs) -> [ i_type ~imm:off ~rs1:rs ~funct3:0 ~rd ~opcode:0x03 ]
  | Lbu (rd, off, rs) -> [ i_type ~imm:off ~rs1:rs ~funct3:4 ~rd ~opcode:0x03 ]
  | Lw (rd, off, rs) -> [ i_type ~imm:off ~rs1:rs ~funct3:2 ~rd ~opcode:0x03 ]
  | Sb (rs2, off, rs1) -> [ s_type ~imm:off ~rs2 ~rs1 ~funct3:0 ~opcode:0x23 ]
  | Sw (rs2, off, rs1) -> [ s_type ~imm:off ~rs2 ~rs1 ~funct3:2 ~opcode:0x23 ]
  | Jalr (rd, rs, imm) -> [ i_type ~imm ~rs1:rs ~funct3:0 ~rd ~opcode:0x67 ]
  | Ecall -> [ 0x73 ]
  | Li (rd, v) -> li_words rd v
  | La (rd, l) -> li_words rd (target l)
  | Jmp l -> [ j_type ~imm:(target l - pc) ~rd:x0 ]
  | Call l -> [ j_type ~imm:(target l - pc) ~rd:ra ]
  | Ret -> [ i_type ~imm:0 ~rs1:ra ~funct3:0 ~rd:x0 ~opcode:0x67 ]
  | Beqz (rs, l) ->
      (* bne rs, x0, +8 ; jal x0, label *)
      [ b_type ~imm:8 ~rs2:x0 ~rs1:rs ~funct3:1;
        j_type ~imm:(target l - (pc + 4)) ~rd:x0 ]
  | Bnez (rs, l) ->
      [ b_type ~imm:8 ~rs2:x0 ~rs1:rs ~funct3:0;
        j_type ~imm:(target l - (pc + 4)) ~rd:x0 ]

(** Assemble to (bytes, label addresses). [base] is the code load
    address. *)
let assemble ~(base : int) (prog : instr list) : string * (string, int) Hashtbl.t =
  let labels = Hashtbl.create 64 in
  (* pass 1: label addresses *)
  let pc = ref base in
  List.iter
    (fun ins ->
      (match ins with
      | Label l ->
          if Hashtbl.mem labels l then raise (Asm_error ("duplicate label " ^ l));
          Hashtbl.replace labels l !pc
      | _ -> ());
      pc := !pc + size_of ins)
    prog;
  (* pass 2: encode *)
  let buf = Buffer.create 4096 in
  let pc = ref base in
  List.iter
    (fun ins ->
      let words = encode_at labels !pc ins in
      List.iter
        (fun w ->
          for i = 0 to 3 do
            Buffer.add_char buf (Char.chr ((w lsr (8 * i)) land 0xff))
          done)
        words;
      pc := !pc + size_of ins)
    prog;
  (Buffer.contents buf, labels)
