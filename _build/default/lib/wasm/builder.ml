(** Programmatic module construction.

    Used by the MiniC code generator, the WASI adapter generator and the
    tests. All function imports must be added before the first local
    function declaration so that index spaces are final as soon as a
    function is referenced. *)

open Types
open Ast

type t = {
  mutable b_types : func_type list; (* reversed *)
  mutable b_imports : import list; (* reversed *)
  mutable b_funcs : (int * val_type list * instr list * string) option array;
  mutable b_nfuncs : int;
  mutable b_num_imported_funcs : int;
  mutable b_memories : limits list; (* reversed *)
  mutable b_tables : limits list; (* reversed *)
  mutable b_globals : global list; (* reversed *)
  mutable b_exports : export list; (* reversed *)
  mutable b_elems : elem list; (* reversed *)
  mutable b_datas : data list; (* reversed *)
  mutable b_start : int option;
  mutable b_sealed_imports : bool;
  b_name : string;
}

let create ?(name = "") () =
  {
    b_types = [];
    b_imports = [];
    b_funcs = Array.make 16 None;
    b_nfuncs = 0;
    b_num_imported_funcs = 0;
    b_memories = [];
    b_tables = [];
    b_globals = [];
    b_exports = [];
    b_elems = [];
    b_datas = [];
    b_start = None;
    b_sealed_imports = false;
    b_name = name;
  }

(** Intern a function type, returning its index. *)
let type_idx b ~params ~results =
  let ft = { params; results } in
  let rec find i = function
    | [] -> None
    | t :: _ when func_type_equal t ft -> Some (List.length b.b_types - 1 - i + i)
    | _ :: rest -> find (i + 1) rest
  in
  ignore find;
  (* types are stored reversed; search with positional arithmetic *)
  let n = List.length b.b_types in
  let rec search i = function
    | [] -> None
    | t :: rest ->
        if func_type_equal t ft then Some (n - 1 - i) else search (i + 1) rest
  in
  match search 0 b.b_types with
  | Some i -> i
  | None ->
      b.b_types <- ft :: b.b_types;
      n

let import_func b ~module_ ~name ~params ~results =
  if b.b_sealed_imports then
    invalid_arg "Builder.import_func: after local function declarations";
  let ti = type_idx b ~params ~results in
  b.b_imports <-
    { imp_module = module_; imp_name = name; imp_desc = Id_func ti }
    :: b.b_imports;
  b.b_num_imported_funcs <- b.b_num_imported_funcs + 1;
  b.b_num_imported_funcs - 1

let import_memory b ~module_ ~name ~min ~max =
  b.b_imports <-
    { imp_module = module_; imp_name = name;
      imp_desc = Id_memory { lim_min = min; lim_max = max } }
    :: b.b_imports

(** Declare a function; body is supplied later with {!define}. Returns the
    function's index in the final module. *)
let declare_func b ~name ~params ~results =
  b.b_sealed_imports <- true;
  let ti = type_idx b ~params ~results in
  if b.b_nfuncs = Array.length b.b_funcs then begin
    let a = Array.make (2 * b.b_nfuncs) None in
    Array.blit b.b_funcs 0 a 0 b.b_nfuncs;
    b.b_funcs <- a
  end;
  b.b_funcs.(b.b_nfuncs) <- Some (ti, [], [ Unreachable ], name);
  b.b_nfuncs <- b.b_nfuncs + 1;
  b.b_num_imported_funcs + b.b_nfuncs - 1

let define b fidx ~locals body =
  let i = fidx - b.b_num_imported_funcs in
  if i < 0 || i >= b.b_nfuncs then invalid_arg "Builder.define: bad index";
  match b.b_funcs.(i) with
  | None -> invalid_arg "Builder.define: undeclared"
  | Some (ti, _, _, name) -> b.b_funcs.(i) <- Some (ti, locals, body, name)

(** Declare + define in one step (no recursion/forward references). *)
let func b ~name ~params ~results ~locals body =
  let i = declare_func b ~name ~params ~results in
  define b i ~locals body;
  i

let add_memory b ~min ~max =
  b.b_memories <- { lim_min = min; lim_max = max } :: b.b_memories;
  List.length b.b_memories - 1

let add_table b ~min ~max =
  b.b_tables <- { lim_min = min; lim_max = max } :: b.b_tables;
  List.length b.b_tables - 1

let add_global b ~mut ~typ init =
  b.b_globals <-
    { g_type = { gt_type = typ; gt_mut = mut }; g_init = init } :: b.b_globals;
  List.length b.b_globals - 1

let export_func b name fidx =
  b.b_exports <- { exp_name = name; exp_desc = Ed_func fidx } :: b.b_exports

let export_memory b name midx =
  b.b_exports <- { exp_name = name; exp_desc = Ed_memory midx } :: b.b_exports

let export_global b name gidx =
  b.b_exports <- { exp_name = name; exp_desc = Ed_global gidx } :: b.b_exports

let export_table b name tidx =
  b.b_exports <- { exp_name = name; exp_desc = Ed_table tidx } :: b.b_exports

let add_elem b ~table ~offset funcs =
  b.b_elems <-
    { e_table = table; e_offset = [ I32_const (Int32.of_int offset) ];
      e_funcs = funcs }
    :: b.b_elems

let add_data b ~offset bytes =
  b.b_datas <-
    { d_mem = 0; d_offset = [ I32_const (Int32.of_int offset) ]; d_bytes = bytes }
    :: b.b_datas

let set_start b fidx = b.b_start <- Some fidx

let build b : module_ =
  let funcs =
    Array.init b.b_nfuncs (fun i ->
        match b.b_funcs.(i) with
        | Some (ti, locals, body, name) ->
            { f_type = ti; f_locals = locals; f_body = body; f_name = name }
        | None -> assert false)
  in
  {
    types = Array.of_list (List.rev b.b_types);
    imports = List.rev b.b_imports;
    funcs;
    tables = Array.of_list (List.rev b.b_tables);
    memories = Array.of_list (List.rev b.b_memories);
    globals = Array.of_list (List.rev b.b_globals);
    exports = List.rev b.b_exports;
    start = b.b_start;
    elems = List.rev b.b_elems;
    datas = List.rev b.b_datas;
    m_name = b.b_name;
  }
