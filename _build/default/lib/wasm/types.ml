(** Wasm type grammar (core spec §2.3). *)

type val_type = T_i32 | T_i64 | T_f32 | T_f64 | T_funcref

type func_type = { params : val_type list; results : val_type list }

type limits = { lim_min : int; lim_max : int option }

type mutability = Immutable | Mutable

type global_type = { gt_type : val_type; gt_mut : mutability }

let string_of_val_type = function
  | T_i32 -> "i32"
  | T_i64 -> "i64"
  | T_f32 -> "f32"
  | T_f64 -> "f64"
  | T_funcref -> "funcref"

let string_of_func_type ft =
  let vs l = String.concat " " (List.map string_of_val_type l) in
  Printf.sprintf "[%s] -> [%s]" (vs ft.params) (vs ft.results)

let func_type_equal a b = a.params = b.params && a.results = b.results

(** Wasm page size: 64 KiB. *)
let page_size = 65536
