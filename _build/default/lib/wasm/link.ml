(** Module instantiation and import resolution. *)

open Types
open Values
open Ast
open Rt

exception Link_error of string

let link_error fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

type resolver = module_name:string -> name:string -> extern option
(** How imports are satisfied. WALI's registry provides the ["wali"]
    namespace; layered modules (e.g. the WASI adapter) provide others. *)

let empty_resolver : resolver = fun ~module_name:_ ~name:_ -> None

(** Combine resolvers; the first hit wins. *)
let ( <+> ) (a : resolver) (b : resolver) : resolver =
 fun ~module_name ~name ->
  match a ~module_name ~name with
  | Some _ as r -> r
  | None -> b ~module_name ~name

let of_instance (inst : instance) : resolver =
 fun ~module_name ~name ->
  if module_name = inst.i_name then Hashtbl.find_opt inst.i_exports name
  else None

(* Evaluate a constant initializer expression. *)
let eval_const (globals : Global.t array) (instrs : instr list) : value =
  match instrs with
  | [ I32_const v ] -> I32 v
  | [ I64_const v ] -> I64 v
  | [ F32_const v ] -> F32 v
  | [ F64_const v ] -> F64 v
  | [ Global_get i ] ->
      if i < 0 || i >= Array.length globals then
        link_error "const expr: global %d out of range" i
      else Global.get globals.(i)
  | _ -> link_error "unsupported constant expression"

(** Instantiate a compiled module. Does not run the start function; the
    returned [start] must be invoked by the caller (via {!Interp.invoke})
    so that instantiation itself never executes guest code. *)
let instantiate ?(name = "") (resolver : resolver) (cm : Code.compiled) :
    instance * func_inst option =
  let m = cm.Code.cm_module in
  let name = if name = "" then m.m_name else name in
  let imported_funcs = ref [] in
  let imported_mems = ref [] in
  let imported_tables = ref [] in
  let imported_globals = ref [] in
  List.iter
    (fun imp ->
      let ext =
        match resolver ~module_name:imp.imp_module ~name:imp.imp_name with
        | Some e -> e
        | None ->
            link_error "unresolved import %s.%s" imp.imp_module imp.imp_name
      in
      match (imp.imp_desc, ext) with
      | Id_func ti, E_func f ->
          let expect = m.types.(ti) in
          if not (func_type_equal (func_type_of f) expect) then
            link_error "import %s.%s: type mismatch (want %s, got %s)"
              imp.imp_module imp.imp_name
              (string_of_func_type expect)
              (string_of_func_type (func_type_of f));
          imported_funcs := f :: !imported_funcs
      | Id_memory lim, E_memory mem ->
          if Memory.size_pages mem < lim.lim_min then
            link_error "import %s.%s: memory too small" imp.imp_module imp.imp_name;
          imported_mems := mem :: !imported_mems
      | Id_table lim, E_table t ->
          if Table.size t < lim.lim_min then
            link_error "import %s.%s: table too small" imp.imp_module imp.imp_name;
          imported_tables := t :: !imported_tables
      | Id_global _, E_global g -> imported_globals := g :: !imported_globals
      | _ ->
          link_error "import %s.%s: kind mismatch" imp.imp_module imp.imp_name)
    m.imports;
  let imported_funcs = List.rev !imported_funcs in
  let imported_mems = List.rev !imported_mems in
  let imported_tables = List.rev !imported_tables in
  let imported_globals = List.rev !imported_globals in
  let local_mems =
    Array.map
      (fun lim ->
        Memory.create ~min_pages:lim.lim_min
          ~max_pages:(Option.value lim.lim_max ~default:65536))
      m.memories
  in
  let local_tables =
    Array.map (fun lim -> Table.create ~min:lim.lim_min ~max:lim.lim_max) m.tables
  in
  let globals_so_far = Array.of_list imported_globals in
  let local_globals =
    Array.map
      (fun g ->
        Global.create g.g_type.gt_mut (eval_const globals_so_far g.g_init))
      m.globals
  in
  let inst =
    {
      i_name = name;
      i_types = m.types;
      i_funcs = [||];
      i_memories = Array.append (Array.of_list imported_mems) local_mems;
      i_tables = Array.append (Array.of_list imported_tables) local_tables;
      i_globals = Array.append globals_so_far local_globals;
      i_exports = Hashtbl.create 16;
      i_codes = cm.Code.cm_funcs;
    }
  in
  let local_funcs =
    Array.map (fun code -> Wasm_func { wf_inst = inst; wf_code = code }) cm.Code.cm_funcs
  in
  inst.i_funcs <- Array.append (Array.of_list imported_funcs) local_funcs;
  (* Element segments. *)
  List.iter
    (fun e ->
      let off = Int32.to_int (as_i32 (eval_const inst.i_globals e.e_offset)) in
      let t = inst.i_tables.(e.e_table) in
      List.iteri
        (fun k fidx ->
          if off + k >= Table.size t then link_error "elem segment out of range";
          Table.set t (off + k) (Some fidx))
        e.e_funcs)
    m.elems;
  (* Data segments. *)
  List.iter
    (fun d ->
      let off = Int32.to_int (as_i32 (eval_const inst.i_globals d.d_offset)) in
      let mem = inst.i_memories.(d.d_mem) in
      try Memory.write_string mem ~addr:off d.d_bytes
      with Memory.Bounds -> link_error "data segment out of range")
    m.datas;
  (* Exports. *)
  List.iter
    (fun e ->
      let ext =
        match e.exp_desc with
        | Ed_func i -> E_func inst.i_funcs.(i)
        | Ed_memory i -> E_memory inst.i_memories.(i)
        | Ed_table i -> E_table inst.i_tables.(i)
        | Ed_global i -> E_global inst.i_globals.(i)
      in
      Hashtbl.replace inst.i_exports e.exp_name ext)
    m.exports;
  let start = Option.map (fun i -> inst.i_funcs.(i)) m.start in
  (inst, start)
