lib/wasm/builder.ml: Array Ast Int32 List Types
