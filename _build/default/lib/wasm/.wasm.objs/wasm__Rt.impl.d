lib/wasm/rt.ml: Array Bytes Char Code Hashtbl List String Types Values
