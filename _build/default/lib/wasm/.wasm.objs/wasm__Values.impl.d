lib/wasm/values.ml: Float Int32 Int64 Printf Types
