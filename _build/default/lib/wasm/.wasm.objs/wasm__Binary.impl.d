lib/wasm/binary.ml: Array Ast Buffer Char Int32 Int64 List Printf String Types
