lib/wasm/interp.ml: Array Ast Code Convert Float Global I32_op I64_op Int32 Int64 List Machine Memory Rt Table Types Values
