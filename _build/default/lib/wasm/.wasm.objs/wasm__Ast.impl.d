lib/wasm/ast.ml: Array List Types
