lib/wasm/types.ml: List Printf String
