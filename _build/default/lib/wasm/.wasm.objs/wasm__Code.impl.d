lib/wasm/code.ml: Array Ast List Printf Types Values
