lib/wasm/link.ml: Array Ast Code Global Hashtbl Int32 List Memory Option Printf Rt Table Types Values
