(** Runtime values and numeric operator semantics.

    Floats are carried as raw IEEE-754 bit patterns so that value equality,
    cloning (fork) and binary round-trips are exact. *)

type value =
  | I32 of int32
  | I64 of int64
  | F32 of int32 (* bits *)
  | F64 of int64 (* bits *)

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let type_of = function
  | I32 _ -> Types.T_i32
  | I64 _ -> Types.T_i64
  | F32 _ -> Types.T_f32
  | F64 _ -> Types.T_f64

let default_of = function
  | Types.T_i32 -> I32 0l
  | Types.T_i64 -> I64 0L
  | Types.T_f32 -> F32 0l
  | Types.T_f64 -> F64 0L
  | Types.T_funcref -> I32 0l (* null funcref sentinel; tables store options *)

let to_string = function
  | I32 v -> Printf.sprintf "i32:%ld" v
  | I64 v -> Printf.sprintf "i64:%Ld" v
  | F32 b -> Printf.sprintf "f32:%g" (Int32.float_of_bits b)
  | F64 b -> Printf.sprintf "f64:%g" (Int64.float_of_bits b)

let as_i32 = function I32 v -> v | v -> trap "expected i32, got %s" (to_string v)
let as_i64 = function I64 v -> v | v -> trap "expected i64, got %s" (to_string v)
let as_f32 = function F32 v -> v | v -> trap "expected f32, got %s" (to_string v)
let as_f64 = function F64 v -> v | v -> trap "expected f64, got %s" (to_string v)

(* ------------------------------------------------------------------ *)
(* i32 operators                                                       *)
(* ------------------------------------------------------------------ *)

module I32_op = struct
  open Int32

  let unsigned_compare a b = compare (add a min_int) (add b min_int)

  let clz x =
    if x = 0l then 32
    else begin
      let n = ref 0 and x = ref x in
      while logand !x 0x80000000l = 0l do
        incr n;
        x := shift_left !x 1
      done;
      !n
    end

  let ctz x =
    if x = 0l then 32
    else begin
      let n = ref 0 and x = ref x in
      while logand !x 1l = 0l do
        incr n;
        x := shift_right_logical !x 1
      done;
      !n
    end

  let popcnt x =
    let n = ref 0 in
    for i = 0 to 31 do
      if logand (shift_right_logical x i) 1l = 1l then incr n
    done;
    !n

  let div_s a b =
    if b = 0l then trap "integer divide by zero"
    else if a = min_int && b = -1l then trap "integer overflow"
    else div a b

  let rem_s a b =
    if b = 0l then trap "integer divide by zero"
    else if a = min_int && b = -1l then 0l
    else rem a b

  let div_u a b =
    if b = 0l then trap "integer divide by zero" else unsigned_div a b

  let rem_u a b =
    if b = 0l then trap "integer divide by zero" else unsigned_rem a b

  let shl a b = shift_left a (to_int (logand b 31l))
  let shr_s a b = shift_right a (to_int (logand b 31l))
  let shr_u a b = shift_right_logical a (to_int (logand b 31l))

  let rotl a b =
    let n = to_int (logand b 31l) in
    if n = 0 then a else logor (shift_left a n) (shift_right_logical a (32 - n))

  let rotr a b =
    let n = to_int (logand b 31l) in
    if n = 0 then a else logor (shift_right_logical a n) (shift_left a (32 - n))
end

(* ------------------------------------------------------------------ *)
(* i64 operators                                                       *)
(* ------------------------------------------------------------------ *)

module I64_op = struct
  open Int64

  let unsigned_compare a b = compare (add a min_int) (add b min_int)

  let clz x =
    if x = 0L then 64
    else begin
      let n = ref 0 and x = ref x in
      while logand !x 0x8000000000000000L = 0L do
        incr n;
        x := shift_left !x 1
      done;
      !n
    end

  let ctz x =
    if x = 0L then 64
    else begin
      let n = ref 0 and x = ref x in
      while logand !x 1L = 0L do
        incr n;
        x := shift_right_logical !x 1
      done;
      !n
    end

  let popcnt x =
    let n = ref 0 in
    for i = 0 to 63 do
      if logand (shift_right_logical x i) 1L = 1L then incr n
    done;
    !n

  let div_s a b =
    if b = 0L then trap "integer divide by zero"
    else if a = min_int && b = -1L then trap "integer overflow"
    else div a b

  let rem_s a b =
    if b = 0L then trap "integer divide by zero"
    else if a = min_int && b = -1L then 0L
    else rem a b

  let div_u a b =
    if b = 0L then trap "integer divide by zero" else unsigned_div a b

  let rem_u a b =
    if b = 0L then trap "integer divide by zero" else unsigned_rem a b

  let shl a b = shift_left a (to_int (logand b 63L))
  let shr_s a b = shift_right a (to_int (logand b 63L))
  let shr_u a b = shift_right_logical a (to_int (logand b 63L))

  let rotl a b =
    let n = to_int (logand b 63L) in
    if n = 0 then a else logor (shift_left a n) (shift_right_logical a (64 - n))

  let rotr a b =
    let n = to_int (logand b 63L) in
    if n = 0 then a else logor (shift_right_logical a n) (shift_left a (64 - n))
end

(* ------------------------------------------------------------------ *)
(* float <-> int conversions with Wasm trapping semantics              *)
(* ------------------------------------------------------------------ *)

module Convert = struct
  let trunc_f64_i32_s f =
    if Float.is_nan f then trap "invalid conversion to integer";
    if f >= 2147483648.0 || f < -2147483649.0 then trap "integer overflow";
    Int32.of_float f

  let trunc_f64_i32_u f =
    if Float.is_nan f then trap "invalid conversion to integer";
    if f >= 4294967296.0 || f <= -1.0 then trap "integer overflow";
    Int64.to_int32 (Int64.of_float f)

  let trunc_f64_i64_s f =
    if Float.is_nan f then trap "invalid conversion to integer";
    if f >= 9.2233720368547758e18 || f < -9.2233720368547758e18 then
      trap "integer overflow";
    Int64.of_float f

  let trunc_f64_i64_u f =
    if Float.is_nan f then trap "invalid conversion to integer";
    if f >= 1.8446744073709552e19 || f <= -1.0 then trap "integer overflow";
    if f < 9.2233720368547758e18 then Int64.of_float f
    else Int64.add (Int64.of_float (f -. 9223372036854775808.0)) Int64.min_int

  let convert_i32_u_to_float x =
    Int64.to_float (Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL)

  let convert_i64_u_to_float x =
    if Int64.compare x 0L >= 0 then Int64.to_float x
    else
      Int64.to_float (Int64.shift_right_logical x 1) *. 2.0
      +. Int64.to_float (Int64.logand x 1L)
end
