examples/quickstart.ml: List Minic Printf String Wali Wasm
