examples/shell_pipeline.mli:
