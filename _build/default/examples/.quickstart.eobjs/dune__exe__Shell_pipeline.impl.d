examples/shell_pipeline.ml: Apps List Printf String Wali
