examples/zephyr_blinky.ml: Binary Builder Char Int32 Int64 List Printf String Types Wasm Wazi Zephyr
