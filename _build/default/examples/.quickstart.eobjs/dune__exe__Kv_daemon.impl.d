examples/kv_daemon.ml: Apps List Printf String Wali
