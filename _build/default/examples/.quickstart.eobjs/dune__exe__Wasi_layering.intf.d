examples/wasi_layering.mli:
