examples/wasi_layering.ml: Array Ast Binary Builder Int32 List Printf String Types Wasi Wasm
