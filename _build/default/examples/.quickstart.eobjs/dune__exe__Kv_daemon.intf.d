examples/kv_daemon.mli:
