examples/quickstart.mli:
