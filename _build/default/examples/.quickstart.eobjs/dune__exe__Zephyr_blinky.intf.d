examples/zephyr_blinky.mli:
