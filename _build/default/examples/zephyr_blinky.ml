(* WAZI on the Zephyr RTOS simulator (paper §5.1): the embedded "blinky"
   — a Wasm module toggling a GPIO pin on a timer, with UART output,
   running over the auto-generated thin kernel interface.

     dune exec examples/zephyr_blinky.exe *)

open Wasm
open Wasm.Ast

let blinky_binary () =
  let b = Builder.create ~name:"blinky" () in
  ignore (Builder.add_memory b ~min:1 ~max:(Some 4));
  let imp name arity =
    Builder.import_func b ~module_:"wazi" ~name
      ~params:(List.init arity (fun _ -> Types.T_i32))
      ~results:[ Types.T_i32 ]
  in
  let cfg = imp "gpio_pin_configure" 3 in
  let toggle = imp "gpio_pin_toggle" 2 in
  let sleep = imp "k_sleep" 1 in
  let uart = imp "uart_poll_out" 2 in
  let k n = I32_const (Int32.of_int n) in
  let say s = List.concat_map (fun c -> [ k 1; k (Char.code c); Call uart; Drop ]) (List.init (String.length s) (String.get s)) in
  let main =
    Builder.func b ~name:"main" ~params:[] ~results:[ Types.T_i32 ]
      ~locals:[ Types.T_i32 ]
      (say "blinky up\n"
      @ [
          k 1; k 13; k 1; Call cfg; Drop;
          k 0; Local_set 0;
          Block
            ( Bt_none,
              [
                Loop
                  ( Bt_none,
                    [
                      Local_get 0; k 10; I32_relop Ge_s; Br_if 1;
                      k 1; k 13; Call toggle; Drop;
                      k 50; Call sleep; Drop;
                      Local_get 0; k 1; I32_binop Add; Local_set 0;
                      Br 0;
                    ] );
              ] );
        ]
      @ say "blinky done\n"
      @ [ k 0 ])
  in
  Builder.export_func b "main" main;
  Builder.export_memory b "memory" 0;
  Binary.encode (Builder.build b)

let () =
  let result, t = Wazi.run_module (blinky_binary ()) in
  (match result with
  | Wasm.Interp.R_done _ -> ()
  | Wasm.Interp.R_trap s -> Printf.printf "trap: %s\n" s
  | Wasm.Interp.R_exit c -> Printf.printf "exit %d\n" c);
  let z = t.Wazi.z in
  Printf.printf "UART: %s" (Zephyr.Zkernel.uart_output z);
  Printf.printf "GPIO pin 13 edges (virtual-time ms):\n";
  List.iter
    (fun (pin, v, ts) ->
      Printf.printf "  pin %d -> %d at %Ld ms\n" pin v (Int64.div ts 1_000_000L))
    (List.rev z.Zephyr.Zkernel.gpio_log);
  Printf.printf "WAZI calls: %s\n"
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "%s x%d" n c) t.Wazi.trace))
