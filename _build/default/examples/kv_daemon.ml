(* A network daemon (the memcached analogue) under WALI: sockets, an
   mmap'ed slab, a forked load-generating client — then the same run
   under a seccomp-like user-space policy that confines the daemon.

     dune exec examples/kv_daemon.exe *)

let () =
  (match Apps.Suite.find "kvd" with
  | None -> prerr_endline "kvd missing"
  | Some app ->
      let status, out = Apps.Suite.run ~argv:[ "kvd"; "bench"; "25" ] app in
      Printf.printf "--- kvd bench ---\n%s--- exit %d ---\n\n" out status);
  (* now confine it: a dynamic policy layered over WALI (§3.6) *)
  match Apps.Suite.find "kvd" with
  | None -> ()
  | Some app ->
      let policy = Wali.Seccomp.allow_all () in
      Wali.Seccomp.deny policy "socket" ();
      let binary = Apps.Suite.binary_of app in
      let status, out, _ =
        Wali.Interface.run_program ~policy ~binary
          ~argv:[ "kvd"; "bench"; "25" ] ~env:[] ()
      in
      Printf.printf
        "--- same daemon under a deny-socket policy ---\n%s--- exit %d ---\n"
        out status;
      Printf.printf "denied calls: %s\n"
        (String.concat ", "
           (List.map
              (fun (n, c) -> Printf.sprintf "%s x%d" n c)
              (Wali.Seccomp.denied_counts policy)))
