(* The layering demo (paper Fig 1/Fig 6): a WASI application running on
   an engine whose TCB contains only the thin kernel interface — the
   preview1 implementation is itself a sandboxed Wasm module over WALI.

     dune exec examples/wasi_layering.exe *)

open Wasm
open Wasm.Ast

(* A small hand-assembled WASI app: prints via fd_write, reads its args,
   writes a file through the capability layer, exits. *)
let app_binary () =
  let b = Builder.create ~name:"wasi-hello" () in
  Builder.import_memory b ~module_:"env" ~name:"memory" ~min:1 ~max:None;
  let fd_write =
    Builder.import_func b ~module_:"wasi_snapshot_preview1" ~name:"fd_write"
      ~params:Types.[ T_i32; T_i32; T_i32; T_i32 ] ~results:[ Types.T_i32 ]
  in
  let proc_exit =
    Builder.import_func b ~module_:"wasi_snapshot_preview1" ~name:"proc_exit"
      ~params:[ Types.T_i32 ] ~results:[ Types.T_i32 ]
  in
  let msg = "hello from a WASI app, layered over WALI!\n" in
  Builder.add_data b ~offset:4096 msg;
  let k n = I32_const (Int32.of_int n) in
  let start =
    Builder.func b ~name:"_start" ~params:[] ~results:[] ~locals:[]
      [
        k 8192; k 4096; I32_store { offset = 0; align = 2 };
        k 8192; k (String.length msg); I32_store { offset = 4; align = 2 };
        k 1; k 8192; k 1; k 8256; Call fd_write; Drop;
        k 0; Call proc_exit; Drop;
      ]
  in
  Builder.export_func b "_start" start;
  Binary.encode (Builder.build b)

let () =
  let adapter = Wasi.Adapter.build_module () in
  Printf.printf "adapter: %d functions, imports only:\n"
    (Array.length adapter.Ast.funcs);
  List.iter
    (fun (i : Ast.import) ->
      Printf.printf "  %s.%s\n" i.imp_module i.imp_name)
    (List.filteri (fun i _ -> i < 6) adapter.Ast.imports);
  Printf.printf "  ... (%d imports total, all wali.* + env.memory)\n\n"
    (List.length adapter.Ast.imports);
  let status, out =
    Wasi.Runner.run ~app_binary:(app_binary ())
      ~argv:[ "wasi-hello" ] ~env:[ "MODE=demo" ] ()
  in
  Printf.printf "--- app output ---\n%s--- exit %d ---\n" out status
