(* Quickstart: compile a C-like program to Wasm for the WALI target and
   run it on the engine — the whole porting story in thirty lines.

     dune exec examples/quickstart.exe *)

let program =
  {|
    int main(int argc, char **argv) {
      print("hello from Wasm over WALI!\n");
      // plain Linux syscalls, straight through the thin interface:
      int fd = open("/tmp/quickstart.txt", 66, 438);    // O_RDWR|O_CREAT
      write(fd, "persisted by the simulated kernel", 33);
      close(fd);
      print("wrote /tmp/quickstart.txt; my pid is ");
      printi(getpid());
      printc('\n');
      for (int i = 1; i < argc; i = i + 1) {
        print("arg: "); println(argv[i]);
      }
      return 0;
    }
  |}

let () =
  (* 1. compile (MiniC -> wasm32-wali-linux binary) *)
  let binary = Minic.to_wasm_binary program in
  Printf.printf "compiled %d-byte .wasm binary\n" (String.length binary);
  (* the import section is the syscall manifest (paper §3.6) *)
  let m = Wasm.Binary.decode binary in
  let syscalls =
    List.filter_map
      (fun (i : Wasm.Ast.import) ->
        if i.Wasm.Ast.imp_module = "wali" then Some i.Wasm.Ast.imp_name else None)
      m.Wasm.Ast.imports
  in
  Printf.printf "syscall manifest: %s\n" (String.concat " " syscalls);
  (* 2. run it on the WALI engine over the simulated kernel *)
  let status, output, _ =
    Wali.Interface.run_program ~binary
      ~argv:[ "quickstart"; "one"; "two" ]
      ~env:[ "HOME=/home/user" ] ()
  in
  Printf.printf "--- program output ---\n%s--- exit status %d ---\n" output status
