(* The edge-system workhorse: a shell (the bash analogue) running a
   script with pipelines, subshells, signal traps and file I/O — the
   class of legacy software WASI cannot host (Table 1) and WALI runs
   unmodified.

     dune exec examples/shell_pipeline.exe *)

let script =
  String.concat ";"
    [
      "echo starting pipeline demo";
      "write /tmp/data.txt mixed-case-payload";
      "cat /tmp/data.txt | upcase";
      "echo";
      "sub echo running in a forked subshell";
      "kill-self";
      "loop 5000";
      "status";
      "echo done";
    ]

let () =
  match Apps.Suite.find "minish" with
  | None -> prerr_endline "minish missing"
  | Some app ->
      let trace = Wali.Strace.create () in
      let status, out =
        Apps.Suite.run ~trace ~argv:[ "minish"; "-c"; script ] app
      in
      Printf.printf "--- shell output ---\n%s--- exit %d ---\n" out status;
      Printf.printf "\nsyscall profile of the run (Fig 2 style):\n";
      List.iter
        (fun (name, n) -> Printf.printf "  %-16s %d\n" name n)
        (Wali.Strace.profile trace)
