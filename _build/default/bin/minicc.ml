(* minicc — the toolchain CLI: compile MiniC to the WALI Wasm target (or
   the RV32 guest image), the clang-target analogue.

     dune exec bin/minicc.exe -- prog.mc -o prog.wasm
     dune exec bin/minicc.exe -- --target rv32 prog.mc -o prog.img
     dune exec bin/minicc.exe -- --manifest prog.mc      # syscall manifest *)

open Cmdliner

let compile file target out manifest no_libc =
  let src = In_channel.with_open_bin file In_channel.input_all in
  match target with
  | "wasm" ->
      let binary = Minic.to_wasm_binary ~with_libc:(not no_libc) src in
      if manifest then begin
        let m = Wasm.Binary.decode binary in
        List.iter
          (fun (i : Wasm.Ast.import) ->
            if i.Wasm.Ast.imp_module = "wali" then
              print_endline i.Wasm.Ast.imp_name)
          m.Wasm.Ast.imports
      end
      else begin
        let out = Option.value out ~default:(Filename.remove_extension file ^ ".wasm") in
        Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc binary);
        Printf.printf "wrote %s (%d bytes)\n" out (String.length binary)
      end;
      0
  | "rv32" ->
      let p = if no_libc then Minic.parse src else Minic.parse_with_libc src in
      let img = Minic.Mc_rv.compile p in
      let out = Option.value out ~default:(Filename.remove_extension file ^ ".rv32") in
      Out_channel.with_open_bin out (fun oc ->
          Out_channel.output_string oc img.Minic.Mc_rv.rv_code);
      Printf.printf "wrote %s (code %d bytes, entry 0x%x, data %d bytes)\n" out
        (String.length img.Minic.Mc_rv.rv_code)
        img.Minic.Mc_rv.rv_entry
        (String.length img.Minic.Mc_rv.rv_data);
      0
  | t ->
      Printf.eprintf "unknown target %s (wasm|rv32)\n" t;
      2

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc")
let target = Arg.(value & opt string "wasm" & info [ "target" ] ~doc:"wasm or rv32.")
let out = Arg.(value & opt (some string) None & info [ "o"; "output" ])
let manifest = Arg.(value & flag & info [ "manifest" ] ~doc:"Print the syscall manifest.")
let no_libc = Arg.(value & flag & info [ "no-libc" ] ~doc:"Compile without the bundled libc.")

let cmd =
  Cmd.v
    (Cmd.info "minicc" ~doc:"MiniC compiler for the wasm32-wali-linux and rv32 targets")
    Term.(const compile $ file $ target $ out $ manifest $ no_libc)

let () = exit (Cmd.eval' cmd)
