bin/minicc.ml: Arg Cmd Cmdliner Filename In_channel List Minic Option Out_channel Printf String Term Wasm
