bin/minicc.mli:
