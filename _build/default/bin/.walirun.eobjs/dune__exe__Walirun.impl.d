bin/walirun.ml: Apps Arg Cmd Cmdliner Filename In_channel Kernel List Printf String Term Wali Wasm
