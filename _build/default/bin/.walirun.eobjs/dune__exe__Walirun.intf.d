bin/walirun.mli:
