(* Property tests for the WALI mmap manager (paper §3.2): under random
   sequences of mmap/munmap/mremap the region list stays disjoint,
   sorted and page-aligned, and mappings stay inside the sandbox. *)

open Wali

type op =
  | Map of int (* len *)
  | Map_fixed of int * int (* addr offset, len *)
  | Unmap of int * int (* addr offset, len *)
  | Remap of int * int (* index selector, new len *)

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun l -> Map (1 + (l mod 40000))) int;
        map2 (fun a l -> Map_fixed (a mod 30, 1 + (l mod 20000))) int int;
        map2 (fun a l -> Unmap (a mod 40, 1 + (l mod 30000))) int int;
        map2 (fun i l -> Remap (i, 1 + (l mod 50000))) int int;
      ])

let ops_gen = QCheck.Gen.(list_size (int_range 1 40) op_gen)

let print_op = function
  | Map l -> Printf.sprintf "Map %d" l
  | Map_fixed (a, l) -> Printf.sprintf "Map_fixed (%d, %d)" a l
  | Unmap (a, l) -> Printf.sprintf "Unmap (%d, %d)" a l
  | Remap (i, l) -> Printf.sprintf "Remap (%d, %d)" i l

let arb = QCheck.make ~print:(fun l -> String.concat "; " (List.map print_op l)) ops_gen

let heap_base = 1 lsl 20

let run_ops ops =
  let mem = Wasm.Rt.Memory.create ~min_pages:32 ~max_pages:512 in
  let t = Mmap_mgr.create ~heap_base in
  List.iter
    (fun op ->
      (match op with
      | Map len ->
          ignore
            (Mmap_mgr.mmap t ~mem ~addr:0 ~len ~prot:3
               ~flags:Kernel.Ktypes.(map_private lor map_anonymous)
               ~file:None)
      | Map_fixed (a, len) ->
          let addr = heap_base + (a * 4096) in
          ignore
            (Mmap_mgr.mmap t ~mem ~addr ~len ~prot:3
               ~flags:
                 Kernel.Ktypes.(map_private lor map_anonymous lor map_fixed)
               ~file:None)
      | Unmap (a, len) ->
          ignore (Mmap_mgr.munmap t ~mem ~addr:(heap_base + (a * 4096)) ~len)
      | Remap (i, nl) -> (
          match Mmap_mgr.regions t with
          | [] -> ()
          | rs ->
              let r = List.nth rs (abs i mod List.length rs) in
              ignore
                (Mmap_mgr.mremap t ~mem ~old_addr:r.Mmap_mgr.r_addr
                   ~old_len:r.Mmap_mgr.r_len ~new_len:nl)));
      if not (Mmap_mgr.well_formed t) then
        QCheck.Test.fail_reportf "regions ill-formed after %s" (print_op op))
    ops;
  (* every region lies inside the grown sandbox *)
  List.for_all
    (fun r ->
      r.Mmap_mgr.r_addr >= heap_base
      && r.Mmap_mgr.r_addr + r.Mmap_mgr.r_len <= Wasm.Rt.Memory.size_bytes mem)
    (Mmap_mgr.regions t)

let prop_invariants =
  QCheck.Test.make ~name:"mmap regions disjoint/aligned/in-bounds" ~count:200
    arb run_ops

let test_file_mapping_writeback () =
  (* MAP_SHARED file mappings write back on msync/munmap *)
  let mem = Wasm.Rt.Memory.create ~min_pages:32 ~max_pages:128 in
  let t = Mmap_mgr.create ~heap_base in
  let file = Kernel.Bytebuf.of_string (String.make 8192 'a') in
  match
    Mmap_mgr.mmap t ~mem ~addr:0 ~len:8192 ~prot:3
      ~flags:Kernel.Ktypes.map_shared ~file:(Some (file, 0))
  with
  | Error _ -> Alcotest.fail "mmap failed"
  | Ok addr ->
      (* copy-in happened *)
      Alcotest.(check char) "copy-in" 'a' (Bytes.get mem.Wasm.Rt.Memory.data addr);
      Bytes.set mem.Wasm.Rt.Memory.data (addr + 100) 'Z';
      (match Mmap_mgr.msync t ~mem ~addr ~len:8192 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "msync");
      Alcotest.(check char) "write-back" 'Z'
        (String.get (Kernel.Bytebuf.contents file) 100);
      (* private mappings do NOT write back *)
      (match
         Mmap_mgr.mmap t ~mem ~addr:0 ~len:4096 ~prot:3
           ~flags:Kernel.Ktypes.map_private ~file:(Some (file, 0))
       with
      | Ok a2 ->
          Bytes.set mem.Wasm.Rt.Memory.data a2 'Q';
          (match Mmap_mgr.munmap t ~mem ~addr:a2 ~len:4096 with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "munmap");
          Alcotest.(check char) "private not written back" 'a'
            (String.get (Kernel.Bytebuf.contents file) 0)
      | Error _ -> Alcotest.fail "private map")

let test_partial_unmap_splits () =
  let mem = Wasm.Rt.Memory.create ~min_pages:64 ~max_pages:256 in
  let t = Mmap_mgr.create ~heap_base in
  match
    Mmap_mgr.mmap t ~mem ~addr:0 ~len:(16 * 4096) ~prot:3
      ~flags:Kernel.Ktypes.(map_private lor map_anonymous) ~file:None
  with
  | Error _ -> Alcotest.fail "mmap"
  | Ok a ->
      (* punch a hole in the middle *)
      (match Mmap_mgr.munmap t ~mem ~addr:(a + (4 * 4096)) ~len:(4 * 4096) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "munmap");
      Alcotest.(check int) "two pieces" 2 (List.length (Mmap_mgr.regions t));
      Alcotest.(check bool) "well-formed" true (Mmap_mgr.well_formed t);
      (* the hole is reusable with MAP_FIXED *)
      (match
         Mmap_mgr.mmap t ~mem ~addr:(a + (4 * 4096)) ~len:(2 * 4096) ~prot:3
           ~flags:Kernel.Ktypes.(map_private lor map_anonymous lor map_fixed)
           ~file:None
       with
      | Ok a2 -> Alcotest.(check int) "hole reused" (a + (4 * 4096)) a2
      | Error _ -> Alcotest.fail "fixed remap into hole")

let test_efault_on_bad_pointers () =
  (* dispatcher turns failed translation into -EFAULT, like the kernel *)
  let status = ref 0 in
  let binary =
    Minic.to_wasm_binary
      {|
        int main() {
          // read into a pointer far outside the sandbox limit
          int r = syscall("read", 0, 0x7f000000, 64);
          exit(-r); // EFAULT = 14
          return 0;
        }
      |}
  in
  let s, _, _ = Wali.Interface.run_program ~binary ~argv:[ "t" ] ~env:[] () in
  status := s;
  Alcotest.(check int) "EFAULT" (Kernel.Ktypes.wexit_status 14) !status

let tests =
  [
    QCheck_alcotest.to_alcotest prop_invariants;
    Alcotest.test_case "shared file mapping write-back" `Quick test_file_mapping_writeback;
    Alcotest.test_case "partial unmap splits regions" `Quick test_partial_unmap_splits;
    Alcotest.test_case "bad guest pointers yield EFAULT" `Quick test_efault_on_bad_pointers;
  ]
