(* Tests for the deterministic fiber scheduler. *)

let test_spawn_order () =
  let log = ref [] in
  Fiber.run (fun () ->
      let push s = log := s :: !log in
      ignore (Fiber.spawn "a" (fun () -> push "a1"; Fiber.yield (); push "a2"));
      ignore (Fiber.spawn "b" (fun () -> push "b1"; Fiber.yield (); push "b2"));
      push "root");
  Alcotest.(check (list string))
    "round robin" [ "root"; "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_suspend_resume () =
  let got = ref 0 in
  Fiber.run (fun () ->
      let resumer = ref None in
      ignore
        (Fiber.spawn "waiter" (fun () ->
             got := Fiber.suspend (fun r -> resumer := Some r)));
      ignore
        (Fiber.spawn "waker" (fun () ->
             match !resumer with Some r -> r 42 | None -> ())));
  Alcotest.(check int) "value passed through resume" 42 !got

let test_resume_once () =
  let count = ref 0 in
  Fiber.run (fun () ->
      let resumer = ref None in
      ignore
        (Fiber.spawn "w" (fun () ->
             ignore (Fiber.suspend (fun r -> resumer := Some r));
             incr count));
      ignore
        (Fiber.spawn "k" (fun () ->
             match !resumer with
             | Some r ->
                 r ();
                 r ();
                 r ()
             | None -> ())));
  Alcotest.(check int) "double resume ignored" 1 !count

let test_virtual_clock () =
  let t0 = ref 0L and t1 = ref 0L in
  Fiber.run (fun () ->
      t0 := Fiber.now ();
      Fiber.sleep_until (Int64.add !t0 1_000_000L);
      t1 := Fiber.now ());
  Alcotest.(check bool) "clock advanced past deadline" true
    (Int64.compare !t1 (Int64.add !t0 1_000_000L) >= 0)

let test_sleep_interleaving () =
  (* Two sleepers wake in deadline order regardless of spawn order. *)
  let log = ref [] in
  Fiber.run (fun () ->
      let base = Fiber.now () in
      ignore
        (Fiber.spawn "late" (fun () ->
             Fiber.sleep_until (Int64.add base 2_000_000L);
             log := "late" :: !log));
      ignore
        (Fiber.spawn "early" (fun () ->
             Fiber.sleep_until (Int64.add base 1_000_000L);
             log := "early" :: !log)));
  Alcotest.(check (list string)) "deadline order" [ "early"; "late" ]
    (List.rev !log)

let test_deadlock_detection () =
  match
    Fiber.run (fun () -> ignore (Fiber.suspend (fun _ -> ())))
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Fiber.Deadlock names ->
      Alcotest.(check bool) "stuck fiber reported" true (List.mem "root" names)

let test_timeout_pattern () =
  (* The kernel's timed-wait pattern: first of wake/timeout wins. *)
  let result = ref "" in
  Fiber.run (fun () ->
      let resumer = ref None in
      ignore
        (Fiber.spawn "w" (fun () ->
             let r =
               Fiber.suspend (fun resume ->
                   resumer := Some resume;
                   Fiber.at (Int64.add (Fiber.now ()) 500_000L) (fun () ->
                       resume "timeout"))
             in
             result := r));
      (* nobody wakes it: the timer should *)
      ());
  Alcotest.(check string) "timed out" "timeout" !result

let test_many_fibers () =
  let n = 1000 in
  let sum = ref 0 in
  Fiber.run (fun () ->
      for i = 1 to n do
        ignore
          (Fiber.spawn (Printf.sprintf "f%d" i) (fun () ->
               Fiber.yield ();
               sum := !sum + i))
      done);
  Alcotest.(check int) "all fibers ran" (n * (n + 1) / 2) !sum

let tests =
  [
    Alcotest.test_case "spawn order round-robin" `Quick test_spawn_order;
    Alcotest.test_case "suspend/resume passes value" `Quick test_suspend_resume;
    Alcotest.test_case "resume is one-shot" `Quick test_resume_once;
    Alcotest.test_case "virtual clock advances" `Quick test_virtual_clock;
    Alcotest.test_case "sleepers wake in deadline order" `Quick test_sleep_interleaving;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "timeout pattern" `Quick test_timeout_pattern;
    Alcotest.test_case "1000 fibers" `Quick test_many_fibers;
  ]
