(* Tests for the simulated Linux kernel: VFS, fds, pipes, processes,
   signals, sockets, poll, futex. All run inside Fiber.run so blocking
   semantics are exercised for real. *)

open Kernel

let in_kernel f =
  let result = ref None in
  Fiber.run (fun () ->
      let k = Task.boot () in
      let init = Task.make_init k ~comm:"init" in
      let ctx = Syscalls.make_ctx k init (Futex.create ()) in
      result := Some (f k ctx));
  Option.get !result

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.to_string e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e ->
      Alcotest.(check string) "errno" (Errno.to_string expected)
        (Errno.to_string e)

let read_all ctx fd =
  let buf = Bytes.create 4096 in
  let b = Buffer.create 64 in
  let rec go () =
    match ok (Syscalls.read ctx ~fd ~buf ~off:0 ~len:4096) with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b buf 0 n;
        go ()
  in
  go ()

let write_str ctx fd s =
  let b = Bytes.of_string s in
  ok (Syscalls.write ctx ~fd ~buf:b ~off:0 ~len:(Bytes.length b))

(* ---- VFS ---- *)

let test_open_write_read () =
  in_kernel (fun _k ctx ->
      let fd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/x.txt"
             ~flags:Ktypes.(o_creat lor o_rdwr) ~mode:0o644)
      in
      Alcotest.(check int) "written" 5 (write_str ctx fd "hello");
      ignore (ok (Syscalls.lseek ctx ~fd ~offset:0 ~whence:Ktypes.seek_set));
      Alcotest.(check string) "read back" "hello" (read_all ctx fd);
      ok (Syscalls.close ctx ~fd))

let test_enoent_and_creat () =
  in_kernel (fun _k ctx ->
      expect_err Errno.ENOENT
        (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/no/such/file"
           ~flags:Ktypes.o_rdonly ~mode:0);
      expect_err Errno.ENOENT
        (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/missing"
           ~flags:Ktypes.o_rdonly ~mode:0);
      (* O_CREAT|O_EXCL on existing *)
      let fd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/e"
             ~flags:Ktypes.(o_creat lor o_wronly) ~mode:0o600)
      in
      ok (Syscalls.close ctx ~fd);
      expect_err Errno.EEXIST
        (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/e"
           ~flags:Ktypes.(o_creat lor o_excl lor o_wronly) ~mode:0o600))

let test_mkdir_readdir_unlink () =
  in_kernel (fun _k ctx ->
      ok (Syscalls.mkdirat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/d" ~mode:0o755);
      let mk name =
        let fd =
          ok
            (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd
               ~path:("/tmp/d/" ^ name)
               ~flags:Ktypes.(o_creat lor o_wronly) ~mode:0o644)
        in
        ok (Syscalls.close ctx ~fd)
      in
      mk "a"; mk "b"; mk "c";
      let dfd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/d"
             ~flags:Ktypes.o_rdonly ~mode:0)
      in
      let entries = ok (Syscalls.getdents ctx ~fd:dfd ~max:100) in
      let names = List.map (fun (n, _, _) -> n) entries in
      Alcotest.(check (list string)) "entries" [ "."; ".."; "a"; "b"; "c" ] names;
      ok (Syscalls.unlinkat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/d/b" ~rmdir_flag:false);
      expect_err Errno.ENOTEMPTY
        (Syscalls.unlinkat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/d" ~rmdir_flag:true);
      ok (Syscalls.unlinkat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/d/a" ~rmdir_flag:false);
      ok (Syscalls.unlinkat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/d/c" ~rmdir_flag:false);
      ok (Syscalls.unlinkat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/d" ~rmdir_flag:true))

let test_symlink_resolution () =
  in_kernel (fun k ctx ->
      Vfs.write_file k.Task.fs "/tmp/target" "payload";
      ok (Syscalls.symlinkat ctx ~target:"/tmp/target" ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/ln");
      let fd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/ln"
             ~flags:Ktypes.o_rdonly ~mode:0)
      in
      Alcotest.(check string) "through symlink" "payload" (read_all ctx fd);
      let target = ok (Syscalls.readlinkat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/ln") in
      Alcotest.(check string) "readlink" "/tmp/target" target;
      (* symlink loop *)
      ok (Syscalls.symlinkat ctx ~target:"/tmp/loop2" ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/loop1");
      ok (Syscalls.symlinkat ctx ~target:"/tmp/loop1" ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/loop2");
      expect_err Errno.ELOOP
        (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/loop1"
           ~flags:Ktypes.o_rdonly ~mode:0))

let test_rename_stat () =
  in_kernel (fun k ctx ->
      Vfs.write_file k.Task.fs "/tmp/old" "data";
      ok
        (Syscalls.renameat ctx ~olddirfd:Syscalls.at_fdcwd ~oldpath:"/tmp/old"
           ~newdirfd:Syscalls.at_fdcwd ~newpath:"/tmp/new");
      expect_err Errno.ENOENT
        (Syscalls.stat_path ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/old" ~follow:true);
      let st = ok (Syscalls.stat_path ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/new" ~follow:true) in
      Alcotest.(check int64) "size" 4L st.Ktypes.st_size;
      Alcotest.(check int) "type" Ktypes.s_ifreg (st.Ktypes.st_mode land Ktypes.s_ifmt))

let test_chdir_getcwd () =
  in_kernel (fun _k ctx ->
      ok (Syscalls.mkdirat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/wd" ~mode:0o755);
      ok (Syscalls.chdir ctx ~path:"/tmp/wd");
      Alcotest.(check string) "getcwd" "/tmp/wd" (ok (Syscalls.getcwd ctx));
      (* relative resolution *)
      let fd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"rel.txt"
             ~flags:Ktypes.(o_creat lor o_wronly) ~mode:0o644)
      in
      ok (Syscalls.close ctx ~fd);
      ignore (ok (Syscalls.stat_path ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/wd/rel.txt" ~follow:true)))

(* ---- dup/fcntl ---- *)

let test_dup_shares_offset () =
  in_kernel (fun _k ctx ->
      let fd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/dup"
             ~flags:Ktypes.(o_creat lor o_rdwr) ~mode:0o644)
      in
      let fd2 = ok (Syscalls.dup ctx ~fd) in
      ignore (write_str ctx fd "abc");
      ignore (write_str ctx fd2 "def");
      ignore (ok (Syscalls.lseek ctx ~fd ~offset:0 ~whence:Ktypes.seek_set));
      Alcotest.(check string) "shared offset" "abcdef" (read_all ctx fd2))

let test_dup3_cloexec () =
  in_kernel (fun _k ctx ->
      let fd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/ce"
             ~flags:Ktypes.(o_creat lor o_rdwr) ~mode:0o644)
      in
      let nfd = ok (Syscalls.dup3 ctx ~fd ~newfd:17 ~cloexec:true) in
      Alcotest.(check int) "dup3 target" 17 nfd;
      Alcotest.(check int) "FD_CLOEXEC set" Ktypes.fd_cloexec
        (ok (Syscalls.fcntl ctx ~fd:17 ~cmd:Ktypes.f_getfd ~arg:0)))

(* ---- pipes ---- *)

let test_pipe_blocking () =
  in_kernel (fun k ctx ->
      let r, w = ok (Syscalls.pipe2 ctx ~flags:0) in
      let got = ref "" in
      let reader = Task.clone_task k ctx.Syscalls.t ~thread:false ~share_files:true in
      let rctx = Syscalls.make_ctx k reader ctx.Syscalls.futexes in
      ignore
        (Fiber.spawn "reader" (fun () ->
             let buf = Bytes.create 16 in
             let n = ok (Syscalls.read rctx ~fd:r ~buf ~off:0 ~len:16) in
             got := Bytes.sub_string buf 0 n;
             Task.exit_task k reader ~status:0));
      Fiber.yield ();
      (* reader is now blocked on the empty pipe *)
      ignore (write_str ctx w "ping");
      Fiber.yield ();
      Fiber.yield ();
      Alcotest.(check string) "reader unblocked" "ping" !got)

let test_pipe_eof_epipe () =
  in_kernel (fun _k ctx ->
      let r, w = ok (Syscalls.pipe2 ctx ~flags:0) in
      ignore (write_str ctx w "x");
      ok (Syscalls.close ctx ~fd:w);
      let buf = Bytes.create 8 in
      Alcotest.(check int) "last byte" 1 (ok (Syscalls.read ctx ~fd:r ~buf ~off:0 ~len:8));
      Alcotest.(check int) "EOF" 0 (ok (Syscalls.read ctx ~fd:r ~buf ~off:0 ~len:8));
      (* EPIPE on write to pipe with no readers *)
      let r2, w2 = ok (Syscalls.pipe2 ctx ~flags:0) in
      ok (Syscalls.close ctx ~fd:r2);
      expect_err Errno.EPIPE
        (Syscalls.write ctx ~fd:w2 ~buf:(Bytes.of_string "y") ~off:0 ~len:1);
      (* and SIGPIPE was posted *)
      Alcotest.(check bool) "SIGPIPE pending" true
        (Ktypes.Sigset.mem
           (Ktypes.Sigset.union ctx.Syscalls.t.Task.pending
              ctx.Syscalls.t.Task.group.Task.group_pending)
           Ktypes.sigpipe))

let test_pipe_nonblock () =
  in_kernel (fun _k ctx ->
      let r, _w = ok (Syscalls.pipe2 ctx ~flags:Ktypes.o_nonblock) in
      let buf = Bytes.create 8 in
      expect_err Errno.EAGAIN (Syscalls.read ctx ~fd:r ~buf ~off:0 ~len:8))

(* ---- fork/wait/signals ---- *)

let test_fork_wait () =
  in_kernel (fun k ctx ->
      let child = Task.clone_task k ctx.Syscalls.t ~thread:false ~share_files:false in
      ignore
        (Fiber.spawn "child" (fun () ->
             Task.exit_task k child ~status:(Ktypes.wexit_status 7)));
      let r = ok (Syscalls.wait4 ctx ~pid:(-1) ~options:0) in
      match r with
      | Some wr ->
          Alcotest.(check int) "pid" child.Task.tgid wr.Task.wr_pid;
          Alcotest.(check int) "status" (Ktypes.wexit_status 7) wr.Task.wr_status
      | None -> Alcotest.fail "no child reaped")

let test_wait_echild () =
  in_kernel (fun _k ctx ->
      expect_err Errno.ECHILD (Syscalls.wait4 ctx ~pid:(-1) ~options:0))

let test_wnohang () =
  in_kernel (fun k ctx ->
      let child = Task.clone_task k ctx.Syscalls.t ~thread:false ~share_files:false in
      ignore
        (Fiber.spawn "child" (fun () ->
             Fiber.yield ();
             Task.exit_task k child ~status:0));
      (match ok (Syscalls.wait4 ctx ~pid:(-1) ~options:Ktypes.wnohang) with
      | None -> ()
      | Some _ -> Alcotest.fail "child should still run");
      (* blocking wait reaps it *)
      match ok (Syscalls.wait4 ctx ~pid:(-1) ~options:0) with
      | Some _ -> ()
      | None -> Alcotest.fail "expected reap")

let test_signal_interrupts_read () =
  in_kernel (fun k ctx ->
      let r, _w = ok (Syscalls.pipe2 ctx ~flags:0) in
      let child = Task.clone_task k ctx.Syscalls.t ~thread:false ~share_files:true in
      let cctx = Syscalls.make_ctx k child ctx.Syscalls.futexes in
      (* register a handler so SIGUSR1 is not fatal/ignored *)
      ignore
        (ok
           (Syscalls.rt_sigaction cctx ~signo:Ktypes.sigusr1
              ~action:(Some { Ktypes.sa_handler = 42; sa_mask = 0L; sa_flags = 0 })));
      let result = ref (Ok 0) in
      ignore
        (Fiber.spawn "child" (fun () ->
             let buf = Bytes.create 4 in
             result := Syscalls.read cctx ~fd:r ~buf ~off:0 ~len:4;
             Task.exit_task k child ~status:0));
      Fiber.yield ();
      ok (Syscalls.kill ctx ~pid:child.Task.tgid ~signo:Ktypes.sigusr1);
      Fiber.yield ();
      Fiber.yield ();
      expect_err Errno.EINTR !result)

let test_blocked_signal_stays_pending () =
  in_kernel (fun _k ctx ->
      let t = ctx.Syscalls.t in
      ignore
        (ok
           (Syscalls.rt_sigaction ctx ~signo:Ktypes.sigusr2
              ~action:(Some { Ktypes.sa_handler = 1000; sa_mask = 0L; sa_flags = 0 })));
      ignore
        (ok
           (Syscalls.rt_sigprocmask ctx ~how:Ktypes.sig_block
              ~set:(Some (Ktypes.Sigset.add Ktypes.Sigset.empty Ktypes.sigusr2))));
      ok (Syscalls.kill ctx ~pid:t.Task.tgid ~signo:Ktypes.sigusr2);
      Alcotest.(check bool) "not deliverable while blocked" false
        (Task.has_deliverable_signal t);
      ignore
        (ok
           (Syscalls.rt_sigprocmask ctx ~how:Ktypes.sig_unblock
              ~set:(Some (Ktypes.Sigset.add Ktypes.Sigset.empty Ktypes.sigusr2))));
      Alcotest.(check bool) "deliverable after unblock" true
        (Task.has_deliverable_signal t);
      match Task.next_signal t with
      | Some (n, a) ->
          Alcotest.(check int) "signo" Ktypes.sigusr2 n;
          Alcotest.(check int) "handler" 1000 a.Ktypes.sa_handler
      | None -> Alcotest.fail "expected pending signal")

let test_ignored_signal_discarded () =
  in_kernel (fun _k ctx ->
      let t = ctx.Syscalls.t in
      ignore
        (ok
           (Syscalls.rt_sigaction ctx ~signo:Ktypes.sigusr1
              ~action:(Some { Ktypes.sa_handler = Ktypes.sig_ign; sa_mask = 0L; sa_flags = 0 })));
      ok (Syscalls.kill ctx ~pid:t.Task.tgid ~signo:Ktypes.sigusr1);
      Alcotest.(check bool) "discarded" false (Task.has_deliverable_signal t))

let test_kill_pgroup () =
  in_kernel (fun k ctx ->
      let mk () =
        let c = Task.clone_task k ctx.Syscalls.t ~thread:false ~share_files:false in
        let cctx = Syscalls.make_ctx k c ctx.Syscalls.futexes in
        ignore
          (ok
             (Syscalls.rt_sigaction cctx ~signo:Ktypes.sigterm
                ~action:(Some { Ktypes.sa_handler = 5; sa_mask = 0L; sa_flags = 0 })));
        c
      in
      let c1 = mk () and c2 = mk () in
      ok (Syscalls.setpgid ctx ~pid:c1.Task.tgid ~pgid:c1.Task.tgid);
      ok (Syscalls.setpgid ctx ~pid:c2.Task.tgid ~pgid:c1.Task.tgid);
      ok (Syscalls.kill ctx ~pid:(-c1.Task.tgid) ~signo:Ktypes.sigterm);
      Alcotest.(check bool) "c1 got it" true (Task.has_deliverable_signal c1);
      Alcotest.(check bool) "c2 got it" true (Task.has_deliverable_signal c2);
      Alcotest.(check bool) "init spared" false
        (Task.has_deliverable_signal ctx.Syscalls.t))

let test_sigkill_uncatchable () =
  in_kernel (fun _k ctx ->
      expect_err Errno.EINVAL
        (Syscalls.rt_sigaction ctx ~signo:Ktypes.sigkill
           ~action:(Some { Ktypes.sa_handler = 9; sa_mask = 0L; sa_flags = 0 }));
      (* blocking SIGKILL is silently impossible *)
      ignore
        (ok
           (Syscalls.rt_sigprocmask ctx ~how:Ktypes.sig_block
              ~set:(Some Ktypes.Sigset.full)));
      Alcotest.(check bool) "KILL not maskable" false
        (Ktypes.Sigset.mem ctx.Syscalls.t.Task.sigmask Ktypes.sigkill))

(* ---- sockets ---- *)

let test_socket_roundtrip () =
  in_kernel (fun k ctx ->
      let addr = Socket.A_inet (0x7F000001, 8080) in
      let srv = ok (Syscalls.socket ctx ~family:Ktypes.af_inet ~stype:Ktypes.sock_stream) in
      ok (Syscalls.bind ctx ~fd:srv ~addr);
      ok (Syscalls.listen ctx ~fd:srv ~backlog:8);
      let server_done = ref false in
      let st = Task.clone_task k ctx.Syscalls.t ~thread:false ~share_files:true in
      let sctx = Syscalls.make_ctx k st ctx.Syscalls.futexes in
      ignore
        (Fiber.spawn "server" (fun () ->
             let cfd = ok (Syscalls.accept sctx ~fd:srv) in
             let buf = Bytes.create 64 in
             let n = ok (Syscalls.read sctx ~fd:cfd ~buf ~off:0 ~len:64) in
             let req = Bytes.sub_string buf 0 n in
             ignore (write_str sctx cfd ("echo:" ^ req));
             ok (Syscalls.close sctx ~fd:cfd);
             server_done := true;
             Task.exit_task k st ~status:0));
      Fiber.yield ();
      let cli = ok (Syscalls.socket ctx ~family:Ktypes.af_inet ~stype:Ktypes.sock_stream) in
      ok (Syscalls.connect ctx ~fd:cli ~addr);
      ignore (write_str ctx cli "hi");
      let buf = Bytes.create 64 in
      let n = ok (Syscalls.read ctx ~fd:cli ~buf ~off:0 ~len:64) in
      Alcotest.(check string) "echo" "echo:hi" (Bytes.sub_string buf 0 n);
      Alcotest.(check bool) "server finished" true !server_done)

let test_connect_refused () =
  in_kernel (fun _k ctx ->
      let cli = ok (Syscalls.socket ctx ~family:Ktypes.af_inet ~stype:Ktypes.sock_stream) in
      expect_err Errno.ECONNREFUSED
        (Syscalls.connect ctx ~fd:cli ~addr:(Socket.A_inet (0x7F000001, 9999))))

let test_socketpair () =
  in_kernel (fun _k ctx ->
      let a, b = ok (Syscalls.socketpair ctx ~family:Ktypes.af_unix) in
      ignore (write_str ctx a "ab");
      let buf = Bytes.create 8 in
      let n = ok (Syscalls.read ctx ~fd:b ~buf ~off:0 ~len:8) in
      Alcotest.(check string) "pair" "ab" (Bytes.sub_string buf 0 n))

(* ---- poll ---- *)

let test_poll () =
  in_kernel (fun _k ctx ->
      let r, w = ok (Syscalls.pipe2 ctx ~flags:0) in
      (* nothing readable yet: timeout 0 returns 0 ready *)
      let n, _ = ok (Syscalls.poll ctx ~fds:[ (r, Ktypes.pollin) ] ~timeout_ms:0) in
      Alcotest.(check int) "not ready" 0 n;
      ignore (write_str ctx w "z");
      let n, revents = ok (Syscalls.poll ctx ~fds:[ (r, Ktypes.pollin) ] ~timeout_ms:(-1)) in
      Alcotest.(check int) "ready" 1 n;
      Alcotest.(check int) "POLLIN" Ktypes.pollin (List.hd revents land Ktypes.pollin))

let test_poll_timeout_advances_clock () =
  in_kernel (fun _k ctx ->
      let r, _w = ok (Syscalls.pipe2 ctx ~flags:0) in
      let t0 = Fiber.now () in
      let n, _ = ok (Syscalls.poll ctx ~fds:[ (r, Ktypes.pollin) ] ~timeout_ms:5) in
      Alcotest.(check int) "timed out" 0 n;
      Alcotest.(check bool) "5ms elapsed" true
        (Int64.compare (Int64.sub (Fiber.now ()) t0) 5_000_000L >= 0))

(* ---- futex ---- *)

let test_futex () =
  in_kernel (fun k ctx ->
      let cell = ref 0l in
      let load () = !cell in
      (* immediate EAGAIN when value changed *)
      expect_err Errno.EAGAIN
        (Syscalls.futex_wait ctx ~mem_id:1 ~addr:0 ~load ~expected:5l
           ~timeout_ns:None);
      let waiter = Task.clone_task k ctx.Syscalls.t ~thread:true ~share_files:true in
      let wctx = Syscalls.make_ctx k waiter ctx.Syscalls.futexes in
      let woke = ref false in
      ignore
        (Fiber.spawn "futexw" (fun () ->
             ok
               (Syscalls.futex_wait wctx ~mem_id:1 ~addr:0 ~load ~expected:0l
                  ~timeout_ns:None);
             woke := true;
             Task.exit_task k waiter ~status:0));
      Fiber.yield ();
      cell := 1l;
      Alcotest.(check int) "one woken" 1
        (Syscalls.futex_wake ctx ~mem_id:1 ~addr:0 ~n:10);
      Fiber.yield ();
      Fiber.yield ();
      Alcotest.(check bool) "waiter resumed" true !woke)

(* ---- time/misc ---- *)

let test_nanosleep () =
  in_kernel (fun _k ctx ->
      let t0 = Fiber.now () in
      ok (Syscalls.nanosleep ctx ~ns:3_000_000L);
      Alcotest.(check bool) "slept" true
        (Int64.compare (Int64.sub (Fiber.now ()) t0) 3_000_000L >= 0))

let test_proc_self_mem_exists () =
  in_kernel (fun k ctx ->
      ignore k;
      (* The kernel itself serves it; WALI is responsible for refusing. *)
      let fd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/proc/self/mem"
             ~flags:Ktypes.o_rdonly ~mode:0)
      in
      ok (Syscalls.close ctx ~fd))

let test_ids_and_umask () =
  in_kernel (fun _k ctx ->
      Alcotest.(check int) "init pid" 1 (Syscalls.getpid ctx);
      Alcotest.(check int) "ppid" 0 (Syscalls.getppid ctx);
      let old = Syscalls.umask ctx ~mask:0o077 in
      Alcotest.(check int) "default umask" 0o022 old;
      (* creation honours umask *)
      let fd =
        ok
          (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/um"
             ~flags:Ktypes.(o_creat lor o_wronly) ~mode:0o666)
      in
      ok (Syscalls.close ctx ~fd);
      let st = ok (Syscalls.stat_path ctx ~dirfd:Syscalls.at_fdcwd ~path:"/tmp/um" ~follow:true) in
      Alcotest.(check int) "mode masked" 0o600 (st.Ktypes.st_mode land 0o777))

(* QCheck: path resolution invariants *)

let path_gen =
  QCheck.Gen.(
    let seg = oneofl [ "a"; "b"; "c"; "."; ".."; "x1" ] in
    let* n = int_range 0 6 in
    let* segs = list_size (return n) seg in
    let* abs = bool in
    return ((if abs then "/" else "") ^ String.concat "/" segs))

let prop_resolution_stable =
  QCheck.Test.make ~name:"resolution is deterministic" ~count:200
    (QCheck.make path_gen)
    (fun p ->
      in_kernel (fun k ctx ->
          ignore ctx;
          let fs = k.Task.fs in
          Vfs.write_file fs "/a/b/c/file" "x";
          let r1 = Vfs.resolve fs ~cwd:fs.Vfs.root p in
          let r2 = Vfs.resolve fs ~cwd:fs.Vfs.root p in
          match (r1, r2) with
          | Ok i1, Ok i2 -> i1 == i2
          | Error e1, Error e2 -> e1 = e2
          | _ -> false))

let prop_fd_alloc_lowest =
  QCheck.Test.make ~name:"fds allocate lowest-free" ~count:50
    QCheck.(int_bound 20)
    (fun n ->
      in_kernel (fun _k ctx ->
          let fds =
            List.init (n + 1) (fun i ->
                ok
                  (Syscalls.openat ctx ~dirfd:Syscalls.at_fdcwd
                     ~path:(Printf.sprintf "/tmp/f%d" i)
                     ~flags:Ktypes.(o_creat lor o_rdwr) ~mode:0o600))
          in
          fds = List.init (n + 1) (fun i -> i)))

let tests =
  [
    Alcotest.test_case "open/write/read" `Quick test_open_write_read;
    Alcotest.test_case "ENOENT and O_CREAT|O_EXCL" `Quick test_enoent_and_creat;
    Alcotest.test_case "mkdir/getdents/unlink/rmdir" `Quick test_mkdir_readdir_unlink;
    Alcotest.test_case "symlinks + ELOOP" `Quick test_symlink_resolution;
    Alcotest.test_case "rename + stat" `Quick test_rename_stat;
    Alcotest.test_case "chdir/getcwd/relative paths" `Quick test_chdir_getcwd;
    Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
    Alcotest.test_case "dup3 + cloexec" `Quick test_dup3_cloexec;
    Alcotest.test_case "pipe blocks and wakes" `Quick test_pipe_blocking;
    Alcotest.test_case "pipe EOF and EPIPE/SIGPIPE" `Quick test_pipe_eof_epipe;
    Alcotest.test_case "pipe O_NONBLOCK" `Quick test_pipe_nonblock;
    Alcotest.test_case "fork + wait4 status" `Quick test_fork_wait;
    Alcotest.test_case "wait with no children" `Quick test_wait_echild;
    Alcotest.test_case "WNOHANG" `Quick test_wnohang;
    Alcotest.test_case "signal interrupts blocked read (EINTR)" `Quick test_signal_interrupts_read;
    Alcotest.test_case "blocked signal stays pending" `Quick test_blocked_signal_stays_pending;
    Alcotest.test_case "ignored signal discarded" `Quick test_ignored_signal_discarded;
    Alcotest.test_case "kill process group" `Quick test_kill_pgroup;
    Alcotest.test_case "SIGKILL uncatchable/unmaskable" `Quick test_sigkill_uncatchable;
    Alcotest.test_case "stream socket round-trip" `Quick test_socket_roundtrip;
    Alcotest.test_case "ECONNREFUSED" `Quick test_connect_refused;
    Alcotest.test_case "socketpair" `Quick test_socketpair;
    Alcotest.test_case "poll readiness" `Quick test_poll;
    Alcotest.test_case "poll timeout advances virtual clock" `Quick test_poll_timeout_advances_clock;
    Alcotest.test_case "futex wait/wake" `Quick test_futex;
    Alcotest.test_case "nanosleep" `Quick test_nanosleep;
    Alcotest.test_case "/proc/self/mem exists in kernel" `Quick test_proc_self_mem_exists;
    Alcotest.test_case "ids + umask" `Quick test_ids_and_umask;
    QCheck_alcotest.to_alcotest prop_resolution_stable;
    QCheck_alcotest.to_alcotest prop_fd_alloc_lowest;
  ]
