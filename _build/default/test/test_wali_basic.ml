(* End-to-end WALI smoke tests with hand-assembled Wasm modules:
   write/exit, fork, signal handler execution, /proc/self/mem
   interposition, seccomp policies. The heavier application-level tests
   live in test_wali_apps.ml and use the MiniC toolchain. *)

open Wasm
open Wasm.Ast
open Wali

let i64t = Types.T_i64
let i32t = Types.T_i32

(* Build a module that imports the given WALI syscalls and runs [body]
   as _start (with [locals]). Returns the encoded binary. *)
let build_wali_module ?(extra = fun (_ : Builder.t) -> ())
    ~(imports : (string * int) list) ~locals body : string =
  let b = Builder.create ~name:"t" () in
  ignore (Builder.add_memory b ~min:4 ~max:(Some 64));
  let idx =
    List.map
      (fun (name, arity) ->
        ( name,
          Builder.import_func b ~module_:"wali" ~name:("SYS_" ^ name)
            ~params:(List.init arity (fun _ -> i64t))
            ~results:[ i64t ] ))
      imports
  in
  extra b;
  let call name = Call (List.assoc name idx) in
  let start = Builder.func b ~name:"_start" ~params:[] ~results:[] ~locals (body call) in
  Builder.export_func b "_start" start;
  Builder.export_memory b "memory" 0;
  Binary.encode (Builder.build b)

let k n = I64_const (Int64.of_int n)

let run ?policy binary =
  Interface.run_program ?policy ~binary ~argv:[ "test" ] ~env:[] ()

(* write(1, "hi\n", 3); exit_group(0) *)
let test_hello () =
  let binary =
    build_wali_module
      ~imports:[ ("write", 3); ("exit_group", 1) ]
      ~locals:[]
      (fun call ->
        [
          (* place "hi\n" at address 64 *)
          I32_const 64l; I32_const 0x0A6968l; I32_store { offset = 0; align = 2 };
          k 1; k 64; k 3; call "write"; Drop;
          k 0; call "exit_group"; Drop;
        ])
  in
  let status, out, _ = run binary in
  Alcotest.(check string) "stdout" "hi\n" out;
  Alcotest.(check int) "status" 0 status

let test_exit_code () =
  let binary =
    build_wali_module
      ~imports:[ ("exit_group", 1) ]
      ~locals:[]
      (fun call -> [ k 7; call "exit_group"; Drop ])
  in
  let status, _, _ = run binary in
  Alcotest.(check int) "status" (Kernel.Ktypes.wexit_status 7) status

(* fork: parent writes P, child writes C, parent waits. *)
let test_fork () =
  let binary =
    build_wali_module
      ~imports:[ ("write", 3); ("fork", 0); ("wait4", 4); ("exit_group", 1) ]
      ~locals:[ i64t ]
      (fun call ->
        [
          I32_const 64l; I32_const (Int32.of_int (Char.code 'C')); I32_store8 { offset = 0; align = 0 };
          I32_const 65l; I32_const (Int32.of_int (Char.code 'P')); I32_store8 { offset = 0; align = 0 };
          call "fork"; Local_set 0;
          Local_get 0; I64_eqz;
          If
            ( Bt_none,
              [ (* child *) k 1; k 64; k 1; call "write"; Drop; k 0; call "exit_group"; Drop ],
              [
                (* parent: wait for child then write P *)
                k (-1); k 0; k 0; k 0; call "wait4"; Drop;
                k 1; k 65; k 1; call "write"; Drop;
              ] );
          k 0; call "exit_group"; Drop;
        ])
  in
  let status, out, _ = run binary in
  Alcotest.(check string) "child before parent" "CP" out;
  Alcotest.(check int) "status" 0 status

(* Signal handler runs: register handler for SIGUSR1 via rt_sigaction,
   kill(self), spin until flag set by handler, write "S". *)
let test_signal_handler () =
  let binary =
    let b = Builder.create ~name:"sig" () in
    ignore (Builder.add_memory b ~min:4 ~max:(Some 64));
    let imp name arity =
      Builder.import_func b ~module_:"wali" ~name:("SYS_" ^ name)
        ~params:(List.init arity (fun _ -> i64t))
        ~results:[ i64t ]
    in
    let sigaction = imp "rt_sigaction" 4 in
    let getpid = imp "getpid" 0 in
    let kill = imp "kill" 2 in
    let write = imp "write" 3 in
    let exit_group = imp "exit_group" 1 in
    ignore (Builder.add_table b ~min:4 ~max:(Some 4));
    (* handler(signo): store 1 at address 128 *)
    let handler =
      Builder.func b ~name:"handler" ~params:[ i32t ] ~results:[] ~locals:[]
        [ I32_const 128l; I32_const 1l; I32_store { offset = 0; align = 2 } ]
    in
    (* table slots 0/1 are reserved: they collide with SIG_DFL/SIG_IGN in
       the sigaction handler field, so the toolchain never places function
       pointers there (documented in Spec). *)
    Builder.add_elem b ~table:0 ~offset:2 [ handler ];
    let start =
      Builder.func b ~name:"_start" ~params:[] ~results:[] ~locals:[ i64t ]
        [
          (* sigaction struct at 64: handler=2 (table idx), flags=0, mask=0 *)
          I32_const 64l; I32_const 2l; I32_store { offset = 0; align = 2 };
          I32_const 68l; I32_const 0l; I32_store { offset = 0; align = 2 };
          I32_const 72l; I64_const 0L; I64_store { offset = 0; align = 3 };
          k 10 (* SIGUSR1 *); k 64; k 0; k 16; Call sigaction; Drop;
          (* kill(getpid(), SIGUSR1) *)
          Call getpid; k 10; Call kill; Drop;
          (* spin until mem[128] == 1 (handler runs at a loop safepoint) *)
          Block
            ( Bt_none,
              [
                Loop
                  ( Bt_none,
                    [
                      I32_const 128l; I32_load { offset = 0; align = 2 };
                      I32_const 1l; I32_relop Eq; Br_if 1; Br 0;
                    ] );
              ] );
          (* write "S" *)
          I32_const 200l; I32_const (Int32.of_int (Char.code 'S'));
          I32_store8 { offset = 0; align = 0 };
          k 1; k 200; k 1; Call write; Drop;
          k 0; Call exit_group; Drop;
        ]
    in
    Builder.export_func b "_start" start;
    Builder.export_memory b "memory" 0;
    Binary.encode (Builder.build b)
  in
  let status, out, _ = run binary in
  Alcotest.(check string) "handler ran" "S" out;
  Alcotest.(check int) "status" 0 status

(* Unhandled SIGUSR1 kills the process with a signal status. *)
let test_default_term () =
  let binary =
    build_wali_module
      ~imports:[ ("getpid", 0); ("kill", 2); ("exit_group", 1) ]
      ~locals:[ i64t; i64t ]
      (fun call ->
        [
          call "getpid"; Local_set 0;
          Local_get 0; k 10; call "kill"; Drop;
          (* spin forever; safepoint delivers the fatal signal *)
          Block (Bt_none, [ Loop (Bt_none, [ Br 0 ]) ]);
          k 0; call "exit_group"; Drop;
        ])
  in
  let status, _, _ = run binary in
  Alcotest.(check int) "killed by SIGUSR1" (Kernel.Ktypes.wsignal_status 10) status

(* /proc/self/mem must be refused by the WALI layer (EACCES = -13). *)
let test_proc_self_mem_blocked () =
  let binary =
    build_wali_module
      ~imports:[ ("open", 3); ("exit_group", 1) ]
      ~locals:[ i64t ]
      (fun call ->
        [
          I32_const 64l; I32_const 0x6F72702Fl; I32_store { offset = 0; align = 2 };
          I32_const 68l; I32_const 0x65732F63l; I32_store { offset = 0; align = 2 };
          I32_const 72l; I32_const 0x6D2F666Cl; I32_store { offset = 0; align = 2 };
          I32_const 76l; I32_const 0x006D65l; I32_store { offset = 0; align = 2 };
          k 64; k 0; k 0; call "open";
          (* exit with -(result) so the test can observe the errno *)
          I64_const (-1L); I64_binop Mul; call "exit_group"; Drop;
        ])
  in
  let status, _, _ = run binary in
  Alcotest.(check int) "EACCES" (Kernel.Ktypes.wexit_status 13) status

(* seccomp-like dynamic policy: deny getpid with EPERM. *)
let test_seccomp_deny () =
  let binary =
    build_wali_module
      ~imports:[ ("getpid", 0); ("exit_group", 1) ]
      ~locals:[]
      (fun call ->
        [ call "getpid"; I64_const (-1L); I64_binop Mul; call "exit_group"; Drop ])
  in
  let policy = Seccomp.allow_all () in
  Seccomp.deny policy "getpid" ();
  let status, _, _ = run ~policy binary in
  Alcotest.(check int) "EPERM" (Kernel.Ktypes.wexit_status 1) status;
  Alcotest.(check (list (pair string int))) "denial recorded"
    [ ("getpid", 1) ]
    (Seccomp.denied_counts policy)

(* mmap returns page-aligned sandboxed memory that is readable/writable. *)
let test_mmap () =
  let binary =
    build_wali_module
      ~imports:[ ("mmap", 6); ("munmap", 2); ("exit_group", 1) ]
      ~locals:[ i64t ]
      (fun call ->
        [
          (* p = mmap(0, 8192, RW, ANON|PRIVATE, -1, 0) *)
          k 0; k 8192; k 3; k 0x22; k (-1); k 0; call "mmap"; Local_set 0;
          (* store 77 through p *)
          Local_get 0; I32_wrap_i64; I32_const 77l; I32_store { offset = 0; align = 2 };
          (* exit(load p == 77 ? munmap(p,8192) : 1) *)
          Local_get 0; I32_wrap_i64; I32_load { offset = 0; align = 2 };
          I32_const 77l; I32_relop Eq;
          If
            ( Bt_none,
              [ Local_get 0; k 8192; call "munmap"; call "exit_group"; Drop ],
              [ k 1; call "exit_group"; Drop ] );
        ])
  in
  let status, _, _ = run binary in
  Alcotest.(check int) "mmap rw ok" 0 status

(* Unknown syscalls resolve as auto-generated stubs returning -ENOSYS. *)
let test_enosys_stub () =
  let binary =
    build_wali_module
      ~imports:[ ("epoll_ctl", 6); ("exit_group", 1) ]
      ~locals:[]
      (fun call ->
        [
          k 0; k 0; k 0; k 0; k 0; k 0; call "epoll_ctl";
          I64_const (-1L); I64_binop Mul; call "exit_group"; Drop;
        ])
  in
  let status, _, _ = run binary in
  Alcotest.(check int) "ENOSYS" (Kernel.Ktypes.wexit_status 38) status

(* The strace profile records what ran — the Fig 2 data source. *)
let test_strace_counts () =
  let binary =
    build_wali_module
      ~imports:[ ("getpid", 0); ("exit_group", 1) ]
      ~locals:[]
      (fun call ->
        [
          call "getpid"; Drop; call "getpid"; Drop; call "getpid"; Drop;
          k 0; call "exit_group"; Drop;
        ])
  in
  let trace = Strace.create () in
  let _ = Interface.run_program ~trace ~binary ~argv:[ "t" ] ~env:[] () in
  Alcotest.(check int) "getpid count" 3
    (List.assoc "getpid" (Strace.profile trace));
  Alcotest.(check bool) "exit traced" true
    (List.mem_assoc "exit_group" (Strace.profile trace))

(* argv/env transfer methods (§3.4). *)
let test_argv_env () =
  let b = Builder.create ~name:"argv" () in
  ignore (Builder.add_memory b ~min:2 ~max:(Some 16));
  let get_argc =
    Builder.import_func b ~module_:"wali" ~name:"get_argc" ~params:[] ~results:[ i32t ]
  in
  let get_argv_len =
    Builder.import_func b ~module_:"wali" ~name:"get_argv_len" ~params:[ i32t ]
      ~results:[ i32t ]
  in
  let copy_argv =
    Builder.import_func b ~module_:"wali" ~name:"copy_argv" ~params:[ i32t; i32t ]
      ~results:[ i32t ]
  in
  let write =
    Builder.import_func b ~module_:"wali" ~name:"SYS_write"
      ~params:[ i64t; i64t; i64t ] ~results:[ i64t ]
  in
  let exit_group =
    Builder.import_func b ~module_:"wali" ~name:"SYS_exit_group"
      ~params:[ i64t ] ~results:[ i64t ]
  in
  let start =
    Builder.func b ~name:"_start" ~params:[] ~results:[] ~locals:[ i32t ]
      [
        (* copy argv[1] to 256 and write it (len-1, no NUL) *)
        I32_const 256l; I32_const 1l; Call copy_argv; Drop;
        I32_const 1l; Call get_argv_len; I32_const 1l; I32_binop Sub; Local_set 0;
        I64_const 1L; I64_const 256L; Local_get 0; I64_extend_i32 ZX; Call write; Drop;
        (* exit(argc) *)
        Call get_argc; I64_extend_i32 SX; Call exit_group; Drop;
      ]
  in
  Builder.export_func b "_start" start;
  Builder.export_memory b "memory" 0;
  let binary = Binary.encode (Builder.build b) in
  let status, out, _ =
    Interface.run_program ~binary ~argv:[ "prog"; "world" ] ~env:[ "A=1" ] ()
  in
  Alcotest.(check string) "argv[1]" "world" out;
  Alcotest.(check int) "argc" (Kernel.Ktypes.wexit_status 2) status

let tests =
  [
    Alcotest.test_case "hello via SYS_write" `Quick test_hello;
    Alcotest.test_case "exit code" `Quick test_exit_code;
    Alcotest.test_case "fork + wait4" `Quick test_fork;
    Alcotest.test_case "async signal handler at safepoint" `Quick test_signal_handler;
    Alcotest.test_case "default disposition terminates" `Quick test_default_term;
    Alcotest.test_case "/proc/self/mem interposed" `Quick test_proc_self_mem_blocked;
    Alcotest.test_case "seccomp-like deny" `Quick test_seccomp_deny;
    Alcotest.test_case "mmap/munmap in linear memory" `Quick test_mmap;
    Alcotest.test_case "ENOSYS passthrough stubs" `Quick test_enosys_stub;
    Alcotest.test_case "strace profile counts" `Quick test_strace_counts;
    Alcotest.test_case "argv/env transfer" `Quick test_argv_env;
  ]
