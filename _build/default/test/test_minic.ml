(* MiniC toolchain tests: compile MiniC sources to Wasm and run them on
   the WALI engine end-to-end. *)

let run ?(argv = [ "prog" ]) ?(env = []) src =
  let binary = Minic.to_wasm_binary src in
  let status, out, _ = Wali.Interface.run_program ~binary ~argv ~env () in
  (status, out)

let check_out ?argv ?env src expected =
  let status, out = run ?argv ?env src in
  Alcotest.(check string) "stdout" expected out;
  Alcotest.(check int) "clean exit" 0 status

let test_hello () =
  check_out {| int main() { print("hello, wali\n"); return 0; } |}
    "hello, wali\n"

let test_arith_and_control () =
  check_out
    {|
      int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
      int main() {
        printi(fib(15));
        printc('\n');
        int acc = 0;
        for (int i = 1; i <= 10; i = i + 1) {
          if (i == 3) { continue; }
          if (i == 9) { break; }
          acc = acc + i;
        }
        printi(acc); printc('\n');
        printi(-42); printc('\n');
        printi(0x10 << 2); printc('\n');
        return 0;
      }
    |}
    "610\n33\n-42\n64\n"

let test_strings_malloc () =
  check_out
    {|
      int main() {
        char *a = strdup("abc");
        char *b = malloc(16);
        strcpy(b, a);
        strcat(b, "def");
        print(b); printc('\n');
        printi(strlen(b)); printc('\n');
        printi(strcmp(b, "abcdef")); printc('\n');
        printi(atoi("  -321x")); printc('\n');
        free(a); free(b);
        // malloc reuse after free
        char *c = malloc(16);
        c[0] = 'R'; c[1] = 0;
        print(c); printc('\n');
        return 0;
      }
    |}
    "abcdef\n6\n0\n-321\nR\n"

let test_globals_arrays () =
  check_out
    {|
      int counter;
      int table[10];
      int main() {
        for (int i = 0; i < 10; i = i + 1) { table[i] = i * i; }
        for (int i = 0; i < 10; i = i + 1) { counter = counter + table[i]; }
        printi(counter); printc('\n');
        return 0;
      }
    |}
    "285\n"

let test_pointer_arith () =
  check_out
    {|
      int main() {
        int *p = (int*)malloc(40);
        for (int i = 0; i < 10; i = i + 1) { *(p + i) = i; }
        int *q = p + 3;
        printi(*q); printc('\n');
        printi(q - p); printc('\n');
        char *c = (char*)p;
        printi((int)(c + 12) == (int)q); printc('\n');
        return 0;
      }
    |}
    "3\n3\n1\n"

let test_file_io () =
  check_out
    {|
      int main() {
        int fd = open("/tmp/t.txt", 0x42 | 0x200, 438); // O_RDWR|O_CREAT|O_TRUNC... flags: O_CREAT=0100=64, O_RDWR=2, O_TRUNC=01000=512
        fd = open("/tmp/u.txt", 66, 438);
        write(fd, "persist", 7);
        close(fd);
        fd = open("/tmp/u.txt", 0, 0);
        char *buf = malloc(32);
        int n = read(fd, buf, 31);
        buf[n] = 0;
        print(buf); printc('\n');
        printi(n); printc('\n');
        close(fd);
        unlink("/tmp/u.txt");
        printi(open("/tmp/u.txt", 0, 0)); printc('\n');  // -1 ENOENT
        printi(errno); printc('\n'); // 2
        return 0;
      }
    |}
    "persist\n7\n-1\n2\n"

let test_fork_pipe () =
  check_out
    {|
      int fds[2];
      int st[1];
      int main() {
        pipe(fds);
        int pid = fork();
        if (pid == 0) {
          close(fds[0]);
          write(fds[1], "from child", 10);
          close(fds[1]);
          exit(0);
        }
        close(fds[1]);
        char *buf = malloc(32);
        int n = read(fds[0], buf, 31);
        buf[n] = 0;
        waitpid(pid, st, 0);
        print(buf); printc('\n');
        return 0;
      }
    |}
    "from child\n"

let test_signals () =
  check_out
    {|
      int got;
      void handler(int sig) { got = sig; }
      int main() {
        signal(10, fnptr(handler));
        kill(getpid(), 10);
        while (!got) { sched_yield(); }
        printi(got); printc('\n');
        return 0;
      }
    |}
    "10\n"

let test_argv () =
  let status, out =
    run
      ~argv:[ "prog"; "alpha"; "beta" ]
      {|
        int main(int argc, char **argv) {
          printi(argc); printc('\n');
          for (int i = 1; i < argc; i = i + 1) { println(argv[i]); }
          return 0;
        }
      |}
  in
  Alcotest.(check string) "argv" "3\nalpha\nbeta\n" out;
  Alcotest.(check int) "status" 0 status

let test_getenv () =
  check_out ~env:[ "HOME=/home/user"; "MODE=fast" ]
    {|
      int main() {
        println(getenv("MODE"));
        println(getenv("HOME"));
        printi((int)getenv("MISSING")); printc('\n');
        return 0;
      }
    |}
    "fast\n/home/user\n0\n"

let test_calli_fnptr () =
  check_out
    {|
      int add(int a, int b) { return a + b; }
      int mul(int a, int b) { return a * b; }
      int apply(int f, int a, int b) { return calli(f, a, b); }
      int main() {
        printi(apply(fnptr(add), 3, 4)); printc('\n');
        printi(apply(fnptr(mul), 3, 4)); printc('\n');
        return 0;
      }
    |}
    "7\n12\n"

let test_threads () =
  check_out
    {|
      int done;
      int total;
      int worker(int arg) {
        total = total + arg;
        done = done + 1;
        return 0;
      }
      int main() {
        thread_spawn(fnptr(worker), 10);
        thread_spawn(fnptr(worker), 32);
        while (done < 2) { sched_yield(); }
        printi(total); printc('\n');
        return 0;
      }
    |}
    "42\n"

let test_exit_status () =
  let status, _ = run {| int main() { exit(9); return 0; } |} in
  Alcotest.(check int) "status" (Kernel.Ktypes.wexit_status 9) status

let test_div_by_zero_traps () =
  let status, _ =
    run {| int main(int argc, char **argv) { return 1 / (argc - 1); } |}
  in
  (* trap -> signal-style death, not a normal exit *)
  Alcotest.(check int) "SIGILL-style status" (Kernel.Ktypes.wsignal_status 4) status

let test_sandbox_oob () =
  (* wild pointer dereference traps instead of corrupting the host *)
  let status, _ =
    run {| int main() { int *p = (int*)0x7fffffff; return *p; } |}
  in
  Alcotest.(check int) "trap status" (Kernel.Ktypes.wsignal_status 4) status

let test_realloc () =
  check_out
    {|
      int main() {
        char *p = malloc(8);
        strcpy(p, "abcdefg");
        p = realloc(p, 64);
        strcat(p, "hijklmn");
        println(p);
        return 0;
      }
    |}
    "abcdefghijklmn\n"

let test_type_errors_rejected () =
  let expect_reject src =
    match Minic.to_wasm_binary src with
    | exception Minic.Ast.Error _ -> ()
    | _ -> Alcotest.fail "type checker accepted bad program"
  in
  expect_reject {| int main() { return undefined_var; } |};
  expect_reject {| int main() { foo(1); return 0; } |};
  expect_reject {| int f(int a) { return a; } int main() { return f(1, 2); } |};
  expect_reject {| int main() { break; return 0; } |};
  expect_reject {| void v() { } int main() { return v() + 1; } |}

let tests =
  [
    Alcotest.test_case "hello world" `Quick test_hello;
    Alcotest.test_case "arith, loops, break/continue" `Quick test_arith_and_control;
    Alcotest.test_case "strings + malloc/free reuse" `Quick test_strings_malloc;
    Alcotest.test_case "globals + arrays" `Quick test_globals_arrays;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arith;
    Alcotest.test_case "file I/O + errno" `Quick test_file_io;
    Alcotest.test_case "fork + pipe" `Quick test_fork_pipe;
    Alcotest.test_case "signal via libc" `Quick test_signals;
    Alcotest.test_case "argv transfer" `Quick test_argv;
    Alcotest.test_case "getenv" `Quick test_getenv;
    Alcotest.test_case "fnptr + calli" `Quick test_calli_fnptr;
    Alcotest.test_case "threads share memory" `Quick test_threads;
    Alcotest.test_case "exit status" `Quick test_exit_status;
    Alcotest.test_case "div-by-zero traps" `Quick test_div_by_zero_traps;
    Alcotest.test_case "sandboxed wild pointer" `Quick test_sandbox_oob;
    Alcotest.test_case "realloc" `Quick test_realloc;
    Alcotest.test_case "type errors rejected" `Quick test_type_errors_rejected;
  ]
