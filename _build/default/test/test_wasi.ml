(* The WASI-layering experiment (paper E2/C2, the libuvwasi analogue):
   a hand-assembled WASI application runs over the adapter module, which
   itself runs over WALI. The app performs a libuvwasi-style battery of
   preview1 checks and reports TAP output through fd_write. *)

open Wasm
open Wasm.Ast

let i32t = Types.T_i32
let i64t = Types.T_i64

(* Build the test app: imports env.memory + preview1 functions, exports
   _start. Scratch memory at 8192+; data strings at 4096+. *)
let build_test_app () : string =
  let b = Builder.create ~name:"wasi-test" () in
  Builder.import_memory b ~module_:"env" ~name:"memory" ~min:1 ~max:None;
  let imp name params results =
    Builder.import_func b ~module_:"wasi_snapshot_preview1" ~name ~params ~results
  in
  let fd_write = imp "fd_write" [ i32t; i32t; i32t; i32t ] [ i32t ] in
  let fd_read = imp "fd_read" [ i32t; i32t; i32t; i32t ] [ i32t ] in
  let fd_close = imp "fd_close" [ i32t ] [ i32t ] in
  let fd_seek = imp "fd_seek" [ i32t; i64t; i32t; i32t ] [ i32t ] in
  let fd_tell = imp "fd_tell" [ i32t; i32t ] [ i32t ] in
  let fd_fdstat_get = imp "fd_fdstat_get" [ i32t; i32t ] [ i32t ] in
  let fd_filestat_get = imp "fd_filestat_get" [ i32t; i32t ] [ i32t ] in
  let fd_prestat_get = imp "fd_prestat_get" [ i32t; i32t ] [ i32t ] in
  let fd_prestat_dir_name = imp "fd_prestat_dir_name" [ i32t; i32t; i32t ] [ i32t ] in
  let path_open =
    imp "path_open" [ i32t; i32t; i32t; i32t; i32t; i32t; i32t; i32t; i32t ] [ i32t ]
  in
  let path_create_directory = imp "path_create_directory" [ i32t; i32t; i32t ] [ i32t ] in
  let path_remove_directory = imp "path_remove_directory" [ i32t; i32t; i32t ] [ i32t ] in
  let path_unlink_file = imp "path_unlink_file" [ i32t; i32t; i32t ] [ i32t ] in
  let path_rename = imp "path_rename" [ i32t; i32t; i32t; i32t; i32t; i32t ] [ i32t ] in
  let path_filestat_get = imp "path_filestat_get" [ i32t; i32t; i32t; i32t; i32t ] [ i32t ] in
  let args_sizes_get = imp "args_sizes_get" [ i32t; i32t ] [ i32t ] in
  let args_get = imp "args_get" [ i32t; i32t ] [ i32t ] in
  let environ_sizes_get = imp "environ_sizes_get" [ i32t; i32t ] [ i32t ] in
  let clock_time_get = imp "clock_time_get" [ i32t; i64t; i32t ] [ i32t ] in
  let random_get = imp "random_get" [ i32t; i32t ] [ i32t ] in
  let sched_yield = imp "sched_yield" [] [ i32t ] in
  let proc_exit = imp "proc_exit" [ i32t ] [ i32t ] in
  (* data strings *)
  let data_pos = ref 4096 in
  let strings = ref [] in
  let intern s =
    let a = !data_pos in
    strings := (a, s) :: !strings;
    data_pos := a + String.length s + 1;
    a
  in
  let k n = I32_const (Int32.of_int n) in
  (* scratch layout *)
  let iov = 8192 (* iovec *) in
  let out = 8208 (* result cells *) in
  let buf = 8320 (* io buffer *) in
  let statbuf = 8448 in
  (* emit: write string at addr/len to stdout via fd_write *)
  let emit_write addr len =
    [
      k iov; k addr; I32_store { offset = 0; align = 2 };
      k iov; k len; I32_store { offset = 4; align = 2 };
      k 1; k iov; k 1; k out; Call fd_write; Drop;
    ]
  in
  let fails = 0 in
  ignore fails;
  (* check: run [cond] (leaves i32 bool); print ok/not ok; accumulate
     failures in local 0 *)
  let checks = ref [] in
  let add_check name cond =
    let okmsg = Printf.sprintf "ok %s\n" name in
    let badmsg = Printf.sprintf "not ok %s\n" name in
    let oka = intern okmsg and bada = intern badmsg in
    checks :=
      !checks
      @ cond
      @ [
          If
            ( Bt_none,
              emit_write oka (String.length okmsg),
              emit_write bada (String.length badmsg)
              @ [ Local_get 0; k 1; I32_binop Add; Local_set 0 ] );
        ]
  in
  (* path helper: store path text in data, pass (addr, len) *)
  let path s =
    let a = intern s in
    (a, String.length s)
  in
  let eqz_at addr = [ k addr; I32_load { offset = 0; align = 2 } ] in
  ignore eqz_at;
  (* -- argv checks: run with argv = ["wasi-test"; "beta"] -- *)
  add_check "args_sizes_get"
    [
      k out; k (out + 4); Call args_sizes_get; Drop;
      k out; I32_load { offset = 0; align = 2 }; k 2; I32_relop Eq;
    ];
  add_check "args_get-argv1-is-beta"
    [
      (* argv array at out+16, strings at buf *)
      k (out + 16); k buf; Call args_get; Drop;
      (* argv[1][0] == 'b' && argv[1][3] == 'a' *)
      k (out + 16); I32_load { offset = 4; align = 2 };
      I32_load8 (ZX, { offset = 0; align = 0 });
      k (Char.code 'b'); I32_relop Eq;
      k (out + 16); I32_load { offset = 4; align = 2 };
      I32_load8 (ZX, { offset = 3; align = 0 });
      k (Char.code 'a'); I32_relop Eq;
      I32_binop And;
    ];
  add_check "environ_sizes_get"
    [
      k out; k (out + 4); Call environ_sizes_get; Drop;
      k out; I32_load { offset = 0; align = 2 }; k 1; I32_relop Eq;
    ];
  add_check "clock_time_get-monotonic-positive"
    [
      k 1; I64_const 1L; k out; Call clock_time_get; Drop;
      k out; I64_load { offset = 0; align = 3 }; I64_const 0L; I64_relop Gt_s;
    ];
  add_check "random_get" [ k buf; k 16; Call random_get; I32_eqz ];
  add_check "sched_yield" [ Call sched_yield; I32_eqz ];
  add_check "fd_prestat_get-preopen"
    [
      k 3; k out; Call fd_prestat_get; I32_eqz;
      k out; I32_load { offset = 0; align = 2 }; I32_eqz;
      I32_binop And;
    ];
  add_check "fd_prestat_dir_name"
    [
      k 3; k buf; k 4; Call fd_prestat_dir_name; Drop;
      k buf; I32_load8 (ZX, { offset = 0; align = 0 });
      k (Char.code '/'); I32_relop Eq;
    ];
  (* file round trip *)
  let fpath, fplen = path "tmp/wasi-e2.txt" in
  (* open create+write: oflags CREAT|TRUNC=9, rights read|write = bits1,6 *)
  add_check "path_open-create"
    [
      k 3; k 0; k fpath; k fplen; k 9; k 0x42; k 0; k 0; k (out + 8);
      Call path_open; I32_eqz;
    ];
  let fd = [ k (out + 8); I32_load { offset = 0; align = 2 } ] in
  let payload = "layered-over-wali" in
  let pa = intern payload in
  add_check "fd_write-payload"
    ([ (* iov = payload *) k iov; k pa; I32_store { offset = 0; align = 2 };
       k iov; k (String.length payload); I32_store { offset = 4; align = 2 } ]
    @ fd
    @ [ k iov; k 1; k out; Call fd_write; Drop;
        k out; I32_load { offset = 0; align = 2 };
        k (String.length payload); I32_relop Eq ]);
  add_check "fd_tell-after-write"
    (fd
    @ [ k out; Call fd_tell; Drop;
        k out; I32_load { offset = 0; align = 2 };
        k (String.length payload); I32_relop Eq ]);
  add_check "fd_seek-to-start"
    (fd
    @ [ I64_const 0L; k 0; k out; Call fd_seek; I32_eqz ]);
  add_check "fd_read-back"
    ([ k iov; k buf; I32_store { offset = 0; align = 2 };
       k iov; k 64; I32_store { offset = 4; align = 2 } ]
    @ fd
    @ [ k iov; k 1; k out; Call fd_read; Drop;
        (* n == len && buf[0] == 'l' && buf[16] == 'i' *)
        k out; I32_load { offset = 0; align = 2 };
        k (String.length payload); I32_relop Eq;
        k buf; I32_load8 (ZX, { offset = 0; align = 0 });
        k (Char.code 'l'); I32_relop Eq;
        I32_binop And;
        k buf; I32_load8 (ZX, { offset = 16; align = 0 });
        k (Char.code 'i'); I32_relop Eq;
        I32_binop And ]);
  add_check "fd_filestat_get-size"
    (fd
    @ [ k statbuf; Call fd_filestat_get; Drop;
        k statbuf; I64_load { offset = 32; align = 3 };
        I64_const (Int64.of_int (String.length payload)); I64_relop Eq ]);
  add_check "fd_fdstat_get-regular-file"
    (fd
    @ [ k statbuf; Call fd_fdstat_get; Drop;
        k statbuf; I32_load8 (ZX, { offset = 0; align = 0 });
        k 4; I32_relop Eq ]);
  add_check "fd_close" (fd @ [ Call fd_close; I32_eqz ]);
  add_check "path_filestat_get"
    [
      k 3; k 0; k fpath; k fplen; k statbuf; Call path_filestat_get; I32_eqz;
      k statbuf; I64_load { offset = 32; align = 3 };
      I64_const (Int64.of_int (String.length payload)); I64_relop Eq;
      I32_binop And;
    ];
  let dpath, dplen = path "tmp/wasi-dir" in
  add_check "path_create_directory"
    [ k 3; k dpath; k dplen; Call path_create_directory; I32_eqz ];
  add_check "path_remove_directory"
    [ k 3; k dpath; k dplen; Call path_remove_directory; I32_eqz ];
  let rpath, rplen = path "tmp/wasi-renamed.txt" in
  add_check "path_rename"
    [ k 3; k fpath; k fplen; k 3; k rpath; k rplen; Call path_rename; I32_eqz ];
  add_check "open-old-name-is-ENOENT"
    [
      k 3; k 0; k fpath; k fplen; k 0; k 2; k 0; k 0; k (out + 8);
      Call path_open; k 44; I32_relop Eq;
    ];
  add_check "path_unlink_file"
    [ k 3; k rpath; k rplen; Call path_unlink_file; I32_eqz ];
  add_check "unlink-again-is-ENOENT"
    [ k 3; k rpath; k rplen; Call path_unlink_file; k 44; I32_relop Eq ];
  (* exit with the number of failures *)
  let body = !checks @ [ Local_get 0; Call proc_exit; Drop ] in
  let start = Builder.func b ~name:"_start" ~params:[] ~results:[] ~locals:[ i32t ] body in
  Builder.export_func b "_start" start;
  List.iter (fun (a, s) -> Builder.add_data b ~offset:a (s ^ "\000")) !strings;
  Binary.encode (Builder.build b)

let run_suite () =
  let app_binary = build_test_app () in
  Wasi.Runner.run ~app_binary ~argv:[ "wasi-test"; "beta" ] ~env:[ "MODE=e2" ] ()

let test_e2_layering () =
  let status, out = run_suite () in
  let lines = String.split_on_char '\n' out in
  let oks = List.length (List.filter (fun l -> String.length l > 2 && String.sub l 0 3 = "ok ") lines) in
  let bads = List.length (List.filter (fun l -> String.length l > 5 && String.sub l 0 6 = "not ok") lines) in
  if bads > 0 then
    Alcotest.failf "WASI suite failures (%d):\n%s" bads out;
  Alcotest.(check bool) "at least 22 checks" true (oks >= 22);
  Alcotest.(check int) "exit 0" 0 status

let test_adapter_is_pure_wali_module () =
  (* the adapter imports only wali.* and env.memory — nothing else in the
     TCB (paper's layering claim) *)
  let m = Wasi.Adapter.build_module () in
  List.iter
    (fun (imp : Wasm.Ast.import) ->
      Alcotest.(check bool)
        (Printf.sprintf "import %s.%s in wali/env" imp.imp_module imp.imp_name)
        true
        (imp.imp_module = "wali" || (imp.imp_module = "env" && imp.imp_name = "memory")))
    m.Wasm.Ast.imports

let test_adapter_exports_preview1 () =
  let m = Wasi.Adapter.build_module () in
  let names = List.map (fun e -> e.Wasm.Ast.exp_name) m.Wasm.Ast.exports in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " exported") true (List.mem n names))
    [ "fd_write"; "fd_read"; "path_open"; "proc_exit"; "args_get";
      "clock_time_get"; "fd_seek"; "fd_prestat_get"; "random_get" ]

let test_capability_model_layered () =
  (* the adapter never exposes fork/exec/kill: a WASI app cannot reach
     them even though they exist one layer below *)
  let m = Wasi.Adapter.build_module () in
  let names = List.map (fun e -> e.Wasm.Ast.exp_name) m.Wasm.Ast.exports in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " not exported") false (List.mem n names))
    [ "fork"; "execve"; "kill"; "SYS_fork" ]

let tests =
  [
    Alcotest.test_case "E2: preview1 suite over layered adapter" `Quick test_e2_layering;
    Alcotest.test_case "adapter TCB = wali + memory only" `Quick test_adapter_is_pure_wali_module;
    Alcotest.test_case "adapter exports preview1" `Quick test_adapter_exports_preview1;
    Alcotest.test_case "capability narrowing by layering" `Quick test_capability_model_layered;
  ]
