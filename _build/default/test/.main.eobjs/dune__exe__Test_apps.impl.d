test/test_apps.ml: Alcotest Apps Astring_contains List Wali
