test/test_backends.ml: Alcotest Minic Virt Wali
