test/test_kernel.ml: Alcotest Buffer Bytes Errno Fiber Futex Int64 Kernel Ktypes List Option Printf QCheck QCheck_alcotest Socket String Syscalls Task Vfs
