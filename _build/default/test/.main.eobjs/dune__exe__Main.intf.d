test/main.mli:
