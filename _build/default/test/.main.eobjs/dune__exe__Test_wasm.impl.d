test/test_wasm.ml: Alcotest Array Astring_contains Binary Buffer Builder Code Format Int32 Interp Link List QCheck QCheck_alcotest Rt Types Values Wasm
