test/test_mmap.ml: Alcotest Bytes Kernel List Minic Mmap_mgr Printf QCheck QCheck_alcotest String Wali Wasm
