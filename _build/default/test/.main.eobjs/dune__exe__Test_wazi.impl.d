test/test_wazi.ml: Alcotest Astring_contains Binary Builder Char Int32 Interp List Tables Types Values Wasm Wazi Zephyr
