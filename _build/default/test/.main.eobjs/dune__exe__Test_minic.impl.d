test/test_minic.ml: Alcotest Kernel Minic Wali
