test/test_wali_basic.ml: Alcotest Binary Builder Char Int32 Int64 Interface Kernel List Seccomp Strace Types Wali Wasm
