test/test_fiber.ml: Alcotest Fiber Int64 List Printf
