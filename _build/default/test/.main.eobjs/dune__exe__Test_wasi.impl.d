test/test_wasi.ml: Alcotest Binary Builder Char Int32 Int64 List Printf String Types Wasi Wasm
