test/main.ml: Alcotest Test_apps Test_backends Test_fiber Test_kernel Test_minic Test_mmap Test_wali_basic Test_wasi Test_wasm Test_wazi
