(* Tiny substring helper shared by the test suites. *)

let contains (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec at i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else at (i + 1)
    in
    at 0
  end
