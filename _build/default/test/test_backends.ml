(* Differential testing of the three MiniC backends: the same source must
   behave identically on Wasm+WALI, native closures, and the RV32
   emulator — the compiler-backend-reusability story, checked. *)

let run_wasm ?(argv = [ "prog" ]) src =
  let binary = Minic.to_wasm_binary src in
  let status, out, _ = Wali.Interface.run_program ~binary ~argv ~env:[] () in
  (status, out)

let run_native ?(argv = [ "prog" ]) src =
  let c = Minic.Mc_native.compile (Minic.parse_with_libc src) in
  let r = Virt.Native_run.run ~argv c in
  (r.Virt.Native_run.r_status, r.Virt.Native_run.r_output)

let run_rv ?(argv = [ "prog" ]) src =
  let img = Minic.Mc_rv.compile (Minic.parse_with_libc src) in
  let r = Virt.Rv_run.run ~argv img in
  (r.Virt.Rv_run.r_status, r.Virt.Rv_run.r_output)

let check_all ?argv src expected =
  let sw, ow = run_wasm ?argv src in
  Alcotest.(check string) "wasm out" expected ow;
  Alcotest.(check int) "wasm status" 0 sw;
  let sn, on = run_native ?argv src in
  Alcotest.(check string) "native out" expected on;
  Alcotest.(check int) "native status" 0 sn;
  let sr, orv = run_rv ?argv src in
  Alcotest.(check string) "rv out" expected orv;
  Alcotest.(check int) "rv status" 0 sr

let test_compute () =
  check_all
    {|
      int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
      int main() {
        printi(fib(14)); printc('\n');
        int x = 0;
        for (int i = 0; i < 100; i = i + 1) { x = x + i * i; }
        printi(x); printc('\n');
        printi(100 / 7); printc('\n');
        printi(100 % 7); printc('\n');
        printi(-100 / 7); printc('\n');
        printi(1 << 20); printc('\n');
        printi(-16 >> 2); printc('\n');
        return 0;
      }
    |}
    "377\n328350\n14\n2\n-14\n1048576\n-4\n"

let test_strings_and_heap () =
  check_all
    {|
      int main() {
        char *buf = malloc(64);
        strcpy(buf, "wali");
        strcat(buf, "/");
        strcat(buf, "wazi");
        println(buf);
        printi(strcmp(buf, "wali/wazi")); printc('\n');
        printi(atoi("12345")); printc('\n');
        char *big = malloc(100000);
        big[99999] = 'Z';
        printi(big[99999]); printc('\n');
        free(big); free(buf);
        return 0;
      }
    |}
    "wali/wazi\n0\n12345\n90\n"

let test_syscalls_files () =
  check_all
    {|
      int main() {
        int fd = open("/tmp/x", 66, 438);
        write(fd, "abcdef", 6);
        lseek(fd, 1, 0);
        char *b = malloc(8);
        int n = read(fd, b, 3);
        b[n] = 0;
        println(b);
        close(fd);
        printi(getpid()); printc('\n');
        return 0;
      }
    |}
    "bcd\n1\n"

let test_argv_across_backends () =
  check_all ~argv:[ "prog"; "x"; "yy" ]
    {|
      int main(int argc, char **argv) {
        printi(argc); printc('\n');
        printi(strlen(argv[2])); printc('\n');
        println(argv[1]);
        return 0;
      }
    |}
    "3\n2\nx\n"

let test_memops () =
  check_all
    {|
      int src[8];
      int dst[8];
      int main() {
        for (int i = 0; i < 8; i = i + 1) { src[i] = i * 3; }
        memcpy((char*)dst, (char*)src, 32);
        int sum = 0;
        for (int i = 0; i < 8; i = i + 1) { sum = sum + dst[i]; }
        printi(sum); printc('\n');
        memset((char*)dst, 0, 32);
        printi(dst[5]); printc('\n');
        return 0;
      }
    |}
    "84\n0\n"

let test_calli_across_backends () =
  check_all
    {|
      int twice(int x) { return x * 2; }
      int thrice(int x) { return x * 3; }
      int main() {
        int f = fnptr(twice);
        int g = fnptr(thrice);
        printi(calli(f, 10) + calli(g, 10)); printc('\n');
        return 0;
      }
    |}
    "50\n"

let test_rv_fork () =
  (* fork works under emulation too (guest state is cloneable) *)
  let status, out =
    run_rv
      {|
        int st[1];
        int main() {
          int pid = fork();
          if (pid == 0) { print("child\n"); exit(0); }
          waitpid(pid, st, 0);
          print("parent\n");
          return 0;
        }
      |}
  in
  Alcotest.(check string) "rv fork" "child\nparent\n" out;
  Alcotest.(check int) "status" 0 status

let test_wrapping_arithmetic () =
  (* i32 overflow behaves identically everywhere *)
  check_all
    {|
      int main() {
        int x = 2147483647;
        x = x + 1;
        printi(x); printc('\n');
        int y = 1;
        for (int i = 0; i < 40; i = i + 1) { y = y * 3; }
        printi(y); printc('\n');
        return 0;
      }
    |}
    "-2147483648\n689956897\n"

let tests =
  [
    Alcotest.test_case "compute kernels agree" `Quick test_compute;
    Alcotest.test_case "strings + heap agree" `Quick test_strings_and_heap;
    Alcotest.test_case "file syscalls agree" `Quick test_syscalls_files;
    Alcotest.test_case "argv agrees" `Quick test_argv_across_backends;
    Alcotest.test_case "memcpy/memset agree" `Quick test_memops;
    Alcotest.test_case "calli agrees" `Quick test_calli_across_backends;
    Alcotest.test_case "fork under RV emulation" `Quick test_rv_fork;
    Alcotest.test_case "i32 wrapping agrees" `Quick test_wrapping_arithmetic;
  ]
