(* The application suite running on WALI: every Table 1 analogue must
   execute faithfully; the porting analysis must reproduce the Table 1
   shape (WALI runs everything; WASI almost nothing; WASIX in between). *)

let contains = Astring_contains.contains

let run_app name =
  match Apps.Suite.find name with
  | None -> Alcotest.failf "no app %s" name
  | Some a ->
      let status, out = Apps.Suite.run a in
      (a, status, out)

let check_app name =
  let a, status, out = run_app name in
  List.iter
    (fun sub ->
      if not (contains out sub) then
        Alcotest.failf "%s: output %S does not contain %S" name out sub)
    a.Apps.Suite.a_expect;
  ignore status

let test_app name () = check_app name

let test_ltp_passes () =
  let _, status, out = run_app "ltp" in
  Alcotest.(check int) "ltp exit 0" 0 status;
  Alcotest.(check bool) "no failures" true (contains out "0 failed");
  Alcotest.(check bool) "many checks ran" true (contains out "passed")

let test_porting_table () =
  let rows = Apps.Suite.porting_table () in
  (* WALI runs everything *)
  List.iter
    (fun r ->
      match r.Apps.Suite.pr_wali with
      | None -> ()
      | Some f ->
          Alcotest.failf "%s blocked on WALI by %s"
            r.Apps.Suite.pr_app.Apps.Suite.a_name f)
    rows;
  let missing api r =
    match (api : [ `Wasi | `Wasix ]) with
    | `Wasi -> r.Apps.Suite.pr_wasi
    | `Wasix -> r.Apps.Suite.pr_wasix
  in
  let get name =
    List.find (fun r -> r.Apps.Suite.pr_app.Apps.Suite.a_name = name) rows
  in
  (* the paper's headline rows *)
  Alcotest.(check (option string)) "bash blocked on WASI by signals"
    (Some "rt_sigaction") (missing `Wasi (get "minish"));
  Alcotest.(check (option string)) "lua blocked on WASI by dup"
    (Some "dup") (missing `Wasi (get "calc"));
  Alcotest.(check (option string)) "sqlite blocked by mremap"
    (Some "mremap") (missing `Wasix (get "minidb"));
  Alcotest.(check (option string)) "memcached blocked by mmap"
    (Some "mmap") (missing `Wasix (get "kvd"));
  Alcotest.(check bool) "openssh blocked by users" true
    (match missing `Wasix (get "sshd-lite") with
    | Some ("setsid" | "setuid") -> true
    | _ -> false);
  Alcotest.(check (option string)) "zlib works everywhere" None
    (missing `Wasi (get "zpack"));
  Alcotest.(check (option string)) "paho works on WASIX" None
    (missing `Wasix (get "mqttc"));
  Alcotest.(check (option string)) "libevent blocked by socketpair"
    (Some "socketpair") (missing `Wasix (get "evloop"));
  Alcotest.(check (option string)) "openssl blocked by ioctl"
    (Some "ioctl") (missing `Wasix (get "crypt"));
  (* aggregate shape: WASI blocks most apps, WALI none *)
  let blocked api =
    List.length (List.filter (fun r -> missing api r <> None) rows)
  in
  Alcotest.(check bool) "WASI blocks most of the suite" true
    (blocked `Wasi >= 10);
  Alcotest.(check bool) "WASIX blocks fewer" true (blocked `Wasix < blocked `Wasi)

let test_import_section_is_manifest () =
  (* name-bound imports = static syscall manifest (paper §3.6) *)
  match Apps.Suite.find "minish" with
  | None -> Alcotest.fail "minish missing"
  | Some a ->
      let reqs = Apps.Suite.required_syscalls (Apps.Suite.binary_of a) in
      List.iter
        (fun s ->
          Alcotest.(check bool) (s ^ " in manifest") true (List.mem s reqs))
        [ "fork"; "execve"; "wait4"; "rt_sigaction"; "pipe"; "dup2"; "kill" ]

let test_strace_profile_of_suite () =
  (* Fig 2 data source: run an app under trace, see a realistic profile *)
  match Apps.Suite.find "minidb" with
  | None -> Alcotest.fail "minidb missing"
  | Some a ->
      let trace = Wali.Strace.create () in
      let _ = Apps.Suite.run ~trace a in
      let profile = Wali.Strace.profile trace in
      Alcotest.(check bool) "pwrite dominates" true
        (List.mem_assoc "pwrite64" profile);
      Alcotest.(check bool) "mremap present" true
        (List.mem_assoc "mremap" profile);
      Alcotest.(check bool) "several unique syscalls" true
        (List.length profile >= 8)

let tests =
  [
    Alcotest.test_case "minish (bash)" `Quick (test_app "minish");
    Alcotest.test_case "calc (lua)" `Quick (test_app "calc");
    Alcotest.test_case "minidb (sqlite)" `Quick (test_app "minidb");
    Alcotest.test_case "kvd (memcached)" `Quick (test_app "kvd");
    Alcotest.test_case "sshd-lite (openssh)" `Quick (test_app "sshd-lite");
    Alcotest.test_case "mk (make)" `Quick (test_app "mk");
    Alcotest.test_case "edlite (vim)" `Quick (test_app "edlite");
    Alcotest.test_case "mqttc (paho-mqtt)" `Quick (test_app "mqttc");
    Alcotest.test_case "zpack (zlib)" `Quick (test_app "zpack");
    Alcotest.test_case "evloop (libevent)" `Quick (test_app "evloop");
    Alcotest.test_case "tui (ncurses)" `Quick (test_app "tui");
    Alcotest.test_case "crypt (openssl)" `Quick (test_app "crypt");
    Alcotest.test_case "ltp conformance suite" `Quick test_ltp_passes;
    Alcotest.test_case "porting matrix (Table 1 shape)" `Quick test_porting_table;
    Alcotest.test_case "import section is the manifest" `Quick test_import_section_is_manifest;
    Alcotest.test_case "strace profile (Fig 2 source)" `Quick test_strace_profile_of_suite;
  ]
