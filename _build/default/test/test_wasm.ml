(* Tests for the WebAssembly engine: builder -> validate/compile ->
   instantiate -> interpret, binary round-trips, traps, control flow. *)

open Wasm
open Wasm.Ast

let value = Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Values.to_string v))
    ( = )

(* Build a single-function module and run it. *)
let run_func ?(params = []) ?(results = [ Types.T_i32 ]) ?(locals = [])
    ?(mem = false) body args =
  let b = Builder.create ~name:"t" () in
  if mem then ignore (Builder.add_memory b ~min:1 ~max:(Some 4));
  let f = Builder.func b ~name:"f" ~params ~results ~locals body in
  Builder.export_func b "f" f;
  let m = Builder.build b in
  let cm = Code.compile_module m in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  let mach = Rt.Machine.create inst in
  Interp.invoke mach (Rt.exported_func inst "f") args

let expect_i32 ?params ?results ?locals ?mem body args exp =
  match run_func ?params ?results ?locals ?mem body args with
  | Interp.R_done [ v ] -> Alcotest.check value "result" (Values.I32 exp) v
  | Interp.R_done vs ->
      Alcotest.failf "expected 1 result, got %d" (List.length vs)
  | Interp.R_trap s -> Alcotest.failf "trapped: %s" s
  | Interp.R_exit c -> Alcotest.failf "exited: %d" c

let expect_trap ?params ?results ?locals ?mem body args substr =
  match run_func ?params ?results ?locals ?mem body args with
  | Interp.R_trap s ->
      if not (Astring_contains.contains s substr) then
        Alcotest.failf "trap %S does not mention %S" s substr
  | _ -> Alcotest.fail "expected trap"

let test_const () = expect_i32 [ I32_const 42l ] [] 42l

let test_arith () =
  expect_i32
    [ I32_const 6l; I32_const 7l; I32_binop Mul; I32_const 2l; I32_binop Add ]
    [] 44l

let test_locals () =
  expect_i32 ~params:[ Types.T_i32; Types.T_i32 ]
    [ Local_get 0; Local_get 1; I32_binop Sub ]
    [ Values.I32 10l; Values.I32 3l ]
    7l

let test_if_else () =
  let body c =
    [
      I32_const c;
      If (Bt_val Types.T_i32, [ I32_const 1l ], [ I32_const 2l ]);
    ]
  in
  expect_i32 (body 1l) [] 1l;
  expect_i32 (body 0l) [] 2l

let test_nested_blocks () =
  (* br out of nested blocks carrying a value. *)
  expect_i32
    [
      Block
        ( Bt_val Types.T_i32,
          [
            Block
              ( Bt_none,
                [ I32_const 5l; Br 1 ] );
            I32_const 9l;
          ] );
    ]
    [] 5l

let test_loop_sum () =
  (* sum 1..10 with a loop and br_if backedge. *)
  expect_i32 ~locals:[ Types.T_i32; Types.T_i32 ]
    [
      I32_const 0l; Local_set 0; (* i *)
      I32_const 0l; Local_set 1; (* acc *)
      Block
        ( Bt_none,
          [
            Loop
              ( Bt_none,
                [
                  Local_get 0; I32_const 10l; I32_relop Ge_s; Br_if 1;
                  Local_get 0; I32_const 1l; I32_binop Add; Local_tee 0;
                  Local_get 1; I32_binop Add; Local_set 1;
                  Br 0;
                ] );
          ] );
      Local_get 1;
    ]
    [] 55l

let test_br_table () =
  let body n =
    [
      Block
        ( Bt_val Types.T_i32,
          [
            Block
              ( Bt_none,
                [
                  Block
                    ( Bt_none,
                      [
                        Block
                          ( Bt_none,
                            [ I32_const n; Br_table ([ 0; 1 ], 2) ] );
                        I32_const 100l; Br 2;
                      ] );
                  I32_const 200l; Br 1;
                ] );
            I32_const 300l;
          ] );
    ]
  in
  ignore body;
  expect_i32 (body 0l) [] 100l;
  expect_i32 (body 1l) [] 200l;
  expect_i32 (body 7l) [] 300l

let test_call () =
  let b = Builder.create () in
  let add =
    Builder.func b ~name:"add" ~params:[ Types.T_i32; Types.T_i32 ]
      ~results:[ Types.T_i32 ] ~locals:[]
      [ Local_get 0; Local_get 1; I32_binop Add ]
  in
  let f =
    Builder.func b ~name:"f" ~params:[] ~results:[ Types.T_i32 ] ~locals:[]
      [ I32_const 20l; I32_const 22l; Call add ]
  in
  Builder.export_func b "f" f;
  let cm = Code.compile_module (Builder.build b) in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  match Interp.invoke (Rt.Machine.create inst) (Rt.exported_func inst "f") [] with
  | Interp.R_done [ Values.I32 42l ] -> ()
  | _ -> Alcotest.fail "call failed"

let test_recursion_fib () =
  let b = Builder.create () in
  let fib = Builder.declare_func b ~name:"fib" ~params:[ Types.T_i32 ] ~results:[ Types.T_i32 ] in
  Builder.define b fib ~locals:[]
    [
      Local_get 0; I32_const 2l; I32_relop Lt_s;
      If
        ( Bt_val Types.T_i32,
          [ Local_get 0 ],
          [
            Local_get 0; I32_const 1l; I32_binop Sub; Call fib;
            Local_get 0; I32_const 2l; I32_binop Sub; Call fib;
            I32_binop Add;
          ] );
    ];
  Builder.export_func b "fib" fib;
  let cm = Code.compile_module (Builder.build b) in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  match
    Interp.invoke (Rt.Machine.create inst)
      (Rt.exported_func inst "fib")
      [ Values.I32 15l ]
  with
  | Interp.R_done [ Values.I32 610l ] -> ()
  | Interp.R_done [ v ] -> Alcotest.failf "fib(15) = %s" (Values.to_string v)
  | _ -> Alcotest.fail "fib failed"

let test_call_indirect () =
  let b = Builder.create () in
  ignore (Builder.add_table b ~min:4 ~max:(Some 4));
  let double =
    Builder.func b ~name:"double" ~params:[ Types.T_i32 ] ~results:[ Types.T_i32 ]
      ~locals:[] [ Local_get 0; I32_const 2l; I32_binop Mul ]
  in
  let wrong_sig =
    Builder.func b ~name:"nullary" ~params:[] ~results:[ Types.T_i32 ] ~locals:[]
      [ I32_const 7l ]
  in
  Builder.add_elem b ~table:0 ~offset:1 [ double; wrong_sig ];
  let ti = Builder.type_idx b ~params:[ Types.T_i32 ] ~results:[ Types.T_i32 ] in
  let f =
    Builder.func b ~name:"f" ~params:[ Types.T_i32 ] ~results:[ Types.T_i32 ]
      ~locals:[]
      [ I32_const 21l; Local_get 0; Call_indirect (ti, 0) ]
  in
  Builder.export_func b "f" f;
  let cm = Code.compile_module (Builder.build b) in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  let call n =
    Interp.invoke (Rt.Machine.create inst) (Rt.exported_func inst "f")
      [ Values.I32 n ]
  in
  (match call 1l with
  | Interp.R_done [ Values.I32 42l ] -> ()
  | _ -> Alcotest.fail "indirect call failed");
  (match call 2l with
  | Interp.R_trap s ->
      Alcotest.(check bool) "signature trap" true
        (Astring_contains.contains s "type mismatch")
  | _ -> Alcotest.fail "expected signature mismatch trap");
  (match call 0l with
  | Interp.R_trap s ->
      Alcotest.(check bool) "null trap" true
        (Astring_contains.contains s "uninitialized")
  | _ -> Alcotest.fail "expected uninitialized element trap")

let test_memory_ops () =
  expect_i32 ~mem:true
    [
      I32_const 16l; I32_const 0x12345678l; I32_store { offset = 0; align = 2 };
      I32_const 16l; I32_load8 (ZX, { offset = 1; align = 0 });
    ]
    [] 0x56l

let test_memory_grow_size () =
  expect_i32 ~mem:true
    [
      Memory_size; Drop;
      I32_const 2l; Memory_grow; Drop;
      Memory_size;
    ]
    [] 3l

let test_memory_oob () =
  expect_trap ~mem:true
    [ I32_const 65536l; I32_load { offset = 0; align = 2 } ]
    [] "out of bounds"

let test_div_by_zero () =
  expect_trap [ I32_const 1l; I32_const 0l; I32_binop Div_s ] [] "divide by zero"

let test_unreachable () = expect_trap [ Unreachable; I32_const 1l ] [] "unreachable"

let test_globals () =
  let b = Builder.create () in
  let g = Builder.add_global b ~mut:Types.Mutable ~typ:Types.T_i32 [ I32_const 10l ] in
  let f =
    Builder.func b ~name:"f" ~params:[] ~results:[ Types.T_i32 ] ~locals:[]
      [
        Global_get g; I32_const 5l; I32_binop Add; Global_set g; Global_get g;
      ]
  in
  Builder.export_func b "f" f;
  let cm = Code.compile_module (Builder.build b) in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  (match Interp.invoke (Rt.Machine.create inst) (Rt.exported_func inst "f") [] with
  | Interp.R_done [ Values.I32 15l ] -> ()
  | _ -> Alcotest.fail "global rmw failed");
  (* second call sees persistent global state *)
  match Interp.invoke (Rt.Machine.create inst) (Rt.exported_func inst "f") [] with
  | Interp.R_done [ Values.I32 20l ] -> ()
  | _ -> Alcotest.fail "global persistence failed"

let test_i64_ops () =
  let body =
    [
      I64_const 0x1122334455667788L;
      I64_const 8L;
      I64_binop Rotl;
      I64_const 0x2233445566778811L;
      I64_relop Eq;
    ]
  in
  expect_i32 body [] 1l

let test_conversions () =
  expect_i32
    [ I64_const 0xFFFFFFFF_00000042L; I32_wrap_i64 ]
    [] 0x42l;
  expect_i32
    [ I32_const (-1l); I64_extend_i32 ZX; I64_const 0xFFFFFFFFL; I64_relop Eq ]
    [] 1l

let test_select_drop () =
  expect_i32
    [ I32_const 10l; I32_const 20l; I32_const 1l; Select ]
    [] 10l;
  expect_i32
    [ I32_const 10l; I32_const 20l; I32_const 0l; Select ]
    [] 20l

let test_validation_rejects () =
  let expect_invalid body =
    let b = Builder.create () in
    let f = Builder.func b ~name:"bad" ~params:[] ~results:[ Types.T_i32 ] ~locals:[] body in
    Builder.export_func b "f" f;
    match Code.compile_module (Builder.build b) with
    | exception Code.Invalid _ -> ()
    | _ -> Alcotest.fail "validator accepted bad module"
  in
  (* type mismatch on add *)
  expect_invalid [ I32_const 1l; I64_const 2L; I32_binop Add ];
  (* stack underflow *)
  expect_invalid [ I32_binop Add ];
  (* missing result *)
  expect_invalid [ Nop ];
  (* bad local index *)
  expect_invalid [ Local_get 3 ];
  (* branch depth out of range *)
  expect_invalid [ Br 4 ]

let test_binary_roundtrip () =
  let b = Builder.create ~name:"rt" () in
  ignore (Builder.add_memory b ~min:1 ~max:(Some 8));
  ignore (Builder.add_table b ~min:2 ~max:None);
  let g = Builder.add_global b ~mut:Types.Mutable ~typ:Types.T_i64 [ I64_const (-7L) ] in
  ignore g;
  Builder.add_data b ~offset:64 "hello\x00world";
  let f =
    Builder.func b ~name:"f" ~params:[ Types.T_i32 ] ~results:[ Types.T_i32 ]
      ~locals:[ Types.T_i64 ]
      [
        Block
          ( Bt_val Types.T_i32,
            [
              Local_get 0;
              If (Bt_val Types.T_i32, [ I32_const 1l ], [ I32_const 0l ]);
            ] );
      ]
  in
  Builder.add_elem b ~table:0 ~offset:0 [ f ];
  Builder.export_func b "f" f;
  Builder.export_memory b "memory" 0;
  let m = Builder.build b in
  let bin = Binary.encode m in
  let m2 = Binary.decode bin in
  let bin2 = Binary.encode m2 in
  Alcotest.(check string) "binary fixpoint" bin bin2;
  (* decoded module still executes *)
  let cm = Code.compile_module m2 in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  match
    Interp.invoke (Rt.Machine.create inst) (Rt.exported_func inst "f")
      [ Values.I32 5l ]
  with
  | Interp.R_done [ Values.I32 1l ] -> ()
  | _ -> Alcotest.fail "decoded module misbehaves"

let test_host_func () =
  let b = Builder.create () in
  let h =
    Builder.import_func b ~module_:"env" ~name:"mul3"
      ~params:[ Types.T_i32 ] ~results:[ Types.T_i32 ]
  in
  let f =
    Builder.func b ~name:"f" ~params:[] ~results:[ Types.T_i32 ] ~locals:[]
      [ I32_const 14l; Call h ]
  in
  Builder.export_func b "f" f;
  let cm = Code.compile_module (Builder.build b) in
  let resolver ~module_name ~name =
    if module_name = "env" && name = "mul3" then
      Some
        (Rt.E_func
           (Rt.Host_func
              {
                hf_name = "mul3";
                hf_type = { Types.params = [ Types.T_i32 ]; results = [ Types.T_i32 ] };
                hf_fn =
                  (fun _m args ->
                    Rt.H_return [ Values.I32 (Int32.mul 3l (Values.as_i32 args.(0))) ]);
              }))
    else None
  in
  let inst, _ = Link.instantiate resolver cm in
  match Interp.invoke (Rt.Machine.create inst) (Rt.exported_func inst "f") [] with
  | Interp.R_done [ Values.I32 42l ] -> ()
  | _ -> Alcotest.fail "host func failed"

let test_machine_clone () =
  (* Fork semantics at the machine level: mutate cloned memory, original
     unaffected. *)
  let b = Builder.create () in
  ignore (Builder.add_memory b ~min:1 ~max:(Some 2));
  let f =
    Builder.func b ~name:"poke" ~params:[ Types.T_i32 ] ~results:[] ~locals:[]
      [ I32_const 0l; Local_get 0; I32_store { offset = 0; align = 2 } ]
  in
  let g =
    Builder.func b ~name:"peek" ~params:[] ~results:[ Types.T_i32 ] ~locals:[]
      [ I32_const 0l; I32_load { offset = 0; align = 2 } ]
  in
  Builder.export_func b "poke" f;
  Builder.export_func b "peek" g;
  let cm = Code.compile_module (Builder.build b) in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  let m1 = Rt.Machine.create inst in
  ignore (Interp.invoke m1 (Rt.exported_func inst "poke") [ Values.I32 111l ]);
  let m2 = Rt.Machine.clone m1 in
  ignore
    (Interp.invoke m2 (Rt.exported_func m2.Rt.m_inst "poke") [ Values.I32 222l ]);
  (match Interp.invoke m1 (Rt.exported_func m1.Rt.m_inst "peek") [] with
  | Interp.R_done [ Values.I32 111l ] -> ()
  | _ -> Alcotest.fail "parent memory was dirtied by clone");
  match Interp.invoke m2 (Rt.exported_func m2.Rt.m_inst "peek") [] with
  | Interp.R_done [ Values.I32 222l ] -> ()
  | _ -> Alcotest.fail "clone memory wrong"

let test_poll_safepoints () =
  (* counts polls under the loop scheme: one per iteration. *)
  let b = Builder.create () in
  let f =
    Builder.func b ~name:"spin" ~params:[ Types.T_i32 ] ~results:[] ~locals:[]
      [
        Block
          ( Bt_none,
            [
              Loop
                ( Bt_none,
                  [
                    Local_get 0; I32_eqz; Br_if 1;
                    Local_get 0; I32_const 1l; I32_binop Sub; Local_set 0;
                    Br 0;
                  ] );
            ] );
      ]
  in
  Builder.export_func b "spin" f;
  let cm = Code.compile_module ~poll:Code.Poll_loops (Builder.build b) in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  let m = Rt.Machine.create inst in
  let polls = ref 0 in
  m.Rt.poll_hook <- Some (fun _ -> incr polls);
  ignore (Interp.invoke m (Rt.exported_func inst "spin") [ Values.I32 10l ]);
  Alcotest.(check int) "polls" 11 !polls

(* QCheck properties *)

let leb_roundtrip_i64 =
  QCheck.Test.make ~name:"LEB128 s64 round-trip" ~count:500 QCheck.int64
    (fun v ->
      let b = Buffer.create 10 in
      Binary.E.s64 b v;
      let d = Binary.D.make (Buffer.contents b) in
      Binary.D.s64 d = v)

let leb_roundtrip_u32 =
  QCheck.Test.make ~name:"LEB128 u32 round-trip" ~count:500
    QCheck.(int_bound 0x3FFFFFFF)
    (fun v ->
      let b = Buffer.create 10 in
      Binary.E.u32 b v;
      let d = Binary.D.make (Buffer.contents b) in
      Binary.D.u32 d = v)

let i32_ops_match_native =
  QCheck.Test.make ~name:"i32 add/sub/mul match Int32" ~count:300
    QCheck.(pair int32 int32)
    (fun (a, b) ->
      let run op =
        match
          run_func ~params:[ Types.T_i32; Types.T_i32 ]
            [ Local_get 0; Local_get 1; I32_binop op ]
            [ Values.I32 a; Values.I32 b ]
        with
        | Interp.R_done [ Values.I32 v ] -> v
        | _ -> Alcotest.fail "prop run failed"
      in
      run Add = Int32.add a b && run Sub = Int32.sub a b
      && run Mul = Int32.mul a b
      && run Xor = Int32.logxor a b)

let shift_masking =
  QCheck.Test.make ~name:"i32 shifts mask the count" ~count:200
    QCheck.(pair int32 (int_bound 200))
    (fun (a, s) ->
      match
        run_func ~params:[ Types.T_i32 ]
          [ Local_get 0; I32_const (Int32.of_int s); I32_binop Shl ]
          [ Values.I32 a ]
      with
      | Interp.R_done [ Values.I32 v ] ->
          v = Int32.shift_left a (s land 31)
      | _ -> false)

let tests =
  [
    Alcotest.test_case "const" `Quick test_const;
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "locals" `Quick test_locals;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "nested blocks + br" `Quick test_nested_blocks;
    Alcotest.test_case "loop sum" `Quick test_loop_sum;
    Alcotest.test_case "br_table" `Quick test_br_table;
    Alcotest.test_case "call" `Quick test_call;
    Alcotest.test_case "recursive fib" `Quick test_recursion_fib;
    Alcotest.test_case "call_indirect + signature trap" `Quick test_call_indirect;
    Alcotest.test_case "memory load/store" `Quick test_memory_ops;
    Alcotest.test_case "memory grow/size" `Quick test_memory_grow_size;
    Alcotest.test_case "memory out of bounds" `Quick test_memory_oob;
    Alcotest.test_case "div by zero traps" `Quick test_div_by_zero;
    Alcotest.test_case "unreachable traps" `Quick test_unreachable;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "i64 rotl" `Quick test_i64_ops;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "select" `Quick test_select_drop;
    Alcotest.test_case "validator rejects" `Quick test_validation_rejects;
    Alcotest.test_case "binary round-trip" `Quick test_binary_roundtrip;
    Alcotest.test_case "host function" `Quick test_host_func;
    Alcotest.test_case "machine clone isolates memory" `Quick test_machine_clone;
    Alcotest.test_case "loop safepoints" `Quick test_poll_safepoints;
    QCheck_alcotest.to_alcotest leb_roundtrip_i64;
    QCheck_alcotest.to_alcotest leb_roundtrip_u32;
    QCheck_alcotest.to_alcotest i32_ops_match_native;
    QCheck_alcotest.to_alcotest shift_masking;
  ]
