(* WAZI on the Zephyr RTOS simulator (paper §5.1): blinky-style GPIO,
   sleep/timer behaviour on the virtual clock, semaphores across
   instance-per-thread machines, UART, and the auto-generated stub
   behaviour for unvirtualized subsystems. *)

open Wasm
open Wasm.Ast

let i32t = Types.T_i32

let build ~imports ~locals ?(extra = fun (_ : Builder.t) -> ()) body : string =
  let b = Builder.create ~name:"zapp" () in
  ignore (Builder.add_memory b ~min:1 ~max:(Some 4));
  let idx =
    List.map
      (fun (name, arity) ->
        ( name,
          Builder.import_func b ~module_:"wazi" ~name
            ~params:(List.init arity (fun _ -> i32t))
            ~results:[ i32t ] ))
      imports
  in
  extra b;
  let call name = Call (List.assoc name idx) in
  let main = Builder.func b ~name:"main" ~params:[] ~results:[ i32t ] ~locals (body call) in
  Builder.export_func b "main" main;
  Builder.export_memory b "memory" 0;
  Binary.encode (Builder.build b)

let k n = I32_const (Int32.of_int n)

let test_blinky () =
  (* configure pin 13 as output; toggle 6 times with 10ms sleeps *)
  let binary =
    build
      ~imports:[ ("gpio_pin_configure", 3); ("gpio_pin_toggle", 2);
                 ("k_sleep", 1); ("uart_poll_out", 2) ]
      ~locals:[ i32t ]
      (fun call ->
        [
          k 1; k 13; k 1; call "gpio_pin_configure"; Drop;
          k 0; Local_set 0;
          Block
            ( Bt_none,
              [
                Loop
                  ( Bt_none,
                    [
                      Local_get 0; k 6; I32_relop Ge_s; Br_if 1;
                      k 1; k 13; call "gpio_pin_toggle"; Drop;
                      k 10; call "k_sleep"; Drop;
                      Local_get 0; k 1; I32_binop Add; Local_set 0;
                      Br 0;
                    ] );
              ] );
          k 1; k (Char.code 'B'); call "uart_poll_out"; Drop;
          k 0;
        ])
  in
  let result, t = Wazi.run_module binary in
  (match result with
  | Interp.R_done [ Values.I32 0l ] -> ()
  | Interp.R_trap s -> Alcotest.failf "trap: %s" s
  | _ -> Alcotest.fail "unexpected result");
  let z = t.Wazi.z in
  Alcotest.(check int) "6 gpio edges" 6 (List.length z.Zephyr.Zkernel.gpio_log);
  Alcotest.(check string) "uart" "B" (Zephyr.Zkernel.uart_output z);
  (* virtual time advanced by the sleeps *)
  Alcotest.(check bool) "uptime >= 60ms" true
    (Zephyr.Zkernel.k_uptime_ms () >= 0)

let test_sem_across_threads () =
  (* producer thread gives a semaphore 3 times; main takes 3 times *)
  let binary =
    let b = Builder.create ~name:"zsem" () in
    ignore (Builder.add_memory b ~min:1 ~max:(Some 4));
    let imp name arity =
      Builder.import_func b ~module_:"wazi" ~name
        ~params:(List.init arity (fun _ -> i32t))
        ~results:[ i32t ]
    in
    let sem_init = imp "k_sem_init" 3 in
    let sem_take = imp "k_sem_take" 2 in
    let sem_give = imp "k_sem_give" 1 in
    let sleep = imp "k_sleep" 1 in
    let thread_create = imp "k_thread_create" 2 in
    ignore (Builder.add_table b ~min:4 ~max:(Some 4));
    (* producer(arg = sem handle): give 3 times with sleeps *)
    let producer =
      Builder.func b ~name:"producer" ~params:[ i32t ] ~results:[ i32t ] ~locals:[ i32t ]
        [
          k 0; Local_set 1;
          Block
            ( Bt_none,
              [
                Loop
                  ( Bt_none,
                    [
                      Local_get 1; k 3; I32_relop Ge_s; Br_if 1;
                      k 5; Call sleep; Drop;
                      Local_get 0; Call sem_give; Drop;
                      Local_get 1; k 1; I32_binop Add; Local_set 1;
                      Br 0;
                    ] );
              ] );
          k 0;
        ]
    in
    Builder.add_elem b ~table:0 ~offset:2 [ producer ];
    let main =
      Builder.func b ~name:"main" ~params:[] ~results:[ i32t ] ~locals:[ i32t; i32t ]
        [
          k 0; k 0; k 10; Call sem_init; Local_set 0;
          k 2 (* producer table slot *); Local_get 0; Call thread_create; Drop;
          (* take 3 (blocking waits woken by the producer) *)
          k 0; Local_set 1;
          Block
            ( Bt_none,
              [
                Loop
                  ( Bt_none,
                    [
                      Local_get 1; k 3; I32_relop Ge_s; Br_if 1;
                      Local_get 0; k (-1); Call sem_take; Drop;
                      Local_get 1; k 1; I32_binop Add; Local_set 1;
                      Br 0;
                    ] );
              ] );
          Local_get 1;
        ]
    in
    Builder.export_func b "main" main;
    Builder.export_memory b "memory" 0;
    Binary.encode (Builder.build b)
  in
  let result, _ = Wazi.run_module binary in
  match result with
  | Interp.R_done [ Values.I32 3l ] -> ()
  | Interp.R_trap s -> Alcotest.failf "trap: %s" s
  | _ -> Alcotest.fail "semaphore rendezvous failed"

let test_sem_timeout () =
  let binary =
    build
      ~imports:[ ("k_sem_init", 3); ("k_sem_take", 2) ]
      ~locals:[ i32t ]
      (fun call ->
        [
          k 0; k 0; k 1; call "k_sem_init"; Local_set 0;
          Local_get 0; k 5; call "k_sem_take"; (* 5ms timeout, nobody gives *)
        ])
  in
  let result, _ = Wazi.run_module binary in
  match result with
  | Interp.R_done [ Values.I32 v ] ->
      Alcotest.(check bool) "negative (timeout)" true (Int32.compare v 0l < 0)
  | _ -> Alcotest.fail "expected timeout code"

let test_stub_traps () =
  (* a domain-specific subsystem call resolves (auto-generated) but traps *)
  let binary =
    build ~imports:[ ("gnss_call0", 3) ] ~locals:[]
      (fun call -> [ k 0; k 0; k 0; call "gnss_call0" ])
  in
  let result, _ = Wazi.run_module binary in
  match result with
  | Interp.R_trap s ->
      Alcotest.(check bool) "stub message" true
        (Astring_contains.contains s "unimplemented subsystem")
  | _ -> Alcotest.fail "expected stub trap"

let test_coverage_ratio () =
  (* the §2 scoping claim for Zephyr: the interface only needs a small
     core; the rest is auto-generated *)
  let total = Tables.Zephyr_tables.total_count in
  let impl = Tables.Zephyr_tables.implemented_count in
  Alcotest.(check bool) "total ~520" true (total >= 450 && total <= 650);
  Alcotest.(check bool) "core is a small fraction" true
    (impl * 100 / total < 15)

let tests =
  [
    Alcotest.test_case "blinky: gpio + sleep + uart" `Quick test_blinky;
    Alcotest.test_case "semaphore across threads" `Quick test_sem_across_threads;
    Alcotest.test_case "k_sem_take timeout" `Quick test_sem_timeout;
    Alcotest.test_case "auto-generated stubs trap" `Quick test_stub_traps;
    Alcotest.test_case "coverage: small core suffices" `Quick test_coverage_ratio;
  ]
