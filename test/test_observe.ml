(* The observability subsystem (lib/observe): histogram bucketing edge
   cases, the hand-rolled JSON parser, trace-event well-formedness over a
   real forking app, metrics schema checks, folded-profile determinism,
   replay regenerating the recorded run's syscall histogram, and the
   Strace hex argument rendering satellite. *)

(* ---- helpers ---- *)

let find_app name =
  match Apps.Suite.find name with
  | Some a -> a
  | None -> Alcotest.failf "no app %s" name

let run_observed ?(cfg = Observe.Sink.all_on) name =
  let sink = Observe.Sink.create cfg in
  let status, _ = Apps.Suite.run ~observe:sink (find_app name) in
  (sink, status)

let calls_by_name (reg : Observe.Metrics.t) : (string * int) list =
  List.map
    (fun (n, (s : Observe.Metrics.syscall_stats)) ->
      (n, s.Observe.Metrics.calls))
    (Observe.Metrics.by_name reg)

(* ---- histogram ---- *)

let test_hist_buckets () =
  let open Observe.Hist in
  Alcotest.(check int) "bucket of 0" 0 (bucket_of 0L);
  Alcotest.(check int) "bucket of -5 (defensive)" 0 (bucket_of (-5L));
  Alcotest.(check int) "bucket of 1" 1 (bucket_of 1L);
  Alcotest.(check int) "bucket of 2" 2 (bucket_of 2L);
  Alcotest.(check int) "bucket of 3" 2 (bucket_of 3L);
  Alcotest.(check int) "bucket of 4" 3 (bucket_of 4L);
  (* every bucket boundary: 2^(b-1) opens bucket b, 2^b - 1 closes it *)
  for b = 1 to 62 do
    let lo = Int64.shift_left 1L (b - 1) in
    let hi = Int64.sub (Int64.shift_left 1L b) 1L in
    Alcotest.(check int) (Printf.sprintf "lower edge of %d" b) b (bucket_of lo);
    Alcotest.(check int) (Printf.sprintf "upper edge of %d" b) b (bucket_of hi)
  done;
  Alcotest.(check int) "bucket of max_int" 63 (bucket_of Int64.max_int);
  Alcotest.(check int64) "lower_bound 0" 0L (lower_bound 0);
  Alcotest.(check int64) "upper_bound 0" 0L (upper_bound 0);
  Alcotest.(check int64) "lower_bound 1" 1L (lower_bound 1);
  Alcotest.(check int64) "upper_bound 1" 1L (upper_bound 1);
  Alcotest.(check int64) "last bucket open-ended" Int64.max_int (upper_bound 63)

let test_hist_percentiles () =
  let open Observe.Hist in
  let h = create () in
  Alcotest.(check int64) "empty p50" 0L (percentile h 0.50);
  record h 5L;
  (* single sample: the bucket's upper bound (7) clamps to the sample *)
  Alcotest.(check int64) "single-sample p50" 5L (percentile h 0.50);
  Alcotest.(check int64) "single-sample p99" 5L (percentile h 0.99);
  record h (-3L);
  Alcotest.(check int) "negative clamps to 0" 2 (count h);
  Alcotest.(check int64) "sum unaffected by clamp" 5L (sum h);
  let h = create () in
  record h 0L;
  Alcotest.(check int64) "all-zero p99" 0L (percentile h 0.99);
  let h = create () in
  (* 100 samples of 1ns and one huge outlier: p50 stays in bucket 1,
     p99+ reaches the outlier's bucket (clamped to the outlier) *)
  for _ = 1 to 100 do
    record h 1L
  done;
  record h 1_000_000L;
  Alcotest.(check int64) "p50 below outlier" 1L (percentile h 0.50);
  Alcotest.(check int64) "p100 hits outlier" 1_000_000L (percentile h 1.0);
  record h Int64.max_int;
  Alcotest.(check int64) "max_int recorded" Int64.max_int (max_value h);
  Alcotest.(check int64) "p100 = max_int" Int64.max_int (percentile h 1.0);
  Alcotest.(check (list (pair int int)))
    "nonzero buckets" [ (1, 100); (20, 1); (63, 1) ] (nonzero h)

let test_hist_merge () =
  let open Observe.Hist in
  let fill samples =
    let h = create () in
    List.iter (record h) samples;
    h
  in
  let fingerprint h = (count h, sum h, max_value h, nonzero h) in
  let check_eq msg a b =
    if fingerprint a <> fingerprint b then
      Alcotest.failf "%s: merged histograms differ" msg
  in
  let a = fill [ 1L; 2L; 1000L ] in
  let b = fill [ 7L; 7L; 7L; 1_000_000L ] in
  let c = fill [ 0L; Int64.max_int ] in
  (* merge is a pure sum: merging equals recording the union *)
  check_eq "merge = union of samples"
    (fill [ 1L; 2L; 1000L; 7L; 7L; 7L; 1_000_000L ])
    (merge a b);
  (* associativity and commutativity over all bucket state *)
  check_eq "associative" (merge (merge a b) c) (merge a (merge b c));
  check_eq "commutative" (merge a b) (merge b a);
  check_eq "empty is identity" a (merge a (create ()));
  (* inputs untouched *)
  Alcotest.(check int) "a untouched" 3 (count a);
  Alcotest.(check int) "b untouched" 4 (count b);
  (* percentiles of a merged histogram are monotone in p *)
  let m = merge (merge a b) c in
  let last = ref Int64.min_int in
  List.iter
    (fun p ->
      let v = percentile m p in
      if Int64.compare v !last < 0 then
        Alcotest.failf "percentile not monotone at p=%.2f" p;
      last := v)
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

(* ---- deterministic row ordering (shared comparators) ---- *)

let test_metrics_sort_tiebreak () =
  let reg = Observe.Metrics.create () in
  (* three syscalls with identical call counts and times: only the name
     can order them, and it must, identically for both comparators *)
  List.iter
    (fun n -> Observe.Metrics.record reg ~name:n ~result:0L ~ns:10L)
    [ "write"; "close"; "openat" ];
  let names l = List.map fst l in
  Alcotest.(check (list string))
    "by_calls breaks ties on name" [ "close"; "openat"; "write" ]
    (names (Observe.Metrics.by_calls reg));
  Alcotest.(check (list string))
    "by_time breaks ties on name" [ "close"; "openat"; "write" ]
    (names (Observe.Metrics.by_time reg));
  (* a busier syscall still sorts first *)
  Observe.Metrics.record reg ~name:"write" ~result:0L ~ns:10L;
  Alcotest.(check (list string))
    "calls dominate, then name" [ "write"; "close"; "openat" ]
    (names (Observe.Metrics.by_calls reg))

(* ---- JSON parser ---- *)

let test_json_parser () =
  let open Observe.Json in
  (match parse {|{"a":[1,-2.5e2,true,null],"b\n":"xA"}|} with
  | Obj [ ("a", Arr [ Num 1.0; Num -250.0; Bool true; Null ]); (k, Str v) ] ->
      Alcotest.(check string) "escaped key" "b\n" k;
      Alcotest.(check string) "unicode escape" "xA" v
  | _ -> Alcotest.fail "unexpected parse shape");
  (match parse_result "{\"a\":1} garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match parse_result "{\"a\":}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed value accepted"

(* ---- trace well-formedness ---- *)

let test_trace_minish () =
  let sink, status = run_observed "minish" in
  Alcotest.(check int) "exit status" 0 (status lsr 8);
  match Observe.Check.check_trace (Observe.Sink.trace_json sink) with
  | Error e -> Alcotest.failf "trace: %s" e
  | Ok ts ->
      let real =
        List.filter
          (fun p -> p <> Observe.Sink.sched_pid)
          ts.Observe.Check.ts_pids
      in
      Alcotest.(check bool) "has events" true (ts.Observe.Check.ts_events > 0);
      Alcotest.(check bool)
        "forking app yields >= 2 process lanes" true
        (List.length real >= 2)

let test_trace_checker_rejects () =
  let reject label s =
    match Observe.Check.check_trace s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  reject "garbage" "nonsense";
  reject "unclosed span"
    {|{"traceEvents":[{"ph":"B","name":"x","cat":"c","pid":1,"tid":1,"ts":"0.000"}]}|};
  reject "mismatched E"
    {|{"traceEvents":[{"ph":"B","name":"x","cat":"c","pid":1,"tid":1,"ts":"0.000"},{"ph":"E","name":"y","cat":"c","pid":1,"tid":1,"ts":"1.000"}]}|};
  reject "time runs backwards"
    {|{"traceEvents":[{"ph":"i","name":"x","cat":"c","pid":1,"tid":1,"ts":"5.000","s":"t"},{"ph":"i","name":"y","cat":"c","pid":1,"tid":1,"ts":"1.000","s":"t"}]}|}

(* ---- metrics schema ---- *)

let test_metrics_json () =
  let sink, _ = run_observed "calc" in
  let s = Observe.Sink.metrics_json sink in
  (match Observe.Check.check_metrics s with
  | Error e -> Alcotest.failf "metrics: %s" e
  | Ok () -> ());
  let doc = Observe.Json.parse s in
  let num path obj =
    match Option.bind (Observe.Json.member path obj) Observe.Json.to_num with
    | Some f -> f
    | None -> Alcotest.failf "missing %s" path
  in
  let run = Option.get (Observe.Json.member "run" doc) in
  Alcotest.(check bool) "instructions > 0" true (num "instructions" run > 0.0);
  Alcotest.(check bool) "wall_ns > 0" true (num "wall_ns" run > 0.0);
  (* the folded profile's total weight is the profile_ns field exactly *)
  Alcotest.(check int64)
    "folded total = profile_ns"
    (Observe.Sink.profile_total sink)
    (Int64.of_float (num "profile_ns" run));
  match Observe.Check.check_folded (Observe.Sink.profile_folded sink) with
  | Error e -> Alcotest.failf "folded: %s" e
  | Ok total ->
      Alcotest.(check int64)
        "parsed folded total" (Observe.Sink.profile_total sink) total

(* ---- folded-profile determinism ---- *)

let test_profile_deterministic () =
  let fold () =
    let sink, _ = run_observed "calc" in
    Observe.Sink.profile_folded sink
  in
  let a = fold () and b = fold () in
  Alcotest.(check bool) "profile non-empty" true (String.length a > 0);
  Alcotest.(check string) "identical runs fold identically" a b

(* ---- record/replay regenerates the histogram ---- *)

let test_replay_regenerates_metrics () =
  let a = find_app "minish" in
  let kernel = Kernel.Task.boot () in
  a.Apps.Suite.a_setup kernel;
  if a.Apps.Suite.a_stdin <> "" then begin
    Kernel.Task.console_feed kernel a.Apps.Suite.a_stdin;
    Kernel.Pipe.drop_writer kernel.Kernel.Task.console_in
  end;
  let recorded = Observe.Sink.create Observe.Sink.metrics_only in
  let r =
    Replay.Recorder.record ~app:"minish" ~kernel ~observe:recorded
      ~binary:(Apps.Suite.binary_of a) ~argv:a.Apps.Suite.a_argv ~env:[] ()
  in
  let replayed = Observe.Sink.create Observe.Sink.metrics_only in
  let o =
    Replay.Replayer.replay ~setup:a.Apps.Suite.a_setup ~observe:replayed
      ~trace:r.Replay.Recorder.r_trace
      ~binary:(Apps.Suite.binary_of a) ()
  in
  Alcotest.(check bool) "replay converged" true (Replay.Replayer.converged o);
  Alcotest.(check (list (pair string int)))
    "per-syscall call counts survive the round trip"
    (calls_by_name (Observe.Sink.metrics recorded))
    (calls_by_name (Observe.Sink.metrics replayed))

(* ---- strace hex rendering ---- *)

let test_strace_hex_args () =
  let t = Wali.Strace.create ~verbose:true () in
  let lines = ref [] in
  t.Wali.Strace.log <- Some (fun l -> lines := l :: !lines);
  Wali.Strace.note t ~pid:7 ~name:"write"
    ~args:[ 3L; 0x12340L; 64L ]
    ~result:64L ~ns:100L;
  Wali.Strace.note t ~pid:7 ~name:"close" ~args:[ 0xFFFFL ] ~result:0L ~ns:0L;
  match List.rev !lines with
  | [ w; c ] ->
      Alcotest.(check string)
        "address-like arg in hex" "[7] write(3, 0x12340, 64) = 64" w;
      Alcotest.(check string) "small args stay decimal" "[7] close(65535) = 0" c
  | ls -> Alcotest.failf "expected 2 lines, got %d" (List.length ls)

let tests =
  [
    Alcotest.test_case "histogram bucket edges" `Quick test_hist_buckets;
    Alcotest.test_case "histogram percentiles" `Quick test_hist_percentiles;
    Alcotest.test_case "histogram merge" `Quick test_hist_merge;
    Alcotest.test_case "metrics sort tie-breaks on name" `Quick
      test_metrics_sort_tiebreak;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "minish trace well-formed, 2+ lanes" `Quick
      test_trace_minish;
    Alcotest.test_case "trace checker rejects malformed" `Quick
      test_trace_checker_rejects;
    Alcotest.test_case "metrics schema v1" `Quick test_metrics_json;
    Alcotest.test_case "folded profile deterministic" `Quick
      test_profile_deterministic;
    Alcotest.test_case "replay regenerates syscall histogram" `Quick
      test_replay_regenerates_metrics;
    Alcotest.test_case "strace renders addresses in hex" `Quick
      test_strace_hex_args;
  ]
