let () =
  Alcotest.run "wali-repro"
    [
      ("wasm", Test_wasm.tests);
      ("fusion", Test_fusion.tests);
      ("fiber", Test_fiber.tests);
      ("kernel", Test_kernel.tests);
      ("wali-basic", Test_wali_basic.tests);
      ("minic", Test_minic.tests);
      ("backends", Test_backends.tests);
      ("apps", Test_apps.tests);
      ("wasi", Test_wasi.tests);
      ("wazi", Test_wazi.tests);
      ("mmap", Test_mmap.tests);
      ("analysis", Test_analysis.tests);
      ("replay", Test_replay.tests);
      ("observe", Test_observe.tests);
      ("perf", Test_perf.tests);
    ]
