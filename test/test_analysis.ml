(* The static syscall-reachability analyzer (lib/analysis): import
   classification, call-graph reachability, derived minimal allowlists,
   lint diagnostics, the Seccomp rule-order semantics the analyzer
   relies on, and the dynamic soundness cross-check — on hand-built
   modules and on the whole application suite. *)

open Wasm
open Wasm.Ast

let i64t = Types.T_i64
let i32t = Types.T_i32
let k n = I64_const (Int64.of_int n)
let contains = Astring_contains.contains

let imp b name arity =
  Builder.import_func b ~module_:"wali" ~name:("SYS_" ^ name)
    ~params:(List.init arity (fun _ -> i64t))
    ~results:[ i64t ]

(* _start -> helper -> SYS_write; SYS_exit_group called from _start.
   SYS_getpid is imported but never called anywhere; SYS_kill is called
   only from a function no root reaches. *)
let direct_module () =
  let b = Builder.create ~name:"direct" () in
  ignore (Builder.add_memory b ~min:1 ~max:(Some 4));
  let write = imp b "write" 3 in
  let exit_group = imp b "exit_group" 1 in
  let _getpid = imp b "getpid" 0 in
  let kill = imp b "kill" 2 in
  let helper =
    Builder.func b ~name:"helper" ~params:[] ~results:[] ~locals:[]
      [
        I32_const 64l; I32_const 0x0A6968l; I32_store { offset = 0; align = 2 };
        k 1; k 64; k 3; Call write; Drop;
      ]
  in
  let _dead =
    Builder.func b ~name:"dead" ~params:[] ~results:[] ~locals:[]
      [ k 1; k 9; Call kill; Drop ]
  in
  let start =
    Builder.func b ~name:"_start" ~params:[] ~results:[] ~locals:[]
      [ Call helper; k 0; Call exit_group; Drop ]
  in
  Builder.export_func b "_start" start;
  Builder.export_memory b "memory" 0;
  Builder.build b

(* Export "go" dispatches call_indirect over type []->(); the table
   holds f_a (that type, calls SYS_getpid), f_b (type (i64)->(), calls
   SYS_write, matches no call_indirect and no host callback shape) and
   f_h (the (i32)->() signal-handler shape, calls SYS_tkill). *)
let indirect_module () =
  let b = Builder.create ~name:"indirect" () in
  ignore (Builder.add_memory b ~min:1 ~max:(Some 4));
  let getpid = imp b "getpid" 0 in
  let write = imp b "write" 3 in
  let tkill = imp b "tkill" 2 in
  let exit_group = imp b "exit_group" 1 in
  ignore (Builder.add_table b ~min:8 ~max:(Some 8));
  let f_a =
    Builder.func b ~name:"f_a" ~params:[] ~results:[] ~locals:[]
      [ Call getpid; Drop ]
  in
  let f_b =
    Builder.func b ~name:"f_b" ~params:[ i64t ] ~results:[] ~locals:[]
      [ k 1; k 64; k 1; Call write; Drop ]
  in
  let f_h =
    Builder.func b ~name:"f_h" ~params:[ i32t ] ~results:[] ~locals:[]
      [ k 1; k 2; Call tkill; Drop ]
  in
  Builder.add_elem b ~table:0 ~offset:2 [ f_a; f_b; f_h ];
  let ti_a = Builder.type_idx b ~params:[] ~results:[] in
  let go =
    Builder.func b ~name:"go" ~params:[] ~results:[] ~locals:[]
      [ I32_const 2l; Call_indirect (ti_a, 0); k 0; Call exit_group; Drop ]
  in
  Builder.export_func b "go" go;
  Builder.export_memory b "memory" 0;
  Builder.build b

let strs = Alcotest.(list string)

(* Direct calls: exact reachability, dead code excluded from the
   allowlist, per-export sets. *)
let test_direct_reachability () =
  let s = Analysis.Reach.analyze (direct_module ()) in
  Alcotest.(check strs) "allowlist" [ "exit_group"; "write" ]
    (Analysis.Reach.allowlist s);
  Alcotest.(check strs) "_start set" [ "exit_group"; "write" ]
    (List.assoc "_start" s.Analysis.Reach.s_per_export);
  Alcotest.(check strs) "nothing indirect-only" []
    s.Analysis.Reach.s_indirect_only

(* Lints on the direct module: the dead function is flagged; getpid is
   an unused import; kill has a call site (in dead code) so it is not
   "unused", but it must still stay out of the allowlist. *)
let test_direct_lints () =
  let s = Analysis.Reach.analyze (direct_module ()) in
  let lints = Analysis.Lint.lint s in
  let dead =
    List.exists
      (function Analysis.Lint.Dead_func (_, n) -> n = "dead" | _ -> false)
      lints
  in
  let unused =
    List.filter_map
      (function Analysis.Lint.Unused_import (_, n) -> Some n | _ -> None)
      lints
  in
  Alcotest.(check bool) "dead func flagged" true dead;
  Alcotest.(check strs) "only getpid unused" [ "SYS_getpid" ] unused;
  Alcotest.(check bool) "kill not allowed" false
    (List.mem "kill" (Analysis.Reach.allowlist s))

(* call_indirect over-approximation: the export's own set follows
   type-compatible table entries only, but every table entry is a
   module-level root (the engine can invoke handlers/thread entries
   through the table), so the whole-module allowlist includes them all —
   flagged as indirect-only. *)
let test_indirect_overapprox () =
  let s = Analysis.Reach.analyze (indirect_module ()) in
  Alcotest.(check strs) "module allowlist"
    [ "exit_group"; "getpid"; "tkill"; "write" ]
    (Analysis.Reach.allowlist s);
  Alcotest.(check strs) "go reaches type-compatible targets only"
    [ "exit_group"; "getpid" ]
    (List.assoc "go" s.Analysis.Reach.s_per_export);
  Alcotest.(check strs) "indirect-only syscalls"
    [ "getpid"; "tkill"; "write" ]
    s.Analysis.Reach.s_indirect_only;
  let lints = Analysis.Lint.lint s in
  let uncallable =
    List.filter_map
      (function Analysis.Lint.Uncallable_elem (_, n) -> Some n | _ -> None)
      lints
  in
  (* f_b matches no call_indirect type and no host callback shape; f_h
     is the (i32)->() handler shape the host can invoke, so only f_b. *)
  Alcotest.(check strs) "uncallable table entries" [ "f_b" ] uncallable;
  Alcotest.(check bool) "no dead funcs (table entries are roots)" false
    (List.exists
       (function Analysis.Lint.Dead_func _ -> true | _ -> false)
       lints)

(* Import classification partitions the manifest. *)
let test_classify () =
  let b = Builder.create ~name:"cls" () in
  let _ = imp b "read" 3 in
  let _ =
    Builder.import_func b ~module_:"wali" ~name:"get_argc" ~params:[]
      ~results:[ i32t ]
  in
  let _ =
    Builder.import_func b ~module_:"wasi_snapshot_preview1" ~name:"fd_write"
      ~params:[ i32t; i32t; i32t; i32t ] ~results:[ i32t ]
  in
  let _ =
    Builder.import_func b ~module_:"env" ~name:"mystery" ~params:[]
      ~results:[]
  in
  let kinds =
    List.map (fun (_, _, ki) -> ki) (Analysis.Classify.func_imports (Builder.build b))
  in
  match kinds with
  | [
   Analysis.Classify.Syscall "read";
   Analysis.Classify.Env_helper "get_argc";
   Analysis.Classify.Wasi_call "fd_write";
   Analysis.Classify.Host_other ("env", "mystery");
  ] ->
      ()
  | _ -> Alcotest.fail "classification mismatch"

(* Regression: rule resolution must let the most recently added rule
   win. The historical bug resolved the *first* added rule. *)
let test_seccomp_rule_order () =
  let open Wali.Seccomp in
  let is v name p =
    Alcotest.(check bool)
      (Printf.sprintf "%s verdict" name)
      true
      (match (check p name, v) with
      | Allow, `Allow | Deny _, `Deny | Kill, `Kill -> true
      | _ -> false)
  in
  let p = allowlist [ "read"; "write" ] in
  is `Allow "read" p;
  is `Deny "fork" p (* default-deny for names outside the allowlist *);
  deny p "write" ();
  is `Deny "write" p (* deny overrides the earlier allowlist entry *);
  allow p "write";
  is `Allow "write" p (* re-allow overrides the deny *);
  kill_on p "write";
  is `Kill "write" p;
  let q = allow_all () in
  is `Allow "anything" q;
  deny q "getpid" ();
  is `Deny "getpid" q;
  allow q "getpid";
  is `Allow "getpid" q

(* Running the hand-built module under its own derived policy: zero
   denials, dynamic profile inside the static set, output intact. *)
let test_crosscheck_builder_module () =
  let binary = Binary.encode (direct_module ()) in
  let r = Analysis.Crosscheck.run_binary ~name:"direct" binary in
  Alcotest.(check bool) "sound" true (Analysis.Crosscheck.ok r);
  Alcotest.(check strs) "no escapes" [] r.Analysis.Crosscheck.cc_escaped;
  Alcotest.(check (list (pair string int))) "no denials" []
    r.Analysis.Crosscheck.cc_denied;
  Alcotest.(check string) "output" "hi\n" r.Analysis.Crosscheck.cc_output;
  Alcotest.(check strs) "dynamic = static here"
    [ "exit_group"; "write" ] r.Analysis.Crosscheck.cc_dynamic

(* The acceptance gate: every suite application runs under its
   statically derived policy with zero seccomp denials, the dynamic
   profile never escapes the static set, and the app still produces its
   expected output. *)
let test_suite_under_derived_policies () =
  List.iter
    (fun (a : Apps.Suite.app) ->
      let binary = Apps.Suite.binary_of a in
      let summary =
        Analysis.Reach.analyze_binary ~name:a.Apps.Suite.a_name binary
      in
      let r =
        Analysis.Crosscheck.run ~setup:a.Apps.Suite.a_setup
          ~stdin:a.Apps.Suite.a_stdin ~argv:a.Apps.Suite.a_argv ~summary
          ~binary ()
      in
      Alcotest.(check strs)
        (a.Apps.Suite.a_name ^ ": dynamic escapes static set")
        [] r.Analysis.Crosscheck.cc_escaped;
      Alcotest.(check (list (pair string int)))
        (a.Apps.Suite.a_name ^ ": denials under derived policy")
        [] r.Analysis.Crosscheck.cc_denied;
      List.iter
        (fun sub ->
          if not (contains r.Analysis.Crosscheck.cc_output sub) then
            Alcotest.failf "%s under derived policy: output %S lacks %S"
              a.Apps.Suite.a_name r.Analysis.Crosscheck.cc_output sub)
        a.Apps.Suite.a_expect)
    Apps.Suite.all

let tests =
  [
    Alcotest.test_case "direct-call reachability" `Quick test_direct_reachability;
    Alcotest.test_case "dead code + unused imports" `Quick test_direct_lints;
    Alcotest.test_case "call_indirect over-approximation" `Quick
      test_indirect_overapprox;
    Alcotest.test_case "import classification" `Quick test_classify;
    Alcotest.test_case "seccomp: latest rule wins" `Quick test_seccomp_rule_order;
    Alcotest.test_case "crosscheck: builder module" `Quick
      test_crosscheck_builder_module;
    Alcotest.test_case "suite under derived policies" `Quick
      test_suite_under_derived_policies;
  ]
