(* Differential tests for the macro-op fusion pass and the kernel lookup
   caches: the fused engine must be observationally identical to plain
   single-op dispatch — same results, same instruction counts, same
   syscall traces — and the VFS dentry cache must never serve a stale
   entry across a namespace mutation. *)

open Wasm
open Wasm.Ast

(* Build a single-function module and run it under both engines,
   returning (result, steps, fused dispatches) for each. *)
let run_both ?(params = []) ?(results = [ Types.T_i32 ]) ?(locals = [])
    ?(mem = false) body args =
  let run fuse =
    let b = Builder.create ~name:"t" () in
    if mem then ignore (Builder.add_memory b ~min:1 ~max:(Some 4));
    let f = Builder.func b ~name:"f" ~params ~results ~locals body in
    Builder.export_func b "f" f;
    let cm = Code.compile_module ~fuse (Builder.build b) in
    let inst, _ = Link.instantiate Link.empty_resolver cm in
    let mach = Rt.Machine.create inst in
    let r = Interp.invoke mach (Rt.exported_func inst "f") args in
    (r, mach.Rt.steps, mach.Rt.fused)
  in
  (run true, run false)

let check_same ?params ?results ?locals ?mem body args =
  let (r_f, s_f, fused), (r_u, s_u, u_fused) =
    run_both ?params ?results ?locals ?mem body args
  in
  (match (r_f, r_u) with
  | Interp.R_done a, Interp.R_done b ->
      Alcotest.(check (list string))
        "results"
        (List.map Values.to_string b)
        (List.map Values.to_string a)
  | Interp.R_trap a, Interp.R_trap b -> Alcotest.(check string) "trap" b a
  | _ -> Alcotest.fail "fused and unfused runs diverged in outcome");
  Alcotest.(check int64) "steps" s_u s_f;
  Alcotest.(check int64) "unfused engine dispatches no superops" 0L u_fused;
  fused

(* Each hot idiom the fuser targets, spelled the way the front ends emit
   it; every case must also execute at least one superinstruction, or the
   pattern silently stopped matching. *)
let test_idioms () =
  let fusing name body args =
    let fused = check_same ~params:[ Types.T_i32; Types.T_i32 ] ~mem:true body args in
    if fused = 0L then Alcotest.failf "%s: no superinstruction dispatched" name
  in
  fusing "ll_binop" [ Local_get 0; Local_get 1; I32_binop Add ]
    [ Values.I32 3l; Values.I32 4l ];
  fusing "lc_binop_set"
    [ Local_get 0; I32_const 5l; I32_binop Mul; Local_set 1; Local_get 1 ]
    [ Values.I32 7l; Values.I32 0l ];
  fusing "binop_binop"
    [ Local_get 0; Local_get 1; Local_get 0; I32_binop Xor; I32_binop Add ]
    [ Values.I32 9l; Values.I32 12l ];
  fusing "binop_load + l_store"
    [
      I32_const 8l; Local_get 0; I32_store { offset = 0; align = 2 };
      I32_const 4l; I32_const 4l; I32_binop Add; I32_load { offset = 0; align = 2 };
    ]
    [ Values.I32 77l; Values.I32 0l ];
  fusing "binop_store"
    [
      I32_const 16l; Local_get 0; Local_get 1; I32_binop Add;
      I32_store { offset = 0; align = 2 };
      I32_const 16l; I32_load { offset = 0; align = 2 };
    ]
    [ Values.I32 30l; Values.I32 12l ];
  fusing "eqz_eqz" [ Local_get 0; I32_eqz; I32_eqz ]
    [ Values.I32 42l; Values.I32 0l ];
  fusing "set_get"
    [ Local_get 0; I32_const 1l; I32_binop Add; Local_set 1; Local_get 1 ]
    [ Values.I32 5l; Values.I32 0l ];
  (* minicc's fall-through conditional: relop; eqz; br_if *)
  fusing "relop_eqz_br_if (loop)"
    [
      Block
        ( Bt_none,
          [
            Loop
              ( Bt_none,
                [
                  Local_get 0; I32_const 0l; I32_relop Gt_s; I32_eqz; Br_if 1;
                  Local_get 1; Local_get 0; I32_binop Add; Local_set 1;
                  Local_get 0; I32_const 1l; I32_binop Sub; Local_set 0;
                  Br 0;
                ] );
          ] );
      Local_get 1;
    ]
    [ Values.I32 10l; Values.I32 0l ];
  fusing "eqz_br_if"
    [
      Block (Bt_none, [ Local_get 0; I32_eqz; Br_if 0; I32_const 1l; Local_set 1 ]);
      Local_get 1;
    ]
    [ Values.I32 1l; Values.I32 0l ]

(* Division stays precise under fusion: traps carry the same message and
   the same instruction count (div never fuses as an interior op). *)
let test_div_trap_parity () =
  ignore
    (check_same ~params:[ Types.T_i32; Types.T_i32 ]
       [ Local_get 0; Local_get 1; I32_binop Div_s ]
       [ Values.I32 7l; Values.I32 0l ]);
  ignore
    (check_same ~params:[ Types.T_i32; Types.T_i32 ]
       [ Local_get 0; Local_get 1; I32_binop Div_s; Local_set 0; Local_get 0 ]
       [ Values.I32 7l; Values.I32 0l ])

(* Fusion keeps branch targets intact when a jump lands *between* ops
   that would otherwise form a window: the loop back-edge target below
   sits inside a local_get/local_get/binop triple. *)
let test_branch_into_window () =
  ignore
    (check_same ~params:[ Types.T_i32; Types.T_i32 ]
       [
         Block
           ( Bt_none,
             [
               Loop
                 ( Bt_none,
                   [
                     Local_get 0; I32_eqz; Br_if 1;
                     Local_get 0; I32_const 1l; I32_binop Sub; Local_set 0;
                     Local_get 1; I32_const 3l; I32_binop Add; Local_set 1;
                     Br 0;
                   ] );
             ] );
         Local_get 1;
       ]
       [ Values.I32 6l; Values.I32 0l ])

(* Compile-time coverage stats: the pass must report fewer ops after
   fusion and name the sites it rewrote. *)
let test_fusion_stats () =
  let b = Builder.create ~name:"t" () in
  let f =
    Builder.func b ~name:"f" ~params:[ Types.T_i32; Types.T_i32 ]
      ~results:[ Types.T_i32 ] ~locals:[]
      [ Local_get 0; Local_get 1; I32_binop Add; Local_set 0; Local_get 0 ]
  in
  Builder.export_func b "f" f;
  let cm = Code.compile_module ~fuse:true (Builder.build b) in
  let fs = cm.Code.cm_fuse in
  if fs.Code.fs_ops_after >= fs.Code.fs_ops_before then
    Alcotest.fail "fusion did not shrink the op stream";
  if not (List.mem_assoc "ll_i32_binop_set" fs.Code.fs_sites) then
    Alcotest.fail "ll_i32_binop_set site not reported";
  let cm0 = Code.compile_module ~fuse:false (Builder.build b) in
  Alcotest.(check (list (pair string int)))
    "unfused compile reports no sites" [] cm0.Code.cm_fuse.Code.fs_sites

(* QCheck: random straight-line programs, generated as stack-disciplined
   fragments so loads/stores stay in bounds, must behave identically
   fused and unfused — same value, same instruction count. *)
let prop_differential =
  let fragment_gen depth =
    (* (instrs, net stack effect); only fragments legal at [depth] *)
    QCheck.Gen.(
      let local = int_bound 3 in
      let cst = map Int32.of_int (int_bound 1000) in
      let binop =
        oneofl [ Add; Sub; Mul; And; Or; Xor; Shl; Shr_u; Shr_s; Rotl ]
      in
      let relop = oneofl [ Eq; Ne; Lt_s; Lt_u; Gt_s; Ge_u; Le_s ] in
      let push =
        [
          map (fun i -> ([ Local_get i ], 1)) local;
          map (fun c -> ([ I32_const c ], 1)) cst;
          map (fun a -> ([ I32_const (Int32.of_int a);
                           I32_load { offset = 0; align = 2 } ], 1))
            (int_bound 200);
          map2 (fun a i -> ([ I32_const (Int32.of_int a); Local_get i;
                              I32_store { offset = 0; align = 2 } ], 0))
            (int_bound 200) local;
        ]
      in
      let one =
        [
          return ([ I32_eqz ], 0);
          map (fun i -> ([ Local_set i ], -1)) local;
          map (fun i -> ([ Local_tee i ], 0)) local;
          map2 (fun c o -> ([ I32_const c; I32_binop o ], 0)) cst binop;
          return ([ Drop ], -1);
        ]
      in
      let two =
        [
          map (fun o -> ([ I32_binop o ], -1)) binop;
          map (fun o -> ([ I32_relop o ], -1)) relop;
        ]
      in
      oneof
        (push @ (if depth >= 1 then one else []) @ (if depth >= 2 then two else [])))
  in
  let program_gen =
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let rec go k depth acc =
        if k = 0 then
          (* settle the stack at exactly one value *)
          let drops = List.init depth (fun _ -> Drop) in
          return (List.rev acc @ drops @ [ I32_const 1l ])
        else
          let* frag, eff = fragment_gen depth in
          go (k - 1) (depth + eff) (List.rev_append frag acc)
      in
      go n 0 [])
  in
  QCheck.Test.make ~name:"random programs: fused = unfused" ~count:300
    (QCheck.make program_gen) (fun body ->
      let (r_f, s_f, _), (r_u, s_u, _) =
        run_both ~params:[]
          ~locals:[ Types.T_i32; Types.T_i32; Types.T_i32; Types.T_i32 ]
          ~mem:true body []
      in
      r_f = r_u && s_f = s_u)

(* ---- kernel lookup caches ---- *)

let dir_of fs path =
  match Kernel.Vfs.resolve fs ~cwd:fs.Kernel.Vfs.root path with
  | Ok i -> i
  | Error _ -> Alcotest.failf "cannot resolve %s" path

let test_dcache_invalidation () =
  let stats = Observe.Metrics.kstats_create () in
  let fs = Kernel.Vfs.create ~stats () in
  ignore (Kernel.Vfs.mkdir_p fs "/d");
  Kernel.Vfs.write_file fs "/d/f" "hello";
  let root = fs.Kernel.Vfs.root in
  let resolve p = Kernel.Vfs.resolve fs ~cwd:root p in
  (* repeat lookups hit the cache and return the same inode *)
  let i1 = dir_of fs "/d/f" in
  let hits0 = stats.Observe.Metrics.dcache_hits in
  let i2 = dir_of fs "/d/f" in
  if not (i1 == i2) then Alcotest.fail "cache returned a different inode";
  if stats.Observe.Metrics.dcache_hits <= hits0 then
    Alcotest.fail "repeat lookup did not hit the dentry cache";
  let d = dir_of fs "/d" in
  (* rename invalidates *)
  (match Kernel.Vfs.rename fs d "f" d "g" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rename failed");
  (match resolve "/d/f" with
  | Error Kernel.Errno.ENOENT -> ()
  | _ -> Alcotest.fail "stale /d/f served after rename");
  (match resolve "/d/g" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "/d/g missing after rename");
  (* unlink invalidates *)
  (match Kernel.Vfs.unlink fs d "g" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unlink failed");
  (match resolve "/d/g" with
  | Error Kernel.Errno.ENOENT -> ()
  | _ -> Alcotest.fail "stale /d/g served after unlink");
  (* rmdir invalidates *)
  (match Kernel.Vfs.rmdir fs root "d" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rmdir failed");
  match resolve "/d" with
  | Error Kernel.Errno.ENOENT -> ()
  | _ -> Alcotest.fail "stale /d served after rmdir"

let test_fdtab_memo () =
  let fs = Kernel.Vfs.create () in
  Kernel.Vfs.write_file fs "/f" "x";
  let t = Kernel.Fdtab.create () in
  let ino = dir_of fs "/f" in
  let d () = Kernel.Fdtab.mk_desc ~path:"/f" (Kernel.Fdtab.F_inode ino) in
  let fd =
    match Kernel.Fdtab.install t (d ()) with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "install failed"
  in
  (* repeated gets (memo path) agree with the slot array *)
  (match (Kernel.Fdtab.get t fd, Kernel.Fdtab.get t fd) with
  | Some a, Some b when a == b -> ()
  | _ -> Alcotest.fail "memoized get returned a different description");
  (match Kernel.Fdtab.close t fd with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "close failed");
  (match Kernel.Fdtab.get t fd with
  | None -> ()
  | Some _ -> Alcotest.fail "memo served a closed fd");
  (* clone must not share the memo with the parent *)
  let fd2 =
    match Kernel.Fdtab.install t (d ()) with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "reinstall failed"
  in
  let t2 = Kernel.Fdtab.clone t in
  (match Kernel.Fdtab.close t2 fd2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "clone close failed");
  match Kernel.Fdtab.get t fd2 with
  | Some _ -> ()
  | None -> Alcotest.fail "closing in the clone leaked into the parent"

(* Fork under fusion: cloning a machine mid-run deep-copies the frame
   array, so parent and child diverge without sharing locals or memory. *)
let test_clone_under_fusion () =
  let b = Builder.create () in
  ignore (Builder.add_memory b ~min:1 ~max:(Some 2));
  let f =
    Builder.func b ~name:"poke" ~params:[ Types.T_i32 ] ~results:[] ~locals:[]
      [ I32_const 0l; Local_get 0; I32_store { offset = 0; align = 2 } ]
  in
  let g =
    Builder.func b ~name:"peek" ~params:[] ~results:[ Types.T_i32 ] ~locals:[]
      [ I32_const 0l; I32_load { offset = 0; align = 2 } ]
  in
  Builder.export_func b "poke" f;
  Builder.export_func b "peek" g;
  let cm = Code.compile_module ~fuse:true (Builder.build b) in
  let inst, _ = Link.instantiate Link.empty_resolver cm in
  let m1 = Rt.Machine.create inst in
  ignore (Interp.invoke m1 (Rt.exported_func inst "poke") [ Values.I32 111l ]);
  let m2 = Rt.Machine.clone m1 in
  ignore
    (Interp.invoke m2 (Rt.exported_func m2.Rt.m_inst "poke") [ Values.I32 222l ]);
  (match Interp.invoke m1 (Rt.exported_func m1.Rt.m_inst "peek") [] with
  | Interp.R_done [ Values.I32 111l ] -> ()
  | _ -> Alcotest.fail "parent memory dirtied by fused clone");
  match Interp.invoke m2 (Rt.exported_func m2.Rt.m_inst "peek") [] with
  | Interp.R_done [ Values.I32 222l ] -> ()
  | _ -> Alcotest.fail "clone memory wrong under fusion"

(* End-to-end: recording the calc app fused and unfused produces
   byte-identical syscall traces (the walireplay gate enforces this for
   the whole suite; this is the in-tree witness). *)
let test_calc_trace_identical () =
  let record fuse =
    match Apps.Suite.find "calc" with
    | None -> Alcotest.fail "no calc app"
    | Some a ->
        let kernel = Kernel.Task.boot () in
        a.Apps.Suite.a_setup kernel;
        if a.Apps.Suite.a_stdin <> "" then begin
          Kernel.Task.console_feed kernel a.Apps.Suite.a_stdin;
          Kernel.Pipe.drop_writer kernel.Kernel.Task.console_in
        end;
        let r =
          Replay.Recorder.record ~app:"calc" ~fuse ~kernel
            ~binary:(Apps.Suite.binary_of a) ~argv:a.Apps.Suite.a_argv ~env:[]
            ()
        in
        Replay.Trace.encode (Replay.Reduce.reduce r.Replay.Recorder.r_trace)
  in
  let fused = record true and unfused = record false in
  Alcotest.(check int)
    "trace sizes" (String.length unfused) (String.length fused);
  Alcotest.(check bool) "traces byte-identical" true (String.equal fused unfused)

let tests =
  [
    Alcotest.test_case "hot idioms fuse and agree" `Quick test_idioms;
    Alcotest.test_case "div trap parity" `Quick test_div_trap_parity;
    Alcotest.test_case "branch into fusion window" `Quick test_branch_into_window;
    Alcotest.test_case "fusion stats" `Quick test_fusion_stats;
    Alcotest.test_case "dentry cache invalidation" `Quick test_dcache_invalidation;
    Alcotest.test_case "fd table memo" `Quick test_fdtab_memo;
    Alcotest.test_case "machine clone under fusion" `Quick test_clone_under_fusion;
    Alcotest.test_case "calc trace fused = unfused" `Quick test_calc_trace_identical;
    QCheck_alcotest.to_alcotest prop_differential;
  ]
