(* Record/replay at the thin interface (lib/replay): the trace codec
   (round-trip + error paths), recording determinism, replay convergence
   on real apps, divergence detection on perturbed traces, the reducer's
   semantics preservation, the golden-trace ABI tripwire, and the
   Strace profile/info API satellites. *)

let contains = Astring_contains.contains

(* ---- helpers ---- *)

(* Record a suite app the way walireplay does: boot, app setup, scripted
   stdin with EOF, then the recorded run. *)
let record_app name : Replay.Recorder.run * string =
  match Apps.Suite.find name with
  | None -> Alcotest.failf "no app %s" name
  | Some a ->
      let kernel = Kernel.Task.boot () in
      a.Apps.Suite.a_setup kernel;
      if a.Apps.Suite.a_stdin <> "" then begin
        Kernel.Task.console_feed kernel a.Apps.Suite.a_stdin;
        Kernel.Pipe.drop_writer kernel.Kernel.Task.console_in
      end;
      ( Replay.Recorder.record ~app:name ~kernel
          ~binary:(Apps.Suite.binary_of a) ~argv:a.Apps.Suite.a_argv ~env:[] (),
        Apps.Suite.binary_of a )

let replay_app name trace binary =
  match Apps.Suite.find name with
  | None -> Alcotest.failf "no app %s" name
  | Some a ->
      Replay.Replayer.replay ~setup:a.Apps.Suite.a_setup ~trace ~binary ()

(* Rewrite the first E_syscall named [name] with [f]; returns its index. *)
let perturb_syscall (t : Replay.Trace.t) ~name f : int * Replay.Trace.t =
  let idx = ref (-1) in
  let events =
    Array.mapi
      (fun i ev ->
        match ev with
        | Replay.Trace.E_syscall sc
          when sc.Replay.Trace.sc_name = name && !idx < 0 ->
            idx := i;
            Replay.Trace.E_syscall (f sc)
        | ev -> ev)
      t.Replay.Trace.tr_events
  in
  if !idx < 0 then Alcotest.failf "no %s record in trace" name;
  (!idx, { t with Replay.Trace.tr_events = events })

(* ---- codec: round-trip property ---- *)

let gen_region =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun a s -> Replay.Trace.R_bytes (a, s))
          (int_bound 100_000)
          (string_size (int_bound 40));
        map2
          (fun a n -> Replay.Trace.R_zeros (a, n))
          (int_bound 100_000) (int_bound 5_000);
      ])

let gen_event =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map
            (fun (name, pid, args, result, pages, regions) ->
              Replay.Trace.E_syscall
                {
                  Replay.Trace.sc_pid = pid;
                  sc_name = name;
                  sc_args = Array.of_list args;
                  sc_result = result;
                  sc_pages = pages;
                  sc_regions = regions;
                })
            (tup6
               (oneofl
                  [ "read"; "write"; "mmap"; "openat"; "clock_gettime"; "x" ])
               (int_bound 64)
               (list_size (int_bound 7) int64)
               int64 (int_bound 4096)
               (list_size (int_bound 4) gen_region)) );
        ( 1,
          map
            (fun (pid, poll, signo, status) ->
              Replay.Trace.E_signal
                {
                  Replay.Trace.sg_pid = pid;
                  sg_poll = poll;
                  sg_signo = signo;
                  sg_status = status;
                })
            (tup4 (int_bound 64) (int_bound 100_000) (int_bound 64)
               (option (int_bound 0xffff))) );
        ( 1,
          map2
            (fun pid status ->
              Replay.Trace.E_exit
                { Replay.Trace.ex_pid = pid; ex_status = status })
            (int_bound 64) (int_bound 0xffff) );
      ])

let gen_trace =
  QCheck.Gen.(
    map
      (fun (app, argv, env, seed, poll, events, status) ->
        {
          Replay.Trace.tr_header =
            {
              Replay.Trace.h_app = app;
              h_argv = argv;
              h_env = env;
              h_digest = Digest.string seed;
              h_poll = poll;
            };
          tr_events = Array.of_list events;
          tr_status = status;
        })
      (tup7
         (string_size (int_bound 8))
         (list_size (int_bound 4) (string_size (int_bound 12)))
         (list_size (int_bound 4) (string_size (int_bound 12)))
         (string_size (int_bound 8))
         (oneofl [ "none"; "loops"; "funcs"; "every" ])
         (list_size (int_bound 30) gen_event)
         (int_bound 0xffff)))

let prop_roundtrip =
  QCheck.Test.make ~name:"codec round-trip" ~count:300 (QCheck.make gen_trace)
    (fun t -> Replay.Trace.decode (Replay.Trace.encode t) = t)

(* every strict prefix of an encoding must be rejected, never misparsed *)
let prop_prefixes_rejected =
  QCheck.Test.make ~name:"all truncations raise Corrupt" ~count:60
    (QCheck.make gen_trace) (fun t ->
      let enc = Replay.Trace.encode t in
      let ok = ref true in
      for n = 0 to String.length enc - 1 do
        (match Replay.Trace.decode (String.sub enc 0 n) with
        | _ -> ok := false
        | exception Replay.Trace.Corrupt _ -> ()
        | exception Replay.Trace.Bad_version _ -> ok := false)
      done;
      !ok)

let sample_trace () =
  {
    Replay.Trace.tr_header =
      {
        Replay.Trace.h_app = "t";
        h_argv = [ "t" ];
        h_env = [];
        h_digest = Digest.string "bin";
        h_poll = "loops";
      };
    tr_events =
      [|
        Replay.Trace.E_syscall
          {
            Replay.Trace.sc_pid = 1;
            sc_name = "write";
            sc_args = [| 1L; 64L; 5L |];
            sc_result = 5L;
            sc_pages = 2;
            sc_regions = [ Replay.Trace.R_bytes (64, "hello") ];
          };
        Replay.Trace.E_exit { Replay.Trace.ex_pid = 1; ex_status = 0 };
      |];
    tr_status = 0;
  }

let test_decode_errors () =
  let enc = Replay.Trace.encode (sample_trace ()) in
  (* wrong version: the varint right after the 8-byte magic *)
  let v2 =
    String.sub enc 0 8 ^ "\x02"
    ^ String.sub enc 9 (String.length enc - 9)
  in
  (match Replay.Trace.decode v2 with
  | _ -> Alcotest.fail "version 2 accepted"
  | exception Replay.Trace.Bad_version v ->
      Alcotest.(check int) "reports the version it saw" 2 v);
  (* bad magic *)
  (match Replay.Trace.decode ("XALITRC0" ^ String.sub enc 8 8) with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception Replay.Trace.Corrupt msg ->
      Alcotest.(check bool) "names the magic" true (contains msg "magic"));
  (* trailing garbage after a well-formed stream *)
  (match Replay.Trace.decode (enc ^ "x") with
  | _ -> Alcotest.fail "trailing bytes accepted"
  | exception Replay.Trace.Corrupt _ -> ());
  (* truncation in the middle of the event stream *)
  match Replay.Trace.decode (String.sub enc 0 (String.length enc - 3)) with
  | _ -> Alcotest.fail "truncated trace accepted"
  | exception Replay.Trace.Corrupt _ -> ()

(* ---- reducer ---- *)

let apply_regions buf regions =
  List.iter
    (function
      | Replay.Trace.R_bytes (a, s) ->
          Bytes.blit_string s 0 buf a (String.length s)
      | Replay.Trace.R_zeros (a, n) -> Bytes.fill buf a n '\000')
    regions

let prop_reduce_semantics =
  (* reducing a region (zero-run compression) applies identical bytes *)
  let gen =
    QCheck.Gen.(
      pair (int_bound 64)
        (string_size ~gen:(oneofl [ '\000'; '\000'; '\000'; 'a'; 'z' ])
           (int_bound 200)))
  in
  QCheck.Test.make ~name:"reduce preserves applied bytes" ~count:300
    (QCheck.make gen) (fun (addr, s) ->
      let n = addr + String.length s + 8 in
      let a = Bytes.make n 'x' and b = Bytes.make n 'x' in
      apply_regions a [ Replay.Trace.R_bytes (addr, s) ];
      apply_regions b
        (Replay.Reduce.reduce_region (Replay.Trace.R_bytes (addr, s)));
      Bytes.equal a b)

(* ---- record/replay on a real app ---- *)

let test_calc_roundtrip () =
  let r, binary = record_app "calc" in
  let trace = r.Replay.Recorder.r_trace in
  Alcotest.(check bool)
    "recorded some events" true
    (Array.length trace.Replay.Trace.tr_events > 0);
  (* replay the codec round-trip of the reduced trace, like the gate *)
  let reduced = Replay.Reduce.reduce trace in
  Alcotest.(check bool)
    "reduction does not grow the encoding" true
    (Replay.Reduce.byte_size reduced <= Replay.Reduce.byte_size trace);
  let trace' = Replay.Trace.decode (Replay.Trace.encode reduced) in
  let o = replay_app "calc" trace' binary in
  (match o.Replay.Replayer.rp_divergence with
  | None -> ()
  | Some d -> Alcotest.failf "diverged: %s" (Replay.Replayer.pp_divergence d));
  Alcotest.(check int)
    "status matches the recording" r.Replay.Recorder.r_status
    o.Replay.Replayer.rp_status;
  Alcotest.(check int)
    "every record consumed" o.Replay.Replayer.rp_total
    o.Replay.Replayer.rp_consumed

let test_record_deterministic () =
  let r1, _ = record_app "calc" in
  let r2, _ = record_app "calc" in
  Alcotest.(check bool)
    "two recordings encode to identical bytes" true
    (Replay.Trace.encode r1.Replay.Recorder.r_trace
    = Replay.Trace.encode r2.Replay.Recorder.r_trace)

(* ---- divergence detection ---- *)

let test_perturbed_result_detected () =
  let r, binary = record_app "calc" in
  (* flip a result byte on the program's exit_group record *)
  let idx, bad =
    perturb_syscall r.Replay.Recorder.r_trace ~name:"exit_group" (fun sc ->
        {
          sc with
          Replay.Trace.sc_result = Int64.logxor sc.Replay.Trace.sc_result 1L;
        })
  in
  let o = replay_app "calc" bad binary in
  match o.Replay.Replayer.rp_divergence with
  | None -> Alcotest.fail "perturbed trace replayed without divergence"
  | Some d ->
      Alcotest.(check string) "kind" "result" d.Replay.Replayer.d_kind;
      Alcotest.(check int) "index" idx d.Replay.Replayer.d_index;
      let msg = Replay.Replayer.pp_divergence d in
      Alcotest.(check bool)
        "report names the syscall" true
        (contains msg "exit_group");
      Alcotest.(check bool)
        "report carries the record index" true
        (contains msg (Printf.sprintf "#%d" idx))

let test_perturbed_args_detected () =
  let r, binary = record_app "calc" in
  let idx, bad =
    perturb_syscall r.Replay.Recorder.r_trace ~name:"write" (fun sc ->
        let args = Array.copy sc.Replay.Trace.sc_args in
        args.(0) <- Int64.logxor args.(0) 1L;
        { sc with Replay.Trace.sc_args = args })
  in
  let o = replay_app "calc" bad binary in
  match o.Replay.Replayer.rp_divergence with
  | None -> Alcotest.fail "perturbed args replayed without divergence"
  | Some d ->
      Alcotest.(check string) "kind" "args" d.Replay.Replayer.d_kind;
      Alcotest.(check int) "index" idx d.Replay.Replayer.d_index;
      Alcotest.(check bool)
        "report names the syscall" true
        (contains (Replay.Replayer.pp_divergence d) "write")

let test_wrong_binary_detected () =
  let r, _ = record_app "calc" in
  let other =
    match Apps.Suite.find "zpack" with
    | Some a -> Apps.Suite.binary_of a
    | None -> Alcotest.fail "no zpack app"
  in
  let o =
    Replay.Replayer.replay ~trace:r.Replay.Recorder.r_trace ~binary:other ()
  in
  match o.Replay.Replayer.rp_divergence with
  | Some d ->
      Alcotest.(check string) "kind" "binary digest" d.Replay.Replayer.d_kind
  | None -> Alcotest.fail "digest mismatch not detected"

let test_truncated_trace_detected () =
  let r, binary = record_app "calc" in
  let short = Replay.Reduce.truncate r.Replay.Recorder.r_trace ~n:5 in
  let o = replay_app "calc" short binary in
  Alcotest.(check bool)
    "running past a truncated trace diverges" true
    (o.Replay.Replayer.rp_divergence <> None)

(* ---- golden trace: the ABI-change tripwire ---- *)

(* `dune runtest` runs the binary in test/; `dune exec test/main.exe`
   runs it from wherever it was invoked *)
let golden_file =
  List.find_opt Sys.file_exists
    [ "golden/app_calc.trace"; "test/golden/app_calc.trace" ]
  |> Option.value ~default:"golden/app_calc.trace"

let test_golden_trace () =
  let trace = Replay.Trace.load golden_file in
  let binary =
    match Apps.Suite.find "calc" with
    | Some a -> Apps.Suite.binary_of a
    | None -> Alcotest.fail "no calc app"
  in
  if Digest.string binary <> trace.Replay.Trace.tr_header.Replay.Trace.h_digest
  then
    Alcotest.fail
      "calc compiles to a different image than the golden recording — the \
       compiler or WALI ABI changed; regenerate test/golden/app_calc.trace \
       with `dune exec bin/walireplay.exe -- record --app calc -o \
       test/golden/app_calc.trace` and review what moved";
  let o = replay_app "calc" trace binary in
  match o.Replay.Replayer.rp_divergence with
  | None -> ()
  | Some d ->
      Alcotest.failf
        "golden trace no longer replays — the syscall surface changed: %s"
        (Replay.Replayer.pp_divergence d)

(* ---- Strace satellites ---- *)

let test_profile_tiebreak () =
  let t = Wali.Strace.create () in
  let hit name result =
    Wali.Strace.note t ~pid:1 ~name ~args:[] ~result ~ns:10L
  in
  (* equal counts must sort by name, not hashtable order *)
  hit "write" 1L;
  hit "read" 1L;
  hit "close" 1L;
  hit "open" (-2L);
  hit "open" 3L;
  Alcotest.(check (list (pair string int)))
    "count desc, then name asc"
    [ ("open", 2); ("close", 1); ("read", 1); ("write", 1) ]
    (Wali.Strace.profile t);
  (* profile_info orders identically *)
  Alcotest.(check (list string))
    "profile_info same order"
    (List.map fst (Wali.Strace.profile t))
    (List.map fst (Wali.Strace.profile_info t))

let test_strace_info () =
  let t = Wali.Strace.create () in
  Wali.Strace.note t ~pid:1 ~name:"read" ~args:[] ~result:5L ~ns:100L;
  Wali.Strace.note t ~pid:1 ~name:"read" ~args:[] ~result:(-9L) ~ns:50L;
  Wali.Strace.note t ~pid:1 ~name:"write" ~args:[] ~result:1L ~ns:7L;
  (match Wali.Strace.info t "read" with
  | None -> Alcotest.fail "no info for read"
  | Some i ->
      Alcotest.(check int) "calls" 2 i.Wali.Strace.i_calls;
      Alcotest.(check int) "errors" 1 i.Wali.Strace.i_errors;
      Alcotest.(check int64) "ns" 150L i.Wali.Strace.i_ns);
  Alcotest.(check bool) "unknown name" true (Wali.Strace.info t "mmap" = None);
  Alcotest.(check int) "total errors" 1 (Wali.Strace.total_errors t)

let tests =
  [
    Alcotest.test_case "strace profile tie-break" `Quick test_profile_tiebreak;
    Alcotest.test_case "strace info API" `Quick test_strace_info;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_prefixes_rejected;
    Alcotest.test_case "decode error paths" `Quick test_decode_errors;
    QCheck_alcotest.to_alcotest prop_reduce_semantics;
    Alcotest.test_case "record+replay calc converges" `Quick
      test_calc_roundtrip;
    Alcotest.test_case "recording is deterministic" `Quick
      test_record_deterministic;
    Alcotest.test_case "flipped result detected" `Quick
      test_perturbed_result_detected;
    Alcotest.test_case "flipped arg detected" `Quick
      test_perturbed_args_detected;
    Alcotest.test_case "wrong binary detected" `Quick
      test_wrong_binary_detected;
    Alcotest.test_case "truncated trace detected" `Quick
      test_truncated_trace_detected;
    Alcotest.test_case "golden calc trace replays" `Quick test_golden_trace;
  ]
