(* The performance observatory (lib/perf): sample statistics, the
   wali-bench v1 model round-trip through the schema checker, baseline
   verdict classification (zero-tolerance counters, noise-banded wall
   metrics), the differential profiler on hand-built folded stacks, and
   determinism of the gate's scenario runner. *)

let check_err msg = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected rejection" msg

(* ---- stats ---- *)

let test_stats () =
  let open Perf.Stats in
  Alcotest.(check (float 1e-9)) "median odd" 3.0 (median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (median [ 4.0; 1.0; 2.0; 3.0 ]);
  let s = of_samples [ 10.0; 12.0; 11.0; 50.0; 10.0 ] in
  Alcotest.(check int) "n" 5 s.s_n;
  Alcotest.(check (float 1e-9)) "min" 10.0 s.s_min;
  Alcotest.(check (float 1e-9)) "median" 11.0 s.s_median;
  (* deviations from 11: [1;1;0;39;1] -> median 1; the outlier does not
     inflate the band *)
  Alcotest.(check (float 1e-9)) "mad robust to outlier" 1.0 s.s_mad;
  Alcotest.(check (float 1e-9)) "rel noise" 0.1 (rel_noise s);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (of_samples []).s_min;
  (* measure: one warmup discarded, n samples kept *)
  let calls = ref 0 in
  let s =
    measure ~warmup:1 ~n:3 (fun () ->
        incr calls;
        float_of_int !calls)
  in
  Alcotest.(check int) "sampler called warmup+n times" 4 !calls;
  Alcotest.(check (float 1e-9)) "warmup sample discarded" 2.0 s.s_min

(* ---- wali-bench v1 round-trip ---- *)

let sample_model () =
  Perf.Model.make ~suite:"test"
    [
      ( "app/calc",
        [
          ("instructions", Perf.Model.counter 123456.0);
          ("syscalls", Perf.Model.counter 42.0);
          ("virtual_ns", Perf.Model.counter ~unit_:"ns" 98765.0);
        ] );
      ( "table2",
        [
          ("write", Perf.Model.wall_v ~n:5 ~mad:2.5 117.25);
          ("getpid", Perf.Model.wall_v ~n:5 ~mad:0.0 64.0);
        ] );
    ]

let test_model_roundtrip () =
  let m = sample_model () in
  let json = Perf.Model.to_json m in
  (match Observe.Check.check_bench json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emitted JSON fails its own checker: %s" e);
  let m2 =
    match Perf.Model.of_json json with
    | Ok m2 -> m2
    | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  in
  Alcotest.(check string) "emit-parse-emit is the identity" json
    (Perf.Model.to_json m2);
  (match Perf.Model.find_metric m2 ~scenario:"app/calc" ~metric:"instructions" with
  | Some mm ->
      Alcotest.(check (float 0.0)) "counter survives" 123456.0 mm.Perf.Model.m_value;
      Alcotest.(check bool) "kind survives" true (mm.Perf.Model.m_kind = Perf.Model.Counter)
  | None -> Alcotest.fail "metric lost in round-trip");
  (match Perf.Model.find_metric m2 ~scenario:"table2" ~metric:"write" with
  | Some mm ->
      Alcotest.(check (float 1e-9)) "wall value survives" 117.25 mm.Perf.Model.m_value;
      Alcotest.(check int) "n survives" 5 mm.Perf.Model.m_n;
      Alcotest.(check (float 1e-9)) "mad survives" 2.5 mm.Perf.Model.m_mad
  | None -> Alcotest.fail "wall metric lost in round-trip");
  (* canonical ordering: scenario insertion order does not matter *)
  let swapped =
    Perf.Model.make ~suite:"test"
      (List.rev m.Perf.Model.b_scenarios)
  in
  Alcotest.(check string) "ordering canonical" json (Perf.Model.to_json swapped)

let test_check_bench_rejects () =
  let open Observe.Check in
  check_err "not json" (check_bench "nope");
  check_err "wrong schema"
    (check_bench {|{"schema":"wali-trace","version":1,"suite":"t","scenarios":{"s":{"metrics":{"m":{"kind":"counter","value":1,"unit":"count"}}}}}|});
  check_err "wrong version"
    (check_bench {|{"schema":"wali-bench","version":2,"suite":"t","scenarios":{"s":{"metrics":{"m":{"kind":"counter","value":1,"unit":"count"}}}}}|});
  check_err "empty scenarios"
    (check_bench {|{"schema":"wali-bench","version":1,"suite":"t","scenarios":{}}|});
  check_err "bad kind"
    (check_bench {|{"schema":"wali-bench","version":1,"suite":"t","scenarios":{"s":{"metrics":{"m":{"kind":"gauge","value":1,"unit":"count"}}}}}|});
  check_err "counter with noise band"
    (check_bench {|{"schema":"wali-bench","version":1,"suite":"t","scenarios":{"s":{"metrics":{"m":{"kind":"counter","value":1,"unit":"count","mad":2}}}}}|});
  check_err "wall without sample count"
    (check_bench {|{"schema":"wali-bench","version":1,"suite":"t","scenarios":{"s":{"metrics":{"m":{"kind":"wall","value":1,"unit":"ns","mad":0}}}}}|});
  match
    check_bench
      {|{"schema":"wali-bench","version":1,"suite":"t","scenarios":{"s":{"metrics":{"m":{"kind":"wall","value":1,"unit":"ns","n":3,"mad":0}}}}}|}
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid wall metric rejected: %s" e

(* ---- baseline verdicts ---- *)

let run suite metrics = Perf.Model.make ~suite [ ("s", metrics) ]

let verdict_of rows metric =
  match
    List.find_opt (fun r -> r.Perf.Baseline.r_metric = metric) rows
  with
  | Some r -> r.Perf.Baseline.r_verdict
  | None -> Alcotest.failf "no row for %s" metric

let test_baseline_verdicts () =
  let open Perf.Baseline in
  let c = Perf.Model.counter in
  let base =
    run "b"
      [
        ("insns", c 1000.0);
        ("up", c 10.0);
        ("down", c 10.0);
        ("gone", c 1.0);
        ("t_stable", Perf.Model.wall_v ~n:5 ~mad:5.0 100.0);
        ("t_slow", Perf.Model.wall_v ~n:5 ~mad:1.0 100.0);
        ("t_fast", Perf.Model.wall_v ~n:5 ~mad:1.0 100.0);
      ]
  in
  let cur =
    run "c"
      [
        ("insns", c 1000.0);
        ("up", c 11.0); (* +1: drift even though tiny *)
        ("down", c 9.0); (* -1: "improved", still drift *)
        ("new", c 7.0);
        ("t_stable", Perf.Model.wall_v ~n:5 ~mad:5.0 104.0); (* inside band *)
        ("t_slow", Perf.Model.wall_v ~n:5 ~mad:1.0 150.0); (* way out *)
        ("t_fast", Perf.Model.wall_v ~n:5 ~mad:1.0 50.0); (* way out, down *)
      ]
  in
  let rows = compare_runs ~base ~cur () in
  let v = verdict_of rows in
  Alcotest.(check bool) "equal counter unchanged" true (v "insns" = Unchanged);
  Alcotest.(check bool) "+1 counter regressed" true (v "up" = Regressed);
  Alcotest.(check bool) "-1 counter improved" true (v "down" = Improved);
  Alcotest.(check bool) "added" true (v "new" = Added);
  Alcotest.(check bool) "removed" true (v "gone" = Removed);
  Alcotest.(check bool) "wall inside band" true (v "t_stable" = Within_noise);
  Alcotest.(check bool) "wall beyond band" true (v "t_slow" = Regressed);
  Alcotest.(check bool) "wall faster beyond band" true (v "t_fast" = Improved);
  (* the gate's failure condition: every counter move counts, including
     the "improvement" and the added/removed ones; wall noise never does *)
  let drift =
    List.map (fun r -> r.r_metric) (counter_drift rows) |> List.sort compare
  in
  Alcotest.(check (list string))
    "counter drift" [ "down"; "gone"; "new"; "up" ] drift;
  Alcotest.(check (list string))
    "wall regressions" [ "t_slow" ]
    (List.map (fun r -> r.r_metric) (regressions rows)
    |> List.filter (fun m -> m = "t_slow" || m = "t_fast" || m = "t_stable"));
  (* a larger noise band widens the tolerance *)
  let t =
    wall_tolerance
      ~base:(Perf.Model.wall_v ~n:5 ~mad:10.0 100.0)
      ~cur:(Perf.Model.wall_v ~n:5 ~mad:10.0 100.0)
      ()
  in
  Alcotest.(check bool) "band-driven tolerance above floor" true (t > 5.0)

(* ---- differential profiler ---- *)

let test_diffprof () =
  let open Perf.Diffprof in
  (* duplicate stacks accumulate *)
  (match parse_folded "a;b 10\na;b 5\nc 1" with
  | Ok [ ("a;b", 15L); ("c", 1L) ] -> ()
  | Ok l -> Alcotest.failf "unexpected parse: %d entries" (List.length l)
  | Error e -> Alcotest.fail e);
  check_err "malformed line" (parse_folded "no-weight-here");
  check_err "malformed weight" (parse_folded "a;b ten");
  let base = "main;compute 100\nmain;wali;read 50\nmain;wali;close 10" in
  let cur = "main;compute 100\nmain;wali;read 80\nmain;wali;close 10\nmain;wali;write 25" in
  let d =
    match diff ~base ~cur with Ok d -> d | Error e -> Alcotest.fail e
  in
  Alcotest.(check int64) "total delta" 55L (total_delta d);
  (* only changed stacks appear, largest |delta| first *)
  (match d.d_entries with
  | [ e1; e2 ] ->
      Alcotest.(check string) "read stack first" "main;wali;read" e1.e_stack;
      Alcotest.(check int64) "read delta" 30L (delta e1);
      Alcotest.(check string) "write stack second" "main;wali;write" e2.e_stack;
      Alcotest.(check int64) "write appears vs 0" 25L (delta e2)
  | l -> Alcotest.failf "expected 2 changed stacks, got %d" (List.length l));
  (* frame attribution: wali carries both deltas; leaves name syscalls *)
  Alcotest.(check (list (pair string int64)))
    "frames" [ ("wali", 55L); ("main", 55L); ("read", 30L); ("write", 25L) ]
    (List.sort
       (fun (an, a) (bn, b) ->
         let c = Int64.compare (Int64.abs b) (Int64.abs a) in
         if c <> 0 then c else compare bn an)
       (frames d));
  Alcotest.(check (list (pair string int64)))
    "leaves are syscalls" [ ("read", 30L); ("write", 25L) ] (leaves d);
  (* identical profiles: empty diff *)
  let d0 = match diff ~base ~cur:base with Ok d -> d | Error e -> Alcotest.fail e in
  Alcotest.(check int) "no entries" 0 (List.length d0.d_entries);
  Alcotest.(check int64) "no delta" 0L (total_delta d0)

(* ---- gate scenario determinism ---- *)

let test_scenario_deterministic () =
  let app =
    match Apps.Suite.find "calc" with
    | Some a -> a
    | None -> Alcotest.fail "no calc app"
  in
  let m1, p1 = Perf.Scenario.run_suite ~apps:[ app ] () in
  let m2, p2 = Perf.Scenario.run_suite ~apps:[ app ] () in
  Alcotest.(check string) "byte-identical wali-bench emission"
    (Perf.Model.to_json m1) (Perf.Model.to_json m2);
  (match (p1, p2) with
  | [ (_, f1) ], [ (_, f2) ] ->
      Alcotest.(check string) "byte-identical folded profile" f1 f2
  | _ -> Alcotest.fail "expected one profile per run");
  match Observe.Check.check_bench (Perf.Model.to_json m1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gate emission fails the checker: %s" e

let tests =
  [
    Alcotest.test_case "min-of-N with MAD band" `Quick test_stats;
    Alcotest.test_case "wali-bench v1 round-trip" `Quick test_model_roundtrip;
    Alcotest.test_case "schema checker rejects malformed" `Quick
      test_check_bench_rejects;
    Alcotest.test_case "baseline verdicts" `Quick test_baseline_verdicts;
    Alcotest.test_case "differential profiler" `Quick test_diffprof;
    Alcotest.test_case "gate scenarios deterministic" `Quick
      test_scenario_deterministic;
  ]
